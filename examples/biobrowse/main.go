// Biobrowse: the ACeDB scenario of §1.1 — a biological database whose
// schema "imposes only loose constraints" and whose trees have arbitrary
// depth. The example browses it without knowing its structure, finds
// values at unknown depths, extracts a schema after the fact, and checks
// that the loose schema really is loose.
//
//	go run ./examples/biobrowse
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	g := workload.ACeDB(workload.BioConfig{Objects: 300, MaxDepth: 14, Fanout: 3, Seed: 11})
	db := core.FromGraph(g)
	fmt.Println("ACeDB-style database:", db.Describe())

	// --- Browsing: what does this thing even look like? (§1.3)
	fmt.Println("\ntop label paths (DataGuide):")
	for _, a := range db.Browse(2, 12) {
		parts := make([]string, len(a.Path))
		for i, l := range a.Path {
			parts[i] = l.String()
		}
		fmt.Printf("  %-25s extent %d\n", strings.Join(parts, "."), a.ExtentLen)
	}

	// --- Values at arbitrary depth: conventional techniques cannot query
	// trees of unknown depth; a regular path expression can.
	deepInts, err := db.PathQuery("Object._*.(> 90000)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nint values > 90000 at any depth: %d\n", len(deepInts))

	// How deep do Gene chains nest?
	for depth := 1; ; depth++ {
		q := "Object." + strings.Repeat("_.", depth-1) + "Gene"
		hits, err := db.PathQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(hits) == 0 {
			fmt.Printf("deepest Gene edge: depth %d\n", depth-1)
			break
		}
	}

	// --- Structure discovery (§5): extract a schema, then demonstrate the
	// ACeDB property — data with *missing* fields still conforms (loose),
	// data with *wrong types* does not.
	s := db.InferSchema()
	nodes, edges := s.Size()
	fmt.Printf("\ninferred schema: %d nodes, %d edges\n", nodes, edges)
	fmt.Println("data conforms to inferred schema:", db.Conforms(s))

	partial, _ := core.ParseText(`{Object: {Name: "obj-x"}}`)
	fmt.Println("object with fields missing conforms:", partial.Conforms(s))

	wrong, _ := core.ParseText(`{Object: {Name: 42}}`)
	fmt.Println("object with wrongly-typed Name conforms:", wrong.Conforms(s))
}
