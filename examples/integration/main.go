// Integration: the Tsimmis/OEM data-exchange scenario of §1.2 — "an
// extremely flexible format for data exchange between disparate databases".
// A relational source and a semistructured source are imported into the
// common graph model, merged, queried together, and the relational part is
// exported back out.
//
//	go run ./examples/integration
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	// Source A: a relational database (tables with a fixed schema).
	rdb := workload.Relational(200, 12, 9)
	relDB := core.ImportRelational(rdb)
	fmt.Println("relational source as a graph:", relDB.Describe())

	// Source B: semistructured movie entries (Figure 1 style, no schema).
	ssDB := core.FromGraph(workload.Movies(workload.DefaultMovieConfig(300)))
	fmt.Println("semistructured source:       ", ssDB.Describe())

	// Merge both under one root — the OEM "substrate in which almost any
	// other data structure may be represented".
	merged := ssd.New()
	merged.AddEdge(merged.Root(), ssd.Sym("warehouse"),
		merged.Graft(relDB.Graph(), relDB.Graph().Root()))
	merged.AddEdge(merged.Root(), ssd.Sym("web"),
		merged.Graft(ssDB.Graph(), ssDB.Graph().Root()))
	db := core.FromGraph(merged)
	fmt.Println("merged:                      ", db.Describe())

	// One query spanning both sources: directors known to the relational
	// warehouse who also directed something in the web data.
	rows, err := db.QueryRows(`
		select D
		from DB.warehouse.directors.tuple T, T.director D,
		     DB.web.Entry.Movie M, M.Director W
		where D = W`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-source director joins: %d binding tuples\n", len(rows))

	// Everything survives a round trip through the wire format.
	tmp := "/tmp/integration.ssdg"
	if err := db.Save(tmp); err != nil {
		log.Fatal(err)
	}
	back, err := core.Open(tmp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("binary round trip preserves value:", db.Equal(back))

	// The structured part can go back to tables; the semistructured part
	// cannot — the §5 boundary.
	warehouse, err := back.Query(`select {movies: M, directors: D} from DB.warehouse.movies M, DB.warehouse.directors D`)
	if err != nil {
		log.Fatal(err)
	}
	tables, err := warehouse.ExportRelational()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-exported tables: movies=%d rows, directors=%d rows\n",
		tables["movies"].Len(), tables["directors"].Len())

	if _, err := back.ExportRelational(); err != nil {
		fmt.Println("whole merged graph does not export (expected):", err)
	}
}
