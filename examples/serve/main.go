// Serve: run the ssdserve HTTP layer in-process over a generated movie
// database and drive it the way a remote client would — parameterized
// NDJSON query streams, a mutation script commit, and a health check.
// Every request prints the equivalent curl command against a standalone
// server (`go run ./cmd/ssdserve -demo 2000 -parallelism 4`).
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	// An ssdserve instance is a Server over one core.Database; the demo
	// database is the scalable movie workload. Parallelism 4 makes every
	// /query fan its join work across four worker executors.
	db := core.FromGraph(workload.Movies(workload.DefaultMovieConfig(2000)))
	srv := server.New(db, server.Config{Parallelism: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("serving", db.Describe())

	// 1. A parameterized query, streamed as NDJSON. String parameters use
	// the ssdq literal syntax: "\"Allen\"" is the *string* Allen (a bare
	// "Allen" would be the symbol).
	// render=tree serializes node columns as their subtrees in the text
	// syntax (the default is opaque node ids, for clients that page
	// through bindings).
	body := `{
	  "query": "select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who",
	  "params": {"who": "\"Allen\""},
	  "limit": 5,
	  "render": "tree"
	}`
	curl(ts.URL, "/query", body)
	post(ts.URL+"/query", body)

	// 2. A write: the ssdq mutation script format, committed as one batch.
	// Readers already streaming keep their MVCC snapshot; the next query
	// sees the new edge.
	script := "addnode\naddedge 0 ServedBy $0\naddedge $0 \"examples/serve\" $0\n"
	fmt.Printf("\n$ curl -s %s/mutate --data-binary '...script...'\n", "localhost:8080")
	post(ts.URL+"/mutate", script)
	curl(ts.URL, "/query", `{"query": "path: ServedBy._"}`)
	post(ts.URL+"/query", `{"query": "path: ServedBy._"}`)

	// 3. Health: snapshot stats for load balancers and dashboards.
	fmt.Printf("\n$ curl -s localhost:8080/healthz\n")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	printBody(resp)
}

// curl prints the standalone-server equivalent of the request.
func curl(base, path, body string) {
	oneLine := strings.Join(strings.Fields(body), " ")
	fmt.Printf("\n$ curl -s localhost:8080%s -d '%s'\n", path, oneLine)
}

func post(url, body string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	printBody(resp)
}

func printBody(resp *http.Response) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
