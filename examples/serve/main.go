// Serve: run the ssdserve HTTP layer in-process over a generated movie
// database and drive it the way a remote client would — parameterized
// NDJSON query streams, a mutation script commit, a health check, a traced
// query, a slow-query log line and a /metrics scrape.
// Every request prints the equivalent curl command against a standalone
// server (`go run ./cmd/ssdserve -demo 2000 -parallelism 4`).
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	// An ssdserve instance is a Server over one core.Database; the demo
	// database is the scalable movie workload. Parallelism 4 makes every
	// /query fan its join work across four worker executors. The 1ns
	// slow-query threshold makes every query "slow" so the structured log
	// line is demonstrable; real deployments set something like 100ms.
	db := core.FromGraph(workload.Movies(workload.DefaultMovieConfig(2000)))
	srv := server.New(db, server.Config{
		Parallelism: 4,
		SlowQuery:   1, // nanosecond: log every query, for the demo
		Logger:      slog.New(slog.NewTextHandler(os.Stdout, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("serving", db.Describe())

	// 1. A parameterized query, streamed as NDJSON. String parameters use
	// the ssdq literal syntax: "\"Allen\"" is the *string* Allen (a bare
	// "Allen" would be the symbol).
	// render=tree serializes node columns as their subtrees in the text
	// syntax (the default is opaque node ids, for clients that page
	// through bindings).
	body := `{
	  "query": "select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who",
	  "params": {"who": "\"Allen\""},
	  "limit": 5,
	  "render": "tree"
	}`
	curl(ts.URL, "/query", body)
	post(ts.URL+"/query", body)

	// 2. A write: the ssdq mutation script format, committed as one batch.
	// Readers already streaming keep their MVCC snapshot; the next query
	// sees the new edge.
	script := "addnode\naddedge 0 ServedBy $0\naddedge $0 \"examples/serve\" $0\n"
	fmt.Printf("\n$ curl -s %s/mutate --data-binary '...script...'\n", "localhost:8080")
	post(ts.URL+"/mutate", script)
	curl(ts.URL, "/query", `{"query": "path: ServedBy._"}`)
	post(ts.URL+"/query", `{"query": "path: ServedBy._"}`)

	// 3. Health: snapshot stats for load balancers and dashboards, now
	// including the statement-cache size and snapshot sequence.
	fmt.Printf("\n$ curl -s localhost:8080/healthz\n")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	printBody(resp)

	// 4. Tracing: ?trace=1 appends the per-operator execution trace to the
	// terminal status line — per-atom row counts and wall time, whether the
	// plan came from the pool, and the parallel worker/morsel shape. The
	// same trace rides the slow-query log lines above.
	fmt.Printf("\n$ curl -s 'localhost:8080/query?trace=1' -d '{\"query\": \"path: ServedBy._\"}'\n")
	post(ts.URL+"/query?trace=1", `{"query": "path: ServedBy._"}`)

	// 5. Metrics: the process registry in the Prometheus text exposition
	// (a scrape endpoint; ?format=json serves the same snapshot as JSON).
	// Shown here filtered to a few families.
	fmt.Printf("\n$ curl -s localhost:8080/metrics | grep -E 'ssd_(queries|query_rows|stmt_cache|http_requests)'\n")
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		log.Fatalf("GET /metrics: %s", mresp.Status)
	}
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, fam := range []string{"ssd_queries_total", "ssd_query_rows_total", "ssd_stmt_cache", "ssd_http_requests_total"} {
			if strings.HasPrefix(line, fam) || strings.HasPrefix(line, "# TYPE "+fam) {
				fmt.Println(line)
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// curl prints the standalone-server equivalent of the request.
func curl(base, path, body string) {
	oneLine := strings.Join(strings.Fields(body), " ")
	fmt.Printf("\n$ curl -s localhost:8080%s -d '%s'\n", path, oneLine)
}

func post(url, body string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	printBody(resp)
}

func printBody(resp *http.Response) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		// The demo endpoints answer errors with a JSON body and a non-2xx
		// status; treating those lines as output would hide the failure.
		log.Fatalf("%s %s: %s", resp.Request.Method, resp.Request.URL.Path, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
