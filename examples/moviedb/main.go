// Moviedb: the paper's Figure 1 worked end to end — the irregular cast
// representations, the guarded path query for "Allen", the References
// cycle, and the UnQL restructurings of §3 (fixing the Bacall label,
// collapsing Credit, deleting edges).
//
//	go run ./examples/moviedb
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	// Figure 1 exactly as printed, including the misspelled "Bacal" edge.
	db := core.FromGraph(workload.Fig1(true))
	fmt.Println("Figure 1:", db.Describe())
	fmt.Println(db.Format())

	// --- §3: the motivating query. Was "Allen" in a movie? Constrain the
	// path so it cannot wander through References into another Movie.
	hits, err := db.PathQuery(`Entry.Movie.(!Movie)*."Allen"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\"Allen\" below exactly one Movie edge: %d occurrences\n", len(hits))

	// The same question, SQL-style, with the answer tied to titles.
	res, err := db.Query(`
		select {Title: T}
		from DB.Entry.Movie M, M.Title T, M.(!Movie)* A
		where A = "Allen"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("movies involving Allen:", res.Format())

	// --- The irregularity: one query over both cast representations.
	res, err = db.Query(`
		select {Actor: %N}
		from DB.Entry._.Cast.(isint|Credit.Actors|Special-Guests)? C,
		     C.%N L
		where isstring(%N)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all credited names:  ", res.Format())

	// --- Restructuring (§3). First, the paper's example: correct the
	// "egregious error in the Bacall edge label".
	fixed := db.RelabelWhere(pathexpr.ExactPred{L: ssd.Str("Bacal")}, ssd.Str("Bacall"))
	fmt.Println("\nafter fixing Bacal → Bacall:")
	fmt.Println("  equal to corrected figure:", fixed.Equal(core.FromGraph(workload.Fig1(false))))

	// Collapse the Credit indirection so both cast forms align one level.
	collapsed := fixed.CollapseEdges(pathexpr.ExactPred{L: ssd.Sym("Credit")})
	actors, _ := collapsed.PathQuery("Entry.Movie.Cast.Actors._")
	fmt.Printf("  after collapsing Credit: Cast.Actors reaches %d name(s)\n", len(actors))

	// Delete the cross-entry links entirely.
	trimmed := collapsed.DeleteEdges(pathexpr.ExactPred{L: ssd.Sym("References")})
	refs, _ := trimmed.PathQuery("_*.References")
	fmt.Printf("  after deleting References: %d left\n", len(refs))

	// --- Scale it up: the same queries on a 20k-entry database.
	big := core.FromGraph(workload.Movies(workload.DefaultMovieConfig(20000)))
	fmt.Println("\nscaled database:", big.Describe())
	rows, err := big.QueryRows(`
		select T
		from DB.Entry.Movie M, M.Title T, M.Cast.(isint|Credit.Actors) A
		where A = "Bogart"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movies crediting Bogart at 20k entries: %d\n", len(rows))

	guide := big.DataGuide()
	fmt.Printf("dataguide: %d nodes summarize %d data nodes\n",
		guide.NumNodes(), big.Stats().Nodes)
}
