// Quickstart: build a small semistructured database from text, prepare a
// statement once, execute it with different parameters, stream the rows,
// look at the data without a schema, and make the whole thing durable.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	// 1. Load data from the text syntax. No schema is declared anywhere —
	// note the heterogeneous record shapes.
	db, err := core.ParseText(`
	{person: {name: "Ada",  born: 1815, interest: "mathematics"},
	 person: {name: "Alan", born: 1912},
	 person: {name: "Grace", born: 1906, rank: "rear admiral",
	          interest: {primary: "compilers", also: "navy"}}}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("database:", db.Describe())

	// 2. Prepare once, execute many: the statement is parsed and planned a
	// single time; each execution binds the $cutoff parameter into a
	// reserved plan slot. The `interest` field is sometimes a string and
	// sometimes a record; `_*` reaches the strings wherever they are.
	stmt, err := db.Prepare(`
		select {Of: N, Likes: %V}
		from DB.person P, P.name N, P.born B, P.interest._* I, I.%V X
		where isstring(%V) and B < $cutoff`)
	if err != nil {
		log.Fatal(err)
	}
	for _, cutoff := range []int{1900, 2000} {
		res, err := stmt.Exec(context.Background(), core.P("cutoff", cutoff))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ninterests of people born before %d:\n  %s\n", cutoff, res.Format())
	}

	// 3. Stream binding rows instead of materializing a result tree: Rows
	// pulls tuples straight from the executor; the Env is reused per row.
	people, err := db.Prepare(`select N from DB.person P, P.name._ N`)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := people.Query(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npeople (streamed):")
	for rows.Next() {
		env := rows.Env() // valid until the next rows.Next()
		fmt.Println("  node", env.Trees["N"])
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// 4. The same Prepare entry point speaks the other front-ends: path
	// expressions stream matching nodes...
	deep, err := db.Prepare(`path: person.interest._*.isdata`)
	if err != nil {
		log.Fatal(err)
	}
	prows, err := deep.Query(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for prows.Next() {
		n++
	}
	if err := prows.Err(); err != nil {
		log.Fatal(err)
	}
	prows.Close()
	fmt.Println("\nleaf values under interest:", n)

	// ...and UnQL transforms restructure.
	rename, err := db.Prepare(`unql: relabel interest to $to`)
	if err != nil {
		log.Fatal(err)
	}
	hobbies, err := rename.Exec(context.Background(), core.P("to", "hobby"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after relabel:", hobbies.Describe())

	// 5. The §1.3 browsing queries: ask the data what it looks like.
	fmt.Println("\nintegers > 1900 anywhere:", len(db.IntsGreaterThan(1900)), "hits")
	fmt.Println(`where is "compilers"?   `, db.FindString("compilers"))

	fmt.Println("\nlabel paths from the root (DataGuide):")
	for _, a := range db.Browse(3, 15) {
		parts := make([]string, len(a.Path))
		for i, l := range a.Path {
			parts[i] = l.String()
		}
		fmt.Printf("  %-30s extent %d\n", strings.Join(parts, "."), a.ExtentLen)
	}

	// 6. Infer a schema after the fact (§5) and check conformance.
	s := db.InferSchema()
	fmt.Println("\ninferred schema:", s)
	fmt.Println("data conforms:", db.Conforms(s))

	// 7. Make it durable: export as a directory of checkpointed snapshots
	// plus a WAL, reopen it, commit through the log, and checkpoint so the
	// next open replays nothing. (`ssdq save`/`ssdq open` and
	// `ssdserve -data` wrap exactly these calls.)
	dir, err := os.MkdirTemp("", "quickstart-db")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := db.SavePath(dir); err != nil {
		log.Fatal(err)
	}
	durable, err := core.OpenPath(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer durable.CloseWAL()
	if err := durable.MutateScript(`addnode; addedge 0 person $0; addnode; addedge $0 name $1`); err != nil {
		log.Fatal(err)
	}
	info, err := durable.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndurable: %s — checkpointed generation %d (%d batches folded)\n",
		durable.Describe(), info.Seq, info.Truncated)
}
