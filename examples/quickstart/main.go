// Quickstart: build a small semistructured database from text, query it,
// and look at it without a schema.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
)

func main() {
	// 1. Load data from the text syntax. No schema is declared anywhere —
	// note the heterogeneous record shapes.
	db, err := core.ParseText(`
	{person: {name: "Ada",  born: 1815, interest: "mathematics"},
	 person: {name: "Alan", born: 1912},
	 person: {name: "Grace", born: 1906, rank: "rear admiral",
	          interest: {primary: "compilers", also: "navy"}}}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("database:", db.Describe())

	// 2. A select-from-where query with a regular path expression. The
	// `interest` field is sometimes a string and sometimes a record;
	// `_*` reaches the strings wherever they are.
	res, err := db.Query(`
		select {Of: N, Likes: %V}
		from DB.person P, P.name N, P.interest._* I, I.%V X
		where isstring(%V)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninterests, however nested:")
	fmt.Println(" ", res.Format())

	// 3. The §1.3 browsing queries: ask the data what it looks like.
	fmt.Println("\nintegers > 1900 anywhere:", len(db.IntsGreaterThan(1900)), "hits")
	fmt.Println(`where is "compilers"?   `, db.FindString("compilers"))

	fmt.Println("\nlabel paths from the root (DataGuide):")
	for _, a := range db.Browse(3, 15) {
		parts := make([]string, len(a.Path))
		for i, l := range a.Path {
			parts[i] = l.String()
		}
		fmt.Printf("  %-30s extent %d\n", strings.Join(parts, "."), a.ExtentLen)
	}

	// 4. Infer a schema after the fact (§5) and check conformance.
	s := db.InferSchema()
	fmt.Println("\ninferred schema:", s)
	fmt.Println("data conforms:", db.Conforms(s))
}
