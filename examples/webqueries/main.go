// Webqueries: treating the Web as a database (§1.1). A schema-less page
// graph is queried with recursive datalog (reachability, hub detection —
// the "graph datalog" of §3) and with a decomposed, parallel path query
// (§4), the way WebSQL-style systems [29] and Suciu's decomposition [35]
// would.
//
//	go run ./examples/webqueries
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/pathexpr"
	"repro/internal/workload"
)

func main() {
	g := workload.Web(workload.WebConfig{Pages: 2000, OutLinks: 4, Seed: 42})
	db := core.FromGraph(g)
	fmt.Println("web graph:", db.Describe())

	// --- Recursive reachability: what is transitively linked from the
	// root's first pages? Pure "graph datalog".
	rels, err := db.Datalog(`
		page(P)  :- edge(root, 'Page', P).
		reach(P) :- page(P).
		reach(Q) :- reach(P), edge(P, 'link', Q).
		% pages that mention Casablanca in their title, reachable by links
		hit(P)   :- reach(P), edge(P, 'title', T), edge(T, S, _),
		            isstring(S), like(S, "%Casablanca%").`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pages: %d, link-reachable: %d, reachable mentioning Casablanca: %d\n",
		rels["page"].Len(), rels["reach"].Len(), rels["hit"].Len())

	// --- Hubs: pages linked from at least two distinct reachable pages
	// (negation-free join).
	rels2, err := db.Datalog(`
		linked(P, Q) :- edge(P, 'link', Q).
		hub(Q) :- linked(P1, Q), linked(P2, Q), neq(P1, P2).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hub pages (≥2 in-links): %d\n", rels2["hub"].Len())

	// --- Dead ends: reachable pages with no outgoing links (stratified
	// negation).
	rels3, err := db.Datalog(`
		page(P) :- edge(_, 'Page', P).
		haslink(P) :- page(P), edge(P, 'link', _).
		deadend(P) :- page(P), not haslink(P).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dead-end pages: %d\n", rels3["deadend"].Len())

	// --- Distributed evaluation (§4): segment the web graph into "sites"
	// and run a path query in parallel.
	query := `Page.link.link.link.title._`
	au := pathexpr.MustCompile(query)
	centralized := au.Eval(g, g.Root())
	for _, sites := range []int{2, 4, 8} {
		p := decomp.PartitionBFS(g, sites)
		distributed := decomp.Eval(g, pathexpr.MustCompile(query), p, true)
		fmt.Printf("decomposed over %d sites (%d cross edges): %d hits (centralized: %d)\n",
			sites, p.CrossEdges(g), len(distributed), len(centralized))
	}
}
