// Viewsite: the view-definition and exchange corner of the paper — §3's
// view language [4], §1.2's OEM exchange [33], and [18]'s idea of a web
// site as a set of materialized views over a database. Views are defined
// over the movie database, stacked on each other, materialized into a
// "site", and shipped out in the OEM wire format.
//
//	go run ./examples/viewsite
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/oem"
	"repro/internal/views"
	"repro/internal/workload"
)

func main() {
	base := workload.Movies(workload.DefaultMovieConfig(200))
	fmt.Println("base database:", core.FromGraph(base).Describe())

	reg := views.NewRegistry()
	must(reg.Define("movies", `
		select {m: M} from DB.base.Entry.Movie M`))
	must(reg.Define("bydirector", `
		select {%D: {Title: T}}
		from DB.movies.m M, M.Director.%D X, M.Title T`))
	must(reg.Define("titles", `
		select T from DB.movies.m.Title T`))

	// Materialize a single view.
	bd, err := reg.Materialize("bydirector", base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bydirector view: %d director groups\n", len(bd.Out(bd.Root())))

	// Materialize the whole "site" [18].
	site, err := reg.MaterializeAll(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("site:", core.FromGraph(site).Describe())
	for _, name := range reg.Names() {
		src, _ := reg.Text(name)
		fmt.Printf("  view %-12s defined by: %.60s...\n", name, oneLine(src))
	}

	// Ship the site to another system in the OEM exchange format (§1.2).
	doc := oem.FromGraph(site)
	wire := doc.Format()
	fmt.Printf("\nOEM export: %d objects, %d bytes on the wire\n",
		len(doc.Objects), len(wire))

	// The receiving side re-imports and queries it.
	back, err := oem.Parse(wire)
	if err != nil {
		log.Fatal(err)
	}
	remote := core.FromGraph(oem.ToGraph(back))
	rows, err := remote.QueryRows(`select T from DB.root.movies.m.Title T`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("titles visible on the receiving side: %d\n", len(rows))
}

func oneLine(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' || c == ' ' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, c)
	}
	return string(out)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
