package relstore

import (
	"fmt"
	"sort"

	"repro/internal/ssd"
)

// This file implements the encodings §2 and §3 describe.
//
// Relational → graph ("it is straightforward to encode relational ...
// databases in this model"):
//
//	{table: {tuple: {col: value, ...}, tuple: {...}}, ...}
//
// Graph → triples (§3: "we can take the database as a large relation of
// type (node-id, label, node-id)"), with one relation per label kind
// (complication 1) plus a unary root relation (complication 4).

// Tuple and column marker symbols used by the relational encoding.
const (
	TupleMarker = "tuple"
)

// EncodeRelational encodes a relational database as a graph, one edge per
// table name, one `tuple` edge per row, one column edge per attribute, and
// a data edge per value.
func EncodeRelational(db Database) *ssd.Graph {
	g := ssd.New()
	names := make([]string, 0, len(db))
	for name := range db {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic construction
	for _, name := range names {
		rel := db[name]
		tnode := g.AddLeaf(g.Root(), ssd.Sym(name))
		for _, row := range rel.Sorted() {
			rnode := g.AddLeaf(tnode, ssd.Sym(TupleMarker))
			for i, col := range rel.Cols {
				cnode := g.AddLeaf(rnode, ssd.Sym(col))
				g.AddLeaf(cnode, row[i])
			}
		}
	}
	return g
}

// DecodeRelational inverts EncodeRelational. Tables and columns are
// discovered from the graph; every tuple of a table must carry exactly one
// value per discovered column, or an error is returned (the graph was not a
// relational encoding — the passage back from semistructured to structured
// data needs real structure, §5).
func DecodeRelational(g *ssd.Graph) (Database, error) {
	db := Database{}
	for _, te := range g.Out(g.Root()) {
		tname, ok := te.Label.Symbol()
		if !ok {
			return nil, fmt.Errorf("relstore: table edge %s is not a symbol", te.Label)
		}
		// Discover columns from the first tuple, then verify the rest.
		var cols []string
		var rel *Relation
		for _, re := range g.Out(te.To) {
			if s, _ := re.Label.Symbol(); s != TupleMarker {
				return nil, fmt.Errorf("relstore: table %s has non-tuple edge %s", tname, re.Label)
			}
			rowVals := map[string]ssd.Label{}
			for _, ce := range g.Out(re.To) {
				col, ok := ce.Label.Symbol()
				if !ok {
					return nil, fmt.Errorf("relstore: table %s: column edge %s is not a symbol", tname, ce.Label)
				}
				vals := g.Out(ce.To)
				if len(vals) != 1 {
					return nil, fmt.Errorf("relstore: table %s column %s has %d values, want 1", tname, col, len(vals))
				}
				if _, dup := rowVals[col]; dup {
					return nil, fmt.Errorf("relstore: table %s: duplicate column %s in one tuple", tname, col)
				}
				rowVals[col] = vals[0].Label
			}
			if cols == nil {
				cols = make([]string, 0, len(rowVals))
				for c := range rowVals {
					cols = append(cols, c)
				}
				sort.Strings(cols)
				rel = NewRelation(cols...)
			}
			if len(rowVals) != len(cols) {
				return nil, fmt.Errorf("relstore: table %s: ragged tuple (%d vs %d columns)", tname, len(rowVals), len(cols))
			}
			row := make([]ssd.Label, len(cols))
			for i, c := range cols {
				v, ok := rowVals[c]
				if !ok {
					return nil, fmt.Errorf("relstore: table %s: tuple missing column %s", tname, c)
				}
				row[i] = v
			}
			rel.Add(row...)
		}
		if rel == nil {
			rel = NewRelation()
		}
		if _, dup := db[tname]; dup {
			// Two edges with the same table name: merge tuples (set
			// semantics of the graph model).
			for _, row := range rel.Rows() {
				db[tname].Add(row...)
			}
			continue
		}
		db[tname] = rel
	}
	return db, nil
}

// ---------------------------------------------------------------------------
// Triple-store encoding of arbitrary graphs

// Triple relation names by label kind.
const (
	TriplesSym    = "edges_sym"
	TriplesString = "edges_str"
	TriplesInt    = "edges_int"
	TriplesFloat  = "edges_float"
	TriplesBool   = "edges_bool"
	TriplesOID    = "edges_oid"
	RootRel       = "graph_root"
)

func tripleRelName(k ssd.Kind) string {
	switch k {
	case ssd.KindSymbol:
		return TriplesSym
	case ssd.KindString:
		return TriplesString
	case ssd.KindInt:
		return TriplesInt
	case ssd.KindFloat:
		return TriplesFloat
	case ssd.KindBool:
		return TriplesBool
	default:
		return TriplesOID
	}
}

// GraphToTriples shreds a graph into per-kind triple relations
// (from, label, to), node ids stored as int labels, plus graph_root(node).
func GraphToTriples(g *ssd.Graph) Database {
	db := Database{
		TriplesSym:    NewRelation("from", "label", "to"),
		TriplesString: NewRelation("from", "label", "to"),
		TriplesInt:    NewRelation("from", "label", "to"),
		TriplesFloat:  NewRelation("from", "label", "to"),
		TriplesBool:   NewRelation("from", "label", "to"),
		TriplesOID:    NewRelation("from", "label", "to"),
		RootRel:       NewRelation("node"),
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			db[tripleRelName(e.Label.Kind())].Add(ssd.Int(int64(v)), e.Label, ssd.Int(int64(e.To)))
		}
	}
	db[RootRel].Add(ssd.Int(int64(g.Root())))
	return db
}

// TriplesToGraph rebuilds a graph from the triple relations. Node ids in
// the triples become dense node ids in the result.
func TriplesToGraph(db Database) (*ssd.Graph, error) {
	rootRel, ok := db[RootRel]
	if !ok || rootRel.Len() != 1 {
		return nil, fmt.Errorf("relstore: triples need exactly one %s row", RootRel)
	}
	rootID, ok := rootRel.Rows()[0][0].IntVal()
	if !ok {
		return nil, fmt.Errorf("relstore: %s value is not an int", RootRel)
	}
	g := ssd.New()
	remap := map[int64]ssd.NodeID{rootID: g.Root()}
	node := func(id int64) ssd.NodeID {
		if n, ok := remap[id]; ok {
			return n
		}
		n := g.AddNode()
		remap[id] = n
		return n
	}
	for _, name := range []string{TriplesSym, TriplesString, TriplesInt, TriplesFloat, TriplesBool, TriplesOID} {
		rel, ok := db[name]
		if !ok {
			continue
		}
		fi, li, ti := rel.Col("from"), rel.Col("label"), rel.Col("to")
		if fi < 0 || li < 0 || ti < 0 {
			return nil, fmt.Errorf("relstore: %s must have from/label/to columns", name)
		}
		for _, row := range rel.Rows() {
			from, ok1 := row[fi].IntVal()
			to, ok2 := row[ti].IntVal()
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("relstore: %s node ids must be ints", name)
			}
			g.AddEdge(node(from), row[li], node(to))
		}
	}
	return g, nil
}
