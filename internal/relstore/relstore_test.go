package relstore

import (
	"testing"

	"repro/internal/bisim"
	"repro/internal/query"
	"repro/internal/ssd"
)

func movies() *Relation {
	r := NewRelation("title", "year", "director")
	r.Add(ssd.Str("Casablanca"), ssd.Int(1942), ssd.Str("Curtiz"))
	r.Add(ssd.Str("Annie Hall"), ssd.Int(1977), ssd.Str("Allen"))
	r.Add(ssd.Str("Sleeper"), ssd.Int(1973), ssd.Str("Allen"))
	return r
}

func directors() *Relation {
	r := NewRelation("director", "born")
	r.Add(ssd.Str("Curtiz"), ssd.Int(1886))
	r.Add(ssd.Str("Allen"), ssd.Int(1935))
	return r
}

func TestAddDedup(t *testing.T) {
	r := NewRelation("a")
	if !r.Add(ssd.Int(1)) || r.Add(ssd.Int(1)) {
		t.Error("set semantics broken")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRelation("a", "b").Add(ssd.Int(1))
}

func TestSelectProject(t *testing.T) {
	m := movies()
	allen := SelectEq(m, "director", ssd.Str("Allen"))
	if allen.Len() != 2 {
		t.Fatalf("allen movies = %d", allen.Len())
	}
	titles := Project(allen, "title")
	if titles.Len() != 2 || titles.Arity() != 1 {
		t.Fatalf("titles = %v", titles)
	}
	years := Project(movies(), "director")
	if years.Len() != 2 { // Curtiz, Allen — projection dedups
		t.Errorf("distinct directors = %d, want 2", years.Len())
	}
}

func TestJoin(t *testing.T) {
	j := Join(movies(), directors())
	if j.Len() != 3 {
		t.Fatalf("join rows = %d, want 3", j.Len())
	}
	if j.Arity() != 4 { // title, year, director, born
		t.Fatalf("join arity = %d", j.Arity())
	}
	bornCol := j.Col("born")
	for _, row := range j.Rows() {
		if _, ok := row[bornCol].IntVal(); !ok {
			t.Error("born column not joined")
		}
	}
	// Join with no shared columns degenerates to product size.
	p := Join(NewRelationFrom("x", ssd.Int(1), ssd.Int(2)), NewRelationFrom("y", ssd.Int(3)))
	if p.Len() != 2 {
		t.Errorf("joinless join = %d rows, want 2", p.Len())
	}
}

// NewRelationFrom builds a unary relation for tests.
func NewRelationFrom(col string, vals ...ssd.Label) *Relation {
	r := NewRelation(col)
	for _, v := range vals {
		r.Add(v)
	}
	return r
}

func TestUnionDiff(t *testing.T) {
	a := NewRelationFrom("x", ssd.Int(1), ssd.Int(2))
	b := NewRelationFrom("x", ssd.Int(2), ssd.Int(3))
	if got := Union(a, b).Len(); got != 3 {
		t.Errorf("union = %d", got)
	}
	if got := Diff(a, b).Len(); got != 1 {
		t.Errorf("diff = %d", got)
	}
}

func TestRenameProduct(t *testing.T) {
	a := NewRelationFrom("x", ssd.Int(1))
	r := Rename(a, "x", "y")
	if r.Col("y") != 0 || r.Col("x") != -1 {
		t.Error("rename broken")
	}
	p := Product(a, a)
	if p.Len() != 1 || p.Arity() != 2 {
		t.Errorf("product = %d rows, arity %d", p.Len(), p.Arity())
	}
	if p.Col("s.x") < 0 {
		t.Error("product should prefix colliding columns")
	}
}

func TestEqual(t *testing.T) {
	a := movies()
	b := movies()
	if !a.Equal(b) {
		t.Error("identical relations unequal")
	}
	b.Add(ssd.Str("Zelig"), ssd.Int(1983), ssd.Str("Allen"))
	if a.Equal(b) {
		t.Error("different relations equal")
	}
}

func TestRelationalRoundTrip(t *testing.T) {
	db := Database{"movies": movies(), "directors": directors()}
	g := EncodeRelational(db)
	back, err := DecodeRelational(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("tables = %d", len(back))
	}
	for name, rel := range db {
		// Column order may differ (decode sorts); compare projected.
		got := Project(back[name], rel.Cols...)
		if !got.Equal(rel) {
			t.Errorf("%s round trip:\n got %s\nwant %s", name, got, rel)
		}
	}
}

func TestDecodeRejectsRagged(t *testing.T) {
	g := ssd.MustParse(`{t: {tuple: {a: 1}, tuple: {a: 1, b: 2}}}`)
	if _, err := DecodeRelational(g); err == nil {
		t.Error("ragged table should not decode")
	}
	g2 := ssd.MustParse(`{t: {nottuple: {a: 1}}}`)
	if _, err := DecodeRelational(g2); err == nil {
		t.Error("non-tuple edge should not decode")
	}
	g3 := ssd.MustParse(`{t: {tuple: {a: {1, 2}}}}`)
	if _, err := DecodeRelational(g3); err == nil {
		t.Error("multi-valued column should not decode")
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	g := ssd.MustParse(`
	{Entry: #e{Movie: {Title: "Casablanca", Year: 1942, Rating: 8.5,
	                   Classic: true, Self: #e}}}`)
	db := GraphToTriples(g)
	back, err := TriplesToGraph(db)
	if err != nil {
		t.Fatal(err)
	}
	if !bisim.Equal(g, back) {
		t.Errorf("triple round trip changed value:\n got %s\nwant %s",
			ssd.FormatRoot(back), ssd.FormatRoot(g))
	}
}

func TestTriplesPerKind(t *testing.T) {
	g := ssd.MustParse(`{a: 1, b: "s", c: 2.5, d: true}`)
	db := GraphToTriples(g)
	if db[TriplesSym].Len() != 4 {
		t.Errorf("sym triples = %d, want 4", db[TriplesSym].Len())
	}
	if db[TriplesInt].Len() != 1 || db[TriplesString].Len() != 1 ||
		db[TriplesFloat].Len() != 1 || db[TriplesBool].Len() != 1 {
		t.Error("per-kind shredding wrong")
	}
}

// E5 heart: the query language over the relational encoding returns the
// same answer as the relational algebra plan.
func TestQueryEquivalenceSelectProject(t *testing.T) {
	db := Database{"movies": movies()}
	g := EncodeRelational(db)

	// RA: π_title(σ_director="Allen"(movies))
	ra := Project(SelectEq(movies(), "director", ssd.Str("Allen")), "title")

	// Query language over the graph encoding.
	q := query.MustParse(`
		select {tuple: {title: T}}
		from DB.movies.tuple R, R.title T, R.director D
		where D = "Allen"`)
	res, err := query.Eval(q, g)
	if err != nil {
		t.Fatal(err)
	}
	// Decode the result as a single-table database (wrap in a table edge).
	wrapped := ssd.New()
	wrapped.AddEdge(wrapped.Root(), ssd.Sym("out"), wrapped.Graft(res, res.Root()))
	got, err := DecodeRelational(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].Equal(ra) {
		t.Errorf("query result:\n%s\nrelational algebra:\n%s", got["out"], ra)
	}
}

func TestQueryEquivalenceJoin(t *testing.T) {
	db := Database{"movies": movies(), "directors": directors()}
	g := EncodeRelational(db)

	// RA: π_title,born(movies ⋈ directors)
	ra := Project(Join(movies(), directors()), "title", "born")

	q := query.MustParse(`
		select {tuple: {title: T, born: B}}
		from DB.movies.tuple R, R.title T, R.director D,
		     DB.directors.tuple S, S.director D2, S.born B
		where D = D2`)
	res, err := query.Eval(q, g)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := ssd.New()
	wrapped.AddEdge(wrapped.Root(), ssd.Sym("out"), wrapped.Graft(res, res.Root()))
	got, err := DecodeRelational(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	want := Project(got["out"], "title", "born") // align column order
	if !want.Equal(ra) {
		t.Errorf("query join:\n%s\nRA join:\n%s", want, ra)
	}
}
