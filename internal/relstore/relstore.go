// Package relstore is the relational substrate the paper leans on twice:
// §2 notes it is "straightforward to encode relational and object-oriented
// databases in this model", and §3's first computational strategy models
// the graph itself as a relation of (node-id, label, node-id) triples. The
// package provides a small set-semantics relational algebra (select,
// project, rename, natural join, union, difference, product), the
// relational↔graph codecs, and the triple-store encoding of graphs with
// one relation per label kind (the paper's complication 1: "labels are
// drawn from a heterogeneous collection of types, so it may be appropriate
// to use more than one relation").
//
// Experiment E5 uses this package to check the paper's claim that the
// query language restricted to relationally-encoded data expresses exactly
// the relational algebra: both sides of each equivalence are executed and
// compared.
package relstore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ssd"
)

// Relation is a named-column set of tuples over label values.
type Relation struct {
	Cols []string
	rows [][]ssd.Label
	seen map[string]bool
}

// NewRelation returns an empty relation with the given columns.
func NewRelation(cols ...string) *Relation {
	return &Relation{Cols: cols, seen: map[string]bool{}}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Cols) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Rows returns the tuples (callers must not mutate).
func (r *Relation) Rows() [][]ssd.Label { return r.rows }

// Add inserts a tuple (set semantics); it reports whether it was new and
// panics if the arity is wrong.
func (r *Relation) Add(row ...ssd.Label) bool {
	if len(row) != len(r.Cols) {
		panic(fmt.Sprintf("relstore: arity mismatch: %d values for %d columns", len(row), len(r.Cols)))
	}
	k := rowKey(row)
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	r.rows = append(r.rows, append([]ssd.Label(nil), row...))
	return true
}

// Has reports membership.
func (r *Relation) Has(row []ssd.Label) bool { return r.seen[rowKey(row)] }

func rowKey(row []ssd.Label) string {
	var b strings.Builder
	for _, l := range row {
		b.WriteByte(byte(l.Kind()))
		b.WriteString(l.String())
		b.WriteByte(0)
	}
	return b.String()
}

// Col returns the index of a column, or -1.
func (r *Relation) Col(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Equal reports set equality of two relations with identical column lists.
func (r *Relation) Equal(s *Relation) bool {
	if len(r.Cols) != len(s.Cols) || r.Len() != s.Len() {
		return false
	}
	for i := range r.Cols {
		if r.Cols[i] != s.Cols[i] {
			return false
		}
	}
	for _, row := range r.rows {
		if !s.Has(row) {
			return false
		}
	}
	return true
}

// Sorted returns rows in a canonical order for printing.
func (r *Relation) Sorted() [][]ssd.Label {
	out := append([][]ssd.Label(nil), r.rows...)
	sort.Slice(out, func(i, j int) bool { return rowKey(out[i]) < rowKey(out[j]) })
	return out
}

// String renders the relation as a small table.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, "\t"))
	b.WriteByte('\n')
	for _, row := range r.Sorted() {
		parts := make([]string, len(row))
		for i, l := range row {
			parts[i] = l.String()
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Relational algebra (set semantics)

// Select keeps tuples satisfying pred.
func Select(r *Relation, pred func(row []ssd.Label) bool) *Relation {
	out := NewRelation(r.Cols...)
	for _, row := range r.rows {
		if pred(row) {
			out.Add(row...)
		}
	}
	return out
}

// SelectEq keeps tuples whose column equals a constant.
func SelectEq(r *Relation, col string, v ssd.Label) *Relation {
	i := r.Col(col)
	if i < 0 {
		return NewRelation(r.Cols...)
	}
	return Select(r, func(row []ssd.Label) bool { return row[i].Equal(v) })
}

// Project keeps the named columns (deduplicating).
func Project(r *Relation, cols ...string) *Relation {
	idx := make([]int, len(cols))
	for k, c := range cols {
		idx[k] = r.Col(c)
		if idx[k] < 0 {
			return NewRelation(cols...)
		}
	}
	out := NewRelation(cols...)
	row2 := make([]ssd.Label, len(cols))
	for _, row := range r.rows {
		for k, i := range idx {
			row2[k] = row[i]
		}
		out.Add(row2...)
	}
	return out
}

// Rename renames a column.
func Rename(r *Relation, from, to string) *Relation {
	cols := append([]string(nil), r.Cols...)
	for i, c := range cols {
		if c == from {
			cols[i] = to
		}
	}
	out := NewRelation(cols...)
	for _, row := range r.rows {
		out.Add(row...)
	}
	return out
}

// Union unions two union-compatible relations.
func Union(r, s *Relation) *Relation {
	out := NewRelation(r.Cols...)
	for _, row := range r.rows {
		out.Add(row...)
	}
	for _, row := range s.rows {
		out.Add(row...)
	}
	return out
}

// Diff returns r − s (union-compatible).
func Diff(r, s *Relation) *Relation {
	out := NewRelation(r.Cols...)
	for _, row := range r.rows {
		if !s.Has(row) {
			out.Add(row...)
		}
	}
	return out
}

// Join computes the natural join on shared column names, using a hash join
// on the shared columns.
func Join(r, s *Relation) *Relation {
	var shared []string
	for _, c := range r.Cols {
		if s.Col(c) >= 0 {
			shared = append(shared, c)
		}
	}
	var extraCols []string
	var extraIdx []int
	for i, c := range s.Cols {
		if r.Col(c) < 0 {
			extraCols = append(extraCols, c)
			extraIdx = append(extraIdx, i)
		}
	}
	out := NewRelation(append(append([]string(nil), r.Cols...), extraCols...)...)

	sharedR := make([]int, len(shared))
	sharedS := make([]int, len(shared))
	for k, c := range shared {
		sharedR[k] = r.Col(c)
		sharedS[k] = s.Col(c)
	}
	key := func(row []ssd.Label, idx []int) string {
		var b strings.Builder
		for _, i := range idx {
			b.WriteByte(byte(row[i].Kind()))
			b.WriteString(row[i].String())
			b.WriteByte(0)
		}
		return b.String()
	}
	// Build on the smaller side.
	build, probe := s, r
	buildIdx, probeIdx := sharedS, sharedR
	swapped := false
	if r.Len() < s.Len() {
		build, probe = r, s
		buildIdx, probeIdx = sharedR, sharedS
		swapped = true
	}
	table := make(map[string][]int, build.Len())
	for i, row := range build.rows {
		table[key(row, buildIdx)] = append(table[key(row, buildIdx)], i)
	}
	for _, prow := range probe.rows {
		for _, bi := range table[key(prow, probeIdx)] {
			brow := build.rows[bi]
			var rrow, srow []ssd.Label
			if swapped {
				rrow, srow = brow, prow
			} else {
				rrow, srow = prow, brow
			}
			merged := append([]ssd.Label(nil), rrow...)
			for _, i := range extraIdx {
				merged = append(merged, srow[i])
			}
			out.Add(merged...)
		}
	}
	return out
}

// Product computes the cross product; column collisions in s are prefixed.
func Product(r, s *Relation) *Relation {
	cols := append([]string(nil), r.Cols...)
	for _, c := range s.Cols {
		name := c
		if r.Col(c) >= 0 {
			name = "s." + c
		}
		cols = append(cols, name)
	}
	out := NewRelation(cols...)
	for _, a := range r.rows {
		for _, b := range s.rows {
			out.Add(append(append([]ssd.Label(nil), a...), b...)...)
		}
	}
	return out
}

// Database is a named collection of relations.
type Database map[string]*Relation
