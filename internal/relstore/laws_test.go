package relstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ssd"
)

// Property tests for the algebraic laws the relational substrate must obey
// (set semantics makes these exact identities).

func randRel(rng *rand.Rand, cols []string, rows int) *Relation {
	r := NewRelation(cols...)
	for i := 0; i < rows; i++ {
		row := make([]ssd.Label, len(cols))
		for j := range cols {
			switch rng.Intn(3) {
			case 0:
				row[j] = ssd.Int(int64(rng.Intn(5)))
			case 1:
				row[j] = ssd.Str(string(rune('a' + rng.Intn(4))))
			default:
				row[j] = ssd.Bool(rng.Intn(2) == 0)
			}
		}
		r.Add(row...)
	}
	return r
}

func TestUnionLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRel(rng, []string{"x", "y"}, 12)
		b := randRel(rng, []string{"x", "y"}, 12)
		// Commutativity and idempotence.
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Union(a, a).Equal(a) {
			return false
		}
		// A ⊆ A ∪ B.
		u := Union(a, b)
		for _, row := range a.Rows() {
			if !u.Has(row) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDiffLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRel(rng, []string{"x"}, 10)
		b := randRel(rng, []string{"x"}, 10)
		// (A − B) ∪ (A ∩ B) = A, with A ∩ B = A − (A − B).
		diff := Diff(a, b)
		inter := Diff(a, diff)
		if !Union(diff, inter).Equal(a) {
			return false
		}
		// A − A = ∅.
		return Diff(a, a).Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJoinCommutesUpToColumnOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRel(rng, []string{"x", "y"}, 10)
		b := randRel(rng, []string{"y", "z"}, 10)
		ab := Join(a, b)
		ba := Join(b, a)
		// Same tuples once projected to a common column order.
		cols := []string{"x", "y", "z"}
		return Project(ab, cols...).Equal(Project(ba, cols...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJoinSubsetOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRel(rng, []string{"x", "y"}, 8)
		b := randRel(rng, []string{"y", "z"}, 8)
		join := Join(a, b)
		// |A ⋈ B| ≤ |A × B|, and selecting the equality from the product
		// gives the same count.
		prod := Product(a, b)
		yi, yj := prod.Col("y"), prod.Col("s.y")
		sel := Select(prod, func(row []ssd.Label) bool { return row[yi].Equal(row[yj]) })
		return join.Len() == sel.Len() && join.Len() <= prod.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestProjectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRel(rng, []string{"x", "y", "z"}, 15)
		p := Project(a, "x", "y")
		return Project(p, "x", "y").Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSelectDistributesOverUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRel(rng, []string{"x"}, 10)
		b := randRel(rng, []string{"x"}, 10)
		pred := func(row []ssd.Label) bool {
			v, ok := row[0].IntVal()
			return ok && v >= 2
		}
		lhs := Select(Union(a, b), pred)
		rhs := Union(Select(a, pred), Select(b, pred))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeStableUnderRowOrder(t *testing.T) {
	// Encoding is deterministic regardless of insertion order.
	a := NewRelation("x", "y")
	a.Add(ssd.Int(1), ssd.Str("a"))
	a.Add(ssd.Int(2), ssd.Str("b"))
	b := NewRelation("x", "y")
	b.Add(ssd.Int(2), ssd.Str("b"))
	b.Add(ssd.Int(1), ssd.Str("a"))
	ga := EncodeRelational(Database{"t": a})
	gb := EncodeRelational(Database{"t": b})
	if ssd.FormatRoot(ga) != ssd.FormatRoot(gb) {
		t.Error("encoding depends on insertion order")
	}
}
