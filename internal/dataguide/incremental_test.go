package dataguide

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ssd"
)

// equalGuides compares two guides structurally from the roots: label paths
// and extents must coincide. Edge order may differ (ApplyDelta appends
// repointed edges), so comparison matches per exact label.
func equalGuides(a, b *Guide) error {
	type pair struct{ na, nb ssd.NodeID }
	seen := map[pair]bool{}
	var walk func(na, nb ssd.NodeID, path string) error
	walk = func(na, nb ssd.NodeID, path string) error {
		p := pair{na, nb}
		if seen[p] {
			return nil
		}
		seen[p] = true
		if !reflect.DeepEqual(a.Extent[na], b.Extent[nb]) {
			return fmt.Errorf("extent mismatch at %q: %v vs %v", path, a.Extent[na], b.Extent[nb])
		}
		ea, eb := a.G.Out(na), b.G.Out(nb)
		if len(ea) != len(eb) {
			return fmt.Errorf("degree mismatch at %q: %d vs %d", path, len(ea), len(eb))
		}
		for _, e := range ea {
			to := exactSuccessor(b.G, nb, e.Label)
			if to == ssd.InvalidNode {
				return fmt.Errorf("label %v missing at %q", e.Label, path)
			}
			if err := walk(e.To, to, path+"."+e.Label.String()); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(a.G.Root(), b.G.Root(), "")
}

func randGuideGraph(rng *rand.Rand) *ssd.Graph {
	g := ssd.New()
	n := 3 + rng.Intn(15)
	g.AddNodes(n)
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Sym("c"), ssd.Str("v"), ssd.Int(1)}
	for i := 0; i < 3*n; i++ {
		g.AddEdge(ssd.NodeID(rng.Intn(g.NumNodes())),
			labels[rng.Intn(len(labels))],
			ssd.NodeID(rng.Intn(g.NumNodes())))
	}
	g.Dedup()
	return g
}

func TestApplyDeltaAddsMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Sym("x"), ssd.Str("new")}
	for iter := 0; iter < 150; iter++ {
		g := randGuideGraph(rng)
		guide := MustBuild(g)
		// Random add-only batch: edges between existing nodes plus a chain
		// through freshly allocated ones.
		var delta ssd.Delta
		for k := 0; k < 1+rng.Intn(4); k++ {
			var to ssd.NodeID
			from := ssd.NodeID(rng.Intn(g.NumNodes()))
			if rng.Intn(3) == 0 {
				to = g.AddNode()
			} else {
				to = ssd.NodeID(rng.Intn(g.NumNodes()))
			}
			l := labels[rng.Intn(len(labels))]
			g.AddEdge(from, l, to)
			delta.Added = append(delta.Added, ssd.EdgeRec{From: from, Label: l, To: to})
		}
		inc, ok := guide.ApplyDelta(g, delta, 0)
		if !ok {
			t.Fatalf("iter %d: ApplyDelta refused an add-only delta", iter)
		}
		if err := equalGuides(inc, MustBuild(g)); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestApplyDeltaDeleteFallback(t *testing.T) {
	g := ssd.MustParse(`{Entry: {Movie: {Title: "Casablanca"}}, Loose: {}}`)
	guide := MustBuild(g)

	// A removal whose source is accessible must force a rebuild.
	entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
	movie := g.LookupFirst(entry, ssd.Sym("Movie"))
	if _, ok := guide.ApplyDelta(g, ssd.Delta{
		Removed: []ssd.EdgeRec{{From: entry, Label: ssd.Sym("Movie"), To: movie}},
	}, 0); ok {
		t.Fatal("accessible removal did not fall back")
	}

	// A removal on an unreachable node is provably harmless: the guide is
	// returned unchanged (shared).
	orphan := g.AddNode()
	leaf := g.AddLeaf(orphan, ssd.Sym("x"))
	g.DeleteEdge(orphan, ssd.Sym("x"), leaf)
	inc, ok := guide.ApplyDelta(g, ssd.Delta{
		Removed: []ssd.EdgeRec{{From: orphan, Label: ssd.Sym("x"), To: leaf}},
	}, 0)
	if !ok || inc != guide {
		t.Fatalf("unreachable removal: ok=%v, shared=%v", ok, inc == guide)
	}
}

// TestApplyDeltaSharesUntouched pins the MVCC contract: the old guide keeps
// answering for the old graph after ApplyDelta.
func TestApplyDeltaSharesUntouched(t *testing.T) {
	g := ssd.MustParse(`{Entry: {Movie: {Title: "Casablanca"}}}`)
	guide := MustBuild(g)
	beforeNodes := guide.NumNodes()
	beforePaths := fmt.Sprint(guide.Paths(4, 0))

	h := g.Clone()
	entry := h.LookupFirst(h.Root(), ssd.Sym("Entry"))
	n := h.AddNode()
	h.AddEdge(entry, ssd.Sym("Series"), n)
	inc, ok := guide.ApplyDelta(h, ssd.Delta{
		Added: []ssd.EdgeRec{{From: entry, Label: ssd.Sym("Series"), To: n}},
	}, 0)
	if !ok {
		t.Fatal("ApplyDelta failed")
	}
	if guide.NumNodes() != beforeNodes || fmt.Sprint(guide.Paths(4, 0)) != beforePaths {
		t.Fatal("old guide mutated by ApplyDelta")
	}
	if err := equalGuides(inc, MustBuild(h)); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeltaCycles exercises additions that create cycles and shared
// extents, the interning-sensitive cases of subset construction.
func TestApplyDeltaCycles(t *testing.T) {
	g := ssd.MustParse(`{A: {Next: {}}, B: {Next: {}}}`)
	guide := MustBuild(g)
	a := g.LookupFirst(g.Root(), ssd.Sym("A"))
	b := g.LookupFirst(g.Root(), ssd.Sym("B"))
	var delta ssd.Delta
	add := func(from ssd.NodeID, l ssd.Label, to ssd.NodeID) {
		g.AddEdge(from, l, to)
		delta.Added = append(delta.Added, ssd.EdgeRec{From: from, Label: l, To: to})
	}
	aNext := g.LookupFirst(a, ssd.Sym("Next"))
	add(aNext, ssd.Sym("Next"), a) // cycle A → Next → Next → A
	add(b, ssd.Sym("Peer"), a)     // cross-link sharing A's extent
	add(g.Root(), ssd.Sym("B"), a) // grows an existing extent set

	inc, ok := guide.ApplyDelta(g, delta, 0)
	if !ok {
		t.Fatal("ApplyDelta failed")
	}
	if err := equalGuides(inc, MustBuild(g)); err != nil {
		t.Fatal(err)
	}
}
