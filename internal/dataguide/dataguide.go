// Package dataguide implements strong DataGuides (§5 of the paper, Goldman &
// Widom [22]): a deterministic structural summary of a rooted edge-labeled
// graph, built by subset construction. Every label path from the database
// root appears exactly once in the guide, and each guide node carries the
// extent — the exact set of database nodes reachable by the paths that lead
// to it. The guide therefore doubles as a path index: evaluate a path query
// over the (small) guide and union the extents of the accepting guide nodes
// (experiment E3), and as a browsing aid (§1.3): the guide is the "schema
// you can see" when none was declared. Construction is linear on tree-like
// data and exponential in the worst case on highly irregular graphs — the
// known subset-construction blowup measured in experiment E9.
package dataguide

import (
	"encoding/binary"
	"sort"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Guide is a strong DataGuide over a source graph.
type Guide struct {
	// G is the guide graph itself: deterministic (at most one out-edge per
	// label per node), rooted at G.Root().
	G *ssd.Graph
	// Extent holds, for each guide node (dense, indexed by guide NodeID),
	// the sorted set of source nodes reachable by exactly the label paths
	// that reach the guide node.
	Extent [][]ssd.NodeID

	source ssd.GraphStore
	// tbl is the construction-side state (extent interning and membership),
	// carried along so incremental maintenance (ApplyDelta) does not pay an
	// O(guide) rebuild per batch. Only the table's current owner may extend
	// it; see internTable.
	tbl *internTable
	// builtNodes is the guide size at the last full Build. ApplyDelta
	// repoints may orphan guide nodes; once the guide has grown well past
	// this baseline the garbage outweighs the maintenance savings and
	// ApplyDelta declines (ok=false), steering the caller to a fresh Build.
	builtNodes int
}

// internTable is the subset-construction working state shared along one
// chain of guide versions: the extent-set intern map and, for each source
// node, the guide nodes whose extent contains it (the inverted index that
// makes dirty-region detection O(|delta|)). Both grow append-only. The
// owner pointer gates mutation: only ApplyDelta on the owning version may
// extend the table (single-writer, like all maintenance); any other guide
// rebuilds its own. Query-side readers never touch the table.
type internTable struct {
	m      map[string]ssd.NodeID
	member map[ssd.NodeID][]ssd.NodeID
	owner  *Guide
}

func (t *internTable) addMember(target []ssd.NodeID, gn ssd.NodeID) {
	for _, v := range target {
		t.member[v] = append(t.member[v], gn)
	}
}

// Build constructs the strong DataGuide of the part of g accessible from
// the root. The maxNodes cap (0 = unlimited) guards against the exponential
// worst case; Build returns ok=false if the cap is hit. Any GraphStore
// works as the source — subset construction only reads Root and Out.
func Build(g ssd.GraphStore, maxNodes int) (*Guide, bool) {
	guide := &Guide{G: ssd.New(), source: g}
	rootSet := []ssd.NodeID{g.Root()}
	tbl := &internTable{
		m:      map[string]ssd.NodeID{setKey(rootSet): guide.G.Root()},
		member: make(map[ssd.NodeID][]ssd.NodeID),
		owner:  guide,
	}
	tbl.addMember(rootSet, guide.G.Root())
	guide.Extent = [][]ssd.NodeID{rootSet}
	guide.tbl = tbl
	b := &builder{src: g, guide: guide, tbl: tbl, maxNodes: maxNodes}
	if !b.run([]task{{guide.G.Root(), rootSet}}) {
		return nil, false
	}
	guide.builtNodes = guide.G.NumNodes()
	return guide, true
}

// task is one pending subset-construction expansion: a guide node whose
// successors have not been computed yet, with its extent.
type task struct {
	guideNode ssd.NodeID
	set       []ssd.NodeID
}

// builder is the shared subset-construction engine behind Build and
// ApplyDelta: it expands pending guide nodes over the source graph,
// interning extent sets so every distinct set occurs once.
type builder struct {
	src      ssd.GraphStore
	guide    *Guide
	tbl      *internTable
	maxNodes int
}

// intern returns the guide node carrying the extent `target`, creating one
// (and reporting existed=false, so the caller must schedule its expansion)
// if the set is new. full=true means the node cap was hit.
func (b *builder) intern(target []ssd.NodeID) (gn ssd.NodeID, existed, full bool) {
	key := setKey(target)
	if gn, ok := b.tbl.m[key]; ok {
		return gn, true, false
	}
	if b.maxNodes > 0 && b.guide.G.NumNodes() >= b.maxNodes {
		return ssd.InvalidNode, false, true
	}
	gn = b.guide.G.AddNode()
	b.tbl.m[key] = gn
	b.guide.Extent = append(b.guide.Extent, target)
	b.tbl.addMember(target, gn)
	return gn, false, false
}

// run drains the expansion queue. It returns false if the node cap was hit.
func (b *builder) run(queue []task) bool {
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		// Group the successors of every node in the set by label.
		byLabel := make(map[ssd.Label][]ssd.NodeID)
		for _, v := range t.set {
			for _, e := range b.src.Out(v) {
				byLabel[e.Label] = append(byLabel[e.Label], e.To)
			}
		}
		labels := make([]ssd.Label, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i].Less(labels[j]) })
		for _, l := range labels {
			target := dedupNodes(byLabel[l])
			gn, existed, full := b.intern(target)
			if full {
				return false
			}
			if !existed {
				queue = append(queue, task{gn, target})
			}
			b.guide.G.AddEdge(t.guideNode, l, gn)
		}
	}
	return true
}

// MustBuild builds with no node cap.
func MustBuild(g ssd.GraphStore) *Guide {
	guide, _ := Build(g, 0)
	return guide
}

func dedupNodes(ns []ssd.NodeID) []ssd.NodeID {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	w := 0
	for i, n := range ns {
		if i > 0 && n == ns[w-1] {
			continue
		}
		ns[w] = n
		w++
	}
	return ns[:w]
}

func setKey(ns []ssd.NodeID) string {
	buf := make([]byte, 0, len(ns)*3)
	for _, n := range ns {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return string(buf)
}

// NumNodes returns the guide size in nodes.
func (d *Guide) NumNodes() int { return d.G.NumNodes() }

// LookupPath follows an exact label path from the guide root and returns the
// extent at its end — the set of database nodes reachable by that path. The
// second result is false if the path does not occur in the database.
func (d *Guide) LookupPath(labels []ssd.Label) ([]ssd.NodeID, bool) {
	n := d.G.Root()
	for _, l := range labels {
		n = d.G.LookupFirst(n, l)
		if n == ssd.InvalidNode {
			return nil, false
		}
	}
	return d.Extent[n], true
}

// Eval evaluates a compiled path expression using the guide as a path index:
// the automaton runs over the guide (usually far smaller than the data) and
// the extents of accepting guide nodes are unioned. For strong DataGuides
// this returns exactly the same node set as evaluating over the data,
// because guide label paths and data label paths coincide and the extent of
// a guide node is precisely the target set of its paths.
func (d *Guide) Eval(au *pathexpr.Automaton) []ssd.NodeID {
	hits := au.Eval(d.G, d.G.Root())
	seen := make(map[ssd.NodeID]bool)
	out := make([]ssd.NodeID, 0, len(hits))
	for _, gn := range hits {
		for _, v := range d.Extent[gn] {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExtentCursor is a pull-based iterator over the database nodes matched by a
// path expression evaluated through the guide — the iterator form of Eval,
// consumed by the query executor's dataguide-pruned access path.
type ExtentCursor struct {
	nodes []ssd.NodeID
	i     int
}

// Cursor evaluates au over the guide and returns a cursor over the deduped,
// sorted union of the accepting extents. The automaton runs over the (small)
// guide eagerly — that is the point of the access path — but downstream
// operators pull nodes one at a time.
func (d *Guide) Cursor(au *pathexpr.Automaton) *ExtentCursor {
	return &ExtentCursor{nodes: d.Eval(au)}
}

// Next yields the next matching database node, or ok=false at the end.
func (c *ExtentCursor) Next() (ssd.NodeID, bool) {
	if c.i >= len(c.nodes) {
		return ssd.InvalidNode, false
	}
	n := c.nodes[c.i]
	c.i++
	return n, true
}

// Paths enumerates up to limit distinct label paths of length ≤ maxDepth
// from the root — the browsing view a DataGuide gives a user who does not
// know the schema (§1.3, §5 "schemas are useful for browsing").
func (d *Guide) Paths(maxDepth, limit int) [][]ssd.Label {
	var out [][]ssd.Label
	type frame struct {
		node ssd.NodeID
		path []ssd.Label
	}
	queue := []frame{{d.G.Root(), nil}}
	for len(queue) > 0 && (limit <= 0 || len(out) < limit) {
		f := queue[0]
		queue = queue[1:]
		if len(f.path) > 0 {
			out = append(out, f.path)
		}
		if len(f.path) >= maxDepth {
			continue
		}
		for _, e := range d.G.Out(f.node) {
			p := append(append([]ssd.Label(nil), f.path...), e.Label)
			queue = append(queue, frame{e.To, p})
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Annotation summarizes one guide node for browsing output.
type Annotation struct {
	Path      []ssd.Label
	ExtentLen int
}

// Summary returns annotations for the first `limit` guide paths in BFS
// order: each path with the size of its extent.
func (d *Guide) Summary(maxDepth, limit int) []Annotation {
	paths := d.Paths(maxDepth, limit)
	out := make([]Annotation, 0, len(paths))
	for _, p := range paths {
		ext, _ := d.LookupPath(p)
		out = append(out, Annotation{Path: p, ExtentLen: len(ext)})
	}
	return out
}
