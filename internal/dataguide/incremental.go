package dataguide

import (
	"sort"

	"repro/internal/ssd"
)

// This file maintains a strong DataGuide incrementally under mutation, in
// the spirit of incremental derived-structure maintenance for deductive
// databases: re-derive only what a delta touches. Adding edge u -l→ v to the
// data graph changes exactly the l-successor sets of the guide nodes whose
// extent contains u (an extent is determined by the label paths reaching it,
// which additions never shrink); ApplyDelta recomputes those successor sets
// and lets the shared subset-construction builder expand any genuinely new
// extent set over the post-mutation graph. Removals can shrink extents
// arbitrarily far downstream, so they fall back conservatively: if a removed
// edge's source occurs in any extent the whole guide is declared dirty
// (ok=false, caller rebuilds); removals outside the accessible region are
// proven harmless and skipped.

// ApplyDelta derives the guide of g — the post-mutation source graph — from
// the receiver, which must be the guide of the pre-mutation graph. It never
// mutates the receiver's queryable state: untouched extents and adjacency
// are shared, so readers of the old guide are unaffected (the MVCC contract
// of internal/core). Maintenance itself is single-writer: concurrent
// ApplyDelta calls, even on different versions of one chain, must be
// serialized by the caller. The second result is false when incremental
// maintenance is not possible — an accessible-region removal, or the
// maxNodes cap (0 = unlimited) was hit — and the caller should rebuild.
//
// Repointed guide nodes may leave their old successors unreachable from the
// guide root; those stay in the graph and extent table as garbage until the
// next full rebuild, and keep being maintained so that interned extent sets
// stay reusable. Eval, LookupPath, Paths and Summary all start from the
// root and never see them.
func (d *Guide) ApplyDelta(g *ssd.Graph, delta ssd.Delta, maxNodes int) (*Guide, bool) {
	if d.G.NumNodes() > 2*d.builtNodes+64 {
		// Accumulated garbage from repoints outweighs the incremental
		// savings; bound it by declining so the caller rebuilds.
		return nil, false
	}
	delta = delta.Normalize()
	tbl := d.tbl
	if tbl == nil || tbl.owner != d {
		// The receiver is not the tip of its maintenance chain (or predates
		// the table): rebuild the working state from its extents.
		tbl = rebuildTable(d)
	}
	for _, r := range delta.Removed {
		if len(tbl.member[r.From]) > 0 {
			return nil, false // removal touches the accessible region
		}
	}
	// Dirty pairs: (guide node, label) whose successor set may have grown.
	bySource := make(map[ssd.NodeID][]ssd.Label)
	for _, a := range delta.Added {
		bySource[a.From] = append(bySource[a.From], a.Label)
	}
	dirty := make(map[ssd.NodeID]map[ssd.Label]bool)
	for u, ls := range bySource {
		for _, gn := range tbl.member[u] {
			labels := dirty[gn]
			if labels == nil {
				labels = make(map[ssd.Label]bool, len(ls))
				dirty[gn] = labels
			}
			for _, l := range ls {
				labels[l] = true
			}
		}
	}
	if len(dirty) == 0 {
		return d, true // nothing accessible changed; the guide is shareable as-is
	}

	ng := &Guide{
		G:          d.G.CloneShared(),
		Extent:     append([][]ssd.NodeID(nil), d.Extent...),
		source:     g,
		tbl:        tbl,
		builtNodes: d.builtNodes,
	}
	// Adopt the table: d stops being the tip, so a later ApplyDelta on d
	// (a fork) will rebuild its own copy rather than see ng's entries.
	tbl.owner = ng
	b := &builder{src: g, guide: ng, tbl: tbl, maxNodes: maxNodes}

	var queue []task
	for _, gn := range sortedDirtyNodes(dirty) {
		labels := make([]ssd.Label, 0, len(dirty[gn]))
		for l := range dirty[gn] {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i].Less(labels[j]) })
		privatized := false
		for _, l := range labels {
			target := successorSet(g, ng.Extent[gn], l)
			cur := exactSuccessor(ng.G, gn, l)
			if cur != ssd.InvalidNode && setKey(ng.Extent[cur]) == setKey(target) {
				continue
			}
			to, existed, full := b.intern(target)
			if full {
				return nil, false
			}
			if !existed {
				queue = append(queue, task{to, target})
			}
			if !privatized {
				ng.G.PrivatizeOut(gn)
				privatized = true
			}
			if cur != ssd.InvalidNode {
				ng.G.DeleteEdge(gn, l, cur)
			}
			ng.G.AddEdge(gn, l, to)
		}
	}
	if !b.run(queue) {
		return nil, false
	}
	return ng, true
}

// rebuildTable reconstructs the interning and membership state from a
// guide's extents — the O(guide) fallback for guides that are not the tip
// of a maintenance chain.
func rebuildTable(d *Guide) *internTable {
	tbl := &internTable{
		m:      make(map[string]ssd.NodeID, len(d.Extent)),
		member: make(map[ssd.NodeID][]ssd.NodeID),
	}
	for gn, ext := range d.Extent {
		tbl.m[setKey(ext)] = ssd.NodeID(gn)
		tbl.addMember(ext, ssd.NodeID(gn))
	}
	return tbl
}

// successorSet computes the deduped, sorted set of l-successors (label
// identity, matching Build's grouping) of every node in ext over g.
func successorSet(g *ssd.Graph, ext []ssd.NodeID, l ssd.Label) []ssd.NodeID {
	var out []ssd.NodeID
	for _, v := range ext {
		for _, e := range g.Out(v) {
			if e.Label == l {
				out = append(out, e.To)
			}
		}
	}
	return dedupNodes(out)
}

// exactSuccessor returns n's successor along the edge labeled identically to
// l, or InvalidNode. (Graph.LookupFirst would conflate numerically equal
// labels of different kinds, which the guide keeps distinct.)
func exactSuccessor(g *ssd.Graph, n ssd.NodeID, l ssd.Label) ssd.NodeID {
	for _, e := range g.Out(n) {
		if e.Label == l {
			return e.To
		}
	}
	return ssd.InvalidNode
}

func sortedDirtyNodes(dirty map[ssd.NodeID]map[ssd.Label]bool) []ssd.NodeID {
	out := make([]ssd.NodeID, 0, len(dirty))
	for gn := range dirty {
		out = append(out, gn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
