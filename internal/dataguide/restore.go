package dataguide

import (
	"fmt"

	"repro/internal/ssd"
)

// Restore reconstructs a Guide from its persisted parts — the guide graph
// and the per-node extents — against source, the data graph the guide
// summarizes. It rebuilds the interning and membership table from the
// extents, so a restored guide supports ApplyDelta exactly like a freshly
// built one: recovery does not pay a subset construction, only a linear
// pass over the extents.
func Restore(guideGraph *ssd.Graph, extents [][]ssd.NodeID, source ssd.GraphStore) (*Guide, error) {
	if guideGraph.NumNodes() != len(extents) {
		return nil, fmt.Errorf("dataguide: %d extents for %d guide nodes",
			len(extents), guideGraph.NumNodes())
	}
	for gn, ext := range extents {
		for _, v := range ext {
			if int(v) >= source.NumNodes() {
				return nil, fmt.Errorf("dataguide: extent of guide node %d references node %d beyond source (%d nodes)",
					gn, v, source.NumNodes())
			}
		}
	}
	d := &Guide{
		G:          guideGraph,
		Extent:     extents,
		source:     source,
		builtNodes: guideGraph.NumNodes(),
	}
	d.tbl = rebuildTable(d)
	d.tbl.owner = d
	return d, nil
}
