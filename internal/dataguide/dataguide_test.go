package dataguide

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

func movieDB(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Entry: {Movie: {Title: "Casablanca", Cast: {1: "Bogart", 2: "Bacall"}}},
	 Entry: {Movie: {Title: "Annie Hall", Cast: {Credit: {Actors: {"Allen"}}}}},
	 Entry: {Show: {Title: "Retro"}}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildDeterministic(t *testing.T) {
	g := movieDB(t)
	d := MustBuild(g)
	// Determinism: no guide node has two out-edges with the same label.
	for v := 0; v < d.G.NumNodes(); v++ {
		seen := map[ssd.Label]bool{}
		for _, e := range d.G.Out(ssd.NodeID(v)) {
			if seen[e.Label] {
				t.Fatalf("guide node %d has duplicate label %s", v, e.Label)
			}
			seen[e.Label] = true
		}
	}
	// The three Entry edges collapse to one guide edge.
	if got := len(d.G.Lookup(d.G.Root(), ssd.Sym("Entry"))); got != 1 {
		t.Errorf("guide Entry edges = %d, want 1", got)
	}
}

func TestExtents(t *testing.T) {
	g := movieDB(t)
	d := MustBuild(g)
	ext, ok := d.LookupPath([]ssd.Label{ssd.Sym("Entry")})
	if !ok || len(ext) != 3 {
		t.Fatalf("Entry extent = %v, %v; want 3 nodes", ext, ok)
	}
	ext, ok = d.LookupPath([]ssd.Label{ssd.Sym("Entry"), ssd.Sym("Movie"), ssd.Sym("Title")})
	if !ok || len(ext) != 2 {
		t.Fatalf("Entry.Movie.Title extent = %v, want 2 nodes", ext)
	}
	if _, ok := d.LookupPath([]ssd.Label{ssd.Sym("Nope")}); ok {
		t.Error("nonexistent path should not be found")
	}
	if ext, ok := d.LookupPath(nil); !ok || len(ext) != 1 || ext[0] != g.Root() {
		t.Errorf("empty path extent = %v, want {root}", ext)
	}
}

func TestGuidePathsCoincide(t *testing.T) {
	// Strong DataGuide property: evaluating a path query on the guide and
	// unioning extents equals evaluating it on the data.
	g := movieDB(t)
	d := MustBuild(g)
	for _, src := range []string{
		"Entry.Movie.Title",
		"Entry._.Title",
		`_*."Bogart"`,
		"Entry.(Movie|Show).Title._",
		"_*.isstring",
		"Entry.Movie.Cast.(!Movie)*",
	} {
		direct := pathexpr.MustCompile(src).Eval(g, g.Root())
		viaGuide := d.Eval(pathexpr.MustCompile(src))
		if !reflect.DeepEqual(direct, viaGuide) {
			t.Errorf("%s: direct %v, guide %v", src, direct, viaGuide)
		}
	}
}

func TestGuideSmallerOnRegularData(t *testing.T) {
	// 100 identical entries: the guide stays constant-size.
	g := ssd.New()
	for i := 0; i < 100; i++ {
		e := g.AddLeaf(g.Root(), ssd.Sym("Entry"))
		ti := g.AddLeaf(e, ssd.Sym("Title"))
		g.AddLeaf(ti, ssd.Str("same"))
	}
	d := MustBuild(g)
	if d.NumNodes() > 5 {
		t.Errorf("guide of regular data has %d nodes, want ≤ 5", d.NumNodes())
	}
}

func TestBuildCap(t *testing.T) {
	g := movieDB(t)
	if _, ok := Build(g, 2); ok {
		t.Error("tiny cap should fail the build")
	}
	if d, ok := Build(g, 1000); !ok || d == nil {
		t.Error("ample cap should succeed")
	}
}

func TestCyclicSource(t *testing.T) {
	g := ssd.MustParse(`#r{a: {b: #r}, a: {c: 1}}`)
	d := MustBuild(g)
	// a-step merges both a-children into one extent of size 2.
	ext, ok := d.LookupPath([]ssd.Label{ssd.Sym("a")})
	if !ok || len(ext) != 2 {
		t.Fatalf("a extent = %v", ext)
	}
	// Long path around the cycle still resolves.
	ext, ok = d.LookupPath([]ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Sym("a"), ssd.Sym("b")})
	if !ok || len(ext) != 1 {
		t.Fatalf("a.b.a.b extent = %v, %v", ext, ok)
	}
	// The guide of a cyclic graph is finite (we got here) and cyclic paths
	// evaluate correctly.
	direct := pathexpr.MustCompile("(a.b)*").Eval(g, g.Root())
	viaGuide := d.Eval(pathexpr.MustCompile("(a.b)*"))
	if !reflect.DeepEqual(direct, viaGuide) {
		t.Errorf("(a.b)*: direct %v, guide %v", direct, viaGuide)
	}
}

func TestPathsAndSummary(t *testing.T) {
	g := movieDB(t)
	d := MustBuild(g)
	paths := d.Paths(2, 0)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range paths {
		if len(p) == 0 || len(p) > 2 {
			t.Errorf("path %v out of depth bounds", p)
		}
	}
	sum := d.Summary(1, 10)
	if len(sum) != 1 || sum[0].ExtentLen != 3 { // only Entry at depth 1
		t.Fatalf("summary = %+v", sum)
	}
	limited := d.Paths(3, 2)
	if len(limited) != 2 {
		t.Errorf("limit ignored: %d paths", len(limited))
	}
}

// Property: guide evaluation agrees with direct evaluation on random graphs.
func TestGuideEvalAgreementProperty(t *testing.T) {
	exprs := []string{"a*", "(a|b).c", "_._", "a.(!b)*"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ssd.New()
		ids := []ssd.NodeID{g.Root()}
		for i := 0; i < 12; i++ {
			ids = append(ids, g.AddNode())
		}
		labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Sym("c")}
		for i := 0; i < 25; i++ {
			g.AddEdge(ids[rng.Intn(len(ids))], labels[rng.Intn(len(labels))], ids[rng.Intn(len(ids))])
		}
		d, ok := Build(g, 4096)
		if !ok {
			return true // cap hit on pathological instance; nothing to check
		}
		for _, src := range exprs {
			direct := pathexpr.MustCompile(src).Eval(g, g.Root())
			viaGuide := d.Eval(pathexpr.MustCompile(src))
			if !reflect.DeepEqual(direct, viaGuide) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every guide is deterministic.
func TestGuideDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ssd.New()
		ids := []ssd.NodeID{g.Root()}
		for i := 0; i < 10; i++ {
			ids = append(ids, g.AddNode())
		}
		for i := 0; i < 20; i++ {
			g.AddEdge(ids[rng.Intn(len(ids))], ssd.Sym(string(rune('a'+rng.Intn(2)))), ids[rng.Intn(len(ids))])
		}
		d, ok := Build(g, 4096)
		if !ok {
			return true
		}
		for v := 0; v < d.G.NumNodes(); v++ {
			seen := map[ssd.Label]bool{}
			for _, e := range d.G.Out(ssd.NodeID(v)) {
				if seen[e.Label] {
					return false
				}
				seen[e.Label] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
