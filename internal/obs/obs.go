// Package obs is the observability kernel: a dependency-free, atomics-based
// metrics registry shared by every layer of the system. Counters, gauges and
// fixed-bucket latency histograms register once (by name, idempotently) and
// are updated lock-free on hot paths; Snapshot produces a consistent-enough
// view that encodes to Prometheus text exposition or JSON.
//
// Design constraints, in order:
//
//  1. Zero allocations and no locks on the update path. Counter.Add,
//     Gauge.Set and Histogram.Observe are a handful of atomic operations;
//     instrumented code pays nothing else. Registration takes a mutex, but
//     instrumented packages register in package var initializers, so the
//     lock is never on a request path.
//  2. No dependencies. The package imports only the standard library, so
//     any layer — the WAL under internal/mutate as much as the HTTP server —
//     can import it without cycles.
//  3. Process-global by default. The Default registry is the one the serving
//     layer exposes at /metrics; layers define their metrics as package
//     variables against it (the expvar idiom). Tests that need isolation
//     build their own Registry.
//
// Metric names follow the Prometheus conventions: `ssd_` prefix, `_total`
// suffix on counters, `_seconds` on latency histograms. A name may carry a
// constant label set in braces (`ssd_http_requests_total{endpoint="query"}`);
// the exposition encoder groups such series into one family for # HELP and
// # TYPE lines.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus contract; this is not
// enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. Obtain one from Registry.Gauge.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram. Observations are
// durations; the exposition reports seconds (the Prometheus convention for
// `_seconds` histograms). Obtain one from Registry.Histogram.
type Histogram struct {
	bounds  []int64        // inclusive upper bounds, nanoseconds, ascending
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum     atomic.Int64   // total observed nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	i := 0
	// Linear scan: the default bucket ladder is 18 entries and observations
	// cluster at the low end, so this beats a branchy binary search.
	for i < len(h.bounds) && n > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(n)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// DefBuckets is the default latency ladder: 50µs to 30s, roughly
// logarithmic — wide enough for an in-memory index hit and a cold
// checkpoint alike.
var DefBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
	5 * time.Second, 10 * time.Second, 30 * time.Second,
}

// metricKind discriminates registered metrics.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series.
type metric struct {
	name   string // full series name, possibly with {labels}
	family string // name up to the label braces — the exposition family
	help   string
	kind   metricKind

	c *Counter
	g *Gauge
	f func() int64
	h *Histogram
}

// Registry holds an ordered set of named metrics. Registration is
// idempotent: re-registering a name returns the existing metric (two
// Databases in one process share series, which is what a process-wide
// /metrics wants) and panics if the kind differs — that is a programming
// error, like a flag redefinition.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Default is the process-global registry: the one instrumented packages
// register against and the serving layer exposes at /metrics.
var Default = NewRegistry()

// family splits a series name into its family (the part before a constant
// label set). `a_total{endpoint="query"}` → `a_total`.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// validName is a light sanity check on series names; it rejects the
// mistakes that would silently corrupt the exposition (spaces, newlines,
// unbalanced braces).
func validName(name string) bool {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		return false
	}
	open := strings.Count(name, "{")
	close := strings.Count(name, "}")
	if open != close || open > 1 {
		return false
	}
	if open == 1 && !strings.HasSuffix(name, "}") {
		return false
	}
	return true
}

// register installs (or returns) the metric for name. Panics on a kind
// mismatch or an invalid name: both are development-time errors.
func (r *Registry) register(name, help string, kind metricKind, build func() *metric) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := build()
	m.name, m.family, m.help, m.kind = name, family(name), help, kind
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns) the counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func() *metric {
		return &metric{c: &Counter{}}
	}).c
}

// Gauge registers (or returns) the gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func() *metric {
		return &metric{g: &Gauge{}}
	}).g
}

// GaugeFunc registers a gauge whose value is computed by f at snapshot
// time — for values that already live somewhere authoritative (a cache
// length, a file size) and should not be double-bookkept.
func (r *Registry) GaugeFunc(name, help string, f func() int64) {
	r.register(name, help, kindGaugeFunc, func() *metric {
		return &metric{f: f}
	})
}

// Histogram registers (or returns) the histogram named name. buckets are
// the inclusive upper bounds, ascending; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets ...time.Duration) *Histogram {
	return r.register(name, help, kindHistogram, func() *metric {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		bounds := make([]int64, len(buckets))
		for i, b := range buckets {
			bounds[i] = int64(b)
			if i > 0 && bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bucket bounds not ascending", name))
			}
		}
		return &metric{h: &Histogram{
			bounds:  bounds,
			buckets: make([]atomic.Int64, len(bounds)+1),
		}}
	}).h
}
