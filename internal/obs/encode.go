package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// MetricSnapshot is one metric's state at snapshot time. For histograms,
// Buckets holds per-bucket (non-cumulative) counts with Bounds[i] the
// inclusive upper bound in seconds; the final bucket has no bound (+Inf).
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Help string `json:"help,omitempty"`

	// Counters and gauges.
	Value int64 `json:"value,omitempty"`

	// Histograms.
	Count      int64     `json:"count,omitempty"`
	SumSeconds float64   `json:"sum_seconds,omitempty"`
	Bounds     []float64 `json:"bounds,omitempty"`
	Buckets    []int64   `json:"buckets,omitempty"`

	family string
}

// Snapshot is a point-in-time view of a registry, safe to encode while the
// underlying metrics keep moving. Each metric is read atomically; the set as
// a whole is not a transaction (a scrape can see counter A after B even if A
// was incremented first), which is the usual Prometheus contract.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot captures the current value of every registered metric, in
// registration order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	out := Snapshot{Metrics: make([]MetricSnapshot, 0, len(metrics))}
	for _, m := range metrics {
		ms := MetricSnapshot{Name: m.name, Kind: m.kind.String(), Help: m.help, family: m.family}
		switch m.kind {
		case kindCounter:
			ms.Value = m.c.Value()
		case kindGauge:
			ms.Value = m.g.Value()
		case kindGaugeFunc:
			ms.Value = m.f()
		case kindHistogram:
			h := m.h
			ms.Bounds = make([]float64, len(h.bounds))
			for i, b := range h.bounds {
				ms.Bounds[i] = float64(b) / 1e9
			}
			ms.Buckets = make([]int64, len(h.buckets))
			for i := range h.buckets {
				n := h.buckets[i].Load()
				ms.Buckets[i] = n
				// Derive Count from the buckets themselves so that the
				// cumulative +Inf bucket always equals _count even while
				// other goroutines observe concurrently.
				ms.Count += n
			}
			ms.SumSeconds = float64(h.sum.Load()) / 1e9
		}
		out.Metrics = append(out.Metrics, ms)
	}
	return out
}

// ContentTypePrometheus is the content type for the text exposition format.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus encodes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Series sharing a family (same name before the
// label braces) are emitted contiguously under one # HELP/# TYPE pair
// (taken from the first series registered in that family), even when their
// registrations were interleaved with other families — the format requires
// a family's samples to form one block.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var order []string
	groups := map[string][]MetricSnapshot{}
	for _, m := range s.Metrics {
		if _, ok := groups[m.family]; !ok {
			order = append(order, m.family)
		}
		groups[m.family] = append(groups[m.family], m)
	}
	for _, fam := range order {
		series := groups[fam]
		if h := series[0].Help; h != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(h))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam)
		bw.WriteByte(' ')
		bw.WriteString(series[0].Kind)
		bw.WriteByte('\n')
		for _, m := range series {
			if m.Kind == "histogram" {
				writeHistogram(bw, m)
				continue
			}
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.Value, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket/_sum/_count series for one
// histogram. A histogram registered with constant labels (name of the form
// family{k="v"}) keeps them on every series, with le appended last per the
// exposition convention.
func writeHistogram(bw *bufio.Writer, m MetricSnapshot) {
	labels := ""
	if i := strings.IndexByte(m.Name, '{'); i >= 0 {
		labels = strings.TrimSuffix(m.Name[i+1:], "}")
	}
	var cum int64
	for i, n := range m.Buckets {
		cum += n
		bw.WriteString(m.family)
		bw.WriteString("_bucket{")
		if labels != "" {
			bw.WriteString(labels)
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		if i < len(m.Bounds) {
			bw.WriteString(formatBound(m.Bounds[i]))
		} else {
			bw.WriteString("+Inf")
		}
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	suffixed := func(suffix string) {
		bw.WriteString(m.family)
		bw.WriteString(suffix)
		if labels != "" {
			bw.WriteByte('{')
			bw.WriteString(labels)
			bw.WriteByte('}')
		}
		bw.WriteByte(' ')
	}
	suffixed("_sum")
	bw.WriteString(strconv.FormatFloat(m.SumSeconds, 'g', -1, 64))
	bw.WriteByte('\n')
	suffixed("_count")
	bw.WriteString(strconv.FormatInt(m.Count, 10))
	bw.WriteByte('\n')
}

// formatBound renders a bucket bound the way Prometheus clients do: the
// shortest decimal that round-trips (0.005, not 5e-03).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON encodes the snapshot as a single JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}
