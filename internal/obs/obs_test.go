package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second help ignored")
	if a != b {
		t.Fatal("re-registering a counter must return the same instance")
	}
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("shared counter value = %d, want 1", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "has space", "bad{unclosed", "a{x=\"1\"}b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency",
		time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive upper bound)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf bucket

	snap := r.Snapshot()
	var m *MetricSnapshot
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == "lat_seconds" {
			m = &snap.Metrics[i]
		}
	}
	if m == nil {
		t.Fatal("histogram missing from snapshot")
	}
	wantBuckets := []int64{2, 1, 0, 1}
	for i, want := range wantBuckets {
		if m.Buckets[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, m.Buckets[i], want, m.Buckets)
		}
	}
	if m.Count != 4 {
		t.Fatalf("count = %d, want 4", m.Count)
	}
	wantSum := (0.0005 + 0.001 + 0.005 + 1.0)
	if m.SumSeconds < wantSum-1e-9 || m.SumSeconds > wantSum+1e-9 {
		t.Fatalf("sum = %g, want %g", m.SumSeconds, wantSum)
	}
}

// TestConcurrentUpdatesDuringEncode hammers counters and a histogram from
// many goroutines while repeatedly snapshotting and encoding — the -race
// checked contract that scrapes never tear.
func TestConcurrentUpdatesDuringEncode(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "queue depth")
	h := r.Histogram("lat_seconds", "latency")
	r.GaugeFunc("calc", "computed", func() int64 { return c.Value() / 2 })

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(time.Duration(seed*i%5000) * time.Microsecond)
			}
		}(w + 1)
	}

	var encWG sync.WaitGroup
	encWG.Add(1)
	go func() {
		defer encWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			snap := r.Snapshot()
			if err := snap.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			checkExposition(t, buf.String())
			buf.Reset()
			if err := snap.WriteJSON(&buf); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	encWG.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// checkExposition validates the invariants of the text format that matter:
// every non-comment line is `name[{labels}] value`, histogram buckets are
// cumulative and end at +Inf equal to _count, and every family has exactly
// one TYPE line appearing before its samples.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	var lastBucketFamily string
	var lastCum, infVal int64
	counts := map[string]int64{}
	infs := map[string]int64{}

	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for family %s", parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		base := fam
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(fam, suf); ok && typed[f] == "histogram" {
				base = f
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line (family %q)", line, base)
		}
		if strings.Contains(name, "_bucket{le=") {
			if base != lastBucketFamily {
				lastBucketFamily, lastCum = base, 0
			}
			iv := int64(val)
			if iv < lastCum {
				t.Fatalf("non-cumulative bucket in %q (prev %d)", line, lastCum)
			}
			lastCum = iv
			if strings.Contains(name, `le="+Inf"`) {
				infVal = iv
				infs[base] = infVal
			}
		}
		if strings.HasSuffix(fam, "_count") && typed[base] == "histogram" {
			counts[base] = int64(val)
		}
	}
	for fam, cnt := range counts {
		if inf, ok := infs[fam]; ok && inf != cnt {
			t.Fatalf("family %s: +Inf bucket %d != _count %d", fam, inf, cnt)
		}
	}
}

func TestPrometheusFamilyGrouping(t *testing.T) {
	r := NewRegistry()
	// Interleaved registration (as per-endpoint metric triples produce):
	// the encoder must still emit each family as one contiguous block.
	r.Counter(`req_total{endpoint="query"}`, "requests").Add(3)
	r.Gauge("depth", "queue depth").Set(-2)
	r.Counter(`req_total{endpoint="mutate"}`, "requests").Add(5)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Count(text, "# TYPE req_total counter") != 1 {
		t.Fatalf("want exactly one TYPE line for req_total family:\n%s", text)
	}
	for _, want := range []string{
		`req_total{endpoint="query"} 3`,
		`req_total{endpoint="mutate"} 5`,
		"depth -2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
	checkExposition(t, text)
}

// TestLabeledHistogramExposition: a histogram registered with constant
// labels keeps them on every _bucket/_sum/_count series (with le appended
// last on buckets), so two labeled histograms in one family never collide.
func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram(`dur_seconds{endpoint="query"}`, "latency", time.Millisecond, time.Second).
		Observe(2 * time.Millisecond)
	r.Histogram(`dur_seconds{endpoint="mutate"}`, "latency", time.Millisecond, time.Second).
		Observe(500 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`dur_seconds_bucket{endpoint="query",le="0.001"} 0`,
		`dur_seconds_bucket{endpoint="query",le="1"} 1`,
		`dur_seconds_bucket{endpoint="query",le="+Inf"} 1`,
		`dur_seconds_count{endpoint="query"} 1`,
		`dur_seconds_bucket{endpoint="mutate",le="0.001"} 1`,
		`dur_seconds_count{endpoint="mutate"} 1`,
		`dur_seconds_sum{endpoint="mutate"} 0.0005`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE dur_seconds histogram") != 1 {
		t.Fatalf("want exactly one TYPE line for dur_seconds:\n%s", text)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(7)
	r.Histogram("h_seconds", "h", time.Millisecond).Observe(2 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Metrics []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(out.Metrics))
	}
	if out.Metrics[0]["name"] != "a_total" || out.Metrics[0]["value"] != float64(7) {
		t.Fatalf("unexpected counter encoding: %v", out.Metrics[0])
	}
}
