// Package unql implements the second computational strategy of §3 of the
// paper: structural recursion on the recursive type of labeled trees, the
// basis of UnQL [10, 11]. The central operation is GExt ("graph extension"):
// a function is applied to every edge of the input graph and contributes a
// small output fragment between the output images of the edge's endpoints.
// Allocating exactly one output node per input node — instead of recursing
// into subtrees — is precisely the restriction that makes these recursive
// programs well-defined on cyclic data; the unmemoized tree unfolding
// (GExtTree) is provided as the E6 baseline and requires a depth bound to
// terminate on cycles.
//
// The algebra's two components (§3) appear as:
//
//   - horizontal: the per-edge Rewriter, which computes across the edges of
//     a node (and hence to any fixed depth via composition);
//   - vertical: the traversal to arbitrary depth built into GExt itself and
//     the DeepSelect/Collect operations in ops.go.
//
// Epsilon edges (empty paths in an Action) express deletion-by-short-circuit
// — the "collapsing edges" and "short-circuiting paths" restructurings the
// paper lists — and are eliminated before the result is returned.
package unql

import (
	"fmt"

	"repro/internal/ssd"
)

// Action is the output fragment a Rewriter contributes for one input edge
// (u, l, v). Each element of Paths is a label sequence that becomes a chain
// of fresh edges from O(u) to O(v); the empty sequence is an epsilon edge
// (identifying O(u)'s continuation with O(v) without consuming a label).
// Attach adds constant subtrees at O(u), independent of O(v).
type Action struct {
	Paths  [][]ssd.Label
	Attach []Attachment
}

// Attachment grafts a constant tree below O(u) under Label.
type Attachment struct {
	Label ssd.Label
	Tree  *ssd.Graph // grafted from its root
}

// Convenience actions.

// Keep preserves the edge unchanged.
func Keep(l ssd.Label) Action { return Action{Paths: [][]ssd.Label{{l}}} }

// Drop removes the edge (the target subtree survives only if reachable some
// other way).
func Drop() Action { return Action{} }

// RelabelTo replaces the edge label.
func RelabelTo(l ssd.Label) Action { return Action{Paths: [][]ssd.Label{{l}}} }

// ShortCircuit replaces the edge with an epsilon: the subtree's edges are
// hoisted to the edge's source ("collapsing" the edge).
func ShortCircuit() Action { return Action{Paths: [][]ssd.Label{{}}} }

// ExpandTo replaces the edge with a chain of labels.
func ExpandTo(ls ...ssd.Label) Action { return Action{Paths: [][]ssd.Label{ls}} }

// Rewriter computes the output fragment for one input edge. It sees the
// label, the edge endpoints and the input graph (for context inspection —
// e.g. "is the target a leaf?").
type Rewriter func(l ssd.Label, from, to ssd.NodeID, g *ssd.Graph) Action

// GExt applies the rewriter to every edge reachable from g's root and
// returns the rewritten graph. One output node is allocated per reachable
// input node (memoization over nodes, not paths), so GExt is linear in the
// input even when the input has cycles.
func GExt(g *ssd.Graph, f Rewriter) *ssd.Graph {
	out := ssd.NewWithCapacity(g.NumNodes())
	omap := make([]ssd.NodeID, g.NumNodes())
	for i := range omap {
		omap[i] = ssd.InvalidNode
	}
	omap[g.Root()] = out.Root()

	var eps [][2]ssd.NodeID // epsilon edges (from, to) in out

	obtain := func(n ssd.NodeID) ssd.NodeID {
		if omap[n] == ssd.InvalidNode {
			omap[n] = out.AddNode()
		}
		return omap[n]
	}

	// BFS over reachable input nodes.
	seen := make([]bool, g.NumNodes())
	queue := []ssd.NodeID{g.Root()}
	seen[g.Root()] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ou := obtain(u)
		for _, e := range g.Out(u) {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
			ov := obtain(e.To)
			act := f(e.Label, u, e.To, g)
			for _, path := range act.Paths {
				addPath(out, ou, ov, path, &eps)
			}
			for _, at := range act.Attach {
				sub := out.Graft(at.Tree, at.Tree.Root())
				out.AddEdge(ou, at.Label, sub)
			}
		}
	}
	res := eliminateEpsilons(out, eps)
	acc, _ := res.Accessible()
	acc.Dedup()
	return acc
}

// addPath lays a label chain from ou to ov, creating intermediate nodes;
// the empty chain records an epsilon edge.
func addPath(out *ssd.Graph, ou, ov ssd.NodeID, path []ssd.Label, eps *[][2]ssd.NodeID) {
	if len(path) == 0 {
		*eps = append(*eps, [2]ssd.NodeID{ou, ov})
		return
	}
	cur := ou
	for i, l := range path {
		if i == len(path)-1 {
			out.AddEdge(cur, l, ov)
		} else {
			cur = out.AddLeaf(cur, l)
		}
	}
}

// eliminateEpsilons rewrites a graph with epsilon edges into a plain graph:
// every node additionally acquires the real out-edges of everything in its
// epsilon closure.
func eliminateEpsilons(g *ssd.Graph, eps [][2]ssd.NodeID) *ssd.Graph {
	if len(eps) == 0 {
		return g
	}
	n := g.NumNodes()
	adj := make([][]ssd.NodeID, n)
	for _, e := range eps {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	for v := 0; v < n; v++ {
		if adj[v] == nil {
			continue
		}
		// Epsilon closure of v.
		seen := map[ssd.NodeID]bool{ssd.NodeID(v): true}
		stack := append([]ssd.NodeID(nil), adj[v]...)
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[w] {
				continue
			}
			seen[w] = true
			stack = append(stack, adj[w]...)
		}
		for w := range seen {
			if w == ssd.NodeID(v) {
				continue
			}
			for _, e := range g.Out(w) {
				g.AddEdge(ssd.NodeID(v), e.Label, e.To)
			}
		}
	}
	return g
}

// GExtTree is the unmemoized tree-unfolding semantics of the same recursion:
// it recurses into each subtree separately, so shared subtrees are copied
// once per path and cyclic inputs would diverge — hence the mandatory depth
// bound. It exists to demonstrate (tests) and measure (experiment E6) why
// the restriction to one-output-node-per-input-node matters; on acyclic
// inputs within the bound it agrees with GExt up to bisimulation.
//
// It returns an error if the depth bound is exceeded, which on cyclic input
// is guaranteed.
func GExtTree(g *ssd.Graph, f Rewriter, maxDepth int) (*ssd.Graph, error) {
	out := ssd.New()
	eps := [][2]ssd.NodeID{}
	var rec func(u ssd.NodeID, ou ssd.NodeID, depth int) error
	rec = func(u ssd.NodeID, ou ssd.NodeID, depth int) error {
		if depth > maxDepth {
			return fmt.Errorf("unql: depth bound %d exceeded (cyclic or too-deep input)", maxDepth)
		}
		for _, e := range g.Out(u) {
			ov := out.AddNode()
			act := f(e.Label, u, e.To, g)
			for _, path := range act.Paths {
				addPath(out, ou, ov, path, &eps)
			}
			for _, at := range act.Attach {
				sub := out.Graft(at.Tree, at.Tree.Root())
				out.AddEdge(ou, at.Label, sub)
			}
			if err := rec(e.To, ov, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(g.Root(), out.Root(), 0); err != nil {
		return nil, err
	}
	res := eliminateEpsilons(out, eps)
	acc, _ := res.Accessible()
	acc.Dedup()
	return acc, nil
}
