package unql

import (
	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// This file packages the restructuring operations §3 of the paper lists as
// the things a select-from-where language cannot do — "deleting/collapsing
// edges with a certain property, relabeling edges, or performing local
// interchanges" and "adding new edges to short-circuit various paths" — as
// combinators over GExt.

// Relabel rewrites every edge label with f (identity to keep). This is the
// query that "corrects the egregious error in the Bacall edge label".
func Relabel(g *ssd.Graph, f func(ssd.Label) ssd.Label) *ssd.Graph {
	return GExt(g, func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		return RelabelTo(f(l))
	})
}

// RelabelWhere replaces labels matching pred with to.
func RelabelWhere(g *ssd.Graph, pred pathexpr.Pred, to ssd.Label) *ssd.Graph {
	return Relabel(g, func(l ssd.Label) ssd.Label {
		if pred.Match(l) {
			return to
		}
		return l
	})
}

// DeleteEdges removes every edge whose label matches pred, together with
// whatever becomes unreachable.
func DeleteEdges(g *ssd.Graph, pred pathexpr.Pred) *ssd.Graph {
	return GExt(g, func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		if pred.Match(l) {
			return Drop()
		}
		return Keep(l)
	})
}

// CollapseEdges short-circuits every matching edge: the target's children
// are hoisted to the source, deleting the edge but keeping its subtree.
// (E.g. collapsing Credit in Figure 1 makes both cast representations more
// alike.)
func CollapseEdges(g *ssd.Graph, pred pathexpr.Pred) *ssd.Graph {
	return GExt(g, func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		if pred.Match(l) {
			return ShortCircuit()
		}
		return Keep(l)
	})
}

// ExpandEdges replaces each matching edge label with a chain of labels —
// the inverse of collapsing, e.g. wrapping every cast entry in Credit.
func ExpandEdges(g *ssd.Graph, pred pathexpr.Pred, chain ...ssd.Label) *ssd.Graph {
	return GExt(g, func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		if pred.Match(l) {
			return ExpandTo(chain...)
		}
		return Keep(l)
	})
}

// AnnotateEdges attaches a constant subtree beside every matching edge —
// "adding new edges", the last restructuring §3 lists.
func AnnotateEdges(g *ssd.Graph, pred pathexpr.Pred, label ssd.Label, tree *ssd.Graph) *ssd.Graph {
	return GExt(g, func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		a := Keep(l)
		if pred.Match(l) {
			a.Attach = []Attachment{{Label: label, Tree: tree}}
		}
		return a
	})
}

// ---------------------------------------------------------------------------
// Vertical operations: computations "that go to arbitrary depths".

// DeepSelect returns the union of all subtrees hanging below an edge whose
// label matches pred, anywhere in the graph — UnQL's vertical select
// (e.g. "all Cast objects, however deep"). The result is a fresh graph whose
// root unions the matching subtrees.
//
// The comprehension is lowered onto the same iterator machinery the query
// executor uses: `_*.pred` compiled to an automaton, pulled through a
// product traversal that yields each matching target node exactly once.
func DeepSelect(g *ssd.Graph, pred pathexpr.Pred) *ssd.Graph {
	au := pathexpr.Compile(pathexpr.Seq{Parts: []pathexpr.Expr{
		pathexpr.AnyStar(),
		pathexpr.Atom{Pred: pred},
	}})
	tr := au.NewTraversal(g)
	tr.Reset(g.Root())
	out := ssd.New()
	cache := map[ssd.NodeID]ssd.NodeID{}
	for {
		n, ok := tr.Next()
		if !ok {
			break
		}
		mergeSubtree(out, out.Root(), g, n, cache)
	}
	acc, _ := out.Accessible()
	acc.Dedup()
	return acc
}

// mergeSubtree adds copies of src:n's edges onto dst:at, sharing structure
// through the cache (cycles included).
func mergeSubtree(dst *ssd.Graph, at ssd.NodeID, src *ssd.Graph, n ssd.NodeID, cache map[ssd.NodeID]ssd.NodeID) {
	for _, e := range src.Out(n) {
		dst.AddEdge(at, e.Label, copyNode(dst, src, e.To, cache))
	}
}

func copyNode(dst *ssd.Graph, src *ssd.Graph, n ssd.NodeID, cache map[ssd.NodeID]ssd.NodeID) ssd.NodeID {
	if dn, ok := cache[n]; ok {
		return dn
	}
	dn := dst.AddNode()
	cache[n] = dn
	type work struct{ s, d ssd.NodeID }
	stack := []work{{n, dn}}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range src.Out(w.s) {
			to, ok := cache[e.To]
			if !ok {
				to = dst.AddNode()
				cache[e.To] = to
				stack = append(stack, work{e.To, to})
			}
			dst.AddEdge(w.d, e.Label, to)
		}
	}
	return dn
}

// Reachability-style aggregates, expressible in the algebra's vertical
// component. They operate on the accessible part.

// CountEdges counts reachable edges matching pred.
func CountEdges(g *ssd.Graph, pred pathexpr.Pred) int {
	count := 0
	seen := make([]bool, g.NumNodes())
	queue := []ssd.NodeID{g.Root()}
	seen[g.Root()] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(u) {
			if pred.Match(e.Label) {
				count++
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return count
}

// MaxDepthTo returns the length of the shortest path to the nearest edge
// matching pred, or -1 if none is reachable. (A fixed-depth horizontal
// computation composed with the vertical search.)
func MaxDepthTo(g *ssd.Graph, pred pathexpr.Pred) int {
	type item struct {
		n ssd.NodeID
		d int
	}
	seen := make([]bool, g.NumNodes())
	queue := []item{{g.Root(), 0}}
	seen[g.Root()] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(it.n) {
			if pred.Match(e.Label) {
				return it.d + 1
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, item{e.To, it.d + 1})
			}
		}
	}
	return -1
}
