package unql

import (
	"testing"

	"repro/internal/bisim"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

func fig1(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Entry: #e1{Movie: {Title: "Casablanca",
	                    Cast: {1: "Bogart", 2: "Bacall"},
	                    Director: {"Curtiz"}}},
	 Entry: #e2{Movie: {Title: "Play it again, Sam",
	                    Cast: {Credit: {Actors: {"Allen"}}},
	                    Director: {"Allen"},
	                    References: #e1}}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRelabelIdentity(t *testing.T) {
	g := fig1(t)
	out := Relabel(g, func(l ssd.Label) ssd.Label { return l })
	if !bisim.Equal(g, out) {
		t.Error("identity relabel changed the value")
	}
}

func TestRelabelBacallFix(t *testing.T) {
	// The paper: "in UnQL one can write a query that corrects the egregious
	// error in the Bacall edge label".
	g := ssd.MustParse(`{Cast: {1: "Bogart", 2: "Bacall "}}`)
	out := RelabelWhere(g, pathexpr.ExactPred{L: ssd.Str("Bacall ")}, ssd.Str("Bacall"))
	want := ssd.MustParse(`{Cast: {1: "Bogart", 2: "Bacall"}}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestDeleteEdges(t *testing.T) {
	g := fig1(t)
	out := DeleteEdges(g, pathexpr.ExactPred{L: ssd.Sym("References")})
	if CountEdges(out, pathexpr.ExactPred{L: ssd.Sym("References")}) != 0 {
		t.Error("References edges survived deletion")
	}
	// Both entries keep their titles.
	if n := CountEdges(out, pathexpr.ExactPred{L: ssd.Sym("Title")}); n != 2 {
		t.Errorf("titles after delete = %d, want 2", n)
	}
}

func TestDeleteDisconnects(t *testing.T) {
	g := ssd.MustParse(`{keep: {v: 1}, drop: {w: 2}}`)
	out := DeleteEdges(g, pathexpr.ExactPred{L: ssd.Sym("drop")})
	want := ssd.MustParse(`{keep: {v: 1}}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestCollapseEdges(t *testing.T) {
	// Collapsing Credit unifies the two cast representations one level.
	g := ssd.MustParse(`{Cast: {Credit: {Actors: {"Allen"}}}}`)
	out := CollapseEdges(g, pathexpr.ExactPred{L: ssd.Sym("Credit")})
	want := ssd.MustParse(`{Cast: {Actors: {"Allen"}}}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s, want %s", ssd.FormatRoot(out), ssd.FormatRoot(want))
	}
}

func TestCollapseChain(t *testing.T) {
	g := ssd.MustParse(`{a: {a: {a: {v: 1}}}}`)
	out := CollapseEdges(g, pathexpr.ExactPred{L: ssd.Sym("a")})
	want := ssd.MustParse(`{v: 1}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestCollapseCycleTerminates(t *testing.T) {
	g := ssd.MustParse(`#r{a: #r, v: 1}`)
	out := CollapseEdges(g, pathexpr.ExactPred{L: ssd.Sym("a")})
	// Collapsing the self-loop leaves just {v: 1}.
	want := ssd.MustParse(`{v: 1}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestExpandEdges(t *testing.T) {
	g := ssd.MustParse(`{Cast: {Actors: {"Allen"}}}`)
	out := ExpandEdges(g, pathexpr.ExactPred{L: ssd.Sym("Actors")},
		ssd.Sym("Credit"), ssd.Sym("Actors"))
	want := ssd.MustParse(`{Cast: {Credit: {Actors: {"Allen"}}}}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestAnnotateEdges(t *testing.T) {
	g := ssd.MustParse(`{Movie: {Title: "X"}}`)
	note := ssd.MustParse(`{checked: true}`)
	out := AnnotateEdges(g, pathexpr.ExactPred{L: ssd.Sym("Movie")}, ssd.Sym("Meta"), note)
	meta := out.LookupFirst(out.Root(), ssd.Sym("Meta"))
	if meta == ssd.InvalidNode {
		t.Fatal("Meta edge missing")
	}
	if out.LookupFirst(out.Root(), ssd.Sym("Movie")) == ssd.InvalidNode {
		t.Fatal("original Movie edge lost")
	}
}

func TestGExtPreservesCycles(t *testing.T) {
	g := ssd.MustParse(`#r{next: #r, tag: "x"}`)
	out := Relabel(g, func(l ssd.Label) ssd.Label { return l })
	if !bisim.Equal(g, out) {
		t.Error("cycle not preserved")
	}
	// And it's still a finite graph of about the same size.
	if out.NumNodes() > g.NumNodes()+2 {
		t.Errorf("memoized GExt blew up: %d nodes", out.NumNodes())
	}
}

func TestGExtSharingLinear(t *testing.T) {
	// DAG with heavy sharing: 2^20 paths but only ~40 nodes. Memoized GExt
	// must stay linear in nodes.
	g := ssd.New()
	cur := g.Root()
	for i := 0; i < 20; i++ {
		next := g.AddNode()
		g.AddEdge(cur, ssd.Sym("L"), next)
		g.AddEdge(cur, ssd.Sym("R"), next)
		cur = next
	}
	g.AddLeaf(cur, ssd.Int(1))
	out := Relabel(g, func(l ssd.Label) ssd.Label { return l })
	if out.NumNodes() > 2*g.NumNodes() {
		t.Errorf("GExt output %d nodes for %d-node input", out.NumNodes(), g.NumNodes())
	}
	if !bisim.Equal(g, out) {
		t.Error("value changed")
	}
}

func TestGExtTreeAgreesOnTrees(t *testing.T) {
	g := ssd.MustParse(`{a: {b: 1, c: {d: "x"}}, e: 2.5}`)
	f := func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		if s, ok := l.Symbol(); ok && s == "b" {
			return RelabelTo(ssd.Sym("B"))
		}
		return Keep(l)
	}
	memo := GExt(g, f)
	tree, err := GExtTree(g, f, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bisim.Equal(memo, tree) {
		t.Errorf("memoized %s != tree %s", ssd.FormatRoot(memo), ssd.FormatRoot(tree))
	}
}

func TestGExtTreeDivergesOnCycles(t *testing.T) {
	g := ssd.MustParse(`#r{a: #r}`)
	_, err := GExtTree(g, func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		return Keep(l)
	}, 50)
	if err == nil {
		t.Fatal("tree recursion on a cycle must hit the depth bound")
	}
}

func TestDeepSelect(t *testing.T) {
	g := fig1(t)
	out := DeepSelect(g, pathexpr.ExactPred{L: ssd.Sym("Director")})
	// Union of the two Director objects {"Curtiz"} ∪ {"Allen"}.
	want := ssd.MustParse(`{"Curtiz", "Allen"}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestDeepSelectNested(t *testing.T) {
	// Matching edges below matching edges: both subtrees contribute.
	g := ssd.MustParse(`{x: {v: 1, x: {v: 2}}}`)
	out := DeepSelect(g, pathexpr.ExactPred{L: ssd.Sym("x")})
	// Union of {v:1, x:{v:2}} and {v:2} = {v:1, v:2, x:{v:2}}.
	want := ssd.MustParse(`{v: 1, v: 2, x: {v: 2}}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestDeepSelectCycle(t *testing.T) {
	g := ssd.MustParse(`#r{Movie: {References: #r, Title: "A"}}`)
	out := DeepSelect(g, pathexpr.ExactPred{L: ssd.Sym("Title")})
	want := ssd.MustParse(`{"A"}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}

func TestCountEdgesAndDepth(t *testing.T) {
	g := fig1(t)
	if n := CountEdges(g, pathexpr.ExactPred{L: ssd.Sym("Entry")}); n != 2 {
		t.Errorf("Entry count = %d", n)
	}
	if n := CountEdges(g, pathexpr.AnyPred{}); n != g.NumEdges() {
		t.Errorf("any count = %d, want %d", n, g.NumEdges())
	}
	if d := MaxDepthTo(g, pathexpr.ExactPred{L: ssd.Sym("Title")}); d != 3 {
		t.Errorf("depth to Title = %d, want 3", d)
	}
	if d := MaxDepthTo(g, pathexpr.ExactPred{L: ssd.Sym("Nope")}); d != -1 {
		t.Errorf("depth to missing = %d, want -1", d)
	}
}

func TestDoubleEdgeAction(t *testing.T) {
	// An action may contribute several parallel paths.
	g := ssd.MustParse(`{a: {v: 1}}`)
	out := GExt(g, func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) Action {
		if s, _ := l.Symbol(); s == "a" {
			return Action{Paths: [][]ssd.Label{{ssd.Sym("a1")}, {ssd.Sym("a2")}}}
		}
		return Keep(l)
	})
	want := ssd.MustParse(`{a1: #s{v: 1}, a2: #s}`)
	if !bisim.Equal(out, want) {
		t.Errorf("got %s", ssd.FormatRoot(out))
	}
}
