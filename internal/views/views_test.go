package views

import (
	"testing"

	"repro/internal/bisim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func base(t *testing.T) *ssd.Graph {
	t.Helper()
	return workload.Fig1(false)
}

func TestDefineAndMaterialize(t *testing.T) {
	r := NewRegistry()
	if err := r.Define("titles", `select {t: T} from DB.base.Entry._.Title T`); err != nil {
		t.Fatal(err)
	}
	g, err := r.Materialize("titles", base(t))
	if err != nil {
		t.Fatal(err)
	}
	want := ssd.MustParse(`{t: {"Casablanca"}, t: {"Play it again, Sam"}, t: {"Bogart retrospective"}}`)
	if !bisim.Equal(g, want) {
		t.Errorf("got %s", ssd.FormatRoot(g))
	}
}

func TestViewOnView(t *testing.T) {
	r := NewRegistry()
	if err := r.Define("movies", `select {m: M} from DB.base.Entry.Movie M`); err != nil {
		t.Fatal(err)
	}
	if err := r.Define("movietitles", `select T from DB.movies.m.Title T`); err != nil {
		t.Fatal(err)
	}
	g, err := r.Materialize("movietitles", base(t))
	if err != nil {
		t.Fatal(err)
	}
	want := ssd.MustParse(`{"Casablanca", "Play it again, Sam"}`)
	if !bisim.Equal(g, want) {
		t.Errorf("got %s", ssd.FormatRoot(g))
	}
}

func TestUnknownDependencyRejected(t *testing.T) {
	r := NewRegistry()
	if err := r.Define("v", `select T from DB.nonexistent.x T`); err == nil {
		t.Error("unknown source should be rejected at Define time")
	}
}

func TestForwardDependencyRejected(t *testing.T) {
	r := NewRegistry()
	// v1 referencing v2 before v2 exists must fail: acyclicity by order.
	if err := r.Define("v1", `select T from DB.v2.x T`); err == nil {
		t.Error("forward reference should be rejected")
	}
}

func TestDuplicateAndReserved(t *testing.T) {
	r := NewRegistry()
	if err := r.Define("base", `select T from DB.base T`); err == nil {
		t.Error("reserved name accepted")
	}
	if err := r.Define("v", `select T from DB.base T`); err != nil {
		t.Fatal(err)
	}
	if err := r.Define("v", `select T from DB.base T`); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestDropSuffix(t *testing.T) {
	r := NewRegistry()
	must(t, r.Define("a", `select {x: X} from DB.base.Entry X`))
	must(t, r.Define("b", `select X from DB.a.x X`))
	must(t, r.Define("c", `select X from DB.b X`))
	if err := r.Drop("b"); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("names after drop = %v", names)
	}
	if _, err := r.Materialize("c", base(t)); err == nil {
		t.Error("dropped view should not materialize")
	}
	if err := r.Drop("nope"); err == nil {
		t.Error("dropping unknown view should error")
	}
}

func TestCacheInvalidation(t *testing.T) {
	r := NewRegistry()
	must(t, r.Define("titles", `select T from DB.base.Entry._.Title T`))
	b1 := base(t)
	g1, err := r.Materialize("titles", b1)
	if err != nil {
		t.Fatal(err)
	}
	// Same graph: cached pointer.
	g1b, _ := r.Materialize("titles", b1)
	if g1 != g1b {
		t.Error("expected cache hit for same base")
	}
	// Different base: recomputed and different content.
	b2 := ssd.MustParse(`{Entry: {Movie: {Title: "Other"}}}`)
	g2, err := r.Materialize("titles", b2)
	if err != nil {
		t.Fatal(err)
	}
	if bisim.Equal(g1, g2) {
		t.Error("different bases must give different views")
	}
}

func TestMaterializeAll(t *testing.T) {
	r := NewRegistry()
	must(t, r.Define("movies", `select {m: M} from DB.base.Entry.Movie M`))
	must(t, r.Define("shows", `select {s: S} from DB.base.Entry.TV-Show S`))
	site, err := r.MaterializeAll(base(t))
	if err != nil {
		t.Fatal(err)
	}
	if site.LookupFirst(site.Root(), ssd.Sym("movies")) == ssd.InvalidNode {
		t.Error("movies view missing from site")
	}
	if site.LookupFirst(site.Root(), ssd.Sym("shows")) == ssd.InvalidNode {
		t.Error("shows view missing from site")
	}
}

func TestRestructuringView(t *testing.T) {
	// The [4]-style restructuring: regroup movies by director.
	r := NewRegistry()
	must(t, r.Define("bydirector", `
		select {%D: {Title: T}}
		from DB.base.Entry.Movie M, M.Director.%D X, M.Title T`))
	g, err := r.Materialize("bydirector", base(t))
	if err != nil {
		t.Fatal(err)
	}
	want := ssd.MustParse(`{"Curtiz": {Title: {"Casablanca"}}, "Allen": {Title: {"Play it again, Sam"}}}`)
	if !bisim.Equal(g, want) {
		t.Errorf("got %s", ssd.FormatRoot(g))
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
