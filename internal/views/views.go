// Package views implements a small view-definition facility in the spirit
// of the Abiteboul–Goldman–McHugh–Vassalos–Zhuge proposal the paper cites
// in §3 ("some simple forms of restructuring are also present in a view
// definition language proposed in [4]"): named, query-defined views over a
// semistructured database, with views allowed to build on earlier views.
//
// A view is a select-from-where query. When materializing view V, the
// query runs against a virtual root carrying the base database under
// `base` plus every previously defined view under its own name:
//
//	reg.Define("movies",  `select {m: M} from DB.base.Entry.Movie M`)
//	reg.Define("titles",  `select T from DB.movies.m.Title T`)
//
// Materialization is cached per (view, database) and views are checked for
// definition-order dependencies at Define time, so cycles are impossible
// by construction.
package views

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/ssd"
)

// BaseName is the edge under which the underlying database appears in view
// queries.
const BaseName = "base"

// Registry holds named view definitions, in definition order.
type Registry struct {
	order []string
	defs  map[string]*query.Query
	texts map[string]string

	// cache maps view name → materialized result for the graph last used;
	// invalidated when the base graph changes.
	cachedFor *ssd.Graph
	cache     map[string]*ssd.Graph
}

// NewRegistry returns an empty view registry.
func NewRegistry() *Registry {
	return &Registry{
		defs:  map[string]*query.Query{},
		texts: map[string]string{},
		cache: map[string]*ssd.Graph{},
	}
}

// Define registers a view. The name must be new and must not collide with
// BaseName; the query may reference `DB.base` and any earlier view.
func (r *Registry) Define(name, src string) error {
	if name == BaseName {
		return fmt.Errorf("views: %q is reserved", BaseName)
	}
	if _, dup := r.defs[name]; dup {
		return fmt.Errorf("views: view %q already defined", name)
	}
	q, err := query.Parse(src)
	if err != nil {
		return fmt.Errorf("views: %s: %w", name, err)
	}
	// Check that every first step of a DB-rooted path names base or an
	// earlier view, so dependencies are resolvable and acyclic.
	for _, b := range q.From {
		if b.Source != "DB" {
			continue
		}
		dep, ok := firstSymbol(b.Path)
		if !ok {
			continue // wildcard or variable start: sees everything defined so far
		}
		if dep != BaseName && r.defs[dep] == nil {
			return fmt.Errorf("views: %s: unknown source %q (views may reference %q or earlier views)", name, dep, BaseName)
		}
	}
	r.order = append(r.order, name)
	r.defs[name] = q
	r.texts[name] = src
	r.invalidate()
	return nil
}

func firstSymbol(steps []query.PathStep) (string, bool) {
	if len(steps) == 0 {
		return "", false
	}
	rs, ok := steps[0].(*query.RegexStep)
	if !ok {
		return "", false
	}
	// Only plain symbol atoms name a dependency.
	if atom, ok := rs.Expr.(interface{ String() string }); ok {
		s := atom.String()
		if isPlainSymbol(s) {
			return s, true
		}
	}
	return "", false
}

func isPlainSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == '-'):
		default:
			return false
		}
	}
	return true
}

// Names returns the defined view names in definition order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// Text returns a view's source text.
func (r *Registry) Text(name string) (string, bool) {
	t, ok := r.texts[name]
	return t, ok
}

// Drop removes a view and everything defined after it (later views may
// depend on it; order-suffix removal keeps the registry consistent without
// dependency tracking).
func (r *Registry) Drop(name string) error {
	idx := -1
	for i, n := range r.order {
		if n == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("views: view %q not defined", name)
	}
	for _, n := range r.order[idx:] {
		delete(r.defs, n)
		delete(r.texts, n)
	}
	r.order = r.order[:idx]
	r.invalidate()
	return nil
}

func (r *Registry) invalidate() {
	r.cachedFor = nil
	r.cache = map[string]*ssd.Graph{}
}

// Materialize evaluates the named view over base, materializing its
// dependencies first. Results are cached until the registry changes or a
// different base graph is supplied.
func (r *Registry) Materialize(name string, base *ssd.Graph) (*ssd.Graph, error) {
	if r.cachedFor != base {
		r.invalidate()
		r.cachedFor = base
	}
	if g, ok := r.cache[name]; ok {
		return g, nil
	}
	q, ok := r.defs[name]
	if !ok {
		return nil, fmt.Errorf("views: view %q not defined", name)
	}
	// Build the virtual root: base plus every EARLIER view (definition
	// order guarantees dependencies come first).
	virtual := ssd.New()
	virtual.AddEdge(virtual.Root(), ssd.Sym(BaseName), virtual.Graft(base, base.Root()))
	for _, dep := range r.order {
		if dep == name {
			break
		}
		dg, err := r.Materialize(dep, base)
		if err != nil {
			return nil, err
		}
		virtual.AddEdge(virtual.Root(), ssd.Sym(dep), virtual.Graft(dg, dg.Root()))
	}
	res, err := query.Eval(q, virtual)
	if err != nil {
		return nil, fmt.Errorf("views: %s: %w", name, err)
	}
	r.cache[name] = res
	return res, nil
}

// MaterializeAll materializes every view and returns a graph whose root has
// one edge per view name — a whole "view site" in the sense of [18]'s web
// site management.
func (r *Registry) MaterializeAll(base *ssd.Graph) (*ssd.Graph, error) {
	out := ssd.New()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		g, err := r.Materialize(name, base)
		if err != nil {
			return nil, err
		}
		out.AddEdge(out.Root(), ssd.Sym(name), out.Graft(g, g.Root()))
	}
	return out, nil
}
