package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinCheck enforces the accessor lifecycle on handles returned by
// //ssd:mustunpin functions (ssd.AccessorFor, PageStore.Accessor,
// AccessorProvider.Accessor): a local variable bound to a mustunpin result
// needs a `.Release()` call (deferred or direct) somewhere in the function,
// unless the handle escapes — returned, passed to another function, or
// stored into a struct field — in which case the receiver owns the
// lifecycle.
//
// Unlike a leaked cursor, a leaked accessor is not cleaned up by the
// garbage collector in any useful sense: the pages it pins stay charged to
// the buffer pool's pinned set, so a forgotten Release quietly turns the
// pool's byte budget into a fiction. Release is idempotent and the
// accessor remains usable afterwards (it re-pins on the next touch), so
// `defer acc.Release()` is always safe.
//
// The escape analysis mirrors closecheck's deliberately coarse rule: any
// non-method use counts as an escape, trading missed reports for zero
// false positives on ownership-transfer idioms.
var PinCheck = &Analyzer{
	Name: "pincheck",
	Doc:  "accessors from //ssd:mustunpin functions must be Released",
	Run:  runPinCheck,
}

func runPinCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPinDecl(pass, fd)
		}
	}
}

// pinState tracks one accessor variable through a function body. Function
// literals are analyzed together with their enclosing declaration: a
// closure closing over an accessor is a legitimate place to Release it.
type pinState struct {
	obj        types.Object
	bindPos    token.Pos
	escaped    bool
	hasRelease bool
}

func checkPinDecl(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	pins := make(map[types.Object]*pinState)

	// Pass 1: find accessor bindings — `acc := mustUnpinCall(...)` and
	// `acc = mustUnpinCall(...)`. Parameters are not tracked: an accessor
	// handed into a helper is released by its creator.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !hasVerb(pass.Index.FuncDirectives(calleeFunc(info, call)), "mustunpin") {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if tn, ok := namedOf(obj.Type()); ok && pass.Index.PinTypes[tn] {
				if pins[obj] == nil {
					pins[obj] = &pinState{obj: obj, bindPos: call.Pos()}
				}
			}
		}
		return true
	})
	if len(pins) == 0 {
		return
	}

	// Pass 2: classify every use of each accessor.
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		p, ok := pins[obj]
		if !ok {
			return true
		}
		if len(stack) > 0 {
			switch parent := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr:
				if parent.X == id {
					if parent.Sel.Name == "Release" {
						p.hasRelease = true
					}
					return true // method/field access, not an escape
				}
			case *ast.AssignStmt:
				// The binding assignment's own LHS mention is not a use.
				for _, lhs := range parent.Lhs {
					if lhs == ast.Expr(id) {
						return true
					}
				}
			}
		}
		p.escaped = true
		return true
	})

	for _, p := range pins {
		if !p.escaped && !p.hasRelease {
			pass.Reportf(p.bindPos,
				"result of //ssd:mustunpin call is never released: its pinned pages stay charged to the buffer pool — call Release on every path (defer it) or hand the accessor off")
		}
	}
}
