package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockCheck enforces the writer-lock protocol:
//
//   - A call to a function annotated `//ssd:requires L` is legal only when
//     the caller is itself annotated `//ssd:requires L`, or the call is
//     lexically preceded — in the same function literal, with no
//     non-deferred `L.Unlock()` in between — by an `L.Lock()` call, or the
//     call site carries a `//ssd:nolock L: reason` waiver (single-threaded
//     construction/recovery phases).
//   - A function annotated `//ssd:locks L` must actually contain an
//     `L.Lock()` call: the annotation documents "takes the lock itself",
//     and a stale one would launder unguarded callees.
//   - A function annotated `//ssd:requires L` must not itself call
//     `L.Lock()` (outside nested function literals): sync.Mutex is not
//     reentrant, so that is a guaranteed self-deadlock.
//
// The lock analysis is lexical, not flow-sensitive: it tracks Lock/Unlock
// selector calls whose final receiver component is named L. That is exactly
// the discipline this codebase's write path follows (Lock at the top,
// deferred or tail Unlock), and the approximation fails safe — a path that
// confuses it produces a diagnostic to rewrite more plainly, not silence.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "calls into //ssd:requires-annotated functions must hold the named lock",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		waivers := fileWaivers(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockDecl(pass, fd, waivers)
		}
	}
}

// waiver is one //ssd:nolock comment, keyed by the line it ends on.
type waiver struct {
	lock   string
	reason string
}

func fileWaivers(pass *Pass, file *ast.File) map[int]*waiver {
	out := make(map[int]*waiver)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok || d.Verb != "nolock" {
				continue
			}
			arg := strings.Join(d.Args, " ")
			lock, reason, found := strings.Cut(arg, ":")
			if !found || strings.TrimSpace(reason) == "" {
				pass.Reportf(c.Pos(), "ssd:nolock needs a reason: //ssd:nolock <lock>: <why this phase is single-threaded>")
				continue
			}
			line := pass.Fset().Position(c.End()).Line
			out[line] = &waiver{lock: strings.TrimSpace(lock), reason: strings.TrimSpace(reason)}
		}
	}
	return out
}

// lockEvent is one Lock or Unlock call on a named mutex.
type lockEvent struct {
	pos    token.Pos
	lock   string
	unlock bool
	defers bool // deferred Unlock releases at return, not at its position
}

func checkLockDecl(pass *Pass, fd *ast.FuncDecl, waivers map[int]*waiver) {
	ds := declDirectives(pass.Pkg, pass.Index, fd)
	held := make(map[string]bool) // locks the function is annotated to hold
	for _, args := range argsOf(ds, "requires") {
		if len(args) == 1 {
			held[args[0]] = true
		}
	}

	// Each function literal is its own lock scope: a lock taken outside a
	// closure does not guard calls inside it — the closure may run on
	// another goroutine. Scope 0 is the declaration body.
	var declEvents []lockEvent // scope-0 events, kept for the checks below

	var walkScope func(body ast.Node, depth int, events *[]lockEvent)
	walkScope = func(body ast.Node, depth int, events *[]lockEvent) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				var inner []lockEvent
				walkScope(n.Body, depth+1, &inner)
				return false
			case *ast.DeferStmt:
				if lk, unlock := lockCall(n.Call); lk != "" {
					*events = append(*events, lockEvent{pos: n.Call.Pos(), lock: lk, unlock: unlock, defers: true})
					return false
				}
			case *ast.CallExpr:
				if lk, unlock := lockCall(n); lk != "" {
					*events = append(*events, lockEvent{pos: n.Pos(), lock: lk, unlock: unlock})
					return true
				}
				callee := calleeFunc(pass.Pkg.Info, n)
				for _, args := range argsOf(pass.Index.FuncDirectives(callee), "requires") {
					if len(args) != 1 {
						continue
					}
					lock := args[0]
					if held[lock] && depth == 0 {
						continue // annotated caller, in its own body
					}
					if lockHeldAt(*events, lock, n.Pos()) {
						continue
					}
					if waiverFor(pass, waivers, n.Pos(), lock) != nil {
						continue
					}
					pass.Reportf(n.Pos(),
						"call to %s requires lock %q: caller neither holds it (no preceding %s.Lock()) nor is annotated //ssd:requires %s",
						callee.Name(), lock, lock, lock)
				}
			}
			return true
		})
	}
	walkScope(fd.Body, 0, &declEvents)

	// locks-annotation validation: the function must take the lock itself.
	for _, args := range argsOf(ds, "locks") {
		if len(args) != 1 {
			continue
		}
		found := false
		for _, ev := range declEvents {
			if ev.lock == args[0] && !ev.unlock {
				found = true
			}
		}
		if !found {
			pass.Reportf(fd.Name.Pos(), "%s is annotated //ssd:locks %s but never calls %s.Lock()",
				fd.Name.Name, args[0], args[0])
		}
	}

	// requires-annotation validation: taking the lock you already hold is a
	// self-deadlock (sync.Mutex is not reentrant).
	for lock := range held {
		for _, ev := range declEvents {
			if ev.lock == lock && !ev.unlock {
				pass.Reportf(ev.pos, "%s holds %s by contract (//ssd:requires %s) but locks it again: self-deadlock",
					fd.Name.Name, lock, lock)
			}
		}
	}
}

// lockHeldAt reports whether, lexically before pos in this scope's event
// list, lock was taken and not released by a non-deferred Unlock.
func lockHeldAt(events []lockEvent, lock string, pos token.Pos) bool {
	held := false
	for _, ev := range events {
		if ev.lock != lock || ev.pos >= pos {
			continue
		}
		if ev.unlock {
			if !ev.defers {
				held = false
			}
			continue
		}
		held = true
	}
	return held
}

// lockCall matches `<chain>.L.Lock()` / `.Unlock()` / `.RLock()` /
// `.RUnlock()` and returns the mutex component name L.
func lockCall(call *ast.CallExpr) (lock string, unlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		unlock = false
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, unlock
	case *ast.Ident:
		return x.Name, unlock
	}
	return "", false
}

func waiverFor(pass *Pass, waivers map[int]*waiver, pos token.Pos, lock string) *waiver {
	line := pass.Fset().Position(pos).Line
	for _, l := range []int{line, line - 1} {
		if w, ok := waivers[l]; ok && w.lock == lock {
			return w
		}
	}
	return nil
}
