package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// TestLoadResolvesCrossPackageTypes is the loader's contract test: target
// packages type-check from source with imports (std and intra-module alike)
// resolved through the build cache's gc export data, with full use/selection
// info — the substrate every analyzer stands on.
func TestLoadResolvesCrossPackageTypes(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/ssd", "./internal/mutate")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	ssd := byPath["repro/internal/ssd"]
	if ssd == nil {
		t.Fatalf("repro/internal/ssd not loaded: %v", byPath)
	}
	// The Graph.rev field must resolve to a sync/atomic type: atomiccheck
	// keys on exactly this.
	g := ssd.Types.Scope().Lookup("Graph")
	if g == nil {
		t.Fatal("ssd.Graph not found")
	}
	st, ok := g.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("ssd.Graph is %T, want struct", g.Type().Underlying())
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "rev" {
			continue
		}
		found = true
		if name, ok := namedOf(f.Type()); !ok || name != "sync/atomic.Pointer" {
			t.Errorf("Graph.rev resolved to %q, want sync/atomic.Pointer", name)
		}
	}
	if !found {
		t.Error("Graph.rev field not found")
	}

	// mutate imports ssd and storage: a selector into an imported package
	// must carry a resolved *types.Func.
	mut := byPath["repro/internal/mutate"]
	if mut == nil {
		t.Fatal("repro/internal/mutate not loaded")
	}
	foundCall := false
	for _, f := range mut.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(mut.Info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "repro/internal/storage" {
				foundCall = true
			}
			return true
		})
	}
	if !foundCall {
		t.Error("no resolved call into repro/internal/storage found in mutate")
	}
}
