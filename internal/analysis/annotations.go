package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Index is the whole-load annotation view: every //ssd: directive found in
// any loaded package, keyed by cross-package symbol strings, plus the
// derived structures the analyzers consume (mustclose handle types, cache
// specs). Build it once over all packages, then hand it to every pass —
// that is how core sees the annotations on mutate.WAL methods without a
// facts protocol.
type Index struct {
	Funcs  map[string][]Directive // "pkg.Func" / "pkg.Type.Method"
	Fields map[string][]Directive // "pkg.Type.field"

	// HandleTypes maps "pkg.Type" of every mustclose function's first
	// handle-shaped result to true: closecheck extends its Next/Err
	// discipline to parameters of these types.
	HandleTypes map[string]bool

	// PinTypes maps "pkg.Type" of every mustunpin function's first
	// handle-shaped result to true: pincheck tracks locals of these types
	// (page accessors, whose forgotten pins inflate the buffer pool's
	// pinned set past its budget).
	PinTypes map[string]bool

	// Caches maps an owner type key "pkg.Type" to its cache contract,
	// assembled from //ssd:cache and //ssd:cachedby field annotations.
	Caches map[string]*CacheSpec
}

// CacheSpec is one derived-cache contract on a struct: in-place writes to
// DataFields must be preceded by an invalidating store into CacheField.
type CacheSpec struct {
	Owner      string // "pkg.Type"
	Name       string // invariant name, e.g. "revcache"
	CacheField string // e.g. "rev"
	DataFields map[string]bool
}

// FuncDirectives returns the directives on the declaration of fn.
func (ix *Index) FuncDirectives(fn *types.Func) []Directive {
	if fn == nil {
		return nil
	}
	return ix.Funcs[funcKey(fn)]
}

// BuildIndex collects annotations from every loaded package.
func BuildIndex(pkgs []*Package) *Index {
	ix := &Index{
		Funcs:       make(map[string][]Directive),
		Fields:      make(map[string][]Directive),
		HandleTypes: make(map[string]bool),
		PinTypes:    make(map[string]bool),
		Caches:      make(map[string]*CacheSpec),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					ix.addFunc(pkg, d)
				case *ast.GenDecl:
					if d.Tok == token.TYPE {
						for _, spec := range d.Specs {
							if ts, ok := spec.(*ast.TypeSpec); ok {
								ix.addType(pkg, ts)
							}
						}
					}
				}
			}
		}
	}
	return ix
}

func (ix *Index) addFunc(pkg *Package, d *ast.FuncDecl) {
	ds := parseDirectives(d.Doc)
	if len(ds) == 0 {
		return
	}
	fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	key := funcKey(fn)
	ix.Funcs[key] = append(ix.Funcs[key], ds...)
	if hasVerb(ds, "mustclose") {
		if ht, ok := handleResult(fn); ok {
			ix.HandleTypes[ht] = true
		}
	}
	if hasVerb(ds, "mustunpin") {
		if ht, ok := handleResult(fn); ok {
			ix.PinTypes[ht] = true
		}
	}
}

// handleResult returns the type key of fn's first pointer-to-named result —
// the handle a mustclose annotation refers to.
func handleResult(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if name, ok := namedOf(sig.Results().At(i).Type()); ok && name != "error" {
			return name, true
		}
	}
	return "", false
}

func (ix *Index) addType(pkg *Package, ts *ast.TypeSpec) {
	if it, ok := ts.Type.(*ast.InterfaceType); ok {
		ix.addInterface(pkg, ts, it)
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	owner := pkg.Path + "." + ts.Name.Name
	for _, field := range st.Fields.List {
		ds := parseDirectives(field.Doc)
		ds = append(ds, parseDirectives(field.Comment)...)
		if len(ds) == 0 {
			continue
		}
		for _, nameIdent := range field.Names {
			key := owner + "." + nameIdent.Name
			ix.Fields[key] = append(ix.Fields[key], ds...)
			for _, args := range argsOf(ds, "cache") {
				if len(args) == 1 {
					ix.cacheSpec(owner, args[0]).CacheField = nameIdent.Name
				}
			}
			for _, args := range argsOf(ds, "cachedby") {
				if len(args) == 1 {
					ix.cacheSpec(owner, args[0]).DataFields[nameIdent.Name] = true
				}
			}
		}
	}
}

// addInterface collects directives from interface method doc comments, so a
// contract like //ssd:mustunpin on AccessorProvider.Accessor binds calls
// made through the interface, not just through a concrete provider. The
// method's funcKey is "pkg.Iface.Method" — exactly what calleeFunc resolves
// for an interface-typed call site.
func (ix *Index) addInterface(pkg *Package, ts *ast.TypeSpec, it *ast.InterfaceType) {
	if it.Methods == nil {
		return
	}
	owner := pkg.Path + "." + ts.Name.Name
	for _, m := range it.Methods.List {
		ds := parseDirectives(m.Doc)
		ds = append(ds, parseDirectives(m.Comment)...)
		if len(ds) == 0 {
			continue
		}
		for _, name := range m.Names {
			key := owner + "." + name.Name
			ix.Funcs[key] = append(ix.Funcs[key], ds...)
			fn, ok := pkg.Info.Defs[name].(*types.Func)
			if !ok {
				continue
			}
			if hasVerb(ds, "mustclose") {
				if ht, ok := handleResult(fn); ok {
					ix.HandleTypes[ht] = true
				}
			}
			if hasVerb(ds, "mustunpin") {
				if ht, ok := handleResult(fn); ok {
					ix.PinTypes[ht] = true
				}
			}
		}
	}
}

func (ix *Index) cacheSpec(owner, name string) *CacheSpec {
	spec := ix.Caches[owner]
	if spec == nil {
		spec = &CacheSpec{Owner: owner, Name: name, DataFields: make(map[string]bool)}
		ix.Caches[owner] = spec
	}
	return spec
}

// recvOwner returns the owner type key of a method declaration's receiver,
// or "" for plain functions.
func recvOwner(pkg *Package, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	tv, ok := pkg.Info.Types[d.Recv.List[0].Type]
	if !ok {
		return ""
	}
	name, ok := namedOf(tv.Type)
	if !ok {
		return ""
	}
	return name
}

// recvObject returns the receiver variable object of a method declaration.
func recvObject(pkg *Package, d *ast.FuncDecl) types.Object {
	if d.Recv == nil || len(d.Recv.List) == 0 || len(d.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[d.Recv.List[0].Names[0]]
}

// declDirectives returns the directives on a declaration via the index (the
// same parse, but resolved through Defs so key derivation stays in one
// place).
func declDirectives(pkg *Package, ix *Index, d *ast.FuncDecl) []Directive {
	fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return nil
	}
	return ix.Funcs[funcKey(fn)]
}
