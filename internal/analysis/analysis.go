// Package analysis is ssdvet's engine: a small, dependency-free analog of
// golang.org/x/tools/go/analysis sized for this repository's needs. Six PRs
// of optimizer, MVCC, WAL, parallel-executor and observability work left
// the engine with invariants that existed only as prose comments — "must
// hold the writer lock", "atomic: health endpoints read it mid-checkpoint",
// "invalidate the rev cache before the first in-place write". This package
// turns those comments into a machine-checked annotation convention plus a
// suite of project-specific analyzers (lockcheck, atomiccheck, closecheck,
// pincheck, revcachecheck, ctxpoll) that cmd/ssdvet runs over the whole
// module.
//
// The framework is intentionally stdlib-only: packages are enumerated and
// compiled with `go list -export`, type-checked from source with go/types,
// and imports resolved through the gc export data the build cache already
// holds — so ssdvet builds and runs in a hermetic environment with no
// module downloads. The x/tools multichecker extras (nilness, shadow,
// govulncheck) ride alongside in CI, where the network exists.
//
// # Annotation grammar
//
// Annotations are directive comments (no space after //, like //go:) in doc
// comments of functions and struct fields:
//
//	//ssd:requires <lock>      func: every caller must hold <lock>
//	//ssd:locks <lock>         func: acquires <lock> itself (checked)
//	//ssd:atomic               field: plain-typed field accessed only via
//	                           &f arguments to sync/atomic functions
//	//ssd:mustclose            func: the returned handle must be closed on
//	                           all paths, and Err consulted after Next
//	//ssd:mustunpin            func: the returned accessor must be Released
//	                           on all paths (its pins charge the page pool)
//	//ssd:cache <name>         field: this atomic field is the cache <name>;
//	                           storing into it is the invalidation
//	//ssd:cachedby <name>      field: in-place writes to this field must be
//	                           preceded by invalidating cache <name>
//	//ssd:invalidates <name>   func: writes a cachedby field and promises to
//	                           invalidate first (order is checked)
//	//ssd:preserves <name>     func: audited — writes the representation of
//	                           a cachedby field without changing the
//	                           adjacency it caches (e.g. PrivatizeOut)
//	//ssd:ctxpoll              func: every unbounded loop in it must poll
//	                           the context (directly or via a poll helper)
//	//ssd:poll                 func: counts as a context poll for ctxpoll
//
// One call-site waiver exists for provably single-threaded phases
// (construction, crash recovery before the handle is published):
//
//	//ssd:nolock <lock>: <reason>
//
// placed on the call's line or the line above. The reason is mandatory;
// lockcheck rejects a bare waiver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer, mirroring x/tools'
// analysis.Pass. Index gives analyzers the whole-load annotation view, so
// cross-package contracts (core calling an annotated mutate.WAL method)
// resolve without a facts mechanism.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Index    *Index

	report func(Finding)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Suite returns the full analyzer suite, optionally filtered to a
// comma-separated subset of names (empty = all). Unknown names error so a
// typo in CI cannot silently skip a checker.
func Suite(only string) ([]*Analyzer, error) {
	all := []*Analyzer{LockCheck, AtomicCheck, CloseCheck, PinCheck, RevCacheCheck, CtxPoll}
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies each analyzer to each package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, idx *Index, as []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range as {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Index:    idx,
				report:   func(f Finding) { findings = append(findings, f) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ---------------------------------------------------------------------------
// Directives

// Directive is one parsed //ssd: annotation.
type Directive struct {
	Verb string   // "requires", "locks", "atomic", ...
	Args []string // whitespace-split arguments
	Pos  token.Pos
}

// parseDirectives extracts //ssd: directives from a comment group.
func parseDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		d, ok := parseDirective(c)
		if ok {
			out = append(out, d)
		}
	}
	return out
}

func parseDirective(c *ast.Comment) (Directive, bool) {
	body, ok := strings.CutPrefix(c.Text, "//ssd:")
	if !ok {
		return Directive{}, false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Verb: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

func hasVerb(ds []Directive, verb string) bool {
	for _, d := range ds {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

func argsOf(ds []Directive, verb string) [][]string {
	var out [][]string
	for _, d := range ds {
		if d.Verb == verb {
			out = append(out, d.Args)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Symbol keys
//
// Annotations collected while type-checking one package must be visible
// when analyzing another that sees the same function only through export
// data — a different types.Object universe. String keys of the form
// "pkgpath.Func", "pkgpath.Type.Method" or "pkgpath.Type.field" are stable
// across both views.

// funcKey returns the cross-package key for a function or method object.
func funcKey(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			if name, ok := namedOf(recv.Type()); ok {
				return name + "." + fn.Name()
			}
			return "?." + fn.Name()
		}
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// namedOf resolves t (through pointers and aliases) to "pkgpath.TypeName".
func namedOf(t types.Type) (string, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() == nil {
				return obj.Name(), true
			}
			return obj.Pkg().Path() + "." + obj.Name(), true
		default:
			return "", false
		}
	}
}

// calleeFunc resolves the called function object of a call expression, or
// nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
