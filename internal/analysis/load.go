package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load enumerates the packages matching patterns (relative to dir), builds
// them with `go list -export` so the build cache holds gc export data for
// every dependency, and type-checks each matched package from source. Only
// non-test GoFiles are analyzed: ssdvet checks the shipped engine, and the
// fixtures under testdata carry deliberate violations that must never leak
// into a production vet run (Go wildcards already exclude testdata).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(t.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, typeErrs[0])
		}
		out = append(out, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}
