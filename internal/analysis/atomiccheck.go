package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicCheck enforces the snapshot-publication discipline: fields that are
// read by lock-free readers must never be touched with plain loads and
// stores.
//
//   - A struct field of a sync/atomic type (atomic.Pointer[T], atomic.Int64,
//     …) may only appear as the receiver of a method call (Load, Store,
//     CompareAndSwap, Add, Swap — every method the types export is safe) or
//     under & (handing the counter itself to a helper). Copying it,
//     assigning it, or comparing it is a plain access that the race
//     detector may or may not catch, and `db.snap` / `Graph.rev` /
//     `WAL.end` readers rely on never happening.
//   - A plain-typed field annotated `//ssd:atomic` may only appear as an &f
//     argument to a sync/atomic package function (atomic.LoadUint64(&x.f)
//     style) — any bare read or write is a report.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "atomic fields must be accessed only through sync/atomic operations",
	Run:  runAtomicCheck,
}

func runAtomicCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			atomicTyped := isAtomicType(field.Type())
			annotated := false
			if owner, ok := namedOf(selection.Recv()); ok {
				annotated = hasVerb(pass.Index.Fields[owner+"."+field.Name()], "atomic")
			}
			if !atomicTyped && !annotated {
				return true
			}

			switch ctx := accessContext(sel, stack); ctx {
			case accessMethodCall:
				if atomicTyped {
					return true // x.f.Load(), x.f.Store(v), ...
				}
				pass.Reportf(sel.Pos(), "field %s is //ssd:atomic but has methods called on it; annotate only plain fields accessed via sync/atomic functions", field.Name())
			case accessAddrOf:
				if atomicTyped || addrArgToSyncAtomic(info, stack) {
					return true // &x.f to a sync/atomic function (or passing the atomic itself)
				}
				pass.Reportf(sel.Pos(), "&%s.%s escapes outside sync/atomic: the field is //ssd:atomic and must only be passed to atomic.Load/Store/Add/CompareAndSwap", recvName(sel), field.Name())
			default:
				what := "//ssd:atomic"
				if atomicTyped {
					what = "of type " + field.Type().String()
				}
				pass.Reportf(sel.Pos(), "plain access to %s.%s: the field is %s and must only be used through sync/atomic operations (lock-free readers depend on it)", recvName(sel), field.Name(), what)
			}
			return true
		})
	}
}

type accessKind int

const (
	accessPlain accessKind = iota
	accessMethodCall
	accessAddrOf
)

// accessContext classifies how the field selector is used, given its
// ancestor stack.
func accessContext(sel *ast.SelectorExpr, stack []ast.Node) accessKind {
	if len(stack) == 0 {
		return accessPlain
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.f.Method — safe when the outer selector is the field's method.
		if p.X == sel {
			return accessMethodCall
		}
	case *ast.UnaryExpr:
		if p.Op.String() == "&" && p.X == sel {
			return accessAddrOf
		}
	}
	return accessPlain
}

// addrArgToSyncAtomic reports whether the &expr whose UnaryExpr tops the
// stack is an argument to a sync/atomic package function.
func addrArgToSyncAtomic(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicType reports whether t (or its element) is declared in
// sync/atomic.
func isAtomicType(t types.Type) bool {
	name, ok := namedOf(t)
	if !ok {
		return false
	}
	return len(name) > len("sync/atomic.") && name[:len("sync/atomic.")] == "sync/atomic."
}

// recvName renders the selector's receiver expression for diagnostics.
func recvName(sel *ast.SelectorExpr) string {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return "x"
}
