package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runAnalyzerTest loads the fixture package at testdata/src/<rel>, runs one
// analyzer over it, and matches the findings against `// want "regexp"`
// expectations in the fixture source — the analysistest contract: every
// line carrying a want comment must produce a matching diagnostic, and
// every diagnostic must be expected.
func runAnalyzerTest(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	root := repoRoot(t)
	pattern := "./" + filepath.ToSlash(filepath.Join("internal/analysis/testdata/src", rel))
	pkgs, err := Load(root, pattern)
	if err != nil {
		t.Fatalf("load %s: %v", pattern, err)
	}
	idx := BuildIndex(pkgs)
	findings := RunAnalyzers(pkgs, idx, []*Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string]*want) // "file:line"
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			for line, expr := range wantComments(t, name) {
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, line, expr, err)
				}
				wants[fmt.Sprintf("%s:%d", name, line)] = &want{re: re}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		w := wants[key]
		switch {
		case w == nil:
			t.Errorf("unexpected diagnostic at %s: %s", key, f.Message)
		case !w.re.MatchString(f.Message):
			t.Errorf("diagnostic at %s does not match want %q: %s", key, w.re, f.Message)
		default:
			w.matched = true
		}
	}
	for key, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s matching %q", key, w.re)
		}
	}
}

// wantComments extracts `// want "re"` / `// want `+"`re`"+“ trailers per
// line. It scans raw source lines rather than the comment AST so that a
// want can annotate a line whose trailing comment is itself a directive
// under test.
func wantComments(t *testing.T, filename string) map[int]string {
	t.Helper()
	f, err := os.Open(filename)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := make(map[int]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		i := strings.Index(text, "// want ")
		if i < 0 {
			continue
		}
		arg := strings.TrimSpace(text[i+len("// want "):])
		switch {
		case strings.HasPrefix(arg, "`"):
			arg = strings.Trim(arg, "`")
		case strings.HasPrefix(arg, `"`):
			unq, err := strconv.Unquote(arg)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", filename, line, arg, err)
			}
			arg = unq
		default:
			t.Fatalf("%s:%d: want argument must be a quoted or backquoted regexp, got %s", filename, line, arg)
		}
		out[line] = arg
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLockCheck(t *testing.T)     { runAnalyzerTest(t, LockCheck, "lockcheck/a") }
func TestAtomicCheck(t *testing.T)   { runAnalyzerTest(t, AtomicCheck, "atomiccheck/a") }
func TestCloseCheck(t *testing.T)    { runAnalyzerTest(t, CloseCheck, "closecheck/a") }
func TestPinCheck(t *testing.T)      { runAnalyzerTest(t, PinCheck, "pincheck/a") }
func TestRevCacheCheck(t *testing.T) { runAnalyzerTest(t, RevCacheCheck, "revcachecheck/a") }
func TestCtxPoll(t *testing.T)       { runAnalyzerTest(t, CtxPoll, "ctxpoll/a") }

// TestSuiteFilter pins the -only flag contract: comma filtering and the
// error on unknown names.
func TestSuiteFilter(t *testing.T) {
	as, err := Suite("lockcheck,ctxpoll")
	if err != nil || len(as) != 2 {
		t.Fatalf("Suite filter: got %d analyzers, err %v", len(as), err)
	}
	if _, err := Suite("nosuch"); err == nil {
		t.Fatal("Suite accepted an unknown analyzer name")
	}
}

// TestRepoInvariantsClean runs the full suite over the engine packages the
// annotations live in: the repo's own invariants must hold at all times.
func TestRepoInvariantsClean(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(root, "./internal/...", "./cmd/...", "./examples/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	as, err := Suite("")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers(pkgs, BuildIndex(pkgs), as)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
