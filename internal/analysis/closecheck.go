package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CloseCheck enforces the cursor lifecycle on handles returned by
// //ssd:mustclose functions (Stmt.Query, Plan.Cursor, Plan.CursorParallel):
//
//   - The handle must be closed: a local variable bound to a mustclose
//     result needs a `.Close()` call (deferred or direct) somewhere in the
//     function, unless the handle escapes — returned, passed to another
//     function, or stored into a struct/field — in which case the receiver
//     owns the lifecycle.
//   - Exhaustion is not success: any handle (local or parameter) of a
//     mustclose handle type that is iterated with `.Next()` must consult
//     `.Err()` in the same function. This is the PR 4 bug class — a
//     mid-stream failure surfaced by Next returning false looks exactly
//     like a clean end of data until Err is asked.
//
// The escape analysis is deliberately coarse (any non-method use counts as
// an escape): it trades missed reports for zero false positives on
// ownership-transfer idioms like `return streamRows(rows, limit)`.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "handles from //ssd:mustclose functions must be closed and Err-checked",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCloseDecl(pass, fd)
		}
	}
}

// handleState tracks one handle variable through a function body. Function
// literals are analyzed together with their enclosing declaration: a
// closure closing over a handle is a legitimate place to Close it.
type handleState struct {
	obj       types.Object
	bindPos   token.Pos // the creating call (locals) or parameter position
	local     bool      // bound from a mustclose call in this function
	escaped   bool
	hasClose  bool
	hasErr    bool
	firstNext token.Pos
}

func checkCloseDecl(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	handles := make(map[types.Object]*handleState)

	// Parameters of handle types join the Err discipline: a helper that
	// drains a cursor it was handed must still distinguish exhaustion from
	// failure. Close stays the creator's problem.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if tn, ok := namedOf(obj.Type()); ok && pass.Index.HandleTypes[tn] {
					handles[obj] = &handleState{obj: obj, bindPos: name.Pos()}
				}
			}
		}
	}

	// Pass 1: find handle bindings — `h, err := mustCloseCall(...)` and
	// `h, err = mustCloseCall(...)`.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !hasVerb(pass.Index.FuncDirectives(calleeFunc(info, call)), "mustclose") {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if tn, ok := namedOf(obj.Type()); ok && pass.Index.HandleTypes[tn] {
				if h := handles[obj]; h != nil {
					h.local = true // parameter rebound to a fresh handle
					continue
				}
				handles[obj] = &handleState{obj: obj, bindPos: call.Pos(), local: true}
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}

	// Pass 2: classify every use of each handle.
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		h, ok := handles[obj]
		if !ok {
			return true
		}
		if len(stack) > 0 {
			switch p := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr:
				if p.X == id {
					switch p.Sel.Name {
					case "Close":
						h.hasClose = true
					case "Err":
						h.hasErr = true
					case "Next":
						if h.firstNext == token.NoPos {
							h.firstNext = p.Pos()
						}
					}
					return true // method/field access, not an escape
				}
			case *ast.AssignStmt:
				// The binding assignment's own LHS mention is not a use.
				for _, lhs := range p.Lhs {
					if lhs == ast.Expr(id) {
						return true
					}
				}
			}
		}
		h.escaped = true
		return true
	})

	for _, h := range handles {
		if h.local && !h.escaped && !h.hasClose {
			pass.Reportf(h.bindPos,
				"result of //ssd:mustclose call is never closed: call Close on every path (defer it) or hand the handle off")
		}
		if !h.escaped && h.firstNext != token.NoPos && !h.hasErr {
			pass.Reportf(h.firstNext,
				"cursor iterated to exhaustion without consulting Err(): a mid-stream failure is indistinguishable from clean completion (check Err after the Next loop)")
		}
	}
}
