// Package a is the lockcheck fixture: a miniature Database whose
// commitLocked contract mirrors the engine's writeMu protocol.
package a

import "sync"

type DB struct {
	mu  sync.Mutex
	val int
}

// commitLocked mutates under the caller's lock.
//
//ssd:requires mu
func (db *DB) commitLocked() { db.val++ }

// Commit is the compliant caller: takes the lock itself.
//
//ssd:locks mu
func (db *DB) Commit() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.commitLocked()
}

// CommitTail releases with a tail Unlock instead of a defer; the call in
// between is still guarded.
func (db *DB) CommitTail() {
	db.mu.Lock()
	db.commitLocked()
	db.mu.Unlock()
}

func (db *DB) Bad() {
	db.commitLocked() // want `requires lock "mu"`
}

func (db *DB) BadAfterUnlock() {
	db.mu.Lock()
	db.mu.Unlock()
	db.commitLocked() // want `requires lock "mu"`
}

// BadRelock holds mu by contract; locking it again is a self-deadlock.
//
//ssd:requires mu
func (db *DB) BadRelock() {
	db.mu.Lock() // want `self-deadlock`
	db.commitLocked()
}

// BadStale claims to take the lock but never does.
//
//ssd:locks mu
func (db *DB) BadStale() { // want `never calls mu.Lock`
	db.val++
}

// ChainOK: an annotated intermediary may call down without relocking.
//
//ssd:requires mu
func (db *DB) chainOK() {
	db.commitLocked()
}

// Waived: single-threaded construction, documented at the call site.
func (db *DB) Waived() {
	//ssd:nolock mu: fixture constructor path, the DB is not yet shared
	db.commitLocked()
}

// BadClosure: a lock taken outside a goroutine's closure does not guard
// calls inside it.
func (db *DB) BadClosure() {
	db.mu.Lock()
	defer db.mu.Unlock()
	go func() {
		db.commitLocked() // want `requires lock "mu"`
	}()
}
