// Package a is the ctxpoll fixture: pull-loop shapes that must stay
// cancellation-responsive.
package a

import "context"

type T struct {
	ctx context.Context
	n   int
}

// cancelled is the polling helper, like executor.cancelled.
//
//ssd:poll
func (t *T) cancelled() bool { return t.ctx.Err() != nil }

//ssd:ctxpoll
func (t *T) GoodHelper() {
	for t.n > 0 {
		if t.cancelled() {
			return
		}
		t.n--
	}
}

//ssd:ctxpoll
func (t *T) GoodDirect() bool {
	for t.n > 0 {
		if t.ctx.Err() != nil {
			return false
		}
		t.n--
	}
	return true
}

//ssd:ctxpoll
func (t *T) Bad() {
	for t.n > 0 { // want `no cancellation poll`
		t.n--
	}
}

// GoodNested: the inner loop is bounded by the polled outer iteration.
//
//ssd:ctxpoll
func (t *T) GoodNested() {
	for t.n > 0 {
		if t.cancelled() {
			return
		}
		for i := 0; i < 10; i++ {
			t.n--
		}
	}
}

// BadInRange: a bounded range does not shield an unbounded for inside it.
//
//ssd:ctxpoll
func (t *T) BadInRange(xs []int) {
	for range xs {
		for t.n > 0 { // want `no cancellation poll`
			t.n--
		}
	}
}

// unannotated functions are out of scope however their loops look.
func unannotated(n int) {
	for n > 0 {
		n--
	}
}
