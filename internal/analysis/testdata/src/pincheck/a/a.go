// Package a is the pincheck fixture: an accessor-shaped handle returned by
// //ssd:mustunpin functions, both concrete and through an interface.
package a

type Accessor interface {
	Out(n int) []int
	Release()
}

type acc struct{}

func (acc) Out(n int) []int { return nil }
func (acc) Release()        {}

type Store struct{}

// Accessor hands out a pinning handle the caller must Release.
//
//ssd:mustunpin
func (*Store) Accessor() Accessor { return acc{} }

type Provider interface {
	// Accessor returns a fresh pinning read handle.
	//
	//ssd:mustunpin
	Accessor() Accessor
}

// AccessorFor is the free-function flavor.
//
//ssd:mustunpin
func AccessorFor(s *Store) Accessor { return s.Accessor() }

func good(s *Store) int {
	a := s.Accessor()
	defer a.Release()
	return len(a.Out(0))
}

func goodDirect(s *Store) int {
	a := AccessorFor(s)
	n := len(a.Out(0))
	a.Release()
	return n
}

func goodViaInterface(p Provider) int {
	a := p.Accessor()
	defer a.Release()
	return len(a.Out(0))
}

func bad(s *Store) int {
	a := s.Accessor() // want `never released`
	return len(a.Out(0))
}

func badViaInterface(p Provider) int {
	a := p.Accessor() // want `never released`
	return len(a.Out(0))
}

func badFree(s *Store) int {
	a := AccessorFor(s) // want `never released`
	return len(a.Out(0))
}

// handOff transfers ownership; the receiver releases.
func handOff(s *Store) Accessor {
	a := s.Accessor()
	return a
}

// closureRelease is fine: the closure closes over the accessor and releases
// it there.
func closureRelease(s *Store) func() {
	a := s.Accessor()
	return func() { a.Release() }
}
