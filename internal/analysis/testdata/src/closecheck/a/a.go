// Package a is the closecheck fixture: a Rows-shaped handle returned by an
// //ssd:mustclose constructor.
package a

type Rows struct{ err error }

func (r *Rows) Next() bool   { return false }
func (r *Rows) Err() error   { return r.err }
func (r *Rows) Close() error { return nil }

// open hands out a handle the caller must Close.
//
//ssd:mustclose
func open() (*Rows, error) { return &Rows{}, nil }

func good() error {
	rows, err := open()
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
	}
	return rows.Err()
}

func badNoClose() error {
	rows, err := open() // want `never closed`
	if err != nil {
		return err
	}
	for rows.Next() {
	}
	return rows.Err()
}

func badNoErr() error {
	rows, err := open()
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() { // want `without consulting Err`
	}
	return nil
}

// handOff transfers ownership; the receiver closes.
func handOff() (*Rows, error) {
	rows, err := open()
	return rows, err
}

// drainBad iterates a handed-in handle but cannot tell exhaustion from
// failure.
func drainBad(rows *Rows) int {
	n := 0
	for rows.Next() { // want `without consulting Err`
		n++
	}
	return n
}

func drainGood(rows *Rows) (int, error) {
	n := 0
	for rows.Next() {
		n++
	}
	return n, rows.Err()
}
