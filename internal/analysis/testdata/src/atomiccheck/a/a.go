// Package a is the atomiccheck fixture: a struct mixing sync/atomic-typed
// fields, an //ssd:atomic plain field, and an unconstrained one.
package a

import "sync/atomic"

type S struct {
	p atomic.Pointer[int]
	//ssd:atomic
	n     int64
	plain int
}

func take(p *atomic.Pointer[int]) { _ = p }

func (s *S) Good() *int {
	v := atomic.LoadInt64(&s.n)
	atomic.StoreInt64(&s.n, v+1)
	s.p.Store(nil)
	take(&s.p)
	s.plain = 1 // unconstrained field: plain access is fine
	return s.p.Load()
}

func (s *S) Bad() {
	_ = s.n  // want `plain access`
	s.n = 4  // want `plain access`
	q := s.p // want `plain access`
	_ = q
	f := &s.n // want `escapes outside sync/atomic`
	_ = f
}
