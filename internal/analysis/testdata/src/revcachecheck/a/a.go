// Package a is the revcachecheck fixture: a graph-shaped struct whose rev
// field caches a view derived from out.
package a

import "sync/atomic"

type G struct {
	//ssd:cachedby rev
	out [][]int
	//ssd:cache rev
	rev atomic.Pointer[[][]int]
}

// GoodAdd invalidates before the write.
//
//ssd:invalidates rev
func (g *G) GoodAdd() {
	g.rev.Store(nil)
	g.out = append(g.out, nil)
}

// GoodAlias invalidates before writing through a row alias.
//
//ssd:invalidates rev
func (g *G) GoodAlias(n int) {
	g.rev.Store(nil)
	row := g.out[n]
	row[0] = 1
}

func (g *G) BadUnannotated() {
	g.out = append(g.out, nil) // want `not annotated`
}

//ssd:invalidates rev
func (g *G) BadOrder() {
	g.out[0] = nil // want `before invalidating`
	g.rev.Store(nil)
}

//ssd:invalidates rev
func (g *G) BadNoStore() {
	g.out[0] = nil // want `never stores`
}

// Preserving rebinds a row to an equal copy: the derived view stays
// consistent, no invalidation needed.
//
//ssd:preserves rev
func (g *G) Preserving(n int) {
	row := g.out[n]
	g.out[n] = append([]int(nil), row...)
}

//ssd:invalidates rev
func (g *G) BadStale() { // want `stale annotation`
	_ = len(g.out)
}
