package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot locates the module root (the directory holding go.mod) from the
// test's working directory, so loader tests can use repo-relative patterns.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
