package analysis

import (
	"go/ast"
)

// CtxPoll enforces cancellation responsiveness in the pull executors: a
// function annotated `//ssd:ctxpoll` promises that its unbounded loops poll
// for cancellation, so every outermost `for` statement in it must contain a
// poll — a call to a `//ssd:poll`-annotated helper (executor.cancelled,
// Traversal.cancelled) or a direct ctx.Err()/ctx.Done() consultation.
//
// Range statements are exempt as targets (they are bounded by their
// operand) but do not shield a `for` nested inside them: a bounded outer
// range over an unbounded inner loop is still unbounded. Loops nested
// inside a polled-candidate `for` are skipped — the outer iteration already
// bounds the latency between polls to one outer step, which is the
// granularity the engine's morsel-sized batches target.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "//ssd:ctxpoll functions must poll cancellation in every outermost for-loop",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasVerb(declDirectives(pass.Pkg, pass.Index, fd), "ctxpoll") {
				continue
			}
			checkCtxPollDecl(pass, fd)
		}
	}
}

func checkCtxPollDecl(pass *Pass, fd *ast.FuncDecl) {
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.ForStmt); ok {
				return true // inner loop: the outer polled loop bounds it
			}
		}
		if !containsPoll(pass, loop.Body) {
			pass.Reportf(loop.Pos(),
				"unbounded for-loop in //ssd:ctxpoll function %s has no cancellation poll: call a //ssd:poll helper or check ctx.Err()/ctx.Done() in the loop body",
				fd.Name.Name)
		}
		return true
	})
}

// containsPoll reports whether body contains a cancellation poll: a call to
// a //ssd:poll-annotated function, or an Err/Done method call on a
// context.Context value.
func containsPoll(pass *Pass, body ast.Node) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if hasVerb(pass.Index.FuncDirectives(calleeFunc(info, call)), "poll") {
			found = true
			return false
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
				if tv, ok := info.Types[sel.X]; ok {
					if name, ok := namedOf(tv.Type); ok && name == "context.Context" {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}
