package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RevCacheCheck enforces the derived-cache discipline on structs annotated
// with //ssd:cache / //ssd:cachedby field pairs (Graph.rev caching reverse
// adjacency derived from Graph.out):
//
//   - A method that writes a //ssd:cachedby data field in place must be
//     annotated `//ssd:invalidates <name>` and must drop the cache — a
//     `<cacheField>.Store(...)` on the receiver — lexically BEFORE the first
//     write. Invalidate-after-write leaves a window where a concurrent
//     reader snapshots a reverse index inconsistent with the forward edges.
//   - `//ssd:preserves <name>` waives the check for methods that provably
//     leave the derived view consistent (copy-on-write privatization).
//   - An `//ssd:invalidates` annotation with no invalidating store is stale
//     and reported: it would launder real writers added later.
//
// Writes are tracked through aliases with reference semantics: a local
// bound to `g.out` or a range row over it mutates the same backing array.
var RevCacheCheck = &Analyzer{
	Name: "revcachecheck",
	Doc:  "in-place writes to //ssd:cachedby fields must invalidate the cache first",
	Run:  runRevCacheCheck,
}

func runRevCacheCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			owner := recvOwner(pass.Pkg, fd)
			spec := pass.Index.Caches[owner]
			if spec == nil || spec.CacheField == "" || len(spec.DataFields) == 0 {
				continue
			}
			checkRevCacheDecl(pass, fd, spec)
		}
	}
}

func checkRevCacheDecl(pass *Pass, fd *ast.FuncDecl, spec *CacheSpec) {
	info := pass.Pkg.Info
	recv := recvObject(pass.Pkg, fd)
	if recv == nil {
		return
	}

	aliases := make(map[types.Object]bool) // locals sharing the data field's backing store
	firstWrite := token.NoPos
	firstInvalidate := token.NoPos

	// rooted reports whether e reaches a data field of the receiver (or an
	// alias of one) through any chain of index/slice/star/paren.
	var rooted func(e ast.Expr) bool
	rooted = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return aliases[info.Uses[e]]
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && info.Uses[id] == recv {
				return spec.DataFields[e.Sel.Name]
			}
			return rooted(e.X)
		case *ast.IndexExpr:
			return rooted(e.X)
		case *ast.SliceExpr:
			return rooted(e.X)
		case *ast.StarExpr:
			return rooted(e.X)
		}
		return false
	}
	// refSemantics reports whether copying e shares mutable backing store.
	refSemantics := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Pointer, *types.Map:
			return true
		}
		return false
	}
	noteWrite := func(pos token.Pos) {
		if firstWrite == token.NoPos || pos < firstWrite {
			firstWrite = pos
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rooted(lhs) {
					noteWrite(lhs.Pos())
				}
			}
			// Alias creation: h := g.out (or = ), only for reference types.
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if rooted(n.Rhs[i]) && refSemantics(n.Rhs[i]) {
						if obj := info.Defs[id]; obj != nil {
							aliases[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							aliases[obj] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			// for i, row := range g.out — row shares backing store with out[i].
			// Range-var idents are definitions, absent from info.Types, so
			// reference semantics is judged from the object's own type.
			if rooted(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						switch obj.Type().Underlying().(type) {
						case *types.Slice, *types.Pointer, *types.Map:
							aliases[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if rooted(n.X) {
				noteWrite(n.X.Pos())
			}
		case *ast.CallExpr:
			// recv.<cacheField>.Store(...) / .CompareAndSwap(...) invalidates.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Store" || sel.Sel.Name == "CompareAndSwap" {
					if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == spec.CacheField {
						if id, ok := ast.Unparen(inner.X).(*ast.Ident); ok && info.Uses[id] == recv {
							if firstInvalidate == token.NoPos || n.Pos() < firstInvalidate {
								firstInvalidate = n.Pos()
							}
							return true
						}
					}
				}
			}
			// A rooted argument handed to an arbitrary function may be
			// mutated there. Builtins that cannot write through their
			// argument are exempt; copy writes only its destination.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "len", "cap", "append", "make", "new":
					return true
				case "copy":
					if len(n.Args) > 0 && rooted(n.Args[0]) {
						noteWrite(n.Args[0].Pos())
					}
					return true
				}
			}
			for _, arg := range n.Args {
				if rooted(arg) && refSemantics(arg) {
					noteWrite(arg.Pos())
				}
			}
		}
		return true
	})

	ds := declDirectives(pass.Pkg, pass.Index, fd)
	invalidates := false
	for _, args := range argsOf(ds, "invalidates") {
		if len(args) == 1 && args[0] == spec.Name {
			invalidates = true
		}
	}
	preserves := false
	for _, args := range argsOf(ds, "preserves") {
		if len(args) == 1 && args[0] == spec.Name {
			preserves = true
		}
	}

	switch {
	case preserves:
		// Trusted: the method guarantees the derived view stays consistent.
	case firstWrite != token.NoPos && !invalidates:
		pass.Reportf(firstWrite,
			"in-place write to %s.%s (//ssd:cachedby %s) in a method not annotated //ssd:invalidates %s: annotate and invalidate, or //ssd:preserves %s with justification",
			spec.Owner, dataFieldList(spec), spec.Name, spec.Name, spec.Name)
	case firstWrite != token.NoPos && firstInvalidate == token.NoPos:
		pass.Reportf(firstWrite,
			"%s is annotated //ssd:invalidates %s but never stores to %s: readers can observe a stale derived cache",
			fd.Name.Name, spec.Name, spec.CacheField)
	case firstWrite != token.NoPos && firstInvalidate > firstWrite:
		pass.Reportf(firstWrite,
			"%s writes the //ssd:cachedby data before invalidating %s (the %s.Store comes later): a concurrent reader can derive a cache inconsistent with the new data — invalidate first",
			fd.Name.Name, spec.Name, spec.CacheField)
	case firstWrite == token.NoPos && invalidates && firstInvalidate == token.NoPos:
		pass.Reportf(fd.Name.Pos(),
			"%s is annotated //ssd:invalidates %s but neither writes the data nor stores to %s: stale annotation",
			fd.Name.Name, spec.Name, spec.CacheField)
	}
}

func dataFieldList(spec *CacheSpec) string {
	out := ""
	for f := range spec.DataFields {
		if out != "" {
			out += "/"
		}
		out += f
	}
	return out
}
