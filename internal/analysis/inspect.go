package analysis

import "go/ast"

// inspectStack walks n keeping the ancestor stack. fn receives each node
// with its ancestors (outermost first, not including the node itself);
// returning false prunes the subtree.
func inspectStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if !ok {
			// Pruned subtrees get no pop callback, so do not push.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
