package index

import (
	"sort"

	"repro/internal/ssd"
)

// This file is the incremental-maintenance half of the package: instead of
// rebuilding an index from scratch after a mutation batch (O(E) scan, plus
// an O(E log E) sort for the value index), Apply derives the post-mutation
// index from the pre-mutation one and the batch's edge delta. Both Apply
// methods are copy-on-write: they return a NEW index sharing untouched
// storage with the receiver, which therefore keeps serving the old snapshot
// unchanged — the property the MVCC commit path in internal/core relies on.

// Apply derives the label index of the post-mutation graph. Posting lists of
// labels the delta does not touch are shared with the receiver; touched ones
// are copied with removals tombstoned out (one occurrence per removal record,
// matching ssd.Graph.DeleteEdge) and additions appended. Cost is
// O(distinct labels + touched postings), independent of total edge count.
func (ix *LabelIndex) Apply(d ssd.Delta) *LabelIndex {
	d = d.Normalize()
	if d.Empty() {
		return ix
	}
	out := &LabelIndex{occ: make(map[ssd.Label][]EdgeRef, len(ix.occ))}
	for l, refs := range ix.occ {
		out.occ[l] = refs
	}
	// Tombstone removals label by label.
	rm := make(map[ssd.Label]map[EdgeRef]int)
	for _, r := range d.Removed {
		m := rm[r.Label]
		if m == nil {
			m = make(map[EdgeRef]int)
			rm[r.Label] = m
		}
		m[EdgeRef{r.From, r.To}]++
	}
	for l, counts := range rm {
		kept := make([]EdgeRef, 0, len(out.occ[l]))
		for _, ref := range out.occ[l] {
			if counts[ref] > 0 {
				counts[ref]--
				continue
			}
			kept = append(kept, ref)
		}
		if len(kept) == 0 {
			delete(out.occ, l)
		} else {
			out.occ[l] = kept
		}
	}
	// Append additions, privatizing each touched list once. Lists rewritten
	// by the removal pass are already private.
	private := make(map[ssd.Label]bool, len(rm))
	for l := range rm {
		private[l] = true
	}
	for _, a := range d.Added {
		refs := out.occ[a.Label]
		if !private[a.Label] {
			refs = append(make([]EdgeRef, 0, len(refs)+1), refs...)
			private[a.Label] = true
		}
		out.occ[a.Label] = append(refs, EdgeRef{a.From, a.To})
	}
	return out
}

// Apply derives the value index of the post-mutation graph by a single merge
// pass: additions are sorted among themselves and merged into the ordered
// entry array, removals are dropped (one occurrence per record). This is an
// O(E + |delta| log |delta|) copy with no comparisons re-sorted — the win
// over BuildValueIndex's full scan plus O(E log E) sort that experiment E13
// measures. The receiver is untouched.
func (ix *ValueIndex) Apply(d ssd.Delta) *ValueIndex {
	d = d.Normalize()
	if d.Empty() {
		return ix
	}
	adds := make([]valueEntry, 0, len(d.Added))
	for _, a := range d.Added {
		adds = append(adds, valueEntry{a.Label, EdgeRef{a.From, a.To}})
	}
	sort.Slice(adds, func(i, j int) bool {
		return adds[i].label.Compare(adds[j].label) < 0
	})
	// Locate each removal by binary search on its label run, collecting the
	// entry indices to skip; the merge below then runs on whole chunks
	// (memmove) instead of testing every entry.
	var skip []int
	var claimed map[int]bool
	for _, r := range d.Removed {
		ent := valueEntry{r.Label, EdgeRef{r.From, r.To}}
		lo := sort.Search(len(ix.entries), func(i int) bool {
			return ix.entries[i].label.Compare(r.Label) >= 0
		})
		for i := lo; i < len(ix.entries) && ix.entries[i].label.Compare(r.Label) == 0; i++ {
			if ix.entries[i] == ent && !claimed[i] {
				if claimed == nil {
					claimed = make(map[int]bool, len(d.Removed))
				}
				claimed[i] = true
				skip = append(skip, i)
				break
			}
		}
	}
	sort.Ints(skip)

	kept := ix.entries
	if len(skip) > 0 {
		kept = make([]valueEntry, 0, len(ix.entries)-len(skip))
		prev := 0
		for _, s := range skip {
			kept = append(kept, ix.entries[prev:s]...)
			prev = s + 1
		}
		kept = append(kept, ix.entries[prev:]...)
	}
	if len(adds) == 0 {
		return &ValueIndex{entries: kept}
	}
	out := make([]valueEntry, 0, len(kept)+len(adds))
	prev := 0
	for _, a := range adds {
		// Insert after any Compare-equal run; adds are sorted, so searching
		// the tail kept[prev:] keeps positions monotone.
		ip := prev + sort.Search(len(kept)-prev, func(i int) bool {
			return kept[prev+i].label.Compare(a.label) > 0
		})
		out = append(out, kept[prev:ip]...)
		out = append(out, a)
		prev = ip
	}
	out = append(out, kept[prev:]...)
	return &ValueIndex{entries: out}
}
