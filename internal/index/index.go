// Package index provides the label and value ("text") indexes §4 of the
// paper mentions as the natural extensions of existing optimization
// machinery: a LabelIndex from edge labels to their occurrences, and an
// ordered ValueIndex over data labels supporting range and prefix scans.
// These answer the §1.3 browsing queries (find a string anywhere, find
// integers > 2^16, find attribute names like "act%") without a full scan;
// experiment E2 measures the difference.
package index

import (
	"sort"
	"strings"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// EdgeRef locates one edge occurrence in the indexed graph.
type EdgeRef struct {
	From ssd.NodeID
	To   ssd.NodeID
}

// LabelIndex maps each distinct label to every edge carrying it.
type LabelIndex struct {
	occ map[ssd.Label][]EdgeRef
}

// BuildLabelIndex scans g once and indexes every edge by its exact label.
// Any GraphStore works; on a paged store the id-order scan reads each page
// about once per run it appears in.
func BuildLabelIndex(g ssd.GraphStore) *LabelIndex {
	ix := &LabelIndex{occ: make(map[ssd.Label][]EdgeRef)}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			ix.occ[e.Label] = append(ix.occ[e.Label], EdgeRef{ssd.NodeID(v), e.To})
		}
	}
	return ix
}

// Lookup returns the occurrences of exactly l (no numeric overloading: the
// index is keyed on label identity; callers wanting 2 == 2.0 should probe
// both labels).
func (ix *LabelIndex) Lookup(l ssd.Label) []EdgeRef { return ix.occ[l] }

// Count returns the number of occurrences of exactly l — the per-label
// statistic query planners use to order pattern atoms by selectivity.
func (ix *LabelIndex) Count(l ssd.Label) int { return len(ix.occ[l]) }

// Cursor is a pull-based posting-list cursor over the occurrences of one
// label, produced by Seek. The zero value is an exhausted cursor. Cursors
// are plain values: copying one forks the iteration position.
type Cursor struct {
	refs []EdgeRef
	i    int
}

// Seek positions a cursor at the start of l's posting list. The cursor
// shares the index's storage and allocates nothing.
func (ix *LabelIndex) Seek(l ssd.Label) Cursor { return Cursor{refs: ix.occ[l]} }

// Next yields the next occurrence, or ok=false when the list is exhausted.
func (c *Cursor) Next() (EdgeRef, bool) {
	if c.i >= len(c.refs) {
		return EdgeRef{}, false
	}
	ref := c.refs[c.i]
	c.i++
	return ref, true
}

// LookupSymbol returns occurrences of the symbol s.
func (ix *LabelIndex) LookupSymbol(s string) []EdgeRef { return ix.occ[ssd.Sym(s)] }

// Labels returns all indexed labels, sorted.
func (ix *LabelIndex) Labels() []ssd.Label {
	ls := make([]ssd.Label, 0, len(ix.occ))
	for l := range ix.occ {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	return ls
}

// Len returns the number of distinct labels.
func (ix *LabelIndex) Len() int { return len(ix.occ) }

// ValueIndex is an ordered index over all edge labels, grouped by kind and
// sorted within each kind, supporting range scans (numerics, strings) and
// prefix scans (strings and symbols).
type ValueIndex struct {
	entries []valueEntry // sorted by (kind group, Label.Compare)
}

type valueEntry struct {
	label ssd.Label
	ref   EdgeRef
}

// BuildValueIndex scans g once and builds the ordered index.
func BuildValueIndex(g ssd.GraphStore) *ValueIndex {
	ix := &ValueIndex{}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			ix.entries = append(ix.entries, valueEntry{e.Label, EdgeRef{ssd.NodeID(v), e.To}})
		}
	}
	sort.Slice(ix.entries, func(i, j int) bool {
		return ix.entries[i].label.Compare(ix.entries[j].label) < 0
	})
	return ix
}

// Len returns the number of indexed edges.
func (ix *ValueIndex) Len() int { return len(ix.entries) }

// Exact returns occurrences of exactly l (binary search).
func (ix *ValueIndex) Exact(l ssd.Label) []EdgeRef {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return ix.entries[i].label.Compare(l) >= 0
	})
	var out []EdgeRef
	for i := lo; i < len(ix.entries) && ix.entries[i].label.Compare(l) == 0; i++ {
		out = append(out, ix.entries[i].ref)
	}
	return out
}

// Compare evaluates `label op rhs` over the index. Equality and ordered
// comparisons on numerics and strings use binary search on the ordered run
// of the rhs's kind; != and cross-kind cases fall back to a filtered scan.
func (ix *ValueIndex) Compare(op pathexpr.CmpOp, rhs ssd.Label) []EdgeRef {
	pred := pathexpr.CmpPred{Op: op, Rhs: rhs}
	if op == pathexpr.OpNE {
		return ix.scan(pred) // no contiguous run
	}
	return ix.rangeScan(pred, rhs)
}

// rangeScan handles <, <=, >, >= by locating the boundary with binary search
// and walking the appropriate direction while the predicate holds within the
// comparable region. Numeric rhs spans the int+float run; string rhs spans
// the string run; symbol rhs the symbol run.
func (ix *ValueIndex) rangeScan(pred pathexpr.CmpPred, rhs ssd.Label) []EdgeRef {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return ix.entries[i].label.Compare(rhs) >= 0
	})
	var out []EdgeRef
	switch pred.Op {
	case pathexpr.OpEQ:
		// Equal entries are contiguous around lo: numeric ties may sit just
		// before lo when the kind tiebreak orders them earlier.
		for i := lo; i < len(ix.entries) && pred.Match(ix.entries[i].label); i++ {
			out = append(out, ix.entries[i].ref)
		}
		for i := lo - 1; i >= 0 && pred.Match(ix.entries[i].label); i-- {
			out = append(out, ix.entries[i].ref)
		}
	case pathexpr.OpGT, pathexpr.OpGE:
		for i := lo; i < len(ix.entries); i++ {
			l := ix.entries[i].label
			if !sameComparisonGroup(l, rhs) {
				break
			}
			if pred.Match(l) {
				out = append(out, ix.entries[i].ref)
			}
		}
		// Entries numerically ≥ rhs can also sit just before lo when kinds
		// tie (e.g. Int(2) vs Float(2.0) orders by kind); sweep the boundary.
		for i := lo - 1; i >= 0; i-- {
			l := ix.entries[i].label
			if !sameComparisonGroup(l, rhs) || !pred.Match(l) {
				break
			}
			out = append(out, ix.entries[i].ref)
		}
	case pathexpr.OpLT, pathexpr.OpLE:
		for i := lo - 1; i >= 0; i-- {
			l := ix.entries[i].label
			if !sameComparisonGroup(l, rhs) {
				break
			}
			if pred.Match(l) {
				out = append(out, ix.entries[i].ref)
			}
		}
		for i := lo; i < len(ix.entries); i++ {
			l := ix.entries[i].label
			if !sameComparisonGroup(l, rhs) || !pred.Match(l) {
				break
			}
			out = append(out, ix.entries[i].ref)
		}
	}
	return out
}

func sameComparisonGroup(a, b ssd.Label) bool {
	if _, ok := a.Numeric(); ok {
		_, ok2 := b.Numeric()
		return ok2
	}
	return a.Kind() == b.Kind()
}

// Like returns occurrences whose symbol/string payload matches the SQL-style
// %-pattern. A literal prefix before the first % narrows the scan to the
// prefix range of both the symbol and string runs.
func (ix *ValueIndex) Like(pattern string) []EdgeRef {
	pred := pathexpr.LikePred{Pattern: pattern}
	prefix := pattern
	if i := strings.IndexByte(pattern, '%'); i >= 0 {
		prefix = pattern[:i]
	}
	if prefix == "" {
		return ix.scan(pred)
	}
	var out []EdgeRef
	for _, probe := range []ssd.Label{ssd.Sym(prefix), ssd.Str(prefix)} {
		lo := sort.Search(len(ix.entries), func(i int) bool {
			return ix.entries[i].label.Compare(probe) >= 0
		})
		for i := lo; i < len(ix.entries); i++ {
			l := ix.entries[i].label
			if l.Kind() != probe.Kind() {
				break
			}
			s := payload(l)
			if !strings.HasPrefix(s, prefix) {
				break
			}
			if pred.Match(l) {
				out = append(out, ix.entries[i].ref)
			}
		}
	}
	return out
}

// Scan returns occurrences matching an arbitrary predicate by full scan —
// the baseline every indexed access is measured against in E2.
func (ix *ValueIndex) Scan(pred pathexpr.Pred) []EdgeRef { return ix.scan(pred) }

func (ix *ValueIndex) scan(pred pathexpr.Pred) []EdgeRef {
	var out []EdgeRef
	for _, ent := range ix.entries {
		if pred.Match(ent.label) {
			out = append(out, ent.ref)
		}
	}
	return out
}

func payload(l ssd.Label) string {
	if s, ok := l.Symbol(); ok {
		return s
	}
	s, _ := l.Text()
	return s
}

// ScanGraph evaluates a predicate over every edge of g without any index —
// the true full-scan baseline (no presorted entry array).
func ScanGraph(g ssd.GraphStore, pred pathexpr.Pred) []EdgeRef {
	var out []EdgeRef
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			if pred.Match(e.Label) {
				out = append(out, EdgeRef{ssd.NodeID(v), e.To})
			}
		}
	}
	return out
}
