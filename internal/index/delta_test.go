package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// applyDeltaToGraph mutates g according to a randomly drawn batch and
// returns the delta describing it, mirroring what internal/mutate produces.
func applyDeltaToGraph(g *ssd.Graph, rng *rand.Rand, ops int) ssd.Delta {
	var d ssd.Delta
	labels := []ssd.Label{
		ssd.Sym("a"), ssd.Sym("b"), ssd.Str("s1"), ssd.Str("s2"),
		ssd.Int(7), ssd.Float(7), ssd.Bool(true), ssd.OID("&x"),
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0: // add
			from := ssd.NodeID(rng.Intn(g.NumNodes()))
			to := ssd.NodeID(rng.Intn(g.NumNodes()))
			l := labels[rng.Intn(len(labels))]
			g.AddEdge(from, l, to)
			d.Added = append(d.Added, ssd.EdgeRec{From: from, Label: l, To: to})
		case 1: // delete
			from := ssd.NodeID(rng.Intn(g.NumNodes()))
			es := g.Out(from)
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if g.DeleteEdge(from, e.Label, e.To) {
				d.Removed = append(d.Removed, ssd.EdgeRec{From: from, Label: e.Label, To: e.To})
			}
		default: // relabel
			from := ssd.NodeID(rng.Intn(g.NumNodes()))
			es := g.Out(from)
			if len(es) == 0 {
				continue
			}
			old := es[rng.Intn(len(es))].Label
			nl := labels[rng.Intn(len(labels))]
			if nl == old {
				continue
			}
			for _, e := range es {
				if e.Label == old {
					d.Removed = append(d.Removed, ssd.EdgeRec{From: from, Label: old, To: e.To})
					d.Added = append(d.Added, ssd.EdgeRec{From: from, Label: nl, To: e.To})
				}
			}
			g.Relabel(from, old, nl)
		}
	}
	return d
}

func randIndexGraph(rng *rand.Rand) *ssd.Graph {
	g := ssd.New()
	g.AddNodes(10 + rng.Intn(20))
	applyDeltaToGraph(g, rng, 60) // seed edges; discard the delta
	return g
}

func sortRefs(refs []EdgeRef) []EdgeRef {
	out := append([]EdgeRef(nil), refs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func TestLabelIndexApplyMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		g := randIndexGraph(rng)
		ix := BuildLabelIndex(g)
		d := applyDeltaToGraph(g, rng, 1+rng.Intn(10))
		got := ix.Apply(d)
		want := BuildLabelIndex(g)
		if !reflect.DeepEqual(got.Labels(), want.Labels()) {
			t.Fatalf("iter %d: label sets differ:\n got %v\nwant %v", iter, got.Labels(), want.Labels())
		}
		for _, l := range want.Labels() {
			if !reflect.DeepEqual(sortRefs(got.Lookup(l)), sortRefs(want.Lookup(l))) {
				t.Fatalf("iter %d: postings for %v differ:\n got %v\nwant %v",
					iter, l, sortRefs(got.Lookup(l)), sortRefs(want.Lookup(l)))
			}
		}
	}
}

func TestValueIndexApplyMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	probes := []ssd.Label{
		ssd.Sym("a"), ssd.Str("s1"), ssd.Int(7), ssd.Float(7), ssd.Bool(true), ssd.OID("&x"),
	}
	for iter := 0; iter < 100; iter++ {
		g := randIndexGraph(rng)
		ix := BuildValueIndex(g)
		d := applyDeltaToGraph(g, rng, 1+rng.Intn(10))
		got := ix.Apply(d)
		want := BuildValueIndex(g)
		if got.Len() != want.Len() {
			t.Fatalf("iter %d: Len %d != %d", iter, got.Len(), want.Len())
		}
		for _, p := range probes {
			if !reflect.DeepEqual(sortRefs(got.Exact(p)), sortRefs(want.Exact(p))) {
				t.Fatalf("iter %d: Exact(%v) differ", iter, p)
			}
			for _, op := range []pathexpr.CmpOp{pathexpr.OpGT, pathexpr.OpLE} {
				if !reflect.DeepEqual(sortRefs(got.Compare(op, p)), sortRefs(want.Compare(op, p))) {
					t.Fatalf("iter %d: Compare(%v, %v) differ", iter, op, p)
				}
			}
		}
		if !reflect.DeepEqual(sortRefs(got.Like("s%")), sortRefs(want.Like("s%"))) {
			t.Fatalf("iter %d: Like differ", iter)
		}
	}
}

// TestApplyLeavesReceiverUntouched pins the copy-on-write contract: the old
// index keeps answering for the old graph after Apply.
func TestApplyLeavesReceiverUntouched(t *testing.T) {
	g := ssd.New()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(g.Root(), ssd.Sym("x"), a)
	g.AddEdge(a, ssd.Str("v"), b)
	lx := BuildLabelIndex(g)
	vx := BuildValueIndex(g)
	oldX := fmt.Sprint(sortRefs(lx.Lookup(ssd.Sym("x"))))
	oldLen := vx.Len()

	d := ssd.Delta{
		Added:   []ssd.EdgeRec{{From: g.Root(), Label: ssd.Sym("x"), To: b}},
		Removed: []ssd.EdgeRec{{From: a, Label: ssd.Str("v"), To: b}},
	}
	lx2 := lx.Apply(d)
	vx2 := vx.Apply(d)

	if got := fmt.Sprint(sortRefs(lx.Lookup(ssd.Sym("x")))); got != oldX {
		t.Fatalf("receiver postings changed: %s != %s", got, oldX)
	}
	if vx.Len() != oldLen {
		t.Fatalf("receiver Len changed: %d != %d", vx.Len(), oldLen)
	}
	if len(lx2.Lookup(ssd.Sym("x"))) != 2 {
		t.Fatalf("new index postings = %v", lx2.Lookup(ssd.Sym("x")))
	}
	if len(vx2.Exact(ssd.Str("v"))) != 0 {
		t.Fatalf("new index still has removed entry")
	}
}
