package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

func testGraph(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Movie: {Title: "Casablanca", Year: 1942, Rating: 8.5},
	 Movie: {Title: "Annie Hall", Year: 1977},
	 Show: {Episode: 1200000, Actors: {"Allen"}},
	 activity: "acting",
	 Active: true}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLabelIndexLookup(t *testing.T) {
	g := testGraph(t)
	ix := BuildLabelIndex(g)
	if got := ix.LookupSymbol("Movie"); len(got) != 2 {
		t.Errorf("Movie occurrences = %d, want 2", len(got))
	}
	if got := ix.LookupSymbol("Title"); len(got) != 2 {
		t.Errorf("Title occurrences = %d, want 2", len(got))
	}
	if got := ix.Lookup(ssd.Int(1942)); len(got) != 1 {
		t.Errorf("1942 occurrences = %d, want 1", len(got))
	}
	if got := ix.LookupSymbol("Nope"); got != nil {
		t.Errorf("missing label = %v", got)
	}
	if ix.Len() == 0 {
		t.Error("Len = 0")
	}
}

func TestLabelIndexLabelsSorted(t *testing.T) {
	g := testGraph(t)
	ls := BuildLabelIndex(g).Labels()
	for i := 1; i < len(ls); i++ {
		if ls[i].Less(ls[i-1]) {
			t.Fatalf("labels not sorted at %d: %v", i, ls)
		}
	}
}

func TestValueIndexExact(t *testing.T) {
	g := testGraph(t)
	ix := BuildValueIndex(g)
	if got := ix.Exact(ssd.Str("Casablanca")); len(got) != 1 {
		t.Errorf("Exact Casablanca = %d, want 1", len(got))
	}
	if got := ix.Exact(ssd.Str("missing")); len(got) != 0 {
		t.Errorf("Exact missing = %d", len(got))
	}
}

func TestValueIndexCompare(t *testing.T) {
	g := testGraph(t)
	ix := BuildValueIndex(g)
	// "integers greater than 2^16" — §1.3.
	gt := ix.Compare(pathexpr.OpGT, ssd.Int(65536))
	if len(gt) != 1 { // 1200000
		t.Errorf("> 65536: %d hits, want 1", len(gt))
	}
	ge := ix.Compare(pathexpr.OpGE, ssd.Int(1942))
	if len(ge) != 3 { // 1942, 1977, 1200000
		t.Errorf(">= 1942: %d hits, want 3", len(ge))
	}
	lt := ix.Compare(pathexpr.OpLT, ssd.Float(1950.0))
	if len(lt) != 2 { // 1942 and 8.5
		t.Errorf("< 1950.0: %d hits, want 2", len(lt))
	}
	eq := ix.Compare(pathexpr.OpEQ, ssd.Float(1942.0))
	if len(eq) != 1 { // numeric overloading finds Int(1942)
		t.Errorf("= 1942.0: %d hits, want 1 (cross-kind)", len(eq))
	}
	ne := ix.Compare(pathexpr.OpNE, ssd.Int(1942))
	if len(ne) == 0 {
		t.Error("!= 1942 should match many labels")
	}
}

func TestValueIndexCompareAgainstScan(t *testing.T) {
	g := testGraph(t)
	ix := BuildValueIndex(g)
	ops := []pathexpr.CmpOp{pathexpr.OpLT, pathexpr.OpLE, pathexpr.OpGT, pathexpr.OpGE, pathexpr.OpEQ, pathexpr.OpNE}
	rhss := []ssd.Label{ssd.Int(1942), ssd.Float(8.5), ssd.Str("Annie Hall"), ssd.Int(0), ssd.Int(99999999)}
	for _, op := range ops {
		for _, rhs := range rhss {
			pred := pathexpr.CmpPred{Op: op, Rhs: rhs}
			want := normalizeRefs(ScanGraph(g, pred))
			got := normalizeRefs(ix.Compare(op, rhs))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s %s: indexed %v, scan %v", op, rhs, got, want)
			}
		}
	}
}

func TestValueIndexLike(t *testing.T) {
	g := testGraph(t)
	ix := BuildValueIndex(g)
	// §1.3: attribute names starting with "act" (case-sensitive here).
	hits := ix.Like("act%")
	if len(hits) != 2 { // activity (symbol), "acting" (string)
		t.Errorf("like act%%: %d hits, want 2", len(hits))
	}
	all := ix.Like("%")
	if len(all) == 0 {
		t.Error("like %% should match all strings/symbols")
	}
	exact := ix.Like("Active")
	if len(exact) != 1 {
		t.Errorf("like Active = %d, want 1", len(exact))
	}
}

func TestLikeAgainstScan(t *testing.T) {
	g := testGraph(t)
	ix := BuildValueIndex(g)
	for _, pat := range []string{"act%", "%ing", "A%", "%a%", "Title", ""} {
		pred := pathexpr.LikePred{Pattern: pat}
		want := normalizeRefs(ScanGraph(g, pred))
		got := normalizeRefs(ix.Like(pat))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("like %q: indexed %v, scan %v", pat, got, want)
		}
	}
}

func TestScanGraph(t *testing.T) {
	g := testGraph(t)
	strs := ScanGraph(g, pathexpr.TypePred{Kind: ssd.KindString})
	if len(strs) != 4 { // Casablanca, Annie Hall, Allen, acting
		t.Errorf("string scan = %d, want 4", len(strs))
	}
}

// Property: indexed comparison equals scan on random data.
func TestCompareScanAgreementProperty(t *testing.T) {
	f := func(seed int64, rhsVal int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ssd.New()
		for i := 0; i < 50; i++ {
			switch rng.Intn(3) {
			case 0:
				g.AddLeaf(g.Root(), ssd.Int(int64(rng.Intn(100))-50))
			case 1:
				g.AddLeaf(g.Root(), ssd.Float(float64(rng.Intn(100))/4-10))
			default:
				g.AddLeaf(g.Root(), ssd.Str(string(rune('a'+rng.Intn(26)))))
			}
		}
		ix := BuildValueIndex(g)
		rhs := ssd.Int(rhsVal % 50)
		for _, op := range []pathexpr.CmpOp{pathexpr.OpLT, pathexpr.OpLE, pathexpr.OpGT, pathexpr.OpGE, pathexpr.OpEQ} {
			want := normalizeRefs(ScanGraph(g, pathexpr.CmpPred{Op: op, Rhs: rhs}))
			got := normalizeRefs(ix.Compare(op, rhs))
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func normalizeRefs(refs []EdgeRef) []EdgeRef {
	out := append([]EdgeRef(nil), refs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	if len(out) == 0 {
		return nil
	}
	return out
}
