package index

import (
	"fmt"
	"sort"

	"repro/internal/ssd"
)

// This file is the serialization surface of the two indexes: Dump exposes
// their contents in a deterministic order and FromDump reconstructs an
// index from dumped contents, so the snapshot codec (internal/storage) can
// persist indexes without re-scanning the graph at recovery. Dump/FromDump
// round-trips exactly: a restored index answers every query identically to
// the original, and a re-Dump of the restored index is deeply equal to the
// first.

// Posting is one label's posting list, as exposed by LabelIndex.Dump.
type Posting struct {
	Label ssd.Label
	Refs  []EdgeRef
}

// Dump returns the index contents sorted by label, with each posting list
// in its internal (scan) order. The returned slices share storage with the
// index and must be treated as read-only.
func (ix *LabelIndex) Dump() []Posting {
	out := make([]Posting, 0, len(ix.occ))
	for l, refs := range ix.occ {
		out = append(out, Posting{Label: l, Refs: refs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label.Less(out[j].Label) })
	return out
}

// LabelIndexFromDump reconstructs a LabelIndex from Dump output. Duplicate
// labels are rejected: the dump of a real index never contains them, so one
// appearing means the input does not describe an index.
func LabelIndexFromDump(ps []Posting) (*LabelIndex, error) {
	ix := &LabelIndex{occ: make(map[ssd.Label][]EdgeRef, len(ps))}
	for _, p := range ps {
		if _, dup := ix.occ[p.Label]; dup {
			return nil, fmt.Errorf("index: duplicate label %s in dump", p.Label)
		}
		ix.occ[p.Label] = p.Refs
	}
	return ix, nil
}

// Entry is one ordered slot of the ValueIndex, as exposed by Dump.
type Entry struct {
	Label ssd.Label
	Ref   EdgeRef
}

// Dump returns the value index's entries in their sorted order. The labels
// and refs are copies of the index's values; the slice is fresh.
func (ix *ValueIndex) Dump() []Entry {
	out := make([]Entry, len(ix.entries))
	for i, e := range ix.entries {
		out[i] = Entry{Label: e.label, Ref: e.ref}
	}
	return out
}

// ValueIndexFromDump reconstructs a ValueIndex from Dump output. The
// entries must already be in the index's sort order (Label.Compare
// ascending); out-of-order input is rejected rather than silently
// re-sorted, because it means the dump was not produced by Dump.
func ValueIndexFromDump(es []Entry) (*ValueIndex, error) {
	ix := &ValueIndex{entries: make([]valueEntry, len(es))}
	for i, e := range es {
		if i > 0 && es[i-1].Label.Compare(e.Label) > 0 {
			return nil, fmt.Errorf("index: value dump out of order at entry %d", i)
		}
		ix.entries[i] = valueEntry{label: e.Label, ref: e.Ref}
	}
	return ix, nil
}
