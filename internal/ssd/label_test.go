package ssd

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestLabelConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		l    Label
		kind Kind
		str  string
	}{
		{Sym("Movie"), KindSymbol, "Movie"},
		{Str("Casablanca"), KindString, `"Casablanca"`},
		{Int(1942), KindInt, "1942"},
		{Int(-7), KindInt, "-7"},
		{Float(1.2e6), KindFloat, "1.2e+06"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{OID("o17"), KindOID, "&o17"},
	}
	for _, c := range cases {
		if c.l.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.l, c.l.Kind(), c.kind)
		}
		if got := c.l.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
	if s, ok := Sym("x").Symbol(); !ok || s != "x" {
		t.Errorf("Symbol() = %q, %v", s, ok)
	}
	if _, ok := Str("x").Symbol(); ok {
		t.Error("Str.Symbol() should not be ok")
	}
	if v, ok := Int(3).IntVal(); !ok || v != 3 {
		t.Errorf("IntVal() = %d, %v", v, ok)
	}
	if v, ok := Float(2.5).FloatVal(); !ok || v != 2.5 {
		t.Errorf("FloatVal() = %g, %v", v, ok)
	}
	if v, ok := Bool(true).BoolVal(); !ok || !v {
		t.Errorf("BoolVal() = %v, %v", v, ok)
	}
	if id, ok := OID("a").OIDVal(); !ok || id != "a" {
		t.Errorf("OIDVal() = %q, %v", id, ok)
	}
}

func TestLabelZeroValue(t *testing.T) {
	var l Label
	if l.Kind() != KindSymbol {
		t.Fatalf("zero label kind = %v, want symbol", l.Kind())
	}
	if s, ok := l.Symbol(); !ok || s != "" {
		t.Fatalf("zero label = %q, %v", s, ok)
	}
}

func TestLabelEqualCrossNumeric(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if !Float(2.0).Equal(Int(2)) {
		t.Error("Float(2.0) should equal Int(2)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(2).Equal(Str("2")) {
		t.Error("Int(2) should not equal Str(\"2\")")
	}
	if Sym("x").Equal(Str("x")) {
		t.Error("Sym should not equal Str of same payload")
	}
	if !Sym("x").Equal(Sym("x")) {
		t.Error("identical symbols should be equal")
	}
	if OID("a").Equal(OID("b")) {
		t.Error("distinct oids should differ")
	}
}

func TestLabelCompareTotalOrder(t *testing.T) {
	ls := []Label{
		Sym("A"), Sym("B"), Str("A"), Str("B"),
		Int(-1), Int(0), Int(65536), Float(0.5), Float(1e9),
		Bool(false), Bool(true), OID("a"), OID("b"),
	}
	for _, a := range ls {
		if a.Compare(a) != 0 {
			t.Errorf("Compare(%v,%v) != 0", a, a)
		}
		for _, b := range ls {
			if a.Compare(b) != -b.Compare(a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
			for _, c := range ls {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Errorf("Compare not transitive on %v ≤ %v ≤ %v", a, b, c)
				}
			}
		}
	}
}

func TestLabelCompareNumeric(t *testing.T) {
	if Int(2).Compare(Float(2.5)) != -1 {
		t.Error("2 < 2.5 across kinds")
	}
	if Float(3.5).Compare(Int(3)) != 1 {
		t.Error("3.5 > 3 across kinds")
	}
	if Int(2).Compare(Float(2.0)) == 0 {
		t.Error("tie between Int(2) and Float(2.0) must break by kind for total order")
	}
}

func TestLabelSortStable(t *testing.T) {
	ls := []Label{Int(3), Sym("z"), Str("a"), Int(1), Sym("a"), Float(2.5)}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	want := []Label{Sym("a"), Sym("z"), Str("a"), Int(1), Float(2.5), Int(3)}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v (full: %v)", i, ls[i], want[i], ls)
		}
	}
}

func TestLabelHashDistinguishes(t *testing.T) {
	pairs := [][2]Label{
		{Sym("a"), Str("a")},
		{Sym("a"), Sym("b")},
		{Int(1), Int(2)},
		{Int(1), Bool(true)},
		{Float(1.5), Float(2.5)},
		{OID("x"), Str("x")},
	}
	for _, p := range pairs {
		if p[0].Hash() == p[1].Hash() {
			t.Errorf("hash collision between %v and %v", p[0], p[1])
		}
	}
}

func TestLabelHashEqualImpliesSameHash(t *testing.T) {
	f := func(s string, n int64, fl float64, b bool) bool {
		ls := []Label{Sym(s), Str(s), Int(n), Float(fl), Bool(b), OID(s)}
		for _, l := range ls {
			m := l // copy
			if l.Hash() != m.Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelNumeric(t *testing.T) {
	if v, ok := Int(7).Numeric(); !ok || v != 7 {
		t.Errorf("Numeric(Int 7) = %g, %v", v, ok)
	}
	if v, ok := Float(2.25).Numeric(); !ok || v != 2.25 {
		t.Errorf("Numeric(Float) = %g, %v", v, ok)
	}
	if _, ok := Str("7").Numeric(); ok {
		t.Error("strings are not numeric")
	}
	if _, ok := Bool(true).Numeric(); ok {
		t.Error("bools are not numeric")
	}
}

func TestFloatFormatting(t *testing.T) {
	if got := Float(2).String(); got != "2.0" {
		t.Errorf("Float(2).String() = %q, want 2.0 (must stay distinct from int)", got)
	}
	if got := Float(math.Inf(1)).String(); got != "inf" {
		t.Errorf("inf formatting = %q", got)
	}
	if got := Float(math.Inf(-1)).String(); got != "-inf" {
		t.Errorf("-inf formatting = %q", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindSymbol: "symbol", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool", KindOID: "oid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestIsDataIsSymbol(t *testing.T) {
	if !Sym("a").IsSymbol() || Sym("a").IsData() {
		t.Error("Sym classification wrong")
	}
	for _, l := range []Label{Str("x"), Int(1), Float(1), Bool(true)} {
		if !l.IsData() || l.IsSymbol() {
			t.Errorf("%v classification wrong", l)
		}
	}
	if OID("x").IsData() || OID("x").IsSymbol() {
		t.Error("OID is neither data nor symbol")
	}
}

// Property: Compare is consistent with Equal for same-kind labels, and
// cross-kind numeric equality implies Compare breaks the tie by kind only.
func TestCompareEqualConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		ia, ib := Int(a), Int(b)
		if ia.Equal(ib) != (ia.Compare(ib) == 0) {
			return false
		}
		fa := Float(float64(a))
		if !ia.Equal(fa) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
