package ssd

// This file is the storage seam of §4: the read surface the traversal,
// index, dataguide, and query layers actually pull, factored out of the
// concrete in-memory Graph so an out-of-core paged store can stand behind
// the same iterators. The interface is deliberately narrow — forward
// adjacency only. Reverse edges, mutation, grafting, and OIDs stay on
// *Graph: they are either writer-side concerns or capabilities a paged
// store may not offer (see ReverseStore).

// GraphStore is the read-only adjacency surface query evaluation pulls:
// everything is derived from the root, the node count, and per-node
// forward edges. *Graph implements it natively; storage.PageStore serves
// the same surface from fixed-size disk pages through a buffer pool.
//
// Implementations must be safe for concurrent readers. Returned slices
// are owned by the store and must not be mutated; they remain valid
// indefinitely (a paged store's decoded records are garbage-collected,
// not recycled, so eviction never invalidates an escaped slice).
type GraphStore interface {
	// Root returns the distinguished root node.
	Root() NodeID
	// NumNodes returns the number of allocated nodes; IDs are dense in
	// [0, NumNodes).
	NumNodes() int
	// Out returns the outgoing edges of n. Callers must not mutate it.
	Out(n NodeID) []Edge
	// OutDegree returns len(Out(n)) without necessarily materializing it.
	OutDegree(n NodeID) int
	// Lookup returns the targets of edges out of n labeled l (Label.Equal
	// semantics, so 2 and 2.0 match).
	Lookup(n NodeID, l Label) []NodeID
	// Labels returns the distinct labels on edges out of n, sorted.
	Labels(n NodeID) []Label
}

// Compile-time check: the in-memory graph is the default GraphStore.
var _ GraphStore = (*Graph)(nil)

// ReverseStore is the optional backward-traversal capability. Only stores
// that can enumerate incoming edges implement it (the in-memory Graph via
// its lazily built reverse cache); the planner gates backward index
// verification on this assertion and falls back to forward strategies
// when the store is forward-only.
type ReverseStore interface {
	GraphStore
	// EnsureReverse builds (or reuses) the reverse adjacency eagerly, off
	// the per-edge hot path.
	EnsureReverse()
	// In returns the incoming edges of n as (label, from) pairs; Edge.To
	// holds the source node.
	In(n NodeID) []Edge
}

var _ ReverseStore = (*Graph)(nil)

// StoreAccessor is a pinning read handle on a GraphStore: the same read
// surface, plus a Release that drops whatever pages the accessor holds
// pinned. Iterator hot paths (one executor, one goroutine) read through
// an accessor so repeated touches of a clustered page skip the buffer
// pool entirely; Release runs at cursor close or morsel handoff.
//
// An accessor is single-goroutine; Release is idempotent.
type StoreAccessor interface {
	GraphStore
	// Release unpins every page the accessor holds and resets it.
	Release()
}

// AccessorProvider is implemented by stores whose accessors actually pin
// pages (the paged store). Plain in-memory stores have nothing to pin and
// need not implement it.
type AccessorProvider interface {
	// Accessor returns a fresh pinning read handle. The caller owns it
	// and must Release it.
	//
	//ssd:mustunpin
	Accessor() StoreAccessor
}

// AccessorFor returns a read accessor for st: the store's own pinning
// accessor when it provides one, otherwise a zero-cost pass-through whose
// Release is a no-op. The caller must Release the result on every path.
//
//ssd:mustunpin
func AccessorFor(st GraphStore) StoreAccessor {
	if ap, ok := st.(AccessorProvider); ok {
		return ap.Accessor()
	}
	return nopAccessor{st}
}

// nopAccessor adapts a store with no pinning (the in-memory graph) to the
// accessor surface.
type nopAccessor struct{ GraphStore }

func (nopAccessor) Release() {}

// ReachableFrom returns the set of nodes accessible from start by forward
// traversal, as a dense boolean slice indexed by NodeID — Graph.Reachable
// generalized to any store. On a paged store the DFS order matches the
// clustered layout, so the scan is near-sequential.
func ReachableFrom(st GraphStore, start NodeID) []bool {
	seen := make([]bool, st.NumNodes())
	if int(start) < 0 || int(start) >= len(seen) {
		return seen
	}
	stack := []NodeID{start}
	seen[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range st.Out(n) {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}
