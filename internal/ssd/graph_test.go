package ssd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildMovieFragment(t *testing.T) *Graph {
	t.Helper()
	g := New()
	entry := g.AddNode()
	g.AddEdge(g.Root(), Sym("Entry"), entry)
	movie := g.AddNode()
	g.AddEdge(entry, Sym("Movie"), movie)
	g.AddLeaf(movie, Sym("Title"))
	title := g.LookupFirst(movie, Sym("Title"))
	g.AddLeaf(title, Str("Casablanca"))
	cast := g.AddNode()
	g.AddEdge(movie, Sym("Cast"), cast)
	one := g.AddLeaf(cast, Int(1))
	g.AddLeaf(one, Str("Bogart"))
	two := g.AddLeaf(cast, Int(2))
	g.AddLeaf(two, Str("Bacall"))
	return g
}

func TestGraphBasics(t *testing.T) {
	g := New()
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	n := g.AddNode()
	g.AddEdge(g.Root(), Sym("a"), n)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(g.Root()) != 1 {
		t.Fatalf("OutDegree(root) = %d", g.OutDegree(g.Root()))
	}
	if !g.IsLeaf(n) {
		t.Error("n should be a leaf")
	}
	if g.IsLeaf(g.Root()) {
		t.Error("root should not be a leaf")
	}
}

func TestAddNodes(t *testing.T) {
	g := New()
	first := g.AddNodes(5)
	if first != 1 {
		t.Fatalf("first = %d", first)
	}
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
}

func TestLookup(t *testing.T) {
	g := buildMovieFragment(t)
	entry := g.LookupFirst(g.Root(), Sym("Entry"))
	if entry == InvalidNode {
		t.Fatal("Entry edge not found")
	}
	movie := g.LookupFirst(entry, Sym("Movie"))
	if movie == InvalidNode {
		t.Fatal("Movie edge not found")
	}
	if got := g.LookupFirst(movie, Sym("Nope")); got != InvalidNode {
		t.Errorf("LookupFirst missing label = %d, want InvalidNode", got)
	}
	cast := g.LookupFirst(movie, Sym("Cast"))
	// Numeric overloading: Lookup with Float(1.0) should find the Int(1) edge.
	if got := g.Lookup(cast, Float(1.0)); len(got) != 1 {
		t.Errorf("Lookup(Float(1.0)) = %v, want one match", got)
	}
}

func TestDedup(t *testing.T) {
	g := New()
	n := g.AddNode()
	for i := 0; i < 4; i++ {
		g.AddEdge(g.Root(), Sym("a"), n)
	}
	g.AddEdge(g.Root(), Sym("b"), n)
	g.Dedup()
	if got := g.OutDegree(g.Root()); got != 2 {
		t.Fatalf("after Dedup OutDegree = %d, want 2", got)
	}
}

func TestReachableAndAccessible(t *testing.T) {
	g := New()
	a := g.AddLeaf(g.Root(), Sym("a"))
	orphan := g.AddNode()
	g.AddEdge(orphan, Sym("x"), a)
	seen := g.Reachable(g.Root())
	if !seen[g.Root()] || !seen[a] || seen[orphan] {
		t.Fatalf("Reachable = %v", seen)
	}
	h, remap := g.Accessible()
	if h.NumNodes() != 2 {
		t.Fatalf("Accessible nodes = %d, want 2", h.NumNodes())
	}
	if remap[orphan] != InvalidNode {
		t.Error("orphan should remap to InvalidNode")
	}
	if h.OutDegree(h.Root()) != 1 {
		t.Error("root edge lost")
	}
}

func TestAccessiblePreservesCycles(t *testing.T) {
	g := New()
	a := g.AddLeaf(g.Root(), Sym("a"))
	g.AddEdge(a, Sym("back"), g.Root())
	h, _ := g.Accessible()
	if h.NumNodes() != 2 || h.NumEdges() != 2 {
		t.Fatalf("cycle not preserved: %d nodes %d edges", h.NumNodes(), h.NumEdges())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildMovieFragment(t)
	g.SetOID(g.Root(), "r")
	h := g.Clone()
	h.AddLeaf(h.Root(), Sym("extra"))
	h.SetOID(h.Root(), "changed")
	if g.OutDegree(g.Root()) == h.OutDegree(h.Root()) {
		t.Error("clone shares edge storage")
	}
	if id, _ := g.OIDOf(g.Root()); id != "r" {
		t.Error("clone shares oid map")
	}
}

func TestGraft(t *testing.T) {
	src := buildMovieFragment(t)
	dst := New()
	n := dst.Graft(src, src.Root())
	dst.AddEdge(dst.Root(), Sym("copy"), n)
	if dst.NumEdges() != src.NumEdges()+1 {
		t.Fatalf("graft edges = %d, want %d", dst.NumEdges(), src.NumEdges()+1)
	}
	// Mutating the source must not affect the graft.
	src.AddLeaf(src.Root(), Sym("new"))
	if dst.NumEdges() != 10 {
		t.Fatalf("graft affected by source mutation: %d edges", dst.NumEdges())
	}
}

func TestGraftCycle(t *testing.T) {
	src := New()
	a := src.AddLeaf(src.Root(), Sym("a"))
	src.AddEdge(a, Sym("back"), src.Root())
	dst := New()
	n := dst.Graft(src, src.Root())
	// follow a then back: should return to n.
	an := dst.LookupFirst(n, Sym("a"))
	if got := dst.LookupFirst(an, Sym("back")); got != n {
		t.Fatalf("cycle not preserved by Graft: back leads to %d, want %d", got, n)
	}
}

func TestGraftDeepTree(t *testing.T) {
	// ACeDB-style arbitrary-depth chain; must not overflow the stack.
	src := New()
	cur := src.Root()
	const depth = 200000
	for i := 0; i < depth; i++ {
		cur = src.AddLeaf(cur, Sym("next"))
	}
	dst := New()
	dst.Graft(src, src.Root())
	if dst.NumEdges() != depth {
		t.Fatalf("deep graft edges = %d, want %d", dst.NumEdges(), depth)
	}
}

func TestUnion(t *testing.T) {
	g := New()
	a := g.AddNode()
	g.AddLeaf(a, Sym("x"))
	b := g.AddNode()
	g.AddLeaf(b, Sym("y"))
	u := g.Union(a, b)
	if g.OutDegree(u) != 2 {
		t.Fatalf("union degree = %d", g.OutDegree(u))
	}
	if g.LookupFirst(u, Sym("x")) == InvalidNode || g.LookupFirst(u, Sym("y")) == InvalidNode {
		t.Error("union lost an edge")
	}
}

func TestOIDs(t *testing.T) {
	g := New()
	g.SetOID(g.Root(), "o1")
	n := g.AddNode()
	g.SetOID(n, "o2")
	if id, ok := g.OIDOf(g.Root()); !ok || id != "o1" {
		t.Errorf("OIDOf(root) = %q, %v", id, ok)
	}
	if got := g.NodeByOID("o2"); got != n {
		t.Errorf("NodeByOID(o2) = %d, want %d", got, n)
	}
	if got := g.NodeByOID("missing"); got != InvalidNode {
		t.Errorf("NodeByOID(missing) = %d", got)
	}
}

func TestLabelsAndAllLabels(t *testing.T) {
	g := buildMovieFragment(t)
	movie := g.LookupFirst(g.LookupFirst(g.Root(), Sym("Entry")), Sym("Movie"))
	ls := g.Labels(movie)
	if len(ls) != 2 { // Title, Cast
		t.Fatalf("Labels(movie) = %v", ls)
	}
	all := g.AllLabels()
	// Distinct: Entry, Movie, Title, Cast, 1, 2, and three strings.
	if len(all) != 9 {
		t.Fatalf("AllLabels = %v (len %d)", all, len(all))
	}
}

func TestComputeStats(t *testing.T) {
	g := buildMovieFragment(t)
	s := g.ComputeStats()
	if s.Edges != 9 || s.Nodes != g.NumNodes() {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxOutDegree != 2 {
		t.Errorf("MaxOutDegree = %d", s.MaxOutDegree)
	}
	if s.Leaves == 0 {
		t.Error("no leaves counted")
	}
}

func TestReverse(t *testing.T) {
	g := New()
	a := g.AddLeaf(g.Root(), Sym("a"))
	b := g.AddLeaf(g.Root(), Sym("b"))
	g.AddEdge(a, Sym("c"), b)
	in := g.Reverse()
	if len(in[b]) != 2 {
		t.Fatalf("in-degree of b = %d, want 2", len(in[b]))
	}
	if len(in[g.Root()]) != 0 {
		t.Error("root should have no in-edges")
	}
}

func TestCheckPanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range node")
		}
	}()
	g.Out(NodeID(99))
}

// Property: Dedup is idempotent and never increases edge count.
func TestDedupProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		nodes := []NodeID{g.Root()}
		for i := 0; i < 20; i++ {
			nodes = append(nodes, g.AddNode())
		}
		labels := []Label{Sym("a"), Sym("b"), Int(1), Str("x")}
		for i := 0; i < 100; i++ {
			from := nodes[rng.Intn(len(nodes))]
			to := nodes[rng.Intn(len(nodes))]
			g.AddEdge(from, labels[rng.Intn(len(labels))], to)
		}
		before := g.NumEdges()
		g.Dedup()
		mid := g.NumEdges()
		g.Dedup()
		after := g.NumEdges()
		return mid <= before && after == mid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Accessible twice is the same as once (idempotent up to node count).
func TestAccessibleIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		nodes := []NodeID{g.Root()}
		for i := 0; i < 15; i++ {
			nodes = append(nodes, g.AddNode())
		}
		for i := 0; i < 40; i++ {
			g.AddEdge(nodes[rng.Intn(len(nodes))], Sym("e"), nodes[rng.Intn(len(nodes))])
		}
		h, _ := g.Accessible()
		h2, _ := h.Accessible()
		return h.NumNodes() == h2.NumNodes() && h.NumEdges() == h2.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
