package ssd

import (
	"sync"
	"testing"
)

// revBase builds a small graph with known reverse structure:
//
//	root --x--> a --y--> b
//	root --z--> b
func revBase() (*Graph, NodeID, NodeID) {
	g := New()
	a := g.AddLeaf(g.Root(), Sym("x"))
	b := g.AddLeaf(a, Sym("y"))
	g.AddEdge(g.Root(), Sym("z"), b)
	return g, a, b
}

// assertRevFresh checks that In() agrees with a from-scratch Reverse() on
// every node — i.e. the cached reverse adjacency was invalidated by
// whatever mutation just ran. Order is part of the contract: both are
// built by the same out-slice walk.
func assertRevFresh(t *testing.T, g *Graph) {
	t.Helper()
	want := g.Reverse()
	for n := 0; n < g.NumNodes(); n++ {
		got := g.In(NodeID(n))
		if len(got) != len(want[n]) {
			t.Fatalf("node %d: In() has %d edges, fresh reverse has %d — stale cache", n, len(got), len(want[n]))
		}
		for i := range got {
			if got[i] != want[n][i] {
				t.Fatalf("node %d edge %d: In() = %+v, fresh = %+v — stale cache", n, i, got[i], want[n][i])
			}
		}
	}
}

// TestRevCacheInvalidation is the audit's table: every mutating primitive
// must drop the cached reverse adjacency, so an In() issued right after the
// mutation sees the new edges. Each case first forces the cache via In(),
// then mutates, then cross-checks In() against a fresh Reverse().
func TestRevCacheInvalidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, g *Graph, a, b NodeID)
	}{
		{"AddNode", func(t *testing.T, g *Graph, a, b NodeID) {
			// The new node has no edges, but In() must not serve a cache
			// sized for the old node table.
			n := g.AddNode()
			if got := g.In(n); len(got) != 0 {
				t.Fatalf("fresh node has %d in-edges", len(got))
			}
		}},
		{"AddNodes", func(t *testing.T, g *Graph, a, b NodeID) {
			first := g.AddNodes(3)
			if got := g.In(first + 2); len(got) != 0 {
				t.Fatalf("fresh node has %d in-edges", len(got))
			}
		}},
		{"AddEdge", func(t *testing.T, g *Graph, a, b NodeID) {
			g.AddEdge(b, Sym("back"), a)
		}},
		{"AddLeaf", func(t *testing.T, g *Graph, a, b NodeID) {
			g.AddLeaf(a, Sym("leafed"))
		}},
		{"DeleteEdge", func(t *testing.T, g *Graph, a, b NodeID) {
			if !g.DeleteEdge(a, Sym("y"), b) {
				t.Fatal("edge not deleted")
			}
		}},
		{"Relabel", func(t *testing.T, g *Graph, a, b NodeID) {
			if g.Relabel(a, Sym("y"), Sym("y2")) != 1 {
				t.Fatal("edge not relabeled")
			}
		}},
		{"Union", func(t *testing.T, g *Graph, a, b NodeID) {
			g.Union(g.Root(), a)
		}},
		{"Dedup", func(t *testing.T, g *Graph, a, b NodeID) {
			g.AddEdge(a, Sym("y"), b) // duplicate to collapse
			g.Dedup()
		}},
		{"SortEdges", func(t *testing.T, g *Graph, a, b NodeID) {
			// Adding then sorting changes out-slice order, which is the
			// order In() enumerates; the cache must not survive the sort.
			g.AddEdge(g.Root(), Sym("a-first"), b)
			g.In(b)
			g.SortEdges()
		}},
		{"COW-PrivatizeOut-DeleteEdge", func(t *testing.T, g *Graph, a, b NodeID) {
			// The write path's copy-on-write idiom: the clone privatizes a
			// node's slice and edits in place. The clone starts with no
			// cache; the edit must still invalidate any cache built on the
			// clone in between.
			h := g.CloneShared()
			h.In(b) // build the clone's cache
			h.PrivatizeOut(a)
			if !h.DeleteEdge(a, Sym("y"), b) {
				t.Fatal("edge not deleted on clone")
			}
			assertRevFresh(t, h)
			// The original's cache must be untouched by the clone's edit.
			assertRevFresh(t, g)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, a, b := revBase()
			// Force the cache, then mutate through the primitive.
			if got := g.In(b); len(got) != 2 {
				t.Fatalf("base: b has %d in-edges, want 2", len(got))
			}
			c.mutate(t, g, a, b)
			assertRevFresh(t, g)
		})
	}
}

// TestRevCacheMetadataOnlyPrimitives pins the other half of the audit:
// SetRoot, SetOID and PrivatizeOut do not change the adjacency, so they may
// keep the cache — and the cache they keep must still be correct.
func TestRevCacheMetadataOnlyPrimitives(t *testing.T) {
	g, a, b := revBase()
	g.In(b)
	g.SetRoot(a)
	g.SetOID(b, "obj-b")
	g.PrivatizeOut(a)
	assertRevFresh(t, g)
}

// TestRevCacheConcurrentReaders is the -race test: many readers force and
// share the lazy reverse build on one immutable snapshot (the
// core.Database contract) while a writer mutates a privately cloned graph
// — the copy-on-write discipline. The shared graph's cache must stay
// consistent and the clone's edits must never leak into it.
func TestRevCacheConcurrentReaders(t *testing.T) {
	g, a, b := revBase()
	want := g.Reverse()

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in := g.In(b)
				if len(in) != len(want[b]) {
					t.Errorf("reader saw %d in-edges, want %d", len(in), len(want[b]))
					return
				}
			}
		}()
	}
	// Writer on a COW clone, concurrent with the readers above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := g.CloneShared()
		for i := 0; i < 100; i++ {
			h.PrivatizeOut(a)
			h.DeleteEdge(a, Sym("y"), b)
			h.AddEdge(a, Sym("y"), b)
			h.In(b)
		}
	}()
	wg.Wait()
	assertRevFresh(t, g)
}
