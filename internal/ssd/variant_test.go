package ssd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToLeafModelSimple(t *testing.T) {
	g := MustParse(`{Movie: {Title: "Casablanca", Year: 1942}}`)
	lg := ToLeafModel(g)
	if err := lg.Check(); err != nil {
		t.Fatal(err)
	}
	movie := lg.G.LookupFirst(lg.G.Root(), Sym("Movie"))
	title := lg.G.LookupFirst(movie, Sym("Title"))
	data := lg.G.LookupFirst(title, Sym(VariantData))
	if data == InvalidNode {
		t.Fatal("@data edge missing")
	}
	if v, ok := lg.Val[data]; !ok || v != Str("Casablanca") {
		t.Fatalf("leaf value = %v, %v", v, ok)
	}
}

func TestLeafModelRoundTrip(t *testing.T) {
	srcs := []string{
		`{Movie: {Title: "Casablanca", Year: 1942}}`,
		`{a: {b: 1, c: 2.5}, d: true}`,
		`{}`,
		`{deep: {deep: {deep: "bottom"}}}`,
	}
	for _, src := range srcs {
		g := MustParse(src)
		back := FromLeafModel(ToLeafModel(g))
		if got, want := FormatRoot(back), FormatRoot(g); got != want {
			t.Errorf("round trip of %s:\n got %s\nwant %s", src, got, want)
		}
	}
}

func TestLeafModelDataEdgeWithChildren(t *testing.T) {
	// Variant A allows a data label above a non-empty subtree; Variant B
	// cannot express that directly, so the codec wraps it in an @edge record.
	g := New()
	mid := g.AddLeaf(g.Root(), Str("weird"))
	g.AddLeaf(mid, Sym("child"))
	lg := ToLeafModel(g)
	if err := lg.Check(); err != nil {
		t.Fatal(err)
	}
	rec := lg.G.LookupFirst(lg.G.Root(), Sym(VariantEdge))
	if rec == InvalidNode {
		t.Fatal("@edge record missing")
	}
	back := FromLeafModel(lg)
	if got, want := FormatRoot(back), FormatRoot(g); got != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestLeafModelPreservesCycles(t *testing.T) {
	g := MustParse(`#r{a: {next: #r}}`)
	lg := ToLeafModel(g)
	back := FromLeafModel(lg)
	a := back.LookupFirst(back.Root(), Sym("a"))
	if got := back.LookupFirst(a, Sym("next")); got != back.Root() {
		t.Fatalf("cycle broken: next = %d, want root %d", got, back.Root())
	}
}

func TestLeafModelPreservesOIDs(t *testing.T) {
	g := MustParse(`{a: &o1{v: 1}}`)
	back := FromLeafModel(ToLeafModel(g))
	a := back.LookupFirst(back.Root(), Sym("a"))
	if id, ok := back.OIDOf(a); !ok || id != "o1" {
		t.Fatalf("oid lost: %q %v", id, ok)
	}
}

func TestLeafGraphCheckRejectsBadGraphs(t *testing.T) {
	lg := NewLeafGraph()
	n := lg.G.AddLeaf(lg.G.Root(), Str("not a symbol"))
	_ = n
	if err := lg.Check(); err == nil {
		t.Error("Check should reject data edge labels")
	}

	lg2 := NewLeafGraph()
	n2 := lg2.G.AddLeaf(lg2.G.Root(), Sym("a"))
	lg2.Val[n2] = Int(1)
	lg2.G.AddLeaf(n2, Sym("b"))
	if err := lg2.Check(); err == nil {
		t.Error("Check should reject value on internal node")
	}

	lg3 := NewLeafGraph()
	n3 := lg3.G.AddLeaf(lg3.G.Root(), Sym("a"))
	lg3.Val[n3] = Sym("sym")
	if err := lg3.Check(); err == nil {
		t.Error("Check should reject symbol values")
	}
}

func TestFromNodeLabeled(t *testing.T) {
	// Node-labeled tree: root "db" with child edge "has" to node "movie".
	nl := NewNodeLabeled(Sym("db"))
	child := nl.G.AddLeaf(nl.G.Root(), Sym("has"))
	nl.NodeLabel[child] = Sym("movie")
	g := FromNodeLabeled(nl)
	// Expect root --db--> inner --has--> wrap --movie--> {}
	db := g.LookupFirst(g.Root(), Sym("db"))
	if db == InvalidNode {
		t.Fatal("db edge missing")
	}
	has := g.LookupFirst(db, Sym("has"))
	if has == InvalidNode {
		t.Fatal("has edge missing")
	}
	if g.LookupFirst(has, Sym("movie")) == InvalidNode {
		t.Fatal("movie node label not converted to edge")
	}
}

func TestFromNodeLabeledCycle(t *testing.T) {
	nl := NewNodeLabeled(Sym("r"))
	nl.G.AddEdge(nl.G.Root(), Sym("self"), nl.G.Root())
	g := FromNodeLabeled(nl)
	if g.NumEdges() == 0 {
		t.Fatal("conversion dropped edges")
	}
	// Must terminate (it did, since we got here) and preserve reachability.
	r := g.LookupFirst(g.Root(), Sym("r"))
	if r == InvalidNode {
		t.Fatal("root label edge missing")
	}
}

// Property: leaf-model round trip preserves the formatted value for random
// acyclic generated trees.
func TestLeafModelRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		randomTree(g, g.Root(), rng, 3)
		back := FromLeafModel(ToLeafModel(g))
		return FormatRoot(back) == FormatRoot(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomTree attaches a random acyclic subtree below n.
func randomTree(g *Graph, n NodeID, rng *rand.Rand, depth int) {
	if depth == 0 {
		return
	}
	k := rng.Intn(4)
	for i := 0; i < k; i++ {
		var l Label
		switch rng.Intn(4) {
		case 0:
			l = Sym([]string{"a", "b", "c"}[rng.Intn(3)])
		case 1:
			l = Str([]string{"x", "y"}[rng.Intn(2)])
		case 2:
			l = Int(int64(rng.Intn(10)))
		default:
			l = Float(float64(rng.Intn(5)) + 0.5)
		}
		child := g.AddLeaf(n, l)
		if l.IsSymbol() {
			randomTree(g, child, rng, depth-1)
		}
	}
}
