// Package ssd implements the semistructured data model of Buneman's PODS '97
// tutorial: rooted, edge-labeled graphs whose labels are drawn from a tagged
// union of base types and symbols,
//
//	type label = int | float | string | bool | symbol | oid
//	type tree  = set(label × tree)
//
// Cycles are permitted; "tree" is used in the paper's loose sense. The
// package also provides the two model variants the paper formalizes (leaf
// values and node labels) and lossless conversions between them (variant.go),
// plus a concrete text syntax (text.go).
package ssd

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the variants of the Label tagged union.
type Kind uint8

// Label kinds. Symbols are the attribute-like names (Movie, Title); the rest
// are base data types. OIDs model OEM-style object identity: they compare
// equal only to themselves and are otherwise opaque to the query language.
const (
	KindSymbol Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindOID
	numKinds
)

// String returns the lower-case name of the kind as used by the query
// language's type predicates (isint, isstring, ...).
func (k Kind) String() string {
	switch k {
	case KindSymbol:
		return "symbol"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindOID:
		return "oid"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Label is the tagged union of edge-label types. The zero value is the
// symbol "". Labels are comparable and can be used as map keys.
type Label struct {
	kind Kind
	s    string // symbol, string, or oid payload
	n    int64  // int payload; bool stored as 0/1
	f    float64
}

// Sym returns a symbol label (an attribute/class name such as Movie).
func Sym(s string) Label { return Label{kind: KindSymbol, s: s} }

// Str returns a string data label.
func Str(s string) Label { return Label{kind: KindString, s: s} }

// Int returns an integer data label.
func Int(v int64) Label { return Label{kind: KindInt, n: v} }

// Float returns a floating-point data label.
func Float(v float64) Label { return Label{kind: KindFloat, f: v} }

// Bool returns a boolean data label.
func Bool(v bool) Label {
	var n int64
	if v {
		n = 1
	}
	return Label{kind: KindBool, n: n}
}

// OID returns an object-identity label. OIDs are only testable for equality.
func OID(id string) Label { return Label{kind: KindOID, s: id} }

// Kind reports which variant of the union the label holds.
func (l Label) Kind() Kind { return l.kind }

// IsSymbol reports whether the label is a symbol (attribute name).
func (l Label) IsSymbol() bool { return l.kind == KindSymbol }

// IsData reports whether the label carries base data (anything but a symbol
// or an oid).
func (l Label) IsData() bool {
	return l.kind == KindString || l.kind == KindInt || l.kind == KindFloat || l.kind == KindBool
}

// Symbol returns the symbol payload; ok is false if the label is not a symbol.
func (l Label) Symbol() (s string, ok bool) { return l.s, l.kind == KindSymbol }

// Text returns the string payload; ok is false if the label is not a string.
func (l Label) Text() (s string, ok bool) { return l.s, l.kind == KindString }

// IntVal returns the integer payload; ok is false if the label is not an int.
func (l Label) IntVal() (v int64, ok bool) { return l.n, l.kind == KindInt }

// FloatVal returns the float payload; ok is false if the label is not a float.
func (l Label) FloatVal() (v float64, ok bool) { return l.f, l.kind == KindFloat }

// BoolVal returns the boolean payload; ok is false if the label is not a bool.
func (l Label) BoolVal() (v bool, ok bool) { return l.n != 0, l.kind == KindBool }

// OIDVal returns the oid payload; ok is false if the label is not an oid.
func (l Label) OIDVal() (id string, ok bool) { return l.s, l.kind == KindOID }

// Numeric returns the label's value as a float64 if it is an int or float.
func (l Label) Numeric() (float64, bool) {
	switch l.kind {
	case KindInt:
		return float64(l.n), true
	case KindFloat:
		return l.f, true
	}
	return 0, false
}

// Equal reports label equality. Ints and floats compare across kinds when
// numerically equal (the paper's languages overload comparisons on base
// types); all other cross-kind comparisons are false.
func (l Label) Equal(m Label) bool {
	if l.kind == m.kind {
		return l == m
	}
	lf, lok := l.Numeric()
	mf, mok := m.Numeric()
	return lok && mok && lf == mf
}

// Compare orders labels: first by kind (symbol < string < int < float < bool
// < oid), then by payload, except that ints and floats compare numerically
// with each other. It returns -1, 0, or +1.
func (l Label) Compare(m Label) int {
	lf, lok := l.Numeric()
	mf, mok := m.Numeric()
	if lok && mok {
		switch {
		case lf < mf:
			return -1
		case lf > mf:
			return 1
		}
		// Numerically equal: break ties by kind so Compare is a total order
		// consistent with map-key identity.
		return cmpKind(l.kind, m.kind)
	}
	if c := cmpKind(l.kind, m.kind); c != 0 {
		return c
	}
	switch l.kind {
	case KindSymbol, KindString, KindOID:
		return strings.Compare(l.s, m.s)
	case KindBool:
		return cmpInt64(l.n, m.n)
	}
	return 0
}

func cmpKind(a, b Kind) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Less reports whether l orders strictly before m under Compare.
func (l Label) Less(m Label) bool { return l.Compare(m) < 0 }

// String renders the label in the package's text syntax: symbols bare,
// strings quoted, oids as &id, and numerics/booleans as literals.
func (l Label) String() string {
	switch l.kind {
	case KindSymbol:
		return l.s
	case KindString:
		return strconv.Quote(l.s)
	case KindInt:
		return strconv.FormatInt(l.n, 10)
	case KindFloat:
		return formatFloat(l.f)
	case KindBool:
		if l.n != 0 {
			return "true"
		}
		return "false"
	case KindOID:
		return "&" + l.s
	default:
		return fmt.Sprintf("label(%d)", uint8(l.kind))
	}
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "inf"
	}
	if math.IsInf(f, -1) {
		return "-inf"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Ensure floats stay lexically distinct from ints so the text syntax
	// round-trips the union tag.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// Hash returns a 64-bit hash of the label (FNV-1a over kind and payload).
// It is stable within a process run and suitable for hash-join buckets and
// partition-refinement signatures.
func (l Label) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= uint64(l.kind)
	h *= prime
	switch l.kind {
	case KindSymbol, KindString, KindOID:
		for i := 0; i < len(l.s); i++ {
			h ^= uint64(l.s[i])
			h *= prime
		}
	case KindInt, KindBool:
		h ^= uint64(l.n)
		h *= prime
	case KindFloat:
		h ^= math.Float64bits(l.f)
		h *= prime
	}
	return h
}
