package ssd

import (
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	g, err := Parse(`{Movie: {Title: "Casablanca", Year: 1942, Rating: 8.5, Classic: true}}`)
	if err != nil {
		t.Fatal(err)
	}
	movie := g.LookupFirst(g.Root(), Sym("Movie"))
	if movie == InvalidNode {
		t.Fatal("Movie edge missing")
	}
	title := g.LookupFirst(movie, Sym("Title"))
	if title == InvalidNode {
		t.Fatal("Title edge missing")
	}
	if g.LookupFirst(title, Str("Casablanca")) == InvalidNode {
		t.Fatal("string literal not desugared to data edge")
	}
	year := g.LookupFirst(movie, Sym("Year"))
	if g.LookupFirst(year, Int(1942)) == InvalidNode {
		t.Fatal("int literal missing")
	}
	rating := g.LookupFirst(movie, Sym("Rating"))
	if g.LookupFirst(rating, Float(8.5)) == InvalidNode {
		t.Fatal("float literal missing")
	}
	classic := g.LookupFirst(movie, Sym("Classic"))
	if g.LookupFirst(classic, Bool(true)) == InvalidNode {
		t.Fatal("bool literal missing")
	}
}

func TestParseBareLabels(t *testing.T) {
	g := MustParse(`{a, b: {}, c: 3}`)
	if g.OutDegree(g.Root()) != 3 {
		t.Fatalf("degree = %d", g.OutDegree(g.Root()))
	}
	a := g.LookupFirst(g.Root(), Sym("a"))
	if !g.IsLeaf(a) {
		t.Error("bare label should lead to empty tree")
	}
}

func TestParseEmpty(t *testing.T) {
	g := MustParse(`{}`)
	if g.NumEdges() != 0 {
		t.Fatalf("empty tree has %d edges", g.NumEdges())
	}
}

func TestParseSharing(t *testing.T) {
	g := MustParse(`{a: #x{v: 1}, b: #x}`)
	a := g.LookupFirst(g.Root(), Sym("a"))
	b := g.LookupFirst(g.Root(), Sym("b"))
	if a != b {
		t.Fatalf("shared tag nodes differ: %d vs %d", a, b)
	}
}

func TestParseForwardReference(t *testing.T) {
	g := MustParse(`{a: #x, b: #x{v: 1}}`)
	a := g.LookupFirst(g.Root(), Sym("a"))
	b := g.LookupFirst(g.Root(), Sym("b"))
	if a != b {
		t.Fatalf("forward reference not resolved: %d vs %d", a, b)
	}
	if g.LookupFirst(a, Sym("v")) == InvalidNode {
		t.Error("referenced node lost its edges")
	}
}

func TestParseCycle(t *testing.T) {
	g := MustParse(`#root{Movie: {References: #root}}`)
	movie := g.LookupFirst(g.Root(), Sym("Movie"))
	refs := g.LookupFirst(movie, Sym("References"))
	if refs != g.Root() {
		t.Fatalf("cycle broken: References leads to %d, want root %d", refs, g.Root())
	}
}

func TestParseOID(t *testing.T) {
	g := MustParse(`{a: &o7{v: 1}, b: &o7}`)
	a := g.LookupFirst(g.Root(), Sym("a"))
	if id, ok := g.OIDOf(a); !ok || id != "o7" {
		t.Fatalf("OID = %q, %v", id, ok)
	}
	b := g.LookupFirst(g.Root(), Sym("b"))
	if a != b {
		t.Error("OID reference should share the node")
	}
}

func TestParseComments(t *testing.T) {
	g := MustParse("{\n// a comment\na: 1, // trailing\nb: 2\n}")
	if g.OutDegree(g.Root()) != 2 {
		t.Fatalf("degree = %d", g.OutDegree(g.Root()))
	}
}

func TestParseStringEscapes(t *testing.T) {
	g := MustParse(`{s: "a\"b\\c\ndA"}`)
	s := g.LookupFirst(g.Root(), Sym("s"))
	want := "a\"b\\c\ndA"
	// find the data edge
	es := g.Out(s)
	if len(es) != 1 {
		t.Fatalf("edges = %v", es)
	}
	if got, _ := es[0].Label.Text(); got != want {
		t.Fatalf("escaped string = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{a: }`,
		`{a: 1`,
		`{a 1}`,
		`{a: #}`,
		`{a: #x} junk`,
		`{a: #undefined}`,
		`{s: "unterminated}`,
		`{n: 1e}`, // malformed exponent is tolerated by scanner but must not crash
		`{a: #x{}, b: #x{}}`,
		`@`,
		``,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil && src != `{n: 1e}` {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		`{Movie: {Title: "Casablanca", Year: 1942}}`,
		`{a: {b: {c: 1}}, d: "x"}`,
		`{a, b, c}`,
		`#r{next: #r}`,
		`{x: #s{v: 1}, y: #s}`,
		`{n: -5, f: 2.5, t: true, f2: false}`,
	}
	for _, src := range srcs {
		g := MustParse(src)
		text := FormatRoot(g)
		g2, err := Parse(text)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", text, err)
			continue
		}
		text2 := FormatRoot(g2)
		if text != text2 {
			t.Errorf("round trip unstable:\n first: %s\nsecond: %s", text, text2)
		}
	}
}

func TestFormatDeterministic(t *testing.T) {
	g := MustParse(`{z: 1, a: 2, m: 3}`)
	s1 := FormatRoot(g)
	s2 := FormatRoot(g)
	if s1 != s2 {
		t.Fatalf("nondeterministic format: %s vs %s", s1, s2)
	}
	if !strings.Contains(s1, "a") || strings.Index(s1, "a") > strings.Index(s1, "z") {
		t.Errorf("edges not label-sorted: %s", s1)
	}
}

func TestFormatCycleTag(t *testing.T) {
	g := MustParse(`#r{next: #r}`)
	text := FormatRoot(g)
	if !strings.Contains(text, "#t0") {
		t.Errorf("cycle should be rendered with a tag: %s", text)
	}
}

func TestFormatOID(t *testing.T) {
	g := New()
	n := g.AddLeaf(g.Root(), Sym("a"))
	g.SetOID(n, "obj1")
	text := FormatRoot(g)
	if !strings.Contains(text, "&obj1") {
		t.Errorf("oid missing from output: %s", text)
	}
	g2 := MustParse(text)
	a := g2.LookupFirst(g2.Root(), Sym("a"))
	if id, ok := g2.OIDOf(a); !ok || id != "obj1" {
		t.Errorf("oid not round-tripped: %q %v", id, ok)
	}
}

func TestParseTreeIntoExistingGraph(t *testing.T) {
	g := New()
	n, err := ParseTree(g, `{a: 1}`)
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(g.Root(), Sym("sub"), n)
	sub := g.LookupFirst(g.Root(), Sym("sub"))
	if g.LookupFirst(sub, Sym("a")) == InvalidNode {
		t.Error("parsed subtree not attached")
	}
}

func TestParseLabel(t *testing.T) {
	cases := map[string]Label{
		"Movie":  Sym("Movie"),
		`"x y"`:  Str("x y"),
		"42":     Int(42),
		"-1":     Int(-1),
		"2.5":    Float(2.5),
		"1e3":    Float(1000),
		"true":   Bool(true),
		"false":  Bool(false),
		"_under": Sym("_under"),
		"a-b":    Sym("a-b"),
	}
	for src, want := range cases {
		got, err := ParseLabel(src)
		if err != nil {
			t.Errorf("ParseLabel(%q): %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("ParseLabel(%q) = %v, want %v", src, got, want)
		}
	}
	if _, err := ParseLabel("a b"); err == nil {
		t.Error("trailing input should error")
	}
	if _, err := ParseLabel("{"); err == nil {
		t.Error("non-label should error")
	}
}

func TestParseFigure1(t *testing.T) {
	// The paper's Figure 1, transcribed in the text syntax. The References /
	// "Is referenced in" pair forms the cross-entry links.
	src := `
	{Entry: #e1{Movie: {Title: "Casablanca",
	                    Cast: {1: "Bogart", 2: "Bacall"},
	                    Director: {"Curtiz"}}},
	 Entry: #e2{Movie: {Title: "Play it again, Sam",
	                    Cast: {Credit: {Actors: {"Allen"}}},
	                    Director: {"Allen"},
	                    References: #e1}},
	 Entry: {TV-Show: {Title: "Bogart retrospective",
	                   Cast: {Special-Guests: {"Bacall"}},
	                   Episode: 1.2e6}}}
	`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entries := g.Lookup(g.Root(), Sym("Entry"))
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	// The second entry references the first.
	var refTarget NodeID = InvalidNode
	for _, e := range entries {
		if m := g.LookupFirst(e, Sym("Movie")); m != InvalidNode {
			if r := g.LookupFirst(m, Sym("References")); r != InvalidNode {
				refTarget = r
			}
		}
	}
	if refTarget != entries[0] {
		t.Errorf("References should point at the first entry (%d), got %d", entries[0], refTarget)
	}
}
