package ssd

import (
	"reflect"
	"testing"
)

// inOf returns In(n) as a fresh slice so later mutations can't alias it.
func inOf(g *Graph, n NodeID) []Edge {
	return append([]Edge(nil), g.In(n)...)
}

func TestDeleteEdge(t *testing.T) {
	g := New()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(g.Root(), Sym("x"), a)
	g.AddEdge(g.Root(), Sym("x"), b)
	g.AddEdge(g.Root(), Sym("y"), b)

	if g.DeleteEdge(g.Root(), Sym("z"), b) {
		t.Error("deleted a non-existent edge")
	}
	if !g.DeleteEdge(g.Root(), Sym("x"), b) {
		t.Fatal("DeleteEdge(x, b) = false")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if got := g.Lookup(g.Root(), Sym("x")); len(got) != 1 || got[0] != a {
		t.Fatalf("Lookup(x) = %v, want [%d]", got, a)
	}
	// Label identity, not numeric equality: Int(2) must not delete Float(2).
	g.AddEdge(g.Root(), Float(2), a)
	if g.DeleteEdge(g.Root(), Int(2), a) {
		t.Error("Int(2) deleted a Float(2) edge")
	}
	if !g.DeleteEdge(g.Root(), Float(2), a) {
		t.Error("Float(2) edge not deleted")
	}
}

func TestRelabel(t *testing.T) {
	g := New()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(g.Root(), Sym("old"), a)
	g.AddEdge(g.Root(), Sym("old"), b)
	g.AddEdge(g.Root(), Sym("keep"), b)

	if n := g.Relabel(g.Root(), Sym("missing"), Sym("new")); n != 0 {
		t.Fatalf("Relabel(missing) = %d, want 0", n)
	}
	if n := g.Relabel(g.Root(), Sym("old"), Sym("new")); n != 2 {
		t.Fatalf("Relabel(old) = %d, want 2", n)
	}
	if got := g.Lookup(g.Root(), Sym("new")); len(got) != 2 {
		t.Fatalf("Lookup(new) = %v, want 2 targets", got)
	}
	if got := g.Lookup(g.Root(), Sym("old")); len(got) != 0 {
		t.Fatalf("Lookup(old) = %v, want none", got)
	}
	if got := g.Lookup(g.Root(), Sym("keep")); len(got) != 1 {
		t.Fatalf("Lookup(keep) = %v, want 1 target", got)
	}
}

// TestInAfterMutations exercises the reverse-adjacency cache contract: after
// every kind of mutation, In() must agree with a fresh Reverse() build.
func TestInAfterMutations(t *testing.T) {
	g := New()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(g.Root(), Sym("x"), a)
	g.AddEdge(a, Sym("y"), b)

	checkIn := func(stage string) {
		t.Helper()
		want := g.Reverse()
		for n := 0; n < g.NumNodes(); n++ {
			got := g.In(NodeID(n))
			if len(got) == 0 && len(want[n]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want[n]) {
				t.Fatalf("%s: In(%d) = %v, want %v", stage, n, got, want[n])
			}
		}
	}

	checkIn("initial")

	// AddEdge must drop the cache.
	g.AddEdge(b, Sym("z"), a)
	checkIn("after AddEdge")

	// AddNode must extend the reverse table.
	c := g.AddNode()
	g.AddEdge(a, Sym("w"), c)
	checkIn("after AddNode+AddEdge")

	// DeleteEdge must drop the cache.
	if in := inOf(g, a); len(in) != 2 {
		t.Fatalf("In(a) = %v, want 2 edges", in)
	}
	if !g.DeleteEdge(b, Sym("z"), a) {
		t.Fatal("DeleteEdge failed")
	}
	checkIn("after DeleteEdge")
	if in := g.In(a); len(in) != 1 || in[0].To != g.Root() {
		t.Fatalf("In(a) after delete = %v", in)
	}

	// Relabel must drop the cache.
	g.Relabel(a, Sym("y"), Sym("y2"))
	checkIn("after Relabel")
	if in := g.In(b); len(in) != 1 || in[0].Label != Sym("y2") {
		t.Fatalf("In(b) after relabel = %v", in)
	}

	// Union allocates and copies edges.
	g.Union(g.Root(), a)
	checkIn("after Union")

	// Dedup canonicalizes edge sets.
	g.AddEdge(g.Root(), Sym("x"), a)
	g.Dedup()
	checkIn("after Dedup")
}

func TestCloneSharedIsolation(t *testing.T) {
	g := New()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(g.Root(), Sym("x"), a)
	g.AddEdge(a, Sym("y"), b)
	g.SetOID(a, "&a")
	before := FormatRoot(g)

	h := g.CloneShared()
	// Node-table level mutations need no privatization.
	c := h.AddNode()
	h.SetOID(c, "&c")
	h.SetRoot(a)
	h.SetRoot(h.Root()) // no-op
	// Edge-level mutations privatize first.
	h.PrivatizeOut(a)
	h.AddEdge(a, Sym("z"), c)
	h.Relabel(a, Sym("y"), Sym("y2"))
	h.PrivatizeOut(g.Root())
	h.DeleteEdge(g.Root(), Sym("x"), a)

	if got := FormatRoot(g); got != before {
		t.Fatalf("original changed:\n got %s\nwant %s", got, before)
	}
	if id, ok := g.OIDOf(c); ok {
		t.Fatalf("original gained oid %q for clone-allocated node", id)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("clone NumEdges = %d, want 2", h.NumEdges())
	}
	if got := h.Lookup(a, Sym("y2")); len(got) != 1 || got[0] != b {
		t.Fatalf("clone Lookup(y2) = %v", got)
	}
}

func TestPrivatizeOutSpareCapacity(t *testing.T) {
	// The sharp edge CloneShared documents: appending into spare capacity of
	// a shared slice must not be observable through the original. Privatizing
	// makes the append safe; this test would fail under -race (and often by
	// value) if PrivatizeOut were skipped and the original kept growing.
	g := New()
	a := g.AddNode()
	g.AddEdge(g.Root(), Sym("x"), a)
	// Force spare capacity on the root's slice.
	g.PrivatizeOut(g.Root())

	h := g.CloneShared()
	h.PrivatizeOut(g.Root())
	h.AddEdge(g.Root(), Sym("extra"), a)

	if g.OutDegree(g.Root()) != 1 {
		t.Fatalf("original degree = %d, want 1", g.OutDegree(g.Root()))
	}
	if h.OutDegree(h.Root()) != 2 {
		t.Fatalf("clone degree = %d, want 2", h.OutDegree(h.Root()))
	}
}
