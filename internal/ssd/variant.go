package ssd

import "fmt"

// This file implements the model variants §2 of the paper reviews and the
// mappings between them, which the paper asserts are "easy to define in both
// directions".
//
// Variant A (the package default, from UnQL [10]):
//
//	type label = int | string | ... | symbol
//	type tree  = set(label × tree)
//
// Variant B (from Lorel/OEM [5]): leaf nodes carry base values, edges carry
// symbols only:
//
//	type base = int | string | ...
//	type tree = base | set(symbol × tree)
//
// Variant C: labels on internal nodes:
//
//	type tree = label × set(label × tree)
//
// The paper notes Variant C makes tree union hard to define and that it can
// be converted to an edge-labeled form "by introducing extra edges"; the
// conversions below do exactly that.

// Marker symbols used by the lossless A↔B encoding. A data-labeled edge to
// an empty tree becomes a symbol edge VariantData to a value leaf; a
// data-labeled edge to a non-empty tree (legal in Variant A, inexpressible
// directly in Variant B) is wrapped in an VariantEdge record with
// VariantLabel and VariantTo fields.
const (
	VariantData  = "@data"
	VariantEdge  = "@edge"
	VariantLabel = "@label"
	VariantTo    = "@to"
)

// LeafGraph is Variant B: a rooted graph whose edges are symbol-labeled and
// whose leaves may carry one base value.
type LeafGraph struct {
	G   *Graph
	Val map[NodeID]Label
}

// NewLeafGraph returns an empty Variant B graph.
func NewLeafGraph() *LeafGraph {
	return &LeafGraph{G: New(), Val: map[NodeID]Label{}}
}

// Check validates the Variant B invariants: every edge label is a symbol,
// and values appear only on leaves.
func (lg *LeafGraph) Check() error {
	for n := 0; n < lg.G.NumNodes(); n++ {
		es := lg.G.Out(NodeID(n))
		if _, hasVal := lg.Val[NodeID(n)]; hasVal && len(es) > 0 {
			return fmt.Errorf("ssd: variant B violation: node %d has both a value and %d children", n, len(es))
		}
		for _, e := range es {
			if !e.Label.IsSymbol() {
				return fmt.Errorf("ssd: variant B violation: edge label %s out of node %d is not a symbol", e.Label, n)
			}
		}
	}
	for n, v := range lg.Val {
		if v.IsSymbol() {
			return fmt.Errorf("ssd: variant B violation: node %d carries symbol value %s", n, v)
		}
	}
	return nil
}

// ToLeafModel converts a Variant A graph into Variant B. The conversion is
// lossless: FromLeafModel inverts it up to bisimulation. Symbol edges map
// directly; a data edge d→t maps to
//
//	{@data: leaf(d)}                        if t is the empty tree
//	{@edge: {@label: leaf(d), @to: conv(t)}} otherwise
//
// OIDs on nodes are preserved.
func ToLeafModel(g *Graph) *LeafGraph {
	lg := &LeafGraph{G: NewWithCapacity(g.NumNodes()), Val: map[NodeID]Label{}}
	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = InvalidNode
	}
	var conv func(n NodeID) NodeID
	conv = func(n NodeID) NodeID {
		if remap[n] != InvalidNode {
			return remap[n]
		}
		var nn NodeID
		if n == g.Root() {
			nn = lg.G.Root()
		} else {
			nn = lg.G.AddNode()
		}
		remap[n] = nn
		if id, ok := g.OIDOf(n); ok {
			lg.G.SetOID(nn, id)
		}
		for _, e := range g.Out(n) {
			switch {
			case e.Label.IsSymbol():
				lg.G.AddEdge(nn, e.Label, conv(e.To))
			case g.IsLeaf(e.To):
				leaf := lg.G.AddLeaf(nn, Sym(VariantData))
				lg.Val[leaf] = e.Label
			default:
				rec := lg.G.AddLeaf(nn, Sym(VariantEdge))
				lleaf := lg.G.AddLeaf(rec, Sym(VariantLabel))
				lg.Val[lleaf] = e.Label
				lg.G.AddEdge(rec, Sym(VariantTo), conv(e.To))
			}
		}
		return nn
	}
	conv(g.Root())
	return lg
}

// FromLeafModel converts Variant B back to Variant A, inverting ToLeafModel.
// Value leaves become data edges to the empty tree; @edge records are
// unwrapped. Symbol edges whose target carries a value v become a data edge
// only when produced by the @data marker; otherwise the value leaf is
// encoded as an outgoing data edge from the converted node, which is the
// standard [5]→[10] mapping the paper sketches.
func FromLeafModel(lg *LeafGraph) *Graph {
	g := NewWithCapacity(lg.G.NumNodes())
	remap := make([]NodeID, lg.G.NumNodes())
	for i := range remap {
		remap[i] = InvalidNode
	}
	var conv func(n NodeID) NodeID
	conv = func(n NodeID) NodeID {
		if remap[n] != InvalidNode {
			return remap[n]
		}
		var nn NodeID
		if n == lg.G.Root() {
			nn = g.Root()
		} else {
			nn = g.AddNode()
		}
		remap[n] = nn
		if id, ok := lg.G.OIDOf(n); ok {
			g.SetOID(nn, id)
		}
		if v, ok := lg.Val[n]; ok {
			g.AddLeaf(nn, v)
		}
		for _, e := range lg.G.Out(n) {
			sym, _ := e.Label.Symbol()
			switch sym {
			case VariantData:
				if v, ok := lg.Val[e.To]; ok {
					g.AddLeaf(nn, v)
					continue
				}
				g.AddEdge(nn, e.Label, conv(e.To))
			case VariantEdge:
				lab, to, ok := decodeEdgeRecord(lg, e.To)
				if ok {
					g.AddEdge(nn, lab, conv(to))
					continue
				}
				g.AddEdge(nn, e.Label, conv(e.To))
			default:
				g.AddEdge(nn, e.Label, conv(e.To))
			}
		}
		return nn
	}
	conv(lg.G.Root())
	return g
}

func decodeEdgeRecord(lg *LeafGraph, rec NodeID) (Label, NodeID, bool) {
	var lab Label
	var to NodeID = InvalidNode
	haveLab := false
	for _, e := range lg.G.Out(rec) {
		switch sym, _ := e.Label.Symbol(); sym {
		case VariantLabel:
			if v, ok := lg.Val[e.To]; ok {
				lab, haveLab = v, true
			}
		case VariantTo:
			to = e.To
		}
	}
	return lab, to, haveLab && to != InvalidNode
}

// NodeLabeledGraph is Variant C: every node carries a label in addition to
// its labeled out-edges.
type NodeLabeledGraph struct {
	G         *Graph
	NodeLabel map[NodeID]Label
}

// NewNodeLabeled returns an empty Variant C graph whose root is labeled l.
func NewNodeLabeled(rootLabel Label) *NodeLabeledGraph {
	nl := &NodeLabeledGraph{G: New(), NodeLabel: map[NodeID]Label{}}
	nl.NodeLabel[nl.G.Root()] = rootLabel
	return nl
}

// FromNodeLabeled converts Variant C into the edge-labeled Variant A by
// "introducing extra edges": each node's label becomes an edge interposed
// above its children, so a node ℓ with children (l₁:t₁, …) becomes
// {ℓ: {l₁: conv(t₁), …}}. The result's root has a single edge carrying the
// old root's label.
func FromNodeLabeled(nl *NodeLabeledGraph) *Graph {
	g := New()
	// inner[n] is the node holding n's children; outer edges carry labels.
	inner := make([]NodeID, nl.G.NumNodes())
	for i := range inner {
		inner[i] = InvalidNode
	}
	var conv func(n NodeID) NodeID
	conv = func(n NodeID) NodeID {
		if inner[n] != InvalidNode {
			return inner[n]
		}
		in := g.AddNode()
		inner[n] = in
		for _, e := range nl.G.Out(n) {
			childInner := conv(e.To)
			wrap := g.AddNode()
			g.AddEdge(wrap, nl.label(e.To), childInner)
			g.AddEdge(in, e.Label, wrap)
		}
		return in
	}
	rootInner := conv(nl.G.Root())
	g.AddEdge(g.Root(), nl.label(nl.G.Root()), rootInner)
	return g
}

func (nl *NodeLabeledGraph) label(n NodeID) Label {
	if l, ok := nl.NodeLabel[n]; ok {
		return l
	}
	return Sym("")
}
