package ssd

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// NodeID identifies a node within one Graph. IDs are dense: allocating n
// nodes yields IDs 0..n-1, so slices indexed by NodeID are the natural
// per-node table.
type NodeID int32

// InvalidNode is the NodeID returned by lookups that find nothing.
const InvalidNode NodeID = -1

// Edge is one outgoing labeled edge. The paper's tree type is
// set(label × tree); an Edge is one element of a node's edge set.
type Edge struct {
	Label Label
	To    NodeID
}

// Graph is a rooted, edge-labeled, possibly cyclic graph — the paper's
// unifying representation of semistructured data. Edges out of a node are
// unordered (set semantics); duplicates may exist transiently and are
// removed by Dedup. A Graph has a single distinguished root; a "database" in
// the paper's sense is whatever is accessible from that root by forward
// traversal.
//
// The zero value is not usable; call New.
type Graph struct {
	// out is the forward adjacency. In-place writes must drop the reverse
	// cache first (checked by ssdvet's revcachecheck).
	//
	//ssd:cachedby revcache
	out  [][]Edge
	root NodeID
	// oid, when non-nil, assigns OEM-style object identities to nodes.
	// Identities survive serialization but are ignored by value semantics.
	oid map[NodeID]string
	// rev caches the reverse adjacency (see In). Any mutation of nodes or
	// edges drops the cache; it is rebuilt on next use. Held atomically so
	// that concurrent *readers* of an otherwise-immutable graph (the
	// core.Database contract) may trigger and share the lazy build safely;
	// mutation remains single-writer, as for the rest of the struct.
	//
	//ssd:cache revcache
	rev atomic.Pointer[[][]Edge]
}

// New returns an empty graph containing just a root node.
func New() *Graph {
	g := &Graph{root: 0}
	g.out = append(g.out, nil)
	return g
}

// NewWithCapacity returns an empty rooted graph with capacity hints for
// nodes, avoiding reallocation while loading bulk data.
func NewWithCapacity(nodes int) *Graph {
	g := &Graph{root: 0, out: make([][]Edge, 1, max(1, nodes))}
	return g
}

// Root returns the distinguished root node.
func (g *Graph) Root() NodeID { return g.root }

// SetRoot changes the distinguished root. It panics if n is out of range.
func (g *Graph) SetRoot(n NodeID) {
	g.check(n)
	g.root = n
}

// NumNodes returns the number of allocated nodes (including unreachable ones).
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the total number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// AddNode allocates a fresh node with no edges and returns its ID.
//
//ssd:invalidates revcache
func (g *Graph) AddNode() NodeID {
	g.rev.Store(nil)
	g.out = append(g.out, nil)
	return NodeID(len(g.out) - 1)
}

// AddNodes allocates k fresh nodes and returns the ID of the first; the rest
// follow consecutively.
//
//ssd:invalidates revcache
func (g *Graph) AddNodes(k int) NodeID {
	g.rev.Store(nil)
	first := NodeID(len(g.out))
	for i := 0; i < k; i++ {
		g.out = append(g.out, nil)
	}
	return first
}

// AddEdge appends an edge from → (label) → to. Set semantics mean duplicate
// additions are tolerated; call Dedup to canonicalize.
//
//ssd:invalidates revcache
func (g *Graph) AddEdge(from NodeID, label Label, to NodeID) {
	g.check(from)
	g.check(to)
	g.rev.Store(nil)
	g.out[from] = append(g.out[from], Edge{Label: label, To: to})
}

// AddLeaf allocates a fresh leaf node, adds an edge from → (label) → leaf,
// and returns the leaf. It is the idiom for attaching data edges such as
// Title → "Casablanca".
func (g *Graph) AddLeaf(from NodeID, label Label) NodeID {
	leaf := g.AddNode()
	g.AddEdge(from, label, leaf)
	return leaf
}

// Out returns the outgoing edge slice of n. The slice is owned by the graph
// and must not be mutated by callers.
func (g *Graph) Out(n NodeID) []Edge {
	g.check(n)
	return g.out[n]
}

// OutDegree returns the number of outgoing edges of n.
func (g *Graph) OutDegree(n NodeID) int {
	g.check(n)
	return len(g.out[n])
}

// Lookup returns the targets of edges out of n whose label equals l
// (using Label.Equal, so 2 and 2.0 match).
func (g *Graph) Lookup(n NodeID, l Label) []NodeID {
	g.check(n)
	var out []NodeID
	for _, e := range g.out[n] {
		if e.Label.Equal(l) {
			out = append(out, e.To)
		}
	}
	return out
}

// LookupFirst returns the first target of an edge labeled l out of n, or
// InvalidNode if none exists.
func (g *Graph) LookupFirst(n NodeID, l Label) NodeID {
	g.check(n)
	for _, e := range g.out[n] {
		if e.Label.Equal(l) {
			return e.To
		}
	}
	return InvalidNode
}

// SetOID assigns an OEM object identity to a node. Identities are metadata:
// value semantics (bisimulation) ignores them, but codecs preserve them.
func (g *Graph) SetOID(n NodeID, id string) {
	g.check(n)
	if g.oid == nil {
		g.oid = make(map[NodeID]string)
	}
	g.oid[n] = id
}

// OIDOf returns the object identity of n, if one was assigned.
func (g *Graph) OIDOf(n NodeID) (string, bool) {
	id, ok := g.oid[n]
	return id, ok
}

// NodeByOID returns the node carrying the given object identity, or
// InvalidNode. It is a linear scan; OEM codecs that need fast lookup keep
// their own map.
func (g *Graph) NodeByOID(id string) NodeID {
	for n, v := range g.oid {
		if v == id {
			return n
		}
	}
	return InvalidNode
}

// SortEdges orders every node's edge set (by label, then target). It makes
// traversal order deterministic for printing and tests; set semantics are
// unaffected. The reverse-adjacency cache is dropped: it enumerates In()
// edges in out-slice order, and a cache built before the sort would
// disagree with one built after — a determinism leak, if not a correctness
// one.
//
//ssd:invalidates revcache
func (g *Graph) SortEdges() {
	g.rev.Store(nil)
	for _, es := range g.out {
		sort.Slice(es, func(i, j int) bool {
			if c := es[i].Label.Compare(es[j].Label); c != 0 {
				return c < 0
			}
			return es[i].To < es[j].To
		})
	}
}

// Dedup removes duplicate (label, target) edges node by node, enforcing the
// set semantics of the model. It sorts edge lists as a side effect.
//
//ssd:invalidates revcache
func (g *Graph) Dedup() {
	g.rev.Store(nil)
	g.SortEdges()
	for n, es := range g.out {
		if len(es) < 2 {
			continue
		}
		w := 1
		for i := 1; i < len(es); i++ {
			if es[i].Label == es[w-1].Label && es[i].To == es[w-1].To {
				continue
			}
			es[w] = es[i]
			w++
		}
		g.out[n] = es[:w]
	}
}

// Reachable returns the set of nodes accessible from start by forward
// traversal, as a dense boolean slice indexed by NodeID.
func (g *Graph) Reachable(start NodeID) []bool {
	g.check(start)
	seen := make([]bool, len(g.out))
	stack := []NodeID{start}
	seen[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[n] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// Accessible returns a copy of g restricted to the part accessible from the
// root — the paper's point 4 in §3: queries concern what is reachable by
// forward traversal. The second result maps old node IDs to new ones
// (InvalidNode for dropped nodes).
func (g *Graph) Accessible() (*Graph, []NodeID) {
	seen := g.Reachable(g.root)
	remap := make([]NodeID, len(g.out))
	h := &Graph{}
	for n := range g.out {
		if seen[n] {
			remap[n] = NodeID(len(h.out))
			h.out = append(h.out, nil)
		} else {
			remap[n] = InvalidNode
		}
	}
	for n, es := range g.out {
		if !seen[n] {
			continue
		}
		nn := remap[n]
		for _, e := range es {
			h.out[nn] = append(h.out[nn], Edge{Label: e.Label, To: remap[e.To]})
		}
	}
	h.root = remap[g.root]
	for n, id := range g.oid {
		if seen[n] {
			h.SetOID(remap[n], id)
		}
	}
	return h, remap
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := &Graph{root: g.root, out: make([][]Edge, len(g.out))}
	for n, es := range g.out {
		h.out[n] = append([]Edge(nil), es...)
	}
	if g.oid != nil {
		h.oid = make(map[NodeID]string, len(g.oid))
		for n, id := range g.oid {
			h.oid[n] = id
		}
	}
	return h
}

// Graft copies the subgraph of src accessible from srcNode into g and
// returns the node of g corresponding to srcNode. It is the building block
// for constructing query results that embed pieces of the input database.
func (g *Graph) Graft(src *Graph, srcNode NodeID) NodeID {
	src.check(srcNode)
	// Iterative traversal so deep (ACeDB-style) trees do not overflow the
	// goroutine stack.
	remap := make(map[NodeID]NodeID)
	root := g.addNodeFor(srcNode, remap)
	work := []NodeID{srcNode}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		nn := remap[n]
		for _, e := range src.out[n] {
			to, fresh := remapOrAdd(g, e.To, remap)
			g.AddEdge(nn, e.Label, to)
			if fresh {
				work = append(work, e.To)
			}
		}
	}
	return root
}

func (g *Graph) addNodeFor(n NodeID, remap map[NodeID]NodeID) NodeID {
	nn := g.AddNode()
	remap[n] = nn
	return nn
}

func remapOrAdd(g *Graph, n NodeID, remap map[NodeID]NodeID) (NodeID, bool) {
	if nn, ok := remap[n]; ok {
		return nn, false
	}
	return g.addNodeFor(n, remap), true
}

// Union returns a fresh node of g whose edge set is the union of the edge
// sets of a and b — the tree-union operation the paper notes is easy in the
// edge-labeled model and hard in the node-labeled one.
//
//ssd:invalidates revcache
func (g *Graph) Union(a, b NodeID) NodeID {
	g.check(a)
	g.check(b)
	g.rev.Store(nil)
	u := g.AddNode()
	g.out[u] = append(g.out[u], g.out[a]...)
	g.out[u] = append(g.out[u], g.out[b]...)
	return u
}

// IsLeaf reports whether n has no outgoing edges (the empty tree {}).
func (g *Graph) IsLeaf(n NodeID) bool {
	g.check(n)
	return len(g.out[n]) == 0
}

// Labels returns the distinct labels appearing on edges out of n, sorted.
func (g *Graph) Labels(n NodeID) []Label {
	g.check(n)
	seen := make(map[Label]bool, len(g.out[n]))
	var ls []Label
	for _, e := range g.out[n] {
		if !seen[e.Label] {
			seen[e.Label] = true
			ls = append(ls, e.Label)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	return ls
}

// AllLabels returns the distinct labels in the whole graph, sorted.
func (g *Graph) AllLabels() []Label {
	seen := make(map[Label]bool)
	var ls []Label
	for _, es := range g.out {
		for _, e := range es {
			if !seen[e.Label] {
				seen[e.Label] = true
				ls = append(ls, e.Label)
			}
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	return ls
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Nodes, Edges  int
	Leaves        int
	DistinctLabel int
	MaxOutDegree  int
}

// ComputeStats gathers Stats over the whole graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: len(g.out)}
	labels := make(map[Label]struct{})
	for _, es := range g.out {
		s.Edges += len(es)
		if len(es) == 0 {
			s.Leaves++
		}
		if len(es) > s.MaxOutDegree {
			s.MaxOutDegree = len(es)
		}
		for _, e := range es {
			labels[e.Label] = struct{}{}
		}
	}
	s.DistinctLabel = len(labels)
	return s
}

// Reverse returns the reversed adjacency: in[to] lists (label, from) pairs.
// Several algorithms (bisimulation refinement, DataGuide maintenance) need
// backward edges; the core model stores only forward ones.
func (g *Graph) Reverse() [][]Edge {
	in := make([][]Edge, len(g.out))
	for from, es := range g.out {
		for _, e := range es {
			in[e.To] = append(in[e.To], Edge{Label: e.Label, To: NodeID(from)})
		}
	}
	return in
}

// EnsureReverse builds (or reuses) the cached reverse adjacency used by In.
// The cache is dropped automatically whenever the graph is mutated, so
// callers on read-only graphs pay the O(V+E) build at most once. Safe for
// concurrent readers: racing builds settle on one winner.
func (g *Graph) EnsureReverse() {
	if g.rev.Load() == nil {
		r := g.Reverse()
		g.rev.CompareAndSwap(nil, &r)
	}
}

// In returns the incoming edges of n as (label, from) pairs — Edge.To holds
// the *source* node, mirroring Reverse. The slice is owned by the graph and
// must not be mutated. The first call after a mutation rebuilds the cache;
// query planners use In to start evaluation from the most selective atom of
// a path and verify the prefix backward.
func (g *Graph) In(n NodeID) []Edge {
	g.check(n)
	r := g.rev.Load()
	if r == nil {
		g.EnsureReverse()
		r = g.rev.Load()
	}
	return (*r)[n]
}

func (g *Graph) check(n NodeID) {
	if n < 0 || int(n) >= len(g.out) {
		panic(fmt.Sprintf("ssd: node %d out of range [0,%d)", n, len(g.out)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
