package ssd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// This file implements a concrete text syntax for the model, in the style of
// the UnQL/OEM literals used throughout the paper:
//
//	{Entry: {Movie: {Title: "Casablanca",
//	                 Cast: {1: "Bogart", 2: "Bacall"},
//	                 Director: {...}}}}
//
// Grammar:
//
//	tree  := literal                    (sugar for {literal: {}})
//	       | tag? '{' [pair (',' pair)*] '}'
//	       | tag                        (reference to a tagged node)
//	pair  := label ':' tree | label     (bare label: edge to empty tree)
//	label := ident | string | int | float | true | false
//	tag   := '#' ident                  (local sharing/cycles)
//	       | '&' ident                  (persistent OEM object identity)
//
// Tags make sharing and cycles expressible: `#x{Next: #x}` is a one-node
// cycle. `&o7{...}` additionally records "o7" as the node's OEM oid.
// Line comments start with //.

// Parse parses a complete database in text syntax and returns a fresh graph
// whose root is the parsed tree.
func Parse(src string) (*Graph, error) {
	g := New()
	p := &parser{lex: newLexer(src), g: g, tags: map[string]NodeID{}}
	p.lex.next()
	n, err := p.parseTreeAt(g.Root())
	if err != nil {
		return nil, err
	}
	p.lex.next()
	if p.lex.tok == tokError {
		return nil, p.lex.err
	}
	if p.lex.tok != tokEOF {
		return nil, fmt.Errorf("ssd: trailing input at offset %d: %q", p.lex.pos, p.lex.text)
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	if n != g.Root() {
		g.SetRoot(n)
	}
	return g, nil
}

// MustParse is Parse but panics on error; intended for tests and examples.
func MustParse(src string) *Graph {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

// ParseTree parses one tree term into an existing graph and returns its node.
// Tags are scoped to the single call.
func ParseTree(g *Graph, src string) (NodeID, error) {
	p := &parser{lex: newLexer(src), g: g, tags: map[string]NodeID{}}
	p.lex.next()
	n, err := p.parseTreeAt(g.AddNode())
	if err != nil {
		return InvalidNode, err
	}
	p.lex.next()
	if p.lex.tok == tokError {
		return InvalidNode, p.lex.err
	}
	if p.lex.tok != tokEOF {
		return InvalidNode, fmt.Errorf("ssd: trailing input at offset %d: %q", p.lex.pos, p.lex.text)
	}
	if err := p.resolve(); err != nil {
		return InvalidNode, err
	}
	return n, nil
}

// ParseLabel parses a single label literal (symbol, string, number, bool).
func ParseLabel(src string) (Label, error) {
	lx := newLexer(src)
	lx.next()
	l, err := labelOf(lx)
	if err != nil {
		return Label{}, err
	}
	lx.next()
	if lx.tok != tokEOF {
		return Label{}, fmt.Errorf("ssd: trailing input after label: %q", lx.text)
	}
	return l, nil
}

// Format renders the subgraph reachable from n in the text syntax. Shared
// and cyclic nodes receive #tN tags; nodes with OEM oids are rendered with
// &oid tags. Edges are printed in sorted label order for determinism.
func Format(g *Graph, n NodeID) string {
	f := &formatter{g: g, shared: sharedNodes(g, n), tag: map[NodeID]string{}}
	var b strings.Builder
	f.write(&b, n)
	return b.String()
}

// FormatRoot renders the whole database from its root.
func FormatRoot(g *Graph) string { return Format(g, g.Root()) }

// sharedNodes returns nodes reachable from start that are reachable via more
// than one path or participate in a cycle — exactly the nodes needing tags.
func sharedNodes(g *Graph, start NodeID) map[NodeID]bool {
	visits := map[NodeID]int{}
	onStack := map[NodeID]bool{}
	shared := map[NodeID]bool{}
	type frame struct {
		n NodeID
		i int
	}
	visits[start]++
	stack := []frame{{start, 0}}
	onStack[start] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		es := g.Out(f.n)
		if f.i >= len(es) {
			onStack[f.n] = false
			stack = stack[:len(stack)-1]
			continue
		}
		to := es[f.i].To
		f.i++
		visits[to]++
		if onStack[to] {
			shared[to] = true // back edge: cycle
			continue
		}
		if visits[to] > 1 {
			shared[to] = true // cross edge: sharing
			continue
		}
		onStack[to] = true
		stack = append(stack, frame{to, 0})
	}
	return shared
}

type formatter struct {
	g      *Graph
	shared map[NodeID]bool
	tag    map[NodeID]string
	nextID int
}

func (f *formatter) write(b *strings.Builder, n NodeID) {
	if t, ok := f.tag[n]; ok {
		b.WriteString(t) // already emitted: reference
		return
	}
	prefix := ""
	if oid, ok := f.g.OIDOf(n); ok {
		prefix = "&" + oid
	} else if f.shared[n] {
		prefix = "#t" + strconv.Itoa(f.nextID)
		f.nextID++
	}
	if prefix != "" {
		f.tag[n] = prefix
		b.WriteString(prefix)
	}
	es := append([]Edge(nil), f.g.Out(n)...)
	sort.Slice(es, func(i, j int) bool {
		if c := es[i].Label.Compare(es[j].Label); c != 0 {
			return c < 0
		}
		return es[i].To < es[j].To
	})
	b.WriteByte('{')
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.Label.String())
		if f.plainLeaf(e.To) {
			continue // bare-label shorthand for edge to empty tree
		}
		b.WriteString(": ")
		f.write(b, e.To)
	}
	b.WriteByte('}')
}

// plainLeaf reports whether a node prints as nothing at all (empty tree with
// no tag), allowing the bare-label shorthand. Shared empty leaves print bare
// too: sharing an empty tree is semantically invisible, so no tag is needed.
func (f *formatter) plainLeaf(n NodeID) bool {
	if !f.g.IsLeaf(n) {
		return false
	}
	_, hasOID := f.g.OIDOf(n)
	return !hasOID
}

// ---------------------------------------------------------------------------
// Lexer

type token int

const (
	tokEOF token = iota
	tokLBrace
	tokRBrace
	tokColon
	tokComma
	tokHash   // #
	tokAmp    // &
	tokIdent  // symbol, true, false
	tokString // "..."
	tokInt
	tokFloat
	tokError
)

type lexer struct {
	src  string
	pos  int
	tok  token
	text string // token payload (unquoted for strings)
	err  error

	// One-token pushback: when pending is set, the next call to next()
	// re-delivers the current token instead of scanning.
	pending bool
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// push arranges for the current token to be delivered again by the next
// call to next(). Used after one-token lookahead past a tag name.
func (lx *lexer) push() { lx.pending = true }

func (lx *lexer) errorf(format string, args ...interface{}) {
	if lx.err == nil {
		lx.err = fmt.Errorf("ssd: offset %d: "+format, append([]interface{}{lx.pos}, args...)...)
	}
	lx.tok = tokError
}

func (lx *lexer) next() {
	if lx.pending {
		lx.pending = false
		return
	}
	lx.skipSpace()
	if lx.err != nil {
		lx.tok = tokError
		return
	}
	if lx.pos >= len(lx.src) {
		lx.tok, lx.text = tokEOF, ""
		return
	}
	c := lx.src[lx.pos]
	switch {
	case c == '{':
		lx.pos++
		lx.tok = tokLBrace
	case c == '}':
		lx.pos++
		lx.tok = tokRBrace
	case c == ':':
		lx.pos++
		lx.tok = tokColon
	case c == ',':
		lx.pos++
		lx.tok = tokComma
	case c == '#':
		lx.pos++
		lx.tok = tokHash
	case c == '&':
		lx.pos++
		lx.tok = tokAmp
	case c == '"':
		lx.lexString()
	case c == '-' || c >= '0' && c <= '9':
		lx.lexNumber()
	case isIdentStart(rune(c)):
		lx.lexIdent()
	default:
		lx.errorf("unexpected character %q", c)
	}
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		if c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		break
	}
}

func (lx *lexer) lexString() {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '"' {
			lx.pos++
			lx.tok, lx.text = tokString, b.String()
			return
		}
		if c == '\\' {
			if lx.pos+1 >= len(lx.src) {
				break
			}
			esc := lx.src[lx.pos+1]
			lx.pos += 2
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u':
				if lx.pos+4 > len(lx.src) {
					lx.errorf("truncated \\u escape")
					return
				}
				v, err := strconv.ParseUint(lx.src[lx.pos:lx.pos+4], 16, 32)
				if err != nil {
					lx.errorf("bad \\u escape: %v", err)
					return
				}
				b.WriteRune(rune(v))
				lx.pos += 4
			default:
				lx.errorf("unknown escape \\%c", esc)
				return
			}
			continue
		}
		b.WriteByte(c)
		lx.pos++
	}
	lx.pos = start
	lx.errorf("unterminated string")
}

func (lx *lexer) lexNumber() {
	start := lx.pos
	if lx.src[lx.pos] == '-' {
		lx.pos++
	}
	digits := 0
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
		digits++
	}
	if digits == 0 {
		lx.errorf("malformed number")
		return
	}
	isFloat := false
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		isFloat = true
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		isFloat = true
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	lx.text = lx.src[start:lx.pos]
	if isFloat {
		lx.tok = tokFloat
	} else {
		lx.tok = tokInt
	}
}

func (lx *lexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentCont(r) {
			break
		}
		lx.pos += size
	}
	lx.tok, lx.text = tokIdent, lx.src[start:lx.pos]
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// ---------------------------------------------------------------------------
// Parser
//
// Convention: every parse method is entered with the current token being the
// FIRST token of its production and returns with the current token being the
// LAST token of its production. The caller advances.

type parser struct {
	lex  *lexer
	g    *Graph
	tags map[string]NodeID   // defined tag → node
	fwd  map[string][]NodeID // forward-referenced tag → placeholder nodes
}

// parseTreeAt parses a tree term. If the term is a braces-node it is built
// into `into` and `into` is returned; references return the referenced node
// instead (leaving `into` unused).
func (p *parser) parseTreeAt(into NodeID) (NodeID, error) {
	lx := p.lex
	switch lx.tok {
	case tokHash, tokAmp:
		isOID := lx.tok == tokAmp
		lx.next()
		if lx.tok != tokIdent && lx.tok != tokInt {
			return InvalidNode, fmt.Errorf("ssd: offset %d: expected tag name after # or &", lx.pos)
		}
		name := lx.text
		lx.next() // lookahead: definition or reference?
		if lx.tok == tokLBrace {
			if _, dup := p.tags[name]; dup {
				return InvalidNode, fmt.Errorf("ssd: duplicate tag %q", name)
			}
			p.tags[name] = into
			if isOID {
				p.g.SetOID(into, name)
			}
			if err := p.parseBraces(into); err != nil {
				return InvalidNode, err
			}
			return into, nil
		}
		// Reference: un-consume the lookahead token.
		lx.push()
		if n, ok := p.tags[name]; ok {
			return n, nil
		}
		ph := p.g.AddNode()
		if p.fwd == nil {
			p.fwd = map[string][]NodeID{}
		}
		p.fwd[name] = append(p.fwd[name], ph)
		if isOID {
			p.g.SetOID(ph, name) // keep oid even if definition never appears
		}
		return ph, nil
	case tokLBrace:
		if err := p.parseBraces(into); err != nil {
			return InvalidNode, err
		}
		return into, nil
	case tokIdent, tokString, tokInt, tokFloat:
		l, err := labelOf(lx)
		if err != nil {
			return InvalidNode, err
		}
		p.g.AddLeaf(into, l) // literal tree: {lit: {}}
		return into, nil
	case tokError:
		return InvalidNode, lx.err
	default:
		return InvalidNode, fmt.Errorf("ssd: offset %d: expected tree term", lx.pos)
	}
}

// parseBraces parses '{ pairs }'; current token is '{' on entry, '}' on exit.
func (p *parser) parseBraces(into NodeID) error {
	lx := p.lex
	lx.next()
	if lx.tok == tokRBrace {
		return nil
	}
	for {
		l, err := labelOf(lx)
		if err != nil {
			return err
		}
		lx.next()
		if lx.tok == tokColon {
			lx.next()
			child, err := p.parseTreeAt(p.g.AddNode())
			if err != nil {
				return err
			}
			p.g.AddEdge(into, l, child)
			lx.next()
		} else {
			p.g.AddLeaf(into, l) // bare label: edge to empty tree
		}
		switch lx.tok {
		case tokComma:
			lx.next()
		case tokRBrace:
			return nil
		case tokError:
			return lx.err
		default:
			return fmt.Errorf("ssd: offset %d: expected ',' or '}'", lx.pos)
		}
	}
}

// resolve rewires forward references to their defined nodes.
func (p *parser) resolve() error {
	if len(p.fwd) == 0 {
		return nil
	}
	redirect := map[NodeID]NodeID{}
	for name, phs := range p.fwd {
		target, ok := p.tags[name]
		if !ok {
			return fmt.Errorf("ssd: undefined tag reference #%s", name)
		}
		for _, ph := range phs {
			redirect[ph] = target
			delete(p.g.oid, ph)
		}
	}
	for n := range p.g.out {
		es := p.g.out[n]
		for i := range es {
			if t, ok := redirect[es[i].To]; ok {
				es[i].To = t
			}
		}
	}
	if t, ok := redirect[p.g.root]; ok {
		p.g.root = t
	}
	return nil
}

func labelOf(lx *lexer) (Label, error) {
	switch lx.tok {
	case tokIdent:
		switch lx.text {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
		return Sym(lx.text), nil
	case tokString:
		return Str(lx.text), nil
	case tokInt:
		v, err := strconv.ParseInt(lx.text, 10, 64)
		if err != nil {
			return Label{}, fmt.Errorf("ssd: bad integer %q: %v", lx.text, err)
		}
		return Int(v), nil
	case tokFloat:
		v, err := strconv.ParseFloat(lx.text, 64)
		if err != nil {
			return Label{}, fmt.Errorf("ssd: bad float %q: %v", lx.text, err)
		}
		return Float(v), nil
	case tokError:
		return Label{}, lx.err
	default:
		return Label{}, fmt.Errorf("ssd: offset %d: expected label", lx.pos)
	}
}
