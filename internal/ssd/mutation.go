package ssd

// This file holds the in-place mutation primitives and the copy-on-write
// support the mutation subsystem (internal/mutate) is built on. The model
// itself stays value-oriented: these primitives exist so a *versioned* write
// path can produce a new graph version cheaply, not so callers can edit
// graphs that readers hold. Every mutator follows AddEdge's contract of
// dropping the cached reverse adjacency (g.rev.Store(nil)) so In() never
// serves stale edges.

// EdgeRec is a fully specified edge occurrence (source, label, target) — the
// unit of the mutation deltas exchanged between the write path and
// derived-structure maintenance (index.Apply, dataguide ApplyDelta).
type EdgeRec struct {
	From  NodeID
	Label Label
	To    NodeID
}

// Delta lists the edge occurrences a mutation batch added and removed, in
// application order. A relabel appears as one removal plus one addition of
// the same (source, target) pair.
type Delta struct {
	Added   []EdgeRec
	Removed []EdgeRec
}

// Empty reports whether the delta carries no edge changes.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Normalize cancels add/remove pairs of the same edge occurrence inside the
// delta: an edge added by a batch and deleted later in the same batch never
// existed in the base graph, so consumers maintaining a base-derived
// structure must not see either record. Identical records are
// interchangeable, making the cancellation order-insensitive.
func (d Delta) Normalize() Delta {
	if len(d.Added) == 0 || len(d.Removed) == 0 {
		return d
	}
	avail := make(map[EdgeRec]int, len(d.Added))
	for _, a := range d.Added {
		avail[a]++
	}
	cancel := make(map[EdgeRec]int)
	removed := make([]EdgeRec, 0, len(d.Removed))
	for _, r := range d.Removed {
		if avail[r] > 0 {
			avail[r]--
			cancel[r]++
			continue
		}
		removed = append(removed, r)
	}
	if len(cancel) == 0 {
		return d
	}
	added := make([]EdgeRec, 0, len(d.Added))
	for _, a := range d.Added {
		if cancel[a] > 0 {
			cancel[a]--
			continue
		}
		added = append(added, a)
	}
	return Delta{Added: added, Removed: removed}
}

// DeleteEdge removes the first edge from → (label) → to whose label is
// identical (Go equality, not numeric Equal) to l. It reports whether an
// edge was removed. The edge slice is edited in place; on a copy-on-write
// clone the caller must PrivatizeOut(from) first.
//
//ssd:invalidates revcache
func (g *Graph) DeleteEdge(from NodeID, l Label, to NodeID) bool {
	g.check(from)
	g.check(to)
	es := g.out[from]
	for i, e := range es {
		if e.To == to && e.Label == l {
			g.rev.Store(nil)
			copy(es[i:], es[i+1:])
			g.out[from] = es[:len(es)-1]
			return true
		}
	}
	return false
}

// Relabel rewrites the label of every edge out of from whose label is
// identical to old, returning the number of edges rewritten. Like
// DeleteEdge it edits in place and uses label identity, so Relabel(n,
// Int(2), …) leaves a Float(2.0) edge alone.
//
//ssd:invalidates revcache
func (g *Graph) Relabel(from NodeID, old, new Label) int {
	g.check(from)
	n := 0
	for i := range g.out[from] {
		if g.out[from][i].Label == old {
			if n == 0 {
				// Invalidate before the first in-place write, like
				// DeleteEdge: there is never a window where out and a live
				// rev cache disagree.
				g.rev.Store(nil)
			}
			g.out[from][i].Label = new
			n++
		}
	}
	return n
}

// CloneShared returns a copy of g whose per-node edge slices are shared with
// the original — the copy-on-write entry point of the mutation subsystem.
// The node table, root, and oid map are private, so AddNode/SetOID/SetRoot
// on the clone are safe immediately; before editing the edges of an
// existing node the caller must PrivatizeOut it, or in-place edits (and
// appends into spare capacity) would write into storage the original's
// readers share. The reverse-adjacency cache is not carried over.
func (g *Graph) CloneShared() *Graph {
	h := &Graph{root: g.root, out: make([][]Edge, len(g.out))}
	copy(h.out, g.out)
	if g.oid != nil {
		h.oid = make(map[NodeID]string, len(g.oid))
		for n, id := range g.oid {
			h.oid[n] = id
		}
	}
	return h
}

// PrivatizeOut replaces n's edge slice with a freshly allocated copy so
// subsequent in-place edits and appends cannot touch storage shared with
// another graph (see CloneShared). Calling it on an already-private slice
// merely wastes the copy. The row is rebound to an element-wise equal
// slice, so any reverse cache built from the old row stays consistent.
//
//ssd:preserves revcache
func (g *Graph) PrivatizeOut(n NodeID) {
	g.check(n)
	es := g.out[n]
	g.out[n] = append(make([]Edge, 0, len(es)+1), es...)
}
