// Package stats maintains the cardinality statistics the cost-based query
// planner feeds on: per-label edge counts, distinct source/child counts, and
// a fixed-bucket log-scale histogram over numeric data values. The
// statistics are built in one pass over a graph (Build) and then kept
// consistent with the derived-structure maintenance discipline of
// index.LabelIndex.Apply / dataguide.ApplyDelta: every commit folds its
// ssd.Delta in with a copy-on-write Apply instead of rescanning, and the
// durable snapshot codec persists the result so recovery never rebuilds.
//
// All statistics are derived from edges only. Node counts are deliberately
// absent: ssd.Delta does not record node creation, so a node total could not
// be maintained incrementally — the planner reads Graph.NumNodes() directly,
// which is O(1).
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ssd"
)

// HistBuckets is the size of the numeric-value histogram. The bucket
// function is structural (sign + exponent band of the value), not derived
// from the data, so incremental maintenance lands every edge in exactly the
// bucket a rebuild would — the property the incremental==rebuild test pins.
const HistBuckets = 64

// labelStat is the per-label statistic record. The maps are refcounts —
// number of edge occurrences per source/destination node — so deletions can
// maintain exact distinct counts, not sketches.
type labelStat struct {
	count int                // edge occurrences with this label
	srcs  map[ssd.NodeID]int // refcount per source node
	dsts  map[ssd.NodeID]int // refcount per destination node
}

func (ls *labelStat) clone() *labelStat {
	nl := &labelStat{
		count: ls.count,
		srcs:  make(map[ssd.NodeID]int, len(ls.srcs)),
		dsts:  make(map[ssd.NodeID]int, len(ls.dsts)),
	}
	for n, c := range ls.srcs {
		nl.srcs[n] = c
	}
	for n, c := range ls.dsts {
		nl.dsts[n] = c
	}
	return nl
}

// Stats is one immutable statistics version. Like the indexes it is
// copy-on-write: Apply returns a new version sharing the untouched per-label
// records with the receiver, which keeps answering for the old graph.
type Stats struct {
	edges    int
	perLabel map[ssd.Label]*labelStat
	hist     [HistBuckets]int64 // numeric (int/float) data-value edges
}

// Build scans g once and returns its statistics.
func Build(g *ssd.Graph) *Stats {
	s := &Stats{perLabel: make(map[ssd.Label]*labelStat)}
	for v := 0; v < g.NumNodes(); v++ {
		from := ssd.NodeID(v)
		for _, e := range g.Out(from) {
			s.addEdge(from, e.Label, e.To)
		}
	}
	return s
}

func (s *Stats) addEdge(from ssd.NodeID, l ssd.Label, to ssd.NodeID) {
	ls := s.perLabel[l]
	if ls == nil {
		ls = &labelStat{srcs: make(map[ssd.NodeID]int), dsts: make(map[ssd.NodeID]int)}
		s.perLabel[l] = ls
	}
	ls.count++
	ls.srcs[from]++
	ls.dsts[to]++
	s.edges++
	if v, ok := l.Numeric(); ok {
		s.hist[bucketOf(v)]++
	}
}

func (s *Stats) removeEdge(from ssd.NodeID, l ssd.Label, to ssd.NodeID) {
	ls := s.perLabel[l]
	if ls == nil {
		return // delta inconsistent with this version; keep counts sane
	}
	ls.count--
	if ls.srcs[from]--; ls.srcs[from] <= 0 {
		delete(ls.srcs, from)
	}
	if ls.dsts[to]--; ls.dsts[to] <= 0 {
		delete(ls.dsts, to)
	}
	if ls.count <= 0 {
		delete(s.perLabel, l)
	}
	s.edges--
	if v, ok := l.Numeric(); ok {
		if b := bucketOf(v); s.hist[b] > 0 {
			s.hist[b]--
		}
	}
}

// Apply folds a mutation delta into the statistics, returning a new version
// and leaving the receiver untouched (copy-on-write: per-label records not
// named by the delta are shared). The delta is normalized first, mirroring
// the index maintenance contract: an edge added and removed within one batch
// never existed in the base graph.
func (s *Stats) Apply(d ssd.Delta) *Stats {
	d = d.Normalize()
	if d.Empty() {
		return s
	}
	ns := &Stats{
		edges:    s.edges,
		perLabel: make(map[ssd.Label]*labelStat, len(s.perLabel)),
		hist:     s.hist,
	}
	for l, ls := range s.perLabel {
		ns.perLabel[l] = ls // shared until touched
	}
	touched := make(map[ssd.Label]bool)
	privatize := func(l ssd.Label) {
		if touched[l] {
			return
		}
		touched[l] = true
		if ls := ns.perLabel[l]; ls != nil {
			ns.perLabel[l] = ls.clone()
		}
	}
	for _, r := range d.Removed {
		privatize(r.Label)
		ns.removeEdge(r.From, r.Label, r.To)
	}
	for _, a := range d.Added {
		privatize(a.Label)
		ns.addEdge(a.From, a.Label, a.To)
	}
	return ns
}

// Edges returns the total number of edge occurrences.
func (s *Stats) Edges() int { return s.edges }

// Count returns the number of edge occurrences labeled l.
func (s *Stats) Count(l ssd.Label) int {
	if ls := s.perLabel[l]; ls != nil {
		return ls.count
	}
	return 0
}

// DistinctSources returns the number of distinct nodes with an out-edge
// labeled l. For a data-value label this is "how many nodes carry this
// value" — the quantity equality-predicate selectivity divides by.
func (s *Stats) DistinctSources(l ssd.Label) int {
	if ls := s.perLabel[l]; ls != nil {
		return len(ls.srcs)
	}
	return 0
}

// DistinctChildren returns the number of distinct destination nodes of edges
// labeled l — the dedup'd output size of an index seek on l.
func (s *Stats) DistinctChildren(l ssd.Label) int {
	if ls := s.perLabel[l]; ls != nil {
		return len(ls.dsts)
	}
	return 0
}

// NumericCount returns the number of numeric (int/float) value edges — the
// histogram's total mass.
func (s *Stats) NumericCount() int64 {
	var t int64
	for _, c := range s.hist {
		t += c
	}
	return t
}

// FracGreater estimates the fraction of numeric value edges whose value
// exceeds v: full buckets strictly above v's bucket plus half of v's own
// bucket (linear interpolation within the band). Returns 0 when there is no
// numeric mass.
func (s *Stats) FracGreater(v float64) float64 {
	total := s.NumericCount()
	if total == 0 {
		return 0
	}
	b := bucketOf(v)
	var above int64
	for i := b + 1; i < HistBuckets; i++ {
		above += s.hist[i]
	}
	return (float64(above) + 0.5*float64(s.hist[b])) / float64(total)
}

// FracLess is the mirror of FracGreater for values below v.
func (s *Stats) FracLess(v float64) float64 {
	total := s.NumericCount()
	if total == 0 {
		return 0
	}
	b := bucketOf(v)
	var below int64
	for i := 0; i < b; i++ {
		below += s.hist[i]
	}
	return (float64(below) + 0.5*float64(s.hist[b])) / float64(total)
}

// bucketOf maps a numeric value to its histogram bucket: bucket mid holds
// zero, positives occupy (mid, HistBuckets) and negatives [0, mid) by
// exponent band (two binary orders of magnitude per bucket, clamped). The
// mapping is monotone non-decreasing in v, which is what makes range
// selectivities a prefix/suffix sum.
func bucketOf(v float64) int {
	const mid = HistBuckets / 2
	if v == 0 || math.IsNaN(v) {
		return mid
	}
	band := func(abs float64) int {
		// Ilogb(|v|) for doubles is within [-1074, 1023]; shift and halve
		// into [0, mid-2].
		b := (math.Ilogb(abs) + 20) / 2
		if b < 0 {
			b = 0
		}
		if b > mid-2 {
			b = mid - 2
		}
		return b
	}
	if v > 0 {
		return mid + 1 + band(v)
	}
	return mid - 1 - band(-v)
}

// ---------------------------------------------------------------------------
// Dump / FromDump: the deterministic flat form used by the snapshot codec
// and by tests comparing statistics versions.

// NodeCount is one (node, refcount) pair of a dump.
type NodeCount struct {
	Node ssd.NodeID
	N    int
}

// LabelCard is the dumped record of one label: occurrence count plus the
// source and destination refcount maps, sorted by node.
type LabelCard struct {
	Label ssd.Label
	Count int
	Srcs  []NodeCount
	Dsts  []NodeCount
}

// Dump is the deterministic flat view of a Stats version.
type Dump struct {
	Edges  int
	Hist   [HistBuckets]int64
	Labels []LabelCard
}

func sortedCounts(m map[ssd.NodeID]int) []NodeCount {
	out := make([]NodeCount, 0, len(m))
	for n, c := range m {
		out = append(out, NodeCount{Node: n, N: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Dump returns the statistics in deterministic flat form: labels sorted by
// ssd.Label.Less, node lists sorted by id.
func (s *Stats) Dump() Dump {
	d := Dump{Edges: s.edges, Hist: s.hist}
	labels := make([]ssd.Label, 0, len(s.perLabel))
	for l := range s.perLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Less(labels[j]) })
	for _, l := range labels {
		ls := s.perLabel[l]
		d.Labels = append(d.Labels, LabelCard{
			Label: l,
			Count: ls.count,
			Srcs:  sortedCounts(ls.srcs),
			Dsts:  sortedCounts(ls.dsts),
		})
	}
	return d
}

// FromDump reconstructs a Stats version from its flat form, validating the
// invariants the codec relies on: sorted unique labels, sorted unique nodes,
// positive refcounts, and per-label refcount sums equal to the occurrence
// count (every edge contributes one source ref and one destination ref).
func FromDump(d Dump) (*Stats, error) {
	s := &Stats{edges: d.Edges, hist: d.Hist, perLabel: make(map[ssd.Label]*labelStat, len(d.Labels))}
	total := 0
	for i, lc := range d.Labels {
		if i > 0 && !d.Labels[i-1].Label.Less(lc.Label) {
			return nil, fmt.Errorf("stats: labels out of order at %v", lc.Label)
		}
		if lc.Count <= 0 {
			return nil, fmt.Errorf("stats: non-positive count for %v", lc.Label)
		}
		ls := &labelStat{
			count: lc.Count,
			srcs:  make(map[ssd.NodeID]int, len(lc.Srcs)),
			dsts:  make(map[ssd.NodeID]int, len(lc.Dsts)),
		}
		if err := fillCounts(ls.srcs, lc.Srcs, lc.Count, "source"); err != nil {
			return nil, fmt.Errorf("stats: label %v: %w", lc.Label, err)
		}
		if err := fillCounts(ls.dsts, lc.Dsts, lc.Count, "destination"); err != nil {
			return nil, fmt.Errorf("stats: label %v: %w", lc.Label, err)
		}
		s.perLabel[lc.Label] = ls
		total += lc.Count
	}
	if total != d.Edges {
		return nil, fmt.Errorf("stats: edge total %d != per-label sum %d", d.Edges, total)
	}
	return s, nil
}

func fillCounts(m map[ssd.NodeID]int, ncs []NodeCount, want int, what string) error {
	sum := 0
	for i, nc := range ncs {
		if i > 0 && ncs[i-1].Node >= nc.Node {
			return fmt.Errorf("%s refs out of order at node %d", what, nc.Node)
		}
		if nc.N <= 0 {
			return fmt.Errorf("non-positive %s refcount at node %d", what, nc.Node)
		}
		m[nc.Node] = nc.N
		sum += nc.N
	}
	if sum != want {
		return fmt.Errorf("%s refcount sum %d != count %d", what, sum, want)
	}
	return nil
}
