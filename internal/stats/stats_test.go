package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ssd"
)

// applyDeltaToGraph mutates g according to a randomly drawn batch and
// returns the delta describing it, mirroring internal/index's delta property
// test (and what internal/mutate produces). The label palette includes
// numeric values so the histogram is exercised.
func applyDeltaToGraph(g *ssd.Graph, rng *rand.Rand, ops int) ssd.Delta {
	var d ssd.Delta
	labels := []ssd.Label{
		ssd.Sym("a"), ssd.Sym("b"), ssd.Str("s1"), ssd.Str("s2"),
		ssd.Int(7), ssd.Int(-300), ssd.Float(7), ssd.Float(0.25),
		ssd.Bool(true), ssd.OID("&x"),
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0: // add
			from := ssd.NodeID(rng.Intn(g.NumNodes()))
			to := ssd.NodeID(rng.Intn(g.NumNodes()))
			l := labels[rng.Intn(len(labels))]
			g.AddEdge(from, l, to)
			d.Added = append(d.Added, ssd.EdgeRec{From: from, Label: l, To: to})
		case 1: // delete
			from := ssd.NodeID(rng.Intn(g.NumNodes()))
			es := g.Out(from)
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if g.DeleteEdge(from, e.Label, e.To) {
				d.Removed = append(d.Removed, ssd.EdgeRec{From: from, Label: e.Label, To: e.To})
			}
		default: // relabel
			from := ssd.NodeID(rng.Intn(g.NumNodes()))
			es := g.Out(from)
			if len(es) == 0 {
				continue
			}
			old := es[rng.Intn(len(es))].Label
			nl := labels[rng.Intn(len(labels))]
			if nl == old {
				continue
			}
			for _, e := range es {
				if e.Label == old {
					d.Removed = append(d.Removed, ssd.EdgeRec{From: from, Label: old, To: e.To})
					d.Added = append(d.Added, ssd.EdgeRec{From: from, Label: nl, To: e.To})
				}
			}
			g.Relabel(from, old, nl)
		}
	}
	return d
}

func randStatsGraph(rng *rand.Rand) *ssd.Graph {
	g := ssd.New()
	g.AddNodes(10 + rng.Intn(20))
	applyDeltaToGraph(g, rng, 60) // seed edges; discard the delta
	return g
}

// TestApplyMatchesRebuild is the incremental-maintenance property test: after
// any random mutation batch, the incrementally maintained statistics must
// equal a from-scratch rebuild, exactly — counts, distinct sets, refcounts,
// and histogram.
func TestApplyMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		g := randStatsGraph(rng)
		s := Build(g)
		// Chain several batches so drift would accumulate if Apply were
		// only approximately right.
		for batch := 0; batch < 3; batch++ {
			d := applyDeltaToGraph(g, rng, 1+rng.Intn(10))
			s = s.Apply(d)
		}
		want := Build(g)
		if !reflect.DeepEqual(s.Dump(), want.Dump()) {
			t.Fatalf("iter %d: incremental stats differ from rebuild:\n got %+v\nwant %+v",
				iter, s.Dump(), want.Dump())
		}
	}
}

// TestApplyLeavesReceiverUntouched pins the copy-on-write contract: the old
// statistics version keeps answering for the old graph after Apply.
func TestApplyLeavesReceiverUntouched(t *testing.T) {
	g := ssd.New()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(g.Root(), ssd.Sym("x"), a)
	g.AddEdge(a, ssd.Int(42), b)
	s := Build(g)
	before := s.Dump()

	d := ssd.Delta{
		Added:   []ssd.EdgeRec{{From: g.Root(), Label: ssd.Sym("x"), To: b}},
		Removed: []ssd.EdgeRec{{From: a, Label: ssd.Int(42), To: b}},
	}
	s2 := s.Apply(d)

	if !reflect.DeepEqual(s.Dump(), before) {
		t.Fatalf("receiver changed by Apply:\n got %+v\nwant %+v", s.Dump(), before)
	}
	if s2.Count(ssd.Sym("x")) != 2 || s2.Count(ssd.Int(42)) != 0 {
		t.Fatalf("new version wrong: x=%d int42=%d", s2.Count(ssd.Sym("x")), s2.Count(ssd.Int(42)))
	}
	if s2.Edges() != s.Edges() {
		t.Fatalf("edge total: new %d, old %d (one add, one remove)", s2.Edges(), s.Edges())
	}
}

// TestApplyNormalizes: an edge added and removed within one batch never
// existed; neither record may reach the counts.
func TestApplyNormalizes(t *testing.T) {
	g := ssd.New()
	a := g.AddNode()
	s := Build(g)
	rec := ssd.EdgeRec{From: g.Root(), Label: ssd.Sym("ghost"), To: a}
	s2 := s.Apply(ssd.Delta{Added: []ssd.EdgeRec{rec}, Removed: []ssd.EdgeRec{rec}})
	if s2.Count(ssd.Sym("ghost")) != 0 || s2.Edges() != 0 {
		t.Fatalf("cancelled pair leaked into stats: count=%d edges=%d",
			s2.Count(ssd.Sym("ghost")), s2.Edges())
	}
}

func TestAccessors(t *testing.T) {
	g := ssd.New()
	n1, n2, n3 := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(g.Root(), ssd.Sym("t"), n1)
	g.AddEdge(g.Root(), ssd.Sym("t"), n2)
	g.AddEdge(n1, ssd.Sym("t"), n2)
	g.AddEdge(n2, ssd.Int(5), n3)
	g.AddEdge(n2, ssd.Int(500), n3)
	s := Build(g)
	if got := s.Count(ssd.Sym("t")); got != 3 {
		t.Errorf("Count(t) = %d, want 3", got)
	}
	if got := s.DistinctSources(ssd.Sym("t")); got != 2 {
		t.Errorf("DistinctSources(t) = %d, want 2", got)
	}
	if got := s.DistinctChildren(ssd.Sym("t")); got != 2 {
		t.Errorf("DistinctChildren(t) = %d, want 2", got)
	}
	if got := s.NumericCount(); got != 2 {
		t.Errorf("NumericCount = %d, want 2", got)
	}
	// 5 and 500 land in different buckets; a threshold between them splits
	// the mass (each bucket boundary contributes its half-bucket term).
	if got := s.FracGreater(50); got <= 0.4 || got >= 0.6 {
		t.Errorf("FracGreater(50) = %g, want ~0.5", got)
	}
	if got := s.FracLess(50); got <= 0.4 || got >= 0.6 {
		t.Errorf("FracLess(50) = %g, want ~0.5", got)
	}
	if got := s.FracGreater(1e12); got != 0 {
		t.Errorf("FracGreater(1e12) = %g, want 0", got)
	}
}

// TestBucketOfMonotone pins the histogram bucket function's monotonicity —
// the property that makes range selectivity a prefix/suffix sum — across
// sign changes and the clamped extremes.
func TestBucketOfMonotone(t *testing.T) {
	vals := []float64{
		math.Inf(-1), -1e300, -65536, -300, -7, -1, -0.25, -1e-300,
		0, 1e-300, 0.25, 1, 7, 300, 65536, 1e300, math.Inf(1),
	}
	prev := -1
	for _, v := range vals {
		b := bucketOf(v)
		if b < 0 || b >= HistBuckets {
			t.Fatalf("bucketOf(%g) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("bucketOf not monotone at %g: %d < %d", v, b, prev)
		}
		prev = b
	}
}

// TestFromDumpRejectsCorruption: the codec relies on FromDump to reject
// structurally damaged dumps.
func TestFromDumpRejectsCorruption(t *testing.T) {
	g := ssd.New()
	a := g.AddNode()
	g.AddEdge(g.Root(), ssd.Sym("x"), a)
	g.AddEdge(g.Root(), ssd.Sym("y"), a)
	good := Build(g).Dump()
	if _, err := FromDump(good); err != nil {
		t.Fatalf("valid dump rejected: %v", err)
	}

	breakers := map[string]func(d *Dump){
		"labels out of order": func(d *Dump) { d.Labels[0], d.Labels[1] = d.Labels[1], d.Labels[0] },
		"bad edge total":      func(d *Dump) { d.Edges++ },
		"refcount sum":        func(d *Dump) { d.Labels[0].Srcs[0].N++ },
		"non-positive count":  func(d *Dump) { d.Labels[0].Count = 0 },
		"nodes out of order": func(d *Dump) {
			d.Labels[0].Dsts = []NodeCount{{Node: 5, N: 1}, {Node: 3, N: 1}}
		},
	}
	for name, damage := range breakers {
		d := Build(g).Dump() // fresh copy; damage mutates in place
		damage(&d)
		if _, err := FromDump(d); err == nil {
			t.Errorf("%s: corrupt dump accepted", name)
		}
	}
}
