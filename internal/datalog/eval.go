package datalog

import (
	"fmt"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Mode selects the bottom-up evaluation strategy.
type Mode int

// Evaluation modes: Naive re-joins full relations every round; SemiNaive
// restricts one body occurrence per rule to the previous round's delta.
const (
	Naive Mode = iota
	SemiNaive
)

// Relation is a set of tuples with hash indexes per position, built lazily.
type Relation struct {
	Arity  int
	tuples []Tuple
	seen   map[string]bool
	idx    map[int]map[string][]int
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity, seen: map[string]bool{}}
}

// Add inserts a tuple, reporting whether it was new.
func (r *Relation) Add(t Tuple) bool {
	k := t.key()
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	i := len(r.tuples)
	r.tuples = append(r.tuples, t)
	for pos, ix := range r.idx {
		vk := string(t[pos].appendKey(nil))
		ix[vk] = append(ix[vk], i)
	}
	return true
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the backing tuple slice (not to be mutated).
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Has reports membership.
func (r *Relation) Has(t Tuple) bool { return r.seen[t.key()] }

// lookup returns indices of tuples whose value at pos equals v, building the
// position index on first use.
func (r *Relation) lookup(pos int, v Value) []int {
	if r.idx == nil {
		r.idx = map[int]map[string][]int{}
	}
	ix, ok := r.idx[pos]
	if !ok {
		ix = map[string][]int{}
		for i, t := range r.tuples {
			vk := string(t[pos].appendKey(nil))
			ix[vk] = append(ix[vk], i)
		}
		r.idx[pos] = ix
	}
	return ix[string(v.appendKey(nil))]
}

// Engine evaluates programs against one graph.
type Engine struct {
	g   ssd.GraphStore
	edb map[string]*Relation

	// Joins counts tuple-match attempts during Run — the work metric
	// experiment E4 reports alongside wall time.
	Joins int
}

// NewEngine materializes the graph's EDB: edge/3 over all edges and root/1.
// Any GraphStore works — the engine is bottom-up, so the store is read once
// here and only Root is consulted later.
func NewEngine(g ssd.GraphStore) *Engine {
	edge := NewRelation(3)
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			edge.Add(Tuple{NodeValue(ssd.NodeID(v)), LabelValue(e.Label), NodeValue(e.To)})
		}
	}
	root := NewRelation(1)
	root.Add(Tuple{NodeValue(g.Root())})
	return &Engine{g: g, edb: map[string]*Relation{"edge": edge, "root": root}}
}

var builtinArity = map[string]int{
	"isint": 1, "isfloat": 1, "isstring": 1, "issymbol": 1, "isbool": 1, "isdata": 1,
	"lt": 2, "le": 2, "gt": 2, "ge": 2, "eq": 2, "neq": 2, "like": 2,
}

// Run evaluates the program and returns every IDB relation.
func (e *Engine) Run(prog *Program, mode Mode) (map[string]*Relation, error) {
	idbArity, err := validate(prog, e.edb)
	if err != nil {
		return nil, err
	}
	strata, err := stratify(prog, idbArity)
	if err != nil {
		return nil, err
	}
	idb := make(map[string]*Relation, len(idbArity))
	for p, ar := range idbArity {
		idb[p] = NewRelation(ar)
	}
	for si := range strata {
		for ri := range strata[si] {
			strata[si][ri] = reorderBody(strata[si][ri])
		}
	}
	for _, rules := range strata {
		if mode == Naive {
			e.runNaive(rules, idb)
		} else {
			e.runSemiNaive(rules, idb, idbArity)
		}
	}
	return idb, nil
}

// runNaive loops full-relation rule application to fixpoint.
func (e *Engine) runNaive(rules []Rule, idb map[string]*Relation) {
	for {
		added := false
		for _, r := range rules {
			derived := e.applyRule(r, idb, nil, -1)
			rel := idb[r.Head.Pred]
			for _, t := range derived {
				if rel.Add(t) {
					added = true
				}
			}
		}
		if !added {
			return
		}
	}
}

// runSemiNaive applies the standard delta iteration within one stratum.
func (e *Engine) runSemiNaive(rules []Rule, idb map[string]*Relation, idbArity map[string]int) {
	stratumPreds := map[string]bool{}
	for _, r := range rules {
		stratumPreds[r.Head.Pred] = true
	}
	// Round 0: full evaluation seeds the deltas.
	delta := map[string]*Relation{}
	for p := range stratumPreds {
		delta[p] = NewRelation(idbArity[p])
	}
	for _, r := range rules {
		rel := idb[r.Head.Pred]
		for _, t := range e.applyRule(r, idb, nil, -1) {
			if rel.Add(t) {
				delta[r.Head.Pred].Add(t)
			}
		}
	}
	for {
		next := map[string]*Relation{}
		for p := range stratumPreds {
			next[p] = NewRelation(idbArity[p])
		}
		any := false
		for _, r := range rules {
			// One evaluation per occurrence of a same-stratum IDB atom,
			// with that occurrence restricted to the delta.
			for j, lit := range r.Body {
				if lit.Negated || !stratumPreds[lit.Atom.Pred] {
					continue
				}
				d := delta[lit.Atom.Pred]
				if d.Len() == 0 {
					continue
				}
				rel := idb[r.Head.Pred]
				for _, t := range e.applyRule(r, idb, d, j) {
					if rel.Add(t) {
						next[r.Head.Pred].Add(t)
						any = true
					}
				}
			}
		}
		if !any {
			return
		}
		delta = next
	}
}

// applyRule evaluates a rule body and returns the derived head tuples.
// When deltaAt ≥ 0, body literal deltaAt reads from delta instead of its
// full relation.
func (e *Engine) applyRule(r Rule, idb map[string]*Relation, delta *Relation, deltaAt int) []Tuple {
	var out []Tuple
	env := map[string]Value{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(r.Body) {
			t := make(Tuple, len(r.Head.Args))
			for k, a := range r.Head.Args {
				t[k] = resolveTerm(a, env, e.g)
			}
			out = append(out, t)
			return
		}
		lit := r.Body[i]
		if _, isBuiltin := builtinArity[lit.Atom.Pred]; isBuiltin {
			ok, err := e.evalBuiltin(lit.Atom, env)
			if err == nil && ok != lit.Negated {
				rec(i + 1)
			}
			return
		}
		rel := e.relationOf(lit.Atom.Pred, idb)
		if i == deltaAt {
			rel = delta
		}
		if rel == nil {
			return
		}
		if lit.Negated {
			t := make(Tuple, len(lit.Atom.Args))
			for k, a := range lit.Atom.Args {
				t[k] = resolveTerm(a, env, e.g)
			}
			e.Joins++
			if !rel.Has(t) {
				rec(i + 1)
			}
			return
		}
		e.scanAtom(lit.Atom, rel, env, func() { rec(i + 1) })
	}
	rec(0)
	return out
}

// scanAtom enumerates matching tuples, extending env for each and calling k.
func (e *Engine) scanAtom(a Atom, rel *Relation, env map[string]Value, k func()) {
	// Choose an indexed position: the first argument already bound.
	probe := -1
	var probeVal Value
	for i, t := range a.Args {
		if !t.IsVar() {
			probe, probeVal = i, resolveTerm(t, env, e.g)
			break
		}
		if v, ok := env[t.Var]; ok {
			probe, probeVal = i, v
			break
		}
	}
	tryTuple := func(t Tuple) {
		e.Joins++
		var bound []string
		ok := true
		for i, arg := range a.Args {
			want := t[i]
			if !arg.IsVar() {
				if !resolveTerm(arg, env, e.g).Equal(want) {
					ok = false
					break
				}
				continue
			}
			if v, have := env[arg.Var]; have {
				if !v.Equal(want) {
					ok = false
					break
				}
				continue
			}
			env[arg.Var] = want
			bound = append(bound, arg.Var)
		}
		if ok {
			k()
		}
		for _, v := range bound {
			delete(env, v)
		}
	}
	if probe >= 0 {
		for _, i := range rel.lookup(probe, probeVal) {
			tryTuple(rel.tuples[i])
		}
		return
	}
	for _, t := range rel.tuples {
		tryTuple(t)
	}
}

func (e *Engine) relationOf(pred string, idb map[string]*Relation) *Relation {
	if r, ok := e.edb[pred]; ok {
		return r
	}
	return idb[pred]
}

func resolveTerm(t Term, env map[string]Value, g ssd.GraphStore) Value {
	if t.IsVar() {
		return env[t.Var]
	}
	if t.Const.IsNode && t.Const.Node == rootSentinel {
		return NodeValue(g.Root())
	}
	return t.Const
}

func (e *Engine) evalBuiltin(a Atom, env map[string]Value) (bool, error) {
	vals := make([]Value, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			v, ok := env[t.Var]
			if !ok {
				return false, fmt.Errorf("datalog: builtin %s: unbound variable %s", a.Pred, t.Var)
			}
			vals[i] = v
		} else {
			vals[i] = resolveTerm(t, env, e.g)
		}
	}
	label := func(i int) (ssd.Label, bool) {
		if vals[i].IsNode {
			return ssd.Label{}, false
		}
		return vals[i].Label, true
	}
	switch a.Pred {
	case "isint", "isfloat", "isstring", "issymbol", "isbool", "isdata":
		l, ok := label(0)
		if !ok {
			return false, nil
		}
		switch a.Pred {
		case "isint":
			return l.Kind() == ssd.KindInt, nil
		case "isfloat":
			return l.Kind() == ssd.KindFloat, nil
		case "isstring":
			return l.Kind() == ssd.KindString, nil
		case "issymbol":
			return l.Kind() == ssd.KindSymbol, nil
		case "isbool":
			return l.Kind() == ssd.KindBool, nil
		default:
			return l.IsData(), nil
		}
	case "eq":
		return vals[0].Equal(vals[1]), nil
	case "neq":
		return !vals[0].Equal(vals[1]), nil
	case "lt", "le", "gt", "ge":
		a0, ok0 := label(0)
		a1, ok1 := label(1)
		if !ok0 || !ok1 {
			return false, nil
		}
		op := map[string]pathexpr.CmpOp{
			"lt": pathexpr.OpLT, "le": pathexpr.OpLE,
			"gt": pathexpr.OpGT, "ge": pathexpr.OpGE,
		}[a.Pred]
		return op.Apply(a0, a1), nil
	case "like":
		l, ok := label(0)
		if !ok {
			return false, nil
		}
		pat, ok2 := label(1)
		if !ok2 {
			return false, nil
		}
		ps, isStr := pat.Text()
		if !isStr {
			return false, fmt.Errorf("datalog: like pattern must be a string")
		}
		return pathexpr.LikePred{Pattern: ps}.Match(l), nil
	}
	return false, fmt.Errorf("datalog: unknown builtin %s", a.Pred)
}

// ---------------------------------------------------------------------------
// Validation and stratification

func validate(prog *Program, edb map[string]*Relation) (map[string]int, error) {
	idbArity := map[string]int{}
	for _, r := range prog.Rules {
		if _, isEDB := edb[r.Head.Pred]; isEDB {
			return nil, fmt.Errorf("datalog: rule head %s redefines EDB predicate", r.Head.Pred)
		}
		if _, isB := builtinArity[r.Head.Pred]; isB {
			return nil, fmt.Errorf("datalog: rule head %s redefines builtin", r.Head.Pred)
		}
		if ar, ok := idbArity[r.Head.Pred]; ok && ar != len(r.Head.Args) {
			return nil, fmt.Errorf("datalog: %s used with arities %d and %d", r.Head.Pred, ar, len(r.Head.Args))
		}
		idbArity[r.Head.Pred] = len(r.Head.Args)
	}
	// Arity checks for body atoms + safety (range restriction).
	for _, r := range prog.Rules {
		positive := map[string]bool{}
		for _, lit := range r.Body {
			ar := -1
			if a, ok := builtinArity[lit.Atom.Pred]; ok {
				ar = a
			} else if rel, ok := edb[lit.Atom.Pred]; ok {
				ar = rel.Arity
			} else if a, ok := idbArity[lit.Atom.Pred]; ok {
				ar = a
			} else {
				return nil, fmt.Errorf("datalog: unknown predicate %s in rule %s", lit.Atom.Pred, r)
			}
			if ar != len(lit.Atom.Args) {
				return nil, fmt.Errorf("datalog: %s expects %d args, got %d", lit.Atom.Pred, ar, len(lit.Atom.Args))
			}
			_, isBuiltin := builtinArity[lit.Atom.Pred]
			if !lit.Negated && !isBuiltin {
				for _, t := range lit.Atom.Args {
					if t.IsVar() {
						positive[t.Var] = true
					}
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar() && !positive[t.Var] {
				return nil, fmt.Errorf("datalog: unsafe rule %s: head variable %s not bound by a positive atom", r, t.Var)
			}
		}
		for _, lit := range r.Body {
			_, isBuiltin := builtinArity[lit.Atom.Pred]
			if lit.Negated || isBuiltin {
				for _, t := range lit.Atom.Args {
					if t.IsVar() && !positive[t.Var] {
						return nil, fmt.Errorf("datalog: unsafe rule %s: variable %s in %s not bound by a positive atom", r, t.Var, lit)
					}
				}
			}
		}
	}
	return idbArity, nil
}

// reorderBody delays builtins and negated literals until their variables
// are bound by earlier positive atoms, so left-to-right evaluation is always
// well-defined regardless of how the user ordered the body.
func reorderBody(r Rule) Rule {
	isFilter := func(lit Literal) bool {
		_, b := builtinArity[lit.Atom.Pred]
		return b || lit.Negated
	}
	allBound := func(lit Literal, bound map[string]bool) bool {
		for _, t := range lit.Atom.Args {
			if t.IsVar() && !bound[t.Var] {
				return false
			}
		}
		return true
	}
	bound := map[string]bool{}
	remaining := append([]Literal(nil), r.Body...)
	out := make([]Literal, 0, len(remaining))
	for len(remaining) > 0 {
		picked := -1
		for i, lit := range remaining {
			if isFilter(lit) && allBound(lit, bound) {
				picked = i
				break
			}
		}
		if picked < 0 {
			for i, lit := range remaining {
				if !isFilter(lit) {
					picked = i
					break
				}
			}
		}
		if picked < 0 {
			picked = 0 // only unbindable filters left; validate() rejects this
		}
		lit := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		if !isFilter(lit) {
			for _, t := range lit.Atom.Args {
				if t.IsVar() {
					bound[t.Var] = true
				}
			}
		}
		out = append(out, lit)
	}
	r.Body = out
	return r
}

// stratify orders IDB predicates so that negation never looks upward.
// It returns rules grouped by stratum, ascending.
func stratify(prog *Program, idbArity map[string]int) ([][]Rule, error) {
	stratum := map[string]int{}
	for p := range idbArity {
		stratum[p] = 0
	}
	n := len(idbArity)
	for iter := 0; ; iter++ {
		if iter > n*n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
		}
		changed := false
		for _, r := range prog.Rules {
			h := r.Head.Pred
			for _, lit := range r.Body {
				q := lit.Atom.Pred
				if _, isIDB := idbArity[q]; !isIDB {
					continue
				}
				min := stratum[q]
				if lit.Negated {
					min++
				}
				if stratum[h] < min {
					stratum[h] = min
					changed = true
					if stratum[h] > n {
						return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Rule, maxS+1)
	for _, r := range prog.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}
