package datalog

import (
	"testing"

	"repro/internal/ssd"
)

func chain(n int) *ssd.Graph {
	g := ssd.New()
	cur := g.Root()
	for i := 0; i < n; i++ {
		cur = g.AddLeaf(cur, ssd.Sym("next"))
	}
	return g
}

func fig1(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Entry: #e1{Movie: {Title: "Casablanca",
	                    Cast: {1: "Bogart", 2: "Bacall"},
	                    Director: {"Curtiz"}}},
	 Entry: #e2{Movie: {Title: "Play it again, Sam",
	                    Cast: {Credit: {Actors: {"Allen"}}},
	                    Director: {"Allen"},
	                    References: #e1}}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runProg(t *testing.T, g *ssd.Graph, src string, mode Mode) map[string]*Relation {
	t.Helper()
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := NewEngine(g).Run(prog, mode)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestReachabilityChain(t *testing.T) {
	g := chain(10)
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).`
	for _, mode := range []Mode{Naive, SemiNaive} {
		res := runProg(t, g, src, mode)
		if got := res["reach"].Len(); got != 11 {
			t.Errorf("mode %v: reach = %d, want 11", mode, got)
		}
	}
}

func TestNaiveSemiNaiveAgree(t *testing.T) {
	g := fig1(t)
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).
		pair(X, Y) :- reach(X), edge(X, _, Y).
		stringedge(L) :- reach(X), edge(X, L, _), isstring(L).`
	a := runProg(t, g, src, Naive)
	b := runProg(t, g, src, SemiNaive)
	for pred := range a {
		if a[pred].Len() != b[pred].Len() {
			t.Errorf("%s: naive %d vs semi-naive %d tuples", pred, a[pred].Len(), b[pred].Len())
		}
		for _, tup := range a[pred].Tuples() {
			if !b[pred].Has(tup) {
				t.Errorf("%s: tuple %s missing from semi-naive result", pred, tup)
			}
		}
	}
}

func TestSemiNaiveDoesLessWork(t *testing.T) {
	g := chain(60)
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).`
	prog := MustParseProgram(src)
	en := NewEngine(g)
	if _, err := en.Run(prog, Naive); err != nil {
		t.Fatal(err)
	}
	naiveJoins := en.Joins
	es := NewEngine(g)
	if _, err := es.Run(prog, SemiNaive); err != nil {
		t.Fatal(err)
	}
	semiJoins := es.Joins
	if semiJoins >= naiveJoins {
		t.Errorf("semi-naive joins (%d) should be < naive joins (%d) on a long chain", semiJoins, naiveJoins)
	}
}

func TestCycleTermination(t *testing.T) {
	g := ssd.MustParse(`#r{a: {b: #r}}`)
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).`
	res := runProg(t, g, src, SemiNaive)
	if res["reach"].Len() != 2 {
		t.Errorf("reach over 2-cycle = %d, want 2", res["reach"].Len())
	}
}

func TestSameGeneration(t *testing.T) {
	// Classic recursive query: nodes at the same depth below the root of a
	// full binary tree.
	g := ssd.New()
	l1 := g.AddLeaf(g.Root(), ssd.Sym("c"))
	r1 := g.AddLeaf(g.Root(), ssd.Sym("c"))
	g.AddLeaf(l1, ssd.Sym("c"))
	g.AddLeaf(r1, ssd.Sym("c"))
	src := `
		sg(X, X) :- root(X).
		sg(X, Y) :- sg(A, B), edge(A, _, X), edge(B, _, Y).`
	res := runProg(t, g, src, SemiNaive)
	// (root,root) + 4 pairs at depth 1 + 4 pairs at depth 2.
	if res["sg"].Len() != 9 {
		t.Errorf("sg = %d, want 9", res["sg"].Len())
	}
}

func TestLabelsAndBuiltins(t *testing.T) {
	g := fig1(t)
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).
		bigint(L) :- reach(X), edge(X, L, _), isint(L), gt(L, 1).
		allen(X) :- reach(X), edge(X, "Allen", _).
		titled(L) :- reach(X), edge(X, 'Title', N), edge(N, L, _), isstring(L).`
	res := runProg(t, g, src, SemiNaive)
	if res["bigint"].Len() != 1 { // the Cast index 2
		t.Errorf("bigint = %d, want 1", res["bigint"].Len())
	}
	if res["allen"].Len() != 2 { // Actors object and Director object
		t.Errorf("allen = %d, want 2", res["allen"].Len())
	}
	if res["titled"].Len() != 2 {
		t.Errorf("titled = %d, want 2", res["titled"].Len())
	}
}

func TestLikeBuiltin(t *testing.T) {
	g := fig1(t)
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).
		act(L) :- reach(X), edge(X, L, _), issymbol(L), like(L, "Act%").`
	res := runProg(t, g, src, SemiNaive)
	if res["act"].Len() != 1 { // Actors
		t.Errorf("act = %d, want 1", res["act"].Len())
	}
}

func TestStratifiedNegation(t *testing.T) {
	g := fig1(t)
	// Movies that do NOT reference anything.
	src := `
		movie(M) :- root(R), edge(R, 'Entry', E), edge(E, 'Movie', M).
		referencing(M) :- movie(M), edge(M, 'References', _).
		standalone(M) :- movie(M), not referencing(M).`
	res := runProg(t, g, src, SemiNaive)
	if res["movie"].Len() != 2 {
		t.Fatalf("movie = %d", res["movie"].Len())
	}
	if res["referencing"].Len() != 1 {
		t.Errorf("referencing = %d, want 1", res["referencing"].Len())
	}
	if res["standalone"].Len() != 1 {
		t.Errorf("standalone = %d, want 1", res["standalone"].Len())
	}
}

func TestNonStratifiable(t *testing.T) {
	src := `
		p(X) :- edge(X, _, _), not q(X).
		q(X) :- edge(X, _, _), not p(X).`
	prog := MustParseProgram(src)
	if _, err := NewEngine(chain(2)).Run(prog, SemiNaive); err == nil {
		t.Error("negation through recursion must be rejected")
	}
}

func TestUnsafeRules(t *testing.T) {
	cases := []string{
		`p(X) :- edge(_, _, _).`,                                  // head var unbound
		`p(X) :- edge(X, _, _), not q(Y). q(X) :- edge(X, _, _).`, // neg var unbound
		`p(X) :- isint(X).`,                                       // builtin-only binding
	}
	for _, src := range cases {
		prog, err := ParseProgram(src)
		if err != nil {
			t.Errorf("parse error for %q: %v", src, err)
			continue
		}
		if _, err := NewEngine(chain(2)).Run(prog, SemiNaive); err == nil {
			t.Errorf("unsafe program %q accepted", src)
		}
	}
}

func TestBodyReorderingBuiltinFirst(t *testing.T) {
	// A builtin written before its variable is bound must still work.
	g := fig1(t)
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).
		ints(L) :- isint(L), reach(X), edge(X, L, _).`
	res := runProg(t, g, src, SemiNaive)
	if res["ints"].Len() != 2 { // 1 and 2
		t.Errorf("ints = %d, want 2", res["ints"].Len())
	}
}

func TestFacts(t *testing.T) {
	g := chain(1)
	src := `
		color("red").
		color("blue").
		colored(X, C) :- edge(_, _, X), color(C).`
	res := runProg(t, g, src, SemiNaive)
	if res["color"].Len() != 2 {
		t.Errorf("color = %d", res["color"].Len())
	}
	if res["colored"].Len() != 2 { // 1 node × 2 colors
		t.Errorf("colored = %d", res["colored"].Len())
	}
}

func TestArityAndUnknownPredErrors(t *testing.T) {
	for _, src := range []string{
		`p(X) :- edge(X, _).`,                              // wrong arity
		`p(X) :- mystery(X).`,                              // unknown predicate
		`edge(X, X, X) :- edge(X, _, _).`,                  // redefines EDB
		`p(X) :- edge(X, _, _). p(X, Y) :- edge(X, _, Y).`, // inconsistent arity
	} {
		prog, err := ParseProgram(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := NewEngine(chain(2)).Run(prog, SemiNaive); err == nil {
			t.Errorf("program %q accepted", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`p(X)`,         // missing period
		`p() .`,        // empty args
		`p(X) :- .`,    // empty body
		`:- p(X).`,     // missing head
		`p(X) :- q(X)`, // missing period
		`p("unterminated) .`,
	} {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestRootConstant(t *testing.T) {
	g := chain(3)
	src := `first(Y) :- edge(root, _, Y).`
	res := runProg(t, g, src, SemiNaive)
	if res["first"].Len() != 1 {
		t.Errorf("first = %d, want 1", res["first"].Len())
	}
}

func TestProgramPrint(t *testing.T) {
	src := `p(X, "s") :- edge(X, 'Title', _), not q(X), isint(X).
q(X) :- edge(X, _, _).`
	prog := MustParseProgram(src)
	printed := prog.String()
	re, err := ParseProgram(printed)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", printed, err)
	}
	if len(re.Rules) != len(prog.Rules) {
		t.Error("rule count changed in round trip")
	}
}

// Property: naive and semi-naive agree on random graphs for recursive
// reachability and pair programs.
func TestModesAgreeOnRandomGraphsProperty(t *testing.T) {
	src := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).
		pair(X, L) :- reach(X), edge(X, L, _), isdata(L).`
	prog := MustParseProgram(src)
	for seed := int64(0); seed < 25; seed++ {
		g := randomDlGraph(seed, 15, 35)
		a, err := NewEngine(g).Run(prog, Naive)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewEngine(g).Run(prog, SemiNaive)
		if err != nil {
			t.Fatal(err)
		}
		for pred := range a {
			if a[pred].Len() != b[pred].Len() {
				t.Fatalf("seed %d: %s: %d vs %d", seed, pred, a[pred].Len(), b[pred].Len())
			}
			for _, tup := range a[pred].Tuples() {
				if !b[pred].Has(tup) {
					t.Fatalf("seed %d: %s: missing %s", seed, pred, tup)
				}
			}
		}
	}
}

func randomDlGraph(seed int64, nodes, edges int) *ssd.Graph {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567
	next := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	for i := 1; i < nodes; i++ {
		ids = append(ids, g.AddNode())
	}
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Int(3), ssd.Str("s"), ssd.Float(0.5)}
	for i := 0; i < edges; i++ {
		g.AddEdge(ids[next(len(ids))], labels[next(len(labels))], ids[next(len(ids))])
	}
	return g
}

// Relation indexes must stay consistent as tuples are added after a lookup
// built the index.
func TestRelationIndexConsistencyAfterGrowth(t *testing.T) {
	r := NewRelation(2)
	v := func(i int) Value { return LabelValue(ssd.Int(int64(i))) }
	r.Add(Tuple{v(1), v(10)})
	// Force index construction on position 0.
	if got := len(r.lookup(0, v(1))); got != 1 {
		t.Fatalf("lookup = %d", got)
	}
	r.Add(Tuple{v(1), v(20)})
	r.Add(Tuple{v(2), v(30)})
	if got := len(r.lookup(0, v(1))); got != 2 {
		t.Errorf("index not maintained on growth: %d", got)
	}
	if got := len(r.lookup(0, v(2))); got != 1 {
		t.Errorf("new key missing: %d", got)
	}
}
