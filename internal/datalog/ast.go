// Package datalog implements the paper's first computational strategy for
// semistructured data (§3): "model the graph as a relational database" —
// one ternary relation edge(from, label, to) — "and exploit a relational
// query language", extended with recursion into the "graph datalog" the
// paper says unbounded searches require [26, 16].
//
// The engine supports:
//
//   - the EDB predicates edge/3 (the graph) and root/1 (the distinguished
//     root, addressing the paper's point 4 — queries concern what is
//     accessible from the root);
//   - recursive IDB rules with set semantics;
//   - stratified negation (`not p(...)`, all arguments bound);
//   - built-in label filters (isint, isstring, issymbol, isfloat, isbool,
//     isdata, lt, le, gt, ge, eq, neq, like), addressing point 1 — labels
//     come from a heterogeneous collection of types;
//   - naive and semi-naive bottom-up evaluation (experiment E4 measures
//     the difference).
//
// Example — the titles of everything reachable from a movie entry:
//
//	movie(M)      :- root(R), edge(R, Entry, E), edge(E, Movie, M).
//	reach(M, M)   :- movie(M).
//	reach(M, Y)   :- reach(M, X), edge(X, _, Y).
//	title(M, T)   :- reach(M, X), edge(X, Title, N), edge(N, T, L), isstring(T).
package datalog

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"repro/internal/ssd"
)

// Value is a datalog constant: a graph node or a label.
type Value struct {
	IsNode bool
	Node   ssd.NodeID
	Label  ssd.Label
}

// NodeValue wraps a node id.
func NodeValue(n ssd.NodeID) Value { return Value{IsNode: true, Node: n} }

// LabelValue wraps a label.
func LabelValue(l ssd.Label) Value { return Value{Label: l} }

// Equal compares values (labels with numeric overloading).
func (v Value) Equal(w Value) bool {
	if v.IsNode != w.IsNode {
		return false
	}
	if v.IsNode {
		return v.Node == w.Node
	}
	return v.Label.Equal(w.Label)
}

func (v Value) String() string {
	if v.IsNode {
		return fmt.Sprintf("node(%d)", v.Node)
	}
	return v.Label.String()
}

func (v Value) appendKey(buf []byte) []byte {
	if v.IsNode {
		buf = append(buf, 'n')
		return binary.AppendUvarint(buf, uint64(v.Node))
	}
	buf = append(buf, 'l', byte(v.Label.Kind()))
	switch v.Label.Kind() {
	case ssd.KindSymbol:
		s, _ := v.Label.Symbol()
		buf = append(buf, s...)
	case ssd.KindString:
		s, _ := v.Label.Text()
		buf = append(buf, s...)
	case ssd.KindOID:
		s, _ := v.Label.OIDVal()
		buf = append(buf, s...)
	case ssd.KindInt:
		n, _ := v.Label.IntVal()
		buf = binary.AppendVarint(buf, n)
	case ssd.KindFloat:
		f, _ := v.Label.FloatVal()
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
		buf = append(buf, tmp[:]...)
	case ssd.KindBool:
		b, _ := v.Label.BoolVal()
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// Tuple is one relation row.
type Tuple []Value

func (t Tuple) key() string {
	var buf []byte
	for _, v := range t {
		buf = v.appendKey(buf)
		buf = append(buf, 0)
	}
	return string(buf)
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Term is an argument of an atom: a variable or a constant. The anonymous
// variable `_` parses to a fresh variable per occurrence.
type Term struct {
	Var   string // non-empty for variables
	Const Value  // used when Var == ""
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Atom is pred(t1, ..., tn).
type Atom struct {
	Pred string
	Args []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		switch {
		case t.IsVar():
			parts[i] = t.Var
		default:
			parts[i] = termConstString(t.Const)
		}
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// termConstString renders a constant in re-parseable form: capitalized
// symbols are single-quoted so they do not read back as variables.
func termConstString(v Value) string {
	if !v.IsNode {
		if s, ok := v.Label.Symbol(); ok && s != "" {
			r := rune(s[0])
			if r >= 'A' && r <= 'Z' {
				return "'" + s + "'"
			}
		}
	}
	return v.String()
}

// Literal is an atom or its negation.
type Literal struct {
	Atom    Atom
	Negated bool
}

func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is head :- body. An empty body is a fact.
type Rule struct {
	Head Atom
	Body []Literal
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a list of rules.
type Program struct {
	Rules []Rule
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
