package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/ssd"
)

// ParseProgram parses datalog rules. Syntax:
//
//	rule    := atom (':-' literal (',' literal)*)? '.'
//	literal := 'not' atom | atom
//	atom    := ident '(' term (',' term)* ')'
//	term    := Variable | '_' | 'root' | symbol | "string" | number | bool
//
// Variables start with an upper-case letter; `_` is a fresh anonymous
// variable per occurrence; `root` denotes the graph root node; lower-case
// identifiers are symbol-label constants, and capitalized symbols must be
// quoted with single quotes ('Title', 'Movie') to distinguish them from
// variables. Comments run from % to newline.
func ParseProgram(src string) (*Program, error) {
	p := &dlParser{lex: newDlLexer(src)}
	p.lex.next()
	prog := &Program{}
	for p.lex.tok != dlEOF {
		if p.lex.tok == dlError {
			return nil, p.lex.err
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// MustParseProgram is ParseProgram but panics on error.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

type dlToken int

const (
	dlEOF   dlToken = iota
	dlIdent         // lowercase ident (predicate or symbol constant)
	dlVar           // Uppercase ident
	dlUnder         // _
	dlString
	dlInt
	dlFloat
	dlLParen
	dlRParen
	dlComma
	dlPeriod
	dlImplies // :-
	dlQuoted  // 'Symbol'
	dlError
)

type dlLexer struct {
	src   string
	pos   int
	tok   dlToken
	text  string
	err   error
	fresh int // anonymous variable counter
}

func newDlLexer(src string) *dlLexer { return &dlLexer{src: src} }

func (lx *dlLexer) errorf(format string, args ...interface{}) {
	if lx.err == nil {
		lx.err = fmt.Errorf("datalog: offset %d: "+format, append([]interface{}{lx.pos}, args...)...)
	}
	lx.tok = dlError
}

func (lx *dlLexer) next() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		if c == '%' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		lx.tok = dlEOF
		return
	}
	c := lx.src[lx.pos]
	switch {
	case c == ':' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
		lx.pos += 2
		lx.tok = dlImplies
	case c == '(':
		lx.pos++
		lx.tok = dlLParen
	case c == ')':
		lx.pos++
		lx.tok = dlRParen
	case c == ',':
		lx.pos++
		lx.tok = dlComma
	case c == '.':
		lx.pos++
		lx.tok = dlPeriod
	case c == '"':
		lx.lexString()
	case c == '\'':
		lx.lexQuotedSymbol()
	case c == '-' || c >= '0' && c <= '9':
		lx.lexNumber()
	case c == '_' && !dlFollowsIdent(lx.src, lx.pos):
		lx.pos++
		lx.tok = dlUnder
	case isDlIdentStart(rune(c)):
		lx.lexIdent()
	default:
		lx.errorf("unexpected character %q", c)
	}
}

func dlFollowsIdent(src string, pos int) bool {
	if pos+1 >= len(src) {
		return false
	}
	r, _ := utf8.DecodeRuneInString(src[pos+1:])
	return isDlIdentCont(r)
}

func (lx *dlLexer) lexString() {
	lx.pos++
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '"' {
			lx.pos++
			lx.tok, lx.text = dlString, b.String()
			return
		}
		if c == '\\' && lx.pos+1 < len(lx.src) {
			esc := lx.src[lx.pos+1]
			lx.pos += 2
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				lx.errorf("unknown escape \\%c", esc)
				return
			}
			continue
		}
		b.WriteByte(c)
		lx.pos++
	}
	lx.errorf("unterminated string")
}

func (lx *dlLexer) lexQuotedSymbol() {
	lx.pos++
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\'' {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		lx.errorf("unterminated quoted symbol")
		return
	}
	lx.text = lx.src[start:lx.pos]
	lx.pos++
	lx.tok = dlQuoted
}

func (lx *dlLexer) lexNumber() {
	start := lx.pos
	if lx.src[lx.pos] == '-' {
		lx.pos++
	}
	digits := 0
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
		digits++
	}
	if digits == 0 {
		lx.errorf("malformed number")
		return
	}
	isFloat := false
	// A '.' is a float point only when a digit follows; otherwise it is the
	// rule terminator (e.g. `p(3).`).
	if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '.' &&
		lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
		isFloat = true
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	lx.text = lx.src[start:lx.pos]
	if isFloat {
		lx.tok = dlFloat
	} else {
		lx.tok = dlInt
	}
}

func (lx *dlLexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isDlIdentCont(r) {
			break
		}
		lx.pos += size
	}
	lx.text = lx.src[start:lx.pos]
	r, _ := utf8.DecodeRuneInString(lx.text)
	if unicode.IsUpper(r) {
		lx.tok = dlVar
	} else {
		lx.tok = dlIdent
	}
}

func isDlIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isDlIdentCont(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type dlParser struct {
	lex *dlLexer
}

func (p *dlParser) parseRule() (Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: head}
	lx := p.lex
	if lx.tok == dlImplies {
		lx.next()
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return Rule{}, err
			}
			r.Body = append(r.Body, lit)
			if lx.tok == dlComma {
				lx.next()
				continue
			}
			break
		}
	}
	if lx.tok != dlPeriod {
		return Rule{}, fmt.Errorf("datalog: offset %d: expected '.' to end rule", lx.pos)
	}
	lx.next()
	return r, nil
}

func (p *dlParser) parseLiteral() (Literal, error) {
	lx := p.lex
	neg := false
	if lx.tok == dlIdent && lx.text == "not" {
		neg = true
		lx.next()
	}
	a, err := p.parseAtom()
	if err != nil {
		return Literal{}, err
	}
	return Literal{Atom: a, Negated: neg}, nil
}

func (p *dlParser) parseAtom() (Atom, error) {
	lx := p.lex
	if lx.tok != dlIdent {
		return Atom{}, fmt.Errorf("datalog: offset %d: expected predicate name", lx.pos)
	}
	a := Atom{Pred: lx.text}
	lx.next()
	if lx.tok != dlLParen {
		return Atom{}, fmt.Errorf("datalog: offset %d: expected '(' after %s", lx.pos, a.Pred)
	}
	lx.next()
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if lx.tok == dlComma {
			lx.next()
			continue
		}
		break
	}
	if lx.tok != dlRParen {
		return Atom{}, fmt.Errorf("datalog: offset %d: expected ')'", lx.pos)
	}
	lx.next()
	return a, nil
}

func (p *dlParser) parseTerm() (Term, error) {
	lx := p.lex
	switch lx.tok {
	case dlVar:
		t := Term{Var: lx.text}
		lx.next()
		return t, nil
	case dlUnder:
		lx.fresh++
		lx.next()
		return Term{Var: fmt.Sprintf("_anon%d", lx.fresh)}, nil
	case dlIdent:
		text := lx.text
		lx.next()
		switch text {
		case "root":
			return Term{Const: Value{IsNode: true, Node: rootSentinel}}, nil
		case "true":
			return Term{Const: LabelValue(ssd.Bool(true))}, nil
		case "false":
			return Term{Const: LabelValue(ssd.Bool(false))}, nil
		}
		return Term{Const: LabelValue(ssd.Sym(text))}, nil
	case dlString:
		t := Term{Const: LabelValue(ssd.Str(lx.text))}
		lx.next()
		return t, nil
	case dlQuoted:
		t := Term{Const: LabelValue(ssd.Sym(lx.text))}
		lx.next()
		return t, nil
	case dlInt:
		v, err := strconv.ParseInt(lx.text, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("datalog: bad integer %q: %v", lx.text, err)
		}
		lx.next()
		return Term{Const: LabelValue(ssd.Int(v))}, nil
	case dlFloat:
		v, err := strconv.ParseFloat(lx.text, 64)
		if err != nil {
			return Term{}, fmt.Errorf("datalog: bad float %q: %v", lx.text, err)
		}
		lx.next()
		return Term{Const: LabelValue(ssd.Float(v))}, nil
	case dlError:
		return Term{}, lx.err
	default:
		return Term{}, fmt.Errorf("datalog: offset %d: expected term", lx.pos)
	}
}

// rootSentinel marks the `root` constant before the engine substitutes the
// actual root node of the evaluated graph.
const rootSentinel = ssd.NodeID(-2)
