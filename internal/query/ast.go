// Package query implements the SQL-like query language §3 of the paper
// arrives at: a select-from-where syntax over path expressions, with tree
// variables and label variables to "indicate how paths or edges are to be
// tied together", regular expressions to constrain paths, and tree
// templates in the select clause to form new structures. It corresponds to
// the select fragment shared by UnQL [10] and Lorel [5].
//
// Example (over the Figure 1 database):
//
//	select {Title: T}
//	from   DB.Entry.Movie M,
//	       M.Title._ T,
//	       M.(Cast|Credit|Director|Actors|isint)*._ A
//	where  A = "Allen"
//
// Semantics notes:
//
//   - A tree variable's comparable values are the labels of its data edges;
//     comparisons are existentially overloaded (T = "x" holds if some data
//     edge of T carries "x") — the operator overloading the paper notes
//     Lorel requires.
//   - %L steps in from-paths bind label variables; `select {%L: X}` uses a
//     bound label to build output edges.
//   - Results follow UnQL's union semantics: the result is the set union of
//     the instantiated select template over all binding tuples.
package query

import (
	"strings"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Query is a parsed select-from-where query.
type Query struct {
	Select Template
	From   []Binding
	Where  Cond // nil when absent

	// Params lists the $parameter names occurring in the query, in first-
	// occurrence order (from-paths before where). Populated by Parse; a
	// query with parameters must be executed through a parameter-aware
	// entry point (Plan.Cursor, Options.Params, or SubstParams).
	Params []string
}

// Binding is one comma-separated element of the from clause: it walks Path
// from Source ("DB" or an earlier variable) and binds Var to each node
// reached (and any %label variables along the way).
type Binding struct {
	Source string
	Path   []PathStep
	Var    string
}

// PathStep is one top-level step of a from-path: either a regular path
// fragment or a label-variable binder.
type PathStep interface{ isStep() }

// RegexStep is a (possibly multi-edge) regular path fragment. It carries
// only the expression: every evaluation context (a plan, a naive
// evaluator) compiles its own automaton, because automata hold mutable
// lazy-DFA caches and sharing one across concurrent executions races.
type RegexStep struct {
	Expr pathexpr.Expr
}

// LabelVarStep traverses exactly one edge and binds its label to Name.
type LabelVarStep struct{ Name string }

// PathVarStep traverses any path (like `_*`) and binds the variable to one
// witness label sequence — the shortest, BFS order — per node reached. This
// is the third variable kind §3 of the paper calls for ("label variables,
// tree variables and possibly path variables"). Written `@P`.
type PathVarStep struct{ Name string }

// ParamStep traverses exactly one edge whose label equals the value bound
// to the named $parameter at execution time. The planner resolves the name
// to a reserved parameter slot, so re-executing a prepared plan with new
// arguments involves no re-planning.
type ParamStep struct{ Name string }

func (*RegexStep) isStep()   {}
func (LabelVarStep) isStep() {}
func (PathVarStep) isStep()  {}
func (ParamStep) isStep()    {}

// ---------------------------------------------------------------------------
// Select templates

// Template constructs one output tree per binding tuple.
type Template interface{ isTemplate() }

// VarRef emits the subtree of a bound tree variable.
type VarRef struct{ Name string }

// LitTree emits the single-edge tree {L: {}}.
type LitTree struct{ L ssd.Label }

// LabelTree emits the single-edge tree {ℓ: {}} where ℓ is the value of a
// bound label variable — written `%N` in template position.
type LabelTree struct{ Name string }

// PathTree re-materializes a bound path variable as a chain of edges:
// {l₁: {l₂: … {}}} — written `@P` in template position.
type PathTree struct{ Name string }

// Struct emits a braces tree with computed edge labels.
type Struct struct{ Fields []Field }

// Field is one `label: template` pair of a Struct.
type Field struct {
	Label LabelExpr
	Value Template
}

func (VarRef) isTemplate()    {}
func (LitTree) isTemplate()   {}
func (LabelTree) isTemplate() {}
func (PathTree) isTemplate()  {}
func (Struct) isTemplate()    {}

// LabelExpr computes an output edge label: a literal or a label variable.
type LabelExpr interface{ isLabelExpr() }

// LitLabel is a constant output label.
type LitLabel struct{ L ssd.Label }

// LabelVarRef reuses a bound %variable as an output label.
type LabelVarRef struct{ Name string }

func (LitLabel) isLabelExpr()    {}
func (LabelVarRef) isLabelExpr() {}

// ---------------------------------------------------------------------------
// Where conditions

// Cond is a boolean condition over an environment of bindings.
type Cond interface{ isCond() }

// And is conjunction.
type And struct{ L, R Cond }

// Or is disjunction.
type Or struct{ L, R Cond }

// Not is negation.
type Not struct{ Sub Cond }

// Cmp compares two terms under the existential overloading described in the
// package comment.
type Cmp struct {
	Op   pathexpr.CmpOp
	L, R Term
}

// TypeTest applies a unary type predicate to a term, e.g. isstring(L).
type TypeTest struct {
	Pred pathexpr.Pred
	T    Term
}

// LikeCond matches a term against a %-pattern.
type LikeCond struct {
	T       Term
	Pattern string
}

// Exists is satisfied when Path from the Source variable matches at least
// one node, e.g. `exists M.Director`.
type Exists struct {
	Source string
	Path   []PathStep
}

func (And) isCond()      {}
func (Or) isCond()       {}
func (Not) isCond()      {}
func (Cmp) isCond()      {}
func (TypeTest) isCond() {}
func (LikeCond) isCond() {}
func (Exists) isCond()   {}

// Term is a comparable operand: a tree variable (value set = its data-edge
// labels), a label variable, or a literal.
type Term interface{ isTerm() }

// VarTerm names a tree variable.
type VarTerm struct{ Name string }

// LabelTerm names a label variable.
type LabelTerm struct{ Name string }

// LitTerm is a literal label value.
type LitTerm struct{ L ssd.Label }

// PathLenTerm is the length of a bound path variable, as an int — written
// pathlen(@P). It lets conditions constrain path depth.
type PathLenTerm struct{ Name string }

// ParamTerm is a named $parameter in term position; its value is supplied
// at execution time.
type ParamTerm struct{ Name string }

func (VarTerm) isTerm()     {}
func (LabelTerm) isTerm()   {}
func (LitTerm) isTerm()     {}
func (PathLenTerm) isTerm() {}
func (ParamTerm) isTerm()   {}

// ---------------------------------------------------------------------------
// Printing (used in error messages and the CLI's explain output)

// String renders the query in surface syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	writeTemplate(&b, q.Select)
	b.WriteString("\nfrom ")
	for i, bind := range q.From {
		if i > 0 {
			b.WriteString(",\n     ")
		}
		b.WriteString(bind.Source)
		writeSteps(&b, bind.Path)
		b.WriteString(" " + bind.Var)
	}
	if q.Where != nil {
		b.WriteString("\nwhere ")
		writeCond(&b, q.Where)
	}
	return b.String()
}

func writeTemplate(b *strings.Builder, t Template) {
	switch tt := t.(type) {
	case VarRef:
		b.WriteString(tt.Name)
	case LitTree:
		b.WriteString(tt.L.String())
	case LabelTree:
		b.WriteString("%" + tt.Name)
	case PathTree:
		b.WriteString("@" + tt.Name)
	case Struct:
		b.WriteByte('{')
		for i, f := range tt.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			switch l := f.Label.(type) {
			case LitLabel:
				b.WriteString(l.L.String())
			case LabelVarRef:
				b.WriteString("%" + l.Name)
			}
			b.WriteString(": ")
			writeTemplate(b, f.Value)
		}
		b.WriteByte('}')
	}
}

func writeCond(b *strings.Builder, c Cond) {
	switch t := c.(type) {
	case And:
		b.WriteByte('(')
		writeCond(b, t.L)
		b.WriteString(" and ")
		writeCond(b, t.R)
		b.WriteByte(')')
	case Or:
		b.WriteByte('(')
		writeCond(b, t.L)
		b.WriteString(" or ")
		writeCond(b, t.R)
		b.WriteByte(')')
	case Not:
		b.WriteString("not ")
		writeCond(b, t.Sub)
	case Cmp:
		writeTerm(b, t.L)
		b.WriteString(" " + t.Op.String() + " ")
		writeTerm(b, t.R)
	case TypeTest:
		b.WriteString(t.Pred.String() + "(")
		writeTerm(b, t.T)
		b.WriteByte(')')
	case LikeCond:
		writeTerm(b, t.T)
		b.WriteString(" like " + ssd.Str(t.Pattern).String())
	case Exists:
		b.WriteString("exists " + t.Source)
		writeSteps(b, t.Path)
	}
}

func writeSteps(b *strings.Builder, steps []PathStep) {
	for _, st := range steps {
		b.WriteByte('.')
		switch s := st.(type) {
		case *RegexStep:
			b.WriteString(s.Expr.String())
		case LabelVarStep:
			b.WriteString("%" + s.Name)
		case PathVarStep:
			b.WriteString("@" + s.Name)
		case ParamStep:
			b.WriteString("$" + s.Name)
		}
	}
}

func writeTerm(b *strings.Builder, t Term) {
	switch tt := t.(type) {
	case VarTerm:
		b.WriteString(tt.Name)
	case LabelTerm:
		b.WriteString("%" + tt.Name)
	case LitTerm:
		b.WriteString(tt.L.String())
	case PathLenTerm:
		b.WriteString("pathlen(@" + tt.Name + ")")
	case ParamTerm:
		b.WriteString("$" + tt.Name)
	}
}
