package query

import (
	"context"
	"strings"

	"repro/internal/obs"
	"repro/internal/ssd"
)

// Parallel-runtime counters: process-wide totals for the adaptive morsel
// splitter, complementing the per-query numbers an ExecTrace records. A
// split is a successful rendezvous handoff of a seed suffix to an idle
// worker; a miss is a split attempt that found the whole pool busy.
var (
	obsSplits = obs.Default.Counter("ssd_parallel_splits_total",
		"Adaptive morsel splits handed off to an idle worker.")
	obsSplitMisses = obs.Default.Counter("ssd_parallel_split_misses_total",
		"Morsel split attempts dropped because no worker was idle.")
)

// ExecTrace records operator-level statistics for one cursor execution: the
// per-query face of observability, as opposed to the process-wide counters
// in internal/obs. The caller allocates one, passes it to CursorTrace or
// CursorParallelTrace, and reads it after the cursor is closed — a trace is
// not synchronized for reading mid-flight.
//
// Tracing is strictly opt-in: with a nil trace the executor's hot path pays
// one pointer nil-check per pull and allocates nothing.
type ExecTrace struct {
	// AtomRows counts the rows that survived each atom's filters, in plan
	// order — the same counters ExplainAnalyze renders as "actual".
	AtomRows []int64
	// AtomNanos is the wall time spent inside each atom's iterators
	// (opening scans and pulling matches), in plan order. Under parallel
	// execution the per-atom times of all workers are summed, so the total
	// can exceed the query's wall clock — it is CPU-style attributed time.
	AtomNanos []int64

	// Parallel execution shape; zero for serial runs.
	Workers     int   // worker executors in the pool
	MorselSize  int   // seeds per primary morsel
	Morsels     int64 // morsels executed (primary + split)
	Splits      int64 // adaptive splits handed off
	SplitMisses int64 // split attempts with no idle worker
	MergeStalls int64 // times the consumer blocked waiting for the next batch
}

// init sizes the per-atom slices for a plan with n atoms, reusing capacity
// on a recycled trace.
func (t *ExecTrace) init(n int) {
	if cap(t.AtomRows) >= n {
		t.AtomRows = t.AtomRows[:n]
		t.AtomNanos = t.AtomNanos[:n]
		clear(t.AtomRows)
		clear(t.AtomNanos)
	} else {
		t.AtomRows = make([]int64, n)
		t.AtomNanos = make([]int64, n)
	}
	t.Workers, t.MorselSize = 0, 0
	t.Morsels, t.Splits, t.SplitMisses, t.MergeStalls = 0, 0, 0, 0
}

// merge folds a worker-local trace into t. Callers serialize merges (the
// parallel pool merges under a mutex at worker exit).
func (t *ExecTrace) merge(o *ExecTrace) {
	for i := range o.AtomRows {
		t.AtomRows[i] += o.AtomRows[i]
		t.AtomNanos[i] += o.AtomNanos[i]
	}
}

// CursorTrace opens a serial streaming execution like Cursor, recording
// operator-level statistics into tr (which is reinitialized for this plan).
// The trace is complete once the cursor is exhausted or closed. A nil tr
// degrades to Cursor exactly.
//
//ssd:mustclose
func (p *Plan) CursorTrace(ctx context.Context, params map[string]ssd.Label, tr *ExecTrace) (*Cursor, error) {
	c, err := p.Cursor(ctx, params)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.init(len(p.atoms))
		c.ex.trace = tr
	}
	return c, nil
}

// AtomDescs renders one human-readable descriptor per planned atom, in plan
// order — `M := DB.Entry.Movie [index-seek]` — for labeling trace spans.
// Indices line up with ExecTrace.AtomRows/AtomNanos.
func (p *Plan) AtomDescs() []string {
	out := make([]string, len(p.atoms))
	for i, a := range p.atoms {
		var b strings.Builder
		b.WriteString(a.b.Var)
		b.WriteString(" := ")
		b.WriteString(a.b.Source)
		writeSteps(&b, a.b.Path)
		b.WriteString(" [")
		b.WriteString(a.access.String())
		b.WriteByte(']')
		out[i] = b.String()
	}
	return out
}
