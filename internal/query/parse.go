package query

import (
	"fmt"
	"strconv"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Parse parses a select-from-where query and statically validates variable
// scoping: binding sources must be DB or an earlier variable, variable names
// must be unique and non-reserved, and variables used in select/where must
// be bound in from.
func Parse(src string) (*Query, error) {
	p := &qParser{lex: newQLexer(src)}
	p.lex.next()
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := resolve(q); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type qParser struct {
	lex *qLexer
}

func (p *qParser) parseQuery() (*Query, error) {
	lx := p.lex
	if !lx.keyword("select") {
		return nil, fmt.Errorf("query: expected 'select', got %q", lx.text)
	}
	lx.next()
	sel, err := p.parseTemplate()
	if err != nil {
		return nil, err
	}
	if !lx.keyword("from") {
		return nil, fmt.Errorf("query: expected 'from' at offset %d", lx.pos)
	}
	lx.next()
	var from []Binding
	for {
		b, err := p.parseBinding()
		if err != nil {
			return nil, err
		}
		from = append(from, b)
		if lx.tok == qComma {
			lx.next()
			continue
		}
		break
	}
	q := &Query{Select: sel, From: from}
	if lx.keyword("where") {
		lx.next()
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	if lx.tok == qError {
		return nil, lx.err
	}
	if lx.tok != qEOF {
		return nil, fmt.Errorf("query: trailing input at offset %d: %q", lx.pos, lx.text)
	}
	return q, nil
}

// ---------------------------------------------------------------------------
// Templates

// identTemplate is a provisional template for a bare identifier; resolve()
// rewrites it to VarRef (if bound) or LitTree (symbol literal).
type identTemplate struct{ name string }

func (identTemplate) isTemplate() {}

func (p *qParser) parseTemplate() (Template, error) {
	lx := p.lex
	switch lx.tok {
	case qPercent:
		lx.next()
		if lx.tok != qIdent {
			return nil, fmt.Errorf("query: offset %d: expected label variable name after %%", lx.pos)
		}
		name := lx.text
		lx.next()
		return LabelTree{name}, nil
	case qAt:
		lx.next()
		if lx.tok != qIdent {
			return nil, fmt.Errorf("query: offset %d: expected path variable name after @", lx.pos)
		}
		name := lx.text
		lx.next()
		return PathTree{name}, nil
	case qLBrace:
		lx.next()
		var fields []Field
		if lx.tok == qRBrace {
			lx.next()
			return Struct{}, nil
		}
		for {
			le, err := p.parseLabelExpr()
			if err != nil {
				return nil, err
			}
			var val Template = Struct{}
			if lx.tok == qColon {
				lx.next()
				val, err = p.parseTemplate()
				if err != nil {
					return nil, err
				}
			}
			fields = append(fields, Field{Label: le, Value: val})
			if lx.tok == qComma {
				lx.next()
				continue
			}
			if lx.tok != qRBrace {
				return nil, fmt.Errorf("query: offset %d: expected ',' or '}' in template", lx.pos)
			}
			lx.next()
			return Struct{Fields: fields}, nil
		}
	case qIdent:
		if qKeywords[lx.text] {
			return nil, fmt.Errorf("query: offset %d: unexpected keyword %q in template", lx.pos, lx.text)
		}
		name := lx.text
		lx.next()
		switch name {
		case "true":
			return LitTree{ssd.Bool(true)}, nil
		case "false":
			return LitTree{ssd.Bool(false)}, nil
		}
		return identTemplate{name}, nil
	case qString:
		l := ssd.Str(lx.text)
		lx.next()
		return LitTree{l}, nil
	case qInt, qFloat:
		l, err := p.numberLabel()
		if err != nil {
			return nil, err
		}
		return LitTree{l}, nil
	case qError:
		return nil, lx.err
	default:
		return nil, fmt.Errorf("query: offset %d: expected select template", lx.pos)
	}
}

func (p *qParser) parseLabelExpr() (LabelExpr, error) {
	lx := p.lex
	switch lx.tok {
	case qPercent:
		lx.next()
		if lx.tok != qIdent {
			return nil, fmt.Errorf("query: offset %d: expected label variable name after %%", lx.pos)
		}
		name := lx.text
		lx.next()
		return LabelVarRef{name}, nil
	case qIdent:
		var l ssd.Label
		switch lx.text {
		case "true":
			l = ssd.Bool(true)
		case "false":
			l = ssd.Bool(false)
		default:
			l = ssd.Sym(lx.text)
		}
		lx.next()
		return LitLabel{l}, nil
	case qString:
		l := ssd.Str(lx.text)
		lx.next()
		return LitLabel{l}, nil
	case qInt, qFloat:
		l, err := p.numberLabel()
		if err != nil {
			return nil, err
		}
		return LitLabel{l}, nil
	default:
		return nil, fmt.Errorf("query: offset %d: expected output label", lx.pos)
	}
}

func (p *qParser) numberLabel() (ssd.Label, error) {
	lx := p.lex
	if lx.tok == qInt {
		v, err := strconv.ParseInt(lx.text, 10, 64)
		if err != nil {
			return ssd.Label{}, fmt.Errorf("query: bad integer %q: %v", lx.text, err)
		}
		lx.next()
		return ssd.Int(v), nil
	}
	v, err := strconv.ParseFloat(lx.text, 64)
	if err != nil {
		return ssd.Label{}, fmt.Errorf("query: bad float %q: %v", lx.text, err)
	}
	lx.next()
	return ssd.Float(v), nil
}

// ---------------------------------------------------------------------------
// From bindings and paths

func (p *qParser) parseBinding() (Binding, error) {
	lx := p.lex
	if lx.tok != qIdent {
		return Binding{}, fmt.Errorf("query: offset %d: expected binding source", lx.pos)
	}
	source := lx.text
	lx.next()
	steps, err := p.parsePathSteps()
	if err != nil {
		return Binding{}, err
	}
	if lx.tok != qIdent || qKeywords[lx.text] {
		return Binding{}, fmt.Errorf("query: offset %d: expected variable name after path", lx.pos)
	}
	v := lx.text
	lx.next()
	return Binding{Source: source, Path: steps, Var: v}, nil
}

// parsePathSteps parses zero or more '.'-prefixed path steps.
func (p *qParser) parsePathSteps() ([]PathStep, error) {
	lx := p.lex
	var steps []PathStep
	for lx.tok == qDot {
		lx.next()
		if lx.tok == qPercent {
			lx.next()
			if lx.tok != qIdent {
				return nil, fmt.Errorf("query: offset %d: expected label variable name after %%", lx.pos)
			}
			steps = append(steps, LabelVarStep{lx.text})
			lx.next()
			continue
		}
		if lx.tok == qAt {
			lx.next()
			if lx.tok != qIdent {
				return nil, fmt.Errorf("query: offset %d: expected path variable name after @", lx.pos)
			}
			steps = append(steps, PathVarStep{lx.text})
			lx.next()
			continue
		}
		if lx.tok == qDollar {
			lx.next()
			if lx.tok != qIdent {
				return nil, fmt.Errorf("query: offset %d: expected parameter name after $", lx.pos)
			}
			steps = append(steps, ParamStep{lx.text})
			lx.next()
			continue
		}
		e, err := p.parsePathPostfix()
		if err != nil {
			return nil, err
		}
		steps = append(steps, &RegexStep{Expr: e})
	}
	return steps, nil
}

// parsePathPostfix parses one top-level path element: a primary with
// optional postfix operators. Parenthesized groups may contain full
// alternation/concatenation.
func (p *qParser) parsePathPostfix() (pathexpr.Expr, error) {
	e, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.lex.tok {
		case qStar:
			e = pathexpr.Star{Sub: e}
			p.lex.next()
		case qPlus:
			e = pathexpr.Plus{Sub: e}
			p.lex.next()
		case qQuest:
			e = pathexpr.Opt{Sub: e}
			p.lex.next()
		default:
			return e, nil
		}
	}
}

func (p *qParser) parsePathAlt() (pathexpr.Expr, error) {
	first, err := p.parsePathSeq()
	if err != nil {
		return nil, err
	}
	alts := []pathexpr.Expr{first}
	for p.lex.tok == qPipe {
		p.lex.next()
		e, err := p.parsePathSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	if len(alts) == 1 {
		return first, nil
	}
	return pathexpr.Alt{Alts: alts}, nil
}

func (p *qParser) parsePathSeq() (pathexpr.Expr, error) {
	first, err := p.parsePathPostfix()
	if err != nil {
		return nil, err
	}
	parts := []pathexpr.Expr{first}
	for p.lex.tok == qDot {
		p.lex.next()
		e, err := p.parsePathPostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return pathexpr.Seq{Parts: parts}, nil
}

var qTypePreds = map[string]pathexpr.Pred{
	"isint":    pathexpr.TypePred{Kind: ssd.KindInt},
	"isfloat":  pathexpr.TypePred{Kind: ssd.KindFloat},
	"isstring": pathexpr.TypePred{Kind: ssd.KindString},
	"issymbol": pathexpr.TypePred{Kind: ssd.KindSymbol},
	"isbool":   pathexpr.TypePred{Kind: ssd.KindBool},
	"isoid":    pathexpr.TypePred{Kind: ssd.KindOID},
	"isdata":   pathexpr.TypePred{IsData: true},
}

func (p *qParser) parsePathPrimary() (pathexpr.Expr, error) {
	lx := p.lex
	switch lx.tok {
	case qLParen:
		lx.next()
		e, err := p.parsePathAlt()
		if err != nil {
			return nil, err
		}
		if lx.tok != qRParen {
			return nil, fmt.Errorf("query: offset %d: expected ')' in path", lx.pos)
		}
		lx.next()
		return e, nil
	default:
		pred, err := p.parsePathPred()
		if err != nil {
			return nil, err
		}
		return pathexpr.Atom{Pred: pred}, nil
	}
}

func (p *qParser) parsePathPred() (pathexpr.Pred, error) {
	lx := p.lex
	switch lx.tok {
	case qUnder:
		lx.next()
		return pathexpr.AnyPred{}, nil
	case qBang:
		lx.next()
		sub, err := p.parsePathPred()
		if err != nil {
			return nil, err
		}
		return pathexpr.NotPred{Sub: sub}, nil
	case qLT, qLE, qGT, qGE, qEQ, qNE:
		op := map[qToken]pathexpr.CmpOp{
			qLT: pathexpr.OpLT, qLE: pathexpr.OpLE, qGT: pathexpr.OpGT,
			qGE: pathexpr.OpGE, qEQ: pathexpr.OpEQ, qNE: pathexpr.OpNE,
		}[lx.tok]
		lx.next()
		rhs, err := p.parsePathLiteral()
		if err != nil {
			return nil, err
		}
		return pathexpr.CmpPred{Op: op, Rhs: rhs}, nil
	case qIdent:
		if tp, ok := qTypePreds[lx.text]; ok {
			lx.next()
			return tp, nil
		}
		if lx.keyword("like") {
			lx.next()
			if lx.tok != qString {
				return nil, fmt.Errorf("query: offset %d: like requires a string pattern", lx.pos)
			}
			pat := lx.text
			lx.next()
			return pathexpr.LikePred{Pattern: pat}, nil
		}
		fallthrough
	case qString, qInt, qFloat:
		l, err := p.parsePathLiteral()
		if err != nil {
			return nil, err
		}
		return pathexpr.ExactPred{L: l}, nil
	case qError:
		return nil, lx.err
	default:
		return nil, fmt.Errorf("query: offset %d: expected path atom", lx.pos)
	}
}

func (p *qParser) parsePathLiteral() (ssd.Label, error) {
	lx := p.lex
	switch lx.tok {
	case qIdent:
		var l ssd.Label
		switch lx.text {
		case "true":
			l = ssd.Bool(true)
		case "false":
			l = ssd.Bool(false)
		default:
			l = ssd.Sym(lx.text)
		}
		lx.next()
		return l, nil
	case qString:
		l := ssd.Str(lx.text)
		lx.next()
		return l, nil
	case qInt, qFloat:
		return p.numberLabel()
	case qError:
		return ssd.Label{}, lx.err
	default:
		return ssd.Label{}, fmt.Errorf("query: offset %d: expected literal in path", lx.pos)
	}
}

// ---------------------------------------------------------------------------
// Where conditions

func (p *qParser) parseOr() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.lex.keyword("or") {
		p.lex.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func (p *qParser) parseAnd() (Cond, error) {
	l, err := p.parseUnaryCond()
	if err != nil {
		return nil, err
	}
	for p.lex.keyword("and") {
		p.lex.next()
		r, err := p.parseUnaryCond()
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func (p *qParser) parseUnaryCond() (Cond, error) {
	lx := p.lex
	switch {
	case lx.keyword("not"):
		lx.next()
		sub, err := p.parseUnaryCond()
		if err != nil {
			return nil, err
		}
		return Not{sub}, nil
	case lx.tok == qLParen:
		lx.next()
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if lx.tok != qRParen {
			return nil, fmt.Errorf("query: offset %d: expected ')' in condition", lx.pos)
		}
		lx.next()
		return c, nil
	case lx.keyword("exists"):
		lx.next()
		if lx.tok != qIdent || qKeywords[lx.text] {
			return nil, fmt.Errorf("query: offset %d: exists requires a variable", lx.pos)
		}
		source := lx.text
		lx.next()
		steps, err := p.parsePathSteps()
		if err != nil {
			return nil, err
		}
		return Exists{Source: source, Path: steps}, nil
	default:
		return p.parsePrimaryCond()
	}
}

func (p *qParser) parsePrimaryCond() (Cond, error) {
	lx := p.lex
	// Type tests look like isstring(T).
	if lx.tok == qIdent {
		if tp, ok := qTypePreds[lx.text]; ok {
			lx.next()
			if lx.tok != qLParen {
				return nil, fmt.Errorf("query: offset %d: expected '(' after type test", lx.pos)
			}
			lx.next()
			term, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if lx.tok != qRParen {
				return nil, fmt.Errorf("query: offset %d: expected ')' after type test", lx.pos)
			}
			lx.next()
			return TypeTest{Pred: tp, T: term}, nil
		}
	}
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if lx.keyword("like") {
		lx.next()
		if lx.tok != qString {
			return nil, fmt.Errorf("query: offset %d: like requires a string pattern", lx.pos)
		}
		pat := lx.text
		lx.next()
		return LikeCond{T: l, Pattern: pat}, nil
	}
	var op pathexpr.CmpOp
	switch lx.tok {
	case qLT:
		op = pathexpr.OpLT
	case qLE:
		op = pathexpr.OpLE
	case qGT:
		op = pathexpr.OpGT
	case qGE:
		op = pathexpr.OpGE
	case qEQ:
		op = pathexpr.OpEQ
	case qNE:
		op = pathexpr.OpNE
	default:
		return nil, fmt.Errorf("query: offset %d: expected comparison operator", lx.pos)
	}
	lx.next()
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: op, L: l, R: r}, nil
}

func (p *qParser) parseTerm() (Term, error) {
	lx := p.lex
	if lx.tok == qIdent && lx.text == "pathlen" {
		lx.next()
		if lx.tok != qLParen {
			return nil, fmt.Errorf("query: offset %d: expected '(' after pathlen", lx.pos)
		}
		lx.next()
		if lx.tok != qAt {
			return nil, fmt.Errorf("query: offset %d: pathlen takes a @path variable", lx.pos)
		}
		lx.next()
		if lx.tok != qIdent {
			return nil, fmt.Errorf("query: offset %d: expected path variable name after @", lx.pos)
		}
		name := lx.text
		lx.next()
		if lx.tok != qRParen {
			return nil, fmt.Errorf("query: offset %d: expected ')' after pathlen", lx.pos)
		}
		lx.next()
		return PathLenTerm{name}, nil
	}
	switch lx.tok {
	case qPercent:
		lx.next()
		if lx.tok != qIdent {
			return nil, fmt.Errorf("query: offset %d: expected label variable name after %%", lx.pos)
		}
		name := lx.text
		lx.next()
		return LabelTerm{name}, nil
	case qDollar:
		lx.next()
		if lx.tok != qIdent {
			return nil, fmt.Errorf("query: offset %d: expected parameter name after $", lx.pos)
		}
		name := lx.text
		lx.next()
		return ParamTerm{name}, nil
	case qIdent:
		if qKeywords[lx.text] {
			return nil, fmt.Errorf("query: offset %d: unexpected keyword %q in term", lx.pos, lx.text)
		}
		name := lx.text
		lx.next()
		switch name {
		case "true":
			return LitTerm{ssd.Bool(true)}, nil
		case "false":
			return LitTerm{ssd.Bool(false)}, nil
		}
		// Resolution to VarTerm vs symbol literal happens in resolve().
		return VarTerm{name}, nil
	case qString:
		l := ssd.Str(lx.text)
		lx.next()
		return LitTerm{l}, nil
	case qInt, qFloat:
		l, err := p.numberLabel()
		if err != nil {
			return nil, err
		}
		return LitTerm{l}, nil
	case qError:
		return nil, lx.err
	default:
		return nil, fmt.Errorf("query: offset %d: expected term", lx.pos)
	}
}

// ---------------------------------------------------------------------------
// Static resolution and validation

func resolve(q *Query) error {
	treeVars := map[string]bool{}
	labelVars := map[string]bool{}
	pathVars := map[string]bool{}
	seenParam := map[string]bool{}
	addParam := func(name string) {
		if !seenParam[name] {
			seenParam[name] = true
			q.Params = append(q.Params, name)
		}
	}
	for i, b := range q.From {
		if b.Source != "DB" && !treeVars[b.Source] {
			return fmt.Errorf("query: binding %d: source %q is neither DB nor an earlier variable", i+1, b.Source)
		}
		if treeVars[b.Var] || b.Var == "DB" {
			return fmt.Errorf("query: duplicate variable %q", b.Var)
		}
		for _, st := range b.Path {
			switch t := st.(type) {
			case LabelVarStep:
				labelVars[t.Name] = true
			case PathVarStep:
				pathVars[t.Name] = true
			case ParamStep:
				addParam(t.Name)
			}
		}
		treeVars[b.Var] = true
	}
	sc := scopes{trees: treeVars, labels: labelVars, paths: pathVars}
	var err error
	q.Select = resolveTemplate(q.Select, sc, &err)
	if err != nil {
		return err
	}
	if q.Where != nil {
		q.Where = resolveCond(q.Where, sc, &err)
		if err != nil {
			return err
		}
		collectCondParams(q.Where, addParam)
	}
	return nil
}

// collectCondParams registers $parameters appearing in where conditions
// (terms and exists-paths), in syntactic order.
func collectCondParams(c Cond, add func(string)) {
	addTerm := func(t Term) {
		if pt, ok := t.(ParamTerm); ok {
			add(pt.Name)
		}
	}
	switch t := c.(type) {
	case And:
		collectCondParams(t.L, add)
		collectCondParams(t.R, add)
	case Or:
		collectCondParams(t.L, add)
		collectCondParams(t.R, add)
	case Not:
		collectCondParams(t.Sub, add)
	case Cmp:
		addTerm(t.L)
		addTerm(t.R)
	case TypeTest:
		addTerm(t.T)
	case LikeCond:
		addTerm(t.T)
	case Exists:
		for _, st := range t.Path {
			if ps, ok := st.(ParamStep); ok {
				add(ps.Name)
			}
		}
	}
}

// scopes carries the variable sets of a query during resolution.
type scopes struct {
	trees, labels, paths map[string]bool
}

func resolveTemplate(t Template, sc scopes, err *error) Template {
	switch tt := t.(type) {
	case identTemplate:
		if sc.trees[tt.name] {
			return VarRef{tt.name}
		}
		return LitTree{ssd.Sym(tt.name)}
	case LabelTree:
		if !sc.labels[tt.Name] {
			setErr(err, fmt.Errorf("query: label variable %%%s not bound in from clause", tt.Name))
		}
		return tt
	case PathTree:
		if !sc.paths[tt.Name] {
			setErr(err, fmt.Errorf("query: path variable @%s not bound in from clause", tt.Name))
		}
		return tt
	case Struct:
		for i, f := range tt.Fields {
			if lv, ok := f.Label.(LabelVarRef); ok && !sc.labels[lv.Name] {
				setErr(err, fmt.Errorf("query: label variable %%%s not bound in from clause", lv.Name))
			}
			tt.Fields[i].Value = resolveTemplate(f.Value, sc, err)
		}
		return tt
	default:
		return t
	}
}

func resolveCond(c Cond, sc scopes, err *error) Cond {
	switch t := c.(type) {
	case And:
		t.L = resolveCond(t.L, sc, err)
		t.R = resolveCond(t.R, sc, err)
		return t
	case Or:
		t.L = resolveCond(t.L, sc, err)
		t.R = resolveCond(t.R, sc, err)
		return t
	case Not:
		t.Sub = resolveCond(t.Sub, sc, err)
		return t
	case Cmp:
		t.L = resolveTerm(t.L, sc, err)
		t.R = resolveTerm(t.R, sc, err)
		return t
	case TypeTest:
		t.T = resolveTerm(t.T, sc, err)
		return t
	case LikeCond:
		t.T = resolveTerm(t.T, sc, err)
		return t
	case Exists:
		if !sc.trees[t.Source] {
			setErr(err, fmt.Errorf("query: exists source %q not bound", t.Source))
		}
		return t
	default:
		return c
	}
}

func resolveTerm(t Term, sc scopes, err *error) Term {
	switch tt := t.(type) {
	case VarTerm:
		if sc.trees[tt.Name] {
			return tt
		}
		// Unbound identifier: a symbol literal.
		return LitTerm{ssd.Sym(tt.Name)}
	case LabelTerm:
		if !sc.labels[tt.Name] {
			setErr(err, fmt.Errorf("query: label variable %%%s not bound in from clause", tt.Name))
		}
		return tt
	case PathLenTerm:
		if !sc.paths[tt.Name] {
			setErr(err, fmt.Errorf("query: path variable @%s not bound in from clause", tt.Name))
		}
		return tt
	default:
		return t
	}
}

func setErr(dst *error, e error) {
	if *dst == nil {
		*dst = e
	}
}
