package query

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestParallelMatchesSerialByteIdentical is the determinism acceptance
// property: the morsel-driven parallel engine must produce byte-identical
// canonicalized output to the serial engine on the whole engine cross-check
// suite, at several worker counts and with deliberately tiny morsels (so
// every query actually exercises the partition/merge machinery).
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	for _, c := range engineCases {
		t.Run(c.name, func(t *testing.T) {
			g := caseGraph(t, c)
			q := MustParse(c.query)
			ix := index.BuildLabelIndex(g)
			for _, po := range []PlanOptions{{}, {Label: ix}} {
				serial, err := EvalOpts(q, g, Options{Minimize: true, Plan: po, Params: c.params})
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				for _, workers := range []int{2, 4} {
					par, err := EvalOpts(q, g, Options{
						Minimize: true, Plan: po, Params: c.params,
						Parallelism: workers, MorselSize: 2,
					})
					if err != nil {
						t.Fatalf("parallel/%d: %v", workers, err)
					}
					if gs, ws := ssd.FormatRoot(par), ssd.FormatRoot(serial); gs != ws {
						t.Errorf("parallel/%d differs:\n got: %s\nwant: %s", workers, gs, ws)
					}
				}
			}
		})
	}
}

// forceSplits lowers the adaptive-split thresholds so that every morsel
// splits as aggressively as the machinery allows, and returns a restore
// function. Tests that force splits must restore before returning (and must
// not run in parallel with each other); the happens-before edges of
// goroutine start and Cursor.Close make the writes race-free.
func forceSplits() (restore func()) {
	of, om := splitFactor, splitMinRows
	splitFactor, splitMinRows = 0, 1
	return func() { splitFactor, splitMinRows = of, om }
}

// TestParallelAdaptiveSplitByteIdentical is the acceptance property for
// runtime morsel splitting: with the split thresholds floored so workers
// split after every seed (maximally chained continuations), the merged
// stream must still be byte-identical to the serial engine across the whole
// engine cross-check corpus.
func TestParallelAdaptiveSplitByteIdentical(t *testing.T) {
	defer forceSplits()()
	for _, c := range engineCases {
		t.Run(c.name, func(t *testing.T) {
			g := caseGraph(t, c)
			q := MustParse(c.query)
			serial, err := EvalOpts(q, g, Options{Minimize: true, Params: c.params})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			par, err := EvalOpts(q, g, Options{
				Minimize: true, Params: c.params,
				Parallelism: 3, MorselSize: 4,
			})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if gs, ws := ssd.FormatRoot(par), ssd.FormatRoot(serial); gs != ws {
				t.Errorf("split parallel differs:\n got: %s\nwant: %s", gs, ws)
			}
		})
	}
}

// TestParallelAdaptiveSplitRowOrder pins that splitting actually happened
// and that the continuation-chain merge preserves exact row order, not just
// the canonicalized result.
//
// A split handoff is a rendezvous — it happens only when another worker is
// parked idle at the instant of the attempt — so no single run can demand
// one from the scheduler. The setup makes a split all but certain: the
// morsel size exceeds the seed count, so one worker owns the whole scan
// while the other two park idle, and the floored thresholds attempt a
// handoff after every one of the ~2000 seeds. GOMAXPROCS is raised because
// on a single-P runtime the merge goroutine and the busy worker hand the
// processor to each other through the scheduler's runnext slot, which can
// starve the idle workers out of ever parking (that starvation is exactly
// why splits are opportunistic in production); the retry loop turns "all
// but certain" into a deterministic pin. Every attempt, split or not, must
// match the serial row stream exactly.
func TestParallelAdaptiveSplitRowOrder(t *testing.T) {
	defer forceSplits()()
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	g := workload.Movies(workload.DefaultMovieConfig(2000))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A`)
	for attempt := 0; ; attempt++ {
		sp, err := NewPlan(q, g, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ser, err := sp.Cursor(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlan(q, g, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		par := openParallel(t, p, nil, nil, 3, 5000)
		row := 0
		for ser.Next() {
			if !par.Next() {
				t.Fatalf("parallel ended at row %d, serial has more (err %v)", row, par.Err())
			}
			for i := range p.treeName {
				if ser.Tree(i) != par.Tree(i) {
					t.Fatalf("row %d: tree slot %d: %d != %d", row, i, par.Tree(i), ser.Tree(i))
				}
			}
			for i := range p.labelName {
				if ser.Label(i) != par.Label(i) {
					t.Fatalf("row %d: label slot %d differs", row, i)
				}
			}
			row++
		}
		if par.Next() {
			t.Fatalf("parallel has extra rows after %d", row)
		}
		if ser.Err() != nil || par.Err() != nil {
			t.Fatalf("errs %v / %v", ser.Err(), par.Err())
		}
		if row == 0 {
			t.Fatal("no rows compared")
		}
		nsplits := par.par.sh.nsplits.Load()
		par.Close()
		if nsplits > 0 {
			return
		}
		if attempt >= 9 {
			t.Fatal("no forced-split attempt performed a split in 10 runs: the adaptive path was not exercised")
		}
	}
}

// TestParallelAdaptiveSplitCancellation: cancelling mid-stream while splits
// are flying must still tear the pool down promptly.
func TestParallelAdaptiveSplitCancellation(t *testing.T) {
	defer forceSplits()()
	g := workload.Movies(workload.DefaultMovieConfig(2000))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur := openParallel(t, p, ctx, nil, 3, 16)
	defer cur.Close()
	for i := 0; i < 5; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: premature end (err %v)", i, cur.Err())
		}
	}
	cancel()
	if cur.Next() && cur.Next() {
		t.Fatal("cursor kept yielding after cancellation")
	}
	if cur.Err() != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", cur.Err())
	}
}

// openParallel compiles worker plans and opens a parallel cursor — the
// query-layer equivalent of what the statement pool does.
func openParallel(t *testing.T, p *Plan, ctx context.Context, params map[string]ssd.Label, workers, morsel int) *Cursor {
	t.Helper()
	ws := make([]*Plan, workers)
	for i := range ws {
		wp, err := NewPlan(p.q, p.g, p.opts)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = wp
	}
	cur, err := p.CursorParallel(ctx, params, ws, morsel)
	if err != nil {
		t.Fatal(err)
	}
	return cur
}

// TestParallelRowOrderIdentity pins the stronger property behind the byte
// identity: the parallel cursor yields rows in exactly the serial engine's
// order, including label and path witness slots shipped through seeds and
// batches.
func TestParallelRowOrderIdentity(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(200))
	queries := []string{
		`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`,
		`select {T: %L} from DB.Entry.%L M, M.Title T`,      // seed-shipped label slot
		`select @P from DB.@P M, M.Title T`,                 // seed-shipped path slot
		`select T from DB.Entry.Movie M, M.@P X, M.Title T`, // worker-side path witnesses
	}
	for _, src := range queries {
		q := MustParse(src)
		p, err := NewPlan(q, g, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The serial cursor gets its own compiled plan: a plan (and its
		// DFA caches) has one owner at a time, and p is busy seeding the
		// parallel pool.
		sp, err := NewPlan(q, g, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ser, err := sp.Cursor(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		par := openParallel(t, p, nil, nil, 3, 8)
		defer par.Close()
		row := 0
		for ser.Next() {
			if !par.Next() {
				t.Fatalf("%s: parallel ended at row %d, serial has more", src, row)
			}
			for i := range p.treeName {
				if ser.Tree(i) != par.Tree(i) {
					t.Fatalf("%s row %d: tree slot %d: %d != %d", src, row, i, par.Tree(i), ser.Tree(i))
				}
			}
			for i := range p.labelName {
				if ser.Label(i) != par.Label(i) {
					t.Fatalf("%s row %d: label slot %d differs", src, row, i)
				}
			}
			for i := range p.pathName {
				sp, pp := ser.Path(i), par.Path(i)
				if len(sp) != len(pp) {
					t.Fatalf("%s row %d: path slot %d length differs", src, row, i)
				}
				for j := range sp {
					if sp[j] != pp[j] {
						t.Fatalf("%s row %d: path slot %d element %d differs", src, row, i, j)
					}
				}
			}
			row++
		}
		if par.Next() {
			t.Fatalf("%s: parallel has extra rows after %d", src, row)
		}
		if ser.Err() != nil || par.Err() != nil {
			t.Fatalf("%s: errs %v / %v", src, ser.Err(), par.Err())
		}
		if row == 0 {
			t.Fatalf("%s: no rows compared", src)
		}
	}
}

// TestCursorReportsMidStreamFailure is the regression test for the silent
// error-swallowing bug: a failure in the pull loop after rows have already
// streamed must surface through Cursor.Err, not present as clean exhaustion
// (and not crash the process).
func TestCursorReportsMidStreamFailure(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select {%L} from DB.Entry.Movie M, M.%L X`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.Cursor(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("expected at least one row before the failure")
	}
	// Sabotage the executor mid-stream: swap in a graph with no nodes
	// beyond the root, so the next label-variable step dereferences an
	// out-of-range node. The old code would have panicked through the
	// caller; the fix converts it to a terminal error.
	cur.ex.g = ssd.New()
	rows := 1
	for cur.Next() {
		rows++
	}
	if cur.Err() == nil {
		t.Fatalf("mid-stream failure swallowed: %d rows then clean exhaustion", rows)
	}
	if !strings.Contains(cur.Err().Error(), "execution failed") {
		t.Errorf("unexpected error: %v", cur.Err())
	}
	// The terminal state is sticky, and survives Close: Err-after-Close is
	// the database/sql idiom, and the executor recycled by Close must not
	// be able to clobber it.
	if cur.Next() {
		t.Error("Next yielded a row after a terminal error")
	}
	want := cur.Err()
	cur.Close()
	if cur.Err() != want {
		t.Fatalf("Err after Close = %v, want %v", cur.Err(), want)
	}
}

// TestCursorReportsStaleIndex pins the realistic variant: a plan fed a
// label index built from a different (larger) snapshot yields posting
// entries pointing past the graph — an error, not a crash and not an empty
// result.
func TestCursorReportsStaleIndex(t *testing.T) {
	small := workload.Fig1(false)
	big := workload.Movies(workload.DefaultMovieConfig(500))
	q := MustParse(`select X from DB._*.Title X`)
	p, err := NewPlan(q, small, PlanOptions{Label: index.BuildLabelIndex(big)})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.Cursor(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	if cur.Err() == nil {
		t.Fatal("stale-index failure reported as clean exhaustion")
	}
}

// TestParallelWorkerFailure: a worker whose executor dies (here: a
// sabotaged automaton making the traversal panic) must surface through
// Cursor.Err at the merge, not hang the cursor or truncate silently.
func TestParallelWorkerFailure(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wp, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wp.atoms[1].steps[0].au = nil // worker's first pull will panic
	cur, err := p.CursorParallel(nil, nil, []*Plan{wp}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if cur.Err() == nil {
		t.Fatal("worker panic reported as clean exhaustion")
	}
	if !strings.Contains(cur.Err().Error(), "execution failed") {
		t.Errorf("unexpected error: %v", cur.Err())
	}
}

// TestParallelSplitRendezvous drives workMorsel against a hand-rolled idle
// receiver, pinning the handoff mechanics without depending on pool
// scheduling: the split must go to a parked receiver, the final batch must
// carry the suffix's channel as its continuation, and the handed-off suffix
// plus the rows delivered before it must exactly partition the seed range.
// The ready-handshake guarantees the receiver is parked before workMorsel
// starts on a single-P runtime (the receiver runs until it blocks before
// the main goroutine resumes); on a multi-P runtime workMorsel re-attempts
// the handoff after every seed, so the receiver only has to park sometime
// during the scan.
func TestParallelSplitRendezvous(t *testing.T) {
	defer forceSplits()()
	g := workload.Movies(workload.DefaultMovieConfig(60))
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	sp, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Materialize the seed rows the way the coordinator does: a serial pass
	// over just the leading atom.
	seedEx := sp.exec(context.Background(), nil)
	seedEx.atoms = seedEx.atoms[:1]
	dst := sp.atoms[0].dstSlot
	var seeds []seedRow
	for seedEx.Next() {
		seeds = append(seeds, seedRow{tree: seedEx.regs.trees[dst]})
	}
	if seedEx.err != nil || len(seeds) < splitMinSeedsLeft+1 {
		t.Fatalf("seeding: %d seeds, err %v", len(seeds), seedEx.err)
	}

	wp, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sh := newParShared()
	sh.pending.Add(1)
	claimed := make(chan morsel, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		claimed <- <-sh.splits
	}()
	<-ready

	out := make(chan rowBatch, morselResultBuf)
	ex := wp.exec(context.Background(), nil)
	ex.base = 1
	ex.relaxedPoll = true
	if !workMorsel(context.Background(), ex, wp, leadSlots{}, morsel{seeds: seeds, out: out}, sh) {
		t.Fatal("workMorsel reported cancellation")
	}
	sh.morselDone() // what runWorker does after workMorsel returns
	var prefixRows int
	var cont chan rowBatch
	for b := range out {
		if b.err != nil {
			t.Fatalf("batch error: %v", b.err)
		}
		prefixRows += b.n
		cont = b.cont
	}
	if cont == nil {
		t.Fatal("no split: final batch carries no continuation despite a parked receiver")
	}
	m := <-claimed
	if m.out != cont {
		t.Fatal("handed-off suffix morsel does not deliver on the continuation channel")
	}
	// Every movie yields exactly one Title row, so rows delivered before the
	// handoff plus suffix seeds must account for every seed.
	if prefixRows+len(m.seeds) != len(seeds) {
		t.Fatalf("prefix rows (%d) + suffix seeds (%d) != total seeds (%d)",
			prefixRows, len(m.seeds), len(seeds))
	}
	if got := sh.nsplits.Load(); got < 1 {
		t.Fatalf("nsplits = %d, want >= 1", got)
	}
	if got := sh.pending.Load(); got != 1 {
		t.Fatalf("pending = %d after handoff, want 1 (suffix outstanding)", got)
	}
}

// TestParallelWorkerDrainDeliversError is the regression test for the
// failed-worker drain path: once a worker's executor has failed, every
// morsel it subsequently drains must carry the terminal error, not be
// closed empty. A drained split can precede the failing morsel in merge
// order, and an empty close there would make the merge treat the gap as a
// completed morsel — silently skipping that seed range's rows and then
// yielding later rows before the error, which breaks the serial engine's
// prefix semantics.
func TestParallelWorkerDrainDeliversError(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	wp, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wp.atoms[1].steps[0].au = nil // first pull panics -> executor fails
	sh := newParShared()
	morsels := make(chan morsel, 2)
	seeds := []seedRow{{tree: g.Root()}}
	outs := make([]chan rowBatch, 2)
	for i := range outs {
		outs[i] = make(chan rowBatch, morselResultBuf)
		sh.pending.Add(1)
		morsels <- morsel{seeds: seeds, out: outs[i]}
	}
	close(morsels)
	sh.finishSeeding()
	runWorker(context.Background(), wp, nil, wp.leadSlots(), morsels, sh)
	for i, out := range outs {
		b, ok := <-out
		if !ok {
			t.Fatalf("morsel %d: channel closed empty, want a terminal error batch", i)
		}
		if b.err == nil {
			t.Fatalf("morsel %d: batch carries no error", i)
		}
		if _, ok := <-out; ok {
			t.Fatalf("morsel %d: batch after the terminal error", i)
		}
	}
	select {
	case <-sh.done:
	default:
		t.Fatal("drained pool did not reach done")
	}
}

// TestParallelCancellation: cancelling the request context stops a parallel
// cursor promptly, reports the context error, and leaves the pool in a
// state Close can reap.
func TestParallelCancellation(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(2000))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur := openParallel(t, p, ctx, nil, 3, 16)
	defer cur.Close()
	for i := 0; i < 5; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: premature end (err %v)", i, cur.Err())
		}
	}
	cancel()
	if cur.Next() {
		// One row may already be staged in the merge view; the next pull
		// after cancellation must stop.
		if cur.Next() {
			t.Fatal("cursor kept yielding after cancellation")
		}
	}
	if cur.Err() != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", cur.Err())
	}
}

// TestParallelCloseMidStream: abandoning a parallel cursor without draining
// it must stop the pool (Close returns only after workers quiesce) and make
// further Next calls report exhaustion.
func TestParallelCloseMidStream(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(1000))
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur := openParallel(t, p, nil, nil, 2, 4)
	if !cur.Next() {
		t.Fatal("no first row")
	}
	cur.Close()
	cur.Close() // idempotent
	if cur.Next() {
		t.Fatal("Next yielded after Close")
	}
}

// TestParallelFallbacks: single-atom plans and empty worker sets run on the
// serial engine behind the same Cursor face.
func TestParallelFallbacks(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select X from DB.Entry X`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.CursorParallel(nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for cur.Next() {
		n++
	}
	if n == 0 || cur.Err() != nil {
		t.Fatalf("fallback cursor: %d rows, err %v", n, cur.Err())
	}
}

// TestOptionsRejectNegatives is the regression test for negative
// Options.Parallelism / Options.MorselSize silently falling through the
// "> 1" / "> 0" comparisons and running serially with default morsels: both
// are now typed *OptionError failures, at both evaluation entry points.
func TestOptionsRejectNegatives(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	cases := []struct {
		opts  Options
		field string
		value int
	}{
		{Options{Parallelism: -1}, "Parallelism", -1},
		{Options{MorselSize: -8}, "MorselSize", -8},
		{Options{Parallelism: -3, MorselSize: -8}, "Parallelism", -3}, // first failure wins
	}
	for _, c := range cases {
		for name, eval := range map[string]func() (*ssd.Graph, error){
			"EvalOpts": func() (*ssd.Graph, error) { return EvalOpts(q, g, c.opts) },
			"EvalGraphCtx": func() (*ssd.Graph, error) {
				p, err := NewPlan(q, g, PlanOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return p.EvalGraphCtx(context.Background(), c.opts)
			},
		} {
			_, err := eval()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("%s %+v: err = %v, want *OptionError", name, c.opts, err)
			}
			if oe.Field != c.field || oe.Value != c.value {
				t.Errorf("%s %+v: got {%s %d}, want {%s %d}", name, c.opts, oe.Field, oe.Value, c.field, c.value)
			}
		}
	}
	// Zero stays valid: it means "pick defaults", not an error.
	if _, err := EvalOpts(q, g, Options{Minimize: true}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

// TestParallelIncompatibleWorker: handing the pool a plan for a different
// graph or query is refused up front.
func TestParallelIncompatibleWorker(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewPlan(MustParse(`select X from DB.Entry X`), g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CursorParallel(nil, nil, []*Plan{other}, 0); err == nil {
		t.Fatal("incompatible worker plan accepted")
	}
	g2 := workload.Fig1(false)
	wrongGraph, err := NewPlan(q, g2, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CursorParallel(nil, nil, []*Plan{wrongGraph}, 0); err == nil {
		t.Fatal("worker plan for a different graph accepted")
	}
}
