package query

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestParallelMatchesSerialByteIdentical is the determinism acceptance
// property: the morsel-driven parallel engine must produce byte-identical
// canonicalized output to the serial engine on the whole engine cross-check
// suite, at several worker counts and with deliberately tiny morsels (so
// every query actually exercises the partition/merge machinery).
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	for _, c := range engineCases {
		t.Run(c.name, func(t *testing.T) {
			g := caseGraph(t, c)
			q := MustParse(c.query)
			ix := index.BuildLabelIndex(g)
			for _, po := range []PlanOptions{{}, {Label: ix}} {
				serial, err := EvalOpts(q, g, Options{Minimize: true, Plan: po, Params: c.params})
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				for _, workers := range []int{2, 4} {
					par, err := EvalOpts(q, g, Options{
						Minimize: true, Plan: po, Params: c.params,
						Parallelism: workers, MorselSize: 2,
					})
					if err != nil {
						t.Fatalf("parallel/%d: %v", workers, err)
					}
					if gs, ws := ssd.FormatRoot(par), ssd.FormatRoot(serial); gs != ws {
						t.Errorf("parallel/%d differs:\n got: %s\nwant: %s", workers, gs, ws)
					}
				}
			}
		})
	}
}

// forceSplits lowers the adaptive-split thresholds so that every morsel
// splits as aggressively as the machinery allows, and returns a restore
// function. Tests that force splits must restore before returning (and must
// not run in parallel with each other); the happens-before edges of
// goroutine start and Cursor.Close make the writes race-free.
func forceSplits() (restore func()) {
	of, om := splitFactor, splitMinRows
	splitFactor, splitMinRows = 0, 1
	return func() { splitFactor, splitMinRows = of, om }
}

// TestParallelAdaptiveSplitByteIdentical is the acceptance property for
// runtime morsel splitting: with the split thresholds floored so workers
// split after every seed (maximally chained continuations), the merged
// stream must still be byte-identical to the serial engine across the whole
// engine cross-check corpus.
func TestParallelAdaptiveSplitByteIdentical(t *testing.T) {
	defer forceSplits()()
	for _, c := range engineCases {
		t.Run(c.name, func(t *testing.T) {
			g := caseGraph(t, c)
			q := MustParse(c.query)
			serial, err := EvalOpts(q, g, Options{Minimize: true, Params: c.params})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			par, err := EvalOpts(q, g, Options{
				Minimize: true, Params: c.params,
				Parallelism: 3, MorselSize: 4,
			})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if gs, ws := ssd.FormatRoot(par), ssd.FormatRoot(serial); gs != ws {
				t.Errorf("split parallel differs:\n got: %s\nwant: %s", gs, ws)
			}
		})
	}
}

// TestParallelAdaptiveSplitRowOrder pins that splitting actually happened
// and that the continuation-chain merge preserves exact row order, not just
// the canonicalized result.
func TestParallelAdaptiveSplitRowOrder(t *testing.T) {
	defer forceSplits()()
	g := workload.Movies(workload.DefaultMovieConfig(300))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A`)
	sp, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := sp.Cursor(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par := openParallel(t, p, nil, nil, 3, 16)
	defer par.Close()
	row := 0
	for ser.Next() {
		if !par.Next() {
			t.Fatalf("parallel ended at row %d, serial has more (err %v)", row, par.Err())
		}
		for i := range p.treeName {
			if ser.Tree(i) != par.Tree(i) {
				t.Fatalf("row %d: tree slot %d: %d != %d", row, i, par.Tree(i), ser.Tree(i))
			}
		}
		for i := range p.labelName {
			if ser.Label(i) != par.Label(i) {
				t.Fatalf("row %d: label slot %d differs", row, i)
			}
		}
		row++
	}
	if par.Next() {
		t.Fatalf("parallel has extra rows after %d", row)
	}
	if ser.Err() != nil || par.Err() != nil {
		t.Fatalf("errs %v / %v", ser.Err(), par.Err())
	}
	if row == 0 {
		t.Fatal("no rows compared")
	}
	if par.par.sh.nsplits.Load() == 0 {
		t.Fatal("forced-split run performed no splits: the adaptive path was not exercised")
	}
}

// TestParallelAdaptiveSplitCancellation: cancelling mid-stream while splits
// are flying must still tear the pool down promptly.
func TestParallelAdaptiveSplitCancellation(t *testing.T) {
	defer forceSplits()()
	g := workload.Movies(workload.DefaultMovieConfig(2000))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur := openParallel(t, p, ctx, nil, 3, 16)
	defer cur.Close()
	for i := 0; i < 5; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: premature end (err %v)", i, cur.Err())
		}
	}
	cancel()
	if cur.Next() && cur.Next() {
		t.Fatal("cursor kept yielding after cancellation")
	}
	if cur.Err() != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", cur.Err())
	}
}

// openParallel compiles worker plans and opens a parallel cursor — the
// query-layer equivalent of what the statement pool does.
func openParallel(t *testing.T, p *Plan, ctx context.Context, params map[string]ssd.Label, workers, morsel int) *Cursor {
	t.Helper()
	ws := make([]*Plan, workers)
	for i := range ws {
		wp, err := NewPlan(p.q, p.g, p.opts)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = wp
	}
	cur, err := p.CursorParallel(ctx, params, ws, morsel)
	if err != nil {
		t.Fatal(err)
	}
	return cur
}

// TestParallelRowOrderIdentity pins the stronger property behind the byte
// identity: the parallel cursor yields rows in exactly the serial engine's
// order, including label and path witness slots shipped through seeds and
// batches.
func TestParallelRowOrderIdentity(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(200))
	queries := []string{
		`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`,
		`select {T: %L} from DB.Entry.%L M, M.Title T`,      // seed-shipped label slot
		`select @P from DB.@P M, M.Title T`,                 // seed-shipped path slot
		`select T from DB.Entry.Movie M, M.@P X, M.Title T`, // worker-side path witnesses
	}
	for _, src := range queries {
		q := MustParse(src)
		p, err := NewPlan(q, g, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The serial cursor gets its own compiled plan: a plan (and its
		// DFA caches) has one owner at a time, and p is busy seeding the
		// parallel pool.
		sp, err := NewPlan(q, g, PlanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ser, err := sp.Cursor(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		par := openParallel(t, p, nil, nil, 3, 8)
		defer par.Close()
		row := 0
		for ser.Next() {
			if !par.Next() {
				t.Fatalf("%s: parallel ended at row %d, serial has more", src, row)
			}
			for i := range p.treeName {
				if ser.Tree(i) != par.Tree(i) {
					t.Fatalf("%s row %d: tree slot %d: %d != %d", src, row, i, par.Tree(i), ser.Tree(i))
				}
			}
			for i := range p.labelName {
				if ser.Label(i) != par.Label(i) {
					t.Fatalf("%s row %d: label slot %d differs", src, row, i)
				}
			}
			for i := range p.pathName {
				sp, pp := ser.Path(i), par.Path(i)
				if len(sp) != len(pp) {
					t.Fatalf("%s row %d: path slot %d length differs", src, row, i)
				}
				for j := range sp {
					if sp[j] != pp[j] {
						t.Fatalf("%s row %d: path slot %d element %d differs", src, row, i, j)
					}
				}
			}
			row++
		}
		if par.Next() {
			t.Fatalf("%s: parallel has extra rows after %d", src, row)
		}
		if ser.Err() != nil || par.Err() != nil {
			t.Fatalf("%s: errs %v / %v", src, ser.Err(), par.Err())
		}
		if row == 0 {
			t.Fatalf("%s: no rows compared", src)
		}
	}
}

// TestCursorReportsMidStreamFailure is the regression test for the silent
// error-swallowing bug: a failure in the pull loop after rows have already
// streamed must surface through Cursor.Err, not present as clean exhaustion
// (and not crash the process).
func TestCursorReportsMidStreamFailure(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select {%L} from DB.Entry.Movie M, M.%L X`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.Cursor(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("expected at least one row before the failure")
	}
	// Sabotage the executor mid-stream: swap in a graph with no nodes
	// beyond the root, so the next label-variable step dereferences an
	// out-of-range node. The old code would have panicked through the
	// caller; the fix converts it to a terminal error.
	cur.ex.g = ssd.New()
	rows := 1
	for cur.Next() {
		rows++
	}
	if cur.Err() == nil {
		t.Fatalf("mid-stream failure swallowed: %d rows then clean exhaustion", rows)
	}
	if !strings.Contains(cur.Err().Error(), "execution failed") {
		t.Errorf("unexpected error: %v", cur.Err())
	}
	// The terminal state is sticky, and survives Close: Err-after-Close is
	// the database/sql idiom, and the executor recycled by Close must not
	// be able to clobber it.
	if cur.Next() {
		t.Error("Next yielded a row after a terminal error")
	}
	want := cur.Err()
	cur.Close()
	if cur.Err() != want {
		t.Fatalf("Err after Close = %v, want %v", cur.Err(), want)
	}
}

// TestCursorReportsStaleIndex pins the realistic variant: a plan fed a
// label index built from a different (larger) snapshot yields posting
// entries pointing past the graph — an error, not a crash and not an empty
// result.
func TestCursorReportsStaleIndex(t *testing.T) {
	small := workload.Fig1(false)
	big := workload.Movies(workload.DefaultMovieConfig(500))
	q := MustParse(`select X from DB._*.Title X`)
	p, err := NewPlan(q, small, PlanOptions{Label: index.BuildLabelIndex(big)})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.Cursor(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	if cur.Err() == nil {
		t.Fatal("stale-index failure reported as clean exhaustion")
	}
}

// TestParallelWorkerFailure: a worker whose executor dies (here: a
// sabotaged automaton making the traversal panic) must surface through
// Cursor.Err at the merge, not hang the cursor or truncate silently.
func TestParallelWorkerFailure(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wp, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wp.atoms[1].steps[0].au = nil // worker's first pull will panic
	cur, err := p.CursorParallel(nil, nil, []*Plan{wp}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if cur.Err() == nil {
		t.Fatal("worker panic reported as clean exhaustion")
	}
	if !strings.Contains(cur.Err().Error(), "execution failed") {
		t.Errorf("unexpected error: %v", cur.Err())
	}
}

// TestParallelCancellation: cancelling the request context stops a parallel
// cursor promptly, reports the context error, and leaves the pool in a
// state Close can reap.
func TestParallelCancellation(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(2000))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur := openParallel(t, p, ctx, nil, 3, 16)
	defer cur.Close()
	for i := 0; i < 5; i++ {
		if !cur.Next() {
			t.Fatalf("row %d: premature end (err %v)", i, cur.Err())
		}
	}
	cancel()
	if cur.Next() {
		// One row may already be staged in the merge view; the next pull
		// after cancellation must stop.
		if cur.Next() {
			t.Fatal("cursor kept yielding after cancellation")
		}
	}
	if cur.Err() != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", cur.Err())
	}
}

// TestParallelCloseMidStream: abandoning a parallel cursor without draining
// it must stop the pool (Close returns only after workers quiesce) and make
// further Next calls report exhaustion.
func TestParallelCloseMidStream(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(1000))
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur := openParallel(t, p, nil, nil, 2, 4)
	if !cur.Next() {
		t.Fatal("no first row")
	}
	cur.Close()
	cur.Close() // idempotent
	if cur.Next() {
		t.Fatal("Next yielded after Close")
	}
}

// TestParallelFallbacks: single-atom plans and empty worker sets run on the
// serial engine behind the same Cursor face.
func TestParallelFallbacks(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select X from DB.Entry X`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.CursorParallel(nil, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for cur.Next() {
		n++
	}
	if n == 0 || cur.Err() != nil {
		t.Fatalf("fallback cursor: %d rows, err %v", n, cur.Err())
	}
}

// TestOptionsRejectNegatives is the regression test for negative
// Options.Parallelism / Options.MorselSize silently falling through the
// "> 1" / "> 0" comparisons and running serially with default morsels: both
// are now typed *OptionError failures, at both evaluation entry points.
func TestOptionsRejectNegatives(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	cases := []struct {
		opts  Options
		field string
		value int
	}{
		{Options{Parallelism: -1}, "Parallelism", -1},
		{Options{MorselSize: -8}, "MorselSize", -8},
		{Options{Parallelism: -3, MorselSize: -8}, "Parallelism", -3}, // first failure wins
	}
	for _, c := range cases {
		for name, eval := range map[string]func() (*ssd.Graph, error){
			"EvalOpts": func() (*ssd.Graph, error) { return EvalOpts(q, g, c.opts) },
			"EvalGraphCtx": func() (*ssd.Graph, error) {
				p, err := NewPlan(q, g, PlanOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return p.EvalGraphCtx(context.Background(), c.opts)
			},
		} {
			_, err := eval()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("%s %+v: err = %v, want *OptionError", name, c.opts, err)
			}
			if oe.Field != c.field || oe.Value != c.value {
				t.Errorf("%s %+v: got {%s %d}, want {%s %d}", name, c.opts, oe.Field, oe.Value, c.field, c.value)
			}
		}
	}
	// Zero stays valid: it means "pick defaults", not an error.
	if _, err := EvalOpts(q, g, Options{Minimize: true}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

// TestParallelIncompatibleWorker: handing the pool a plan for a different
// graph or query is refused up front.
func TestParallelIncompatibleWorker(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewPlan(MustParse(`select X from DB.Entry X`), g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CursorParallel(nil, nil, []*Plan{other}, 0); err == nil {
		t.Fatal("incompatible worker plan accepted")
	}
	g2 := workload.Fig1(false)
	wrongGraph, err := NewPlan(q, g2, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CursorParallel(nil, nil, []*Plan{wrongGraph}, 0); err == nil {
		t.Fatal("worker plan for a different graph accepted")
	}
}
