package query

import (
	"context"
	"sync"
	"testing"

	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestCursorCancellation: cancelling the context mid-iteration stops the
// executor within one pull and surfaces the error through Cursor.Err.
func TestCursorCancellation(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(2000))
	q := MustParse(`select X from DB._* X`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := p.Cursor(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("no first row")
	}
	cancel()
	rows := 1
	for cur.Next() {
		rows++
	}
	if cur.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", cur.Err())
	}
	// The strided inner check bounds post-cancel work to well under the
	// full scan; the pull-top check bounds it to one extra pull. With a
	// 2000-entry graph (tens of thousands of rows) anything close to the
	// full row count means cancellation did not take.
	if rows > 100 {
		t.Fatalf("executor produced %d rows after cancellation", rows)
	}
}

// TestEvalGraphCtxCancelled: a cancelled context aborts EvalGraphCtx with
// the context error rather than a partial result.
func TestEvalGraphCtxCancelled(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(500))
	q := MustParse(`select X from DB._* X`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.EvalGraphCtx(ctx, Options{Minimize: true}); err != context.Canceled {
		t.Fatalf("EvalGraphCtx = %v, want context.Canceled", err)
	}
}

// TestCursorParams: parameter binding through the cursor — missing and
// unknown names error, bound values select the same rows as literals.
func TestCursorParams(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`)
	if len(q.Params) != 1 || q.Params[0] != "who" {
		t.Fatalf("Params = %v", q.Params)
	}
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Cursor(nil, nil); err == nil {
		t.Fatal("missing parameter should error")
	}
	if _, err := p.Cursor(nil, map[string]ssd.Label{"who": ssd.Str("Allen"), "x": ssd.Int(1)}); err == nil {
		t.Fatal("unknown parameter should error")
	}
	count := func(who string) int {
		cur, err := p.Cursor(nil, map[string]ssd.Label{"who": ssd.Str(who)})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for cur.Next() {
			n++
		}
		return n
	}
	// Re-executing the same plan with different arguments — no re-plan.
	allen, bogart, nobody := count("Allen"), count("Bogart"), count("NoSuchActor")
	if allen == 0 || bogart == 0 {
		t.Fatalf("allen=%d bogart=%d, want both > 0", allen, bogart)
	}
	if nobody != 0 {
		t.Fatalf("nobody=%d, want 0", nobody)
	}
	// Literal cross-check.
	lq := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`)
	lp, err := NewPlan(lq, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lit := len(lp.Rows(0)); lit != allen {
		t.Fatalf("param rows %d != literal rows %d", allen, lit)
	}
}

// TestParamStepDedupAndSubst: a $parameter path step behaves exactly like
// the exact-label step it substitutes to, on both engines.
func TestParamStepDedupAndSubst(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select X from DB.Entry.$kind.Title X`)
	vals := map[string]ssd.Label{"kind": ssd.Sym("Movie")}

	sub, err := q.SubstParams(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Params) != 0 {
		t.Fatalf("substituted query still has params %v", sub.Params)
	}
	want, err := EvalNaive(sub, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalOpts(q, g, Options{Minimize: true, Params: vals})
	if err != nil {
		t.Fatal(err)
	}
	if gs, ws := ssd.FormatRoot(got), ssd.FormatRoot(want); gs != ws {
		t.Fatalf("param step differs:\n got: %s\nwant: %s", gs, ws)
	}

	// EvalRows refuses un-substituted parameterized queries.
	if _, err := EvalRows(q, g, 0); err == nil {
		t.Fatal("EvalRows on parameterized query should error")
	}
}

// TestConcurrentPlansSharedQuery is the -race regression for the shared-
// automaton hazard: two plans compiled from ONE parsed query must not
// share mutable lazy-DFA state, so concurrent cursors are race-free. The
// generated graph is large enough that the DFA caches keep growing while
// both goroutines run.
func TestConcurrentPlansSharedQuery(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(300))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := NewPlan(q, g, PlanOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			who := []string{"Allen", "Bogart", "Bacall", "Curtiz"}[i%4]
			cur, err := p.Cursor(nil, map[string]ssd.Label{"who": ssd.Str(who)})
			if err != nil {
				t.Error(err)
				return
			}
			for cur.Next() {
			}
		}(i)
	}
	wg.Wait()
}

// TestConcurrentNaiveSharedQuery: the naive evaluator compiles per-
// evaluation automata, so concurrent EvalNaive over one parsed query is
// race-free too.
func TestConcurrentNaiveSharedQuery(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(60))
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := EvalNaive(q, g); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
