package query

import (
	"strings"
	"testing"

	"repro/internal/bisim"
	"repro/internal/ssd"
)

const fig1 = `
{Entry: #e1{Movie: {Title: "Casablanca",
                    Cast: {1: "Bogart", 2: "Bacall"},
                    Director: {"Curtiz"}}},
 Entry: #e2{Movie: {Title: "Play it again, Sam",
                    Cast: {Credit: {Actors: {"Allen"}}},
                    Director: {"Allen"},
                    References: #e1}},
 Entry: {TV-Show: {Title: "Bogart retrospective",
                   Cast: {Special-Guests: {"Bacall"}},
                   Episode: 1200000}}}`

func db(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(fig1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func run(t *testing.T, g *ssd.Graph, src string) *ssd.Graph {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := Eval(q, g)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return res
}

func wantValue(t *testing.T, got *ssd.Graph, wantSrc string) {
	t.Helper()
	want := ssd.MustParse(wantSrc)
	if !bisim.Equal(got, want) {
		t.Errorf("result mismatch:\n got: %s\nwant: %s", ssd.FormatRoot(got), wantSrc)
	}
}

func TestSelectTitles(t *testing.T) {
	g := db(t)
	res := run(t, g, `select T from DB.Entry.Movie.Title T`)
	// Union of the two title objects: both title strings merge at the root.
	wantValue(t, res, `{"Casablanca", "Play it again, Sam"}`)
}

func TestSelectTemplate(t *testing.T) {
	g := db(t)
	res := run(t, g, `select {Movie: {Title: T}} from DB.Entry.Movie.Title T`)
	wantValue(t, res, `{Movie: {Title: {"Casablanca"}}, Movie: {Title: {"Play it again, Sam"}}}`)
}

func TestWhereEquality(t *testing.T) {
	g := db(t)
	// The paper's motivating query: did "Allen" act in something? Find
	// movie titles where some cast path reaches "Allen".
	res := run(t, g, `
		select {Title: T}
		from DB.Entry.Movie M,
		     M.Title T,
		     M.Cast._* A
		where A = "Allen"`)
	wantValue(t, res, `{Title: {"Play it again, Sam"}}`)
}

func TestWhereComparison(t *testing.T) {
	g := db(t)
	// §1.3: integers greater than 2^16.
	res := run(t, g, `
		select {Big: X}
		from DB._*.isint X
		where X > 65536 or not X = X`)
	// X binds the node AFTER the int edge (a leaf), whose value set is
	// empty; bind via label instead.
	_ = res
	res2 := run(t, g, `
		select {Big: %N}
		from DB._* X, X.%N Y
		where isint(%N) and %N > 65536`)
	wantValue(t, res2, `{Big: {1200000}}`)
}

func TestLabelVariableJoin(t *testing.T) {
	g := ssd.MustParse(`{a: {x: 1}, b: {x: 2}, c: {y: 3}}`)
	// Find labels L occurring under both a and b.
	res := run(t, g, `
		select {Shared: %L}
		from DB.a A, A.%L V, DB.b B, B.%L W`)
	wantValue(t, res, `{Shared: {x}}`)
}

func TestSelectLabelVarAsEdge(t *testing.T) {
	g := db(t)
	// Attribute names of movie objects — schema browsing without a schema.
	res := run(t, g, `select {%L} from DB.Entry.Movie M, M.%L X`)
	wantValue(t, res, `{Title, Cast, Director, References}`)
}

func TestLikeCond(t *testing.T) {
	g := db(t)
	// §1.3: attribute names starting with a prefix.
	res := run(t, g, `
		select {%L}
		from DB._* X, X.%L Y
		where %L like "Cast%"`)
	wantValue(t, res, `{Cast}`)
}

func TestExists(t *testing.T) {
	g := db(t)
	res := run(t, g, `
		select {Title: T}
		from DB.Entry.Movie M, M.Title T
		where exists M.References`)
	wantValue(t, res, `{Title: {"Play it again, Sam"}}`)
	res2 := run(t, g, `
		select {Title: T}
		from DB.Entry.Movie M, M.Title T
		where not exists M.References`)
	wantValue(t, res2, `{Title: {"Casablanca"}}`)
}

func TestTwoWaysOfCast(t *testing.T) {
	g := db(t)
	// The Figure 1 irregularity: casts are represented two ways. A single
	// regular path expression covers both.
	res := run(t, g, `
		select {Actor: A}
		from DB.Entry.Movie M,
		     M.Cast.(isint|Credit.Actors)? A`)
	// A binds cast, cast members under ints, and the Actors object.
	if res.NumEdges() == 0 {
		t.Fatal("no actors found")
	}
	// More precisely: collect the actual name strings.
	res2 := run(t, g, `
		select {Name: %N}
		from DB.Entry.Movie M,
		     M.Cast.(isint)?.(Credit.Actors)? A,
		     A.%N L
		where isstring(%N)`)
	wantValue(t, res2, `{Name: {"Bogart"}, Name: {"Bacall"}, Name: {"Allen"}}`)
}

func TestCrossEntryReference(t *testing.T) {
	g := db(t)
	// Follow the References edge to the referenced movie's title.
	res := run(t, g, `
		select {RefTitle: T}
		from DB.Entry.Movie M, M.References.Movie.Title T`)
	wantValue(t, res, `{RefTitle: {"Casablanca"}}`)
}

func TestUnionSetSemantics(t *testing.T) {
	g := ssd.MustParse(`{a: {v: 1}, b: {v: 1}}`)
	// Two tuples produce identical {Out: {v:1}} trees: set semantics must
	// collapse them into one.
	res := run(t, g, `select {Out: X} from DB.(a|b) X`)
	wantValue(t, res, `{Out: {v: 1}}`)
}

func TestCyclicResult(t *testing.T) {
	g := ssd.MustParse(`#r{next: #r, tag: "loop"}`)
	res := run(t, g, `select X from DB.next X`)
	// X is the root itself; copying must preserve the cycle.
	nxt := res.LookupFirst(res.Root(), ssd.Sym("next"))
	if nxt == ssd.InvalidNode {
		t.Fatal("next edge missing")
	}
	if !bisim.Bisimilar(res, res.Root(), g, g.Root()) {
		t.Error("cyclic result not value-equal to source")
	}
}

func TestEmptyResult(t *testing.T) {
	g := db(t)
	res := run(t, g, `select T from DB.Entry.Movie.Nonexistent T`)
	if res.NumEdges() != 0 {
		t.Errorf("expected empty result, got %s", ssd.FormatRoot(res))
	}
}

func TestTypeTestOnTreeVar(t *testing.T) {
	g := ssd.MustParse(`{a: {v: 1}, b: {v: "s"}}`)
	res := run(t, g, `
		select {IntHolder: %L}
		from DB.%L X, X.v V
		where isint(V)`)
	wantValue(t, res, `{IntHolder: {a}}`)
}

func TestRowCap(t *testing.T) {
	g := db(t)
	q := MustParse(`select X from DB._* X`)
	rows, err := EvalRows(q, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("row cap: %d rows, want 3", len(rows))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`select`,
		`select X`,
		`select X from`,
		`select X from Y.a X`,                   // source Y unbound
		`select X from DB.a X, DB.b X`,          // duplicate var
		`select Z from DB.a X where %Q = 1`,     // unbound label var
		`select {%Q: X} from DB.a X`,            // unbound label var in template
		`select X from DB.a X where exists Q.b`, // unbound exists source
		`select X from DB.a X where`,            // missing condition
		`select X from DB.a X junk more`,        // trailing
		`select X from DB.(a X`,                 // bad path
		`select X from DB.a X where isint()`,    // missing term
		`select X from DB.a X where select = 1`, // keyword as term
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		`select {Title: T} from DB.Entry.Movie M, M.Title T where A = "Allen" or isint(%L)`,
		`select X from DB._* X`,
	}
	// Only structural check: printing then reparsing must succeed for
	// queries whose variables are all bound.
	q := MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T where T = "x" and not exists M.Ref`)
	printed := q.String()
	q2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", printed, err)
	}
	if !strings.Contains(q2.String(), "select") {
		t.Error("print broken")
	}
	_ = srcs
}

func TestEvalRowsBindings(t *testing.T) {
	g := db(t)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	rows, err := EvalRows(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if _, ok := r.Trees["M"]; !ok {
			t.Error("M unbound in row")
		}
		if _, ok := r.Trees["T"]; !ok {
			t.Error("T unbound in row")
		}
	}
}

func TestDedupBindingPaths(t *testing.T) {
	// Node reachable via two paths binds once per distinct node, not per
	// path.
	g := ssd.MustParse(`{a: #x{v: 1}, b: #x}`)
	q := MustParse(`select X from DB._ X`)
	rows, err := EvalRows(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1 (shared node binds once)", len(rows))
	}
}
