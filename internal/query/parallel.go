package query

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ssd"
)

// This file is the morsel-driven parallel executor. The serial engine
// (exec.go) interprets a plan as a left-deep nested-loop join whose leading
// atom enumerates the "driver" rows; parallel execution keeps exactly that
// structure and splits it at the leading atom:
//
//   - a coordinator executor materializes the leading atom's rows ("seeds":
//     the destination node plus whatever label/path slots the atom's steps
//     bind), in the serial engine's order, partitioned into fixed-size
//     morsels;
//   - a pool of workers pulls morsels from a shared queue; each worker owns
//     a whole compiled Plan (its own automata, its own lazy-DFA caches, its
//     own slot registers — shared-nothing) and runs atoms[1:] for every
//     seed, batching the surviving rows;
//   - the consumer (the Cursor) merges per-morsel row batches in morsel
//     order through bounded channels.
//
// Because seeds are enumerated in serial order, morsels partition that
// order, each worker preserves within-morsel order, and the merge releases
// morsels in order, the parallel cursor yields rows in EXACTLY the serial
// engine's order — the result is byte-identical even before
// bisim.Canonicalize, which is what the engine cross-check suite pins.
//
// Errors follow the same path as rows: a worker failure (including a
// recovered panic) travels as a terminal batch through the morsel it
// occurred in, so the consumer observes it at the same point in the row
// stream where the serial engine would have — never as a silent truncation.

const (
	// DefaultMorselSize is the number of leading-atom seed rows per morsel
	// when Options.MorselSize is zero. Small enough to load-balance skewed
	// per-seed work, large enough to amortize channel traffic.
	DefaultMorselSize = 128

	// parBatchRows caps the rows buffered into one merge batch.
	parBatchRows = 256

	// morselResultBuf is the per-morsel result channel capacity, in batches.
	// Workers run at most this far ahead of the in-order merge within one
	// morsel before blocking — the memory bound of the merge.
	morselResultBuf = 4
)

// seedRow is one materialized row of the leading atom: the bound tree node
// plus the label/path slots the atom's steps bind (in leadSlots order).
type seedRow struct {
	tree   ssd.NodeID
	labels []ssd.Label
	paths  [][]ssd.Label
}

// leadSlots lists the register slots the leading atom binds beyond its
// destination tree slot — the part of a seed row that must be shipped to
// workers alongside the node.
type leadSlots struct {
	labels []int
	paths  []int
}

func (p *Plan) leadSlots() leadSlots {
	var ls leadSlots
	if len(p.atoms) == 0 {
		return ls
	}
	for _, st := range p.atoms[0].steps {
		switch st.kind {
		case stepLabelVar:
			if st.slot >= 0 && !st.filter {
				ls.labels = append(ls.labels, st.slot)
			}
		case stepPathVar:
			if st.slot >= 0 {
				ls.paths = append(ls.paths, st.slot)
			}
		}
	}
	return ls
}

// rowBatch is a flat, struct-of-arrays block of merged result rows: row r's
// tree slots live at trees[r*nT:(r+1)*nT], and likewise for labels/paths.
// A batch with err != nil is terminal for the whole execution.
type rowBatch struct {
	n      int
	trees  []ssd.NodeID
	labels []ssd.Label
	paths  [][]ssd.Label
	err    error
}

// morsel is one unit of worker work: a contiguous run of seeds plus the
// channel its row batches are delivered on.
type morsel struct {
	seeds []seedRow
	out   chan rowBatch
}

// CursorParallel opens a parallel streaming execution of the plan across
// len(workers) worker executors, one per supplied plan. Every worker plan
// must be compiled from the same query, graph and PlanOptions as p (the
// statement layer's plan pool hands out exactly such siblings; NewPlan with
// identical arguments is deterministic). p itself is used only to seed the
// leading atom, so p plus workers may all come from one pool checkout.
//
// Plans with fewer than two atoms, or an empty worker set, fall back to the
// serial cursor: there is no join work to fan out. morselSize <= 0 uses
// DefaultMorselSize. Row order, and therefore the materialized result, is
// identical to the serial engine's.
func (p *Plan) CursorParallel(ctx context.Context, params map[string]ssd.Label, workers []*Plan, morselSize int) (*Cursor, error) {
	vals, err := p.paramVals(params)
	if err != nil {
		return nil, err
	}
	if len(workers) == 0 || len(p.atoms) < 2 {
		ex := p.exec(ctx, vals)
		return &Cursor{p: p, regs: &ex.regs, ex: ex}, nil
	}
	for i, w := range workers {
		if err := p.compatible(w); err != nil {
			return nil, fmt.Errorf("query: worker plan %d: %w", i, err)
		}
	}
	if morselSize <= 0 {
		morselSize = DefaultMorselSize
	}

	pc := newParCursor(ctx, p, vals, workers, morselSize)
	return &Cursor{p: p, regs: &pc.regs, par: pc}, nil
}

// compatible checks that w is a compiled sibling of p: same shape, same
// slot tables, same graph. It guards against handing the worker pool plans
// for a different query or snapshot.
func (p *Plan) compatible(w *Plan) error {
	switch {
	case w == nil:
		return fmt.Errorf("nil plan")
	case w.g != p.g:
		return fmt.Errorf("compiled against a different graph")
	case len(w.atoms) != len(p.atoms),
		len(w.treeName) != len(p.treeName),
		len(w.labelName) != len(p.labelName),
		len(w.pathName) != len(p.pathName),
		len(w.paramName) != len(p.paramName):
		return fmt.Errorf("compiled from a different query")
	}
	return nil
}

// parCursor is the consumer half of the parallel scan: it owns the merge
// state and exposes one row at a time through regs, mirroring the serial
// executor's register contract.
type parCursor struct {
	p    *Plan
	regs regs

	ctx    context.Context // caller's context (nil allowed)
	cancel context.CancelFunc
	wg     sync.WaitGroup

	order chan chan rowBatch // per-morsel result channels, in seed order
	cur   chan rowBatch      // current morsel's channel, nil between morsels
	batch rowBatch
	ri    int // next row within batch

	err    error
	done   bool
	closed bool
}

func newParCursor(ctx context.Context, p *Plan, vals []ssd.Label, workers []*Plan, morselSize int) *parCursor {
	parent := ctx
	if parent == nil {
		parent = context.Background()
	}
	workCtx, cancel := context.WithCancel(parent)
	pc := &parCursor{
		p:      p,
		ctx:    ctx,
		cancel: cancel,
		order:  make(chan chan rowBatch, 2*len(workers)+2),
		regs: regs{
			trees:  make([]ssd.NodeID, len(p.treeName)),
			labels: make([]ssd.Label, len(p.labelName)),
			paths:  make([][]ssd.Label, len(p.pathName)),
		},
	}
	ls := p.leadSlots()
	morsels := make(chan morsel, len(workers))

	// Workers: one executor per plan, shared-nothing. Each runs atoms[1:]
	// from every seed of its morsel, in order.
	for _, wp := range workers {
		pc.wg.Add(1)
		go func(wp *Plan) {
			defer pc.wg.Done()
			runWorker(workCtx, wp, vals, ls, morsels)
		}(wp)
	}

	// Coordinator: drive the leading atom serially, slice its rows into
	// morsels, and publish each morsel's result channel in order. Closing
	// order (after all morsels are enqueued) is the consumer's end-of-
	// stream signal; closing morsels releases idle workers.
	pc.wg.Add(1)
	go func() {
		defer pc.wg.Done()
		defer close(pc.order)
		defer close(morsels)
		seedEx := p.exec(workCtx, vals)
		seedEx.relaxedPoll = true
		seedEx.atoms = seedEx.atoms[:1] // drive only the leading atom
		defer func() {
			// Undo the truncation before recycling: the next execution of
			// this plan gets the full atom list back.
			seedEx.atoms = seedEx.atoms[:len(p.atoms)]
			seedEx.release()
		}()
		dstSlot := p.atoms[0].dstSlot

		seeds := make([]seedRow, 0, morselSize)
		emit := func() bool {
			out := make(chan rowBatch, morselResultBuf)
			select {
			case pc.order <- out:
			case <-workCtx.Done():
				return false
			}
			select {
			case morsels <- morsel{seeds: seeds, out: out}:
			case <-workCtx.Done():
				return false
			}
			seeds = make([]seedRow, 0, morselSize)
			return true
		}
		for seedEx.Next() {
			s := seedRow{tree: seedEx.regs.trees[dstSlot]}
			if len(ls.labels) > 0 {
				s.labels = make([]ssd.Label, len(ls.labels))
				for i, slot := range ls.labels {
					s.labels[i] = seedEx.regs.labels[slot]
				}
			}
			if len(ls.paths) > 0 {
				s.paths = make([][]ssd.Label, len(ls.paths))
				for i, slot := range ls.paths {
					s.paths[i] = seedEx.regs.paths[slot]
				}
			}
			seeds = append(seeds, s)
			if len(seeds) >= morselSize && !emit() {
				return
			}
		}
		if len(seeds) > 0 && !emit() {
			return
		}
		if err := seedEx.err; err != nil {
			// Seed-phase failure: deliver it as a terminal morsel so the
			// consumer sees every row produced before the failure, then the
			// error — the same prefix semantics as the serial engine.
			out := make(chan rowBatch, 1)
			out <- rowBatch{err: err}
			close(out)
			select {
			case pc.order <- out:
			case <-workCtx.Done():
			}
		}
	}()
	return pc
}

// runWorker executes morsels until the queue closes. Any failure of its
// executor — cancellation or a recovered panic — is delivered as a terminal
// batch on the failing morsel's channel; the worker then keeps draining the
// queue (closing each morsel's channel immediately) so the coordinator is
// never blocked on a dead consumer.
func runWorker(ctx context.Context, wp *Plan, vals []ssd.Label, ls leadSlots, morsels <-chan morsel) {
	ex := wp.exec(ctx, vals)
	ex.base = 1
	ex.relaxedPoll = true
	defer ex.release() // visible to the next checkout via Close's wg.Wait
	for m := range morsels {
		if ex.err != nil {
			close(m.out) // terminal batch already delivered; just drain
			continue
		}
		if !workMorsel(ctx, ex, wp, ls, m) {
			return // work context cancelled mid-send: the consumer is gone
		}
	}
}

// workMorsel runs atoms[1:] for every seed of m in order, delivering row
// batches on m.out and closing it. It reports false only when the work
// context is cancelled mid-send. Executor failures arrive via ex.err (the
// executor recovers its own panics); a panic in the merge machinery itself
// is additionally recovered here, so a worker can never die without
// terminating its morsel's channel.
func workMorsel(ctx context.Context, ex *executor, wp *Plan, ls leadSlots, m morsel) (alive bool) {
	defer close(m.out)
	alive = true
	var b rowBatch
	send := func(batch rowBatch) bool {
		select {
		case m.out <- batch:
			return true
		case <-ctx.Done():
			alive = false
			return false
		}
	}
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("query: parallel worker panic: %v", r))
			send(rowBatch{err: ex.err})
		}
	}()
	nT, nL, nP := len(wp.treeName), len(wp.labelName), len(wp.pathName)
	dstSlot := wp.atoms[0].dstSlot
	for _, s := range m.seeds {
		ex.regs.trees[dstSlot] = s.tree
		for i, slot := range ls.labels {
			ex.regs.labels[slot] = s.labels[i]
		}
		for i, slot := range ls.paths {
			ex.regs.paths[slot] = s.paths[i]
		}
		ex.started, ex.done = false, false
		for ex.Next() {
			b.trees = append(b.trees, ex.regs.trees[:nT]...)
			b.labels = append(b.labels, ex.regs.labels[:nL]...)
			b.paths = append(b.paths, ex.regs.paths[:nP]...)
			b.n++
			if b.n >= parBatchRows {
				if !send(b) {
					return
				}
				b = rowBatch{}
			}
		}
		if ex.err != nil {
			b.err = ex.err
			break
		}
	}
	if b.n > 0 || b.err != nil {
		send(b)
	}
	return
}

// Next advances the merge to the next row, copying it into regs. It returns
// false on exhaustion, terminal error, or cancellation; Err distinguishes.
func (pc *parCursor) Next() bool {
	if pc.done {
		return false
	}
	var ctxDone <-chan struct{}
	if pc.ctx != nil {
		if err := pc.ctx.Err(); err != nil {
			return pc.finish(err)
		}
		ctxDone = pc.ctx.Done()
	}
	for {
		if pc.ri < pc.batch.n {
			r := pc.ri
			pc.ri++
			nT, nL, nP := len(pc.regs.trees), len(pc.regs.labels), len(pc.regs.paths)
			copy(pc.regs.trees, pc.batch.trees[r*nT:(r+1)*nT])
			copy(pc.regs.labels, pc.batch.labels[r*nL:(r+1)*nL])
			copy(pc.regs.paths, pc.batch.paths[r*nP:(r+1)*nP])
			return true
		}
		if pc.cur == nil {
			select {
			case c, ok := <-pc.order:
				if !ok {
					return pc.finish(nil) // clean exhaustion
				}
				pc.cur = c
			case <-ctxDone:
				return pc.finish(pc.ctx.Err())
			}
			continue
		}
		select {
		case b, ok := <-pc.cur:
			if !ok {
				pc.cur = nil
				continue
			}
			if b.err != nil {
				return pc.finish(b.err)
			}
			pc.batch, pc.ri = b, 0
		case <-ctxDone:
			return pc.finish(pc.ctx.Err())
		}
	}
}

// finish records the terminal state and tears the pool down. The workers
// notice the cancellation within one executor pull and exit; their blocked
// sends all select on the work context.
func (pc *parCursor) finish(err error) bool {
	pc.done = true
	if pc.err == nil {
		pc.err = err
	}
	pc.cancel()
	return false
}

func (pc *parCursor) Err() error { return pc.err }

// Close stops the pool and waits for the coordinator and every worker to
// exit, so the plans they borrowed can be reused (or returned to a pool)
// safely. Idempotent; subsequent Next calls report exhaustion.
func (pc *parCursor) Close() {
	if pc.closed {
		return
	}
	pc.closed = true
	pc.done = true
	pc.cancel()
	pc.wg.Wait()
}
