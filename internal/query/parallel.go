package query

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ssd"
)

// This file is the morsel-driven parallel executor. The serial engine
// (exec.go) interprets a plan as a left-deep nested-loop join whose leading
// atom enumerates the "driver" rows; parallel execution keeps exactly that
// structure and splits it at the leading atom:
//
//   - a coordinator executor materializes the leading atom's rows ("seeds":
//     the destination node plus whatever label/path slots the atom's steps
//     bind), in the serial engine's order, partitioned into fixed-size
//     morsels;
//   - a pool of workers pulls morsels from a shared queue; each worker owns
//     a whole compiled Plan (its own automata, its own lazy-DFA caches, its
//     own slot registers — shared-nothing) and runs atoms[1:] for every
//     seed, batching the surviving rows;
//   - the consumer (the Cursor) merges per-morsel row batches in morsel
//     order through bounded channels.
//
// Because seeds are enumerated in serial order, morsels partition that
// order, each worker preserves within-morsel order, and the merge releases
// morsels in order, the parallel cursor yields rows in EXACTLY the serial
// engine's order — the result is byte-identical even before
// bisim.Canonicalize, which is what the engine cross-check suite pins.
//
// Errors follow the same path as rows: a worker failure (including a
// recovered panic) travels as a terminal batch through the morsel it
// occurred in, so the consumer observes it at the same point in the row
// stream where the serial engine would have — never as a silent truncation.
//
// Adaptive splitting: morsel size is fixed up front (from the cost model's
// seed estimate via Plan.ParallelHint, or Options.MorselSize), but per-seed
// fan-out is only an estimate. When a worker observes a morsel producing far
// more rows per seed than the plan predicted, it hands off the unprocessed
// seed suffix as a new morsel to an IDLE worker — a rendezvous on an
// unbuffered channel, so the handoff happens only if another worker is
// parked waiting for work at that instant — and hands the consumer a
// continuation channel in its final batch. Order preservation survives
// because a split never reorders seeds: the suffix morsel's rows are
// delivered on the continuation channel, which the merge switches to exactly
// where the original morsel's rows end — the concatenation is the same
// seed-order row stream, just produced by two workers. Splits chain: a
// suffix morsel may itself split again.

const (
	// DefaultMorselSize is the number of leading-atom seed rows per morsel
	// when Options.MorselSize is zero. Small enough to load-balance skewed
	// per-seed work, large enough to amortize channel traffic.
	DefaultMorselSize = 128

	// parBatchRows caps the rows buffered into one merge batch.
	parBatchRows = 256

	// morselResultBuf is the per-morsel result channel capacity, in batches.
	// Workers run at most this far ahead of the in-order merge within one
	// morsel before blocking — the memory bound of the merge.
	morselResultBuf = 4

	// splitMinSeedsLeft is the smallest seed suffix worth splitting off —
	// below it the handoff costs more than finishing inline.
	splitMinSeedsLeft = 2
)

// Split tuning. Variables rather than constants only so tests can force the
// splitting path on small fixtures; production treats them as constants.
var (
	// splitFactor is how far observed per-seed fan-out must exceed the cost
	// model's estimate before a worker splits off its remaining seeds.
	splitFactor = 8.0

	// splitMinRows is the minimum rows a morsel must have produced before a
	// worker considers splitting it, regardless of the estimate ratio.
	splitMinRows int64 = 512
)

// seedRow is one materialized row of the leading atom: the bound tree node
// plus the label/path slots the atom's steps bind (in leadSlots order).
type seedRow struct {
	tree   ssd.NodeID
	labels []ssd.Label
	paths  [][]ssd.Label
}

// leadSlots lists the register slots the leading atom binds beyond its
// destination tree slot — the part of a seed row that must be shipped to
// workers alongside the node.
type leadSlots struct {
	labels []int
	paths  []int
}

func (p *Plan) leadSlots() leadSlots {
	var ls leadSlots
	if len(p.atoms) == 0 {
		return ls
	}
	for _, st := range p.atoms[0].steps {
		switch st.kind {
		case stepLabelVar:
			if st.slot >= 0 && !st.filter {
				ls.labels = append(ls.labels, st.slot)
			}
		case stepPathVar:
			if st.slot >= 0 {
				ls.paths = append(ls.paths, st.slot)
			}
		}
	}
	return ls
}

// rowBatch is a flat, struct-of-arrays block of merged result rows: row r's
// tree slots live at trees[r*nT:(r+1)*nT], and likewise for labels/paths.
// A batch with err != nil is terminal for the whole execution. A batch with
// cont != nil is terminal for its channel: the morsel was split, and the
// rows for its remaining seeds follow on cont.
type rowBatch struct {
	n      int
	trees  []ssd.NodeID
	labels []ssd.Label
	paths  [][]ssd.Label
	err    error
	cont   chan rowBatch
}

// morsel is one unit of worker work: a contiguous run of seeds plus the
// channel its row batches are delivered on.
type morsel struct {
	seeds []seedRow
	out   chan rowBatch
}

// parShared is the state a worker pool shares for adaptive morsel splitting:
// the split rendezvous channel, plus the accounting that tells idle workers
// when no more work — in flight or future — can possibly arrive.
//
// Liveness argument for splits: the splits channel is UNBUFFERED and the
// splitting worker's send is non-blocking, so a split happens only when an
// idle worker is parked on a receive at that instant — every split morsel
// has an owner from the moment it exists, and there is never an orphaned
// split waiting in a queue. From there the usual progress argument applies:
// a worker only ever sends on the channel of the morsel it owns, so the
// owner of the merge-front morsel can always make progress (the merge drains
// exactly that channel), which in turn eventually unblocks every worker
// parked on a bounded send for a later morsel. (A buffered split queue
// breaks this: a queued split at the merge front can be stranded while every
// worker is blocked sending for later-positioned morsels — a deadlock.)
// Splitting only when a worker is idle is also exactly when splitting helps;
// if the whole pool is busy, handing work around buys nothing.
type parShared struct {
	splits   chan morsel   // split handoff rendezvous; never closed
	pending  atomic.Int64  // morsels emitted or split, not yet completed
	seeding  atomic.Bool   // coordinator still producing primary morsels
	done     chan struct{} // closed once seeding ended and pending hit zero
	doneOnce sync.Once
	nsplits  atomic.Int64 // splits performed; observability and tests

	splitMisses atomic.Int64 // split attempts that found no idle worker
	nmorsels    atomic.Int64 // morsels created (primary emits + splits)

	// trace, when non-nil, is the query's ExecTrace. The coordinator and
	// each worker record into private traces and fold them in under traceMu
	// at exit; the consumer reads the merged result only after Close's
	// wg.Wait, so reads never race the merges.
	trace   *ExecTrace
	traceMu sync.Mutex
}

// mergeTrace folds a goroutine-local trace into the query trace.
func (sh *parShared) mergeTrace(o *ExecTrace) {
	sh.traceMu.Lock()
	sh.trace.merge(o)
	sh.traceMu.Unlock()
}

func newParShared() *parShared {
	sh := &parShared{
		splits: make(chan morsel),
		done:   make(chan struct{}),
	}
	sh.seeding.Store(true)
	return sh
}

// morselDone retires one unit of pending work.
func (sh *parShared) morselDone() {
	if sh.pending.Add(-1) == 0 && !sh.seeding.Load() {
		sh.doneOnce.Do(func() { close(sh.done) })
	}
}

// finishSeeding marks the primary morsel stream exhausted. Between it and
// morselDone, whichever observes the final state (no seeding, no pending)
// closes done; a split increments pending before its parent morsel retires,
// so pending can never transiently read zero while work is still queued.
func (sh *parShared) finishSeeding() {
	sh.seeding.Store(false)
	if sh.pending.Load() == 0 {
		sh.doneOnce.Do(func() { close(sh.done) })
	}
}

// CursorParallel opens a parallel streaming execution of the plan across
// len(workers) worker executors, one per supplied plan. Every worker plan
// must be compiled from the same query, graph and PlanOptions as p (the
// statement layer's plan pool hands out exactly such siblings; NewPlan with
// identical arguments is deterministic). p itself is used only to seed the
// leading atom, so p plus workers may all come from one pool checkout.
//
// Plans with fewer than two atoms, or an empty worker set, fall back to the
// serial cursor: there is no join work to fan out. morselSize <= 0 asks the
// plan's cost model for a size (Plan.ParallelHint), falling back to
// DefaultMorselSize when the model has no estimate. Row order, and therefore
// the materialized result, is identical to the serial engine's.
//
//ssd:mustclose
func (p *Plan) CursorParallel(ctx context.Context, params map[string]ssd.Label, workers []*Plan, morselSize int) (*Cursor, error) {
	return p.CursorParallelTrace(ctx, params, workers, morselSize, nil)
}

// CursorParallelTrace is CursorParallel with operator-level statistics
// recorded into tr (reinitialized for this plan): per-atom rows and wall
// time summed across workers, plus the pool shape — workers, morsel size,
// morsels executed, adaptive splits and misses, and consumer merge stalls.
// The trace is complete only after the cursor is closed (Close waits for
// the pool to quiesce). A nil tr degrades to CursorParallel exactly.
//
//ssd:mustclose
func (p *Plan) CursorParallelTrace(ctx context.Context, params map[string]ssd.Label, workers []*Plan, morselSize int, tr *ExecTrace) (*Cursor, error) {
	vals, err := p.paramVals(params)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.init(len(p.atoms))
	}
	if len(workers) == 0 || len(p.atoms) < 2 {
		ex := p.exec(ctx, vals)
		ex.trace = tr
		return &Cursor{p: p, regs: &ex.regs, ex: ex}, nil
	}
	for i, w := range workers {
		if err := p.compatible(w); err != nil {
			return nil, fmt.Errorf("query: worker plan %d: %w", i, err)
		}
	}
	if morselSize <= 0 {
		n := len(workers)
		if n < 2 {
			n = 2
		}
		if _, hint := p.ParallelHint(n); hint > 0 {
			morselSize = hint
		} else {
			morselSize = DefaultMorselSize
		}
	}

	if tr != nil {
		tr.Workers = len(workers)
		tr.MorselSize = morselSize
	}
	pc := newParCursor(ctx, p, vals, workers, morselSize, tr)
	return &Cursor{p: p, regs: &pc.regs, par: pc}, nil
}

// compatible checks that w is a compiled sibling of p: same shape, same
// slot tables, same graph. It guards against handing the worker pool plans
// for a different query or snapshot.
func (p *Plan) compatible(w *Plan) error {
	switch {
	case w == nil:
		return fmt.Errorf("nil plan")
	case w.g != p.g:
		return fmt.Errorf("compiled against a different graph")
	case len(w.atoms) != len(p.atoms),
		len(w.treeName) != len(p.treeName),
		len(w.labelName) != len(p.labelName),
		len(w.pathName) != len(p.pathName),
		len(w.paramName) != len(p.paramName):
		return fmt.Errorf("compiled from a different query")
	}
	return nil
}

// parCursor is the consumer half of the parallel scan: it owns the merge
// state and exposes one row at a time through regs, mirroring the serial
// executor's register contract.
type parCursor struct {
	p    *Plan
	regs regs

	ctx    context.Context // caller's context (nil allowed)
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sh     *parShared

	order chan chan rowBatch // per-morsel result channels, in seed order
	cur   chan rowBatch      // current morsel's channel, nil between morsels
	batch rowBatch
	ri    int // next row within batch

	err    error
	done   bool
	closed bool

	trace *ExecTrace // query trace; nil when tracing is off
}

func newParCursor(ctx context.Context, p *Plan, vals []ssd.Label, workers []*Plan, morselSize int, tr *ExecTrace) *parCursor {
	parent := ctx
	if parent == nil {
		parent = context.Background()
	}
	workCtx, cancel := context.WithCancel(parent)
	pc := &parCursor{
		p:      p,
		ctx:    ctx,
		cancel: cancel,
		order:  make(chan chan rowBatch, 2*len(workers)+2),
		regs: regs{
			trees:  make([]ssd.NodeID, len(p.treeName)),
			labels: make([]ssd.Label, len(p.labelName)),
			paths:  make([][]ssd.Label, len(p.pathName)),
		},
	}
	ls := p.leadSlots()
	morsels := make(chan morsel, len(workers))
	sh := newParShared()
	sh.trace = tr
	pc.sh = sh
	pc.trace = tr

	// Workers: one executor per plan, shared-nothing. Each runs atoms[1:]
	// from every seed of its morsel, in order.
	for _, wp := range workers {
		pc.wg.Add(1)
		go func(wp *Plan) {
			defer pc.wg.Done()
			runWorker(workCtx, wp, vals, ls, morsels, sh)
		}(wp)
	}

	// Coordinator: drive the leading atom serially, slice its rows into
	// morsels, and publish each morsel's result channel in order. Closing
	// order (after all morsels are enqueued) is the consumer's end-of-
	// stream signal; closing morsels releases idle workers.
	pc.wg.Add(1)
	go func() {
		defer pc.wg.Done()
		defer close(pc.order)
		defer close(morsels)
		defer sh.finishSeeding()
		seedEx := p.exec(workCtx, vals)
		seedEx.relaxedPoll = true
		seedEx.atoms = seedEx.atoms[:1] // drive only the leading atom
		var seedTr *ExecTrace
		if sh.trace != nil {
			// Trace into a coordinator-local recorder (full atom length;
			// only the leading atom's span gets written) and fold it in at
			// exit like any worker.
			seedTr = new(ExecTrace)
			seedTr.init(len(p.atoms))
			seedEx.trace = seedTr
		}
		defer func() {
			// Undo the truncation before recycling: the next execution of
			// this plan gets the full atom list back.
			seedEx.atoms = seedEx.atoms[:len(p.atoms)]
			seedEx.trace = nil
			seedEx.release()
			if seedTr != nil {
				sh.mergeTrace(seedTr)
			}
		}()
		dstSlot := p.atoms[0].dstSlot

		seeds := make([]seedRow, 0, morselSize)
		emit := func() bool {
			out := make(chan rowBatch, morselResultBuf)
			select {
			case pc.order <- out:
			case <-workCtx.Done():
				return false
			}
			sh.pending.Add(1)
			sh.nmorsels.Add(1)
			select {
			case morsels <- morsel{seeds: seeds, out: out}:
			case <-workCtx.Done():
				return false
			}
			seeds = make([]seedRow, 0, morselSize)
			return true
		}
		for seedEx.Next() {
			s := seedRow{tree: seedEx.regs.trees[dstSlot]}
			if len(ls.labels) > 0 {
				s.labels = make([]ssd.Label, len(ls.labels))
				for i, slot := range ls.labels {
					s.labels[i] = seedEx.regs.labels[slot]
				}
			}
			if len(ls.paths) > 0 {
				s.paths = make([][]ssd.Label, len(ls.paths))
				for i, slot := range ls.paths {
					s.paths[i] = seedEx.regs.paths[slot]
				}
			}
			seeds = append(seeds, s)
			if len(seeds) >= morselSize && !emit() {
				return
			}
		}
		if len(seeds) > 0 && !emit() {
			return
		}
		if err := seedEx.err; err != nil {
			// Seed-phase failure: deliver it as a terminal morsel so the
			// consumer sees every row produced before the failure, then the
			// error — the same prefix semantics as the serial engine.
			out := make(chan rowBatch, 1)
			out <- rowBatch{err: err}
			close(out)
			select {
			case pc.order <- out:
			case <-workCtx.Done():
			}
		}
	}()
	return pc
}

// runWorker executes morsels until both the primary queue is closed and no
// split work remains (sh.done). A worker parked on the pull select is the
// rendezvous receiver that makes another worker's split possible — see
// parShared for the liveness argument. Any failure of the worker's executor —
// cancellation or a recovered panic — is delivered as a terminal batch on
// the failing morsel's channel; the worker then keeps draining both sources,
// delivering the terminal error on every morsel it drains, so the
// coordinator is never blocked on a dead consumer.
func runWorker(ctx context.Context, wp *Plan, vals []ssd.Label, ls leadSlots, morsels <-chan morsel, sh *parShared) {
	ex := wp.exec(ctx, vals)
	ex.base = 1
	ex.relaxedPoll = true
	if sh.trace != nil {
		wtr := new(ExecTrace)
		wtr.init(len(wp.atoms))
		ex.trace = wtr
		defer sh.mergeTrace(wtr) // runs after release; merge is still safe —
		// the trace is worker-local and the consumer reads only post-Close.
	}
	defer func() {
		ex.trace = nil
		ex.release() // visible to the next checkout via Close's wg.Wait
	}()
	open := true // primary morsel queue still open
	for {
		var m morsel
		var ok bool
		if open {
			select {
			case m, ok = <-morsels:
				if !ok {
					open = false
					continue
				}
			case m = <-sh.splits: // never closed; a receive is a real morsel
			case <-ctx.Done():
				return
			}
		} else {
			select {
			case m = <-sh.splits:
			case <-sh.done:
				return
			case <-ctx.Done():
				return
			}
		}
		if ex.err != nil {
			// Drain, but deliver the terminal error rather than closing the
			// channel empty: a drained split can precede the failing morsel
			// in merge order, and an empty close there would make the merge
			// skip that seed range's rows and keep yielding later rows — a
			// silent gap instead of the serial engine's prefix semantics.
			// m.out is freshly created and this worker is its only sender,
			// so the buffered send cannot block.
			m.out <- rowBatch{err: ex.err}
			close(m.out)
			sh.morselDone()
			continue
		}
		alive := workMorsel(ctx, ex, wp, ls, m, sh)
		// Morsel boundary: drop page pins accumulated on the hot path so a
		// paged store can evict between morsels. The accessor stays usable —
		// the next morsel simply re-pins on first touch.
		ex.acc.Release()
		sh.morselDone()
		if !alive {
			return // work context cancelled mid-send: the consumer is gone
		}
	}
}

// workMorsel runs atoms[1:] for every seed of m in order, delivering row
// batches on m.out and closing it. It reports false only when the work
// context is cancelled mid-send. Executor failures arrive via ex.err (the
// executor recovers its own panics); a panic in the merge machinery itself
// is additionally recovered here, so a worker can never die without
// terminating its morsel's channel.
//
// When the morsel's observed fan-out far exceeds the plan's per-seed
// estimate (see splitFactor/splitMinRows), the unprocessed seed suffix is
// split off through sh.splits for another worker, and the final batch on
// m.out carries the suffix's channel as its continuation.
func workMorsel(ctx context.Context, ex *executor, wp *Plan, ls leadSlots, m morsel, sh *parShared) (alive bool) {
	defer close(m.out)
	alive = true
	var b rowBatch
	send := func(batch rowBatch) bool {
		select {
		case m.out <- batch:
			return true
		case <-ctx.Done():
			alive = false
			return false
		}
	}
	defer func() {
		if r := recover(); r != nil {
			ex.fail(fmt.Errorf("query: parallel worker panic: %v", r))
			send(rowBatch{err: ex.err})
		}
	}()
	nT, nL, nP := len(wp.treeName), len(wp.labelName), len(wp.pathName)
	dstSlot := wp.atoms[0].dstSlot
	estPerSeed := wp.perSeedEst()
	var rowsOut int64
	for k, s := range m.seeds {
		ex.regs.trees[dstSlot] = s.tree
		for i, slot := range ls.labels {
			ex.regs.labels[slot] = s.labels[i]
		}
		for i, slot := range ls.paths {
			ex.regs.paths[slot] = s.paths[i]
		}
		ex.started, ex.done = false, false
		for ex.Next() {
			b.trees = append(b.trees, ex.regs.trees[:nT]...)
			b.labels = append(b.labels, ex.regs.labels[:nL]...)
			b.paths = append(b.paths, ex.regs.paths[:nP]...)
			b.n++
			rowsOut++
			if b.n >= parBatchRows {
				if !send(b) {
					return
				}
				b = rowBatch{}
			}
		}
		if ex.err != nil {
			b.err = ex.err
			break
		}
		// Adaptive split: this morsel is producing far more rows per seed
		// than the plan estimated, so try to hand the remaining seeds to an
		// idle worker. The non-blocking send on the unbuffered splits
		// channel succeeds only if a worker is parked on its pull select
		// right now — the rendezvous that guarantees every split morsel is
		// owned the moment it exists (see parShared). The final batch's
		// cont field tells the merge where the suffix's rows continue; seed
		// order is untouched, so the merged stream is identical to the
		// unsplit one.
		if remaining := len(m.seeds) - k - 1; remaining >= splitMinSeedsLeft &&
			rowsOut >= splitMinRows &&
			float64(rowsOut) > splitFactor*estPerSeed*float64(k+1) {
			cont := make(chan rowBatch, morselResultBuf)
			sh.pending.Add(1)
			select {
			case sh.splits <- morsel{seeds: m.seeds[k+1:], out: cont}:
				sh.nsplits.Add(1)
				sh.nmorsels.Add(1)
				obsSplits.Inc()
				b.cont = cont
				send(b)
				return
			default:
				// No idle worker: the whole pool is saturated, so a handoff
				// would not buy anything anyway. Keep going inline.
				sh.pending.Add(-1)
				sh.splitMisses.Add(1)
				obsSplitMisses.Inc()
			}
		}
	}
	if b.n > 0 || b.err != nil {
		send(b)
	}
	return
}

// Next advances the merge to the next row, copying it into regs. It returns
// false on exhaustion, terminal error, or cancellation; Err distinguishes.
func (pc *parCursor) Next() bool {
	if pc.done {
		return false
	}
	var ctxDone <-chan struct{}
	if pc.ctx != nil {
		if err := pc.ctx.Err(); err != nil {
			return pc.finish(err)
		}
		ctxDone = pc.ctx.Done()
	}
	for {
		if pc.ri < pc.batch.n {
			r := pc.ri
			pc.ri++
			nT, nL, nP := len(pc.regs.trees), len(pc.regs.labels), len(pc.regs.paths)
			copy(pc.regs.trees, pc.batch.trees[r*nT:(r+1)*nT])
			copy(pc.regs.labels, pc.batch.labels[r*nL:(r+1)*nL])
			copy(pc.regs.paths, pc.batch.paths[r*nP:(r+1)*nP])
			return true
		}
		if pc.batch.cont != nil {
			// The producing worker split this morsel mid-way: the rows for
			// its remaining seeds continue on cont, in the same seed order.
			pc.cur = pc.batch.cont
			pc.batch, pc.ri = rowBatch{}, 0
			continue
		}
		if pc.cur == nil {
			select {
			case c, ok := <-pc.order:
				if !ok {
					return pc.finish(nil) // clean exhaustion
				}
				pc.cur = c
			case <-ctxDone:
				return pc.finish(pc.ctx.Err())
			}
			continue
		}
		var b rowBatch
		var ok, received bool
		if pc.trace != nil {
			// Count a merge stall when the in-order batch isn't ready yet —
			// the consumer-side signal that workers, not the merge, are the
			// bottleneck. Only attempted under tracing; the untraced path
			// keeps the single blocking select.
			select {
			case b, ok = <-pc.cur:
				received = true
			default:
				pc.trace.MergeStalls++
			}
		}
		if !received {
			select {
			case b, ok = <-pc.cur:
			case <-ctxDone:
				return pc.finish(pc.ctx.Err())
			}
		}
		if !ok {
			pc.cur = nil
			continue
		}
		if b.err != nil {
			return pc.finish(b.err)
		}
		pc.batch, pc.ri = b, 0
	}
}

// finish records the terminal state and tears the pool down. The workers
// notice the cancellation within one executor pull and exit; their blocked
// sends all select on the work context.
func (pc *parCursor) finish(err error) bool {
	pc.done = true
	if pc.err == nil {
		pc.err = err
	}
	pc.cancel()
	return false
}

func (pc *parCursor) Err() error { return pc.err }

// Close stops the pool and waits for the coordinator and every worker to
// exit, so the plans they borrowed can be reused (or returned to a pool)
// safely. Idempotent; subsequent Next calls report exhaustion.
func (pc *parCursor) Close() {
	if pc.closed {
		return
	}
	pc.closed = true
	pc.done = true
	pc.cancel()
	pc.wg.Wait()
	if pc.trace != nil {
		// Pool has quiesced: every worker's per-atom trace is merged and the
		// shared counters are final.
		pc.trace.Splits = pc.sh.nsplits.Load()
		pc.trace.SplitMisses = pc.sh.splitMisses.Load()
		pc.trace.Morsels = pc.sh.nmorsels.Load()
	}
}
