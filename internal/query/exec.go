package query

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// This file is the pull-based iterator executor: the run-many half of the
// planner/executor split. A Plan is interpreted as a left-deep nested-loop
// join of its atoms; each atom is itself a pipeline of step cursors
// (Volcano-style Next() operators) over the lower layers' iterator surfaces:
// pathexpr.Traversal for regex steps, index posting cursors and DataGuide
// extents for root-anchored scans, and plain edge slices for label-variable
// steps. All variable bindings live in one flat slot array (regs) that the
// operators overwrite in place — the hot path allocates nothing per binding,
// which is the executor's whole advantage over the map-cloning naive
// evaluator (EvalNaive).

// regs is the flat binding array: one entry per slot, indexed by the slot
// numbers the planner assigned.
type regs struct {
	trees  []ssd.NodeID
	labels []ssd.Label
	paths  [][]ssd.Label
}

// executor evaluates a Plan. Obtain one through Plan.Cursor; drive it with
// Next and read bindings through Env or the slot accessors.
type executor struct {
	p *Plan
	// g is the executor's read view of the plan's store: the store's
	// pinning accessor when it has one (paged stores), so every adjacency
	// read on the hot path goes through a small ring of pinned pages. acc
	// is the same object, typed for Release — pins drop at cursor close
	// (serial) or morsel handoff (parallel workers).
	g      ssd.GraphStore
	acc    ssd.StoreAccessor
	regs   regs
	params []ssd.Label // one value per plan parameter slot

	atoms   []atomState
	travs   []*pathexpr.Traversal // one per planStep id, lazily created
	started bool
	done    bool

	// base is the first atom index this executor owns. Serial execution
	// uses 0; a parallel worker executes atoms[1:] from seed rows the
	// coordinator materialized for atom 0 (see parallel.go) and uses 1.
	base int

	// relaxedPoll drops the one-real-context-check-per-pull guarantee down
	// to the strided check. Parallel workers and the seeder use it: the
	// consumer-facing cursor enforces per-pull promptness itself, so the
	// pool's executors only need cancellation for teardown, and a mutexed
	// ctx.Err per row is measurable overhead at fan-out row rates.
	relaxedPoll bool

	// trace records per-atom row counts and iterator wall time when non-nil.
	// ExplainAnalyze and opt-in query tracing enable it; the normal path
	// keeps the nil check and nothing else — no allocation, no clock reads.
	trace *ExecTrace

	// Termination: err records the failure that ended iteration early —
	// context cancellation, or any panic the pull loop recovered (a stale
	// index referencing nodes the graph no longer has, a corrupted plan).
	// Exhaustion with err == nil is the only clean completion. ctx is
	// polled once per pull plus strided inside the join loop.
	ctx   context.Context
	err   error
	polls uint32
}

// exec prepares an executor for the plan; Plan.Cursor is the public entry
// (it validates parameter bindings first — stepParam and termParam index
// the params slice unguarded). The executor is single-use per result set;
// a closed cursor releases its executor back to the plan's idle slot, so
// repeat executions of a pooled plan reuse the scratch arrays, pooled
// traversals and materialized scans instead of reallocating them.
func (p *Plan) exec(ctx context.Context, params []ssd.Label) *executor {
	if ex := p.idleEx; ex != nil {
		p.idleEx = nil
		ex.reset(ctx, params)
		return ex
	}
	acc := ssd.AccessorFor(p.g)
	ex := &executor{
		p:      p,
		g:      acc,
		acc:    acc,
		ctx:    ctx,
		params: params,
		regs: regs{
			trees:  make([]ssd.NodeID, len(p.treeName)),
			labels: make([]ssd.Label, len(p.labelName)+p.nExistsLocals),
			paths:  make([][]ssd.Label, len(p.pathName)),
		},
		travs: make([]*pathexpr.Traversal, p.nSteps),
		atoms: make([]atomState, len(p.atoms)),
	}
	for i := range ex.atoms {
		ex.atoms[i].a = p.atoms[i]
	}
	return ex
}

// reset rewinds a recycled executor for a fresh execution. Scratch state
// that is either generation-stamped (dedup marks, traversal bitmaps) or
// invariant for the plan's graph (materialized root-anchored scans) is
// deliberately kept; everything run-scoped is cleared.
func (ex *executor) reset(ctx context.Context, params []ssd.Label) {
	ex.ctx = ctx
	ex.params = params
	ex.started, ex.done = false, false
	ex.base = 0
	ex.relaxedPoll = false
	ex.trace = nil
	ex.err = nil
	ex.polls = 0
	for _, t := range ex.travs {
		if t != nil {
			t.SetContext(ctx)
		}
	}
}

// release unpins whatever pages the executor's accessor holds and hands
// the executor back to its plan's idle slot for reuse. The accessor itself
// is retained — it is reusable after Release — so recycled executions keep
// their ring.
func (ex *executor) release() {
	ex.acc.Release()
	ex.p.idleEx = ex
}

func (ex *executor) trav(st *planStep) *pathexpr.Traversal {
	t := ex.travs[st.id]
	if t == nil {
		t = st.au.NewTraversal(ex.g)
		if ex.ctx != nil {
			t.SetContext(ex.ctx)
		}
		ex.travs[st.id] = t
	}
	return t
}

// finish marks the executor exhausted and reports false. A cancelled
// traversal presents as exhaustion to the join loop (its Next just stops
// yielding), so this final poll is what keeps a cancellation-truncated run
// from looking like clean completion: if the context was cancelled at any
// point before the space "ran out", Err reports it and callers discard
// the partial result.
func (ex *executor) finish() bool {
	ex.done = true
	if ex.ctx != nil && ex.err == nil {
		ex.err = ex.ctx.Err()
	}
	return false
}

// fail records a terminal error and marks the executor done. Unlike the old
// ctxErr-only path, any failure source — cancellation, a recovered panic, a
// worker error — ends up here, so no terminal condition can masquerade as a
// clean exhaustion.
func (ex *executor) fail(err error) bool {
	if ex.err == nil {
		ex.err = err
	}
	ex.done = true
	return false
}

// cancelled polls the context: callers at pull granularity pass force=true
// (one real check per Next call); the inner join loop passes force=false
// and pays one real check per 64 iterations.
//
//ssd:poll
func (ex *executor) cancelled(force bool) bool {
	if ex.err != nil {
		return true
	}
	if ex.ctx == nil {
		return false
	}
	if !force || ex.relaxedPoll {
		ex.polls++
		if ex.polls&63 != 0 {
			return false
		}
	}
	if err := ex.ctx.Err(); err != nil {
		ex.err = err
		ex.done = true
		return true
	}
	return false
}

// Next advances to the next binding row that satisfies every placed filter,
// returning false when the space is exhausted. On true, regs holds the row.
// A panic raised anywhere in the pull loop (lower-layer iterators included)
// is recovered into Err rather than crashing the caller: a server streaming
// rows to a remote client must report "this result set died", not fall over.
func (ex *executor) Next() (ok bool) {
	if ex.done || ex.cancelled(true) {
		return false
	}
	defer func() {
		if r := recover(); r != nil {
			ok = ex.fail(fmt.Errorf("query: execution failed: %v", r))
		}
	}()
	return ex.next()
}

// next advances to the next binding row. The pull loop is unbounded over
// candidate rows, so it must stay cancellation-responsive.
//
//ssd:ctxpoll
func (ex *executor) next() bool {
	n := len(ex.atoms)
	var i int
	if !ex.started {
		ex.started = true
		if ex.base == 0 {
			for _, c := range ex.p.preConds {
				if !c.eval(ex) {
					return ex.finish()
				}
			}
		}
		if n <= ex.base {
			return ex.finish()
		}
		i = ex.base
		ex.openAtomTimed(i)
	} else {
		i = n - 1
	}
	for i >= ex.base {
		if ex.cancelled(false) {
			return false
		}
		as := &ex.atoms[i]
		var dst ssd.NodeID
		var ok bool
		if tr := ex.trace; tr == nil {
			dst, ok = as.next(ex)
		} else {
			start := time.Now()
			dst, ok = as.next(ex)
			tr.AtomNanos[i] += int64(time.Since(start))
		}
		if !ok {
			i--
			continue
		}
		ex.regs.trees[as.a.dstSlot] = dst
		if !ex.evalConds(as.a.conds) {
			continue
		}
		if tr := ex.trace; tr != nil {
			tr.AtomRows[i]++
		}
		if i == n-1 {
			return true
		}
		i++
		ex.openAtomTimed(i)
	}
	return ex.finish()
}

// openAtomTimed is openAtom with the open cost (scan materialization
// included) attributed to the atom's trace span when tracing is on.
func (ex *executor) openAtomTimed(i int) {
	tr := ex.trace
	if tr == nil {
		ex.openAtom(i)
		return
	}
	start := time.Now()
	ex.openAtom(i)
	tr.AtomNanos[i] += int64(time.Since(start))
}

func (ex *executor) openAtom(i int) {
	as := &ex.atoms[i]
	src := ex.g.Root()
	if as.a.srcSlot >= 0 {
		src = ex.regs.trees[as.a.srcSlot]
	}
	as.open(ex, src)
}

func (ex *executor) evalConds(conds []cCond) bool {
	for _, c := range conds {
		if !c.eval(ex) {
			return false
		}
	}
	return true
}

// Env materializes the current row as a naive-engine Env — used to feed the
// select-template instantiation, which only runs for surviving rows.
func (ex *executor) Env() Env { return ex.p.envFrom(&ex.regs) }

// envFrom materializes a register row as a fresh Env under the plan's slot
// naming — shared by the serial executor and the parallel merge cursor.
func (p *Plan) envFrom(r *regs) Env {
	e := Env{
		Trees:  make(map[string]ssd.NodeID, len(p.treeName)),
		Labels: make(map[string]ssd.Label, len(p.labelName)),
		Paths:  make(map[string][]ssd.Label, len(p.pathName)),
	}
	for i, name := range p.treeName {
		e.Trees[name] = r.trees[i]
	}
	for i, name := range p.labelName {
		e.Labels[name] = r.labels[i]
	}
	for i, name := range p.pathName {
		e.Paths[name] = r.paths[i]
	}
	return e
}

// ---------------------------------------------------------------------------
// Atom iteration

// atomState is the per-execution state of one planned atom: either a
// materialized scan (root-anchored index/guide access) or a pipeline of step
// cursors.
type atomState struct {
	a   *planAtom
	src ssd.NodeID

	// Scan access (index-seek, index-backward, dataguide): destinations are
	// materialized on first open and replayed thereafter — scan atoms are
	// always root-anchored, so the result is invariant across outer rows.
	scan    []ssd.NodeID
	si      int
	scanned bool

	// Step pipeline.
	cur   []stepCursor
	level int

	emitted bool // zero-step atoms yield their source exactly once

	// Destination dedup (only when the atom binds no label/path variables),
	// generation-stamped so open() is O(1).
	seen    []uint32
	seenGen uint32
}

type stepCursor struct {
	st   *planStep
	node ssd.NodeID

	edges []ssd.Edge // label-var steps
	ei    int

	pnodes []ssd.NodeID // path-var steps (materialized witnesses)
	ppaths [][]ssd.Label
	pi     int
}

func (as *atomState) open(ex *executor, src ssd.NodeID) {
	as.src = src
	as.emitted = false
	as.seenGen++
	if as.a.dedup && as.seen == nil {
		as.seen = make([]uint32, ex.g.NumNodes())
	}
	switch as.a.access {
	case AccessIndexSeek:
		if !as.scanned {
			cur := ex.p.opts.Label.Seek(as.a.seekLabel)
			for {
				ref, ok := cur.Next()
				if !ok {
					break
				}
				if ex.p.reach[ref.From] {
					as.scan = append(as.scan, ref.To)
				}
			}
			as.scanned = true
		}
		as.si = 0
	case AccessIndexBackward:
		if !as.scanned {
			as.backwardScan(ex)
			as.scanned = true
		}
		as.si = 0
	case AccessGuide:
		if !as.scanned {
			cur := ex.p.opts.Guide.Cursor(as.a.guideAu)
			for {
				n, ok := cur.Next()
				if !ok {
					break
				}
				as.scan = append(as.scan, n)
			}
			as.scanned = true
		}
		as.si = 0
	default:
		if len(as.a.steps) == 0 {
			return
		}
		if as.cur == nil {
			as.cur = make([]stepCursor, len(as.a.steps))
			for i := range as.cur {
				as.cur[i].st = as.a.steps[i]
			}
		}
		as.level = 0
		as.cur[0].seed(ex, src)
	}
}

// next yields the atom's next destination node (and writes any label/path
// slots its steps bind), or ok=false when exhausted for the current source.
func (as *atomState) next(ex *executor) (ssd.NodeID, bool) {
	switch as.a.access {
	case AccessIndexSeek, AccessIndexBackward, AccessGuide:
		for as.si < len(as.scan) {
			dst := as.scan[as.si]
			as.si++
			if as.a.dedup && !as.mark(dst) {
				continue
			}
			return dst, true
		}
		return ssd.InvalidNode, false
	}
	if len(as.a.steps) == 0 {
		if as.emitted {
			return ssd.InvalidNode, false
		}
		as.emitted = true
		return as.src, true
	}
	i := as.level
	last := len(as.cur) - 1
	for i >= 0 {
		c := &as.cur[i]
		if !c.advance(ex) {
			i--
			continue
		}
		if i < last {
			i++
			as.cur[i].seed(ex, as.cur[i-1].node)
			continue
		}
		as.level = i
		if as.a.dedup && !as.mark(c.node) {
			continue
		}
		return c.node, true
	}
	as.level = 0
	return ssd.InvalidNode, false
}

// mark returns false if n was already yielded for the current source row.
func (as *atomState) mark(n ssd.NodeID) bool {
	if as.seen[n] == as.seenGen {
		return false
	}
	as.seen[n] = as.seenGen
	return true
}

func (c *stepCursor) seed(ex *executor, src ssd.NodeID) {
	switch c.st.kind {
	case stepRegex:
		ex.trav(c.st).Reset(src)
	case stepLabelVar, stepParam:
		c.edges = ex.g.Out(src)
		c.ei = 0
	case stepPathVar:
		// Materialize one shortest witness per reachable node; sorted for
		// deterministic iteration. Path-variable bindings are the one step
		// kind that allocates — they carry variable-length witnesses.
		witness := c.st.au.EvalWithPaths(ex.g, src)
		nodes := make([]ssd.NodeID, 0, len(witness))
		for n := range witness {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		c.pnodes = nodes
		c.ppaths = c.ppaths[:0]
		for _, n := range nodes {
			c.ppaths = append(c.ppaths, witness[n])
		}
		c.pi = 0
	}
}

// advance moves the cursor to its next match, writing bound slots, and
// reports whether one was produced.
func (c *stepCursor) advance(ex *executor) bool {
	switch c.st.kind {
	case stepRegex:
		n, ok := ex.trav(c.st).Next()
		if !ok {
			return false
		}
		c.node = n
		return true
	case stepLabelVar:
		for c.ei < len(c.edges) {
			e := c.edges[c.ei]
			c.ei++
			if c.st.slot >= 0 {
				if c.st.filter {
					if !e.Label.Equal(ex.regs.labels[c.st.slot]) {
						continue
					}
				} else {
					ex.regs.labels[c.st.slot] = e.Label
				}
			}
			c.node = e.To
			return true
		}
		return false
	case stepParam:
		for c.ei < len(c.edges) {
			e := c.edges[c.ei]
			c.ei++
			if !e.Label.Equal(ex.params[c.st.slot]) {
				continue
			}
			c.node = e.To
			return true
		}
		return false
	default: // stepPathVar
		if c.pi >= len(c.pnodes) {
			return false
		}
		if c.st.slot >= 0 {
			ex.regs.paths[c.st.slot] = c.ppaths[c.pi]
		}
		c.node = c.pnodes[c.pi]
		c.pi++
		return true
	}
}

// backwardScan implements index-backward access: seek the posting list of
// the rarest label in the chain, verify the prefix back to the root over
// reverse edges, then walk the suffix forward.
func (as *atomState) backwardScan(ex *executor) {
	a := as.a
	// The planner only chooses AccessIndexBackward when the plan's store
	// has the reverse capability (see chooseAccess); the assertion is on
	// the raw store, not the accessor view.
	rs, ok := ex.p.g.(ssd.ReverseStore)
	if !ok {
		panic("query: backward index access on a forward-only store")
	}
	rs.EnsureReverse()
	cur := ex.p.opts.Label.Seek(a.chain[a.chainIdx])
	for {
		ref, ok := cur.Next()
		if !ok {
			return
		}
		if !ex.verifyBackward(rs, ref.From, a.chain, a.chainIdx-1) {
			continue
		}
		as.forwardSuffix(ex, ref.To, a.chain, a.chainIdx+1)
	}
}

// verifyBackward checks that some path root --chain[0]--> … --chain[j]-->
// node exists, walking reverse edges.
func (ex *executor) verifyBackward(rs ssd.ReverseStore, node ssd.NodeID, chain []ssd.Label, j int) bool {
	if j < 0 {
		return node == ex.g.Root()
	}
	for _, in := range rs.In(node) {
		if !in.Label.Equal(chain[j]) {
			continue
		}
		if ex.verifyBackward(rs, in.To, chain, j-1) { // in.To holds the source
			return true
		}
	}
	return false
}

// forwardSuffix appends every node reachable from n over chain[j:] to the
// atom's scan buffer.
func (as *atomState) forwardSuffix(ex *executor, n ssd.NodeID, chain []ssd.Label, j int) {
	if j == len(chain) {
		as.scan = append(as.scan, n)
		return
	}
	for _, e := range ex.g.Out(n) {
		if e.Label.Equal(chain[j]) {
			as.forwardSuffix(ex, e.To, chain, j+1)
		}
	}
}

// ---------------------------------------------------------------------------
// Exists evaluation over compiled steps

// pathExists reports whether some walk of steps[i:] from src succeeds. Regex
// steps reuse pooled traversals; label-variable steps act as filters when
// their slot is bound and wildcards otherwise.
func (ex *executor) pathExists(src ssd.NodeID, steps []*planStep, i int) bool {
	if i == len(steps) {
		return true
	}
	st := steps[i]
	switch st.kind {
	case stepRegex:
		tr := ex.trav(st)
		tr.Reset(src)
		for {
			n, ok := tr.Next()
			if !ok {
				return false
			}
			if ex.pathExists(n, steps, i+1) {
				return true
			}
		}
	case stepParam:
		for _, e := range ex.g.Out(src) {
			if !e.Label.Equal(ex.params[st.slot]) {
				continue
			}
			if ex.pathExists(e.To, steps, i+1) {
				return true
			}
		}
		return false
	default: // stepLabelVar (stepPathVar is rewritten to regex at compile)
		for _, e := range ex.g.Out(src) {
			if st.slot >= 0 {
				if st.filter {
					if !e.Label.Equal(ex.regs.labels[st.slot]) {
						continue
					}
				} else {
					// Scratch binding: later occurrences of the same
					// variable in this walk filter against it.
					ex.regs.labels[st.slot] = e.Label
				}
			}
			if ex.pathExists(e.To, steps, i+1) {
				return true
			}
		}
		return false
	}
}
