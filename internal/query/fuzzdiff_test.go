package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bisim"
	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/ssd"
)

func randGraph(r *rand.Rand, n int) *ssd.Graph {
	g := ssd.New()
	first := g.AddNodes(n)
	nodes := []ssd.NodeID{g.Root()}
	for i := 0; i < n; i++ {
		nodes = append(nodes, first+ssd.NodeID(i))
	}
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Sym("c"), ssd.Sym("rare"), ssd.Str("v"), ssd.Int(1), ssd.Int(7)}
	ne := n * 3
	for i := 0; i < ne; i++ {
		from := nodes[r.Intn(len(nodes))]
		to := nodes[r.Intn(len(nodes))]
		l := labels[r.Intn(len(labels))]
		g.AddEdge(from, l, to)
	}
	g.Dedup()
	return g
}

var fuzzQueries = []string{
	`select X from DB.a X`,
	`select X from DB._*.rare X`,
	`select X from DB.a.b X`,
	`select X from DB.a.b.c X`,
	`select {L: %L} from DB.%L X, X.%L Y`,
	`select {L: %L} from DB.a A, A.%L V, DB.b B, B.%L W`,
	`select X from DB._* X where exists X.%L.%L`,
	`select X from DB._* X where not exists X.a`,
	`select {P: @P} from DB.@P X where pathlen(@P) = 2 and X = 1`,
	`select X from DB._* X where X = 7 or exists X.rare`,
	`select {T: Y} from DB._* X, X.(a|b)* Y where Y = 1`,
	`select X from DB.a X, X.b Y, Y.c Z where Z = 7`,
}

func TestFuzzDiff(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 12)
		ix := index.BuildLabelIndex(g)
		guide, okb := dataguide.Build(g, 4096)
		for qi, src := range fuzzQueries {
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			want, err := EvalNaive(q, g)
			if err != nil {
				t.Fatalf("naive seed=%d q=%d: %v", seed, qi, err)
			}
			variants := map[string]PlanOptions{"bare": {}, "index": {Label: ix}}
			if okb {
				variants["guide"] = PlanOptions{Guide: guide}
				variants["both"] = PlanOptions{Label: ix, Guide: guide}
			}
			for vn, po := range variants {
				got, err := EvalOpts(q, g, Options{Minimize: true, Plan: po})
				if err != nil {
					t.Fatalf("planned/%s seed=%d q=%q: %v", vn, seed, src, err)
				}
				if !bisim.Equal(got, want) {
					t.Errorf("DIVERGE %s seed=%d q=%q\n got: %s\nwant: %s", vn, seed, src, ssd.FormatRoot(got), ssd.FormatRoot(want))
				}
				if gs, ws := ssd.FormatRoot(got), ssd.FormatRoot(want); gs != ws {
					t.Errorf("TEXTDIFF %s seed=%d q=%q\n got: %s\nwant: %s", vn, seed, src, gs, ws)
				}
			}
			_ = fmt.Sprint(qi)
		}
	}
}
