package query

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bisim"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Env is one binding tuple: tree variables name database nodes, label
// variables name labels, path variables name witness label sequences.
type Env struct {
	Trees  map[string]ssd.NodeID
	Labels map[string]ssd.Label
	Paths  map[string][]ssd.Label
}

func (e Env) clone() Env {
	ne := Env{
		Trees:  make(map[string]ssd.NodeID, len(e.Trees)),
		Labels: make(map[string]ssd.Label, len(e.Labels)),
		Paths:  make(map[string][]ssd.Label, len(e.Paths)),
	}
	for k, v := range e.Trees {
		ne.Trees[k] = v
	}
	for k, v := range e.Labels {
		ne.Labels[k] = v
	}
	for k, v := range e.Paths {
		ne.Paths[k] = v
	}
	return ne
}

// Engine selects the evaluation strategy.
type Engine int

// Engines. The zero value (EnginePlanned) plans and runs the iterator
// executor; EngineNaive retains the original recursive, map-cloning tree
// walker for ablation and cross-checking.
const (
	EnginePlanned Engine = iota
	EngineNaive
)

func (e Engine) String() string {
	if e == EngineNaive {
		return "naive"
	}
	return "planned"
}

// Options tunes evaluation.
type Options struct {
	// MaxRows caps the number of binding tuples (0 = unlimited) as a guard
	// against runaway cross products.
	MaxRows int
	// Minimize applies bisimulation minimization to the result so that the
	// output is a canonical set value (default true in Eval).
	Minimize bool
	// Engine selects naive vs planned evaluation (default: planned).
	Engine Engine
	// Plan supplies optional index/dataguide structures to the planner.
	// Ignored by the naive engine.
	Plan PlanOptions
	// Params binds values to the query's $parameters. The planned engine
	// resolves them to reserved plan slots; the naive engine substitutes
	// them into the AST before evaluation — both see identical semantics.
	Params map[string]ssd.Label
	// Parallelism is the number of worker executors for the planned
	// engine's morsel-driven parallel scan (0 or 1 = serial). Results are
	// byte-identical to serial execution; plans with fewer than two atoms
	// always run serially. Ignored by the naive engine. Negative values are
	// rejected with an *OptionError.
	Parallelism int
	// MorselSize overrides the number of leading-atom rows per parallel
	// morsel (0 = size chosen by the plan's cost model, falling back to
	// DefaultMorselSize). Exposed mainly so tests can force many small
	// morsels. Negative values are rejected with an *OptionError.
	MorselSize int
}

// OptionError reports an Options field set to a value outside its domain.
// Callers distinguish it from evaluation failures with errors.As.
type OptionError struct {
	Field string // the Options field name, e.g. "Parallelism"
	Value int
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("query: invalid Options.%s %d (must be >= 0)", e.Field, e.Value)
}

// validate rejects option values outside their documented domain. Negative
// Parallelism or MorselSize used to fall through the > comparisons and
// silently run serially with the default morsel size; now they are errors.
func (o Options) validate() error {
	if o.Parallelism < 0 {
		return &OptionError{Field: "Parallelism", Value: o.Parallelism}
	}
	if o.MorselSize < 0 {
		return &OptionError{Field: "MorselSize", Value: o.MorselSize}
	}
	return nil
}

// Eval evaluates the query over g and returns the result tree (a fresh
// graph). The result follows UnQL union semantics and is minimized to its
// canonical form. Evaluation plans the query and runs the iterator executor;
// see EvalNaive for the reference tree-walking evaluator.
func Eval(q *Query, g ssd.GraphStore) (*ssd.Graph, error) {
	return EvalOpts(q, g, Options{Minimize: true})
}

// EvalNaive evaluates with the original recursive evaluator — the reference
// semantics the planned engine is cross-checked against, and the baseline
// the ssdbench engine ablation measures.
func EvalNaive(q *Query, g *ssd.Graph) (*ssd.Graph, error) {
	return EvalOpts(q, g, Options{Minimize: true, Engine: EngineNaive})
}

// EvalOpts evaluates with explicit options. Any GraphStore works for the
// planned engine; the naive reference evaluator walks concrete graphs only
// and errors on other stores.
func EvalOpts(q *Query, g ssd.GraphStore, opts Options) (*ssd.Graph, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Engine == EngineNaive {
		mg, ok := g.(*ssd.Graph)
		if !ok {
			return nil, fmt.Errorf("query: the naive engine requires an in-memory graph, got %T", g)
		}
		if len(q.Params) > 0 {
			var err error
			if q, err = q.SubstParams(opts.Params); err != nil {
				return nil, err
			}
		}
		rows, err := EvalRows(q, mg, opts.MaxRows)
		if err != nil {
			return nil, err
		}
		res := ssd.New()
		graftCache := map[ssd.NodeID]ssd.NodeID{}
		for _, env := range rows {
			if err := instantiate(res, res.Root(), q.Select, env, g, graftCache); err != nil {
				return nil, err
			}
		}
		return finishResult(res, opts)
	}
	p, err := NewPlan(q, g, opts.Plan)
	if err != nil {
		return nil, err
	}
	return p.EvalGraph(opts)
}

// EvalGraph runs the plan's executor and instantiates the select template
// for every surviving row. The plan can be reused across calls (compile
// once, run many).
func (p *Plan) EvalGraph(opts Options) (*ssd.Graph, error) {
	return p.EvalGraphCtx(nil, opts)
}

// EvalGraphCtx is EvalGraph with cancellation: a cancelled context aborts
// the pull loop within one row and returns the context's error. Parameter
// values come from opts.Params. A nil ctx disables the checks. When
// opts.Parallelism > 1, sibling plans are compiled and the rows stream
// through the morsel-driven parallel cursor; the result is byte-identical
// to serial evaluation. (The statement layer avoids the sibling compiles
// by drawing worker plans from its pool instead.)
func (p *Plan) EvalGraphCtx(ctx context.Context, opts Options) (*ssd.Graph, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var cur *Cursor
	var err error
	if opts.Parallelism > 1 && len(p.atoms) >= 2 {
		workers := make([]*Plan, 0, opts.Parallelism)
		for i := 0; i < opts.Parallelism; i++ {
			wp, werr := NewPlan(p.q, p.g, p.opts)
			if werr != nil {
				return nil, werr
			}
			workers = append(workers, wp)
		}
		cur, err = p.CursorParallel(ctx, opts.Params, workers, opts.MorselSize)
	} else {
		cur, err = p.Cursor(ctx, opts.Params)
	}
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	res := ssd.New()
	graftCache := map[ssd.NodeID]ssd.NodeID{}
	rows := 0
	var env Env
	for cur.Next() {
		cur.EnvInto(&env)
		if err := instantiate(res, res.Root(), p.q.Select, env, p.g, graftCache); err != nil {
			return nil, err
		}
		rows++
		if opts.MaxRows > 0 && rows >= opts.MaxRows {
			break
		}
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return finishResult(res, opts)
}

// Rows drives the executor and materializes the surviving binding tuples —
// the planned counterpart of EvalRows, used by cross-check tests. Plans
// with parameters yield no rows here; use Cursor with values instead.
func (p *Plan) Rows(maxRows int) []Env {
	cur, err := p.Cursor(nil, nil)
	if err != nil {
		return nil
	}
	defer cur.Close()
	var rows []Env
	for cur.Next() {
		rows = append(rows, cur.Env())
		if maxRows > 0 && len(rows) >= maxRows {
			break
		}
	}
	if cur.Err() != nil {
		// Partial rows after a mid-stream failure would make a cross-check
		// quietly compare against truncated output.
		return nil
	}
	return rows
}

func finishResult(res *ssd.Graph, opts Options) (*ssd.Graph, error) {
	res.Dedup()
	if opts.Minimize {
		// Canonicalize, not just Minimize: node numbering and edge order
		// become value-determined, so engines that enumerate bindings in
		// different orders still produce byte-identical output.
		res = bisim.Canonicalize(res)
	}
	return res, nil
}

// EvalRows evaluates the from/where clauses and returns the surviving
// binding tuples. When maxRows > 0 the result is truncated at that many
// tuples (no error). Queries with $parameters must be substituted first
// (SubstParams); this evaluator has no binding mechanism of its own.
func EvalRows(q *Query, g *ssd.Graph, maxRows int) ([]Env, error) {
	if len(q.Params) > 0 {
		return nil, fmt.Errorf("query: query has parameters ($%s); substitute them before naive evaluation", q.Params[0])
	}
	ev := &evaluator{g: g, q: q, maxRows: maxRows}
	env := Env{Trees: map[string]ssd.NodeID{}, Labels: map[string]ssd.Label{}, Paths: map[string][]ssd.Label{}}
	if err := ev.bind(0, env); err != nil && err != errRowCap {
		return nil, err
	}
	return ev.rows, nil
}

type evaluator struct {
	g       *ssd.Graph
	q       *Query
	rows    []Env
	maxRows int
	// aus holds this evaluation's compiled automata, one per regex step.
	// Compiling per evaluation (rather than using RegexStep's shared memo)
	// keeps concurrent evaluations of one parsed query race-free: automata
	// carry a mutable lazy-DFA cache.
	aus map[*RegexStep]*pathexpr.Automaton
}

func (ev *evaluator) auOf(t *RegexStep) *pathexpr.Automaton {
	au := ev.aus[t]
	if au == nil {
		if ev.aus == nil {
			ev.aus = map[*RegexStep]*pathexpr.Automaton{}
		}
		au = pathexpr.Compile(t.Expr)
		ev.aus[t] = au
	}
	return au
}

var errRowCap = fmt.Errorf("query: row cap exceeded")

func (ev *evaluator) bind(i int, env Env) error {
	if i == len(ev.q.From) {
		ok, err := ev.cond(ev.q.Where, env)
		if err != nil {
			return err
		}
		if ok {
			if ev.maxRows > 0 && len(ev.rows) >= ev.maxRows {
				return errRowCap
			}
			ev.rows = append(ev.rows, env.clone())
		}
		return nil
	}
	b := ev.q.From[i]
	src := ev.g.Root()
	if b.Source != "DB" {
		src = env.Trees[b.Source]
	}
	matches := ev.walkSteps(src, b.Path, env.Labels)
	for _, m := range matches {
		// Clone only what this match actually changes: the tree map always
		// gains b.Var, but the label/path maps are shared when the match
		// binds nothing new. Nothing downstream mutates a map in place (bind
		// and walkSteps always build fresh maps), so sharing is safe, and
		// matches that the where clause later rejects no longer pay for
		// three map copies.
		env2 := Env{Trees: make(map[string]ssd.NodeID, len(env.Trees)+1), Labels: env.Labels, Paths: env.Paths}
		for k, v := range env.Trees {
			env2.Trees[k] = v
		}
		env2.Trees[b.Var] = m.node
		if len(m.labels) > 0 {
			env2.Labels = make(map[string]ssd.Label, len(env.Labels)+len(m.labels))
			for k, v := range env.Labels {
				env2.Labels[k] = v
			}
			for k, v := range m.labels {
				env2.Labels[k] = v
			}
		}
		if len(m.paths) > 0 {
			env2.Paths = make(map[string][]ssd.Label, len(env.Paths)+len(m.paths))
			for k, v := range env.Paths {
				env2.Paths[k] = v
			}
			for k, v := range m.paths {
				env2.Paths[k] = v
			}
		}
		if err := ev.bind(i+1, env2); err != nil {
			return err
		}
	}
	return nil
}

// match is one (end node, variable assignment) result of walking a path.
type match struct {
	node   ssd.NodeID
	labels map[string]ssd.Label
	paths  map[string][]ssd.Label
}

// walkSteps evaluates a step sequence from src, threading label-variable
// bindings. Already-bound label variables act as filters (joins on labels),
// so `DB.%L.x A, DB.%L.y B` requires the same first label on both paths.
func (ev *evaluator) walkSteps(src ssd.NodeID, steps []PathStep, bound map[string]ssd.Label) []match {
	g := ev.g
	cur := []match{{node: src, labels: map[string]ssd.Label{}, paths: map[string][]ssd.Label{}}}
	for _, st := range steps {
		var next []match
		seen := map[string]bool{}
		add := func(m match) {
			key := matchKey(m)
			if !seen[key] {
				seen[key] = true
				next = append(next, m)
			}
		}
		switch t := st.(type) {
		case *RegexStep:
			au := ev.auOf(t)
			for _, m := range cur {
				for _, to := range au.Eval(g, m.node) {
					add(match{node: to, labels: m.labels, paths: m.paths})
				}
			}
		case PathVarStep:
			// Any path, binding one (shortest, BFS) witness per end node.
			au := pathexpr.Compile(pathexpr.AnyStar())
			for _, m := range cur {
				for to, witness := range au.EvalWithPaths(g, m.node) {
					np := make(map[string][]ssd.Label, len(m.paths)+1)
					for k, v := range m.paths {
						np[k] = v
					}
					np[t.Name] = witness
					add(match{node: to, labels: m.labels, paths: np})
				}
			}
		case LabelVarStep:
			for _, m := range cur {
				prior, alreadyBound := m.labels[t.Name]
				if !alreadyBound {
					prior, alreadyBound = bound[t.Name]
				}
				for _, e := range g.Out(m.node) {
					if alreadyBound {
						if !e.Label.Equal(prior) {
							continue
						}
						add(match{node: e.To, labels: m.labels, paths: m.paths})
						continue
					}
					nl := make(map[string]ssd.Label, len(m.labels)+1)
					for k, v := range m.labels {
						nl[k] = v
					}
					nl[t.Name] = e.Label
					add(match{node: e.To, labels: nl, paths: m.paths})
				}
			}
		}
		cur = next
	}
	return cur
}

func matchKey(m match) string {
	keys := make([]string, 0, len(m.labels))
	for k := range m.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%d", m.node)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, m.labels[k].String())
	}
	pkeys := make([]string, 0, len(m.paths))
	for k := range m.paths {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	for _, k := range pkeys {
		fmt.Fprintf(&b, "|@%s=", k)
		for _, l := range m.paths[k] {
			b.WriteString(l.String())
			b.WriteByte('.')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Conditions

func (ev *evaluator) cond(c Cond, env Env) (bool, error) {
	if c == nil {
		return true, nil
	}
	switch t := c.(type) {
	case And:
		l, err := ev.cond(t.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(t.R, env)
	case Or:
		l, err := ev.cond(t.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.cond(t.R, env)
	case Not:
		s, err := ev.cond(t.Sub, env)
		return !s, err
	case Cmp:
		ls, err := ev.values(t.L, env)
		if err != nil {
			return false, err
		}
		rs, err := ev.values(t.R, env)
		if err != nil {
			return false, err
		}
		for _, a := range ls {
			for _, b := range rs {
				if t.Op.Apply(a, b) {
					return true, nil
				}
			}
		}
		return false, nil
	case TypeTest:
		vs, err := ev.values(t.T, env)
		if err != nil {
			return false, err
		}
		for _, v := range vs {
			if t.Pred.Match(v) {
				return true, nil
			}
		}
		return false, nil
	case LikeCond:
		vs, err := ev.values(t.T, env)
		if err != nil {
			return false, err
		}
		pred := pathexpr.LikePred{Pattern: t.Pattern}
		for _, v := range vs {
			if pred.Match(v) {
				return true, nil
			}
		}
		return false, nil
	case Exists:
		src, ok := env.Trees[t.Source]
		if !ok {
			return false, fmt.Errorf("query: exists source %q unbound at evaluation", t.Source)
		}
		return len(ev.walkSteps(src, t.Path, env.Labels)) > 0, nil
	default:
		return false, fmt.Errorf("query: unknown condition %T", c)
	}
}

// values returns the comparable values of a term. For a tree variable these
// are the labels of its data edges (the Lorel object-vs-value overloading);
// for label variables and literals, the single label.
func (ev *evaluator) values(t Term, env Env) ([]ssd.Label, error) {
	switch tt := t.(type) {
	case LitTerm:
		return []ssd.Label{tt.L}, nil
	case LabelTerm:
		l, ok := env.Labels[tt.Name]
		if !ok {
			return nil, fmt.Errorf("query: label variable %%%s unbound at evaluation", tt.Name)
		}
		return []ssd.Label{l}, nil
	case VarTerm:
		n, ok := env.Trees[tt.Name]
		if !ok {
			return nil, fmt.Errorf("query: variable %q unbound at evaluation", tt.Name)
		}
		var vals []ssd.Label
		for _, e := range ev.g.Out(n) {
			if e.Label.IsData() {
				vals = append(vals, e.Label)
			}
		}
		return vals, nil
	case PathLenTerm:
		p, ok := env.Paths[tt.Name]
		if !ok {
			return nil, fmt.Errorf("query: path variable @%s unbound at evaluation", tt.Name)
		}
		return []ssd.Label{ssd.Int(int64(len(p)))}, nil
	default:
		return nil, fmt.Errorf("query: unknown term %T", t)
	}
}

// ---------------------------------------------------------------------------
// Select instantiation

// instantiate adds the instantiation of template t under env as edges of
// `at` in res. Union semantics: every tuple's instantiation merges into the
// same top-level node.
func instantiate(res *ssd.Graph, at ssd.NodeID, t Template, env Env, src ssd.GraphStore, graftCache map[ssd.NodeID]ssd.NodeID) error {
	switch tt := t.(type) {
	case VarRef:
		n, ok := env.Trees[tt.Name]
		if !ok {
			return fmt.Errorf("query: select variable %q unbound", tt.Name)
		}
		copyEdges(res, at, src, n, graftCache)
		return nil
	case LitTree:
		res.AddLeaf(at, tt.L)
		return nil
	case LabelTree:
		l, ok := env.Labels[tt.Name]
		if !ok {
			return fmt.Errorf("query: label variable %%%s unbound in select", tt.Name)
		}
		res.AddLeaf(at, l)
		return nil
	case PathTree:
		p, ok := env.Paths[tt.Name]
		if !ok {
			return fmt.Errorf("query: path variable @%s unbound in select", tt.Name)
		}
		cur := at
		for _, l := range p {
			cur = res.AddLeaf(cur, l)
		}
		return nil
	case Struct:
		for _, f := range tt.Fields {
			var l ssd.Label
			switch le := f.Label.(type) {
			case LitLabel:
				l = le.L
			case LabelVarRef:
				var ok bool
				l, ok = env.Labels[le.Name]
				if !ok {
					return fmt.Errorf("query: label variable %%%s unbound in select", le.Name)
				}
			}
			child := res.AddNode()
			if err := instantiate(res, child, f.Value, env, src, graftCache); err != nil {
				return err
			}
			res.AddEdge(at, l, child)
		}
		return nil
	default:
		return fmt.Errorf("query: unknown template %T", t)
	}
}

// copyEdges merges the out-edges of src:n into res:at, grafting each child
// subtree. The graft cache keeps one result node per source node so shared
// and cyclic structure stays shared.
func copyEdges(res *ssd.Graph, at ssd.NodeID, src ssd.GraphStore, n ssd.NodeID, cache map[ssd.NodeID]ssd.NodeID) {
	for _, e := range src.Out(n) {
		res.AddEdge(at, e.Label, graftNode(res, src, e.To, cache))
	}
}

func graftNode(res *ssd.Graph, src ssd.GraphStore, n ssd.NodeID, cache map[ssd.NodeID]ssd.NodeID) ssd.NodeID {
	if rn, ok := cache[n]; ok {
		return rn
	}
	rn := res.AddNode()
	cache[n] = rn
	// Iterative copy to survive deep trees.
	type work struct{ src, dst ssd.NodeID }
	stack := []work{{n, rn}}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range src.Out(w.src) {
			to, ok := cache[e.To]
			if !ok {
				to = res.AddNode()
				cache[e.To] = to
				stack = append(stack, work{e.To, to})
			}
			res.AddEdge(w.dst, e.Label, to)
		}
	}
	return rn
}
