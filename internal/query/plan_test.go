package query

import (
	"strings"
	"testing"

	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Golden-plan tests: the planner's atom ordering and access-path choices on
// the moviedb and biobrowse (ACeDB) example graphs must stay stable.

func moviePlanGraph(t *testing.T) *ssd.Graph {
	t.Helper()
	return workload.Movies(workload.DefaultMovieConfig(200))
}

func bioPlanGraph(t *testing.T) *ssd.Graph {
	t.Helper()
	return workload.ACeDB(workload.BioConfig{Objects: 100, MaxDepth: 6, Fanout: 3, Seed: 11})
}

func planFor(t *testing.T, g *ssd.Graph, src string, opts PlanOptions) *Plan {
	t.Helper()
	p, err := NewPlan(MustParse(src), g, opts)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return p
}

func atomOrder(p *Plan) []string {
	var vars []string
	for _, a := range p.Atoms() {
		vars = append(vars, a.Var)
	}
	return vars
}

func TestPlanOrdersSelectiveAtomsFirst(t *testing.T) {
	g := moviePlanGraph(t)
	// The paper's Allen query: the cheap single-label Title atom must run
	// before the expensive Cast._* closure, regardless of textual order.
	p := planFor(t, g, `
		select {Title: T}
		from DB.Entry.Movie M,
		     M.Cast._* A,
		     M.Title T
		where A = "Allen"`, PlanOptions{})
	want := []string{"M", "T", "A"}
	got := atomOrder(p)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("atom order = %v, want %v\n%s", got, want, p.Explain())
	}
}

func TestPlanRespectsDependencies(t *testing.T) {
	g := moviePlanGraph(t)
	// T depends on M: no ordering may hoist it above its source.
	p := planFor(t, g, `
		select T
		from DB._* X,
		     DB.Entry.Movie M,
		     M.Title T`, PlanOptions{})
	pos := map[string]int{}
	for i, v := range atomOrder(p) {
		pos[v] = i
	}
	if pos["T"] < pos["M"] {
		t.Errorf("T planned before its source M:\n%s", p.Explain())
	}
	// And the wildcard closure X must sort last: it is the most expensive.
	if pos["X"] != 2 {
		t.Errorf("wildcard atom X should run last, order=%v", atomOrder(p))
	}
}

func TestPlanChoosesIndexSeek(t *testing.T) {
	g := moviePlanGraph(t)
	ix := index.BuildLabelIndex(g)
	p := planFor(t, g, `select X from DB._*.Episode X`, PlanOptions{Label: ix})
	atoms := p.Atoms()
	if atoms[0].Access != AccessIndexSeek {
		t.Errorf("access = %v, want index-seek\n%s", atoms[0].Access, p.Explain())
	}
	// Without the index the same atom must fall back to forward traversal.
	p2 := planFor(t, g, `select X from DB._*.Episode X`, PlanOptions{})
	if got := p2.Atoms()[0].Access; got != AccessForward {
		t.Errorf("access without index = %v, want forward", got)
	}
}

func TestPlanChoosesIndexBackward(t *testing.T) {
	g := moviePlanGraph(t)
	ix := index.BuildLabelIndex(g)
	// TV-Show is ~5x rarer than Entry: seek it and verify backward.
	p := planFor(t, g, `select X from DB.Entry.TV-Show.Episode X`, PlanOptions{Label: ix})
	if got := p.Atoms()[0].Access; got != AccessIndexBackward {
		t.Errorf("access = %v, want index-backward\n%s", got, p.Explain())
	}
	// Entry.Movie.Title has no rare interior label: stay forward.
	p2 := planFor(t, g, `select X from DB.Entry.Movie.Title X`, PlanOptions{Label: ix})
	if got := p2.Atoms()[0].Access; got != AccessForward {
		t.Errorf("access = %v, want forward\n%s", got, p2.Explain())
	}
}

func TestPlanChoosesDataGuide(t *testing.T) {
	g := bioPlanGraph(t)
	guide := dataguide.MustBuild(g)
	p := planFor(t, g, `select X from DB.Object.Name X`, PlanOptions{Guide: guide})
	if got := p.Atoms()[0].Access; got != AccessGuide {
		t.Errorf("access = %v, want dataguide\n%s", got, p.Explain())
	}
	// Atoms anchored at a variable cannot use the (root-anchored) guide.
	p2 := planFor(t, g, `select Y from DB.Object X, X.Name Y`, PlanOptions{Guide: guide})
	for _, a := range p2.Atoms()[1:] {
		if a.Access != AccessForward {
			t.Errorf("non-root atom %s uses %v", a.Var, a.Access)
		}
	}
}

func TestPlanVarStepsDisableScanAccess(t *testing.T) {
	g := bioPlanGraph(t)
	ix := index.BuildLabelIndex(g)
	guide := dataguide.MustBuild(g)
	// A label-variable step binds, so no scan access path may replace it.
	p := planFor(t, g, `select {%L} from DB.Object.%L X`, PlanOptions{Label: ix, Guide: guide})
	if got := p.Atoms()[0].Access; got != AccessForward {
		t.Errorf("access = %v, want forward for binding atom", got)
	}
}

func TestPlanExplain(t *testing.T) {
	g := moviePlanGraph(t)
	ix := index.BuildLabelIndex(g)
	p := planFor(t, g, `
		select {Title: T}
		from DB.Entry.Movie M, M.Title T, M.Cast._* A
		where A = "Allen"`, PlanOptions{Label: ix})
	out := p.Explain()
	for _, want := range []string{"plan:", "access=", "M :=", "est="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanSeekMatchesForward(t *testing.T) {
	// The index-seek access path must return the same node set as forward
	// traversal, including when part of the graph is unreachable.
	g := ssd.New()
	a := g.AddLeaf(g.Root(), ssd.Sym("a"))
	g.AddLeaf(a, ssd.Sym("hit"))
	g.AddLeaf(g.Root(), ssd.Sym("hit"))
	orphan := g.AddNode() // unreachable source with the same label
	g.AddEdge(orphan, ssd.Sym("hit"), g.AddNode())

	q := MustParse(`select X from DB._*.hit X`)
	ix := index.BuildLabelIndex(g)
	p, err := NewPlan(q, g, PlanOptions{Label: ix})
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms()[0].Access != AccessIndexSeek {
		t.Fatalf("expected index-seek, got %v", p.Atoms()[0].Access)
	}
	rows := p.Rows(0)
	if len(rows) != 2 {
		t.Errorf("seek rows = %d, want 2 (orphan source must be filtered)", len(rows))
	}
}
