package query

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Golden-plan tests: the planner's atom ordering and access-path choices on
// the moviedb and biobrowse (ACeDB) example graphs must stay stable.

func moviePlanGraph(t *testing.T) *ssd.Graph {
	t.Helper()
	return workload.Movies(workload.DefaultMovieConfig(200))
}

func bioPlanGraph(t *testing.T) *ssd.Graph {
	t.Helper()
	return workload.ACeDB(workload.BioConfig{Objects: 100, MaxDepth: 6, Fanout: 3, Seed: 11})
}

func planFor(t *testing.T, g *ssd.Graph, src string, opts PlanOptions) *Plan {
	t.Helper()
	p, err := NewPlan(MustParse(src), g, opts)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return p
}

func atomOrder(p *Plan) []string {
	var vars []string
	for _, a := range p.Atoms() {
		vars = append(vars, a.Var)
	}
	return vars
}

func TestPlanOrdersSelectiveAtomsFirst(t *testing.T) {
	g := moviePlanGraph(t)
	// The paper's Allen query: the cheap single-label Title atom must run
	// before the expensive Cast._* closure, regardless of textual order.
	p := planFor(t, g, `
		select {Title: T}
		from DB.Entry.Movie M,
		     M.Cast._* A,
		     M.Title T
		where A = "Allen"`, PlanOptions{})
	want := []string{"M", "T", "A"}
	got := atomOrder(p)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("atom order = %v, want %v\n%s", got, want, p.Explain())
	}
}

func TestPlanRespectsDependencies(t *testing.T) {
	g := moviePlanGraph(t)
	// T depends on M: no ordering may hoist it above its source.
	p := planFor(t, g, `
		select T
		from DB._* X,
		     DB.Entry.Movie M,
		     M.Title T`, PlanOptions{})
	pos := map[string]int{}
	for i, v := range atomOrder(p) {
		pos[v] = i
	}
	if pos["T"] < pos["M"] {
		t.Errorf("T planned before its source M:\n%s", p.Explain())
	}
	// And the wildcard closure X must sort last: it is the most expensive.
	if pos["X"] != 2 {
		t.Errorf("wildcard atom X should run last, order=%v", atomOrder(p))
	}
}

func TestPlanChoosesIndexSeek(t *testing.T) {
	g := moviePlanGraph(t)
	ix := index.BuildLabelIndex(g)
	p := planFor(t, g, `select X from DB._*.Episode X`, PlanOptions{Label: ix})
	atoms := p.Atoms()
	if atoms[0].Access != AccessIndexSeek {
		t.Errorf("access = %v, want index-seek\n%s", atoms[0].Access, p.Explain())
	}
	// Without the index the same atom must fall back to forward traversal.
	p2 := planFor(t, g, `select X from DB._*.Episode X`, PlanOptions{})
	if got := p2.Atoms()[0].Access; got != AccessForward {
		t.Errorf("access without index = %v, want forward", got)
	}
}

func TestPlanChoosesIndexBackward(t *testing.T) {
	g := moviePlanGraph(t)
	ix := index.BuildLabelIndex(g)
	// TV-Show is ~5x rarer than Entry: seek it and verify backward.
	p := planFor(t, g, `select X from DB.Entry.TV-Show.Episode X`, PlanOptions{Label: ix})
	if got := p.Atoms()[0].Access; got != AccessIndexBackward {
		t.Errorf("access = %v, want index-backward\n%s", got, p.Explain())
	}
	// Entry.Movie.Title has no rare interior label: stay forward.
	p2 := planFor(t, g, `select X from DB.Entry.Movie.Title X`, PlanOptions{Label: ix})
	if got := p2.Atoms()[0].Access; got != AccessForward {
		t.Errorf("access = %v, want forward\n%s", got, p2.Explain())
	}
}

func TestPlanChoosesDataGuide(t *testing.T) {
	g := bioPlanGraph(t)
	guide := dataguide.MustBuild(g)
	p := planFor(t, g, `select X from DB.Object.Name X`, PlanOptions{Guide: guide})
	if got := p.Atoms()[0].Access; got != AccessGuide {
		t.Errorf("access = %v, want dataguide\n%s", got, p.Explain())
	}
	// Atoms anchored at a variable cannot use the (root-anchored) guide.
	p2 := planFor(t, g, `select Y from DB.Object X, X.Name Y`, PlanOptions{Guide: guide})
	for _, a := range p2.Atoms()[1:] {
		if a.Access != AccessForward {
			t.Errorf("non-root atom %s uses %v", a.Var, a.Access)
		}
	}
}

func TestPlanVarStepsDisableScanAccess(t *testing.T) {
	g := bioPlanGraph(t)
	ix := index.BuildLabelIndex(g)
	guide := dataguide.MustBuild(g)
	// A label-variable step binds, so no scan access path may replace it.
	p := planFor(t, g, `select {%L} from DB.Object.%L X`, PlanOptions{Label: ix, Guide: guide})
	if got := p.Atoms()[0].Access; got != AccessForward {
		t.Errorf("access = %v, want forward for binding atom", got)
	}
}

func TestPlanExplain(t *testing.T) {
	g := moviePlanGraph(t)
	ix := index.BuildLabelIndex(g)
	p := planFor(t, g, `
		select {Title: T}
		from DB.Entry.Movie M, M.Title T, M.Cast._* A
		where A = "Allen"`, PlanOptions{Label: ix})
	out := p.Explain()
	for _, want := range []string{"plan:", "access=", "M :=", "est="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanSeekMatchesForward(t *testing.T) {
	// The index-seek access path must return the same node set as forward
	// traversal, including when part of the graph is unreachable.
	g := ssd.New()
	a := g.AddLeaf(g.Root(), ssd.Sym("a"))
	g.AddLeaf(a, ssd.Sym("hit"))
	g.AddLeaf(g.Root(), ssd.Sym("hit"))
	orphan := g.AddNode() // unreachable source with the same label
	g.AddEdge(orphan, ssd.Sym("hit"), g.AddNode())

	q := MustParse(`select X from DB._*.hit X`)
	ix := index.BuildLabelIndex(g)
	p, err := NewPlan(q, g, PlanOptions{Label: ix})
	if err != nil {
		t.Fatal(err)
	}
	if p.Atoms()[0].Access != AccessIndexSeek {
		t.Fatalf("expected index-seek, got %v", p.Atoms()[0].Access)
	}
	rows := p.Rows(0)
	if len(rows) != 2 {
		t.Errorf("seek rows = %d, want 2 (orphan source must be filtered)", len(rows))
	}
}

// skewQuery is the golden query for the skewed fixture: the Score atom has
// huge fan-out but a near-useless predicate, the Tag atom has tiny fan-out
// thanks to the rare "needle" value — statistics are the only way to tell.
const skewQuery = `
	select T
	from DB.Entry.Movie M,
	     M.Reviews.Score S,
	     M.Tag X,
	     M.Title T
	where S > 0 and X = "needle"`

// TestCostBasedPlanOnSkewedFixture is the golden-plan test for the
// statistics-fed cost model: on a distribution with skewed selectivities the
// cost-based planner must pick a measurably different atom order from the
// structural heuristic (needle equality before the wide Reviews subtree),
// render honest estimates in Explain, and still produce the same result.
func TestCostBasedPlanOnSkewedFixture(t *testing.T) {
	g := workload.Skewed(workload.DefaultSkewConfig(1000))
	st := stats.Build(g)

	hp := planFor(t, g, skewQuery, PlanOptions{Heuristic: true})
	if got, want := atomOrder(hp), []string{"M", "S", "T", "X"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("heuristic atom order = %v, want %v\n%s", got, want, hp.Explain())
	}

	cp := planFor(t, g, skewQuery, PlanOptions{Stats: st})
	if got, want := atomOrder(cp), []string{"M", "X", "T", "S"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("cost-based atom order = %v, want %v\n%s", got, want, cp.Explain())
	}

	// Golden Explain: per-atom estimated cardinality and access path. The
	// generator and the cost model are both deterministic, so this output
	// is stable; update it deliberately when the model changes.
	wantExplain := strings.Join([]string{
		"plan: 4 atoms, 4 tree / 0 label / 0 path slots",
		"  1. M := DB.Entry.Movie  access=forward est=1e+03",
		"  2. X := M.Tag  access=forward est=1.17",
		"     filter placed here",
		"  3. T := M.Title  access=forward est=1.17",
		"  4. S := M.Reviews.Score  access=forward est=9.33",
		"     filter placed here",
		"",
	}, "\n")
	if got := cp.Explain(); got != wantExplain {
		t.Errorf("cost-based Explain:\n got: %q\nwant: %q", got, wantExplain)
	}

	// ExplainAnalyze annotates the same plan with observed row counts.
	an, err := cp.ExplainAnalyze(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"est=1e+03 actual=1000", "est=1.17 actual=10", "est=9.33 actual=80"} {
		if !strings.Contains(an, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, an)
		}
	}

	// Both orders must agree with each other and with the naive engine.
	q := MustParse(skewQuery)
	naive, err := EvalOpts(q, g, Options{Minimize: true, Engine: EngineNaive})
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]*Plan{"heuristic": hp, "cost": cp} {
		res, err := p.EvalGraph(Options{Minimize: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gs, ws := ssd.FormatRoot(res), ssd.FormatRoot(naive); gs != ws {
			t.Errorf("%s result differs from naive:\n got: %s\nwant: %s", name, gs, ws)
		}
	}
}
