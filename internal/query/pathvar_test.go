package query

import (
	"strings"
	"testing"

	"repro/internal/bisim"
	"repro/internal/ssd"
)

// Tests for the third variable kind of §3: path variables.

func TestPathVarBindsWitness(t *testing.T) {
	g := db(t)
	q := MustParse(`select @P from DB.@P X where X = "Casablanca"`)
	rows, err := EvalRows(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	p := rows[0].Paths["P"]
	want := []ssd.Label{ssd.Sym("Entry"), ssd.Sym("Movie"), ssd.Sym("Title")}
	if len(p) != len(want) {
		t.Fatalf("witness = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("witness[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestPathVarTemplate(t *testing.T) {
	g := db(t)
	// Re-materialize the path to Casablanca as a chain of edges.
	res := run(t, g, `select @P from DB.@P X where X = "Casablanca"`)
	want := ssd.MustParse(`{Entry: {Movie: {Title: {}}}}`)
	if !bisim.Equal(res, want) {
		t.Errorf("got %s", ssd.FormatRoot(res))
	}
}

func TestPathLen(t *testing.T) {
	g := db(t)
	// Nodes whose shortest witness path is exactly 2 edges long.
	q := MustParse(`select X from DB.@P X where pathlen(@P) = 2`)
	rows, err := EvalRows(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Depth-2 nodes: Movie×2, TV-Show objects = 3 distinct nodes.
	if len(rows) != 3 {
		t.Fatalf("depth-2 nodes = %d, want 3", len(rows))
	}
	// Constrain search depth: strings within 4 edges of the root.
	q2 := MustParse(`select {%V} from DB.@P X, X.%V Y where isstring(%V) and pathlen(@P) < 4`)
	rows2, err := EvalRows(q2, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows2 {
		if len(r.Paths["P"]) >= 4 {
			t.Fatalf("path too long: %v", r.Paths["P"])
		}
	}
	if len(rows2) == 0 {
		t.Fatal("no shallow strings found")
	}
}

func TestPathVarOnCycle(t *testing.T) {
	// Witness paths are shortest, so cycles terminate.
	g := ssd.MustParse(`#r{a: {b: #r, v: 1}}`)
	q := MustParse(`select @P from DB.@P X where X = 1`)
	rows, err := EvalRows(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if got := len(rows[0].Paths["P"]); got != 2 { // a.v
		t.Errorf("witness length = %d, want 2", got)
	}
}

func TestPathVarInStructTemplate(t *testing.T) {
	g := db(t)
	res := run(t, g, `
		select {Found: {At: @P}}
		from DB.@P X
		where X = "Allen"`)
	// Two witnesses: via Cast.Credit.Actors and via Director.
	if res.NumEdges() == 0 {
		t.Fatal("no results")
	}
	text := ssd.FormatRoot(res)
	if !strings.Contains(text, "Director") || !strings.Contains(text, "Actors") {
		t.Errorf("expected both witness paths in %s", text)
	}
}

func TestPathVarUnbound(t *testing.T) {
	for _, src := range []string{
		`select @Q from DB.a X`,
		`select X from DB.a X where pathlen(@Q) = 1`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail on unbound path variable", src)
		}
	}
}

func TestPathVarPrintRoundTrip(t *testing.T) {
	q := MustParse(`select {At: @P} from DB.@P X where pathlen(@P) < 3`)
	printed := q.String()
	if _, err := Parse(printed); err != nil {
		t.Fatalf("re-parse of %q: %v", printed, err)
	}
}
