package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type qToken int

const (
	qEOF qToken = iota
	qIdent
	qString
	qInt
	qFloat
	qLBrace
	qRBrace
	qLParen
	qRParen
	qColon
	qComma
	qDot
	qPercent
	qAt
	qDollar
	qPipe
	qStar
	qPlus
	qQuest
	qBang
	qUnder
	qLT
	qLE
	qGT
	qGE
	qEQ
	qNE
	qError
)

// Keywords are recognized case-insensitively so `SELECT` and `select` both
// work; they are reserved and cannot be variable names.
var qKeywords = map[string]bool{
	"select": true, "from": true, "where": true,
	"and": true, "or": true, "not": true, "exists": true, "like": true,
}

type qLexer struct {
	src  string
	pos  int
	tok  qToken
	text string
	err  error
}

func newQLexer(src string) *qLexer { return &qLexer{src: src} }

func (lx *qLexer) errorf(format string, args ...interface{}) {
	if lx.err == nil {
		lx.err = fmt.Errorf("query: offset %d: "+format, append([]interface{}{lx.pos}, args...)...)
	}
	lx.tok = qError
}

// keyword reports whether the current token is the given keyword.
func (lx *qLexer) keyword(kw string) bool {
	return lx.tok == qIdent && strings.EqualFold(lx.text, kw)
}

func (lx *qLexer) next() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		if c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		lx.tok, lx.text = qEOF, ""
		return
	}
	c := lx.src[lx.pos]
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch {
	case two == "<=":
		lx.pos += 2
		lx.tok = qLE
	case two == ">=":
		lx.pos += 2
		lx.tok = qGE
	case two == "!=":
		lx.pos += 2
		lx.tok = qNE
	case c == '<':
		lx.pos++
		lx.tok = qLT
	case c == '>':
		lx.pos++
		lx.tok = qGT
	case c == '=':
		lx.pos++
		lx.tok = qEQ
	case c == '!':
		lx.pos++
		lx.tok = qBang
	case c == '{':
		lx.pos++
		lx.tok = qLBrace
	case c == '}':
		lx.pos++
		lx.tok = qRBrace
	case c == '(':
		lx.pos++
		lx.tok = qLParen
	case c == ')':
		lx.pos++
		lx.tok = qRParen
	case c == ':':
		lx.pos++
		lx.tok = qColon
	case c == ',':
		lx.pos++
		lx.tok = qComma
	case c == '.':
		lx.pos++
		lx.tok = qDot
	case c == '%':
		lx.pos++
		lx.tok = qPercent
	case c == '@':
		lx.pos++
		lx.tok = qAt
	case c == '$':
		lx.pos++
		lx.tok = qDollar
	case c == '|':
		lx.pos++
		lx.tok = qPipe
	case c == '*':
		lx.pos++
		lx.tok = qStar
	case c == '+':
		lx.pos++
		lx.tok = qPlus
	case c == '?':
		lx.pos++
		lx.tok = qQuest
	case c == '"':
		lx.lexString()
	case c == '-' || c >= '0' && c <= '9':
		lx.lexNumber()
	case c == '_' && !qFollowsIdent(lx.src, lx.pos):
		lx.pos++
		lx.tok = qUnder
	case qIdentStart(rune(c)):
		lx.lexIdent()
	default:
		lx.errorf("unexpected character %q", c)
	}
}

func qFollowsIdent(src string, pos int) bool {
	if pos+1 >= len(src) {
		return false
	}
	r, _ := utf8.DecodeRuneInString(src[pos+1:])
	return qIdentCont(r)
}

func (lx *qLexer) lexString() {
	lx.pos++
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '"' {
			lx.pos++
			lx.tok, lx.text = qString, b.String()
			return
		}
		if c == '\\' && lx.pos+1 < len(lx.src) {
			esc := lx.src[lx.pos+1]
			lx.pos += 2
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				lx.errorf("unknown escape \\%c", esc)
				return
			}
			continue
		}
		b.WriteByte(c)
		lx.pos++
	}
	lx.errorf("unterminated string")
}

func (lx *qLexer) lexNumber() {
	start := lx.pos
	if lx.src[lx.pos] == '-' {
		lx.pos++
	}
	digits := 0
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
		digits++
	}
	if digits == 0 {
		lx.errorf("malformed number")
		return
	}
	isFloat := false
	if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '.' &&
		lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
		isFloat = true
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		mark := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			isFloat = true
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
		} else {
			lx.pos = mark
		}
	}
	lx.text = lx.src[start:lx.pos]
	if isFloat {
		lx.tok = qFloat
	} else {
		lx.tok = qInt
	}
}

func (lx *qLexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !qIdentCont(r) {
			break
		}
		lx.pos += size
	}
	lx.tok, lx.text = qIdent, lx.src[start:lx.pos]
}

func qIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func qIdentCont(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
