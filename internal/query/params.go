package query

import (
	"fmt"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// SubstParams returns a copy of q with every $parameter replaced by its
// literal value: ParamStep becomes an exact-label regex step, ParamTerm a
// literal term. The result is parameter-free and can run on any engine —
// this is how the naive evaluator executes prepared statements identically
// to the planned engine (which binds parameters into plan slots instead).
func (q *Query) SubstParams(vals map[string]ssd.Label) (*Query, error) {
	for _, name := range q.Params {
		if _, ok := vals[name]; !ok {
			return nil, fmt.Errorf("query: parameter $%s not bound", name)
		}
	}
	nq := &Query{Select: q.Select, Where: q.Where}
	nq.From = make([]Binding, len(q.From))
	for i, b := range q.From {
		nb := b
		nb.Path = substSteps(b.Path, vals)
		nq.From[i] = nb
	}
	if q.Where != nil {
		nq.Where = substCond(q.Where, vals)
	}
	return nq, nil
}

func substSteps(steps []PathStep, vals map[string]ssd.Label) []PathStep {
	out := make([]PathStep, len(steps))
	for i, st := range steps {
		if ps, ok := st.(ParamStep); ok {
			out[i] = &RegexStep{Expr: pathexpr.Label(vals[ps.Name])}
			continue
		}
		out[i] = st
	}
	return out
}

func substCond(c Cond, vals map[string]ssd.Label) Cond {
	switch t := c.(type) {
	case And:
		return And{substCond(t.L, vals), substCond(t.R, vals)}
	case Or:
		return Or{substCond(t.L, vals), substCond(t.R, vals)}
	case Not:
		return Not{substCond(t.Sub, vals)}
	case Cmp:
		return Cmp{Op: t.Op, L: substTerm(t.L, vals), R: substTerm(t.R, vals)}
	case TypeTest:
		return TypeTest{Pred: t.Pred, T: substTerm(t.T, vals)}
	case LikeCond:
		return LikeCond{T: substTerm(t.T, vals), Pattern: t.Pattern}
	case Exists:
		return Exists{Source: t.Source, Path: substSteps(t.Path, vals)}
	default:
		return c
	}
}

func substTerm(t Term, vals map[string]ssd.Label) Term {
	if pt, ok := t.(ParamTerm); ok {
		return LitTerm{vals[pt.Name]}
	}
	return t
}
