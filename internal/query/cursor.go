package query

import (
	"context"
	"fmt"

	"repro/internal/ssd"
)

// Cursor is the exported streaming face of the iterator executor: the
// run-many half of a prepared statement. It pulls binding rows directly
// from the Volcano pipeline — nothing is materialized — and exposes them
// through reusable-slot accessors, so the per-row cost is whatever the
// join itself does, not map building.
//
// A Cursor (like the executor it wraps) mutates the plan's automaton DFA
// caches and is therefore not safe for concurrent use; open one cursor per
// goroutine (the statement layer pools plans to make that cheap).
type Cursor struct {
	ex *executor
}

// Cursor opens a streaming execution of the plan. params supplies a value
// for every $parameter the plan declares (Params); missing or unknown
// names are an error. ctx cancellation stops iteration within one pull:
// Next returns false and Err reports the context error.
func (p *Plan) Cursor(ctx context.Context, params map[string]ssd.Label) (*Cursor, error) {
	var vals []ssd.Label
	if len(p.paramName) > 0 {
		vals = make([]ssd.Label, len(p.paramName))
		for i, name := range p.paramName {
			v, ok := params[name]
			if !ok {
				return nil, fmt.Errorf("query: parameter $%s not bound", name)
			}
			vals[i] = v
		}
	}
	for name := range params {
		if _, ok := p.paramSlot[name]; !ok {
			return nil, fmt.Errorf("query: unknown parameter $%s", name)
		}
	}
	return &Cursor{ex: p.exec(ctx, vals)}, nil
}

// Next advances to the next binding row, returning false when the space is
// exhausted, a pre-condition fails, or the context is cancelled (check Err
// to distinguish).
func (c *Cursor) Next() bool { return c.ex.Next() }

// Err returns the error that terminated iteration early (currently only
// context cancellation), or nil after a clean exhaustion.
func (c *Cursor) Err() error { return c.ex.ctxErr }

// Env materializes the current row as a fresh Env. Prefer EnvInto or the
// slot accessors on hot paths.
func (c *Cursor) Env() Env { return c.ex.Env() }

// EnvInto writes the current row into e, reusing its maps (allocating them
// on first use). The filled Env is valid until the next Next call in the
// sense that path-variable slices are shared with the engine and must be
// treated as read-only.
func (c *Cursor) EnvInto(e *Env) {
	ex := c.ex
	if e.Trees == nil {
		e.Trees = make(map[string]ssd.NodeID, len(ex.p.treeName))
	} else {
		clear(e.Trees)
	}
	if e.Labels == nil {
		e.Labels = make(map[string]ssd.Label, len(ex.p.labelName))
	} else {
		clear(e.Labels)
	}
	if e.Paths == nil {
		e.Paths = make(map[string][]ssd.Label, len(ex.p.pathName))
	} else {
		clear(e.Paths)
	}
	for i, name := range ex.p.treeName {
		e.Trees[name] = ex.regs.trees[i]
	}
	for i, name := range ex.p.labelName {
		e.Labels[name] = ex.regs.labels[i]
	}
	for i, name := range ex.p.pathName {
		e.Paths[name] = ex.regs.paths[i]
	}
}

// Tree returns the node bound to tree-variable slot i. Tree slots follow
// the from-clause binding order.
func (c *Cursor) Tree(i int) ssd.NodeID { return c.ex.regs.trees[i] }

// Label returns the label bound to label-variable slot i. Label slots
// follow first-occurrence order over the from clause.
func (c *Cursor) Label(i int) ssd.Label { return c.ex.regs.labels[i] }

// Path returns the witness path bound to path-variable slot i (first-
// occurrence order). The slice is shared with the engine; treat it as
// read-only and copy it if it must outlive the current row.
func (c *Cursor) Path(i int) []ssd.Label { return c.ex.regs.paths[i] }

// Plan returns the plan this cursor executes.
func (c *Cursor) Plan() *Plan { return c.ex.p }
