package query

import (
	"context"
	"fmt"

	"repro/internal/ssd"
)

// Cursor is the exported streaming face of the iterator executor: the
// run-many half of a prepared statement. It pulls binding rows directly
// from the Volcano pipeline — nothing is materialized — and exposes them
// through reusable-slot accessors, so the per-row cost is whatever the
// join itself does, not map building.
//
// A Cursor may be serial (one executor, rows pulled in place) or parallel
// (a morsel-driven worker pool merged in order; see CursorParallel). Both
// faces behave identically: same row order, same slot accessors, same
// error reporting. A Cursor mutates plan-owned DFA caches and is therefore
// not safe for concurrent use; open one cursor per goroutine (the
// statement layer pools plans to make that cheap).
type Cursor struct {
	p    *Plan
	regs *regs // the current row: ex's registers, or the parallel merge view

	ex     *executor  // serial execution
	par    *parCursor // parallel execution (nil when serial)
	closed bool
	err    error // terminal error snapshotted at Close; see Err
}

// paramVals validates params against the plan's declared parameters and
// returns them as a positional slice in slot order.
func (p *Plan) paramVals(params map[string]ssd.Label) ([]ssd.Label, error) {
	var vals []ssd.Label
	if len(p.paramName) > 0 {
		vals = make([]ssd.Label, len(p.paramName))
		for i, name := range p.paramName {
			v, ok := params[name]
			if !ok {
				return nil, fmt.Errorf("query: parameter $%s not bound", name)
			}
			vals[i] = v
		}
	}
	for name := range params {
		if _, ok := p.paramSlot[name]; !ok {
			return nil, fmt.Errorf("query: unknown parameter $%s", name)
		}
	}
	return vals, nil
}

// Cursor opens a streaming execution of the plan. params supplies a value
// for every $parameter the plan declares (Params); missing or unknown
// names are an error. ctx cancellation stops iteration within one pull:
// Next returns false and Err reports the context error.
//
//ssd:mustclose
func (p *Plan) Cursor(ctx context.Context, params map[string]ssd.Label) (*Cursor, error) {
	vals, err := p.paramVals(params)
	if err != nil {
		return nil, err
	}
	ex := p.exec(ctx, vals)
	return &Cursor{p: p, regs: &ex.regs, ex: ex}, nil
}

// Next advances to the next binding row, returning false when the space is
// exhausted, the context is cancelled, execution failed, or the cursor was
// closed (check Err to distinguish).
func (c *Cursor) Next() bool {
	if c.closed {
		return false
	}
	if c.ex != nil {
		return c.ex.Next()
	}
	return c.par.Next()
}

// Err returns the terminal error that ended iteration early — context
// cancellation, a recovered execution panic, or a parallel worker failure —
// or nil after a clean exhaustion. Err remains valid after Close (the
// database/sql idiom): Close snapshots it before the executor is recycled,
// so it can never observe a later execution's state.
func (c *Cursor) Err() error {
	if c.closed {
		return c.err
	}
	if c.ex != nil {
		return c.ex.err
	}
	return c.par.Err()
}

// Close releases the cursor's execution resources. A serial cursor hands
// its executor (and the scratch arrays it grew) back to the plan for the
// next execution; a parallel cursor stops the worker pool and waits for
// the workers to quiesce, so the plans they borrowed are safe to reuse
// afterwards. Close is idempotent. Iterating a closed cursor reports
// exhaustion.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	// Snapshot the terminal error before releasing: the executor may be
	// recycled by the plan's next execution, and Err-after-Close is a
	// documented pattern.
	if c.ex != nil {
		c.err = c.ex.err
	} else {
		c.err = c.par.Err()
	}
	c.closed = true
	if c.par != nil {
		c.par.Close()
	} else {
		c.ex.release()
	}
}

// Env materializes the current row as a fresh Env. Prefer EnvInto or the
// slot accessors on hot paths.
func (c *Cursor) Env() Env { return c.p.envFrom(c.regs) }

// EnvInto writes the current row into e, reusing its maps (allocating them
// on first use). The filled Env is valid until the next Next call in the
// sense that path-variable slices are shared with the engine and must be
// treated as read-only.
func (c *Cursor) EnvInto(e *Env) {
	p := c.p
	if e.Trees == nil {
		e.Trees = make(map[string]ssd.NodeID, len(p.treeName))
	} else {
		clear(e.Trees)
	}
	if e.Labels == nil {
		e.Labels = make(map[string]ssd.Label, len(p.labelName))
	} else {
		clear(e.Labels)
	}
	if e.Paths == nil {
		e.Paths = make(map[string][]ssd.Label, len(p.pathName))
	} else {
		clear(e.Paths)
	}
	for i, name := range p.treeName {
		e.Trees[name] = c.regs.trees[i]
	}
	for i, name := range p.labelName {
		e.Labels[name] = c.regs.labels[i]
	}
	for i, name := range p.pathName {
		e.Paths[name] = c.regs.paths[i]
	}
}

// Tree returns the node bound to tree-variable slot i. Tree slots follow
// the from-clause binding order.
func (c *Cursor) Tree(i int) ssd.NodeID { return c.regs.trees[i] }

// Label returns the label bound to label-variable slot i. Label slots
// follow first-occurrence order over the from clause.
func (c *Cursor) Label(i int) ssd.Label { return c.regs.labels[i] }

// Path returns the witness path bound to path-variable slot i (first-
// occurrence order). The slice is shared with the engine; treat it as
// read-only and copy it if it must outlive the current row.
func (c *Cursor) Path(i int) []ssd.Label { return c.regs.paths[i] }

// Plan returns the plan this cursor executes.
func (c *Cursor) Plan() *Plan { return c.p }
