package query

import (
	"testing"

	"repro/internal/bisim"
	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Cross-check: the planned iterator engine must return results value-equal
// (bisimulation) to the naive evaluator on every query the test suite
// exercises, under every combination of planner inputs.

type engineCase struct {
	name   string
	graph  string // ssd text, or "" for the Figure 1 fixture
	query  string
	params map[string]ssd.Label // $parameter values, nil when none
}

// engineCases mirrors every evaluable query in query_test.go and
// pathvar_test.go, plus a few planner-specific shapes (index-seek,
// backward-chain, guide-able atoms).
var engineCases = []engineCase{
	{"titles", "", `select T from DB.Entry.Movie.Title T`, nil},
	{"template", "", `select {Movie: {Title: T}} from DB.Entry.Movie.Title T`, nil},
	{"allen", "", `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`, nil},
	{"big-ints", "", `select {Big: X} from DB._*.isint X where X > 65536 or not X = X`, nil},
	{"big-labels", "", `select {Big: %N} from DB._* X, X.%N Y where isint(%N) and %N > 65536`, nil},
	{"label-join", `{a: {x: 1}, b: {x: 2}, c: {y: 3}}`, `select {Shared: %L} from DB.a A, A.%L V, DB.b B, B.%L W`, nil},
	{"label-as-edge", "", `select {%L} from DB.Entry.Movie M, M.%L X`, nil},
	{"like", "", `select {%L} from DB._* X, X.%L Y where %L like "Cast%"`, nil},
	{"exists", "", `select {Title: T} from DB.Entry.Movie M, M.Title T where exists M.References`, nil},
	{"not-exists", "", `select {Title: T} from DB.Entry.Movie M, M.Title T where not exists M.References`, nil},
	{"exists-deep", "", `select {Title: T} from DB.Entry.Movie M, M.Title T where exists M.Cast._*."Allen"`, nil},
	{"two-casts", "", `select {Actor: A} from DB.Entry.Movie M, M.Cast.(isint|Credit.Actors)? A`, nil},
	{"two-casts-names", "", `select {Name: %N} from DB.Entry.Movie M, M.Cast.(isint)?.(Credit.Actors)? A, A.%N L where isstring(%N)`, nil},
	{"cross-ref", "", `select {RefTitle: T} from DB.Entry.Movie M, M.References.Movie.Title T`, nil},
	{"union-set", `{a: {v: 1}, b: {v: 1}}`, `select {Out: X} from DB.(a|b) X`, nil},
	{"cyclic", `#r{next: #r, tag: "loop"}`, `select X from DB.next X`, nil},
	{"empty", "", `select T from DB.Entry.Movie.Nonexistent T`, nil},
	{"typetest-tree", `{a: {v: 1}, b: {v: "s"}}`, `select {IntHolder: %L} from DB.%L X, X.v V where isint(V)`, nil},
	{"shared-node", `{a: #x{v: 1}, b: #x}`, `select X from DB._ X`, nil},
	{"pathvar", "", `select @P from DB.@P X where X = "Casablanca"`, nil},
	{"pathvar-struct", "", `select {Found: {At: @P}} from DB.@P X where X = "Allen"`, nil},
	{"pathlen", "", `select X from DB.@P X where pathlen(@P) = 2`, nil},
	{"pathvar-cycle", `#r{a: {b: #r, v: 1}}`, `select @P from DB.@P X where X = 1`, nil},
	{"seek-shape", "", `select X from DB._*.Title X`, nil},
	{"chain", "", `select X from DB.Entry.Movie.Title X`, nil},
	{"wildcard-all", "", `select X from DB._* X`, nil},
	{"or-cond", "", `select T from DB.Entry.Movie M, M.Title T where T = "Casablanca" or exists M.References`, nil},
	{"label-var-rebind", "", `select {%L: {%K}} from DB.Entry.%L M, M.%K X`, nil},
	// Repeated label variables inside an exists-path must join on equality
	// even when the variable is not bound in the from clause: only b has a
	// repeated label along a 2-step path.
	{"exists-labelvar-join", `{a: {p: {q: 1}}, b: {r: {r: 2}}}`, `select X from DB._ X where exists X.%L.%L`, nil},
	{"exists-labelvar-filter", "", `select {%L} from DB.Entry.%L M where exists M.Title`, nil},
	// Parameterized statements: the planned engine binds $values into plan
	// slots, the naive engine substitutes them into the AST — both must
	// agree byte-for-byte, like every other case.
	{"param-where", "", `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`,
		map[string]ssd.Label{"who": ssd.Str("Allen")}},
	{"param-step", "", `select X from DB.Entry.$kind.Title X`,
		map[string]ssd.Label{"kind": ssd.Sym("Movie")}},
	{"param-step-source", "", `select {%L} from DB.Entry.$kind M, M.%L X`,
		map[string]ssd.Label{"kind": ssd.Sym("TV-Show")}},
	{"param-exists", "", `select {Title: T} from DB.Entry.Movie M, M.Title T where exists M.$attr`,
		map[string]ssd.Label{"attr": ssd.Sym("References")}},
	{"param-both", "", `select T from DB.Entry.$kind M, M.Title T where T != $skip`,
		map[string]ssd.Label{"kind": ssd.Sym("Movie"), "skip": ssd.Str("Casablanca")}},
}

func caseGraph(t *testing.T, c engineCase) *ssd.Graph {
	t.Helper()
	if c.graph == "" {
		return workload.Fig1(false)
	}
	return ssd.MustParse(c.graph)
}

func TestEnginesAgree(t *testing.T) {
	for _, c := range engineCases {
		t.Run(c.name, func(t *testing.T) {
			g := caseGraph(t, c)
			q := MustParse(c.query)
			want, err := EvalOpts(q, g, Options{Minimize: true, Engine: EngineNaive, Params: c.params})
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			ix := index.BuildLabelIndex(g)
			guide := dataguide.MustBuild(g)
			variants := map[string]PlanOptions{
				"bare":        {},
				"index":       {Label: ix},
				"guide":       {Guide: guide},
				"index+guide": {Label: ix, Guide: guide},
			}
			for vn, po := range variants {
				got, err := EvalOpts(q, g, Options{Minimize: true, Engine: EnginePlanned, Plan: po, Params: c.params})
				if err != nil {
					t.Fatalf("planned/%s: %v", vn, err)
				}
				if !bisim.Equal(got, want) {
					t.Errorf("planned/%s result differs:\n got: %s\nwant: %s",
						vn, ssd.FormatRoot(got), ssd.FormatRoot(want))
				}
				// Minimized results are canonically ordered: the engines
				// must agree byte-for-byte, not just up to bisimulation.
				if gs, ws := ssd.FormatRoot(got), ssd.FormatRoot(want); gs != ws {
					t.Errorf("planned/%s text differs:\n got: %s\nwant: %s", vn, gs, ws)
				}
			}
		})
	}
}

// TestEnginesAgreeOnGenerated cross-checks over the scalable moviedb
// generator, where references create shared structure and cycles.
func TestEnginesAgreeOnGenerated(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(60))
	queries := []string{
		`select T from DB.Entry.Movie.Title T`,
		`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`,
		`select {Name: %N} from DB.Entry._.Cast.(isint|Credit.Actors|Special-Guests)? C, C.%N L where isstring(%N)`,
		`select X from DB.Entry.TV-Show.Episode X`,
		`select X from DB._*.Episode X`,
		`select {RefTitle: T} from DB.Entry.Movie M, M.References.Movie.Title T`,
	}
	ix := index.BuildLabelIndex(g)
	for _, src := range queries {
		q := MustParse(src)
		want, err := EvalNaive(q, g)
		if err != nil {
			t.Fatalf("naive %q: %v", src, err)
		}
		got, err := EvalOpts(q, g, Options{Minimize: true, Plan: PlanOptions{Label: ix}})
		if err != nil {
			t.Fatalf("planned %q: %v", src, err)
		}
		if !bisim.Equal(got, want) {
			t.Errorf("engines differ on %q", src)
		}
	}
}

func TestPlannedRowCap(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select X from DB._* X`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rows := p.Rows(3); len(rows) != 3 {
		t.Errorf("row cap: %d rows, want 3", len(rows))
	}
}

func TestPlannedRowsBindAllVars(t *testing.T) {
	g := workload.Fig1(false)
	q := MustParse(`select T from DB.Entry.Movie M, M.Title T`)
	p, err := NewPlan(q, g, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows := p.Rows(0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if _, ok := r.Trees["M"]; !ok {
			t.Error("M unbound in planned row")
		}
		if _, ok := r.Trees["T"]; !ok {
			t.Error("T unbound in planned row")
		}
	}
}
