package query

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// This file is the query planner: the compile-once half of the
// planner/executor split. Planning resolves every tree, label and path
// variable to a fixed integer slot (so the executor binds into a flat array
// instead of cloning maps), orders the from-clause pattern atoms by
// estimated selectivity, chooses an access path per atom, and pushes each
// where-conjunct down to the earliest atom at which its variables are all
// bound. The executor (exec.go) interprets the resulting Plan with
// pull-based iterators.

// Access identifies the access path chosen for one pattern atom.
type Access int

// Access paths, in decreasing order of planner preference when applicable.
const (
	// AccessForward walks the graph forward from the atom's source node
	// through the lazy-DFA product traversal — always applicable.
	AccessForward Access = iota
	// AccessIndexSeek answers a root-anchored `_*.label` atom directly from
	// the label index's posting list, filtered to reachable sources.
	AccessIndexSeek
	// AccessIndexBackward starts from the posting list of the rarest label
	// in a root-anchored exact-label chain and verifies the prefix backward
	// over reverse edges — "start from the most selective atom".
	AccessIndexBackward
	// AccessGuide evaluates a root-anchored regex-only atom over the strong
	// DataGuide and unions the accepting extents.
	AccessGuide
)

func (a Access) String() string {
	switch a {
	case AccessIndexSeek:
		return "index-seek"
	case AccessIndexBackward:
		return "index-backward"
	case AccessGuide:
		return "dataguide"
	default:
		return "forward"
	}
}

// PlanOptions carries the optional auxiliary structures the planner may
// exploit. Nil fields simply disable the corresponding access paths; the
// planner then falls back to forward traversal (and estimates selectivity
// from a one-pass label count of the graph).
type PlanOptions struct {
	// Label enables index-seek and index-backward access and supplies exact
	// per-label occurrence counts for selectivity estimation.
	Label *index.LabelIndex
	// Guide enables dataguide-pruned access for root-anchored regex atoms.
	Guide *dataguide.Guide
	// Stats supplies maintained cardinality statistics (per-label counts,
	// distinct source/child counts, a numeric-value histogram). The cost
	// model prefers them over the label index for estimation: distinct
	// counts sharpen join fanout and the histogram prices range predicates.
	Stats *stats.Stats
	// Heuristic disables the statistics-fed cost model and falls back to
	// the original per-label occurrence heuristic — the ablation switch
	// BenchmarkCostBasedVsHeuristic compares against.
	Heuristic bool
}

// stepKind discriminates planStep.
type stepKind int

const (
	stepRegex stepKind = iota
	stepLabelVar
	stepPathVar
	stepParam // one edge whose label equals a $parameter's bound value
)

// planStep is one compiled path step. Steps carry a plan-unique id used by
// the executor to pool one reusable Traversal per regex step.
type planStep struct {
	id     int
	kind   stepKind
	au     *pathexpr.Automaton // stepRegex
	slot   int                 // label/path slot; -1 = bind nothing (wildcard)
	filter bool                // stepLabelVar: slot already bound → equality filter
}

// planAtom is one from-clause binding, compiled: slots resolved, access path
// chosen, and the where-conjuncts that become checkable after it runs.
type planAtom struct {
	b       Binding
	srcSlot int // tree slot of the source, or -1 for the DB root
	dstSlot int // tree slot the atom binds
	steps   []*planStep
	access  Access
	est     float64 // estimated result cardinality (explain only)
	dedup   bool    // atom binds no label/path vars → dedup destination nodes

	seekLabel ssd.Label           // AccessIndexSeek
	chain     []ssd.Label         // AccessIndexBackward: the exact-label chain
	chainIdx  int                 // AccessIndexBackward: seek position in chain
	guideAu   *pathexpr.Automaton // AccessGuide: whole-path automaton

	conds []cCond
}

// Plan is a compiled query: slot tables, ordered atoms, placed filters.
// A Plan is bound to the graph it was planned against (statistics and
// cached traversals refer to it) and must not outlive mutations of it.
type Plan struct {
	q *Query
	g ssd.GraphStore

	atoms []*planAtom

	treeSlot  map[string]int
	labelSlot map[string]int
	pathSlot  map[string]int
	paramSlot map[string]int
	treeName  []string
	labelName []string
	pathName  []string
	paramName []string

	preConds []cCond // variable-free conjuncts, checked once per execution
	nSteps   int
	// nExistsLocals counts scratch label slots used by label variables that
	// occur only inside exists-paths: they join repeated occurrences within
	// one walk but are never exported. The executor's label array is sized
	// len(labelName)+nExistsLocals.
	nExistsLocals int
	opts          PlanOptions
	reach         []bool // reachability from root; built only for index access

	// seedEst and outEst are the cost model's cardinality estimates for the
	// leading atom's result set and the final row count. ParallelHint sizes
	// the morsel-driven scan from them, and the runtime morsel splitter
	// compares observed fan-out against outEst/seedEst. seedFanout is the
	// leading atom's structural fan-out BEFORE where-conjunct selectivities
	// were multiplied in: selectivities are clamped guesses that can
	// underestimate badly, so the parallel gate uses the structural count
	// (which also approximates the enumeration work the coordinator pays
	// regardless of how many seeds survive the filters).
	seedEst    float64
	seedFanout float64
	outEst     float64

	// idleEx is the executor released by the last closed cursor, reused by
	// the next execution. Executors carry large per-graph scratch arrays
	// (traversal visited/emitted bitmaps, dedup stamps, materialized
	// scans), so a pooled plan serving many executions pays for them once.
	// Plans are single-owner between checkout and checkin, which is what
	// makes the single cached slot safe; an unclosed cursor simply leaves
	// the slot empty and the next execution allocates fresh.
	idleEx *executor
}

// AtomInfo is the externally visible summary of one planned atom, for
// explain output and golden-plan tests.
type AtomInfo struct {
	Var    string
	Source string
	Access Access
	Est    float64
}

// Atoms returns the planned atoms in execution order.
func (p *Plan) Atoms() []AtomInfo {
	out := make([]AtomInfo, len(p.atoms))
	for i, a := range p.atoms {
		out[i] = AtomInfo{Var: a.b.Var, Source: a.b.Source, Access: a.access, Est: a.est}
	}
	return out
}

// Params returns the plan's parameter names in slot order. Executions must
// supply a value for every name.
func (p *Plan) Params() []string { return p.paramName }

// Parallelizable reports whether the plan has join work the morsel-driven
// parallel scan can fan out: at least two atoms, so workers get atoms[1:]
// while the coordinator seeds the leading atom. Callers use it to avoid
// checking out worker plans that CursorParallel would ignore anyway.
func (p *Plan) Parallelizable() bool { return len(p.atoms) >= 2 }

// Adaptive parallelism thresholds: fan-out only pays when the seed set is
// large enough to amortize worker start-up and channel traffic, and each
// worker should see several morsels so the order-preserving merge does not
// serialize on one straggler.
const (
	minParallelSeeds  = 64
	minSeedsPerWorker = 32
	morselsPerWorker  = 4
	minMorselSize     = 8
)

// ParallelHint sizes the morsel-driven parallel scan from the cost model's
// seed-cardinality estimate: how many workers (capped at maxWorkers) the
// leading atom's estimated result set can keep busy, and a morsel size that
// gives each worker several morsels. Returns (0, 0) when the plan should
// run serially — too few atoms or an estimated seed set too small to fan
// out.
//
// The gate deliberately uses the structural fan-out (seedFanout), not the
// selectivity-discounted estimate: clamped conjunct selectivities can
// underestimate the surviving seed count by orders of magnitude, and a
// wrongly-serial decision is unrecoverable (the runtime morsel splitter
// only rebalances inside an already-parallel scan), whereas wrongly
// fanning out over a small seed set costs a few idle goroutines. The
// asymmetry says: gate on the optimistic count.
func (p *Plan) ParallelHint(maxWorkers int) (workers, morselSize int) {
	if maxWorkers <= 1 || len(p.atoms) < 2 {
		return 0, 0
	}
	seeds := p.seedEst
	if p.seedFanout > seeds {
		seeds = p.seedFanout
	}
	if seeds < minParallelSeeds {
		return 0, 0
	}
	w := int(seeds) / minSeedsPerWorker
	if w > maxWorkers {
		w = maxWorkers
	}
	if w < 2 {
		return 0, 0
	}
	ms := int(seeds) / (w * morselsPerWorker)
	if ms < minMorselSize {
		ms = minMorselSize
	}
	if ms > DefaultMorselSize {
		ms = DefaultMorselSize
	}
	return w, ms
}

// perSeedEst is the cost model's expected output rows per seed row — the
// yardstick the runtime morsel splitter compares observed fan-out against.
func (p *Plan) perSeedEst() float64 {
	if p.seedEst < 1 {
		return p.outEst
	}
	return p.outEst / p.seedEst
}

// ---------------------------------------------------------------------------
// Planning

type planner struct {
	p      *Plan
	counts map[ssd.Label]int
	nodes  float64
	edges  float64
	// rootCounts holds exact per-label counts of the root's out-edges, built
	// lazily: the first step of a root-anchored atom has a frontier of
	// exactly one node, so the planner can price it exactly instead of
	// assuming uniformity.
	rootCounts map[ssd.Label]float64
}

// NewPlan compiles q against g. The query must already have passed Parse's
// static resolution (MustParse/Parse guarantee this); NewPlan re-checks only
// what it needs to stay panic-free.
func NewPlan(q *Query, g ssd.GraphStore, opts PlanOptions) (*Plan, error) {
	p := &Plan{
		q:         q,
		g:         g,
		treeSlot:  map[string]int{},
		labelSlot: map[string]int{},
		pathSlot:  map[string]int{},
		paramSlot: map[string]int{},
		opts:      opts,
	}
	pl := &planner{p: p}
	pl.gatherStats()

	// Parameters get reserved slots up front: executions bind values into a
	// flat array positionally, so re-running a cached plan never re-resolves
	// names.
	for _, name := range q.Params {
		p.paramSlot[name] = len(p.paramName)
		p.paramName = append(p.paramName, name)
	}

	// Slot assignment: every variable named anywhere in the query gets a
	// fixed slot up front, independent of atom order. The order — tree
	// slots in from-clause order, label/path slots by first occurrence —
	// is a contract: Cursor's slot accessors expose it, and the statement
	// layer (core/stmt.go) derives its result columns from the same walk.
	for _, b := range q.From {
		if _, dup := p.treeSlot[b.Var]; dup {
			return nil, fmt.Errorf("query: duplicate variable %q", b.Var)
		}
		p.treeSlot[b.Var] = len(p.treeName)
		p.treeName = append(p.treeName, b.Var)
		for _, st := range b.Path {
			switch t := st.(type) {
			case LabelVarStep:
				if _, ok := p.labelSlot[t.Name]; !ok {
					p.labelSlot[t.Name] = len(p.labelName)
					p.labelName = append(p.labelName, t.Name)
				}
			case PathVarStep:
				if _, ok := p.pathSlot[t.Name]; !ok {
					p.pathSlot[t.Name] = len(p.pathName)
					p.pathName = append(p.pathName, t.Name)
				}
			}
		}
	}

	// Atom ordering: greedily take the cheapest binding whose source is
	// already available. The original order is always a valid fallback, so
	// the loop terminates.
	//
	// The cost model scores a candidate by its estimated join fanout times
	// the selectivity of every where-conjunct that becomes checkable once
	// the candidate is bound — an atom that unlocks a selective filter is
	// worth running early even if its raw fanout is unremarkable. The
	// heuristic path (opts.Heuristic) scores by raw fanout alone, as the
	// planner did before statistics existed.
	type cand struct {
		idx int
		b   Binding
	}
	var remaining []cand
	for i, b := range q.From {
		remaining = append(remaining, cand{i, b})
	}
	type ordCond struct {
		deps condDeps
		sel  float64
		used bool
	}
	var ordConds []*ordCond
	if !p.opts.Heuristic {
		for _, c := range splitConjuncts(q.Where) {
			deps := newCondDeps()
			pl.depsOf(c, &deps)
			if deps.empty() {
				continue // constant condition: no bearing on atom order
			}
			ordConds = append(ordConds, &ordCond{deps: deps, sel: pl.selOf(c)})
		}
	}
	boundTrees := map[string]bool{}
	boundLabels := map[string]bool{}
	boundPaths := map[string]bool{}
	cum := 1.0
	for len(remaining) > 0 {
		best, bestScore, bestFanout := -1, 0.0, 0.0
		for ri, c := range remaining {
			if c.b.Source != "DB" && !boundTrees[c.b.Source] {
				continue
			}
			var score, fanout float64
			if p.opts.Heuristic {
				score = pl.estimate(c.b, boundLabels)
				fanout = score
			} else {
				score = pl.atomFanout(c.b, boundLabels)
				fanout = score
				for _, oc := range ordConds {
					if !oc.used && oc.deps.satisfiedWith(boundTrees, boundLabels, boundPaths, c.b) {
						score *= oc.sel
					}
				}
			}
			if best < 0 || score < bestScore {
				best, bestScore, bestFanout = ri, score, fanout
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("query: unsatisfiable binding order (source of %q never bound)", remaining[0].b.Var)
		}
		chosen := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		cum *= bestScore
		if len(p.atoms) == 0 {
			p.seedEst = bestScore
			p.seedFanout = bestFanout
		}
		est := bestScore
		if !p.opts.Heuristic {
			// Cost-model explain reports cumulative estimated rows after the
			// atom, so estimates line up with ExplainAnalyze's actual counts.
			est = cum
		}
		atom, err := pl.compileAtom(chosen.b, boundLabels, est)
		if err != nil {
			return nil, err
		}
		p.atoms = append(p.atoms, atom)
		boundTrees[chosen.b.Var] = true
		for _, st := range chosen.b.Path {
			switch t := st.(type) {
			case LabelVarStep:
				boundLabels[t.Name] = true
			case PathVarStep:
				boundPaths[t.Name] = true
			}
		}
		for _, oc := range ordConds {
			if !oc.used && oc.deps.satisfied(boundTrees, boundLabels, boundPaths) {
				oc.used = true
			}
		}
	}
	p.outEst = cum

	if err := pl.placeConds(); err != nil {
		return nil, err
	}

	// Index access paths interpret `DB._*` as "any reachable source", which
	// needs the reachable set once.
	for _, a := range p.atoms {
		if a.access == AccessIndexSeek {
			p.reach = ssd.ReachableFrom(g, g.Root())
			break
		}
	}
	return p, nil
}

// gatherStats collects per-label occurrence counts: from the maintained
// statistics or the supplied label index when present, otherwise by one scan
// of the graph. Only the scan fallback pays per-plan cost; the maintained
// structures make planning O(query), not O(graph).
func (pl *planner) gatherStats() {
	g := pl.p.g
	pl.nodes = float64(g.NumNodes())
	if pl.nodes < 1 {
		pl.nodes = 1
	}
	if st := pl.p.opts.Stats; st != nil {
		pl.edges = float64(st.Edges())
		return
	}
	if ix := pl.p.opts.Label; ix != nil {
		pl.counts = nil // use ix.Count directly
		pl.edges = 0
		for _, l := range ix.Labels() {
			pl.edges += float64(ix.Count(l))
		}
		return
	}
	pl.counts = make(map[ssd.Label]int)
	total := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			pl.counts[e.Label]++
			total++
		}
	}
	pl.edges = float64(total)
}

func (pl *planner) countOf(l ssd.Label) float64 {
	if st := pl.p.opts.Stats; st != nil {
		return float64(st.Count(l))
	}
	if ix := pl.p.opts.Label; ix != nil {
		return float64(ix.Count(l))
	}
	return float64(pl.counts[l])
}

// rootCount returns the exact number of root out-edges labeled l.
func (pl *planner) rootCount(l ssd.Label) float64 {
	if pl.rootCounts == nil {
		g := pl.p.g
		pl.rootCounts = make(map[ssd.Label]float64)
		for _, e := range g.Out(g.Root()) {
			pl.rootCounts[e.Label]++
		}
	}
	return pl.rootCounts[l]
}

// estimate predicts the result cardinality of walking b's path from one
// source node. The absolute value only matters relative to the other atoms.
func (pl *planner) estimate(b Binding, boundLabels map[string]bool) float64 {
	cost := 1.0
	for _, st := range b.Path {
		switch t := st.(type) {
		case *RegexStep:
			cost *= pl.exprWeight(t.Expr)
		case LabelVarStep:
			if boundLabels[t.Name] {
				cost *= 1
			} else {
				cost *= pl.avgDeg()
			}
		case PathVarStep:
			cost *= pl.nodes
		case ParamStep:
			// An exact-label filter with the label unknown at plan time:
			// assume it is selective, like a generic predicate atom.
			cost *= pl.avgDeg() / 2
		}
		if cost > 1e18 {
			return 1e18
		}
	}
	return cost
}

func (pl *planner) avgDeg() float64 {
	d := pl.edges / pl.nodes
	if d < 1 {
		d = 1
	}
	return d
}

// exprWeight estimates the per-source-node fanout of a path expression.
func (pl *planner) exprWeight(e pathexpr.Expr) float64 {
	switch t := e.(type) {
	case pathexpr.Atom:
		switch pr := t.Pred.(type) {
		case pathexpr.ExactPred:
			return pl.countOf(pr.L) / pl.nodes
		case pathexpr.AnyPred:
			return pl.avgDeg()
		default:
			return pl.avgDeg() / 2
		}
	case pathexpr.Seq:
		w := 1.0
		for _, part := range t.Parts {
			w *= pl.exprWeight(part)
		}
		return w
	case pathexpr.Alt:
		w := 0.0
		for _, alt := range t.Alts {
			w += pl.exprWeight(alt)
		}
		return w
	case pathexpr.Star, pathexpr.Plus:
		// A closure can reach a large fraction of the graph.
		return pl.nodes
	case pathexpr.Opt:
		return 1 + pl.exprWeight(t.Sub)
	default:
		return pl.avgDeg()
	}
}

// ---------------------------------------------------------------------------
// Cost model
//
// The cost model threads an estimated row frontier through each atom's path
// steps (atomFanout), sharpened by the maintained statistics where present:
// exact root out-degrees for the first step of a root-anchored atom,
// distinct-source counts for join containment, and the numeric histogram
// for range-predicate selectivity (selOf). Scores are relative — only their
// order matters to the greedy atom ordering — but the cumulative product is
// also surfaced in Explain as estimated rows, comparable against
// ExplainAnalyze's actual counts.

// Per-access-path unit costs: the relative price of producing one candidate
// row through each mechanism. A backward-verified posting costs more than a
// forward edge walk (each posting re-walks the chain prefix over reverse
// edges); a dataguide product state costs more than a graph edge (extent
// union on acceptance).
const (
	unitForwardEdge    = 1.0
	unitBackwardVerify = 2.0
	unitGuideNode      = 1.5
)

// atomFanout estimates the rows produced by walking b's path from one
// already-bound source row (or from the root for DB-anchored atoms, where
// the leading frontier is exactly one node and root out-degrees are exact).
func (pl *planner) atomFanout(b Binding, boundLabels map[string]bool) float64 {
	f := 1.0
	fromRoot := b.Source == "DB"
	for _, st := range b.Path {
		switch t := st.(type) {
		case *RegexStep:
			f = pl.stepCard(f, t.Expr, fromRoot)
		case LabelVarStep:
			if boundLabels[t.Name] {
				// Equality filter against an already-bound label: expect one
				// matching edge.
			} else {
				f *= pl.avgDeg()
			}
		case PathVarStep:
			f *= pl.nodes
		case ParamStep:
			// Exact-label filter whose label is unknown at plan time.
			f *= pl.avgDeg() / 2
		}
		fromRoot = false
		if f > 1e18 {
			return 1e18
		}
	}
	return f
}

// stepCard estimates the frontier size after walking e from a frontier of f
// rows. fromRoot marks the first step of a root-anchored atom.
func (pl *planner) stepCard(f float64, e pathexpr.Expr, fromRoot bool) float64 {
	switch t := e.(type) {
	case pathexpr.Atom:
		switch pr := t.Pred.(type) {
		case pathexpr.ExactPred:
			return pl.exactCard(f, pr.L, fromRoot)
		case pathexpr.AnyPred:
			return f * pl.avgDeg()
		default:
			return f * pl.avgDeg() / 2
		}
	case pathexpr.Seq:
		for _, part := range t.Parts {
			f = pl.stepCard(f, part, fromRoot)
			fromRoot = false
			if f > 1e18 {
				return 1e18
			}
		}
		return f
	case pathexpr.Alt:
		w := 0.0
		for _, alt := range t.Alts {
			w += pl.stepCard(f, alt, fromRoot)
		}
		return w
	case pathexpr.Star, pathexpr.Plus:
		// A closure can reach a large fraction of the graph from each
		// frontier row; compose with the incoming frontier so upstream
		// selectivity is not discarded.
		return f * pl.nodes
	case pathexpr.Opt:
		return f + pl.stepCard(f, t.Sub, false)
	default:
		return f * pl.avgDeg()
	}
}

// exactCard estimates the frontier after following edges labeled l from f
// rows. With statistics, join containment applies: the frontier is assumed
// to lie inside l's source set, so each row fans out by count/distinct-src,
// capped at the label's total occurrence count.
func (pl *planner) exactCard(f float64, l ssd.Label, fromRoot bool) float64 {
	if fromRoot {
		return pl.rootCount(l)
	}
	cnt := pl.countOf(l)
	if st := pl.p.opts.Stats; st != nil {
		ds := float64(st.DistinctSources(l))
		if ds <= 0 {
			return 0
		}
		est := f * cnt / ds
		if est > cnt {
			est = cnt
		}
		return est
	}
	return f * cnt / pl.nodes
}

// selOf estimates the fraction of rows a where-conjunct keeps. Equality
// against a literal divides by the distinct-value count; range comparisons
// against a numeric literal read the histogram; everything else falls back
// to fixed fractions in the System R tradition.
func (pl *planner) selOf(c Cond) float64 {
	switch t := c.(type) {
	case And:
		return pl.selOf(t.L) * pl.selOf(t.R)
	case Or:
		a, b := pl.selOf(t.L), pl.selOf(t.R)
		return a + b - a*b
	case Not:
		return 1 - pl.selOf(t.Sub)
	case Cmp:
		return pl.cmpSel(t)
	case TypeTest, LikeCond:
		return 0.25
	case Exists:
		return 0.5
	default:
		return 1.0 / 3
	}
}

func (pl *planner) cmpSel(c Cmp) float64 {
	// Normalize to `var op lit`.
	var lit LitTerm
	var other Term
	op := c.Op
	if l, ok := c.L.(LitTerm); ok {
		lit, other, op = l, c.R, flipCmp(op) // lit op var ⇔ var flip(op) lit
	} else if r, ok := c.R.(LitTerm); ok {
		lit, other = r, c.L
	} else {
		return 1.0 / 3 // variable-to-variable or parameter: unknown at plan time
	}
	switch op {
	case pathexpr.OpEQ:
		return pl.eqSel(lit.L, other)
	case pathexpr.OpNE:
		return 0.9
	case pathexpr.OpGT, pathexpr.OpGE:
		if st := pl.p.opts.Stats; st != nil {
			if v, ok := lit.L.Numeric(); ok && st.NumericCount() > 0 {
				return clampSel(st.FracGreater(v))
			}
		}
		return 1.0 / 3
	case pathexpr.OpLT, pathexpr.OpLE:
		if st := pl.p.opts.Stats; st != nil {
			if v, ok := lit.L.Numeric(); ok && st.NumericCount() > 0 {
				return clampSel(st.FracLess(v))
			}
		}
		return 1.0 / 3
	default:
		return 1.0 / 3
	}
}

// eqSel estimates equality selectivity of `other = lit`.
func (pl *planner) eqSel(lit ssd.Label, other Term) float64 {
	switch other.(type) {
	case VarTerm:
		// A tree variable equals a value when the node carries a data edge
		// with that label: P ≈ nodes carrying the value / all nodes.
		if st := pl.p.opts.Stats; st != nil {
			return clampSel((float64(st.DistinctSources(lit)) + 0.5) / pl.nodes)
		}
		return clampSel((pl.countOf(lit) + 0.5) / pl.nodes)
	case LabelTerm:
		if pl.edges > 0 {
			return clampSel((pl.countOf(lit) + 0.5) / pl.edges)
		}
		return 0.1
	case PathLenTerm:
		return 0.25
	default:
		return 0.1
	}
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// flipCmp mirrors a comparison operator: a op b ⇔ b flip(op) a.
func flipCmp(op pathexpr.CmpOp) pathexpr.CmpOp {
	switch op {
	case pathexpr.OpLT:
		return pathexpr.OpGT
	case pathexpr.OpLE:
		return pathexpr.OpGE
	case pathexpr.OpGT:
		return pathexpr.OpLT
	case pathexpr.OpGE:
		return pathexpr.OpLE
	default:
		return op
	}
}

// compileAtom resolves slots, compiles steps, and picks the access path.
func (pl *planner) compileAtom(b Binding, boundLabels map[string]bool, est float64) (*planAtom, error) {
	p := pl.p
	a := &planAtom{
		b:       b,
		srcSlot: -1,
		dstSlot: p.treeSlot[b.Var],
		est:     est,
		dedup:   true,
	}
	if b.Source != "DB" {
		a.srcSlot = p.treeSlot[b.Source]
	}
	localBound := map[string]bool{}
	for name := range boundLabels {
		localBound[name] = true
	}
	for _, st := range b.Path {
		ps, err := pl.compileStep(st, localBound, p.labelSlot, p.pathSlot)
		if err != nil {
			return nil, err
		}
		// Variable-binding steps make destinations non-dedupable (two rows
		// can reach the same node with different bindings); a parameter step
		// is a pure filter and keeps dedup legal.
		if ps.kind == stepLabelVar || ps.kind == stepPathVar {
			a.dedup = false
		}
		a.steps = append(a.steps, ps)
	}
	pl.chooseAccess(a)
	return a, nil
}

// compileStep compiles one path step. Label variables present in slots bind
// (first occurrence) or filter (later occurrences); absent ones — possible
// only inside exists-paths — are wildcards.
func (pl *planner) compileStep(st PathStep, localBound map[string]bool, labelSlot, pathSlot map[string]int) (*planStep, error) {
	ps := &planStep{id: pl.p.nSteps, slot: -1}
	pl.p.nSteps++
	switch t := st.(type) {
	case *RegexStep:
		ps.kind = stepRegex
		// Per-plan automaton: the statement layer hands each concurrent
		// cursor its own pooled plan on the promise that plans own their
		// automata (and their mutable lazy-DFA caches) exclusively, so a
		// shared compiled form on the AST would race.
		ps.au = pathexpr.Compile(t.Expr)
	case LabelVarStep:
		ps.kind = stepLabelVar
		if slot, ok := labelSlot[t.Name]; ok {
			ps.slot = slot
			ps.filter = localBound[t.Name]
			localBound[t.Name] = true
		}
	case ParamStep:
		ps.kind = stepParam
		slot, ok := pl.p.paramSlot[t.Name]
		if !ok {
			return nil, fmt.Errorf("query: parameter $%s not registered", t.Name)
		}
		ps.slot = slot
	case PathVarStep:
		if slot, ok := pathSlot[t.Name]; ok {
			ps.kind = stepPathVar
			ps.slot = slot
			// Per-plan automaton for the witness search: automata carry a
			// mutable lazy-DFA cache, so sharing one across plans (or a
			// package global) would leak state between unrelated queries.
			ps.au = pathexpr.Compile(pathexpr.AnyStar())
		} else {
			// Unregistered path variable (exists-path): plain wildcard walk.
			ps.kind = stepRegex
			ps.au = pathexpr.Compile(pathexpr.AnyStar())
		}
	default:
		return nil, fmt.Errorf("query: unknown path step %T", st)
	}
	return ps, nil
}

// chooseAccess picks the access path for a compiled atom. Only root-anchored
// regex-only atoms have alternatives to forward traversal.
func (pl *planner) chooseAccess(a *planAtom) {
	a.access = AccessForward
	if a.srcSlot != -1 {
		return
	}
	parts, regexOnly := flattenRegexPath(a.b.Path)
	if !regexOnly || len(parts) == 0 {
		return
	}

	heur := pl.p.opts.Heuristic
	if pl.p.opts.Label != nil {
		// `_*.label`: the posting list is the answer.
		if l, ok := seekShape(parts); ok {
			a.access = AccessIndexSeek
			a.seekLabel = l
			if heur {
				a.est = pl.countOf(l)
			}
			return
		}
		// Exact chain with a rare interior label: seek the rarest posting
		// list and verify the prefix backward over reverse edges. Backward
		// verification needs In(), which only reverse-capable stores offer
		// (the paged store is forward-only), so gate on the capability.
		_, reversible := pl.p.g.(ssd.ReverseStore)
		if chain, ok := exactChain(parts); ok && len(chain) >= 2 && reversible {
			minIdx := 0
			for i, l := range chain {
				if pl.countOf(l) < pl.countOf(chain[minIdx]) {
					minIdx = i
				}
			}
			// Priced per candidate row: forward walks every chain edge from
			// chain[0] onward at forward-edge cost; backward touches one
			// posting per rarest-label edge, each verified over at most
			// len(chain) reverse steps at the higher verify cost.
			depth := float64(len(chain))
			forward := pl.countOf(chain[0]) * depth * unitForwardEdge
			backward := pl.countOf(chain[minIdx]) * depth * unitBackwardVerify
			if heur {
				// The pre-cost-model comparison, kept for the ablation path.
				forward = pl.countOf(chain[0])
				backward = pl.countOf(chain[minIdx]) * depth
			}
			if minIdx > 0 && backward < forward {
				a.access = AccessIndexBackward
				a.chain = chain
				a.chainIdx = minIdx
				if heur {
					a.est = pl.countOf(chain[minIdx])
				}
				return
			}
		}
	}
	if pl.p.opts.Guide != nil {
		// A dataguide product visits at most one state per guide node; the
		// forward product can touch the whole graph. Price both worst
		// cases; the heuristic path keeps the old always-prefer-guide rule.
		guideCost := float64(pl.p.opts.Guide.G.NumNodes()) * unitGuideNode
		forwardCost := (pl.nodes + pl.edges) * unitForwardEdge
		if heur || guideCost < forwardCost {
			a.access = AccessGuide
			a.guideAu = pathexpr.Compile(pathexpr.Seq{Parts: parts})
		}
		return
	}
}

// flattenRegexPath returns the top-level expression list of an all-regex
// path (splicing top-level Seqs), or ok=false if any step binds a variable.
func flattenRegexPath(path []PathStep) ([]pathexpr.Expr, bool) {
	var parts []pathexpr.Expr
	for _, st := range path {
		rs, ok := st.(*RegexStep)
		if !ok {
			return nil, false
		}
		if seq, isSeq := rs.Expr.(pathexpr.Seq); isSeq {
			parts = append(parts, seq.Parts...)
		} else {
			parts = append(parts, rs.Expr)
		}
	}
	return parts, true
}

// seekShape recognizes `_* . exact-label` (any number of leading `_*`
// parts). The label must be a symbol or string so that posting-list identity
// equals predicate equality (no numeric overloading).
func seekShape(parts []pathexpr.Expr) (ssd.Label, bool) {
	if len(parts) < 2 {
		return ssd.Label{}, false
	}
	for _, p := range parts[:len(parts)-1] {
		if !isAnyStar(p) {
			return ssd.Label{}, false
		}
	}
	at, ok := parts[len(parts)-1].(pathexpr.Atom)
	if !ok {
		return ssd.Label{}, false
	}
	ex, ok := at.Pred.(pathexpr.ExactPred)
	if !ok {
		return ssd.Label{}, false
	}
	if k := ex.L.Kind(); k != ssd.KindSymbol && k != ssd.KindString {
		return ssd.Label{}, false
	}
	return ex.L, true
}

func isAnyStar(e pathexpr.Expr) bool {
	st, ok := e.(pathexpr.Star)
	if !ok {
		return false
	}
	at, ok := st.Sub.(pathexpr.Atom)
	if !ok {
		return false
	}
	_, ok = at.Pred.(pathexpr.AnyPred)
	return ok
}

// exactChain recognizes a pure exact-symbol chain l0.l1.…lk.
func exactChain(parts []pathexpr.Expr) ([]ssd.Label, bool) {
	chain := make([]ssd.Label, 0, len(parts))
	for _, p := range parts {
		at, ok := p.(pathexpr.Atom)
		if !ok {
			return nil, false
		}
		ex, ok := at.Pred.(pathexpr.ExactPred)
		if !ok {
			return nil, false
		}
		if k := ex.L.Kind(); k != ssd.KindSymbol && k != ssd.KindString {
			return nil, false
		}
		chain = append(chain, ex.L)
	}
	return chain, true
}

// ---------------------------------------------------------------------------
// Where-conjunct compilation and placement

// placeConds splits the where clause into conjuncts, compiles each against
// the slot tables, and attaches it to the earliest atom after which all of
// its variables are bound.
func (pl *planner) placeConds() error {
	p := pl.p
	if p.q.Where == nil {
		return nil
	}
	// boundAt[i]: sets bound after atoms[0..i] ran.
	for _, c := range splitConjuncts(p.q.Where) {
		deps := newCondDeps()
		pl.depsOf(c, &deps)
		at := -1 // -1 = no variables: pre-condition
		bt := map[string]bool{}
		bl := map[string]bool{}
		bp := map[string]bool{}
		for i, a := range p.atoms {
			bt[a.b.Var] = true
			for _, st := range a.b.Path {
				switch t := st.(type) {
				case LabelVarStep:
					bl[t.Name] = true
				case PathVarStep:
					bp[t.Name] = true
				}
			}
			if !deps.satisfied(bt, bl, bp) {
				continue
			}
			at = i
			break
		}
		if at == -1 && !deps.empty() {
			// Should be impossible after Parse's resolution.
			return fmt.Errorf("query: condition references variables never bound")
		}
		cc, err := pl.compileCond(c)
		if err != nil {
			return err
		}
		if at == -1 {
			p.preConds = append(p.preConds, cc)
		} else {
			p.atoms[at].conds = append(p.atoms[at].conds, cc)
		}
	}
	return nil
}

// splitConjuncts flattens a where clause into its top-level conjuncts.
func splitConjuncts(c Cond) []Cond {
	if c == nil {
		return nil
	}
	var out []Cond
	var split func(c Cond)
	split = func(c Cond) {
		if and, ok := c.(And); ok {
			split(and.L)
			split(and.R)
			return
		}
		out = append(out, c)
	}
	split(c)
	return out
}

type condDeps struct {
	trees, labels, paths map[string]bool
}

func newCondDeps() condDeps {
	return condDeps{trees: map[string]bool{}, labels: map[string]bool{}, paths: map[string]bool{}}
}

func (d *condDeps) empty() bool {
	return len(d.trees) == 0 && len(d.labels) == 0 && len(d.paths) == 0
}

// satisfiedWith reports whether the dependencies would all be bound once b
// joins the already-bound sets — the ordering loop's what-if probe, done
// without materializing the updated sets per candidate.
func (d *condDeps) satisfiedWith(bt, bl, bp map[string]bool, b Binding) bool {
	for v := range d.trees {
		if !bt[v] && v != b.Var {
			return false
		}
	}
	for v := range d.labels {
		if !bl[v] && !bindsLabelVar(b, v) {
			return false
		}
	}
	for v := range d.paths {
		if !bp[v] && !bindsPathVar(b, v) {
			return false
		}
	}
	return true
}

func bindsLabelVar(b Binding, name string) bool {
	for _, st := range b.Path {
		if lv, ok := st.(LabelVarStep); ok && lv.Name == name {
			return true
		}
	}
	return false
}

func bindsPathVar(b Binding, name string) bool {
	for _, st := range b.Path {
		if pv, ok := st.(PathVarStep); ok && pv.Name == name {
			return true
		}
	}
	return false
}

func (d *condDeps) satisfied(bt, bl, bp map[string]bool) bool {
	for v := range d.trees {
		if !bt[v] {
			return false
		}
	}
	for v := range d.labels {
		if !bl[v] {
			return false
		}
	}
	for v := range d.paths {
		if !bp[v] {
			return false
		}
	}
	return true
}

func (pl *planner) depsOf(c Cond, d *condDeps) {
	switch t := c.(type) {
	case And:
		pl.depsOf(t.L, d)
		pl.depsOf(t.R, d)
	case Or:
		pl.depsOf(t.L, d)
		pl.depsOf(t.R, d)
	case Not:
		pl.depsOf(t.Sub, d)
	case Cmp:
		pl.termDeps(t.L, d)
		pl.termDeps(t.R, d)
	case TypeTest:
		pl.termDeps(t.T, d)
	case LikeCond:
		pl.termDeps(t.T, d)
	case Exists:
		d.trees[t.Source] = true
		for _, st := range t.Path {
			if lv, ok := st.(LabelVarStep); ok {
				if _, registered := pl.p.labelSlot[lv.Name]; registered {
					d.labels[lv.Name] = true
				}
			}
		}
	}
}

func (pl *planner) termDeps(t Term, d *condDeps) {
	switch tt := t.(type) {
	case VarTerm:
		d.trees[tt.Name] = true
	case LabelTerm:
		d.labels[tt.Name] = true
	case PathLenTerm:
		d.paths[tt.Name] = true
	}
}

// ---------------------------------------------------------------------------
// Compiled conditions: the filter operator's predicate language, with every
// variable reference resolved to a slot at plan time.

type cCond interface {
	eval(ex *executor) bool
}

type cAnd struct{ l, r cCond }
type cOr struct{ l, r cCond }
type cNot struct{ sub cCond }

func (c cAnd) eval(ex *executor) bool { return c.l.eval(ex) && c.r.eval(ex) }
func (c cOr) eval(ex *executor) bool  { return c.l.eval(ex) || c.r.eval(ex) }
func (c cNot) eval(ex *executor) bool { return !c.sub.eval(ex) }

type termKind int

const (
	termLit termKind = iota
	termTree
	termLabel
	termPathLen
	termParam
)

// cTerm is a slot-resolved term. Its value set is enumerated without
// materialization via each.
type cTerm struct {
	kind termKind
	lit  ssd.Label
	slot int
}

// each calls f on every value of the term, stopping early (and returning
// true) when f returns true.
func (t cTerm) each(ex *executor, f func(ssd.Label) bool) bool {
	switch t.kind {
	case termLit:
		return f(t.lit)
	case termLabel:
		return f(ex.regs.labels[t.slot])
	case termPathLen:
		return f(ssd.Int(int64(len(ex.regs.paths[t.slot]))))
	case termParam:
		return f(ex.params[t.slot])
	default: // termTree: the labels of the node's data edges
		n := ex.regs.trees[t.slot]
		for _, e := range ex.g.Out(n) {
			if e.Label.IsData() && f(e.Label) {
				return true
			}
		}
		return false
	}
}

type cCmp struct {
	op   pathexpr.CmpOp
	l, r cTerm
}

func (c cCmp) eval(ex *executor) bool {
	return c.l.each(ex, func(a ssd.Label) bool {
		return c.r.each(ex, func(b ssd.Label) bool {
			return c.op.Apply(a, b)
		})
	})
}

type cPred struct {
	pred pathexpr.Pred
	t    cTerm
}

func (c cPred) eval(ex *executor) bool {
	return c.t.each(ex, func(v ssd.Label) bool { return c.pred.Match(v) })
}

type cExists struct {
	srcSlot int
	steps   []*planStep
}

func (c cExists) eval(ex *executor) bool {
	return ex.pathExists(ex.regs.trees[c.srcSlot], c.steps, 0)
}

func (pl *planner) compileCond(c Cond) (cCond, error) {
	switch t := c.(type) {
	case And:
		l, err := pl.compileCond(t.L)
		if err != nil {
			return nil, err
		}
		r, err := pl.compileCond(t.R)
		if err != nil {
			return nil, err
		}
		return cAnd{l, r}, nil
	case Or:
		l, err := pl.compileCond(t.L)
		if err != nil {
			return nil, err
		}
		r, err := pl.compileCond(t.R)
		if err != nil {
			return nil, err
		}
		return cOr{l, r}, nil
	case Not:
		sub, err := pl.compileCond(t.Sub)
		if err != nil {
			return nil, err
		}
		return cNot{sub}, nil
	case Cmp:
		l, err := pl.compileTerm(t.L)
		if err != nil {
			return nil, err
		}
		r, err := pl.compileTerm(t.R)
		if err != nil {
			return nil, err
		}
		return cCmp{op: t.Op, l: l, r: r}, nil
	case TypeTest:
		tm, err := pl.compileTerm(t.T)
		if err != nil {
			return nil, err
		}
		return cPred{pred: t.Pred, t: tm}, nil
	case LikeCond:
		tm, err := pl.compileTerm(t.T)
		if err != nil {
			return nil, err
		}
		return cPred{pred: pathexpr.LikePred{Pattern: t.Pattern}, t: tm}, nil
	case Exists:
		slot, ok := pl.p.treeSlot[t.Source]
		if !ok {
			return nil, fmt.Errorf("query: exists source %q unbound", t.Source)
		}
		// Label variables inside the path: registered ones filter against
		// their from-clause binding; unregistered ones get a scratch slot so
		// repeated occurrences still join on equality within one walk (the
		// naive engine threads them through walkSteps the same way).
		localSlots := map[string]int{}
		var steps []*planStep
		for _, st := range t.Path {
			if lv, isLV := st.(LabelVarStep); isLV {
				ps := &planStep{id: pl.p.nSteps, kind: stepLabelVar}
				pl.p.nSteps++
				if s, registered := pl.p.labelSlot[lv.Name]; registered {
					ps.slot, ps.filter = s, true
				} else if s, seen := localSlots[lv.Name]; seen {
					ps.slot, ps.filter = s, true
				} else {
					s = len(pl.p.labelName) + pl.p.nExistsLocals
					pl.p.nExistsLocals++
					localSlots[lv.Name] = s
					ps.slot = s // bind mode: first occurrence in this walk
				}
				steps = append(steps, ps)
				continue
			}
			ps, err := pl.compileStep(st, nil, pl.p.labelSlot, pl.p.pathSlot)
			if err != nil {
				return nil, err
			}
			if ps.kind == stepPathVar {
				// Path variables inside exists are wildcards; their binding
				// would be discarded anyway.
				ps.kind = stepRegex
				ps.au = pathexpr.Compile(pathexpr.AnyStar())
				ps.slot = -1
			}
			steps = append(steps, ps)
		}
		return cExists{srcSlot: slot, steps: steps}, nil
	default:
		return nil, fmt.Errorf("query: unknown condition %T", c)
	}
}

func (pl *planner) compileTerm(t Term) (cTerm, error) {
	switch tt := t.(type) {
	case LitTerm:
		return cTerm{kind: termLit, lit: tt.L}, nil
	case VarTerm:
		slot, ok := pl.p.treeSlot[tt.Name]
		if !ok {
			return cTerm{}, fmt.Errorf("query: variable %q unbound", tt.Name)
		}
		return cTerm{kind: termTree, slot: slot}, nil
	case LabelTerm:
		slot, ok := pl.p.labelSlot[tt.Name]
		if !ok {
			return cTerm{}, fmt.Errorf("query: label variable %%%s unbound", tt.Name)
		}
		return cTerm{kind: termLabel, slot: slot}, nil
	case PathLenTerm:
		slot, ok := pl.p.pathSlot[tt.Name]
		if !ok {
			return cTerm{}, fmt.Errorf("query: path variable @%s unbound", tt.Name)
		}
		return cTerm{kind: termPathLen, slot: slot}, nil
	case ParamTerm:
		slot, ok := pl.p.paramSlot[tt.Name]
		if !ok {
			return cTerm{}, fmt.Errorf("query: parameter $%s not registered", tt.Name)
		}
		return cTerm{kind: termParam, slot: slot}, nil
	default:
		return cTerm{}, fmt.Errorf("query: unknown term %T", t)
	}
}

// ---------------------------------------------------------------------------
// Explain

// Explain renders the plan for humans: atom order, access paths, estimated
// cardinalities, and filter placement.
func (p *Plan) Explain() string { return p.explainWith(nil) }

// ExplainAnalyze executes the plan serially to exhaustion, counting the
// rows that survive each atom's filters, and renders the plan with
// estimated and actual cardinalities side by side — the feedback view for
// judging the cost model. params binds the plan's $parameters, exactly as
// for Cursor. The result rows themselves are discarded.
func (p *Plan) ExplainAnalyze(ctx context.Context, params map[string]ssd.Label) (string, error) {
	vals, err := p.paramVals(params)
	if err != nil {
		return "", err
	}
	ex := p.exec(ctx, vals)
	var tr ExecTrace
	tr.init(len(p.atoms))
	ex.trace = &tr
	for ex.Next() {
	}
	actual := tr.AtomRows
	err = ex.err
	ex.trace = nil
	ex.release()
	if err != nil {
		return "", err
	}
	return p.explainWith(actual), nil
}

// explainWith renders the plan, annotating each atom with its observed row
// count when actual is non-nil (one counter per atom, in plan order) —
// ExplainAnalyze's estimated-vs-actual view.
func (p *Plan) explainWith(actual []int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d atoms, %d tree / %d label / %d path slots", len(p.atoms), len(p.treeName), len(p.labelName), len(p.pathName))
	if len(p.paramName) > 0 {
		fmt.Fprintf(&b, ", %d params", len(p.paramName))
	}
	b.WriteByte('\n')
	if len(p.preConds) > 0 {
		fmt.Fprintf(&b, "  pre-filter: %d constant condition(s)\n", len(p.preConds))
	}
	for i, a := range p.atoms {
		src := a.b.Source
		var steps strings.Builder
		writeSteps(&steps, a.b.Path)
		fmt.Fprintf(&b, "  %d. %s := %s%s  access=%s est=%.3g", i+1, a.b.Var, src, steps.String(), a.access, a.est)
		if actual != nil && i < len(actual) {
			fmt.Fprintf(&b, " actual=%d", actual[i])
		}
		switch a.access {
		case AccessIndexSeek:
			fmt.Fprintf(&b, " label=%s", a.seekLabel)
		case AccessIndexBackward:
			fmt.Fprintf(&b, " seek=%s@%d", a.chain[a.chainIdx], a.chainIdx)
		}
		b.WriteByte('\n')
		for range a.conds {
			fmt.Fprintf(&b, "     filter placed here\n")
		}
	}
	return b.String()
}
