package mutate

import (
	"bytes"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/ssd"
)

func fig1Fragment() *ssd.Graph {
	return ssd.MustParse(`{Entry: {Movie: {Title: "Casablanca", Director: "Curtiz"}}}`)
}

// randBatch draws a batch of every record kind against g, mutating nothing.
func randBatch(g *ssd.Graph, rng *rand.Rand, ops int) *Batch {
	b := NewBatch(g)
	labels := []ssd.Label{
		ssd.Sym("a"), ssd.Sym("b"), ssd.Str("s"), ssd.Int(-3), ssd.Float(2.5),
		ssd.Bool(true), ssd.OID("&o"),
	}
	limit := func() int32 { return int32(g.NumNodes()) + int32(b.added) }
	anyNode := func() ssd.NodeID { return ssd.NodeID(rng.Int31n(limit())) }
	for i := 0; i < ops; i++ {
		var err error
		switch rng.Intn(6) {
		case 0:
			b.AddNode()
		case 1:
			err = b.AddEdge(anyNode(), labels[rng.Intn(len(labels))], anyNode())
		case 2:
			err = b.DeleteEdge(anyNode(), labels[rng.Intn(len(labels))], anyNode())
		case 3:
			err = b.Relabel(anyNode(), labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))])
		case 4:
			err = b.SetOID(anyNode(), "&obj")
		default:
			err = b.SetRoot(anyNode())
		}
		if err != nil {
			panic(err)
		}
	}
	return b
}

func TestBatchCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := fig1Fragment()
	for iter := 0; iter < 100; iter++ {
		b := randBatch(g, rng, 1+rng.Intn(12))
		enc := EncodeBatch(b)
		back, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !reflect.DeepEqual(back.recs, b.recs) || back.baseNodes != b.baseNodes || back.added != b.added {
			t.Fatalf("iter %d: decoded batch differs", iter)
		}
		if !bytes.Equal(EncodeBatch(back), enc) {
			t.Fatalf("iter %d: re-encode not byte-identical", iter)
		}
	}
	if _, err := DecodeBatch([]byte{0x01}); err == nil {
		t.Error("truncated batch decoded without error")
	}
	if _, err := DecodeBatch(append(EncodeBatch(NewBatch(g)), 0xff)); err == nil {
		t.Error("trailing bytes not rejected")
	}
}

func TestApplyCOWIsolationAndDelta(t *testing.T) {
	g := fig1Fragment()
	before := ssd.FormatRoot(g)
	entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
	movie := g.LookupFirst(entry, ssd.Sym("Movie"))
	title := g.LookupFirst(movie, ssd.Sym("Title"))

	b := NewBatch(g)
	year := b.AddNode()
	leaf := b.AddNode()
	if err := b.AddEdge(movie, ssd.Sym("Year"), year); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(year, ssd.Int(1942), leaf); err != nil {
		t.Fatal(err)
	}
	if err := b.Relabel(movie, ssd.Sym("Director"), ssd.Sym("DirectedBy")); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteEdge(movie, ssd.Sym("Title"), title); err != nil {
		t.Fatal(err)
	}
	if err := b.SetOID(movie, "&m1"); err != nil {
		t.Fatal(err)
	}

	h, res, err := ApplyCOW(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := ssd.FormatRoot(g); got != before {
		t.Fatalf("base graph changed:\n got %s\nwant %s", got, before)
	}
	if res.NodesAdded != 2 || !res.OIDChanged || res.RootChanged {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Delta.Added) != 3 || len(res.Delta.Removed) != 2 {
		t.Fatalf("delta = %+v", res.Delta)
	}
	if h.NumNodes() != g.NumNodes()+2 {
		t.Fatalf("clone nodes = %d", h.NumNodes())
	}
	if got := h.Lookup(movie, ssd.Sym("DirectedBy")); len(got) != 1 {
		t.Fatalf("relabel missing: %v", got)
	}
	if got := h.Lookup(movie, ssd.Sym("Title")); len(got) != 0 {
		t.Fatalf("delete missing: %v", got)
	}
	if id, ok := h.OIDOf(movie); !ok || id != "&m1" {
		t.Fatalf("oid = %q, %v", id, ok)
	}
	if _, ok := g.OIDOf(movie); ok {
		t.Fatal("oid leaked into base graph")
	}
}

func TestApplyRejectsBadBatches(t *testing.T) {
	g := fig1Fragment()
	b := NewBatch(g)
	if err := b.AddEdge(ssd.NodeID(999), ssd.Sym("x"), g.Root()); err == nil {
		t.Error("out-of-range AddEdge accepted at build time")
	}
	b.AddNode()
	g.AddNode() // concurrent allocation: base version moved
	if _, _, err := ApplyCOW(g, b); err == nil {
		t.Error("stale-base batch with AddNode applied without error")
	}
}

func TestParseScript(t *testing.T) {
	g := fig1Fragment()
	entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
	movie := g.LookupFirst(entry, ssd.Sym("Movie"))
	src := `
		// attach a year subtree and rename the director edge
		addnode ; addnode
		addedge ` + itoa(movie) + ` Year $0
		addedge $0 1942 $1
		relabel ` + itoa(movie) + ` Director "Directed By"
		setoid $0 &y1
		setroot ` + itoa(entry) + `
	`
	b, err := ParseScript(src, g)
	if err != nil {
		t.Fatal(err)
	}
	h, res, err := ApplyCOW(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RootChanged || res.NodesAdded != 2 {
		t.Fatalf("result = %+v", res)
	}
	if h.Root() != entry {
		t.Fatalf("root = %d, want %d", h.Root(), entry)
	}
	year := h.LookupFirst(movie, ssd.Sym("Year"))
	if year == ssd.InvalidNode {
		t.Fatal("Year edge missing")
	}
	if got := h.Lookup(year, ssd.Int(1942)); len(got) != 1 {
		t.Fatalf("int label edge missing: %v", got)
	}
	if got := h.Lookup(movie, ssd.Str("Directed By")); len(got) != 1 {
		t.Fatalf("relabel to string label missing: %v", got)
	}
	if id, ok := h.OIDOf(year); !ok || id != "&y1" {
		t.Fatalf("oid = %q, %v", id, ok)
	}

	for _, bad := range []string{
		"frobnicate 1", "addedge 0 x", "addedge $9 x 0", "addedge 0 \"unterminated 1",
	} {
		if _, err := ParseScript(bad, g); err == nil {
			t.Errorf("ParseScript(%q) succeeded", bad)
		}
	}
}

func itoa(n ssd.NodeID) string { return strconv.Itoa(int(n)) }
