package mutate

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ssd"
)

// cursorTestLog writes a WAL with n chain-batches and returns the log path,
// the open WAL, and each batch's encoded payload in append order.
func cursorTestLog(t *testing.T, dir string, n int) (string, *WAL, [][]byte) {
	t.Helper()
	g := fig1Fragment()
	logPath := filepath.Join(dir, "wal")
	w, err := OpenWAL(logPath, Fingerprint(fig1Fragment()))
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < n; i++ {
		b := NewBatch(g)
		prev := g.Root()
		for j := 0; j <= i%3; j++ { // vary batch sizes
			nn := b.AddNode()
			if err := b.AddEdge(prev, ssd.Sym("chain"), nn); err != nil {
				t.Fatal(err)
			}
			prev = nn
		}
		if _, err := ApplyInPlace(g, b); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, EncodeBatch(b))
	}
	return logPath, w, payloads
}

// TestCursorReadsCommittedFrames drains a finished log and then hits
// ErrNoFrame at the clean tail.
func TestCursorReadsCommittedFrames(t *testing.T) {
	path, w, payloads := cursorTestLog(t, t.TempDir(), 5)
	defer w.Close()
	c, err := OpenCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.BaseFingerprint() != w.BaseFingerprint() {
		t.Fatalf("cursor fp %#x, WAL fp %#x", c.BaseFingerprint(), w.BaseFingerprint())
	}
	for i, want := range payloads {
		got, err := c.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload differs from appended batch", i)
		}
	}
	if _, err := c.Next(); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("at clean tail: err = %v, want ErrNoFrame", err)
	}
}

// TestCursorSkipPositions skips k frames and resumes exactly at frame k.
func TestCursorSkipPositions(t *testing.T) {
	path, w, payloads := cursorTestLog(t, t.TempDir(), 6)
	defer w.Close()
	for k := 0; k <= len(payloads); k++ {
		c, err := OpenCursor(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Skip(k); err != nil {
			t.Fatalf("skip %d: %v", k, err)
		}
		got, err := c.Next()
		if k == len(payloads) {
			if !errors.Is(err, ErrNoFrame) {
				t.Fatalf("skip-all: err = %v, want ErrNoFrame", err)
			}
		} else if err != nil || !bytes.Equal(got, payloads[k]) {
			t.Fatalf("after skip %d: err=%v, payload match=%v", k, err, bytes.Equal(got, payloads[k]))
		}
		c.Close()
	}
}

// TestCursorNeverObservesTornTail is the replication-safety regression test:
// for every cut position that tears the final frame — inside the length
// varint, inside the CRC word, one byte short of complete — a cursor over
// the torn file yields exactly the complete frames and then ErrNoFrame. A
// torn frame must be indistinguishable from "not yet written": surfacing it
// would replicate an uncommitted batch. Appending the missing bytes (the
// writer finishing its in-flight write) must then surface the frame.
func TestCursorNeverObservesTornTail(t *testing.T) {
	dir := t.TempDir()
	path, w, payloads := cursorTestLog(t, dir, 3)
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)

	check := func(name string, cut, wantFrames int) {
		t.Helper()
		torn := filepath.Join(dir, "torn-"+name)
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCursor(torn)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer c.Close()
		for i := 0; i < wantFrames; i++ {
			got, err := c.Next()
			if err != nil {
				t.Fatalf("%s: complete frame %d: %v", name, i, err)
			}
			if !bytes.Equal(got, payloads[i]) {
				t.Fatalf("%s: frame %d payload differs", name, i)
			}
		}
		// The torn remainder must read as "no frame yet", repeatedly.
		for i := 0; i < 2; i++ {
			if _, err := c.Next(); !errors.Is(err, ErrNoFrame) {
				t.Fatalf("%s: torn tail surfaced as %v, want ErrNoFrame", name, err)
			}
		}
		// Writer completes the frame: the cursor now sees it without reopening.
		if err := os.WriteFile(torn, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if wantFrames < len(payloads) {
			got, err := c.Next()
			if err != nil || !bytes.Equal(got, payloads[wantFrames]) {
				t.Fatalf("%s: completed frame: err=%v", name, err)
			}
		}
	}

	// ends[0] is the header end; batch frame i spans ends[i]..ends[i+1].
	for i := 0; i < len(ends)-1; i++ {
		used, _ := uvarintLen(data[ends[i]:])
		check(fmt.Sprintf("varint-split-%d", i), ends[i]+1, i)
		check(fmt.Sprintf("crc-split-%d", i), ends[i]+used+2, i)
		check(fmt.Sprintf("payload-split-%d", i), ends[i+1]-1, i)
	}
}

// TestCursorConcurrentWriter races a cursor tailing the log against the
// writer appending to it: the reader must see every batch, in order, byte
// for byte, and must never surface an error other than ErrNoFrame. Run
// under -race this also checks the no-shared-state claim of the design (the
// cursor reads through its own fd; the only coupling is the file).
func TestCursorConcurrentWriter(t *testing.T) {
	dir := t.TempDir()
	g := fig1Fragment()
	path := filepath.Join(dir, "wal")
	w, err := OpenWAL(path, Fingerprint(fig1Fragment()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const batches = 40
	var (
		mu       sync.Mutex
		appended [][]byte
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < batches; i++ {
			b := NewBatch(g)
			n := b.AddNode()
			if err := b.AddEdge(g.Root(), ssd.Sym("r"), n); err != nil {
				t.Error(err)
				return
			}
			enc := EncodeBatch(b)
			mu.Lock()
			// Under the same ordering a real commit has: the payload is
			// recorded before Append makes it visible to the reader.
			appended = append(appended, enc)
			if _, err := ApplyInPlace(g, b); err != nil {
				mu.Unlock()
				t.Error(err)
				return
			}
			if err := w.Append(b); err != nil {
				mu.Unlock()
				t.Error(err)
				return
			}
			mu.Unlock()
		}
	}()

	c, err := OpenCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	read := 0
	for read < batches {
		frame, err := c.Next()
		if errors.Is(err, ErrNoFrame) {
			continue // writer hasn't committed the next batch yet
		}
		if err != nil {
			t.Fatalf("frame %d: %v", read, err)
		}
		mu.Lock()
		if read >= len(appended) {
			mu.Unlock()
			t.Fatalf("cursor read frame %d before the writer recorded it", read)
		}
		ok := bytes.Equal(frame, appended[read])
		mu.Unlock()
		if !ok {
			t.Fatalf("frame %d differs from the appended batch", read)
		}
		read++
	}
	<-done
	if _, err := c.Next(); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("after all batches: err = %v, want ErrNoFrame", err)
	}
}

// TestCursorReboundOnTruncatePrefix: a checkpoint's prefix truncation swaps
// the log file by rename; a cursor parked at the old tail must report
// ErrCursorRebound, not silently misread the new file through stale offsets.
func TestCursorReboundOnTruncatePrefix(t *testing.T) {
	path, w, payloads := cursorTestLog(t, t.TempDir(), 4)
	defer w.Close()
	c, err := OpenCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for range payloads {
		if _, err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.TruncatePrefix(3, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); !errors.Is(err, ErrCursorRebound) {
		t.Fatalf("after TruncatePrefix: err = %v, want ErrCursorRebound", err)
	}
	// A fresh cursor over the truncated log sees the surviving suffix.
	c2, err := OpenCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.Next()
	if err != nil || !bytes.Equal(got, payloads[3]) {
		t.Fatalf("fresh cursor after truncation: err=%v", err)
	}
}

// TestCursorReboundOnCompact: compaction truncates the log in place (same
// inode), so rebind detection must catch the size shrinking below the
// cursor's offset even though the inode is unchanged.
func TestCursorReboundOnCompact(t *testing.T) {
	dir := t.TempDir()
	g := fig1Fragment()
	path := filepath.Join(dir, "wal")
	w, err := OpenWAL(path, Fingerprint(fig1Fragment()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 3; i++ {
		b := NewBatch(g)
		n := b.AddNode()
		if err := b.AddEdge(g.Root(), ssd.Sym("r"), n); err != nil {
			t.Fatal(err)
		}
		if _, err := ApplyInPlace(g, b); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	c, err := OpenCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact(filepath.Join(dir, "snap"), g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); !errors.Is(err, ErrCursorRebound) {
		t.Fatalf("after Compact: err = %v, want ErrCursorRebound", err)
	}
}

// TestStreamFrameRoundTrip pins the wire framing replication streams use:
// WriteFrameTo/ReadFrameFrom round-trip payloads, a clean end is io.EOF,
// and any mid-frame truncation is an error — never a short frame.
func TestStreamFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{7}, 300)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrameTo(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	wire := buf.Bytes()
	r := bufio.NewReader(bytes.NewReader(wire))
	for i, want := range payloads {
		got, err := ReadFrameFrom(r)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: err=%v", i, err)
		}
	}
	if _, err := ReadFrameFrom(r); err != io.EOF {
		t.Fatalf("clean end: err = %v, want io.EOF", err)
	}
	for cut := 1; cut < len(wire); cut++ {
		r := bufio.NewReader(bytes.NewReader(wire[:cut]))
		var err error
		for err == nil {
			_, err = ReadFrameFrom(r)
		}
		if err == io.EOF {
			// io.EOF is only legal exactly at a frame boundary.
			atBoundary := false
			pos := 0
			for _, p := range payloads {
				pos += len(appendFrame(nil, p))
				if cut == pos {
					atBoundary = true
				}
			}
			if !atBoundary {
				t.Fatalf("cut %d: truncation inside a frame read as clean EOF", cut)
			}
		}
	}
}
