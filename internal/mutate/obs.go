package mutate

// WAL metrics: append/fsync latency and durable log growth. The bytes
// gauge tracks w.end, so truncation and compaction show up as drops —
// exactly the sawtooth an operator watches against the checkpoint
// threshold.

import "repro/internal/obs"

var (
	obsWALAppendDur = obs.Default.Histogram("ssd_wal_append_duration_seconds",
		"Full WAL frame append latency: encode, write, fsync.")
	obsWALFsyncDur = obs.Default.Histogram("ssd_wal_fsync_duration_seconds",
		"fsync portion of a WAL frame append.")
	obsWALAppends = obs.Default.Counter("ssd_wal_appends_total",
		"WAL frames appended (batch and header frames).")
	obsWALBytes = obs.Default.Gauge("ssd_wal_bytes",
		"Current WAL size in bytes up to the last valid frame.")
)
