package mutate

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bisim"
	"repro/internal/ssd"
)

// truncBase builds a small base graph and a WAL with n appended batches,
// each adding one labeled leaf under the root. It returns the base, the
// open WAL and the graph with all batches applied.
func truncBase(t *testing.T, path string, n int) (*ssd.Graph, *WAL, *ssd.Graph) {
	t.Helper()
	base, err := ssd.Parse(`{seed: "s"}`)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(path, Fingerprint(base))
	if err != nil {
		t.Fatal(err)
	}
	g := base.Clone()
	for i := 0; i < n; i++ {
		b := NewBatch(g)
		node := b.AddNode()
		b.AddEdge(g.Root(), ssd.Int(int64(i)), node)
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		if _, err := ApplyInPlace(g, b); err != nil {
			t.Fatal(err)
		}
	}
	return base, w, g
}

func canonical(g *ssd.Graph) string { return ssd.FormatRoot(bisim.Canonicalize(g)) }

// TestTruncatePrefix cuts k batches off a 5-batch log and checks that the
// remaining log, bound to the state after k batches, replays to the final
// state — for every k including 0 (rebind only) and 5 (full reset).
func TestTruncatePrefix(t *testing.T) {
	for k := 0; k <= 5; k++ {
		path := filepath.Join(t.TempDir(), "wal.log")
		base, w, final := truncBase(t, path, 5)

		// State after k batches = snapshot the truncated log must extend.
		mid := base.Clone()
		for i := 0; i < k; i++ {
			b := NewBatch(mid)
			node := b.AddNode()
			b.AddEdge(mid.Root(), ssd.Int(int64(i)), node)
			if _, err := ApplyInPlace(mid, b); err != nil {
				t.Fatal(err)
			}
		}

		if err := w.TruncatePrefix(k, Fingerprint(mid)); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got, want := w.Batches(), 5-k; got != want {
			t.Fatalf("k=%d: %d batches after truncate, want %d", k, got, want)
		}
		if w.BaseFingerprint() != Fingerprint(mid) {
			t.Fatalf("k=%d: header fingerprint not rebound", k)
		}
		w.Close()

		// Reopen against the mid state and replay: must equal final.
		rw, err := OpenWAL(path, Fingerprint(mid))
		if err != nil {
			t.Fatalf("k=%d reopen: %v", k, err)
		}
		if got, want := rw.Batches(), 5-k; got != want {
			t.Fatalf("k=%d reopen: %d batches, want %d", k, got, want)
		}
		re := mid.Clone()
		if err := rw.Replay(func(b *Batch) error {
			_, err := ApplyInPlace(re, b)
			return err
		}); err != nil {
			t.Fatalf("k=%d replay: %v", k, err)
		}
		rw.Close()
		if canonical(re) != canonical(final) {
			t.Fatalf("k=%d: truncated log replays to a different state", k)
		}
	}
}

// TestTruncatePrefixThenAppend checks the reopened file handle: appends
// after a truncation must land at the new end and survive a reopen.
func TestTruncatePrefixThenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	_, w, final := truncBase(t, path, 3)
	fp := Fingerprint(final)
	if err := w.TruncatePrefix(3, fp); err != nil {
		t.Fatal(err)
	}
	g := final.Clone()
	b := NewBatch(g)
	node := b.AddNode()
	b.AddEdge(g.Root(), ssd.Sym("tail"), node)
	if err := w.Append(b); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyInPlace(g, b); err != nil {
		t.Fatal(err)
	}
	w.Close()

	rw, err := OpenWAL(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if rw.Batches() != 1 {
		t.Fatalf("got %d batches, want 1", rw.Batches())
	}
	re := final.Clone()
	if err := rw.Replay(func(b *Batch) error {
		_, err := ApplyInPlace(re, b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if canonical(re) != canonical(g) {
		t.Fatal("post-truncate append lost")
	}
}

// TestOpenWALMatching covers the recovery-side open: the matched
// fingerprint is reported, and a log bound to no accepted fingerprint is a
// hard error (never set aside — that would silently drop commits in a
// durable directory).
func TestOpenWALMatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	base, w, _ := truncBase(t, path, 2)
	w.Close()

	fp := Fingerprint(base)
	rw, matched, err := OpenWALMatching(path, 0x12345678, fp)
	if err != nil {
		t.Fatal(err)
	}
	if matched != fp {
		t.Fatalf("matched %08x, want %08x", matched, fp)
	}
	if rw.Batches() != 2 {
		t.Fatalf("got %d batches, want 2", rw.Batches())
	}
	rw.Close()

	if _, _, err := OpenWALMatching(path, 0x12345678); err == nil {
		t.Fatal("unknown binding accepted")
	}
	if _, statErr := os.Stat(path + ".stale"); !os.IsNotExist(statErr) {
		t.Fatal("OpenWALMatching set the log aside on mismatch")
	}

	// A fresh file is created bound to the first fingerprint.
	fresh := filepath.Join(t.TempDir(), "fresh.log")
	fw, matched, err := OpenWALMatching(fresh, 0xABCD)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	if matched != 0xABCD || fw.BaseFingerprint() != 0xABCD {
		t.Fatalf("fresh log bound to %08x, want ABCD", matched)
	}
}
