package mutate

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ssd"
	"repro/internal/storage"
)

// Batch wire format, following internal/storage's codec conventions
// (uvarints for counts and node ids, storage's label encoding):
//
//	baseNodes uvarint | count uvarint
//	per record: op u8, then
//	  AddNode               (nothing)
//	  AddEdge, DeleteEdge   from uvarint, label, to uvarint
//	  Relabel               from uvarint, old label, new label
//	  SetOID                node uvarint, len uvarint + bytes
//	  SetRoot               node uvarint

// EncodeBatch serializes a batch.
func EncodeBatch(b *Batch) []byte {
	buf := make([]byte, 0, 16+len(b.recs)*8)
	buf = binary.AppendUvarint(buf, uint64(b.baseNodes))
	buf = binary.AppendUvarint(buf, uint64(len(b.recs)))
	for _, r := range b.recs {
		buf = append(buf, byte(r.Op))
		switch r.Op {
		case OpAddNode:
		case OpAddEdge, OpDeleteEdge:
			buf = binary.AppendUvarint(buf, uint64(r.From))
			buf = storage.AppendLabel(buf, r.Label)
			buf = binary.AppendUvarint(buf, uint64(r.To))
		case OpRelabel:
			buf = binary.AppendUvarint(buf, uint64(r.From))
			buf = storage.AppendLabel(buf, r.Old)
			buf = storage.AppendLabel(buf, r.Label)
		case OpSetOID:
			buf = binary.AppendUvarint(buf, uint64(r.From))
			buf = binary.AppendUvarint(buf, uint64(len(r.OID)))
			buf = append(buf, r.OID...)
		case OpSetRoot:
			buf = binary.AppendUvarint(buf, uint64(r.From))
		}
	}
	return buf
}

// DecodeBatch parses a serialized batch. The decoded batch re-derives its
// AddNode allocation counter, so it applies exactly like the original.
func DecodeBatch(data []byte) (*Batch, error) {
	d := &decoder{data: data}
	baseNodes := d.uvarint()
	count := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if count > uint64(len(data)) { // one byte per record minimum
		return nil, fmt.Errorf("mutate: implausible record count %d", count)
	}
	b := newBatchSized(int(baseNodes))
	for i := uint64(0); i < count; i++ {
		op := Op(d.byte())
		if d.err != nil {
			return nil, d.err
		}
		r := Rec{Op: op}
		switch op {
		case OpAddNode:
			b.added++
		case OpAddEdge, OpDeleteEdge:
			r.From = d.node()
			r.Label = d.label()
			r.To = d.node()
		case OpRelabel:
			r.From = d.node()
			r.Old = d.label()
			r.Label = d.label()
		case OpSetOID:
			r.From = d.node()
			r.OID = d.str()
		case OpSetRoot:
			r.From = d.node()
		default:
			return nil, fmt.Errorf("mutate: unknown op %d at record %d", op, i)
		}
		if d.err != nil {
			return nil, d.err
		}
		b.recs = append(b.recs, r)
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("mutate: %d trailing bytes after batch", len(data)-d.pos)
	}
	return b, nil
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

// decoder is a thin error-latching wrapper around internal/storage's
// bounds-checked primitive readers, so both on-disk formats share one
// decode implementation.
func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	c := d.data[d.pos]
	d.pos++
	return c
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, pos, err := storage.ReadUvarint(d.data, d.pos)
	if err != nil {
		d.err = err
		return 0
	}
	d.pos = pos
	return v
}

func (d *decoder) node() ssd.NodeID { return ssd.NodeID(d.uvarint()) }

func (d *decoder) label() ssd.Label {
	if d.err != nil {
		return ssd.Label{}
	}
	l, pos, err := storage.ReadLabel(d.data, d.pos)
	if err != nil {
		d.err = err
		return ssd.Label{}
	}
	d.pos = pos
	return l
}

func (d *decoder) str() string {
	if d.err != nil {
		return ""
	}
	s, pos, err := storage.ReadString(d.data, d.pos)
	if err != nil {
		d.err = err
		return ""
	}
	d.pos = pos
	return s
}
