package mutate

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ssd"
)

// frameEnds returns the byte offset just past each valid frame of a WAL
// file (offset 0 excluded): frameEnds[0] is the end of the header frame,
// frameEnds[i] the end of batch frame i-1.
func frameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	pos := 0
	for pos < len(data) {
		n, used := binary.Uvarint(data[pos:])
		if used <= 0 || pos+used+4+int(n) > len(data) {
			t.Fatalf("corrupt frame at %d", pos)
		}
		pos += used + 4 + int(n)
		ends = append(ends, pos)
	}
	return ends
}

// TestWALTornTailFrameBoundaries pins the torn-tail scan at its exact edge
// cases: a tear landing precisely on a frame boundary keeps every batch
// before it, and tears splitting the next frame's header — inside the
// uvarint length prefix and inside the CRC word — drop exactly the torn
// frame. Replay after each cut must be byte-identical (bisim.Canonicalize)
// to the state the surviving prefix of batches produces.
func TestWALTornTailFrameBoundaries(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal")

	g := fig1Fragment()
	base := canon(g)
	w, err := OpenWAL(logPath, Fingerprint(fig1Fragment()))
	if err != nil {
		t.Fatal(err)
	}

	// Three deterministic batches. The second is large enough (>127 bytes
	// of payload) that its frame's length prefix is a multi-byte uvarint —
	// so a cut one byte into the frame header genuinely splits the varint.
	var states []string // canon after batches[0..i]
	mkBatch := func(nodes int) *Batch {
		b := NewBatch(g)
		prev := g.Root()
		for i := 0; i < nodes; i++ {
			n := b.AddNode()
			if err := b.AddEdge(prev, ssd.Sym("chain"), n); err != nil {
				t.Fatal(err)
			}
			prev = n
		}
		return b
	}
	for _, size := range []int{2, 200, 3} {
		b := mkBatch(size)
		if _, err := ApplyInPlace(g, b); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		states = append(states, canon(g))
	}
	w.Close()

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)
	if len(ends) != 4 { // header + 3 batches
		t.Fatalf("frames = %d, want 4", len(ends))
	}
	// The big frame's length prefix must really be multi-byte for the
	// varint-split case to mean anything.
	if n, used := binary.Uvarint(data[ends[1]:]); used < 2 {
		t.Fatalf("big frame length %d encodes in %d byte(s); test needs >= 2", n, used)
	}

	check := func(name string, cut int, wantBatches int) {
		t.Helper()
		torn := filepath.Join(dir, "torn-"+name)
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(torn, Fingerprint(fig1Fragment()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer w2.Close()
		if w2.Batches() != wantBatches {
			t.Fatalf("%s: %d batches survived, want %d", name, w2.Batches(), wantBatches)
		}
		h := fig1Fragment()
		if err := w2.Replay(func(b *Batch) error { _, err := ApplyInPlace(h, b); return err }); err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
		want := base
		if wantBatches > 0 {
			want = states[wantBatches-1]
		}
		if got := canon(h); got != want {
			t.Fatalf("%s: replayed state not byte-identical to the %d-batch prefix:\n got %s\nwant %s",
				name, wantBatches, got, want)
		}
	}

	// ends[i] is the end of the i-th frame: a cut there keeps the header
	// plus i batches (i = 0 keeps just the header).
	for i := 0; i < len(ends); i++ {
		check(fmt.Sprintf("boundary-%d", i), ends[i], i)
	}
	for i := 0; i < len(ends)-1; i++ {
		used, _ := uvarintLen(data[ends[i]:])
		// One byte into the next frame's header: splits the length varint
		// itself when it is multi-byte (the big frame), else leaves a bare
		// length with no CRC.
		check(fmt.Sprintf("varint-split-%d", i), ends[i]+1, i)
		// Inside the CRC word of the next frame's header.
		check(fmt.Sprintf("crc-split-%d", i), ends[i]+used+2, i)
		// One byte short of the next boundary: the payload is torn and the
		// CRC check rejects it.
		check(fmt.Sprintf("payload-split-%d", i), ends[i+1]-1, i)
	}
}

// uvarintLen returns how many bytes the uvarint at the head of b occupies
// and its value.
func uvarintLen(b []byte) (int, uint64) {
	v, used := binary.Uvarint(b)
	return used, v
}
