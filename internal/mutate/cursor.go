package mutate

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the read side of WAL replication: a Cursor that tails a log
// file which the single writer keeps appending to. The cursor never takes
// the writer lock — it reads through its own read-only file handle — so its
// correctness rests on two properties of the append path:
//
//   - frames are appended with a single write and fsynced before the commit
//     is acknowledged, so every byte before the last complete frame is
//     immutable history;
//   - a frame is accepted only when its full length is present AND its CRC
//     matches, so a concurrently-appearing partial frame (the writer's
//     in-flight write, or a torn tail after a crash) is indistinguishable
//     from "no frame yet" and is never surfaced to the consumer.
//
// Log truncation (TruncatePrefix) replaces the file via rename, and
// compaction (Compact) shrinks it in place; both invalidate the cursor's
// offset-to-frame mapping. The cursor detects either — a changed inode, or
// a file now shorter than its read offset — and reports ErrCursorRebound so
// the caller can re-derive its position and open a fresh cursor.

// ErrNoFrame reports that no complete frame exists at the cursor's offset
// yet: the tail is either clean end-of-log or a partial in-flight frame.
// Poll again after the writer commits.
var ErrNoFrame = errors.New("mutate: no complete frame at the log tail yet")

// ErrCursorRebound reports that the log file was replaced or truncated under
// the cursor (checkpoint truncation or compaction): the cursor's frame
// indexing no longer describes the file at its path. Re-derive the position
// and open a new cursor.
var ErrCursorRebound = errors.New("mutate: log truncated or replaced under cursor")

// maxFrameBytes bounds a single frame a cursor will accept. The writer's
// batches are bounded by the serving layer's request caps well below this;
// a length prefix beyond it is treated as torn bytes, not a frame.
const maxFrameBytes = 1 << 30

// Cursor reads batch frames from a WAL file, tolerating a writer appending
// to it concurrently. Not safe for concurrent use by multiple goroutines.
type Cursor struct {
	path string
	f    *os.File
	fp   uint32 // binding fingerprint from the header frame
	off  int64  // offset of the next unread frame
	buf  []byte // reusable read buffer
}

// OpenCursor opens a replication cursor over the log at path, positioned at
// the first batch frame (just past the header). The header frame must be
// complete — OpenWAL writes it before the log is ever published.
func OpenCursor(path string) (*Cursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c := &Cursor{path: path, f: f}
	hdr, err := c.frameAt(0)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("mutate: cursor %s: unreadable header frame: %w", path, err)
	}
	want := headerPayload(0)
	if len(hdr) != len(want) || string(hdr[:5]) != string(want[:5]) {
		f.Close()
		return nil, fmt.Errorf("mutate: cursor %s: not a v%d WAL header", path, walVersion)
	}
	c.fp = binary.LittleEndian.Uint32(hdr[5:])
	c.off = frameLen(hdr)
	return c, nil
}

// BaseFingerprint returns the snapshot fingerprint the log's header bound it
// to when the cursor was opened.
func (c *Cursor) BaseFingerprint() uint32 { return c.fp }

// Next returns the payload of the next complete batch frame. It returns
// ErrNoFrame when the tail holds no complete frame yet (poll again after the
// next commit), and ErrCursorRebound when the file was truncated or replaced
// under the cursor. The returned slice is owned by the caller.
func (c *Cursor) Next() ([]byte, error) {
	payload, err := c.frameAt(c.off)
	if err != nil {
		if errors.Is(err, ErrNoFrame) && c.rebound() {
			return nil, ErrCursorRebound
		}
		return nil, err
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	c.off += frameLen(payload)
	return out, nil
}

// Skip advances the cursor past n batch frames without returning them — the
// positioning step after a follower reports how far it already applied. The
// skipped frames must be complete; a tail or rebind inside the skip is
// reported as Next would.
func (c *Cursor) Skip(n int) error {
	for i := 0; i < n; i++ {
		payload, err := c.frameAt(c.off)
		if err != nil {
			if errors.Is(err, ErrNoFrame) && c.rebound() {
				return ErrCursorRebound
			}
			return err
		}
		c.off += frameLen(payload)
	}
	return nil
}

// frameLen is the on-disk size of a frame carrying payload.
func frameLen(payload []byte) int64 {
	var lenBuf [binary.MaxVarintLen64]byte
	used := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	return int64(used) + 4 + int64(len(payload))
}

// frameAt reads and validates the frame starting at off. The returned slice
// aliases the cursor's internal buffer. Incomplete or CRC-failing bytes —
// a clean end of log, the writer's in-flight append, or a torn tail — all
// come back as ErrNoFrame: none of them is a committed frame.
func (c *Cursor) frameAt(off int64) ([]byte, error) {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n, err := c.f.ReadAt(hdr[:], off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	plen, used := binary.Uvarint(hdr[:n])
	if used <= 0 || n < used+4 {
		return nil, ErrNoFrame // length prefix or CRC word not fully present
	}
	if plen > maxFrameBytes {
		return nil, ErrNoFrame // torn bytes, not a plausible frame
	}
	sum := binary.LittleEndian.Uint32(hdr[used:])
	if cap(c.buf) < int(plen) {
		c.buf = make([]byte, plen)
	}
	payload := c.buf[:plen]
	if _, err := c.f.ReadAt(payload, off+int64(used)+4); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrNoFrame // payload not fully written yet
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrNoFrame // partial write still in flight, or torn tail
	}
	return payload, nil
}

// rebound reports whether the file at the cursor's path is no longer the one
// (or the prefix) the cursor has been reading: a rename swapped the inode
// (TruncatePrefix), or an in-place truncation shrank it below the cursor's
// offset (Compact). Called only when no complete frame is available, so a
// false negative just means one more poll.
func (c *Cursor) rebound() bool {
	cur, err := c.f.Stat()
	if err != nil {
		return true
	}
	disk, err := os.Stat(c.path)
	if err != nil {
		return true // unlinked with no replacement yet: certainly rebound
	}
	if !os.SameFile(cur, disk) {
		return true
	}
	return disk.Size() < c.off
}

// Close releases the cursor's file handle.
func (c *Cursor) Close() error { return c.f.Close() }

// WriteFrameTo writes payload to w in the WAL frame encoding — the wire
// format replication streams reuse, so a follower's frame reader and the
// log's own scanner agree byte for byte.
func WriteFrameTo(w io.Writer, payload []byte) error {
	_, err := w.Write(appendFrame(nil, payload))
	return err
}

// ReadFrameFrom reads one frame from r (a replication stream), validating
// its CRC. io.EOF means a clean end of stream before any frame byte;
// any mid-frame truncation is io.ErrUnexpectedEOF.
func ReadFrameFrom(r *bufio.Reader) ([]byte, error) {
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mutate: stream frame length: %w", err)
	}
	if plen > maxFrameBytes {
		return nil, fmt.Errorf("mutate: stream frame of %d bytes exceeds limit", plen)
	}
	var sumBuf [4]byte
	if _, err := io.ReadFull(r, sumBuf[:]); err != nil {
		return nil, fmt.Errorf("mutate: stream frame CRC: %w", noEOF(err))
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("mutate: stream frame payload: %w", noEOF(err))
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sumBuf[:]) {
		return nil, fmt.Errorf("mutate: stream frame fails CRC")
	}
	return payload, nil
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF: inside a frame, a stream end is
// always a truncation, and callers must not mistake it for a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Path returns the file path the log was opened at — what a replication
// cursor over this log must be pointed at.
func (w *WAL) Path() string { return w.path }
