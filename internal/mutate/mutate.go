// Package mutate is the write path of the system: the versioned update
// subsystem layered between ssd.Graph and core.Database. Buneman's tutorial
// stresses that semistructured data is schema-less and self-describing
// precisely because it evolves; this package makes evolution first-class
// instead of the clone-the-world edits of the unql operators.
//
// It has three parts:
//
//   - a mutation log: typed records (AddNode, AddEdge, DeleteEdge, Relabel,
//     SetOID, SetRoot) gathered into Batches, with a compact binary encoding
//     reusing internal/storage's codec conventions (codec.go);
//   - batch application with copy-on-write of touched adjacency slices
//     (ApplyCOW), producing the edge Delta that drives incremental
//     maintenance of indexes and DataGuides;
//   - an append-only write-ahead log (wal.go) with Open/Replay/Append/
//     Compact, so a database file plus its WAL replays to exactly the
//     in-memory graph.
//
// A small text script format (script.go) exposes the record types to the
// ssdq CLI.
package mutate

import (
	"fmt"

	"repro/internal/ssd"
)

// Op discriminates mutation record types.
type Op uint8

// The mutation record types. Values are part of the WAL wire format; never
// reorder them.
const (
	OpAddNode Op = iota + 1
	OpAddEdge
	OpDeleteEdge
	OpRelabel
	OpSetOID
	OpSetRoot
)

func (op Op) String() string {
	switch op {
	case OpAddNode:
		return "addnode"
	case OpAddEdge:
		return "addedge"
	case OpDeleteEdge:
		return "deledge"
	case OpRelabel:
		return "relabel"
	case OpSetOID:
		return "setoid"
	case OpSetRoot:
		return "setroot"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Rec is one typed mutation record. Which fields are meaningful depends on
// Op:
//
//	AddNode               (none; allocates the next NodeID)
//	AddEdge, DeleteEdge   From, Label, To
//	Relabel               From, Old → Label (all edges out of From labeled Old)
//	SetOID                From, OID
//	SetRoot               From
type Rec struct {
	Op    Op
	From  ssd.NodeID
	To    ssd.NodeID
	Label ssd.Label
	Old   ssd.Label
	OID   string
}

// Batch is an ordered sequence of mutation records built against a base
// graph version. AddNode allocates IDs continuing the base graph's dense
// numbering, so a batch replays deterministically; the base node count is
// recorded (and encoded in the WAL) to detect application against a
// different version.
type Batch struct {
	baseNodes int
	added     int
	recs      []Rec
}

// NewBatch starts an empty batch against the current version of base.
func NewBatch(base *ssd.Graph) *Batch { return newBatchSized(base.NumNodes()) }

func newBatchSized(baseNodes int) *Batch { return &Batch{baseNodes: baseNodes} }

// Len returns the number of records in the batch.
func (b *Batch) Len() int { return len(b.recs) }

// Recs exposes the records (read-only) for inspection and logging.
func (b *Batch) Recs() []Rec { return b.recs }

// BaseNodes returns the node count of the graph version the batch was built
// against.
func (b *Batch) BaseNodes() int { return b.baseNodes }

// AddNode records a node allocation and returns the NodeID it will receive
// when the batch is applied.
func (b *Batch) AddNode() ssd.NodeID {
	b.recs = append(b.recs, Rec{Op: OpAddNode})
	b.added++
	return ssd.NodeID(b.baseNodes + b.added - 1)
}

// AddEdge records an edge addition.
func (b *Batch) AddEdge(from ssd.NodeID, l ssd.Label, to ssd.NodeID) error {
	if err := b.checkNode(from); err != nil {
		return err
	}
	if err := b.checkNode(to); err != nil {
		return err
	}
	b.recs = append(b.recs, Rec{Op: OpAddEdge, From: from, Label: l, To: to})
	return nil
}

// DeleteEdge records removal of the first from → (l) → to edge (label
// identity, matching ssd.Graph.DeleteEdge). Deleting an absent edge is a
// no-op at apply time.
func (b *Batch) DeleteEdge(from ssd.NodeID, l ssd.Label, to ssd.NodeID) error {
	if err := b.checkNode(from); err != nil {
		return err
	}
	if err := b.checkNode(to); err != nil {
		return err
	}
	b.recs = append(b.recs, Rec{Op: OpDeleteEdge, From: from, Label: l, To: to})
	return nil
}

// Relabel records rewriting every edge out of from labeled old to new.
func (b *Batch) Relabel(from ssd.NodeID, old, new ssd.Label) error {
	if err := b.checkNode(from); err != nil {
		return err
	}
	b.recs = append(b.recs, Rec{Op: OpRelabel, From: from, Old: old, Label: new})
	return nil
}

// SetOID records assigning an OEM object identity to a node.
func (b *Batch) SetOID(n ssd.NodeID, id string) error {
	if err := b.checkNode(n); err != nil {
		return err
	}
	b.recs = append(b.recs, Rec{Op: OpSetOID, From: n, OID: id})
	return nil
}

// SetRoot records moving the distinguished root.
func (b *Batch) SetRoot(n ssd.NodeID) error {
	if err := b.checkNode(n); err != nil {
		return err
	}
	b.recs = append(b.recs, Rec{Op: OpSetRoot, From: n})
	return nil
}

func (b *Batch) checkNode(n ssd.NodeID) error {
	if n < 0 || int(n) >= b.baseNodes+b.added {
		return fmt.Errorf("mutate: node %d out of range [0,%d)", n, b.baseNodes+b.added)
	}
	return nil
}

func (b *Batch) hasAddNode() bool { return b.added > 0 }

// Result summarizes one applied batch for derived-structure maintenance.
type Result struct {
	// Delta lists the edge occurrences added and removed, in application
	// order (a relabel contributes one removal and one addition per edge).
	Delta ssd.Delta
	// NodesAdded counts fresh node allocations.
	NodesAdded int
	// RootChanged reports that SetRoot moved the root to a different node —
	// every root-anchored derived structure (the DataGuide) is then stale
	// beyond repair by the delta.
	RootChanged bool
	// OIDChanged reports that object identities were touched. Value
	// semantics ignores OIDs, but codecs and OEM exchange do not.
	OIDChanged bool
}

// ApplyCOW applies the batch copy-on-write: it returns a new graph sharing
// every untouched adjacency slice with g, which stays exactly as it was —
// readers holding g (the published MVCC snapshot) never observe a
// half-applied batch. The returned Result feeds incremental maintenance.
func ApplyCOW(g *ssd.Graph, b *Batch) (*ssd.Graph, Result, error) {
	h := g.CloneShared()
	res, err := applyRecs(h, b, true)
	if err != nil {
		return nil, Result{}, err
	}
	return h, res, nil
}

// ApplyInPlace applies the batch directly to g, which must not be visible to
// concurrent readers. It is the replay path: WAL batches are applied to a
// private clone before the result is published.
func ApplyInPlace(g *ssd.Graph, b *Batch) (Result, error) {
	return applyRecs(g, b, false)
}

func applyRecs(g *ssd.Graph, b *Batch, cow bool) (Result, error) {
	if b.hasAddNode() && g.NumNodes() != b.baseNodes {
		return Result{}, fmt.Errorf("mutate: batch allocated nodes against %d base nodes, graph has %d",
			b.baseNodes, g.NumNodes())
	}
	var res Result
	var touched map[ssd.NodeID]bool
	priv := func(n ssd.NodeID) {
		if !cow {
			return
		}
		if touched == nil {
			touched = make(map[ssd.NodeID]bool)
		}
		if !touched[n] {
			g.PrivatizeOut(n)
			touched[n] = true
		}
	}
	check := func(n ssd.NodeID) error {
		if n < 0 || int(n) >= g.NumNodes() {
			return fmt.Errorf("mutate: node %d out of range [0,%d)", n, g.NumNodes())
		}
		return nil
	}
	for _, r := range b.recs {
		switch r.Op {
		case OpAddNode:
			g.AddNode()
			res.NodesAdded++
		case OpAddEdge:
			if err := check(r.From); err != nil {
				return Result{}, err
			}
			if err := check(r.To); err != nil {
				return Result{}, err
			}
			priv(r.From)
			g.AddEdge(r.From, r.Label, r.To)
			res.Delta.Added = append(res.Delta.Added, ssd.EdgeRec{From: r.From, Label: r.Label, To: r.To})
		case OpDeleteEdge:
			if err := check(r.From); err != nil {
				return Result{}, err
			}
			if err := check(r.To); err != nil {
				return Result{}, err
			}
			priv(r.From)
			if g.DeleteEdge(r.From, r.Label, r.To) {
				res.Delta.Removed = append(res.Delta.Removed, ssd.EdgeRec{From: r.From, Label: r.Label, To: r.To})
			}
		case OpRelabel:
			if err := check(r.From); err != nil {
				return Result{}, err
			}
			priv(r.From)
			for _, e := range g.Out(r.From) {
				if e.Label == r.Old {
					res.Delta.Removed = append(res.Delta.Removed, ssd.EdgeRec{From: r.From, Label: r.Old, To: e.To})
					res.Delta.Added = append(res.Delta.Added, ssd.EdgeRec{From: r.From, Label: r.Label, To: e.To})
				}
			}
			g.Relabel(r.From, r.Old, r.Label)
		case OpSetOID:
			if err := check(r.From); err != nil {
				return Result{}, err
			}
			g.SetOID(r.From, r.OID)
			res.OIDChanged = true
		case OpSetRoot:
			if err := check(r.From); err != nil {
				return Result{}, err
			}
			if g.Root() != r.From {
				res.RootChanged = true
			}
			g.SetRoot(r.From)
		default:
			return Result{}, fmt.Errorf("mutate: unknown op %d", r.Op)
		}
	}
	return res, nil
}
