package mutate

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ssd"
)

// ParseScript parses the ssdq mutation script format into a batch against
// base. Statements are separated by newlines or semicolons; `//` starts a
// line comment. The statements mirror the record types:
//
//	addnode                       allocate a node, referable as $0, $1, …
//	addedge <node> <label> <node>
//	deledge <node> <label> <node>
//	relabel <node> <old> <new>
//	setoid  <node> <string>
//	setroot <node>
//
// A <node> is a numeric id of the base graph or $k, the k-th node this
// script allocated. A <label> is a bare symbol, a quoted string, an int, a
// float, true/false, or &id for an OID label.
func ParseScript(src string, base *ssd.Graph) (*Batch, error) {
	b := NewBatch(base)
	var news []ssd.NodeID
	for i, line := range splitStatements(src) {
		fields, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("mutate: statement %d: %w", i+1, err)
		}
		if len(fields) == 0 {
			continue
		}
		node := func(tok string) (ssd.NodeID, error) { return parseNodeRef(tok, news) }
		stmt := strings.ToLower(fields[0])
		wrong := func(want int) error {
			return fmt.Errorf("mutate: statement %d: %s takes %d arguments, got %d", i+1, stmt, want, len(fields)-1)
		}
		switch stmt {
		case "addnode":
			if len(fields) != 1 {
				return nil, wrong(0)
			}
			news = append(news, b.AddNode())
		case "addedge", "deledge":
			if len(fields) != 4 {
				return nil, wrong(3)
			}
			from, err := node(fields[1])
			if err == nil {
				var to ssd.NodeID
				to, err = node(fields[3])
				if err == nil {
					l := parseLabel(fields[2])
					if stmt == "addedge" {
						err = b.AddEdge(from, l, to)
					} else {
						err = b.DeleteEdge(from, l, to)
					}
				}
			}
			if err != nil {
				return nil, fmt.Errorf("mutate: statement %d: %w", i+1, err)
			}
		case "relabel":
			if len(fields) != 4 {
				return nil, wrong(3)
			}
			from, err := node(fields[1])
			if err == nil {
				err = b.Relabel(from, parseLabel(fields[2]), parseLabel(fields[3]))
			}
			if err != nil {
				return nil, fmt.Errorf("mutate: statement %d: %w", i+1, err)
			}
		case "setoid":
			if len(fields) != 3 {
				return nil, wrong(2)
			}
			n, err := node(fields[1])
			if err == nil {
				err = b.SetOID(n, strings.TrimPrefix(fields[2], "\""))
			}
			if err != nil {
				return nil, fmt.Errorf("mutate: statement %d: %w", i+1, err)
			}
		case "setroot":
			if len(fields) != 2 {
				return nil, wrong(1)
			}
			n, err := node(fields[1])
			if err == nil {
				err = b.SetRoot(n)
			}
			if err != nil {
				return nil, fmt.Errorf("mutate: statement %d: %w", i+1, err)
			}
		default:
			return nil, fmt.Errorf("mutate: statement %d: unknown statement %q", i+1, stmt)
		}
	}
	return b, nil
}

func splitStatements(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for _, stmt := range strings.Split(line, ";") {
			out = append(out, strings.TrimSpace(stmt))
		}
	}
	return out
}

// tokenize splits a statement on whitespace, keeping double-quoted strings
// (with Go escape syntax) as single unquoted tokens tagged by a leading
// quote so parseLabel can tell "42" from 42.
func tokenize(stmt string) ([]string, error) {
	var out []string
	for stmt != "" {
		stmt = strings.TrimLeft(stmt, " \t\r")
		if stmt == "" {
			break
		}
		if stmt[0] == '"' {
			end := 1
			for end < len(stmt) {
				if stmt[end] == '\\' {
					end += 2
					continue
				}
				if stmt[end] == '"' {
					break
				}
				end++
			}
			if end >= len(stmt) {
				return nil, fmt.Errorf("unterminated string %s", stmt)
			}
			s, err := strconv.Unquote(stmt[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad string %s: %v", stmt[:end+1], err)
			}
			out = append(out, "\""+s)
			stmt = stmt[end+1:]
			continue
		}
		end := strings.IndexAny(stmt, " \t\r")
		if end < 0 {
			end = len(stmt)
		}
		out = append(out, stmt[:end])
		stmt = stmt[end:]
	}
	return out, nil
}

func parseNodeRef(tok string, news []ssd.NodeID) (ssd.NodeID, error) {
	if strings.HasPrefix(tok, "$") {
		k, err := strconv.Atoi(tok[1:])
		if err != nil || k < 0 || k >= len(news) {
			return ssd.InvalidNode, fmt.Errorf("bad script-node reference %q (script has %d)", tok, len(news))
		}
		return news[k], nil
	}
	n, err := strconv.Atoi(tok)
	if err != nil {
		return ssd.InvalidNode, fmt.Errorf("bad node %q", tok)
	}
	return ssd.NodeID(n), nil
}

func parseLabel(tok string) ssd.Label {
	if strings.HasPrefix(tok, "\"") {
		return ssd.Str(tok[1:])
	}
	if strings.HasPrefix(tok, "&") {
		return ssd.OID(tok[1:])
	}
	switch tok {
	case "true":
		return ssd.Bool(true)
	case "false":
		return ssd.Bool(false)
	}
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return ssd.Int(v)
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return ssd.Float(f)
	}
	return ssd.Sym(tok)
}
