package mutate

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bisim"
	"repro/internal/ssd"
	"repro/internal/storage"
)

// commitRandom applies n random batches to g in place, logging each to w.
func commitRandom(t *testing.T, w *WAL, g *ssd.Graph, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b := randBatch(g, rng, 1+rng.Intn(8))
		if _, err := ApplyInPlace(g, b); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

// replayAll opens the WAL at path and applies every batch to g.
func replayAll(t *testing.T, path string, g *ssd.Graph) *WAL {
	t.Helper()
	w, err := OpenWAL(path, Fingerprint(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(func(b *Batch) error {
		_, err := ApplyInPlace(g, b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return w
}

func canon(g *ssd.Graph) string { return ssd.FormatRoot(bisim.Canonicalize(g)) }

// TestWALReplayByteIdentity is the acceptance property: a snapshot plus the
// WAL written by one "process", replayed by a fresh one, yields a graph
// byte-identical (after bisim.Canonicalize) to the in-memory original.
func TestWALReplayByteIdentity(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.ssdg")
	logPath := filepath.Join(dir, "wal")
	rng := rand.New(rand.NewSource(31))

	// Process 1: persist a base snapshot, then commit through the WAL.
	g := fig1Fragment()
	if err := storage.WriteFile(base, g); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(logPath, Fingerprint(g))
	if err != nil {
		t.Fatal(err)
	}
	commitRandom(t, w, g, rng, 25)
	w.Close()
	want := canon(g)

	// Process 2: fresh handles, replay.
	h, err := storage.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	w2 := replayAll(t, logPath, h)
	if got := canon(h); got != want {
		t.Fatalf("replayed graph differs:\n got %s\nwant %s", got, want)
	}
	// OIDs are invisible to canonicalization; check them directly.
	for v := 0; v < g.NumNodes(); v++ {
		gid, gok := g.OIDOf(ssd.NodeID(v))
		hid, hok := h.OIDOf(ssd.NodeID(v))
		if gok != hok || gid != hid {
			t.Fatalf("node %d oid %q,%v != %q,%v", v, hid, hok, gid, gok)
		}
	}

	// Appends continue from the replayed state.
	commitRandom(t, w2, h, rng, 5)
	w2.Close()
	h2, err := storage.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, logPath, h2).Close()
	if canon(h2) != canon(h) {
		t.Fatal("second replay diverged")
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal")
	rng := rand.New(rand.NewSource(37))

	g := fig1Fragment()
	w, err := OpenWAL(logPath, Fingerprint(g))
	if err != nil {
		t.Fatal(err)
	}
	commitRandom(t, w, g, rng, 10)
	w.Close()

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, len(data)/2 + 1} {
		torn := filepath.Join(dir, "torn")
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(torn, Fingerprint(fig1Fragment()))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if w2.Batches() >= 10 {
			t.Fatalf("cut %d: torn tail still counted (%d batches)", cut, w2.Batches())
		}
		// The torn frame is truncated away; appending must produce a clean log.
		h := fig1Fragment()
		if err := w2.Replay(func(b *Batch) error { _, err := ApplyInPlace(h, b); return err }); err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		commitRandom(t, w2, h, rng, 1)
		w2.Close()
		h2 := fig1Fragment()
		replayAll(t, torn, h2).Close()
		if canon(h2) != canon(h) {
			t.Fatalf("cut %d: replay after torn-tail append diverged", cut)
		}
	}

	// Corrupt a byte inside the header frame: the log can no longer prove
	// which snapshot it extends, so Open must set it aside and start fresh.
	bad := append([]byte(nil), data...)
	bad[6] ^= 0xff
	corrupt := filepath.Join(dir, "corrupt")
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(corrupt, Fingerprint(fig1Fragment()))
	if err != nil {
		t.Fatal(err)
	}
	if w3.Batches() != 0 {
		t.Fatalf("corrupt header: %d batches", w3.Batches())
	}
	w3.Close()
	if _, err := os.Stat(corrupt + ".stale"); err != nil {
		t.Fatalf("corrupt log not set aside: %v", err)
	}
}

// TestWALStaleLogSetAside pins the snapshot binding: a log recorded against
// one snapshot must not replay onto a different one — the exact state a
// crash between Compact's snapshot rename and log reset leaves behind.
func TestWALStaleLogSetAside(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal")
	rng := rand.New(rand.NewSource(43))

	g := fig1Fragment()
	w, err := OpenWAL(logPath, Fingerprint(g))
	if err != nil {
		t.Fatal(err)
	}
	commitRandom(t, w, g, rng, 5)
	w.Close()

	// Open against the post-mutation snapshot (as if Compact renamed the new
	// snapshot in but crashed before resetting the log).
	w2, err := OpenWAL(logPath, Fingerprint(g))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Batches() != 0 {
		t.Fatalf("stale log replayed: %d batches", w2.Batches())
	}
	if _, err := os.Stat(logPath + ".stale"); err != nil {
		t.Fatalf("stale log not set aside: %v", err)
	}
	// The fresh log is usable against the new snapshot.
	commitRandom(t, w2, g, rng, 2)
	h := fig1Fragment()
	// Rebuild the new snapshot's state: original base replayed through the
	// set-aside log, then the fresh log.
	replayAll(t, logPath+".stale", h).Close()
	w3 := replayAll(t, logPath, h)
	w3.Close()
	if canon(h) != canon(g) {
		t.Fatal("recovered state diverged")
	}
}

func TestWALCompact(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.ssdg")
	logPath := filepath.Join(dir, "wal")
	rng := rand.New(rand.NewSource(41))

	g := fig1Fragment()
	if err := storage.WriteFile(base, g); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(logPath, Fingerprint(g))
	if err != nil {
		t.Fatal(err)
	}
	commitRandom(t, w, g, rng, 12)
	if err := w.Compact(base, g); err != nil {
		t.Fatal(err)
	}
	if w.Batches() != 0 {
		t.Fatalf("batches after compact = %d", w.Batches())
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() > 32 {
		t.Fatalf("log not reset to just a header: %v, %v", fi, err)
	}
	// Snapshot + empty log ≡ old snapshot + full log.
	commitRandom(t, w, g, rng, 3)
	w.Close()
	h, err := storage.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, logPath, h).Close()
	if canon(h) != canon(g) {
		t.Fatal("compacted state diverged")
	}
}
