package mutate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/ssd"
	"repro/internal/storage"
)

// WAL is an append-only write-ahead log of mutation batches, bound to one
// base snapshot. The first frame is a header naming the snapshot the log
// extends (magic, format version, crc32 of the snapshot's storage
// encoding); every further frame is one batch:
//
//	payloadLen uvarint | crc32(payload) u32 LE | payload
//
// Open scans existing frames and truncates a torn tail (a partial final
// frame from a crashed writer), so replay is exactly the committed prefix.
// A log whose header names a different snapshot is set aside as
// <path>.stale and a fresh log is started: its batches were built against
// a base that no longer exists, so replaying them would corrupt rather
// than recover — this is exactly the state a crash between Compact's
// snapshot rename and log truncation leaves behind, and setting the log
// aside completes that interrupted compaction. Append syncs after every
// frame: once Append returns, the batch survives a crash.
type WAL struct {
	path     string
	f        *os.File
	end      int64    // offset past the last valid frame
	pending  [][]byte // batch payloads read at Open, consumed by Replay
	batches  int      // batch frames appended + replayable
	replayed bool
}

const (
	walMagic   = "SSDW"
	walVersion = 1
)

// Fingerprint identifies a snapshot for WAL binding: the checksum of its
// storage encoding.
func Fingerprint(g *ssd.Graph) uint32 { return crc32.ChecksumIEEE(storage.Encode(g)) }

func headerPayload(fp uint32) []byte {
	buf := append([]byte(walMagic), walVersion)
	return binary.LittleEndian.AppendUint32(buf, fp)
}

// OpenWAL opens (creating if necessary) the log at path, binding it to the
// base snapshot with the given fingerprint (Fingerprint of the graph the
// log's batches extend). Call Replay to apply the logged batches, then
// Append to extend the log.
func OpenWAL(path string, fp uint32) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{path: path, f: f}
	frames, end := scanFrames(data)
	if len(data) > 0 && (len(frames) == 0 || string(frames[0]) != string(headerPayload(fp))) {
		// Unreadable header, or a log bound to a different snapshot. Set the
		// file aside rather than truncate — its batches may matter to someone
		// (see the type comment) — and start fresh.
		f.Close()
		if err := os.Rename(path, path+".stale"); err != nil {
			return nil, err
		}
		if f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644); err != nil {
			return nil, err
		}
		w.f = f
		frames, end = nil, 0
		data = nil
	}
	if len(frames) == 0 {
		// Fresh (or reset) log: write the binding header.
		if err := w.writeFrame(headerPayload(fp)); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	w.pending = frames[1:]
	w.batches = len(w.pending)
	w.end = end
	if int64(len(data)) > w.end {
		// Drop the torn tail now so appends start at a clean boundary.
		if err := f.Truncate(w.end); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(w.end, 0); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// scanFrames parses the valid frame prefix of data, returning the frame
// payloads and the offset just past the last valid frame.
func scanFrames(data []byte) ([][]byte, int64) {
	var frames [][]byte
	var end int64
	pos := 0
	for pos < len(data) {
		n, used := binary.Uvarint(data[pos:])
		// Compare in uint64: a corrupt length prefix can exceed int range,
		// and converting first would wrap negative and pass the check.
		if used <= 0 || n > uint64(len(data)) || pos+used+4+int(n) > len(data) {
			break // torn or corrupt tail
		}
		sumAt := pos + used
		payload := data[sumAt+4 : sumAt+4+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[sumAt:]) {
			break // corrupt tail
		}
		pos = sumAt + 4 + int(n)
		frames = append(frames, payload)
		end = int64(pos)
	}
	return frames, end
}

// Batches returns the number of valid batches in the log (replayable plus
// appended).
func (w *WAL) Batches() int { return w.batches }

// Replay decodes the batches found at Open, in order, and hands each to
// apply. It may be called once; the frame payloads are released afterwards.
func (w *WAL) Replay(apply func(*Batch) error) error {
	if w.replayed {
		return fmt.Errorf("mutate: WAL %s already replayed", w.path)
	}
	w.replayed = true
	for i, payload := range w.pending {
		b, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("mutate: WAL %s batch %d: %w", w.path, i, err)
		}
		if err := apply(b); err != nil {
			return fmt.Errorf("mutate: WAL %s batch %d: %w", w.path, i, err)
		}
	}
	w.pending = nil
	return nil
}

// Append writes one batch as a new frame and syncs the file.
func (w *WAL) Append(b *Batch) error {
	if err := w.writeFrame(EncodeBatch(b)); err != nil {
		return err
	}
	w.batches++
	return nil
}

func (w *WAL) writeFrame(payload []byte) error {
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.end += int64(len(frame))
	return nil
}

// Compact persists g — the graph every logged batch has been applied to —
// as the new snapshot at snapshotPath (storage's binary format) and resets
// the log to an empty one bound to the new snapshot: snapshot + empty log
// is equivalent to the old snapshot + the full log. The snapshot is
// written to a temporary file, synced, and atomically renamed over the old
// one, so a crash at any point leaves a replayable state: before the
// rename, the old snapshot plus the full log; after it, the new snapshot
// plus a log that OpenWAL will recognize (by its header fingerprint) as
// belonging to the old snapshot and set aside.
func (w *WAL) Compact(snapshotPath string, g *ssd.Graph) error {
	tmp := snapshotPath + ".compact"
	if err := storage.WriteFile(tmp, g); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapshotPath); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(snapshotPath); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.end = 0
	w.batches = 0
	w.pending = nil
	return w.writeFrame(headerPayload(Fingerprint(g)))
}

// Close releases the log's file handle.
func (w *WAL) Close() error { return w.f.Close() }

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is advisory on some platforms; ignore failure the way
	// os.File.Sync callers conventionally do for directories.
	d.Sync()
	return nil
}
