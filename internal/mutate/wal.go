package mutate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/ssd"
	"repro/internal/storage"
)

// WAL is an append-only write-ahead log of mutation batches, bound to one
// base snapshot. The first frame is a header naming the snapshot the log
// extends (magic, format version, crc32 of the snapshot's storage
// encoding); every further frame is one batch:
//
//	payloadLen uvarint | crc32(payload) u32 LE | payload
//
// Open scans existing frames and truncates a torn tail (a partial final
// frame from a crashed writer), so replay is exactly the committed prefix.
// A log whose header names a different snapshot is set aside as
// <path>.stale and a fresh log is started: its batches were built against
// a base that no longer exists, so replaying them would corrupt rather
// than recover — this is exactly the state a crash between Compact's
// snapshot rename and log truncation leaves behind, and setting the log
// aside completes that interrupted compaction. Append syncs after every
// frame: once Append returns, the batch survives a crash.
type WAL struct {
	path string
	f    *os.File
	fp   uint32 // fingerprint the header currently binds the log to
	// end is the offset past the last valid frame. Only the (caller-
	// serialized) write path moves it, but it is atomic so Size can be
	// read lock-free by monitoring endpoints while a truncation holds the
	// writer lock.
	end      atomic.Int64
	pending  [][]byte // batch payloads read at Open, consumed by Replay
	batches  int      // batch frames appended + replayable
	replayed bool
	// broken latches the error of a truncation or compaction that failed
	// after its point of no return (the on-disk log no longer matches this
	// handle's state). Every subsequent write refuses with it: acking a
	// commit that the on-disk log does not hold would be silent data loss.
	broken error
}

const (
	walMagic   = "SSDW"
	walVersion = 1
)

// Fingerprint identifies a snapshot for WAL binding: the checksum of its
// storage encoding.
func Fingerprint(g *ssd.Graph) uint32 { return crc32.ChecksumIEEE(storage.Encode(g)) }

func headerPayload(fp uint32) []byte {
	buf := append([]byte(walMagic), walVersion)
	return binary.LittleEndian.AppendUint32(buf, fp)
}

// OpenWAL opens (creating if necessary) the log at path, binding it to the
// base snapshot with the given fingerprint (Fingerprint of the graph the
// log's batches extend). Call Replay to apply the logged batches, then
// Append to extend the log.
func OpenWAL(path string, fp uint32) (*WAL, error) {
	w, _, err := openWAL(path, []uint32{fp}, true)
	return w, err
}

// OpenWALMatching opens the log at path accepting any of the given binding
// fingerprints, and reports which one the header carried. Unlike OpenWAL it
// never sets a mismatched log aside: in a durable directory (core.OpenPath)
// a log bound to no known snapshot means lost commits, so the mismatch is
// surfaced as an error instead of silently starting fresh. A missing or
// empty log is created bound to fps[0].
func OpenWALMatching(path string, fps ...uint32) (*WAL, uint32, error) {
	return openWAL(path, fps, false)
}

func openWAL(path string, fps []uint32, sideline bool) (*WAL, uint32, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	w := &WAL{path: path, f: f}
	frames, end := scanFrames(data)
	matched, headerOK := fps[0], false
	if len(frames) > 0 {
		for _, fp := range fps {
			if string(frames[0]) == string(headerPayload(fp)) {
				matched, headerOK = fp, true
				break
			}
		}
	}
	if len(data) > 0 && !headerOK {
		if !sideline {
			f.Close()
			return nil, 0, fmt.Errorf("mutate: WAL %s is bound to an unknown snapshot", path)
		}
		// Unreadable header, or a log bound to a different snapshot. Set the
		// file aside rather than truncate — its batches may matter to someone
		// (see the type comment) — and start fresh.
		f.Close()
		if err := os.Rename(path, path+".stale"); err != nil {
			return nil, 0, err
		}
		if f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644); err != nil {
			return nil, 0, err
		}
		w.f = f
		frames, end = nil, 0
		data = nil
	}
	w.fp = matched
	if len(frames) == 0 {
		// Fresh (or reset) log: write the binding header.
		if err := w.writeFrame(headerPayload(matched)); err != nil {
			f.Close()
			return nil, 0, err
		}
		return w, matched, nil
	}
	w.pending = frames[1:]
	w.batches = len(w.pending)
	w.end.Store(end)
	obsWALBytes.Set(end)
	if int64(len(data)) > end {
		// Drop the torn tail now so appends start at a clean boundary.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, 0, err
	}
	return w, matched, nil
}

// scanFrames parses the valid frame prefix of data, returning the frame
// payloads and the offset just past the last valid frame.
func scanFrames(data []byte) ([][]byte, int64) {
	var frames [][]byte
	var end int64
	pos := 0
	for pos < len(data) {
		n, used := binary.Uvarint(data[pos:])
		// Compare in uint64: a corrupt length prefix can exceed int range,
		// and converting first would wrap negative and pass the check.
		if used <= 0 || n > uint64(len(data)) || pos+used+4+int(n) > len(data) {
			break // torn or corrupt tail
		}
		sumAt := pos + used
		payload := data[sumAt+4 : sumAt+4+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[sumAt:]) {
			break // corrupt tail
		}
		pos = sumAt + 4 + int(n)
		frames = append(frames, payload)
		end = int64(pos)
	}
	return frames, end
}

// Batches returns the number of valid batches in the log (replayable plus
// appended).
func (w *WAL) Batches() int { return w.batches }

// Size returns the log size in bytes up to the last valid frame — the
// figure checkpoint size-threshold triggers and monitoring endpoints
// watch. Safe to call without the writer lock.
func (w *WAL) Size() int64 { return w.end.Load() }

// BaseFingerprint returns the snapshot fingerprint the log header currently
// binds the log to.
func (w *WAL) BaseFingerprint() uint32 { return w.fp }

// Replay decodes the batches found at Open, in order, and hands each to
// apply. It may be called once; the frame payloads are released afterwards.
func (w *WAL) Replay(apply func(*Batch) error) error {
	if w.replayed {
		return fmt.Errorf("mutate: WAL %s already replayed", w.path)
	}
	w.replayed = true
	for i, payload := range w.pending {
		b, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("mutate: WAL %s batch %d: %w", w.path, i, err)
		}
		if err := apply(b); err != nil {
			return fmt.Errorf("mutate: WAL %s batch %d: %w", w.path, i, err)
		}
	}
	w.pending = nil
	return nil
}

// Append writes one batch as a new frame and syncs the file. It must run
// under the writer lock that serializes commits: frames are appended to a
// shared file offset, and two interleaved Appends would tear the log.
//
//ssd:requires writeMu
func (w *WAL) Append(b *Batch) error {
	if err := w.writeFrame(EncodeBatch(b)); err != nil {
		return err
	}
	w.batches++
	return nil
}

func (w *WAL) writeFrame(payload []byte) error {
	if w.broken != nil {
		return w.broken
	}
	start := time.Now()
	frame := appendFrame(nil, payload)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	obsWALFsyncDur.Observe(time.Since(syncStart))
	obsWALBytes.Set(w.end.Add(int64(len(frame))))
	obsWALAppendDur.Observe(time.Since(start))
	obsWALAppends.Inc()
	return nil
}

// appendFrame appends one length+CRC framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// TruncatePrefix removes the log's first k batch frames — those a durable
// snapshot has folded in — and rebinds the header to newFP, the
// fingerprint of that snapshot. It is the checkpoint side of log
// truncation: after it returns, the log holds exactly the batches past the
// checkpoint, bound to the checkpointed state. The rewrite goes through a
// temp file and an atomic rename, so a crash leaves either the old log
// (replayable against the previous binding) or the new one — never a torn
// log.
//
// The caller must hold the writer lock that serializes Append: a commit
// interleaving with the rewrite would be lost. internal/core enforces this
// by truncating under the same lock its commits take.
//
//ssd:requires writeMu
func (w *WAL) TruncatePrefix(k int, newFP uint32) error {
	if w.broken != nil {
		return w.broken
	}
	if k < 0 || k > w.batches {
		return fmt.Errorf("mutate: truncate %d of %d batches", k, w.batches)
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		return err
	}
	frames, _ := scanFrames(data)
	if len(frames) != w.batches+1 {
		return fmt.Errorf("mutate: WAL %s has %d frames on disk, expected %d",
			w.path, len(frames), w.batches+1)
	}
	buf := appendFrame(nil, headerPayload(newFP))
	for _, p := range frames[1+k:] {
		buf = appendFrame(buf, p)
	}
	// Write the replacement through a handle we keep: after the rename the
	// same handle refers to the live log, so there is no reopen that could
	// fail and leave the WAL appending to an unlinked inode.
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Point of no return: the truncated log is in place. A failure past
	// here must poison the handle — acking commits the on-disk log will
	// not replay would be silent data loss.
	if err := syncDir(w.path); err != nil {
		w.broken = fmt.Errorf("mutate: WAL %s truncated but directory sync failed: %w", w.path, err)
		f.Close()
		return w.broken
	}
	w.f.Close()
	w.f = f
	w.end.Store(int64(len(buf)))
	obsWALBytes.Set(int64(len(buf)))
	w.batches -= k
	w.fp = newFP
	if !w.replayed && len(w.pending) >= k {
		// The open-time replay list shrinks with the log: the dropped prefix
		// is already part of the snapshot the caller recovered from.
		w.pending = w.pending[k:]
	}
	return nil
}

// Compact persists g — the graph every logged batch has been applied to —
// as the new snapshot at snapshotPath (storage's binary format) and resets
// the log to an empty one bound to the new snapshot: snapshot + empty log
// is equivalent to the old snapshot + the full log. The snapshot is
// written to a temporary file, synced, and atomically renamed over the old
// one, so a crash at any point leaves a replayable state: before the
// rename, the old snapshot plus the full log; after it, the new snapshot
// plus a log that OpenWAL will recognize (by its header fingerprint) as
// belonging to the old snapshot and set aside.
//
// Like TruncatePrefix, Compact must run under the writer lock that
// serializes Append: a commit landing between the snapshot rename and the
// log reset would be truncated away and lost.
//
//ssd:requires writeMu
func (w *WAL) Compact(snapshotPath string, g *ssd.Graph) error {
	if w.broken != nil {
		return w.broken
	}
	tmp := snapshotPath + ".compact"
	if err := storage.WriteFile(tmp, g); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapshotPath); err != nil {
		os.Remove(tmp)
		return err
	}
	// Point of no return: the new snapshot is in place, so the log on disk
	// now describes a superseded base. A failure before the reset header is
	// durable must poison the handle — an append to the stale-bound log
	// would be set aside (and lost) at the next open.
	poison := func(err error) error {
		w.broken = fmt.Errorf("mutate: WAL %s: compaction failed after snapshot rename: %w", w.path, err)
		return w.broken
	}
	if err := syncDir(snapshotPath); err != nil {
		return poison(err)
	}
	if err := w.f.Truncate(0); err != nil {
		return poison(err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return poison(err)
	}
	w.end.Store(0)
	obsWALBytes.Set(0)
	w.batches = 0
	w.pending = nil
	w.fp = Fingerprint(g)
	if err := w.writeFrame(headerPayload(w.fp)); err != nil {
		return poison(err)
	}
	return nil
}

// Close releases the log's file handle.
func (w *WAL) Close() error { return w.f.Close() }

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is advisory on some platforms; ignore failure the way
	// os.File.Sync callers conventionally do for directories.
	d.Sync()
	return nil
}
