package bisim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ssd"
)

func parse(t *testing.T, src string) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return g
}

func TestEqualBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{`{}`, `{}`, true},
		{`{a: 1}`, `{a: 1}`, true},
		{`{a: 1}`, `{a: 2}`, false},
		{`{a: 1, b: 2}`, `{b: 2, a: 1}`, true}, // set semantics: order irrelevant
		{`{a: 1, a: 1}`, `{a: 1}`, true},       // duplicates collapse
		{`{a: {b: 1}}`, `{a: {b: 1}}`, true},
		{`{a: {b: 1}}`, `{a: {c: 1}}`, false},
		{`{a: 1}`, `{a: 1.0}`, true}, // numeric overloading
		{`{a: 1}`, `{a: "1"}`, false},
		{`{a}`, `{b}`, false},
		{`{a}`, `{}`, false},
	}
	for _, c := range cases {
		got := Equal(parse(t, c.a), parse(t, c.b))
		if got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualCycles(t *testing.T) {
	// An infinite unary a-chain equals a self-loop: classic bisimulation.
	loop := parse(t, `#r{a: #r}`)
	twoLoop := parse(t, `#r{a: {a: #r}}`)
	if !Equal(loop, twoLoop) {
		t.Error("1-cycle and 2-cycle of the same label should be bisimilar")
	}
	loopB := parse(t, `#r{b: #r}`)
	if Equal(loop, loopB) {
		t.Error("cycles over different labels must differ")
	}
	finite := parse(t, `{a: {a: {a: {}}}}`)
	if Equal(loop, finite) {
		t.Error("finite chain is not bisimilar to a cycle")
	}
}

func TestEqualIgnoresOIDs(t *testing.T) {
	a := parse(t, `{x: &o1{v: 1}}`)
	b := parse(t, `{x: &o2{v: 1}}`)
	if !Equal(a, b) {
		t.Error("value equality must ignore object identity")
	}
}

func TestBisimilarWithinOneGraph(t *testing.T) {
	g := parse(t, `{a: #x{v: 1}, b: {v: 1}, c: {v: 2}}`)
	ax := g.LookupFirst(g.Root(), ssd.Sym("a"))
	bx := g.LookupFirst(g.Root(), ssd.Sym("b"))
	cx := g.LookupFirst(g.Root(), ssd.Sym("c"))
	if !Bisimilar(g, ax, g, bx) {
		t.Error("a and b subtrees should be bisimilar")
	}
	if Bisimilar(g, ax, g, cx) {
		t.Error("a and c subtrees should differ")
	}
}

func TestClassesAgreeNaiveIncremental(t *testing.T) {
	srcs := []string{
		`{}`,
		`{a: 1, b: {c: {d: 1}}, e: {c: {d: 1}}}`,
		`#r{a: #r, b: {a: #r}}`,
		`{x: {y: {z: "deep"}}, x2: {y: {z: "deep"}}, x3: {y: {z: "other"}}}`,
	}
	for _, src := range srcs {
		g := parse(t, src)
		a := Classes(g.Clone())
		b := ClassesNaive(g.Clone())
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", src)
		}
		// Same partition (both normalized by first appearance).
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: node %d: incremental class %d, naive %d", src, i, a[i], b[i])
			}
		}
	}
}

func TestClassesRandomAgree(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 60)
		a := Classes(g.Clone())
		b := ClassesNaive(g.Clone())
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomGraph(seed int64, nodes, edges int) *ssd.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	for i := 1; i < nodes; i++ {
		ids = append(ids, g.AddNode())
	}
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Int(1), ssd.Str("s")}
	for i := 0; i < edges; i++ {
		g.AddEdge(ids[rng.Intn(len(ids))], labels[rng.Intn(len(labels))], ids[rng.Intn(len(ids))])
	}
	return g
}

func TestMinimize(t *testing.T) {
	g := parse(t, `{a: {v: 1}, b: {v: 1}, c: {v: 1}}`)
	// v-subtrees are all bisimilar but a, b, c edges differ: quotient keeps
	// 3 root edges into one shared class.
	m := Minimize(g)
	if got := m.NumNodes(); got != 4 { // root, shared {v:...}, shared leaf of v→1, shared {} leaf
		t.Fatalf("minimized nodes = %d, want 4 (got %s)", got, ssd.FormatRoot(m))
	}
	if !Equal(g, m) {
		t.Error("Minimize changed the value")
	}
}

func TestMinimizeCycle(t *testing.T) {
	g := parse(t, `#r{a: {a: {a: #r}}}`)
	m := Minimize(g)
	if m.NumNodes() != 1 || m.NumEdges() != 1 {
		t.Fatalf("cycle should minimize to a self-loop, got %d nodes %d edges", m.NumNodes(), m.NumEdges())
	}
	if !Equal(g, m) {
		t.Error("Minimize changed the value")
	}
}

func TestMinimizeIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 40)
		m := Minimize(g)
		m2 := Minimize(m)
		return m.NumNodes() == m2.NumNodes() && m.NumEdges() == m2.NumEdges() && Equal(m, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNumClasses(t *testing.T) {
	g := parse(t, `{a: 1, b: 2}`)
	cls := Classes(g)
	k := NumClasses(cls)
	if k < 2 {
		t.Fatalf("NumClasses = %d", k)
	}
}

func TestSimulationExact(t *testing.T) {
	data := parse(t, `{Movie: {Title: "Casablanca"}}`)
	pattern := parse(t, `{Movie: {Title: "Casablanca", Year: 1942}}`)
	// data has no Year edge, so every data edge is covered by pattern: data
	// is simulated by pattern (simulation allows the schema to be looser).
	if !Simulates(data, data.Root(), pattern, pattern.Root(), ExactMatch) {
		t.Error("data should be simulated by superset pattern")
	}
	// The reverse fails: pattern's Year edge has no counterpart in data.
	if Simulates(pattern, pattern.Root(), data, data.Root(), ExactMatch) {
		t.Error("pattern with extra edge should not be simulated by data")
	}
}

func TestSimulationCycles(t *testing.T) {
	loop := parse(t, `#r{a: #r}`)
	chain := parse(t, `{a: {a: {}}}`)
	// Finite chain is simulated by the loop...
	if !Simulates(chain, chain.Root(), loop, loop.Root(), ExactMatch) {
		t.Error("finite chain should be simulated by a-loop")
	}
	// ...but the loop is not simulated by the finite chain.
	if Simulates(loop, loop.Root(), chain, chain.Root(), ExactMatch) {
		t.Error("infinite behaviour cannot be simulated by finite chain")
	}
}

func TestSimulationCustomMatch(t *testing.T) {
	data := parse(t, `{Movie: 1, Actor: 2}`)
	// Two wildcard levels: one for the symbol edges, one for the value
	// edges their literal children desugar to.
	schema := parse(t, `{any: {any: {}}}`)
	wildcard := func(d, p ssd.Label) bool {
		s, _ := p.Symbol()
		return s == "any"
	}
	if !Simulates(data, data.Root(), schema, schema.Root(), wildcard) {
		t.Error("wildcard schema should simulate the two-level data")
	}
}

func TestRelationCount(t *testing.T) {
	a := parse(t, `{}`)
	b := parse(t, `{}`)
	r := Simulation(a, b, ExactMatch)
	// Both graphs: root plus zero other nodes → every pair trivially holds
	// for leaves.
	if r.Count() == 0 {
		t.Error("leaf-leaf pair should be in the simulation")
	}
	if !r.Has(a.Root(), b.Root()) {
		t.Error("empty tree should simulate empty tree")
	}
}

func TestBisimilarImpliesMutualSimulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		g1 := randomGraph(seed, 12, 20)
		g2 := randomGraph(seed+1000, 12, 20)
		if Equal(g1, g2) {
			return Simulates(g1, g1.Root(), g2, g2.Root(), ExactMatch) &&
				Simulates(g2, g2.Root(), g1, g1.Root(), ExactMatch)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSelfBisimilarProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 30)
		return Equal(g, g.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalizeByteIdentical(t *testing.T) {
	// The same value built in different orders (and with different sharing)
	// must canonicalize to byte-identical text.
	a := parse(t, `{Movie: {Title: {"A"}}, Movie: {Title: {"B"}}}`)
	b := parse(t, `{Movie: {Title: {"B"}}, Movie: {Title: {"A"}}}`)
	ca, cb := Canonicalize(a), Canonicalize(b)
	fa, fb := ssd.FormatRoot(ca), ssd.FormatRoot(cb)
	if fa != fb {
		t.Errorf("canonical forms differ:\n a: %s\n b: %s", fa, fb)
	}
	if !Equal(ca, a) {
		t.Error("canonicalization changed the value")
	}
}

func TestCanonicalizeCycle(t *testing.T) {
	a := parse(t, `#r{next: #r, tag: "loop", alt: {x: 1}}`)
	b := parse(t, `#s{alt: {x: 1}, tag: "loop", next: #s}`)
	if got, want := ssd.FormatRoot(Canonicalize(a)), ssd.FormatRoot(Canonicalize(b)); got != want {
		t.Errorf("cyclic canonical forms differ:\n a: %s\n b: %s", got, want)
	}
}

func TestCanonicalizeRandomAgree(t *testing.T) {
	// Shuffling edge insertion order never changes the canonical text.
	for trial := 0; trial < 30; trial++ {
		g1 := randomGraph(int64(trial), 12, 20)
		g2 := g1.Clone()
		// Rebuild g2 with permuted node ids: graft into a fresh graph.
		h := ssd.New()
		h.SetRoot(h.Graft(g2, g2.Root()))
		if ssd.FormatRoot(Canonicalize(g1)) != ssd.FormatRoot(Canonicalize(h)) {
			t.Fatalf("trial %d: canonical forms differ", trial)
		}
	}
}
