package bisim

import "repro/internal/ssd"

// LabelMatch decides whether a data label satisfies a pattern label. Graph
// schemas (§5 of the paper, [8]) label their edges with predicates; a
// LabelMatch is the predicate evaluation hook, so this package stays
// independent of the schema package's predicate syntax.
type LabelMatch func(data, pattern ssd.Label) bool

// ExactMatch matches labels by Label.Equal (numeric overloading included).
func ExactMatch(data, pattern ssd.Label) bool { return data.Equal(pattern) }

// Relation is a boolean matrix over VA × VB, the result of Simulation.
type Relation struct {
	nA, nB int
	bits   []uint64
}

// Has reports whether a is simulated by b.
func (r *Relation) Has(a, b ssd.NodeID) bool {
	if int(a) >= r.nA || int(b) >= r.nB {
		return false
	}
	i := int(a)*r.nB + int(b)
	return r.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

func (r *Relation) set(a, b int)   { i := a*r.nB + b; r.bits[i>>6] |= 1 << (uint(i) & 63) }
func (r *Relation) clear(a, b int) { i := a*r.nB + b; r.bits[i>>6] &^= 1 << (uint(i) & 63) }

// Count returns the number of pairs in the relation.
func (r *Relation) Count() int {
	n := 0
	for _, w := range r.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Simulation computes the greatest simulation from gA into gB under match:
// the largest relation R such that a R b implies every edge (l, a′) out of a
// has a matching edge (l′, b′) out of b with match(l, l′) and a′ R b′.
//
// It is a fixpoint computation: start from the full relation and strike out
// violating pairs until stable. With a worklist over predecessor pairs the
// cost is O(|VA|·|VB| + |EA|·|EB|) in the worst case, which is fine at the
// data-versus-schema sizes §5 contemplates (schemas are small).
func Simulation(gA, gB *ssd.Graph, match LabelMatch) *Relation {
	nA, nB := gA.NumNodes(), gB.NumNodes()
	r := &Relation{nA: nA, nB: nB, bits: make([]uint64, (nA*nB+63)/64)}
	for i := range r.bits {
		r.bits[i] = ^uint64(0)
	}
	// Clear the padding bits beyond nA*nB so Count is exact.
	if extra := nA * nB % 64; extra != 0 && len(r.bits) > 0 {
		r.bits[len(r.bits)-1] = (1 << uint(extra)) - 1
	}

	revA := gA.Reverse()
	revB := gB.Reverse()

	// ok(a,b) rechecks the simulation condition for one pair.
	ok := func(a, b int) bool {
		for _, ea := range gA.Out(ssd.NodeID(a)) {
			found := false
			for _, eb := range gB.Out(ssd.NodeID(b)) {
				if match(ea.Label, eb.Label) && r.Has(ea.To, eb.To) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}

	type pair struct{ a, b int }
	var work []pair
	queued := make(map[pair]bool)
	for a := 0; a < nA; a++ {
		for b := 0; b < nB; b++ {
			work = append(work, pair{a, b})
		}
	}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		delete(queued, p)
		if !r.Has(ssd.NodeID(p.a), ssd.NodeID(p.b)) {
			continue
		}
		if ok(p.a, p.b) {
			continue
		}
		r.clear(p.a, p.b)
		// Removing (a,b) can invalidate any (pa, pb) with edges pa→a, pb→b.
		for _, ea := range revA[p.a] {
			for _, eb := range revB[p.b] {
				q := pair{int(ea.To), int(eb.To)}
				if !queued[q] && r.Has(ssd.NodeID(q.a), ssd.NodeID(q.b)) {
					queued[q] = true
					work = append(work, q)
				}
			}
		}
	}
	return r
}

// Simulates reports whether the value rooted at (gA, a) is simulated by the
// value rooted at (gB, b). For schema conformance, gA is the database, gB is
// the schema, and match evaluates the schema's edge predicates.
func Simulates(gA *ssd.Graph, a ssd.NodeID, gB *ssd.Graph, b ssd.NodeID, match LabelMatch) bool {
	return Simulation(gA, gB, match).Has(a, b)
}
