// Package bisim implements bisimulation and simulation on edge-labeled
// graphs. Bisimulation is the value equality of the paper's §2: two rooted
// graphs denote the same semistructured value iff their roots are bisimilar
// (object identities are ignored — this is the UnQL semantics, in contrast
// to OEM's oid equality). Simulation is the conformance relation §5 uses to
// relate data to graph schemas [8].
package bisim

import (
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/ssd"
)

// Classes computes the bisimulation equivalence classes of all nodes of g.
// It uses signature refinement with a dirty-set worklist: after each round
// only the predecessors of nodes that changed class are re-signed, so
// refinement cost localizes on graphs where most of the structure is stable.
// The result maps every NodeID to a class number in [0, k); equal numbers
// mean bisimilar nodes.
func Classes(g *ssd.Graph) []int {
	return refine(g, true)
}

// ClassesNaive is the textbook refinement that re-signs every node every
// round — O(rounds × m) with rounds up to n. It is the baseline for
// experiment E11; results are identical to Classes.
func ClassesNaive(g *ssd.Graph) []int {
	return refine(g, false)
}

type sigPair struct {
	label ssd.Label
	class int
}

// canonical maps numerically equal int/float labels to one representative so
// bisimulation agrees with Label.Equal's numeric overloading.
func canonical(l ssd.Label) ssd.Label {
	if f, ok := l.FloatVal(); ok {
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			i := int64(f)
			if float64(i) == f {
				return ssd.Int(i)
			}
		}
	}
	return l
}

// signature serializes the successor (label, class) set of v under the
// current partition into buf. Reuses buf and pairs to avoid allocation.
func signature(g *ssd.Graph, v ssd.NodeID, cls []int, buf []byte, pairs []sigPair) ([]byte, []sigPair) {
	pairs = pairs[:0]
	for _, e := range g.Out(v) {
		pairs = append(pairs, sigPair{canonical(e.Label), cls[e.To]})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if c := pairs[i].label.Compare(pairs[j].label); c != 0 {
			return c < 0
		}
		return pairs[i].class < pairs[j].class
	})
	buf = buf[:0]
	prev := sigPair{class: -1}
	for _, p := range pairs {
		if p == prev {
			continue // set semantics: duplicate edges are one edge
		}
		prev = p
		buf = appendLabel(buf, p.label)
		buf = binary.AppendUvarint(buf, uint64(p.class))
	}
	return buf, pairs
}

func refine(g *ssd.Graph, incremental bool) []int {
	n := g.NumNodes()
	cls := make([]int, n)
	if n == 0 {
		return cls
	}
	var rev [][]ssd.Edge
	if incremental {
		rev = g.Reverse()
	}

	dirty := make([]int, 0, n)
	inDirty := make([]bool, n)
	for v := 0; v < n; v++ {
		dirty = append(dirty, v)
		inDirty[v] = true
	}
	nextClass := 1
	var buf []byte
	var pairs []sigPair

	for len(dirty) > 0 {
		// Group this round's dirty nodes by their current class, and find a
		// clean representative plus total membership for each touched class.
		byClass := make(map[int][]int)
		for _, v := range dirty {
			byClass[cls[v]] = append(byClass[cls[v]], v)
		}
		cleanRep := make(map[int]int)
		classSize := make(map[int]int, len(byClass))
		for v := 0; v < n; v++ {
			c := cls[v]
			if _, touched := byClass[c]; !touched {
				continue
			}
			classSize[c]++
			if !inDirty[v] {
				if _, have := cleanRep[c]; !have {
					cleanRep[c] = v
				}
			}
		}
		for _, v := range dirty {
			inDirty[v] = false
		}

		var changed []int
		for c, members := range byClass {
			// Partition the dirty members of class c by signature. The
			// bucket matching the class's established signature keeps c;
			// every other bucket becomes a fresh class. Invariant: all clean
			// members of a class share one signature, so any clean node
			// serves as the reference.
			table := make(map[string][]int, len(members))
			for _, v := range members {
				buf, pairs = signature(g, ssd.NodeID(v), cls, buf, pairs)
				table[string(buf)] = append(table[string(buf)], v)
			}
			var keepKey string
			if rep, ok := cleanRep[c]; ok && classSize[c] > len(members) {
				buf, pairs = signature(g, ssd.NodeID(rep), cls, buf, pairs)
				keepKey = string(buf)
			} else {
				// Whole class dirty: the largest bucket keeps the number
				// (any choice is sound; largest minimizes churn). Tie-break
				// by key for determinism.
				best := -1
				keys := sortedKeys(table)
				for _, k := range keys {
					if len(table[k]) > best {
						best, keepKey = len(table[k]), k
					}
				}
			}
			for _, k := range sortedKeys(table) {
				if k == keepKey {
					continue
				}
				id := nextClass
				nextClass++
				for _, v := range table[k] {
					cls[v] = id
					changed = append(changed, v)
				}
			}
		}

		// Nodes whose successors changed class must be re-signed next round.
		dirty = dirty[:0]
		if incremental {
			for _, v := range changed {
				for _, e := range rev[v] {
					p := int(e.To)
					if !inDirty[p] {
						inDirty[p] = true
						dirty = append(dirty, p)
					}
				}
			}
		} else if len(changed) > 0 {
			for v := 0; v < n; v++ {
				dirty = append(dirty, v)
				inDirty[v] = true
			}
		}
	}
	return normalize(cls)
}

func sortedKeys(m map[string][]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// normalize renumbers classes to 0..k-1 in order of first appearance, so
// outputs are comparable across algorithms.
func normalize(cls []int) []int {
	seen := make(map[int]int)
	for i, c := range cls {
		id, ok := seen[c]
		if !ok {
			id = len(seen)
			seen[c] = id
		}
		cls[i] = id
	}
	return cls
}

// NumClasses returns the number of distinct classes in a normalized result.
func NumClasses(cls []int) int {
	max := -1
	for _, c := range cls {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// Bisimilar reports whether the values rooted at (g1, n1) and (g2, n2) are
// equal in the UnQL sense. The graphs may be the same Graph.
func Bisimilar(g1 *ssd.Graph, n1 ssd.NodeID, g2 *ssd.Graph, n2 ssd.NodeID) bool {
	if g1 == g2 {
		cls := Classes(g1)
		return cls[n1] == cls[n2]
	}
	comb, off := combine(g1, g2)
	cls := Classes(comb)
	return cls[n1] == cls[off+n2]
}

// Equal reports whether two rooted graphs denote the same value.
func Equal(g1, g2 *ssd.Graph) bool {
	return Bisimilar(g1, g1.Root(), g2, g2.Root())
}

// combine copies g2 into a clone of g1, returning the combined graph and the
// NodeID offset applied to g2's nodes.
func combine(g1, g2 *ssd.Graph) (*ssd.Graph, ssd.NodeID) {
	comb := g1.Clone()
	off := ssd.NodeID(comb.NumNodes())
	comb.AddNodes(g2.NumNodes())
	for v := 0; v < g2.NumNodes(); v++ {
		for _, e := range g2.Out(ssd.NodeID(v)) {
			comb.AddEdge(off+ssd.NodeID(v), e.Label, off+e.To)
		}
	}
	return comb, off
}

// Minimize returns the bisimulation quotient of the part of g accessible
// from the root: the smallest graph (up to isomorphism) with the same value.
// Duplicate edges are removed.
func Minimize(g *ssd.Graph) *ssd.Graph {
	acc, _ := g.Accessible()
	cls := Classes(acc)
	k := NumClasses(cls)
	out := ssd.NewWithCapacity(k)
	rootCls := cls[acc.Root()]
	nodeOf := make([]ssd.NodeID, k)
	nodeOf[rootCls] = out.Root()
	for c := 0; c < k; c++ {
		if c != rootCls {
			nodeOf[c] = out.AddNode()
		}
	}
	for v := 0; v < acc.NumNodes(); v++ {
		for _, e := range acc.Out(ssd.NodeID(v)) {
			out.AddEdge(nodeOf[cls[v]], canonical(e.Label), nodeOf[cls[e.To]])
		}
	}
	out.Dedup()
	return out
}

// Canonicalize returns the canonical representative of g's value: the
// bisimulation quotient of the accessible part (Minimize), renumbered so
// that node IDs — and therefore Format output and edge order — depend only
// on the value, never on construction order. Two graphs are value-equal iff
// their canonicalizations are byte-identical under ssd.FormatRoot.
//
// The renumbering is iterated signature refinement with class ids assigned
// in signature sort order: on a minimized graph every pair of nodes is
// non-bisimilar, so refinement terminates with one structurally determined
// rank per node.
func Canonicalize(g *ssd.Graph) *ssd.Graph {
	m := Minimize(g)
	n := m.NumNodes()
	cls := make([]int, n)
	k := 1
	var buf []byte
	var pairs []sigPair
	for {
		sigs := make([]string, n)
		var own []byte
		for v := 0; v < n; v++ {
			own = own[:0]
			own = binary.AppendUvarint(own, uint64(cls[v]))
			if ssd.NodeID(v) == m.Root() {
				own = append(own, 1)
			} else {
				own = append(own, 0)
			}
			buf, pairs = signature(m, ssd.NodeID(v), cls, buf, pairs)
			sigs[v] = string(own) + string(buf)
		}
		uniq := append([]string(nil), sigs...)
		sort.Strings(uniq)
		w := 0
		for i, s := range uniq {
			if i == 0 || s != uniq[w-1] {
				uniq[w] = s
				w++
			}
		}
		uniq = uniq[:w]
		id := make(map[string]int, len(uniq))
		for i, s := range uniq {
			id[s] = i
		}
		for v := range cls {
			cls[v] = id[sigs[v]]
		}
		if len(uniq) == k {
			break
		}
		k = len(uniq)
	}
	out := ssd.New()
	if n == 0 {
		return out
	}
	if n > 1 {
		out.AddNodes(n - 1)
	}
	for v := 0; v < n; v++ {
		for _, e := range m.Out(ssd.NodeID(v)) {
			out.AddEdge(ssd.NodeID(cls[v]), e.Label, ssd.NodeID(cls[e.To]))
		}
	}
	out.SetRoot(ssd.NodeID(cls[m.Root()]))
	out.SortEdges()
	return out
}

func appendLabel(buf []byte, l ssd.Label) []byte {
	buf = append(buf, byte(l.Kind()))
	switch l.Kind() {
	case ssd.KindSymbol:
		s, _ := l.Symbol()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case ssd.KindString:
		s, _ := l.Text()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case ssd.KindOID:
		s, _ := l.OIDVal()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case ssd.KindInt:
		v, _ := l.IntVal()
		buf = binary.AppendVarint(buf, v)
	case ssd.KindFloat:
		var tmp [8]byte
		f, _ := l.FloatVal()
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
		buf = append(buf, tmp[:]...)
	case ssd.KindBool:
		b, _ := l.BoolVal()
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}
