package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// This file is the durable snapshot codec: one self-describing binary file
// holding a graph version together with the derived structures built for it
// (label index, value index, DataGuide), so recovery restores a queryable
// snapshot without rescanning the graph. The layout is a sequence of
// CRC-framed sections:
//
//	magic "SSDS" | version u8
//	section*     kind u8 | payloadLen uvarint | crc32(payload) u32 LE | payload
//	end section  kind 0xFF, empty payload
//
// Section kinds:
//
//	meta   (1)  selfFP u32 LE | walBaseFP u32 LE | applied uvarint
//	            | commitSeq uvarint (optional trailing field; absent in
//	              files written before replication, decoding as 0)
//	graph  (2)  the SSDG graph encoding (Encode)
//	labels (3)  nLabels uvarint; per label: label, nRefs uvarint, (from, to uvarint)*
//	values (4)  nEntries uvarint; per entry: label, from uvarint, to uvarint
//	guide  (5)  guideLen uvarint + SSDG guide graph | per guide node: extLen uvarint, node uvarint*
//	stats  (6)  edges uvarint | histogram bucket uvarint* | nLabels uvarint;
//	            per label: label, count uvarint, nSrcs + (node, refs uvarint)*,
//	            nDsts + (node, refs uvarint)*   (version ≥ 2 only)
//
// meta and graph are mandatory; the index, guide, and stats sections are
// written only when the snapshot had built them. Every payload is covered by its
// own CRC and the file ends with an explicit end marker, so a torn write is
// detected wherever it lands (a truncated section, a corrupt payload, or a
// missing tail) and the reader can fall back to an older snapshot.
//
// Fingerprint binding: selfFP is crc32 of the graph section payload —
// exactly the WAL binding fingerprint (mutate.Fingerprint) of the decoded
// graph — so a snapshot names the log that extends it. walBaseFP and
// applied record the snapshot's position in the log it was checkpointed
// from: the log bound to walBaseFP has its first `applied` batches already
// folded into this graph. Recovery uses the pair to replay only the tail
// when a crash interrupted the checkpoint between snapshot publish and log
// truncation (see internal/core's OpenPath).

const (
	snapMagic = "SSDS"
	// snapVersion is the version written; version 1 files (no stats
	// section) remain readable, so upgrading never invalidates an
	// existing snapshot generation.
	snapVersion    = 2
	snapVersionMin = 1
)

const (
	secMeta   = 1
	secGraph  = 2
	secLabels = 3
	secValues = 4
	secGuide  = 5
	secStats  = 6
	secEnd    = 0xFF
)

// maxSectionKind returns the highest section kind defined by a format
// version. The section set is closed per version: a kind above this is a
// corrupt kind byte, not a future extension (those bump the version).
func maxSectionKind(version byte) byte {
	if version >= 2 {
		return secStats
	}
	return secGuide
}

// Snapshot is the in-memory form of one durable snapshot file.
type Snapshot struct {
	Graph  *ssd.Graph
	Labels *index.LabelIndex // nil if not persisted
	Values *index.ValueIndex // nil if not persisted
	Guide  *dataguide.Guide  // nil if not persisted
	Stats  *stats.Stats      // nil if not persisted

	// SelfFP is the WAL binding fingerprint of Graph (crc32 of its SSDG
	// encoding). Set by EncodeSnapshot and DecodeSnapshot.
	SelfFP uint32
	// WALBaseFP is the binding fingerprint of the log this snapshot was
	// checkpointed from; Applied is how many of that log's batches are
	// already folded into Graph.
	WALBaseFP uint32
	Applied   uint64

	// CommitSeq is the global replication position folded into Graph: the
	// total number of batches committed since the durable directory's
	// birth. It is the meaning of an X-SSD-Seq token and the base a
	// follower resumes streaming from. Encoded as a trailing optional meta
	// field, so snapshots written before replication decode with 0.
	CommitSeq uint64
}

func appendSection(buf []byte, kind byte, payload []byte) []byte {
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// EncodeSnapshot serializes s, computing and filling in s.SelfFP.
func EncodeSnapshot(s *Snapshot) []byte {
	graphPayload := Encode(s.Graph)
	s.SelfFP = crc32.ChecksumIEEE(graphPayload)

	meta := binary.LittleEndian.AppendUint32(nil, s.SelfFP)
	meta = binary.LittleEndian.AppendUint32(meta, s.WALBaseFP)
	meta = binary.AppendUvarint(meta, s.Applied)
	meta = binary.AppendUvarint(meta, s.CommitSeq)

	buf := append([]byte(snapMagic), snapVersion)
	buf = appendSection(buf, secMeta, meta)
	buf = appendSection(buf, secGraph, graphPayload)
	if s.Labels != nil {
		buf = appendSection(buf, secLabels, encodeLabelIndex(s.Labels))
	}
	if s.Values != nil {
		buf = appendSection(buf, secValues, encodeValueIndex(s.Values))
	}
	if s.Guide != nil {
		buf = appendSection(buf, secGuide, encodeGuide(s.Guide))
	}
	if s.Stats != nil {
		buf = appendSection(buf, secStats, encodeStats(s.Stats))
	}
	return appendSection(buf, secEnd, nil)
}

func encodeLabelIndex(ix *index.LabelIndex) []byte {
	ps := ix.Dump()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	for _, p := range ps {
		buf = AppendLabel(buf, p.Label)
		buf = binary.AppendUvarint(buf, uint64(len(p.Refs)))
		for _, r := range p.Refs {
			buf = binary.AppendUvarint(buf, uint64(r.From))
			buf = binary.AppendUvarint(buf, uint64(r.To))
		}
	}
	return buf
}

func encodeValueIndex(ix *index.ValueIndex) []byte {
	es := ix.Dump()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(es)))
	for _, e := range es {
		buf = AppendLabel(buf, e.Label)
		buf = binary.AppendUvarint(buf, uint64(e.Ref.From))
		buf = binary.AppendUvarint(buf, uint64(e.Ref.To))
	}
	return buf
}

func encodeStats(st *stats.Stats) []byte {
	d := st.Dump()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(d.Edges))
	for _, c := range d.Hist {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Labels)))
	appendCounts := func(ncs []stats.NodeCount) {
		buf = binary.AppendUvarint(buf, uint64(len(ncs)))
		for _, nc := range ncs {
			buf = binary.AppendUvarint(buf, uint64(nc.Node))
			buf = binary.AppendUvarint(buf, uint64(nc.N))
		}
	}
	for _, lc := range d.Labels {
		buf = AppendLabel(buf, lc.Label)
		buf = binary.AppendUvarint(buf, uint64(lc.Count))
		appendCounts(lc.Srcs)
		appendCounts(lc.Dsts)
	}
	return buf
}

func encodeGuide(g *dataguide.Guide) []byte {
	gg := Encode(g.G)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(gg)))
	buf = append(buf, gg...)
	for _, ext := range g.Extent {
		buf = binary.AppendUvarint(buf, uint64(len(ext)))
		for _, v := range ext {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return buf
}

// DecodeSnapshot parses a snapshot file image. Any framing damage — bad
// magic, a truncated or CRC-corrupt section, a missing end marker, trailing
// bytes — is an error: the caller treats the file as an invalid snapshot
// generation and falls back to an older one.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < 5 || string(data[:4]) != snapMagic {
		return nil, fmt.Errorf("storage: bad snapshot magic")
	}
	version := data[4]
	if version < snapVersionMin || version > snapVersion {
		return nil, fmt.Errorf("storage: unsupported snapshot version %d", version)
	}
	maxKind := maxSectionKind(version)
	pos := 5
	sections := make(map[byte][]byte)
	ended := false
	for pos < len(data) {
		kind := data[pos]
		pos++
		n, used := binary.Uvarint(data[pos:])
		if used <= 0 || n > uint64(len(data)) || pos+used+4+int(n) > len(data) {
			return nil, fmt.Errorf("storage: truncated snapshot section %d", kind)
		}
		pos += used
		sum := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		payload := data[pos : pos+int(n)]
		pos += int(n)
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("storage: snapshot section %d fails CRC", kind)
		}
		if kind == secEnd {
			ended = true
			break
		}
		if kind < secMeta || kind > maxKind {
			// Within one format version the section set is closed; an unknown
			// kind is a corrupt kind byte, not a future extension (those bump
			// the version).
			return nil, fmt.Errorf("storage: unknown snapshot section %d", kind)
		}
		if _, dup := sections[kind]; dup {
			return nil, fmt.Errorf("storage: duplicate snapshot section %d", kind)
		}
		sections[kind] = payload
	}
	if !ended {
		return nil, fmt.Errorf("storage: snapshot missing end marker")
	}
	if pos != len(data) {
		return nil, fmt.Errorf("storage: %d trailing bytes after snapshot", len(data)-pos)
	}
	meta, ok := sections[secMeta]
	if !ok {
		return nil, fmt.Errorf("storage: snapshot missing meta section")
	}
	graphPayload, ok := sections[secGraph]
	if !ok {
		return nil, fmt.Errorf("storage: snapshot missing graph section")
	}

	s := &Snapshot{}
	if len(meta) < 8 {
		return nil, fmt.Errorf("storage: short snapshot meta")
	}
	s.SelfFP = binary.LittleEndian.Uint32(meta)
	s.WALBaseFP = binary.LittleEndian.Uint32(meta[4:])
	applied, metaPos, err := ReadUvarint(meta, 8)
	if err != nil {
		return nil, fmt.Errorf("storage: snapshot meta: %w", err)
	}
	s.Applied = applied
	if metaPos < len(meta) {
		// Optional trailing field (replication position); files written
		// before it exist simply end here and decode as CommitSeq 0.
		if s.CommitSeq, _, err = ReadUvarint(meta, metaPos); err != nil {
			return nil, fmt.Errorf("storage: snapshot meta: %w", err)
		}
	}
	if fp := crc32.ChecksumIEEE(graphPayload); fp != s.SelfFP {
		// The sections are individually intact but do not belong together
		// (e.g. a graph section spliced from another file).
		return nil, fmt.Errorf("storage: snapshot fingerprint mismatch: meta %08x, graph %08x", s.SelfFP, fp)
	}
	if s.Graph, err = Decode(graphPayload); err != nil {
		return nil, err
	}
	if p, ok := sections[secLabels]; ok {
		if s.Labels, err = decodeLabelIndex(p, s.Graph.NumNodes()); err != nil {
			return nil, err
		}
	}
	if p, ok := sections[secValues]; ok {
		if s.Values, err = decodeValueIndex(p, s.Graph.NumNodes()); err != nil {
			return nil, err
		}
	}
	if p, ok := sections[secGuide]; ok {
		if s.Guide, err = decodeGuide(p, s.Graph); err != nil {
			return nil, err
		}
	}
	if p, ok := sections[secStats]; ok {
		if s.Stats, err = decodeStats(p, s.Graph.NumNodes()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func decodeStats(data []byte, numNodes int) (*stats.Stats, error) {
	var d stats.Dump
	edges, pos, err := ReadUvarint(data, 0)
	if err != nil {
		return nil, err
	}
	d.Edges = int(edges)
	for i := range d.Hist {
		var c uint64
		if c, pos, err = ReadUvarint(data, pos); err != nil {
			return nil, err
		}
		d.Hist[i] = int64(c)
	}
	nLabels, pos, err := ReadUvarint(data, pos)
	if err != nil {
		return nil, err
	}
	if nLabels > uint64(len(data)) {
		return nil, fmt.Errorf("storage: implausible stats label count %d", nLabels)
	}
	readCounts := func() ([]stats.NodeCount, error) {
		var n uint64
		if n, pos, err = ReadUvarint(data, pos); err != nil {
			return nil, err
		}
		if n > uint64(len(data)) {
			return nil, fmt.Errorf("storage: implausible stats refcount list size %d", n)
		}
		ncs := make([]stats.NodeCount, 0, n)
		for i := uint64(0); i < n; i++ {
			var node, refs uint64
			if node, pos, err = ReadUvarint(data, pos); err != nil {
				return nil, err
			}
			if refs, pos, err = ReadUvarint(data, pos); err != nil {
				return nil, err
			}
			if node >= uint64(numNodes) {
				return nil, fmt.Errorf("storage: stats node %d out of range", node)
			}
			ncs = append(ncs, stats.NodeCount{Node: ssd.NodeID(node), N: int(refs)})
		}
		return ncs, nil
	}
	d.Labels = make([]stats.LabelCard, 0, nLabels)
	for i := uint64(0); i < nLabels; i++ {
		var lc stats.LabelCard
		if lc.Label, pos, err = ReadLabel(data, pos); err != nil {
			return nil, err
		}
		var count uint64
		if count, pos, err = ReadUvarint(data, pos); err != nil {
			return nil, err
		}
		lc.Count = int(count)
		if lc.Srcs, err = readCounts(); err != nil {
			return nil, err
		}
		if lc.Dsts, err = readCounts(); err != nil {
			return nil, err
		}
		d.Labels = append(d.Labels, lc)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("storage: trailing bytes in stats section")
	}
	return stats.FromDump(d)
}

func decodeRef(data []byte, pos, numNodes int) (index.EdgeRef, int, error) {
	from, pos, err := ReadUvarint(data, pos)
	if err != nil {
		return index.EdgeRef{}, pos, err
	}
	to, pos, err := ReadUvarint(data, pos)
	if err != nil {
		return index.EdgeRef{}, pos, err
	}
	if from >= uint64(numNodes) || to >= uint64(numNodes) {
		return index.EdgeRef{}, pos, fmt.Errorf("storage: index ref %d->%d out of range", from, to)
	}
	return index.EdgeRef{From: ssd.NodeID(from), To: ssd.NodeID(to)}, pos, nil
}

func decodeLabelIndex(data []byte, numNodes int) (*index.LabelIndex, error) {
	n, pos, err := ReadUvarint(data, 0)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("storage: implausible label index size %d", n)
	}
	ps := make([]index.Posting, 0, n)
	for i := uint64(0); i < n; i++ {
		var p index.Posting
		if p.Label, pos, err = ReadLabel(data, pos); err != nil {
			return nil, err
		}
		var nr uint64
		if nr, pos, err = ReadUvarint(data, pos); err != nil {
			return nil, err
		}
		if nr > uint64(len(data)) {
			return nil, fmt.Errorf("storage: implausible posting list size %d", nr)
		}
		p.Refs = make([]index.EdgeRef, 0, nr)
		for j := uint64(0); j < nr; j++ {
			var r index.EdgeRef
			if r, pos, err = decodeRef(data, pos, numNodes); err != nil {
				return nil, err
			}
			p.Refs = append(p.Refs, r)
		}
		ps = append(ps, p)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("storage: trailing bytes in label index section")
	}
	return index.LabelIndexFromDump(ps)
}

func decodeValueIndex(data []byte, numNodes int) (*index.ValueIndex, error) {
	n, pos, err := ReadUvarint(data, 0)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("storage: implausible value index size %d", n)
	}
	es := make([]index.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e index.Entry
		if e.Label, pos, err = ReadLabel(data, pos); err != nil {
			return nil, err
		}
		if e.Ref, pos, err = decodeRef(data, pos, numNodes); err != nil {
			return nil, err
		}
		es = append(es, e)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("storage: trailing bytes in value index section")
	}
	return index.ValueIndexFromDump(es)
}

func decodeGuide(data []byte, source *ssd.Graph) (*dataguide.Guide, error) {
	glen, pos, err := ReadUvarint(data, 0)
	if err != nil {
		return nil, err
	}
	if glen > uint64(len(data)-pos) {
		return nil, fmt.Errorf("storage: truncated guide graph")
	}
	gg, err := Decode(data[pos : pos+int(glen)])
	if err != nil {
		return nil, err
	}
	pos += int(glen)
	extents := make([][]ssd.NodeID, gg.NumNodes())
	for gn := range extents {
		var n uint64
		if n, pos, err = ReadUvarint(data, pos); err != nil {
			return nil, err
		}
		if n > uint64(len(data)) {
			return nil, fmt.Errorf("storage: implausible extent size %d", n)
		}
		ext := make([]ssd.NodeID, 0, n)
		for i := uint64(0); i < n; i++ {
			var v uint64
			if v, pos, err = ReadUvarint(data, pos); err != nil {
				return nil, err
			}
			ext = append(ext, ssd.NodeID(v))
		}
		extents[gn] = ext
	}
	if pos != len(data) {
		return nil, fmt.Errorf("storage: trailing bytes in guide section")
	}
	return dataguide.Restore(gg, extents, source)
}

// WriteSnapshotFile writes s to path atomically — encode to <path>.tmp,
// fsync, rename over path, fsync the directory — and reports the file size.
// A crash at any point leaves either the old file or the new one, never a
// partial write at the final name.
func WriteSnapshotFile(path string, s *Snapshot) (int64, error) {
	data := EncodeSnapshot(s)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		// Directory fsync is advisory on some platforms; best-effort.
		d.Sync()
		d.Close()
	}
	return int64(len(data)), nil
}

// ReadSnapshotFile reads and decodes one snapshot file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}
