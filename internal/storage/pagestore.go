package storage

import (
	"math/rand"

	"repro/internal/ssd"
)

// Clustering decides which page each node's record lives on. It started
// life parameterizing an I/O-counting simulation; the layouts now drive
// the real page file (see WritePageFile), with ssdbench's E10 measuring
// actual buffer-pool hit rates per policy.
type Clustering int

// Clustering policies. ClusterDFS places nodes in depth-first order from
// the root so parent and child usually share a page — the layout [28]-style
// native stores aim for. ClusterBFS places breadth-first (good for shallow
// fan-out scans). ClusterRandom shuffles — the no-clustering baseline.
const (
	ClusterDFS Clustering = iota
	ClusterBFS
	ClusterRandom
)

func (c Clustering) String() string {
	switch c {
	case ClusterDFS:
		return "dfs"
	case ClusterBFS:
		return "bfs"
	default:
		return "random"
	}
}

// layoutOrder returns the node placement order for a clustering policy.
// Unreachable nodes are appended in id order.
func layoutOrder(g *ssd.Graph, c Clustering, seed int64) []ssd.NodeID {
	n := g.NumNodes()
	order := make([]ssd.NodeID, 0, n)
	if n == 0 {
		// A node-less graph has no root to start from; indexing seen by
		// g.Root() would be out of range.
		return order
	}
	seen := make([]bool, n)
	switch c {
	case ClusterDFS:
		stack := []ssd.NodeID{g.Root()}
		seen[g.Root()] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			es := g.Out(v)
			for i := len(es) - 1; i >= 0; i-- {
				if !seen[es[i].To] {
					seen[es[i].To] = true
					stack = append(stack, es[i].To)
				}
			}
		}
	case ClusterBFS:
		queue := []ssd.NodeID{g.Root()}
		seen[g.Root()] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, e := range g.Out(v) {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	default:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		for _, i := range perm {
			order = append(order, ssd.NodeID(i))
			seen[i] = true
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			order = append(order, ssd.NodeID(v))
		}
	}
	return order
}
