package storage

import (
	"math/rand"
	"sort"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Clustering decides which page each node's record lives on.
type Clustering int

// Clustering policies. ClusterDFS places nodes in depth-first order from
// the root so parent and child usually share a page — the layout [28]-style
// native stores aim for. ClusterBFS places breadth-first (good for shallow
// fan-out scans). ClusterRandom shuffles — the no-clustering baseline.
const (
	ClusterDFS Clustering = iota
	ClusterBFS
	ClusterRandom
)

func (c Clustering) String() string {
	switch c {
	case ClusterDFS:
		return "dfs"
	case ClusterBFS:
		return "bfs"
	default:
		return "random"
	}
}

// PoolStats counts simulated I/O.
type PoolStats struct {
	Hits   int
	Misses int // page faults = disk reads
}

// BufferPool is an LRU page cache simulation.
type BufferPool struct {
	capacity int
	stats    PoolStats
	// LRU via doubly-linked list over resident pages.
	resident map[int32]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent
}

type lruNode struct {
	page       int32
	prev, next *lruNode
}

// NewBufferPool returns an LRU pool holding up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{capacity: capacity, resident: make(map[int32]*lruNode, capacity)}
}

// Touch simulates accessing a page, updating hit/miss counters and LRU
// state.
func (bp *BufferPool) Touch(page int32) {
	if n, ok := bp.resident[page]; ok {
		bp.stats.Hits++
		bp.moveToFront(n)
		return
	}
	bp.stats.Misses++
	n := &lruNode{page: page}
	bp.resident[page] = n
	bp.pushFront(n)
	if len(bp.resident) > bp.capacity {
		evict := bp.tail
		bp.unlink(evict)
		delete(bp.resident, evict.page)
	}
}

// Stats returns the counters.
func (bp *BufferPool) Stats() PoolStats { return bp.stats }

// Reset clears counters and resident pages.
func (bp *BufferPool) Reset() {
	bp.stats = PoolStats{}
	bp.resident = make(map[int32]*lruNode, bp.capacity)
	bp.head, bp.tail = nil, nil
}

func (bp *BufferPool) moveToFront(n *lruNode) {
	if bp.head == n {
		return
	}
	bp.unlink(n)
	bp.pushFront(n)
}

func (bp *BufferPool) pushFront(n *lruNode) {
	n.prev = nil
	n.next = bp.head
	if bp.head != nil {
		bp.head.prev = n
	}
	bp.head = n
	if bp.tail == nil {
		bp.tail = n
	}
}

func (bp *BufferPool) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		bp.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		bp.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// PagedGraph overlays a page layout on a graph: each node record (its edge
// list) lives on one page, and every access to a node's edges touches that
// page through the buffer pool.
type PagedGraph struct {
	G      *ssd.Graph
	Pool   *BufferPool
	pageOf []int32
	pages  int
}

// NewPaged lays g out with the given clustering, targeting nodesPerPage
// records per page (a stand-in for a byte budget; edge lists in this model
// are small and uniform enough that record count is the right first-order
// knob), and a pool of poolPages resident pages. The rng seed fixes the
// random layout.
func NewPaged(g *ssd.Graph, c Clustering, nodesPerPage, poolPages int, seed int64) *PagedGraph {
	if nodesPerPage < 1 {
		nodesPerPage = 1
	}
	order := layoutOrder(g, c, seed)
	pageOf := make([]int32, g.NumNodes())
	for i, n := range order {
		pageOf[n] = int32(i / nodesPerPage)
	}
	pages := (len(order) + nodesPerPage - 1) / nodesPerPage
	return &PagedGraph{
		G:      g,
		Pool:   NewBufferPool(poolPages),
		pageOf: pageOf,
		pages:  pages,
	}
}

// NumPages returns the number of pages in the layout.
func (pg *PagedGraph) NumPages() int { return pg.pages }

// Out returns the edges of n, charging the owning page.
func (pg *PagedGraph) Out(n ssd.NodeID) []ssd.Edge {
	pg.Pool.Touch(pg.pageOf[n])
	return pg.G.Out(n)
}

// layoutOrder returns the node placement order for a clustering policy.
// Unreachable nodes are appended in id order.
func layoutOrder(g *ssd.Graph, c Clustering, seed int64) []ssd.NodeID {
	n := g.NumNodes()
	order := make([]ssd.NodeID, 0, n)
	seen := make([]bool, n)
	switch c {
	case ClusterDFS:
		stack := []ssd.NodeID{g.Root()}
		seen[g.Root()] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			es := g.Out(v)
			for i := len(es) - 1; i >= 0; i-- {
				if !seen[es[i].To] {
					seen[es[i].To] = true
					stack = append(stack, es[i].To)
				}
			}
		}
	case ClusterBFS:
		queue := []ssd.NodeID{g.Root()}
		seen[g.Root()] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, e := range g.Out(v) {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	default:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		for _, i := range perm {
			order = append(order, ssd.NodeID(i))
			seen[i] = true
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			order = append(order, ssd.NodeID(v))
		}
	}
	return order
}

// EvalPath evaluates a compiled path expression over the paged graph,
// charging page touches for every node expansion — the workload of
// experiment E10. Results match au.Eval on the in-memory graph.
func (pg *PagedGraph) EvalPath(au *pathexpr.Automaton) []ssd.NodeID {
	type item struct {
		node  ssd.NodeID
		state int
	}
	S := au.NumStates()
	visited := make([]bool, pg.G.NumNodes()*S)
	var queue []item
	push := func(n ssd.NodeID, q int) {
		for _, c := range au.Closure(q) {
			idx := int(n)*S + c
			if !visited[idx] {
				visited[idx] = true
				queue = append(queue, item{n, c})
			}
		}
	}
	push(pg.G.Root(), au.Start())
	resultSet := map[ssd.NodeID]bool{}
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if it.state == au.Accept() {
			resultSet[it.node] = true
		}
		es := pg.Out(it.node)
		for _, arc := range au.Arcs(it.state) {
			for _, e := range es {
				if arc.Pred.Match(e.Label) {
					push(e.To, arc.To)
				}
			}
		}
	}
	out := make([]ssd.NodeID, 0, len(resultSet))
	for n := range resultSet {
		out = append(out, n)
	}
	sortNodeIDs(out)
	return out
}

// ScanDFS walks the whole reachable graph depth-first, charging pages — the
// sequential-scan workload.
func (pg *PagedGraph) ScanDFS() int {
	seen := make([]bool, pg.G.NumNodes())
	stack := []ssd.NodeID{pg.G.Root()}
	seen[pg.G.Root()] = true
	visited := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited++
		for _, e := range pg.Out(v) {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return visited
}

func sortNodeIDs(ns []ssd.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
