package storage

// The real out-of-core page store: the promotion of this package's old
// Touch()-counter simulation into an actual on-disk layout served through
// an actual buffer pool. A page file derives from the same record wire
// format as the snapshot codec's graph section (AppendLabel and uvarints),
// re-packed into fixed-size pages in DFS cluster order so parent and child
// records usually share a page — §4's clustering argument, now load-bearing
// instead of simulated.
//
// File layout:
//
//	header (24 bytes): magic "SSDP" | version u8 | clustering u8 |
//	    reserved u16 | pageSize u32 | numPages u32 | numNodes u32 | root u32
//	directory: numNodes × u32 — the first page of the run holding each
//	    node's record
//	crc u32 (IEEE) over header+directory
//	pages: numPages × pageSize bytes
//
// Records are packed into runs: a run is one page, or — for a record
// larger than a page — a contiguous span of pages treated as one frame.
// Each run starts with a 12-byte header (dataLen u32 | nrec u16 |
// reserved u16 | crc u32 over the record data) followed by nrec records:
//
//	node uvarint | degree uvarint | per edge: label (AppendLabel) + to uvarint
//
// Runs are laid out in clustering order, so a DFS scan reads the file
// near-sequentially. The directory maps every node to its run's first
// page; continuation pages are never entered directly.
//
// The buffer pool caches decoded runs ("frames") under a byte budget with
// LRU eviction over unpinned frames. Pinning is an optimization and an
// accounting device, not a safety requirement: decoded edge slices are
// ordinary garbage-collected memory, so a slice that escaped a frame stays
// valid after the frame is evicted — eviction just drops the pool's
// reference. Iterator hot paths pin a small ring of frames through a
// StoreAccessor (see Accessor) and release at morsel or cursor boundaries.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/ssd"
)

const (
	pageMagic   = "SSDP"
	pageVersion = 1
	fileHdrLen  = 24
	pageHdrLen  = 12

	// DefaultPageSize is the page size WritePageFile uses when given 0.
	DefaultPageSize = 4096
	// MinPageSize bounds configurability from below: a page must hold its
	// own header plus at least a little data.
	MinPageSize = 64
	// DefaultPoolBytes is the buffer-pool budget OpenPageFile applies when
	// given a non-positive one.
	DefaultPoolBytes = 64 << 20
)

// Pool counters are process-global (the obs idiom); per-store resident and
// pinned gauges are summed over the live-store registry at snapshot time.
var (
	poolHits      = obs.Default.Counter("ssd_pagepool_hits_total", "Buffer pool frame hits.")
	poolMisses    = obs.Default.Counter("ssd_pagepool_misses_total", "Buffer pool frame misses (page reads).")
	poolEvictions = obs.Default.Counter("ssd_pagepool_evictions_total", "Buffer pool frames evicted under the byte budget.")

	liveMu     sync.Mutex
	liveStores = make(map[*PageStore]struct{})

	_ = func() bool {
		obs.Default.GaugeFunc("ssd_pagepool_resident_bytes",
			"Bytes of page frames resident across open page stores.", func() int64 {
				liveMu.Lock()
				defer liveMu.Unlock()
				var total int64
				for ps := range liveStores {
					total += ps.Stats().ResidentBytes
				}
				return total
			})
		obs.Default.GaugeFunc("ssd_pagepool_pinned_pages",
			"Pages currently pinned across open page stores.", func() int64 {
				liveMu.Lock()
				defer liveMu.Unlock()
				var total int64
				for ps := range liveStores {
					total += ps.Stats().PinnedPages
				}
				return total
			})
		return true
	}()
)

// PoolStats is a point-in-time view of one store's buffer pool.
type PoolStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	ResidentBytes int64
	PinnedPages   int64
}

// WritePageFile lays g out as a page file at path: records in clustering
// order c, pages of pageSize bytes (0 means DefaultPageSize). The write is
// atomic (temp file + rename), so a crash leaves either the old complete
// file or none — the torn-write recovery story is "rebuild from the
// snapshot", not page-level repair.
func WritePageFile(path string, g *ssd.Graph, c Clustering, pageSize int) error {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < MinPageSize {
		return fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	n := g.NumNodes()
	if n == 0 {
		return fmt.Errorf("storage: page file requires at least one node")
	}
	order := layoutOrder(g, c, 1)
	dir := make([]uint32, n)
	var pages []byte
	var curData []byte
	var curNodes []ssd.NodeID

	flush := func() {
		if len(curNodes) == 0 {
			return
		}
		first := uint32(len(pages) / pageSize)
		var hdr [pageHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(curData)))
		binary.LittleEndian.PutUint16(hdr[4:], uint16(len(curNodes)))
		binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(curData))
		pages = append(pages, hdr[:]...)
		pages = append(pages, curData...)
		if pad := len(pages) % pageSize; pad != 0 {
			pages = append(pages, make([]byte, pageSize-pad)...)
		}
		for _, v := range curNodes {
			dir[v] = first
		}
		curData, curNodes = curData[:0], curNodes[:0]
	}

	for _, v := range order {
		rec := appendNodeRecord(nil, g, v)
		// A record that will not fit the current page starts a fresh run;
		// a record larger than a page gets a multi-page run of its own.
		if len(curNodes) > 0 && pageHdrLen+len(curData)+len(rec) > pageSize {
			flush()
		}
		// nrec is a u16; an absurdly dense page of tiny records must split.
		if len(curNodes) == 1<<16-1 {
			flush()
		}
		curData = append(curData, rec...)
		curNodes = append(curNodes, v)
		if pageHdrLen+len(curData) >= pageSize {
			flush()
		}
	}
	flush()

	numPages := len(pages) / pageSize
	head := make([]byte, 0, fileHdrLen+4*n+4)
	head = append(head, pageMagic...)
	head = append(head, pageVersion, byte(c), 0, 0)
	head = binary.LittleEndian.AppendUint32(head, uint32(pageSize))
	head = binary.LittleEndian.AppendUint32(head, uint32(numPages))
	head = binary.LittleEndian.AppendUint32(head, uint32(n))
	head = binary.LittleEndian.AppendUint32(head, uint32(g.Root()))
	for _, p := range dir {
		head = binary.LittleEndian.AppendUint32(head, p)
	}
	head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(head))

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(head); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(pages); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// appendNodeRecord encodes one node's adjacency record — the snapshot
// codec's per-node wire format prefixed with the node id, since pages are
// not in id order.
func appendNodeRecord(buf []byte, g *ssd.Graph, n ssd.NodeID) []byte {
	buf = binary.AppendUvarint(buf, uint64(n))
	es := g.Out(n)
	buf = binary.AppendUvarint(buf, uint64(len(es)))
	for _, e := range es {
		buf = AppendLabel(buf, e.Label)
		buf = binary.AppendUvarint(buf, uint64(e.To))
	}
	return buf
}

// frame is one decoded run resident in the pool.
type frame struct {
	page  uint32 // first page of the run
	bytes int64  // page bytes charged against the budget
	edges map[ssd.NodeID][]ssd.Edge
	pins  int
	// LRU links; a frame is listed only while unpinned.
	prev, next *frame
}

// PageStore serves the GraphStore read surface from a page file through a
// byte-budgeted LRU buffer pool. It is safe for concurrent readers; the
// pool is guarded by one mutex, with file reads done via ReadAt (itself
// concurrency-safe). Page-level I/O or corruption discovered on the read
// path panics with a descriptive error — the query executor's recover
// turns that into a cursor error, mirroring the in-memory store's
// out-of-range panics.
type PageStore struct {
	f          *os.File
	path       string
	pageSize   int
	numPages   int
	root       ssd.NodeID
	clustering Clustering
	dir        []uint32 // node → first page of its run

	mu       sync.Mutex
	frames   map[uint32]*frame
	lruHead  *frame // most recently released
	lruTail  *frame // eviction victim
	resident int64
	pinned   int64 // pinned pages (not frames): multi-page runs count fully
	budget   int64
	hits     int64
	misses   int64
	evicted  int64
	closed   bool
}

var (
	_ ssd.GraphStore       = (*PageStore)(nil)
	_ ssd.AccessorProvider = (*PageStore)(nil)
)

// OpenPageFile opens a page file with a buffer-pool budget of poolBytes
// (non-positive means DefaultPoolBytes). The header and directory are
// validated (magic, version, CRC, file size); page payloads are checked
// lazily, per run, as frames load.
func OpenPageFile(path string, poolBytes int64) (*PageStore, error) {
	if poolBytes <= 0 {
		poolBytes = DefaultPoolBytes
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var fixed [fileHdrLen]byte
	if _, err := f.ReadAt(fixed[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: header: %w", path, err)
	}
	if string(fixed[:4]) != pageMagic {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: bad magic", path)
	}
	if fixed[4] != pageVersion {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: unsupported version %d", path, fixed[4])
	}
	pageSize := int(binary.LittleEndian.Uint32(fixed[8:]))
	numPages := int(binary.LittleEndian.Uint32(fixed[12:]))
	numNodes := int(binary.LittleEndian.Uint32(fixed[16:]))
	root := ssd.NodeID(binary.LittleEndian.Uint32(fixed[20:]))
	if pageSize < MinPageSize || numNodes < 1 || int(root) >= numNodes {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: implausible header", path)
	}
	headLen := fileHdrLen + 4*numNodes + 4
	head := make([]byte, headLen)
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: directory: %w", path, err)
	}
	want := binary.LittleEndian.Uint32(head[headLen-4:])
	if crc32.ChecksumIEEE(head[:headLen-4]) != want {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: header checksum mismatch", path)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() != int64(headLen)+int64(numPages)*int64(pageSize) {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: truncated (%d bytes, want %d)",
			path, st.Size(), int64(headLen)+int64(numPages)*int64(pageSize))
	}
	dir := make([]uint32, numNodes)
	for i := range dir {
		dir[i] = binary.LittleEndian.Uint32(head[fileHdrLen+4*i:])
		if int(dir[i]) >= numPages {
			f.Close()
			return nil, fmt.Errorf("storage: page file %s: directory entry %d out of range", path, i)
		}
	}
	ps := &PageStore{
		f:          f,
		path:       path,
		pageSize:   pageSize,
		numPages:   numPages,
		root:       root,
		clustering: Clustering(fixed[5]),
		dir:        dir,
		frames:     make(map[uint32]*frame),
		budget:     poolBytes,
	}
	liveMu.Lock()
	liveStores[ps] = struct{}{}
	liveMu.Unlock()
	return ps, nil
}

// Close releases the pool and the file. Edge slices handed out earlier
// remain valid (they are garbage-collected memory), but no further reads
// may be issued through the store.
func (ps *PageStore) Close() error {
	liveMu.Lock()
	delete(liveStores, ps)
	liveMu.Unlock()
	ps.mu.Lock()
	ps.closed = true
	ps.frames = nil
	ps.lruHead, ps.lruTail = nil, nil
	ps.resident, ps.pinned = 0, 0
	ps.mu.Unlock()
	return ps.f.Close()
}

// Path returns the page file's path.
func (ps *PageStore) Path() string { return ps.path }

// PageSize returns the file's page size in bytes.
func (ps *PageStore) PageSize() int { return ps.pageSize }

// NumPages returns the number of pages in the file.
func (ps *PageStore) NumPages() int { return ps.numPages }

// ClusteringPolicy returns the layout the file was written with.
func (ps *PageStore) ClusteringPolicy() Clustering { return ps.clustering }

// Stats returns a snapshot of the pool counters.
func (ps *PageStore) Stats() PoolStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return PoolStats{
		Hits:          ps.hits,
		Misses:        ps.misses,
		Evictions:     ps.evicted,
		ResidentBytes: ps.resident,
		PinnedPages:   ps.pinned,
	}
}

// acquire returns the frame whose run starts at page, pinned. Misses load
// and decode under the pool mutex: simple, and the warm path (the one that
// matters for query latency) only takes the lock for a map hit.
func (ps *PageStore) acquire(page uint32) *frame {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		panic(fmt.Sprintf("storage: read on closed page store %s", ps.path))
	}
	if fr, ok := ps.frames[page]; ok {
		ps.hits++
		poolHits.Inc()
		if fr.pins == 0 {
			ps.lruUnlink(fr)
		}
		fr.pins++
		ps.pinned += fr.bytes / int64(ps.pageSize)
		ps.mu.Unlock()
		return fr
	}
	ps.misses++
	poolMisses.Inc()
	fr, err := ps.loadFrame(page)
	if err != nil {
		ps.mu.Unlock()
		panic(fmt.Sprintf("storage: page store %s: %v", ps.path, err))
	}
	fr.pins = 1
	ps.frames[page] = fr
	ps.resident += fr.bytes
	ps.pinned += fr.bytes / int64(ps.pageSize)
	ps.evictLocked()
	ps.mu.Unlock()
	return fr
}

// release drops one pin; the frame joins the LRU list when unpinned and
// may be evicted immediately if the pool is over budget.
func (ps *PageStore) release(fr *frame) {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	fr.pins--
	ps.pinned -= fr.bytes / int64(ps.pageSize)
	if fr.pins == 0 {
		ps.lruPushFront(fr)
		ps.evictLocked()
	}
	ps.mu.Unlock()
}

// evictLocked drops least-recently-used unpinned frames while the pool is
// over budget. When every frame is pinned the pool overcommits rather than
// blocking — a 2-page pool must not deadlock a traversal that needs three
// pages at once; the pinned_pages gauge makes the overcommit visible.
func (ps *PageStore) evictLocked() {
	for ps.resident > ps.budget && ps.lruTail != nil {
		victim := ps.lruTail
		ps.lruUnlink(victim)
		delete(ps.frames, victim.page)
		ps.resident -= victim.bytes
		ps.evicted++
		poolEvictions.Inc()
	}
}

func (ps *PageStore) lruPushFront(fr *frame) {
	fr.prev = nil
	fr.next = ps.lruHead
	if ps.lruHead != nil {
		ps.lruHead.prev = fr
	}
	ps.lruHead = fr
	if ps.lruTail == nil {
		ps.lruTail = fr
	}
}

func (ps *PageStore) lruUnlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		ps.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		ps.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

// loadFrame reads and decodes the run starting at page. Called with the
// pool mutex held.
func (ps *PageStore) loadFrame(page uint32) (*frame, error) {
	headOff := int64(fileHdrLen+4*len(ps.dir)+4) + int64(page)*int64(ps.pageSize)
	var hdr [pageHdrLen]byte
	if _, err := ps.f.ReadAt(hdr[:], headOff); err != nil {
		return nil, fmt.Errorf("page %d header: %w", page, err)
	}
	dataLen := int(binary.LittleEndian.Uint32(hdr[0:]))
	nrec := int(binary.LittleEndian.Uint16(hdr[4:]))
	wantCRC := binary.LittleEndian.Uint32(hdr[8:])
	runPages := (pageHdrLen + dataLen + ps.pageSize - 1) / ps.pageSize
	if runPages < 1 || int(page)+runPages > ps.numPages {
		return nil, fmt.Errorf("page %d: run of %d pages out of range", page, runPages)
	}
	data := make([]byte, pageHdrLen+dataLen)
	if _, err := ps.f.ReadAt(data, headOff); err != nil {
		return nil, fmt.Errorf("page %d: %w", page, err)
	}
	data = data[pageHdrLen:]
	if crc32.ChecksumIEEE(data) != wantCRC {
		return nil, fmt.Errorf("page %d: record checksum mismatch", page)
	}
	edges := make(map[ssd.NodeID][]ssd.Edge, nrec)
	r := &reader{data: data}
	for i := 0; i < nrec; i++ {
		node, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("page %d record %d: %w", page, i, err)
		}
		if node >= uint64(len(ps.dir)) {
			return nil, fmt.Errorf("page %d record %d: node %d out of range", page, i, node)
		}
		deg, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("page %d record %d: %w", page, i, err)
		}
		var es []ssd.Edge
		if deg > 0 {
			es = make([]ssd.Edge, 0, deg)
		}
		for j := uint64(0); j < deg; j++ {
			l, err := r.label()
			if err != nil {
				return nil, fmt.Errorf("page %d record %d edge %d: %w", page, i, j, err)
			}
			to, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("page %d record %d edge %d: %w", page, i, j, err)
			}
			if to >= uint64(len(ps.dir)) {
				return nil, fmt.Errorf("page %d record %d: edge target %d out of range", page, i, to)
			}
			es = append(es, ssd.Edge{Label: l, To: ssd.NodeID(to)})
		}
		edges[ssd.NodeID(node)] = es
	}
	return &frame{page: page, bytes: int64(runPages) * int64(ps.pageSize), edges: edges}, nil
}

func (ps *PageStore) check(n ssd.NodeID) {
	if n < 0 || int(n) >= len(ps.dir) {
		panic(fmt.Sprintf("storage: node %d out of range [0,%d)", n, len(ps.dir)))
	}
}

// Root returns the distinguished root node.
func (ps *PageStore) Root() ssd.NodeID { return ps.root }

// NumNodes returns the number of nodes in the page file.
func (ps *PageStore) NumNodes() int { return len(ps.dir) }

// Out returns the outgoing edges of n — the unpinned slow path: one pool
// acquire/release per call. Hot loops should read through an Accessor.
// The returned slice stays valid after eviction (GC-owned memory) but must
// not be mutated.
func (ps *PageStore) Out(n ssd.NodeID) []ssd.Edge {
	ps.check(n)
	fr := ps.acquire(ps.dir[n])
	es := fr.edges[n]
	ps.release(fr)
	return es
}

// OutDegree returns the number of outgoing edges of n.
func (ps *PageStore) OutDegree(n ssd.NodeID) int { return len(ps.Out(n)) }

// Lookup returns the targets of edges out of n labeled l.
func (ps *PageStore) Lookup(n ssd.NodeID, l ssd.Label) []ssd.NodeID {
	var out []ssd.NodeID
	for _, e := range ps.Out(n) {
		if e.Label.Equal(l) {
			out = append(out, e.To)
		}
	}
	return out
}

// Labels returns the distinct labels on edges out of n, sorted.
func (ps *PageStore) Labels(n ssd.NodeID) []ssd.Label {
	es := ps.Out(n)
	seen := make(map[ssd.Label]bool, len(es))
	var ls []ssd.Label
	for _, e := range es {
		if !seen[e.Label] {
			seen[e.Label] = true
			ls = append(ls, e.Label)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	return ls
}

// accessorRing is how many frames one accessor keeps pinned. Traversals
// alternate between a parent's page and a child's page (plus an index or
// guide probe); four covers the common interleavings without holding a
// tiny pool hostage.
const accessorRing = 4

// pageAccessor is the pinned fast path: a single-goroutine ring of pinned
// frames consulted before the pool, so a clustered traversal touching the
// same page repeatedly skips the pool mutex entirely.
type pageAccessor struct {
	ps     *PageStore
	frames [accessorRing]*frame
	clock  int
}

// Accessor returns a fresh pinning read handle. The caller must Release
// it on every path — the pincheck analyzer enforces this.
//
//ssd:mustunpin
func (ps *PageStore) Accessor() ssd.StoreAccessor {
	return &pageAccessor{ps: ps}
}

func (a *pageAccessor) frameFor(page uint32) *frame {
	for _, fr := range a.frames {
		if fr != nil && fr.page == page {
			return fr
		}
	}
	fr := a.ps.acquire(page)
	slot := a.clock
	a.clock = (a.clock + 1) % accessorRing
	if old := a.frames[slot]; old != nil {
		a.ps.release(old)
	}
	a.frames[slot] = fr
	return fr
}

// Release unpins every frame the accessor holds. Idempotent.
func (a *pageAccessor) Release() {
	for i, fr := range a.frames {
		if fr != nil {
			a.ps.release(fr)
			a.frames[i] = nil
		}
	}
}

// Root returns the distinguished root node.
func (a *pageAccessor) Root() ssd.NodeID { return a.ps.root }

// NumNodes returns the number of nodes in the page file.
func (a *pageAccessor) NumNodes() int { return len(a.ps.dir) }

// Out returns the outgoing edges of n through the pinned ring.
func (a *pageAccessor) Out(n ssd.NodeID) []ssd.Edge {
	a.ps.check(n)
	return a.frameFor(a.ps.dir[n]).edges[n]
}

// OutDegree returns the number of outgoing edges of n.
func (a *pageAccessor) OutDegree(n ssd.NodeID) int { return len(a.Out(n)) }

// Lookup returns the targets of edges out of n labeled l.
func (a *pageAccessor) Lookup(n ssd.NodeID, l ssd.Label) []ssd.NodeID {
	var out []ssd.NodeID
	for _, e := range a.Out(n) {
		if e.Label.Equal(l) {
			out = append(out, e.To)
		}
	}
	return out
}

// Labels returns the distinct labels on edges out of n, sorted.
func (a *pageAccessor) Labels(n ssd.NodeID) []ssd.Label {
	es := a.Out(n)
	seen := make(map[ssd.Label]bool, len(es))
	var ls []ssd.Label
	for _, e := range es {
		if !seen[e.Label] {
			seen[e.Label] = true
			ls = append(ls, e.Label)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	return ls
}
