// Package storage addresses §4's second implementation setting: "one is
// building a data structure to represent semistructured data directly",
// where "disk layout and clustering, together with appropriate indexing, is
// also important" [28]. It provides a compact binary codec for graphs, the
// durable snapshot container, and a real out-of-core page store: fixed-size
// pages of DFS-clustered adjacency records served through a byte-budgeted
// LRU buffer pool (see pagedstore.go), with clustering policies
// (DFS-locality vs. random placement) whose buffer-pool behaviour under
// path scans is experiment E10.
package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/ssd"
)

// Binary format:
//
//	magic "SSDG" | version u8 | root uvarint | numNodes uvarint
//	per node: degree uvarint, then per edge: label, to uvarint
//	label: kind u8 + payload (uvarint length + bytes, varint, 8-byte float,
//	or 1-byte bool)
//	oid section: count uvarint, then (node uvarint, len+bytes) pairs

const (
	magic   = "SSDG"
	version = 1
)

// Encode serializes a graph.
func Encode(g *ssd.Graph) []byte {
	buf := make([]byte, 0, 16+g.NumEdges()*8)
	buf = append(buf, magic...)
	buf = append(buf, version)
	buf = binary.AppendUvarint(buf, uint64(g.Root()))
	buf = binary.AppendUvarint(buf, uint64(g.NumNodes()))
	for v := 0; v < g.NumNodes(); v++ {
		es := g.Out(ssd.NodeID(v))
		buf = binary.AppendUvarint(buf, uint64(len(es)))
		for _, e := range es {
			buf = AppendLabel(buf, e.Label)
			buf = binary.AppendUvarint(buf, uint64(e.To))
		}
	}
	// OID section.
	var oids []struct {
		n  ssd.NodeID
		id string
	}
	for v := 0; v < g.NumNodes(); v++ {
		if id, ok := g.OIDOf(ssd.NodeID(v)); ok {
			oids = append(oids, struct {
				n  ssd.NodeID
				id string
			}{ssd.NodeID(v), id})
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(oids)))
	for _, o := range oids {
		buf = binary.AppendUvarint(buf, uint64(o.n))
		buf = binary.AppendUvarint(buf, uint64(len(o.id)))
		buf = append(buf, o.id...)
	}
	return buf
}

// Decode parses a serialized graph.
func Decode(data []byte) (*ssd.Graph, error) {
	r := &reader{data: data}
	if len(data) < 5 || string(data[:4]) != magic {
		return nil, fmt.Errorf("storage: bad magic")
	}
	if data[4] != version {
		return nil, fmt.Errorf("storage: unsupported version %d", data[4])
	}
	r.pos = 5
	root, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("storage: graph must have at least one node")
	}
	if n > uint64(len(data)) { // degree-1 lower bound sanity check
		return nil, fmt.Errorf("storage: implausible node count %d", n)
	}
	g := ssd.NewWithCapacity(int(n))
	if n > 1 {
		g.AddNodes(int(n) - 1)
	}
	for v := uint64(0); v < n; v++ {
		deg, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < deg; i++ {
			l, err := r.label()
			if err != nil {
				return nil, err
			}
			to, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if to >= n {
				return nil, fmt.Errorf("storage: edge target %d out of range", to)
			}
			g.AddEdge(ssd.NodeID(v), l, ssd.NodeID(to))
		}
	}
	nOids, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nOids; i++ {
		node, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		id, err := r.str()
		if err != nil {
			return nil, err
		}
		if node >= n {
			return nil, fmt.Errorf("storage: oid node %d out of range", node)
		}
		g.SetOID(ssd.NodeID(node), id)
	}
	if root >= n {
		return nil, fmt.Errorf("storage: root %d out of range", root)
	}
	g.SetRoot(ssd.NodeID(root))
	return g, nil
}

// WriteFile encodes g to path.
func WriteFile(path string, g *ssd.Graph) error {
	return os.WriteFile(path, Encode(g), 0o644)
}

// ReadFile decodes a graph from path.
func ReadFile(path string) (*ssd.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// AppendLabel appends the codec's label encoding — kind byte plus payload —
// to buf. It is exported so other on-disk formats (the mutation WAL) share
// one wire representation of labels.
func AppendLabel(buf []byte, l ssd.Label) []byte {
	buf = append(buf, byte(l.Kind()))
	switch l.Kind() {
	case ssd.KindSymbol:
		s, _ := l.Symbol()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case ssd.KindString:
		s, _ := l.Text()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case ssd.KindOID:
		s, _ := l.OIDVal()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case ssd.KindInt:
		v, _ := l.IntVal()
		buf = binary.AppendVarint(buf, v)
	case ssd.KindFloat:
		f, _ := l.FloatVal()
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
		buf = append(buf, tmp[:]...)
	case ssd.KindBool:
		b, _ := l.BoolVal()
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// ReadLabel decodes one AppendLabel-encoded label starting at data[pos],
// returning the label and the position just past it.
func ReadLabel(data []byte, pos int) (ssd.Label, int, error) {
	r := &reader{data: data, pos: pos}
	l, err := r.label()
	return l, r.pos, err
}

// ReadUvarint decodes one uvarint at data[pos], returning the value and the
// position just past it. Exported, with ReadString, so other on-disk
// formats (the mutation WAL) share this codec's bounds-checked readers.
func ReadUvarint(data []byte, pos int) (uint64, int, error) {
	r := &reader{data: data, pos: pos}
	v, err := r.uvarint()
	return v, r.pos, err
}

// ReadString decodes one length-prefixed string at data[pos], returning the
// string and the position just past it.
func ReadString(data []byte, pos int) (string, int, error) {
	r := &reader{data: data, pos: pos}
	s, err := r.str()
	return s, r.pos, err
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	r.pos += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.data) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) label() (ssd.Label, error) {
	if r.pos >= len(r.data) {
		return ssd.Label{}, io.ErrUnexpectedEOF
	}
	kind := ssd.Kind(r.data[r.pos])
	r.pos++
	switch kind {
	case ssd.KindSymbol:
		s, err := r.str()
		return ssd.Sym(s), err
	case ssd.KindString:
		s, err := r.str()
		return ssd.Str(s), err
	case ssd.KindOID:
		s, err := r.str()
		return ssd.OID(s), err
	case ssd.KindInt:
		v, err := r.varint()
		return ssd.Int(v), err
	case ssd.KindFloat:
		if r.pos+8 > len(r.data) {
			return ssd.Label{}, io.ErrUnexpectedEOF
		}
		bits := binary.LittleEndian.Uint64(r.data[r.pos:])
		r.pos += 8
		return ssd.Float(math.Float64frombits(bits)), nil
	case ssd.KindBool:
		if r.pos >= len(r.data) {
			return ssd.Label{}, io.ErrUnexpectedEOF
		}
		b := r.data[r.pos] != 0
		r.pos++
		return ssd.Bool(b), nil
	default:
		return ssd.Label{}, fmt.Errorf("storage: unknown label kind %d", kind)
	}
}
