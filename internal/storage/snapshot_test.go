package storage

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/ssd"
	"repro/internal/stats"
)

func snapGraph(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`{movie: {title: "Casablanca", year: 1942, cast: {actor: "Bogart", actor: "Bergman"}},
	                      movie: {title: "Sleeper", year: 1973},
	                      series: {title: "Decalogue", rating: 9.1, complete: true}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fullSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	g := snapGraph(t)
	return &Snapshot{
		Graph:     g,
		Labels:    index.BuildLabelIndex(g),
		Values:    index.BuildValueIndex(g),
		Guide:     dataguide.MustBuild(g),
		Stats:     stats.Build(g),
		WALBaseFP: 0xDEADBEEF,
		Applied:   7,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := fullSnapshot(t)
	data := EncodeSnapshot(s)
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SelfFP != s.SelfFP || got.WALBaseFP != 0xDEADBEEF || got.Applied != 7 {
		t.Fatalf("meta mismatch: got fp=%08x base=%08x applied=%d", got.SelfFP, got.WALBaseFP, got.Applied)
	}
	if want, have := ssd.FormatRoot(s.Graph), ssd.FormatRoot(got.Graph); want != have {
		t.Fatalf("graph mismatch:\nwant %s\ngot  %s", want, have)
	}
	// The restored indexes must answer identically: compare dumps.
	if !reflect.DeepEqual(s.Labels.Dump(), got.Labels.Dump()) {
		t.Fatal("label index dump mismatch after round trip")
	}
	if !reflect.DeepEqual(s.Values.Dump(), got.Values.Dump()) {
		t.Fatal("value index dump mismatch after round trip")
	}
	if want, have := ssd.FormatRoot(s.Guide.G), ssd.FormatRoot(got.Guide.G); want != have {
		t.Fatalf("guide graph mismatch:\nwant %s\ngot  %s", want, have)
	}
	if !reflect.DeepEqual(s.Guide.Extent, got.Guide.Extent) {
		t.Fatal("guide extents mismatch after round trip")
	}
	if got.Stats == nil || !reflect.DeepEqual(s.Stats.Dump(), got.Stats.Dump()) {
		t.Fatal("stats dump mismatch after round trip")
	}
}

func TestSnapshotOptionalSections(t *testing.T) {
	g := snapGraph(t)
	s := &Snapshot{Graph: g}
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels != nil || got.Values != nil || got.Guide != nil || got.Stats != nil {
		t.Fatal("decoded structures for sections that were never written")
	}
	if want, have := ssd.FormatRoot(g), ssd.FormatRoot(got.Graph); want != have {
		t.Fatal("graph mismatch without optional sections")
	}
}

// TestSnapshotSelfFPIsWALFingerprint pins the binding contract: the
// snapshot's fingerprint is exactly the WAL binding fingerprint of its
// graph (crc32 of the SSDG encoding), so core can match logs to snapshots.
func TestSnapshotSelfFPIsWALFingerprint(t *testing.T) {
	g := snapGraph(t)
	s := &Snapshot{Graph: g}
	EncodeSnapshot(s)
	if want := crc32.ChecksumIEEE(Encode(g)); s.SelfFP != want {
		t.Fatalf("SelfFP = %08x, want crc32(Encode(g)) = %08x", s.SelfFP, want)
	}
}

// TestSnapshotCorruption damages the encoded form at every byte position
// and asserts the decoder never accepts the result silently: it either
// errors or — for bytes outside any checked region — still produces a
// graph. Specifically, truncations and payload flips must all error.
func TestSnapshotCorruption(t *testing.T) {
	data := EncodeSnapshot(fullSnapshot(t))

	// Truncation at every prefix length must fail (torn write mid-section).
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	// Flipping any single byte must fail: every region is either framing
	// (checked structurally, including section kind bytes) or payload
	// (checked by CRC).
	for i := 5; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
	}
	// Bad magic and bad version.
	mut := append([]byte(nil), data...)
	mut[0] = 'X'
	if _, err := DecodeSnapshot(mut); err == nil {
		t.Fatal("bad magic accepted")
	}
	mut = append([]byte(nil), data...)
	mut[4] = 99
	if _, err := DecodeSnapshot(mut); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: got %v", err)
	}
}

// TestSnapshotUnknownKind pins the closed-section-set rule per version: a
// correctly framed section whose kind the version does not define is
// rejected, both above the current maximum (kind 7 in a v2 file) and for a
// newer section appearing in an older file (a stats section in a v1 file).
func TestSnapshotUnknownKind(t *testing.T) {
	g := snapGraph(t)

	// v2 image with a well-formed kind-7 section spliced in before the end
	// marker.
	base := &Snapshot{Graph: g}
	data := EncodeSnapshot(base)
	endLen := len(appendSection(nil, secEnd, nil))
	body := data[:len(data)-endLen]
	body = appendSection(body, 7, []byte("future"))
	body = appendSection(body, secEnd, nil)
	if _, err := DecodeSnapshot(body); err == nil || !strings.Contains(err.Error(), "unknown snapshot section") {
		t.Fatalf("kind 7 in v2 image: got %v", err)
	}

	// v1 image containing a stats section: kind 6 was not defined in
	// version 1, so patching the version byte down must make the decoder
	// reject the (individually intact) stats section.
	withStats := EncodeSnapshot(&Snapshot{Graph: g, Stats: stats.Build(g)})
	v1 := append([]byte(nil), withStats...)
	v1[4] = 1
	if _, err := DecodeSnapshot(v1); err == nil || !strings.Contains(err.Error(), "unknown snapshot section") {
		t.Fatalf("stats section in v1 image: got %v", err)
	}
}

// TestSnapshotV1BackCompat: a version-1 image (no stats section) still
// decodes after the version bump, so upgrading the binary never invalidates
// an existing snapshot generation.
func TestSnapshotV1BackCompat(t *testing.T) {
	s := &Snapshot{
		Graph:  snapGraph(t),
		Labels: index.BuildLabelIndex(snapGraph(t)),
	}
	data := EncodeSnapshot(s)
	v1 := append([]byte(nil), data...)
	v1[4] = 1 // sections meta/graph/labels are all defined in version 1
	got, err := DecodeSnapshot(v1)
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if want, have := ssd.FormatRoot(s.Graph), ssd.FormatRoot(got.Graph); want != have {
		t.Fatal("graph mismatch decoding v1 image")
	}
	if got.Stats != nil {
		t.Fatal("stats materialized from a v1 image that cannot contain them")
	}
}

// TestSnapshotStatsCorruption damages the stats payload in ways that keep
// the CRC frame valid (recomputing the checksum) and asserts the structural
// validation in stats.FromDump still rejects the section.
func TestSnapshotStatsCorruption(t *testing.T) {
	g := snapGraph(t)
	payload := encodeStats(stats.Build(g))

	// Recompute a valid frame around a damaged payload: bump the edge total
	// (first uvarint) without touching per-label counts.
	bad := append([]byte(nil), payload...)
	bad[0]++ // edge counts here are small, so byte 0 is the whole uvarint
	img := append([]byte(snapMagic), snapVersion)
	meta := encodeMetaFor(g)
	img = appendSection(img, secMeta, meta)
	img = appendSection(img, secGraph, Encode(g))
	img = appendSection(img, secStats, bad)
	img = appendSection(img, secEnd, nil)
	if _, err := DecodeSnapshot(img); err == nil {
		t.Fatal("inconsistent stats section accepted")
	}
}

// encodeMetaFor builds a meta section binding to g, mirroring
// EncodeSnapshot's layout for tests that assemble images by hand.
func encodeMetaFor(g *ssd.Graph) []byte {
	fp := crc32.ChecksumIEEE(Encode(g))
	meta := make([]byte, 0, 12)
	meta = appendUint32LE(meta, fp)
	meta = appendUint32LE(meta, 0)
	return append(meta, 0) // applied = 0 as a one-byte uvarint
}

func appendUint32LE(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func TestWriteSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap-1.ssds")
	s := fullSnapshot(t)
	n, err := WriteSnapshotFile(path, s)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Fatalf("reported %d bytes, file has %d", n, fi.Size())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SelfFP != s.SelfFP {
		t.Fatal("file round trip changed fingerprint")
	}
}

// TestRestoredGuideSupportsApplyDelta exercises the recovery contract of
// dataguide.Restore: a restored guide continues the incremental
// maintenance chain (its intern table was rebuilt from the extents).
func TestRestoredGuideSupportsApplyDelta(t *testing.T) {
	g := snapGraph(t)
	s := &Snapshot{Graph: g, Guide: dataguide.MustBuild(g)}
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the decoded graph: add one edge at the root, then maintain.
	g2 := got.Graph.Clone()
	n := g2.AddNode()
	g2.AddEdge(g2.Root(), ssd.Sym("short"), n)
	g2.AddEdge(n, ssd.Str("film"), g2.AddNode())
	ng, ok := got.Guide.ApplyDelta(g2, ssd.Delta{Added: []ssd.EdgeRec{
		{From: g2.Root(), Label: ssd.Sym("short"), To: n},
		{From: n, Label: ssd.Str("film"), To: ssd.NodeID(g2.NumNodes() - 1)},
	}}, 0)
	if !ok {
		t.Fatal("ApplyDelta declined on a restored guide")
	}
	want := dataguide.MustBuild(g2)
	if wantS, haveS := ssd.FormatRoot(want.G), ssd.FormatRoot(ng.G); wantS != haveS {
		t.Fatalf("maintained guide differs from rebuilt guide:\nwant %s\ngot  %s", wantS, haveS)
	}
}
