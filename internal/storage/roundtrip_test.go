package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ssd"
)

// randLabel draws a label covering every payload kind the codec handles.
func randLabel(rng *rand.Rand) ssd.Label {
	switch rng.Intn(6) {
	case 0:
		return ssd.Sym(fmt.Sprintf("sym%d", rng.Intn(8)))
	case 1:
		return ssd.Str(fmt.Sprintf("str %q %d", "payload", rng.Intn(8)))
	case 2:
		return ssd.Int(rng.Int63n(1<<40) - 1<<39) // exercise multi-byte varints and negatives
	case 3:
		return ssd.Float(rng.NormFloat64() * 1e6)
	case 4:
		return ssd.Bool(rng.Intn(2) == 0)
	default:
		return ssd.OID(fmt.Sprintf("&o%d", rng.Intn(8)))
	}
}

// randGraph builds a random graph and then mutates it through every write
// primitive, so the encoder sees graphs shaped by the real write path
// (including empty edge lists left by DeleteEdge and OIDs on interior nodes).
func randGraph(rng *rand.Rand) *ssd.Graph {
	g := ssd.New()
	n := 2 + rng.Intn(30)
	g.AddNodes(n)
	for i := 0; i < 4*n; i++ {
		from := ssd.NodeID(rng.Intn(g.NumNodes()))
		to := ssd.NodeID(rng.Intn(g.NumNodes()))
		g.AddEdge(from, randLabel(rng), to)
	}
	for i := 0; i < n/2; i++ {
		g.SetOID(ssd.NodeID(rng.Intn(g.NumNodes())), fmt.Sprintf("&oid%d", rng.Intn(64)))
	}
	// Mutate: deletes, relabels, a root move.
	for i := 0; i < n; i++ {
		v := ssd.NodeID(rng.Intn(g.NumNodes()))
		es := g.Out(v)
		if len(es) == 0 {
			continue
		}
		e := es[rng.Intn(len(es))]
		if rng.Intn(2) == 0 {
			g.DeleteEdge(v, e.Label, e.To)
		} else {
			g.Relabel(v, e.Label, randLabel(rng))
		}
	}
	g.SetRoot(ssd.NodeID(rng.Intn(g.NumNodes())))
	return g
}

// TestCodecRoundTripMutated strengthens TestCodecRoundTripProperty for the
// write path: for randomized graphs mutated through every primitive, encode →
// decode → re-encode must be byte-identical, and the decoded graph must match
// the original node for node (edges, oids, root).
func TestCodecRoundTripMutated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		g := randGraph(rng)
		enc := Encode(g)
		h, err := Decode(enc)
		if err != nil {
			t.Fatalf("iter %d: Decode: %v", iter, err)
		}
		if !bytes.Equal(Encode(h), enc) {
			t.Fatalf("iter %d: re-encode not byte-identical", iter)
		}
		if h.Root() != g.Root() || h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("iter %d: shape mismatch: root %d/%d nodes %d/%d edges %d/%d", iter,
				h.Root(), g.Root(), h.NumNodes(), g.NumNodes(), h.NumEdges(), g.NumEdges())
		}
		for v := 0; v < g.NumNodes(); v++ {
			n := ssd.NodeID(v)
			ge, he := g.Out(n), h.Out(n)
			if len(ge) != len(he) {
				t.Fatalf("iter %d: node %d degree %d/%d", iter, v, len(he), len(ge))
			}
			for i := range ge {
				if ge[i] != he[i] {
					t.Fatalf("iter %d: node %d edge %d: %v != %v", iter, v, i, he[i], ge[i])
				}
			}
			gid, gok := g.OIDOf(n)
			hid, hok := h.OIDOf(n)
			if gok != hok || gid != hid {
				t.Fatalf("iter %d: node %d oid %q,%v != %q,%v", iter, v, hid, hok, gid, gok)
			}
		}
	}
}

// TestLabelCodecRoundTrip pins the exported label codec helpers the WAL
// reuses: every kind round-trips through AppendLabel/ReadLabel.
func TestLabelCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []ssd.Label{
		ssd.Sym(""), ssd.Str(""), ssd.Int(0), ssd.Int(-1), ssd.Float(0),
		ssd.Bool(true), ssd.Bool(false), ssd.OID(""),
	}
	for i := 0; i < 100; i++ {
		labels = append(labels, randLabel(rng))
	}
	var buf []byte
	for _, l := range labels {
		buf = AppendLabel(buf, l)
	}
	pos := 0
	for i, want := range labels {
		got, next, err := ReadLabel(buf, pos)
		if err != nil {
			t.Fatalf("label %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("label %d: %v != %v", i, got, want)
		}
		pos = next
	}
	if pos != len(buf) {
		t.Fatalf("trailing bytes: pos %d len %d", pos, len(buf))
	}
}
