package storage

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bisim"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

func sample(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Entry: #e{Movie: {Title: "Casablanca", Year: 1942, Rating: 8.5,
	                   Classic: true, Self: #e, ID: &obj1{}}}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCodecRoundTrip(t *testing.T) {
	g := sample(t)
	data := Encode(g)
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d vs %d/%d nodes/edges",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if !bisim.Equal(g, back) {
		t.Error("value changed in round trip")
	}
	// OIDs survive.
	found := false
	for v := 0; v < back.NumNodes(); v++ {
		if id, ok := back.OIDOf(ssd.NodeID(v)); ok && id == "obj1" {
			found = true
		}
	}
	if !found {
		t.Error("oid lost in round trip")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ssd.New()
		ids := []ssd.NodeID{g.Root()}
		for i := 0; i < 20; i++ {
			ids = append(ids, g.AddNode())
		}
		labels := []ssd.Label{
			ssd.Sym("a"), ssd.Str("s"), ssd.Int(-42), ssd.Float(2.5),
			ssd.Bool(true), ssd.OID("x"),
		}
		for i := 0; i < 50; i++ {
			g.AddEdge(ids[rng.Intn(len(ids))], labels[rng.Intn(len(labels))], ids[rng.Intn(len(ids))])
		}
		back, err := Decode(Encode(g))
		if err != nil {
			return false
		}
		return back.NumEdges() == g.NumEdges() && bisim.Equal(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SSDG\x02"),         // bad version
		[]byte("SSDG\x01"),         // truncated
		[]byte("SSDG\x01\x00\xff"), // truncated varint
	}
	for _, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("Decode(%q) should fail", data)
		}
	}
	// Corrupt a valid encoding by chopping bytes.
	g := sample(t)
	data := Encode(g)
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := sample(t)
	path := filepath.Join(t.TempDir(), "db.ssdg")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bisim.Equal(g, back) {
		t.Error("file round trip changed value")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestBufferPoolLRU(t *testing.T) {
	bp := NewBufferPool(2)
	bp.Touch(1) // miss
	bp.Touch(2) // miss
	bp.Touch(1) // hit
	bp.Touch(3) // miss, evicts 2 (LRU)
	bp.Touch(1) // hit
	bp.Touch(2) // miss (was evicted)
	s := bp.Stats()
	if s.Hits != 2 || s.Misses != 4 {
		t.Errorf("stats = %+v, want 2 hits 4 misses", s)
	}
	bp.Reset()
	if bp.Stats() != (PoolStats{}) {
		t.Error("reset failed")
	}
}

func chainGraph(n int) *ssd.Graph {
	g := ssd.New()
	cur := g.Root()
	for i := 0; i < n; i++ {
		cur = g.AddLeaf(cur, ssd.Sym("next"))
	}
	return g
}

func TestPagedEvalMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	for i := 0; i < 50; i++ {
		ids = append(ids, g.AddNode())
	}
	for i := 0; i < 140; i++ {
		g.AddEdge(ids[rng.Intn(len(ids))], ssd.Sym([]string{"a", "b"}[rng.Intn(2)]), ids[rng.Intn(len(ids))])
	}
	for _, c := range []Clustering{ClusterDFS, ClusterBFS, ClusterRandom} {
		pg := NewPaged(g, c, 8, 4, 1)
		for _, src := range []string{"a*", "(a|b)._", "_*"} {
			want := pathexpr.MustCompile(src).Eval(g, g.Root())
			got := pg.EvalPath(pathexpr.MustCompile(src))
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s clustering %s: %v != %v", c, src, got, want)
			}
		}
	}
}

func TestClusteringLocality(t *testing.T) {
	// On a deep chain with a small pool, DFS clustering faults once per
	// page; random placement faults nearly once per node.
	g := chainGraph(2000)
	dfs := NewPaged(g, ClusterDFS, 50, 4, 1)
	rnd := NewPaged(g, ClusterRandom, 50, 4, 1)
	dfs.ScanDFS()
	rnd.ScanDFS()
	dm := dfs.Pool.Stats().Misses
	rm := rnd.Pool.Stats().Misses
	if dm*5 >= rm {
		t.Errorf("DFS clustering should fault ≫ less: dfs=%d random=%d", dm, rm)
	}
}

func TestScanDFSVisitsAll(t *testing.T) {
	g := chainGraph(100)
	pg := NewPaged(g, ClusterDFS, 10, 100, 0)
	if got := pg.ScanDFS(); got != 101 {
		t.Errorf("visited = %d, want 101", got)
	}
}

func TestNumPages(t *testing.T) {
	g := chainGraph(99) // 100 nodes
	pg := NewPaged(g, ClusterDFS, 10, 10, 0)
	if pg.NumPages() != 10 {
		t.Errorf("pages = %d, want 10", pg.NumPages())
	}
}
