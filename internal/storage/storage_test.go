package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bisim"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

func sample(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Entry: #e{Movie: {Title: "Casablanca", Year: 1942, Rating: 8.5,
	                   Classic: true, Self: #e, ID: &obj1{}}}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCodecRoundTrip(t *testing.T) {
	g := sample(t)
	data := Encode(g)
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d vs %d/%d nodes/edges",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if !bisim.Equal(g, back) {
		t.Error("value changed in round trip")
	}
	// OIDs survive.
	found := false
	for v := 0; v < back.NumNodes(); v++ {
		if id, ok := back.OIDOf(ssd.NodeID(v)); ok && id == "obj1" {
			found = true
		}
	}
	if !found {
		t.Error("oid lost in round trip")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ssd.New()
		ids := []ssd.NodeID{g.Root()}
		for i := 0; i < 20; i++ {
			ids = append(ids, g.AddNode())
		}
		labels := []ssd.Label{
			ssd.Sym("a"), ssd.Str("s"), ssd.Int(-42), ssd.Float(2.5),
			ssd.Bool(true), ssd.OID("x"),
		}
		for i := 0; i < 50; i++ {
			g.AddEdge(ids[rng.Intn(len(ids))], labels[rng.Intn(len(labels))], ids[rng.Intn(len(ids))])
		}
		back, err := Decode(Encode(g))
		if err != nil {
			return false
		}
		return back.NumEdges() == g.NumEdges() && bisim.Equal(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SSDG\x02"),         // bad version
		[]byte("SSDG\x01"),         // truncated
		[]byte("SSDG\x01\x00\xff"), // truncated varint
	}
	for _, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("Decode(%q) should fail", data)
		}
	}
	// Corrupt a valid encoding by chopping bytes.
	g := sample(t)
	data := Encode(g)
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := sample(t)
	path := filepath.Join(t.TempDir(), "db.ssdg")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bisim.Equal(g, back) {
		t.Error("file round trip changed value")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func chainGraph(n int) *ssd.Graph {
	g := ssd.New()
	cur := g.Root()
	for i := 0; i < n; i++ {
		cur = g.AddLeaf(cur, ssd.Sym("next"))
	}
	return g
}

// openPaged writes g as a page file and opens it, cleaning up at test end.
func openPaged(t *testing.T, g *ssd.Graph, c Clustering, pageSize int, poolBytes int64) *PageStore {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.ssdp")
	if err := WritePageFile(path, g, c, pageSize); err != nil {
		t.Fatal(err)
	}
	ps, err := OpenPageFile(path, poolBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return ps
}

func randomGraph(t *testing.T, seed int64) *ssd.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	for i := 0; i < 50; i++ {
		ids = append(ids, g.AddNode())
	}
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Str("s"), ssd.Int(7), ssd.Float(2.5), ssd.Bool(true)}
	for i := 0; i < 140; i++ {
		g.AddEdge(ids[rng.Intn(len(ids))], labels[rng.Intn(len(labels))], ids[rng.Intn(len(ids))])
	}
	return g
}

func TestPageFileRoundTrip(t *testing.T) {
	g := randomGraph(t, 5)
	for _, c := range []Clustering{ClusterDFS, ClusterBFS, ClusterRandom} {
		for _, pageSize := range []int{MinPageSize, 256, DefaultPageSize} {
			ps := openPaged(t, g, c, pageSize, 0)
			if ps.Root() != g.Root() || ps.NumNodes() != g.NumNodes() {
				t.Fatalf("%s/%d: root/nodes = %d/%d, want %d/%d",
					c, pageSize, ps.Root(), ps.NumNodes(), g.Root(), g.NumNodes())
			}
			for v := 0; v < g.NumNodes(); v++ {
				n := ssd.NodeID(v)
				if !reflect.DeepEqual(ps.Out(n), g.Out(n)) {
					t.Fatalf("%s/%d: Out(%d) = %v, want %v", c, pageSize, n, ps.Out(n), g.Out(n))
				}
				if ps.OutDegree(n) != g.OutDegree(n) {
					t.Fatalf("%s/%d: OutDegree(%d) mismatch", c, pageSize, n)
				}
				if !reflect.DeepEqual(ps.Labels(n), g.Labels(n)) {
					t.Fatalf("%s/%d: Labels(%d) mismatch", c, pageSize, n)
				}
				if !reflect.DeepEqual(ps.Lookup(n, ssd.Sym("a")), g.Lookup(n, ssd.Sym("a"))) {
					t.Fatalf("%s/%d: Lookup(%d) mismatch", c, pageSize, n)
				}
			}
		}
	}
}

func TestPagedEvalMatchesInMemory(t *testing.T) {
	g := randomGraph(t, 5)
	for _, c := range []Clustering{ClusterDFS, ClusterBFS, ClusterRandom} {
		ps := openPaged(t, g, c, 128, 512)
		for _, src := range []string{"a*", "(a|b)._", "_*"} {
			want := pathexpr.MustCompile(src).Eval(g, g.Root())
			got := pathexpr.MustCompile(src).Eval(ps, ps.Root())
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s clustering %s: %v != %v", c, src, got, want)
			}
		}
	}
}

func TestClusteringLocality(t *testing.T) {
	// On a deep chain with a small pool, DFS clustering faults once per
	// page; random placement faults nearly once per node.
	g := chainGraph(2000)
	dfs := openPaged(t, g, ClusterDFS, 256, 4*256)
	rnd := openPaged(t, g, ClusterRandom, 256, 4*256)
	ssd.ReachableFrom(dfs, dfs.Root())
	ssd.ReachableFrom(rnd, rnd.Root())
	dm := dfs.Stats().Misses
	rm := rnd.Stats().Misses
	if dm*5 >= rm {
		t.Errorf("DFS clustering should fault ≫ less: dfs=%d random=%d", dm, rm)
	}
}

func TestPageStoreScanVisitsAll(t *testing.T) {
	g := chainGraph(100)
	ps := openPaged(t, g, ClusterDFS, 128, 0)
	seen := ssd.ReachableFrom(ps, ps.Root())
	visited := 0
	for _, ok := range seen {
		if ok {
			visited++
		}
	}
	if visited != 101 {
		t.Errorf("visited = %d, want 101", visited)
	}
}

func TestPageStoreEvictionBudget(t *testing.T) {
	g := chainGraph(500)
	ps := openPaged(t, g, ClusterDFS, 128, 2*128) // 2-page pool
	ssd.ReachableFrom(ps, ps.Root())
	s := ps.Stats()
	if s.Evictions == 0 {
		t.Error("tiny pool scan should evict")
	}
	if s.ResidentBytes > 2*128 {
		t.Errorf("resident %d bytes exceeds 2-page budget with nothing pinned", s.ResidentBytes)
	}
	if s.PinnedPages != 0 {
		t.Errorf("pinned = %d after scan, want 0", s.PinnedPages)
	}
}

func TestPageStoreAccessorPins(t *testing.T) {
	g := chainGraph(500)
	ps := openPaged(t, g, ClusterDFS, 128, 2*128)
	acc := ps.Accessor()
	cur := ps.Root()
	for {
		es := acc.Out(cur)
		if len(es) == 0 {
			break
		}
		cur = es[0].To
	}
	if got := ps.Stats().PinnedPages; got == 0 {
		t.Error("accessor should hold pinned pages mid-iteration")
	}
	acc.Release()
	acc.Release() // idempotent
	if got := ps.Stats().PinnedPages; got != 0 {
		t.Errorf("pinned = %d after Release, want 0", got)
	}
	if s := ps.Stats(); s.ResidentBytes > 2*128 {
		t.Errorf("resident %d bytes exceeds budget after release", s.ResidentBytes)
	}
}

// Regression: layoutOrder (and hence WritePageFile) must not index
// seen[g.Root()] on a graph with zero nodes.
func TestLayoutOrderEmptyGraph(t *testing.T) {
	var g ssd.Graph // zero value: no nodes at all
	for _, c := range []Clustering{ClusterDFS, ClusterBFS, ClusterRandom} {
		if got := layoutOrder(&g, c, 1); len(got) != 0 {
			t.Errorf("%s: layoutOrder on empty graph = %v, want empty", c, got)
		}
	}
	if err := WritePageFile(filepath.Join(t.TempDir(), "p.ssdp"), &g, ClusterDFS, 128); err == nil {
		t.Error("WritePageFile on empty graph should error, not panic")
	}
}

func TestOpenPageFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenPageFile(filepath.Join(dir, "missing"), 0); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("XXXXnot a page file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPageFile(bad, 0); err == nil {
		t.Error("bad magic should error")
	}

	g := chainGraph(50)
	path := filepath.Join(dir, "pages.ssdp")
	if err := WritePageFile(path, g, ClusterDFS, 128); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation: the size check must reject a torn file.
	if err := os.WriteFile(path, data[:len(data)-64], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPageFile(path, 0); err == nil {
		t.Error("truncated page file should error")
	}
	// Header corruption: flip a directory byte.
	corrupt := append([]byte(nil), data...)
	corrupt[fileHdrLen+1] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPageFile(path, 0); err == nil {
		t.Error("corrupted directory should fail the checksum")
	}
}
