package decomp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

func randGraph(seed int64, nodes, edges int) *ssd.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	for i := 1; i < nodes; i++ {
		ids = append(ids, g.AddNode())
	}
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Sym("c"), ssd.Str("v"), ssd.Int(7)}
	for i := 0; i < edges; i++ {
		g.AddEdge(ids[rng.Intn(len(ids))], labels[rng.Intn(len(labels))], ids[rng.Intn(len(ids))])
	}
	return g
}

var testExprs = []string{
	"a.b",
	"(a|b)*",
	"_*.isint",
	"a.(!b)*.c",
	"_*",
}

func TestDistributedMatchesCentralized(t *testing.T) {
	g := randGraph(42, 60, 160)
	for _, k := range []int{1, 2, 4, 7} {
		for _, partFn := range []func(*ssd.Graph, int) *Partition{PartitionHash, PartitionBFS} {
			p := partFn(g, k)
			for _, src := range testExprs {
				want := pathexpr.MustCompile(src).Eval(g, g.Root())
				gotSeq := Eval(g, pathexpr.MustCompile(src), p, false)
				gotPar := Eval(g, pathexpr.MustCompile(src), p, true)
				if !reflect.DeepEqual(want, gotSeq) {
					t.Errorf("k=%d %s: sequential %v, want %v", k, src, gotSeq, want)
				}
				if !reflect.DeepEqual(want, gotPar) {
					t.Errorf("k=%d %s: parallel %v, want %v", k, src, gotPar, want)
				}
			}
		}
	}
}

func TestSingleSiteIsCentralized(t *testing.T) {
	g := randGraph(7, 30, 80)
	p := PartitionHash(g, 1)
	if p.CrossEdges(g) != 0 {
		t.Fatal("single site cannot have cross edges")
	}
	for _, src := range testExprs {
		want := pathexpr.MustCompile(src).Eval(g, g.Root())
		got := Eval(g, pathexpr.MustCompile(src), p, false)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: %v != %v", src, got, want)
		}
	}
}

func TestPartitionShapes(t *testing.T) {
	g := randGraph(9, 40, 100)
	hash := PartitionHash(g, 4)
	bfs := PartitionBFS(g, 4)
	if len(hash.Site) != g.NumNodes() || len(bfs.Site) != g.NumNodes() {
		t.Fatal("partition size wrong")
	}
	for _, p := range []*Partition{hash, bfs} {
		for _, s := range p.Site {
			if s < 0 || s >= 4 {
				t.Fatalf("site %d out of range", s)
			}
		}
	}
	// BFS partitioning should produce no more cross edges than round-robin
	// on a locally-generated graph... this is a heuristic, so only sanity
	// check both are positive for k>1 on a connected-ish graph.
	if hash.CrossEdges(g) == 0 {
		t.Error("hash partition of 40 nodes into 4 sites should cross")
	}
}

func TestCyclicAcrossSites(t *testing.T) {
	// A cycle that crosses sites: root -> a -> b -> root, nodes forced onto
	// different sites by round-robin.
	g := ssd.MustParse(`#r{a: {b: {c: #r}, v: 1}}`)
	p := PartitionHash(g, 2)
	want := pathexpr.MustCompile("(a.b.c)*.a.v").Eval(g, g.Root())
	got := Eval(g, pathexpr.MustCompile("(a.b.c)*.a.v"), p, true)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("cycle across sites: %v, want %v", got, want)
	}
	if len(got) != 1 {
		t.Errorf("hits = %d, want 1", len(got))
	}
}

func TestEmptyResult(t *testing.T) {
	g := randGraph(3, 20, 50)
	p := PartitionBFS(g, 3)
	got := Eval(g, pathexpr.MustCompile("zz.yy"), p, true)
	if len(got) != 0 {
		t.Errorf("expected empty, got %v", got)
	}
}

func TestDistributedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 25, 60)
		k := int(seed%4) + 1
		if k < 1 {
			k = 1
		}
		p := PartitionHash(g, k)
		for _, src := range []string{"(a|b)+", "_._._"} {
			want := pathexpr.MustCompile(src).Eval(g, g.Root())
			got := Eval(g, pathexpr.MustCompile(src), p, true)
			if !reflect.DeepEqual(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
