// Package decomp implements query decomposition for regular path queries
// over a distributed graph, after Suciu's VLDB '96 algorithm the paper
// cites in §4: "an analysis of the query, combined with some segmentation
// of the graph into local sites, can be used to decompose a query into
// independent, parallel sub-queries".
//
// The graph is segmented into sites. Each site computes, independently and
// in parallel, a partial product-automaton evaluation: for every entry
// point of the site (the root, or the target of a cross-site edge) and
// every automaton state, which result nodes are accepted locally and which
// (cross-edge target, state) continuations leave the site. A cheap global
// assembly phase then stitches the partial answers together. The number of
// communication "rounds" is one — each site's work never depends on another
// site's answers — which is the property the original algorithm optimizes
// for.
package decomp

import (
	"sort"
	"sync"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Partition assigns every node to one of NumSites sites.
type Partition struct {
	Site     []int
	NumSites int
}

// PartitionHash spreads nodes round-robin — a worst case for locality, with
// many cross edges.
func PartitionHash(g *ssd.Graph, k int) *Partition {
	p := &Partition{Site: make([]int, g.NumNodes()), NumSites: k}
	for v := range p.Site {
		p.Site[v] = v % k
	}
	return p
}

// PartitionBFS assigns contiguous BFS regions of roughly equal size — the
// locality-preserving segmentation a real distribution would use.
func PartitionBFS(g *ssd.Graph, k int) *Partition {
	p := &Partition{Site: make([]int, g.NumNodes()), NumSites: k}
	per := (g.NumNodes() + k - 1) / k
	seen := make([]bool, g.NumNodes())
	assigned := 0
	site := 0
	var bfs func(start ssd.NodeID)
	bfs = func(start ssd.NodeID) {
		queue := []ssd.NodeID{start}
		seen[start] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			p.Site[n] = site
			assigned++
			if assigned%per == 0 && site < k-1 {
				site++
			}
			for _, e := range g.Out(n) {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	bfs(g.Root())
	for v := 0; v < g.NumNodes(); v++ {
		if !seen[v] {
			bfs(ssd.NodeID(v))
		}
	}
	return p
}

// CrossEdges counts edges whose endpoints live on different sites.
func (p *Partition) CrossEdges(g *ssd.Graph) int {
	n := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			if p.Site[v] != p.Site[e.To] {
				n++
			}
		}
	}
	return n
}

// cont is a continuation leaving a site: re-enter the global search at
// (node, state).
type cont struct {
	node  ssd.NodeID
	state int
}

// partial is one site's answer for one (entry, state) pair.
type partial struct {
	results []ssd.NodeID
	conts   []cont
}

// siteAnswers maps (entry node, state) to the partial answer.
type siteAnswers map[cont]partial

// Eval evaluates a compiled path query over the partitioned graph. When
// parallel is true, site computations run concurrently (one goroutine per
// site); the assembly phase is sequential either way. The result equals
// au.Eval(g, g.Root()) — tests enforce this.
func Eval(g *ssd.Graph, au *pathexpr.Automaton, p *Partition, parallel bool) []ssd.NodeID {
	entries := entryPoints(g, p)
	answers := make([]siteAnswers, p.NumSites)
	if parallel {
		var wg sync.WaitGroup
		for s := 0; s < p.NumSites; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				answers[s] = evalSite(g, au, p, s, entries[s])
			}(s)
		}
		wg.Wait()
	} else {
		for s := 0; s < p.NumSites; s++ {
			answers[s] = evalSite(g, au, p, s, entries[s])
		}
	}

	// Global assembly: BFS over continuations.
	resultSet := map[ssd.NodeID]bool{}
	seen := map[cont]bool{}
	queue := []cont{{g.Root(), au.Start()}}
	seen[queue[0]] = true
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ans, ok := answers[p.Site[c.node]][c]
		if !ok {
			continue
		}
		for _, r := range ans.results {
			resultSet[r] = true
		}
		for _, nc := range ans.conts {
			if !seen[nc] {
				seen[nc] = true
				queue = append(queue, nc)
			}
		}
	}
	out := make([]ssd.NodeID, 0, len(resultSet))
	for n := range resultSet {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

// entryPoints returns, per site, the nodes at which the global search can
// enter: the root and every target of a cross-site edge.
func entryPoints(g *ssd.Graph, p *Partition) [][]ssd.NodeID {
	entries := make([][]ssd.NodeID, p.NumSites)
	isEntry := make([]bool, g.NumNodes())
	add := func(n ssd.NodeID) {
		if !isEntry[n] {
			isEntry[n] = true
			entries[p.Site[n]] = append(entries[p.Site[n]], n)
		}
	}
	add(g.Root())
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			if p.Site[v] != p.Site[e.To] {
				add(e.To)
			}
		}
	}
	return entries
}

// evalSite computes the partial answers of one site for every (entry,
// state) pair. The computation touches only edges inside the site plus the
// cross edges leaving it, so sites are independent.
func evalSite(g *ssd.Graph, au *pathexpr.Automaton, p *Partition, site int, entries []ssd.NodeID) siteAnswers {
	answers := siteAnswers{}
	S := au.NumStates()
	for _, entry := range entries {
		for q := 0; q < S; q++ {
			answers[cont{entry, q}] = evalSiteFrom(g, au, p, site, entry, q)
		}
	}
	return answers
}

func evalSiteFrom(g *ssd.Graph, au *pathexpr.Automaton, p *Partition, site int, entry ssd.NodeID, q0 int) partial {
	var pt partial
	type item struct {
		node  ssd.NodeID
		state int
	}
	seen := map[item]bool{}
	var queue []item
	push := func(n ssd.NodeID, q int) {
		for _, c := range au.Closure(q) {
			it := item{n, c}
			if !seen[it] {
				seen[it] = true
				queue = append(queue, it)
			}
		}
	}
	push(entry, q0)
	resultSeen := map[ssd.NodeID]bool{}
	contSeen := map[cont]bool{}
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if it.state == au.Accept() && !resultSeen[it.node] {
			resultSeen[it.node] = true
			pt.results = append(pt.results, it.node)
		}
		for _, arc := range au.Arcs(it.state) {
			for _, e := range g.Out(it.node) {
				if !arc.Pred.Match(e.Label) {
					continue
				}
				if p.Site[e.To] == site {
					push(e.To, arc.To)
					continue
				}
				c := cont{e.To, arc.To}
				if !contSeen[c] {
					contSeen[c] = true
					pt.conts = append(pt.conts, c)
				}
			}
		}
	}
	return pt
}

func sortNodes(ns []ssd.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
