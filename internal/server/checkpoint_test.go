package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// newDurableServer builds a Server over a directory-backed database.
func newDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *core.Database, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := core.OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.CloseWAL() })
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, db, dir
}

func postMutate(t *testing.T, url, script string) {
	t.Helper()
	resp, err := http.Post(url+"/mutate", "text/plain", strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d", resp.StatusCode)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	_, ts, db, _ := newDurableServer(t, Config{})
	postMutate(t, ts.URL, `addnode; addedge 0 Tag $0`)
	before := db.WALSize()

	resp, err := http.Post(ts.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}
	var cr checkpointResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Seq != 1 || cr.Truncated != 1 || cr.Bytes == 0 {
		t.Fatalf("checkpoint response %+v, want seq 1 folding 1 batch", cr)
	}
	if cr.WALBytes >= before {
		t.Fatalf("WAL did not shrink: %d -> %d bytes", before, cr.WALBytes)
	}
}

func TestCheckpointEndpointNonDurable(t *testing.T) {
	_, ts, _ := newTestServer(t, 50, 0)
	resp, err := http.Post(ts.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d on a non-durable database, want 409", resp.StatusCode)
	}
}

func TestHealthzReportsDurability(t *testing.T) {
	_, ts, _, _ := newDurableServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["durable"] != true {
		t.Fatalf("healthz durable = %v, want true", h["durable"])
	}
	if _, ok := h["wal_bytes"].(float64); !ok {
		t.Fatalf("healthz wal_bytes missing: %v", h)
	}
}

// TestBackgroundCheckpointerInterval serves a mutation and waits for the
// timer-triggered checkpointer to fold it into a generation: the WAL
// shrinks back to just its header frame.
func TestBackgroundCheckpointerInterval(t *testing.T) {
	srv, ts, db, _ := newDurableServer(t, Config{CheckpointInterval: 20 * time.Millisecond})
	postMutate(t, ts.URL, `addnode; addedge 0 Tag $0`)
	deadline := time.Now().Add(5 * time.Second)
	for db.WALSize() > 64 {
		if time.Now().After(deadline) {
			t.Fatalf("no background checkpoint after 5s (wal %d bytes)", db.WALSize())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundCheckpointerSizeThreshold checkpoints when the WAL grows
// past the byte threshold, long before the hour-long timer would fire.
func TestBackgroundCheckpointerSizeThreshold(t *testing.T) {
	srv, ts, db, _ := newDurableServer(t, Config{
		CheckpointInterval: time.Hour,
		CheckpointMaxWAL:   256,
		pollOverride:       5 * time.Millisecond,
	})
	for i := 0; i < 8; i++ {
		postMutate(t, ts.URL, fmt.Sprintf("addnode; addedge 0 %d $0", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.WALSize() > 256 {
		if time.Now().After(deadline) {
			t.Fatalf("no size-triggered checkpoint after 5s (wal %d bytes)", db.WALSize())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
