package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// checkPromExposition validates Prometheus text-format invariants over a
// scrape: every sample is preceded by its family's # HELP and # TYPE lines,
// histogram buckets are cumulative, and the +Inf bucket equals _count.
func checkPromExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{} // family -> TYPE
	bucketPrev := map[string]float64{}
	infBucket := map[string]float64{}
	countVal := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[f[2]]; dup {
				t.Fatalf("duplicate TYPE line for family %s", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typed[base] == "histogram" {
				family = base
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q before its # TYPE line", line)
		}
		if typed[family] == "histogram" {
			// Series identity for the cumulative checks: family plus its
			// labels with le stripped, so each labeled histogram (e.g. one
			// per endpoint) is validated on its own.
			labelPart := ""
			if i := strings.IndexByte(series, '{'); i >= 0 {
				labelPart = strings.TrimSuffix(series[i+1:], "}")
			}
			var kept []string
			for _, l := range strings.Split(labelPart, ",") {
				if l != "" && !strings.HasPrefix(l, "le=") {
					kept = append(kept, l)
				}
			}
			key := family + "{" + strings.Join(kept, ",") + "}"
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if val < bucketPrev[key] {
					t.Fatalf("non-cumulative bucket in %q", line)
				}
				bucketPrev[key] = val
				if strings.Contains(series, `le="+Inf"`) {
					infBucket[key] = val
				}
			case strings.HasSuffix(name, "_count"):
				countVal[key] = val
			}
		}
	}
	for fam, c := range countVal {
		if infBucket[fam] != c {
			t.Fatalf("family %s: +Inf bucket %v != _count %v", fam, infBucket[fam], c)
		}
	}
}

// TestMetricsScrapeMidStream scrapes /metrics while a /query response is
// still streaming and asserts the exposition is valid and covers the
// query, WAL/checkpoint, statement-cache and HTTP families.
func TestMetricsScrapeMidStream(t *testing.T) {
	_, ts, _ := newTestServer(t, 500, 2)

	// Start a query and read just the first row, leaving the stream open.
	const q = `select {Title: T} from DB.Entry.Movie M, M.Title T`
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, q)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first streamed row: %v", err)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	checkPromExposition(t, body)
	for _, family := range []string{
		"ssd_query_duration_seconds",
		"ssd_query_rows_total",
		"ssd_stmt_cache_hits_total",
		"ssd_checkpoint_duration_seconds",
		"ssd_wal_bytes",
		"ssd_http_requests_total",
		`ssd_http_in_flight{endpoint="query"}`,
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("scrape missing %s:\n%s", family, body)
		}
	}

	// Drain the rest of the stream; it must still terminate cleanly.
	if _, err := io.Copy(io.Discard, br); err != nil {
		t.Fatal(err)
	}

	// JSON encoding serves the same snapshot.
	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var js struct {
		Metrics []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if len(js.Metrics) == 0 {
		t.Fatal("JSON snapshot has no metrics")
	}
}

// TestQueryTrace: ?trace=1 appends the operator trace to the terminal
// status line, with per-atom row counts and timings.
func TestQueryTrace(t *testing.T) {
	_, ts, _ := newTestServer(t, 200, 0)
	const q = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`
	body := fmt.Sprintf(`{"query": %q, "params": {"who": "\"Allen\""}}`, q)

	resp, err := http.Post(ts.URL+"/query?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rows, status := decodeStream(t, resp.Body)
	if status.Error != "" || !status.Done {
		t.Fatalf("status = %+v", status)
	}
	tr := status.Trace
	if tr == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if tr.Lang != "query" {
		t.Fatalf("trace lang = %q", tr.Lang)
	}
	if tr.Rows != int64(len(rows)) {
		t.Fatalf("trace rows = %d, streamed %d", tr.Rows, len(rows))
	}
	if len(tr.Atoms) == 0 {
		t.Fatal("trace has no atom spans")
	}
	var atomRows int64
	for _, a := range tr.Atoms {
		if a.Op == "" {
			t.Fatalf("atom with empty op: %+v", a)
		}
		atomRows += a.Rows
	}
	if atomRows == 0 {
		t.Fatalf("all atom row counts zero: %+v", tr.Atoms)
	}

	// The second run hits the statement cache and the plan pool.
	resp2, err := http.Post(ts.URL+"/query?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	_, status2 := decodeStream(t, resp2.Body)
	if status2.Trace == nil || !status2.Trace.PlanPooled {
		t.Fatalf("second run should report a pooled plan: %+v", status2.Trace)
	}

	// Without ?trace=1 the status line stays trace-free.
	_, plain := postQuery(t, ts.URL, body)
	if plain.Trace != nil {
		t.Fatalf("untraced run leaked a trace: %+v", plain.Trace)
	}
}

// TestParallelQueryTrace: a parallel execution reports its worker shape.
func TestParallelQueryTrace(t *testing.T) {
	_, ts, _ := newTestServer(t, 800, 4)
	const q = `select {Title: T} from DB.Entry.Movie M, M.Title T`
	resp, err := http.Post(ts.URL+"/query?trace=1", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, q)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rows, status := decodeStream(t, resp.Body)
	tr := status.Trace
	if tr == nil {
		t.Fatal("no trace")
	}
	if !tr.Parallel || tr.Workers < 2 {
		t.Fatalf("expected parallel trace, got %+v", tr)
	}
	if tr.Morsels < 1 {
		t.Fatalf("parallel trace reports no morsels: %+v", tr)
	}
	if tr.Rows != int64(len(rows)) {
		t.Fatalf("trace rows = %d, streamed %d", tr.Rows, len(rows))
	}
}

// TestSlowQueryLog: with a threshold of 1ns every query is slow, and the
// structured log line carries the query text, row count and trace.
func TestSlowQueryLog(t *testing.T) {
	db := core.FromGraph(workload.Movies(workload.DefaultMovieConfig(100)))
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	srv := New(db, Config{SlowQuery: time.Nanosecond, Logger: logger})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const q = `select {Title: T} from DB.Entry.Movie M, M.Title T`
	_, status := postQuery(t, ts.URL, fmt.Sprintf(`{"query": %q}`, q))
	if status.Error != "" || !status.Done {
		t.Fatalf("status = %+v", status)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query log line:\n%s", out)
	}
	for _, want := range []string{"DB.Entry.Movie", "rows=", "trace=", "atoms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-query line missing %q:\n%s", want, out)
		}
	}
	// Without ?trace=1 the client response still has no trace attached.
	if status.Trace != nil {
		t.Fatalf("slow-query logging leaked the trace to the client: %+v", status.Trace)
	}
}

// TestHealthzObservability: /healthz reports the statement-cache size and
// snapshot sequence alongside the durability stats.
func TestHealthzObservability(t *testing.T) {
	_, ts, db := newTestServer(t, 50, 0)
	if _, err := db.PrepareCached(`select {T: T} from DB.Entry.Movie M, M.Title T`); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	sz, ok := h["stmt_cache_size"].(float64)
	if !ok || sz < 1 {
		t.Fatalf("stmt_cache_size = %v", h["stmt_cache_size"])
	}
	if _, ok := h["snapshot_seq"].(float64); !ok {
		t.Fatalf("snapshot_seq = %v", h["snapshot_seq"])
	}
}
