// Router: the stateless routing front of the serving tier. It owns no data —
// it forwards requests to one leader and a set of follower replicas:
//
//   - POST /mutate and POST /checkpoint pin to the leader (the single writer);
//   - POST /query fans out across healthy replicas round-robin, preferring
//     one already at or past the request's X-SSD-Seq token so tokened reads
//     rarely wait, and falling back to the leader when no replica is usable;
//   - GET /healthz aggregates the health of every backend.
//
// Consistency is enforced by the backends, not here: a replica holds or
// rejects (503) a tokened read by its own commit position, so the router's
// health-poll view being a moment stale can cost a wait, never staleness.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/obs"
)

// DefaultHealthInterval is the router's backend health-poll period.
const DefaultHealthInterval = time.Second

var (
	obsRouterQueries = obs.Default.Counter("ssd_router_queries_total",
		"Queries routed to a backend.")
	obsRouterMutations = obs.Default.Counter("ssd_router_mutations_total",
		"Mutations routed to the leader.")
	obsRouterFailovers = obs.Default.Counter("ssd_router_failovers_total",
		"Queries retried on another backend after the first choice failed.")
	obsRouterHealthy = obs.Default.Gauge("ssd_router_healthy_backends",
		"Backends (leader + replicas) currently passing health checks.")
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Leader is the writer's base URL. Mutations and checkpoints go only
	// here; queries fall back here when no replica is usable.
	Leader string
	// Replicas are follower base URLs serving read-only queries.
	Replicas []string
	// HealthInterval is the backend poll period (default DefaultHealthInterval).
	HealthInterval time.Duration
	// Client issues all backend requests (default: a plain http.Client).
	Client *http.Client
	Logger *slog.Logger
}

// backend is the router's cached view of one server, refreshed by the
// health-poll loop.
type backend struct {
	url       string
	healthy   atomic.Bool
	commitSeq atomic.Uint64
}

// Router fans requests out over a replicated serving tier. Create with
// NewRouter, serve Handler(), and Stop() to end the health loop.
type Router struct {
	cfg      RouterConfig
	client   *http.Client
	log      *slog.Logger
	leader   *backend
	replicas []*backend
	rr       atomic.Uint64 // round-robin cursor over replicas

	ctx      context.Context // ends the health loop
	stopLoop context.CancelFunc
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewRouter builds a router over leader + replicas and starts its health
// loop. Backends start unknown (unhealthy) and are probed immediately.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		log:    cfg.Logger,
		leader: &backend{url: cfg.Leader},
	}
	rt.ctx, rt.stopLoop = context.WithCancel(context.Background())
	for _, u := range cfg.Replicas {
		rt.replicas = append(rt.replicas, &backend{url: u})
	}
	rt.pollAll()
	rt.done.Add(1)
	go rt.healthLoop(rt.ctx)
	return rt
}

// Stop ends the health loop. In-flight proxied requests finish on their own.
func (rt *Router) Stop() {
	rt.stopOnce.Do(rt.stopLoop)
	rt.done.Wait()
}

// healthLoop refreshes every backend's health and commit position until Stop.
//
//ssd:ctxpoll
func (rt *Router) healthLoop(ctx context.Context) {
	defer rt.done.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.pollAll()
		}
	}
}

func (rt *Router) pollAll() {
	healthy := int64(0)
	for _, b := range append([]*backend{rt.leader}, rt.replicas...) {
		if rt.poll(b) {
			healthy++
		}
	}
	obsRouterHealthy.Set(healthy)
}

// poll probes one backend's /healthz, recording reachability and commit
// position, and reports whether it is healthy.
func (rt *Router) poll(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		b.healthy.Store(false)
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		b.healthy.Store(false)
		return false
	}
	defer resp.Body.Close()
	var h struct {
		Status    string `json:"status"`
		CommitSeq uint64 `json:"commit_seq"`
	}
	ok := resp.StatusCode == http.StatusOK &&
		json.NewDecoder(resp.Body).Decode(&h) == nil && h.Status == "ok"
	b.healthy.Store(ok)
	if ok {
		b.commitSeq.Store(h.CommitSeq)
	}
	return ok
}

// Handler returns the router's HTTP front.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", instrument("router_query", rt.handleQuery))
	mux.HandleFunc("POST /mutate", instrument("router_mutate", rt.forwardToLeader))
	mux.HandleFunc("POST /checkpoint", instrument("router_checkpoint", rt.forwardToLeader))
	mux.HandleFunc("GET /healthz", instrument("router_healthz", rt.handleHealthz))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.Snapshot().WritePrometheus(w)
	})
	return mux
}

// pickReplicas orders the healthy replicas for one query: round-robin
// rotation, with replicas already at or past tok moved to the front so a
// tokened read lands where it will not have to wait.
func (rt *Router) pickReplicas(tok uint64) []*backend {
	if len(rt.replicas) == 0 {
		return nil
	}
	start := int(rt.rr.Add(1)) % len(rt.replicas)
	var ahead, behind []*backend
	for i := range rt.replicas {
		b := rt.replicas[(start+i)%len(rt.replicas)]
		if !b.healthy.Load() {
			continue
		}
		if b.commitSeq.Load() >= tok {
			ahead = append(ahead, b)
		} else {
			behind = append(behind, b)
		}
	}
	return append(ahead, behind...)
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	tok, err := readSeqToken(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	obsRouterQueries.Inc()
	candidates := rt.pickReplicas(tok)
	if rt.leader.healthy.Load() || len(candidates) == 0 {
		candidates = append(candidates, rt.leader) // last resort: the writer
	}
	for i, b := range candidates {
		if i > 0 {
			obsRouterFailovers.Inc()
		}
		if rt.proxy(w, r, b.url, body) {
			return
		}
		rt.log.Warn("backend failed before response; trying next", "backend", b.url)
		b.healthy.Store(false)
	}
	httpError(w, http.StatusBadGateway, fmt.Errorf("router: no backend could serve the query"))
}

func (rt *Router) forwardToLeader(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	obsRouterMutations.Inc()
	if !rt.proxy(w, r, rt.cfg.Leader, body) {
		httpError(w, http.StatusBadGateway, fmt.Errorf("router: leader %s is unreachable", rt.cfg.Leader))
	}
}

// proxy forwards the request (with body) to base, streaming the response
// back. It reports false only when nothing was written to w — the caller may
// then fail over; once any byte is relayed the attempt is committed.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, base string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-SSD-Backend", base)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true // client went away; attempt still committed
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return true
		}
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type bh struct {
		URL       string `json:"url"`
		Healthy   bool   `json:"healthy"`
		CommitSeq uint64 `json:"commit_seq"`
	}
	view := func(role string, b *backend) map[string]any {
		return map[string]any{"role": role, "backend": bh{
			URL: b.url, Healthy: b.healthy.Load(), CommitSeq: b.commitSeq.Load(),
		}}
	}
	backends := []map[string]any{view("leader", rt.leader)}
	healthyReplicas := 0
	for _, b := range rt.replicas {
		backends = append(backends, view("replica", b))
		if b.healthy.Load() {
			healthyReplicas++
		}
	}
	status := "ok"
	code := http.StatusOK
	if !rt.leader.healthy.Load() && healthyReplicas == 0 {
		status, code = "unavailable", http.StatusServiceUnavailable
	} else if !rt.leader.healthy.Load() {
		status = "read-only" // replicas can serve reads; writes will fail
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":           status,
		"role":             "router",
		"replicas_healthy": healthyReplicas,
		"backends":         backends,
	})
}
