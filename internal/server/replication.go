// Replication endpoints: the leader side of the serving tier.
//
//	GET /replicate/snapshot        newest durable snapshot generation, raw
//	                               (bootstrap path for new/lagging followers)
//	GET /replicate/wal?from=N      committed WAL frames from global commit
//	                               sequence N onward, streamed live
//
// The WAL stream is a long-lived chunked response of CRC-framed batch
// payloads in the log's own frame encoding (see mutate.WriteFrameTo). The
// handler tails the log through a replication cursor — reading committed
// history lock-free while the writer appends — and parks on the database's
// commit broadcast between frames, so a commit reaches the wire within one
// scheduling quantum, not a poll interval. A checkpoint truncating the log
// mid-stream rebinds the cursor transparently while the follower's position
// is still in the new log, and otherwise ends the stream; the follower
// reconnects, learns its position is gone (410), and bootstraps from the
// snapshot endpoint instead.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/mutate"
)

// seqHeader carries replication positions over HTTP: the commit token a
// mutation returns, the position a read demands, and the position a read
// was served at.
const seqHeader = "X-SSD-Seq"

// readSeqToken parses the request's read-your-writes token (seqHeader), 0
// when absent.
func readSeqToken(r *http.Request) (uint64, error) {
	h := r.Header.Get(seqHeader)
	if h == "" {
		return 0, nil
	}
	tok, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("server: bad %s token %q: %w", seqHeader, h, err)
	}
	return tok, nil
}

// handleReplSnapshot streams the newest durable snapshot generation to a
// bootstrapping follower. A directory that has not checkpointed yet is
// checkpointed on the spot — the bootstrap contract is "a generation whose
// CommitSeq the follower can resume the WAL stream from".
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.inflight.Done()
	path, gen, ok := s.db.SnapshotFile()
	if !ok {
		if _, err := s.db.Checkpoint(); err != nil {
			httpError(w, http.StatusInternalServerError,
				fmt.Errorf("server: cutting bootstrap snapshot: %w", err))
			return
		}
		if path, gen, ok = s.db.SnapshotFile(); !ok {
			httpError(w, http.StatusInternalServerError,
				fmt.Errorf("server: no snapshot generation after checkpoint"))
			return
		}
	}
	f, err := os.Open(path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	// The open handle keeps the bytes alive even if a concurrent checkpoint
	// prunes this generation; a generation file is never rewritten in place.
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-SSD-Generation", fmt.Sprint(gen))
	w.WriteHeader(http.StatusOK)
	if n, err := io.Copy(w, f); err == nil {
		obsReplSnapshotsShipped.Inc()
		obsReplSnapshotBytes.Add(n)
	}
}

// replPollInterval bounds how long a parked WAL stream goes without
// re-checking for a cursor rebind (checkpoint truncation): commits wake the
// stream through the database's broadcast, truncations only move files.
const replPollInterval = 250 * time.Millisecond

// handleReplWAL streams committed batch frames from ?from=N onward and then
// tails the log live until the client disconnects or the server shuts down.
//
// Every unbounded loop here parks on the request context (and the server's
// replication stop latch), so a gone follower costs at most one poll
// interval.
//
//ssd:ctxpoll
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	// Long-lived stream: leave the drain gate immediately (Shutdown must
	// not wait for followers) and rely on replStop to end the tail loop.
	s.inflight.Done()

	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: bad from position: %w", err))
		return
	}
	ctx := r.Context()
	cur, leaderSeq, err := s.db.ReplCursor(from)
	if err != nil {
		if errors.Is(err, core.ErrReplGone) {
			w.Header().Set(seqHeader, fmt.Sprint(leaderSeq))
			httpError(w, http.StatusGone,
				fmt.Errorf("server: position %d already checkpointed away; bootstrap from /replicate/snapshot", from))
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	defer func() { cur.Close() }()

	obsReplStreams.Add(1)
	defer obsReplStreams.Add(-1)
	w.Header().Set("Content-Type", "application/x-ssd-walstream")
	w.Header().Set(seqHeader, fmt.Sprint(leaderSeq))
	w.Header().Set("X-SSD-From", fmt.Sprint(from))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	pos := from // global sequence of the next frame to ship
	for {
		if ctx.Err() != nil {
			return
		}
		frame, err := cur.Next()
		switch {
		case err == nil:
			if err := mutate.WriteFrameTo(w, frame); err != nil {
				return // client went away mid-frame
			}
			if flusher != nil {
				flusher.Flush()
			}
			pos++
			obsReplFramesShipped.Inc()
			continue
		case errors.Is(err, mutate.ErrNoFrame):
			// Caught up. Park until the next commit (or a poll tick, which
			// exists to notice truncations — those don't broadcast).
			if !s.waitCommit(ctx, pos) {
				return
			}
		case errors.Is(err, mutate.ErrCursorRebound):
			// A checkpoint truncated the log. If our position survived into
			// the new log, swap cursors and keep streaming; otherwise the
			// follower must bootstrap — end the stream and let it reconnect.
			cur.Close()
			next, _, err := s.db.ReplCursor(pos)
			if err != nil {
				return
			}
			cur = next
		default:
			s.log.Error("replication stream read failed", "pos", pos, "err", err)
			return
		}
	}
}

// waitCommit parks a caught-up replication stream until the database's
// commit position passes pos, a poll tick elapses, the request ends, or the
// server shuts down. It reports false when the stream should end.
func (s *Server) waitCommit(ctx context.Context, pos uint64) bool {
	if s.db.CommitSeq() > pos {
		return true // already ahead; the cursor just needs another read
	}
	t := time.NewTimer(replPollInterval)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-s.replStop:
		return false
	case <-s.db.SeqChanged():
		return true
	case <-t.C:
		return true
	}
}
