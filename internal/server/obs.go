package server

// HTTP-layer metrics: per-endpoint request counts, in-flight gauges and
// latency histograms (constant-labeled series on the process registry),
// plus the streamed-row and slow-query totals the /query handler feeds.

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

var (
	obsRowsStreamed = obs.Default.Counter("ssd_http_rows_streamed_total",
		"Result rows streamed to clients over POST /query.")
	obsSlowQueries = obs.Default.Counter("ssd_slow_queries_total",
		"Queries at or over the configured slow-query threshold.")
)

// Replication metrics — leader stream side, follower apply side, and the
// read-your-writes wait path.
var (
	obsReplWaits = obs.Default.Counter("ssd_repl_token_waits_total",
		"Tokened reads that had to wait for the replica to catch up.")
	obsReplWaitTimeouts = obs.Default.Counter("ssd_repl_token_wait_timeouts_total",
		"Tokened reads rejected 503 because the replica never caught up in time.")
	obsReplStreams = obs.Default.Gauge("ssd_repl_streams",
		"Replication WAL streams currently open to followers.")
	obsReplFramesShipped = obs.Default.Counter("ssd_repl_frames_shipped_total",
		"WAL frames shipped to followers across all streams.")
	obsReplSnapshotsShipped = obs.Default.Counter("ssd_repl_snapshots_shipped_total",
		"Bootstrap snapshots served to followers.")
	obsReplSnapshotBytes = obs.Default.Counter("ssd_repl_snapshot_bytes_total",
		"Bytes of bootstrap snapshot data served to followers.")
	obsReplFramesApplied = obs.Default.Counter("ssd_repl_frames_applied_total",
		"Replicated WAL frames applied by this follower.")
	obsReplConnected = obs.Default.Gauge("ssd_repl_connected",
		"1 while this follower has a live stream to its leader, else 0.")
	obsReplLag = obs.Default.Gauge("ssd_repl_lag",
		"Commits between the last-known leader position and this follower.")
	obsReplReconnects = obs.Default.Counter("ssd_repl_reconnects_total",
		"Times this follower's replication stream had to be re-established.")
	obsReplBootstraps = obs.Default.Counter("ssd_repl_bootstraps_total",
		"Times this follower fell back to a full snapshot bootstrap.")
)

// endpointMetrics is the per-endpoint series triple. Each endpoint gets its
// own constant-labeled series (e.g. ssd_http_requests_total{endpoint="query"});
// the encoder groups them back into one family per metric name.
type endpointMetrics struct {
	requests *obs.Counter
	inFlight *obs.Gauge
	dur      *obs.Histogram
}

func epMetrics(name string) endpointMetrics {
	l := fmt.Sprintf("{endpoint=%q}", name)
	return endpointMetrics{
		requests: obs.Default.Counter("ssd_http_requests_total"+l,
			"HTTP requests served, by endpoint."),
		inFlight: obs.Default.Gauge("ssd_http_in_flight"+l,
			"HTTP requests currently being served, by endpoint."),
		dur: obs.Default.Histogram("ssd_http_request_duration_seconds"+l,
			"End-to-end HTTP request latency, by endpoint."),
	}
}

// instrument wraps a handler with its endpoint's request/in-flight/latency
// series. The metrics are registered once at wrap time (server construction),
// not per request.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := epMetrics(name)
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.Inc()
		m.inFlight.Add(1)
		start := time.Now()
		defer func() {
			m.dur.Observe(time.Since(start))
			m.inFlight.Add(-1)
		}()
		h(w, r)
	}
}

// paramsShape renders bound parameters as "name=kind" pairs for the
// slow-query log — enough to correlate a plan-shape problem with the call
// site without logging user values.
func paramsShape(params []core.Param) string {
	if len(params) == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range params {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.Name)
		b.WriteByte('=')
		b.WriteString(p.Value.Kind().String())
	}
	return b.String()
}
