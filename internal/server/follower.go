// Follower: the replica side of the serving tier. A follower database is an
// ordinary durable database whose only writer is the replication loop here —
// it connects to its leader's /replicate/wal stream at its own commit
// position, applies each frame through the normal commit path (so its WAL,
// checkpoints, indexes, DataGuide and statistics are maintained exactly as a
// writer's would be), and exposes the graph read-only over /query.
//
// Recovery is position-based and self-healing: every (re)connect resumes
// from the follower's own durable CommitSeq, so a crash or network cut costs
// only the frames not yet applied. When the leader has checkpointed past the
// follower's position (HTTP 410) — or an apply diverges — the follower
// re-bootstraps: it downloads the leader's newest snapshot and rebinds its
// local directory to it, superseding the local log.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/core"
	"repro/internal/mutate"
	"repro/internal/storage"
)

// followerBackoffMax caps the reconnect backoff: a follower probes a dead
// leader at least this often, so recovery after a leader restart is prompt.
const followerBackoffMax = 5 * time.Second

// Follower drives replication from a leader into a local database. Create
// with NewFollower, start Run in a goroutine, and stop it by cancelling the
// context; the accessors feed /healthz.
type Follower struct {
	db     *core.Database
	leader string // base URL, e.g. http://127.0.0.1:8080
	client *http.Client
	log    *slog.Logger

	connected  atomic.Bool
	leaderSeq  atomic.Uint64 // leader position from the last stream header
	reconnects atomic.Uint64
	bootstraps atomic.Uint64
	applied    atomic.Uint64 // frames applied over this follower's lifetime
}

// NewFollower wires a replication loop from leader (base URL) into db.
func NewFollower(db *core.Database, leader string, logger *slog.Logger) *Follower {
	if logger == nil {
		logger = slog.Default()
	}
	return &Follower{
		db:     db,
		leader: leader,
		// No overall timeout: /replicate/wal is a deliberately endless
		// response. Disconnects surface as read errors; ctx ends the rest.
		client: &http.Client{},
		log:    logger,
	}
}

// LeaderURL returns the leader base URL this follower replicates from.
func (f *Follower) LeaderURL() string { return f.leader }

// Connected reports whether a replication stream is currently established.
func (f *Follower) Connected() bool { return f.connected.Load() }

// LeaderSeq returns the leader's commit position as of the last stream
// (re)connect — the reference point for Lag.
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Lag returns how many commits behind the last-known leader position this
// follower is. It can only overstate briefly after a reconnect; a connected,
// caught-up follower reports 0.
func (f *Follower) Lag() uint64 {
	ls, own := f.leaderSeq.Load(), f.db.CommitSeq()
	if own >= ls {
		return 0
	}
	return ls - own
}

// Reconnects returns how many times the stream had to be re-established.
func (f *Follower) Reconnects() uint64 { return f.reconnects.Load() }

// Bootstraps returns how many times this process fell back to a full
// snapshot download (leader truncated past our position, or divergence).
func (f *Follower) Bootstraps() uint64 { return f.bootstraps.Load() }

// Run drives the replication loop until ctx ends: connect, stream, apply;
// on any failure, back off (exponentially, capped) and reconnect from the
// database's own durable position. Run returns only when ctx is done.
//
//ssd:ctxpoll
func (f *Follower) Run(ctx context.Context) {
	backoff := 250 * time.Millisecond
	for ctx.Err() == nil {
		start := f.db.CommitSeq()
		err := f.stream(ctx)
		f.connected.Store(false)
		obsReplConnected.Set(0)
		if ctx.Err() != nil {
			return
		}
		if f.db.CommitSeq() > start {
			backoff = 250 * time.Millisecond // made progress; probe eagerly
		}
		f.log.Warn("replication stream ended; reconnecting",
			"leader", f.leader, "pos", f.db.CommitSeq(), "backoff", backoff, "err", err)
		f.reconnects.Add(1)
		obsReplReconnects.Inc()
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > followerBackoffMax {
			backoff = followerBackoffMax
		}
	}
}

// stream establishes one /replicate/wal connection and applies frames until
// it breaks. A 410 (position truncated away) triggers a snapshot
// re-bootstrap and then returns so Run reconnects from the new position.
func (f *Follower) stream(ctx context.Context) error {
	pos := f.db.CommitSeq()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/replicate/wal?from=%d", f.leader, pos), nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		f.log.Info("position truncated on leader; bootstrapping from snapshot",
			"leader", f.leader, "pos", pos)
		return f.rebootstrap(ctx)
	default:
		return fmt.Errorf("server: leader %s: /replicate/wal: %s", f.leader, resp.Status)
	}
	if ls, err := strconv.ParseUint(resp.Header.Get(seqHeader), 10, 64); err == nil {
		f.leaderSeq.Store(ls)
		obsReplLag.Set(int64(f.Lag()))
	}
	f.connected.Store(true)
	obsReplConnected.Set(1)
	f.log.Info("replication stream established", "leader", f.leader, "from", pos)

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		frame, err := mutate.ReadFrameFrom(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // leader closed the stream cleanly (shutdown)
			}
			return err
		}
		seq, err := f.db.ApplyReplicated(frame)
		if err != nil {
			// A frame that does not extend our state means divergence —
			// fall back to a full snapshot rather than forking silently.
			f.log.Error("replicated frame failed to apply; re-bootstrapping",
				"pos", f.db.CommitSeq(), "err", err)
			if berr := f.rebootstrap(ctx); berr != nil {
				return fmt.Errorf("apply failed (%v) and bootstrap failed: %w", err, berr)
			}
			return nil
		}
		f.applied.Add(1)
		obsReplFramesApplied.Inc()
		if ls := f.leaderSeq.Load(); seq > ls {
			f.leaderSeq.Store(seq) // live stream carries us past the connect-time header
		}
		obsReplLag.Set(int64(f.Lag()))
	}
}

// rebootstrap downloads the leader's newest snapshot and rebinds the local
// database to it, adopting the snapshot's commit position.
func (f *Follower) rebootstrap(ctx context.Context) error {
	data, _, err := fetchSnapshot(ctx, f.client, f.leader)
	if err != nil {
		return err
	}
	s, err := storage.DecodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("server: leader snapshot does not decode: %w", err)
	}
	if err := f.db.ReplaceFromSnapshot(s); err != nil {
		return err
	}
	f.bootstraps.Add(1)
	obsReplBootstraps.Inc()
	f.log.Info("bootstrapped from leader snapshot", "leader", f.leader, "seq", s.CommitSeq)
	return nil
}

// fetchSnapshot downloads the leader's newest snapshot generation, raw.
func fetchSnapshot(ctx context.Context, client *http.Client, leader string) ([]byte, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leader+"/replicate/snapshot", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("server: leader %s: /replicate/snapshot: %s", leader, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	gen, _ := strconv.ParseUint(resp.Header.Get("X-SSD-Generation"), 10, 64)
	return data, gen, nil
}

// BootstrapFollower initializes dir as a follower data directory seeded from
// the leader's newest snapshot — the very first start of a new replica, when
// there is no local state to resume from. An already-initialized directory
// is left untouched (the caller resumes from it instead).
func BootstrapFollower(ctx context.Context, client *http.Client, leader, dir string) error {
	if client == nil {
		client = http.DefaultClient
	}
	initialized, err := core.PathInitialized(dir)
	if err != nil {
		return err
	}
	if initialized {
		return nil
	}
	data, _, err := fetchSnapshot(ctx, client, leader)
	if err != nil {
		return err
	}
	return core.SeedPathSnapshot(dir, data)
}
