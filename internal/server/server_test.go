package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func newTestServer(t *testing.T, entries, parallelism int) (*Server, *httptest.Server, *core.Database) {
	t.Helper()
	db := core.FromGraph(workload.Movies(workload.DefaultMovieConfig(entries)))
	srv := New(db, Config{Parallelism: parallelism})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, db
}

// postQuery runs one /query request and returns the row lines and the
// terminal status line.
func postQuery(t *testing.T, url string, body string) ([]map[string]string, statusLine) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return decodeStream(t, resp.Body)
}

func decodeStream(t *testing.T, r io.Reader) ([]map[string]string, statusLine) {
	t.Helper()
	var rows []map[string]string
	var status statusLine
	terminal := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if terminal {
			t.Fatalf("line after terminal status: %s", sc.Text())
		}
		var line struct {
			Row map[string]string `json:"row"`
			statusLine
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Row != nil {
			rows = append(rows, line.Row)
			continue
		}
		status = line.statusLine
		terminal = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !terminal {
		t.Fatal("stream ended without a terminal status line")
	}
	return rows, status
}

// TestQueryEndpoint: a parameterized query streams the same rows the
// statement layer yields directly, and the terminal line reports success.
func TestQueryEndpoint(t *testing.T) {
	_, ts, db := newTestServer(t, 200, 2)
	const q = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`
	rows, status := postQuery(t, ts.URL, fmt.Sprintf(`{"query": %q, "params": {"who": "\"Allen\""}}`, q))
	if status.Error != "" || !status.Done {
		t.Fatalf("status = %+v", status)
	}
	if status.Rows != len(rows) || len(rows) == 0 {
		t.Fatalf("rows = %d, status.rows = %d", len(rows), status.Rows)
	}

	// Cross-check against the statement layer.
	s, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.Query(context.Background(), core.P("who", "Allen"))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	i := 0
	cols := direct.Columns()
	for direct.Next() {
		dests := make([]any, len(cols))
		vals := make([]string, len(cols))
		for j := range dests {
			dests[j] = &vals[j]
		}
		if err := direct.Scan(dests...); err != nil {
			t.Fatal(err)
		}
		for j, c := range cols {
			if rows[i][c] != vals[j] {
				t.Fatalf("row %d col %s: %q != %q", i, c, rows[i][c], vals[j])
			}
		}
		i++
	}
	if i != len(rows) {
		t.Fatalf("served %d rows, direct %d", len(rows), i)
	}
}

// TestQueryParamTypes exercises every JSON-to-label conversion.
func TestQueryParamTypes(t *testing.T) {
	_, ts, _ := newTestServer(t, 50, 0)
	// Symbol parameter in a path step.
	rows, status := postQuery(t, ts.URL,
		`{"query": "select T from DB.Entry.$kind.Title T", "params": {"kind": "Movie"}}`)
	if status.Error != "" || len(rows) == 0 {
		t.Fatalf("symbol param: %+v, %d rows", status, len(rows))
	}
	// Integer parameter in a comparison.
	_, status = postQuery(t, ts.URL,
		`{"query": "select {Big: X} from DB._*.isint X where X > $n", "params": {"n": 65536}}`)
	if status.Error != "" {
		t.Fatalf("int param: %+v", status)
	}
	// Unknown parameter is a 400-style error.
	_, status = postQuery(t, ts.URL,
		`{"query": "select T from DB.Entry.Movie.Title T", "params": {"bogus": 1}}`)
	if status.Error == "" {
		t.Fatal("unknown parameter accepted")
	}
}

// TestQueryLanguages: path and datalog statements serve through the same
// endpoint; transforms are refused.
func TestQueryLanguages(t *testing.T) {
	_, ts, _ := newTestServer(t, 50, 0)
	rows, status := postQuery(t, ts.URL, `{"query": "path: Entry.Movie.Title._"}`)
	if status.Error != "" || len(rows) == 0 {
		t.Fatalf("path: %+v, %d rows", status, len(rows))
	}
	rows, status = postQuery(t, ts.URL, `{"query": "datalog: reach(X) :- root(X). reach(Y) :- reach(X), edge(X, _, Y)."}`)
	if status.Error != "" || len(rows) == 0 {
		t.Fatalf("datalog: %+v, %d rows", status, len(rows))
	}
	_, status = postQuery(t, ts.URL, `{"query": "unql: delete \"Allen\""}`)
	if status.Error == "" {
		t.Fatal("transform statement served")
	}
}

// TestQueryRenderTree: render=tree serializes node columns as their
// subtree in the text syntax instead of opaque ids.
func TestQueryRenderTree(t *testing.T) {
	_, ts, _ := newTestServer(t, 50, 0)
	rows, status := postQuery(t, ts.URL,
		`{"query": "select T from DB.Entry.Movie.Title T", "render": "tree", "limit": 3}`)
	if status.Error != "" || len(rows) != 3 {
		t.Fatalf("render=tree: %+v, %d rows", status, len(rows))
	}
	for _, r := range rows {
		if !strings.Contains(r["T"], `"`) {
			t.Fatalf("tree rendering looks like a node id: %q", r["T"])
		}
	}
}

// TestQueryLimit: a row limit truncates the stream and says so.
func TestQueryLimit(t *testing.T) {
	_, ts, _ := newTestServer(t, 200, 0)
	rows, status := postQuery(t, ts.URL, `{"query": "select T from DB.Entry.Movie.Title T", "limit": 5}`)
	if len(rows) != 5 || !status.Truncated || status.Error != "" {
		t.Fatalf("limit: %d rows, %+v", len(rows), status)
	}
}

// TestQueryTimeout: a request whose deadline expires mid-stream reports the
// context error in its terminal line instead of posing as complete.
func TestQueryTimeout(t *testing.T) {
	_, ts, _ := newTestServer(t, 5000, 2)
	_, status := postQuery(t, ts.URL,
		`{"query": "select {T: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A, M.References.Movie.Title T2", "timeout_ms": 1}`)
	if status.Done || status.Error == "" {
		t.Fatalf("timeout not reported: %+v", status)
	}
	if !strings.Contains(status.Error, "deadline") {
		t.Errorf("error %q does not name the deadline", status.Error)
	}
}

// TestMutateAndHealthz: a mutation script commits through the server and is
// visible to subsequent queries; healthz reflects the new snapshot.
func TestMutateAndHealthz(t *testing.T) {
	_, ts, db := newTestServer(t, 50, 0)
	before := db.Stats()
	resp, err := http.Post(ts.URL+"/mutate", "text/plain",
		strings.NewReader("addnode\naddnode\naddedge 0 ServedTag $0\naddedge $0 \"hello\" $1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var mr mutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !mr.Applied || mr.Nodes != before.Nodes+2 {
		t.Fatalf("mutate response %+v (before %d nodes)", mr, before.Nodes)
	}
	rows, status := postQuery(t, ts.URL, `{"query": "select X from DB.ServedTag X"}`)
	if status.Error != "" || len(rows) != 1 {
		t.Fatalf("mutated edge not served: %+v, %d rows", status, len(rows))
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || int(health["nodes"].(float64)) != before.Nodes+2 {
		t.Fatalf("healthz %+v", health)
	}
}

// TestConcurrentQueriesDuringCommits is the serving-layer -race acceptance
// test: parallel parameterized queries stream while a writer commits
// batches through /mutate. Every response must be internally consistent
// (terminal line matches row count, no mid-stream errors).
func TestConcurrentQueriesDuringCommits(t *testing.T) {
	_, ts, db := newTestServer(t, 300, 3)
	// Commits go through an attached WAL, as in production: durability on
	// the write path must not perturb the readers' pinned snapshots.
	if err := db.OpenWAL(filepath.Join(t.TempDir(), "wal")); err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	const (
		readers = 6
		rounds  = 8
		commits = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds+commits)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			script := fmt.Sprintf("addnode\naddedge 0 CommitTag $0\naddedge $0 %d $0\n", i)
			resp, err := http.Post(ts.URL+"/mutate", "text/plain", strings.NewReader(script))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("mutate status %d", resp.StatusCode)
				return
			}
		}
	}()
	body := `{"query": "select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who", "params": {"who": "\"Allen\""}}`
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				var status statusLine
				if err := json.Unmarshal([]byte(lines[len(lines)-1]), &status); err != nil {
					errs <- fmt.Errorf("bad terminal line %q: %v", lines[len(lines)-1], err)
					return
				}
				if status.Error != "" || !status.Done || status.Rows != len(lines)-1 {
					errs <- fmt.Errorf("inconsistent response: %+v with %d rows", status, len(lines)-1)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCancelledRequestStopsCursor: a client that disconnects mid-stream
// releases its cursor — observed through Shutdown draining immediately
// afterwards, which only returns once in-flight handlers (and the cursors
// they hold) are gone.
func TestCancelledRequestStopsCursor(t *testing.T) {
	srv, ts, _ := newTestServer(t, 5000, 2)
	ctx, cancel := context.WithCancel(context.Background())
	body := `{"query": "select {T: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A, M.References.Movie.Title T2"}`
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little, then abandon the stream.
	buf := make([]byte, 256)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("no leading rows: %v", err)
	}
	cancel()
	resp.Body.Close()

	drainCtx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		t.Fatalf("cursor not released after client cancel: %v", err)
	}
	// Draining servers refuse new work.
	r2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query": "path: Entry"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d", r2.StatusCode)
	}
}
