package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// replNode is one in-process member of a replicated serving tier.
type replNode struct {
	db  *core.Database
	srv *Server
	ts  *httptest.Server
	fol *Follower
	// stop cancels the follower's Run loop (nil for leaders).
	stop context.CancelFunc
}

func (n *replNode) URL() string { return n.ts.URL }

// close tears the node down in dependency order: replication loop, HTTP
// front, then the database handle (so the directory can be reopened).
func (n *replNode) close(t *testing.T) {
	t.Helper()
	if n.stop != nil {
		n.stop()
	}
	n.ts.Close()
	if err := n.db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// startLeader opens dir as a durable leader with the /replicate endpoints.
func startLeader(t *testing.T, dir string) *replNode {
	t.Helper()
	db, err := core.OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{Role: "leader"})
	ts := httptest.NewServer(srv.Handler())
	return &replNode{db: db, srv: srv, ts: ts}
}

// startFollower bootstraps (or resumes) dir as a read-only follower of
// leaderURL and starts its replication loop. replWait bounds tokened reads.
func startFollower(t *testing.T, dir, leaderURL string, replWait time.Duration) *replNode {
	t.Helper()
	if err := BootstrapFollower(context.Background(), nil, leaderURL, dir); err != nil {
		t.Fatal(err)
	}
	db, err := core.OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	fol := NewFollower(db, leaderURL, nil)
	srv := New(db, Config{
		ReadOnly:  true,
		Role:      "follower",
		LeaderURL: leaderURL,
		ReplWait:  replWait,
		Follower:  fol,
	})
	ts := httptest.NewServer(srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	go fol.Run(ctx)
	return &replNode{db: db, srv: srv, ts: ts, fol: fol, stop: cancel}
}

// mutateNode posts one script to the node and returns the commit's
// X-SSD-Seq token.
func mutateNode(t *testing.T, url, script string) uint64 {
	t.Helper()
	resp, err := http.Post(url+"/mutate", "text/plain", strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %s", resp.Status)
	}
	var mr mutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if hdr := resp.Header.Get(seqHeader); hdr != fmt.Sprint(mr.Seq) {
		t.Fatalf("mutate %s header %q != body seq %d", seqHeader, hdr, mr.Seq)
	}
	return mr.Seq
}

// waitForSeq fails the test unless the node reaches seq within 10s.
func waitForSeq(t *testing.T, n *replNode, seq uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.db.WaitForSeq(ctx, seq); err != nil {
		t.Fatalf("node never reached seq %d (at %d): %v", seq, n.db.CommitSeq(), err)
	}
}

// tokenedQuery posts a /query carrying an X-SSD-Seq token and returns the
// raw response (the caller closes the body).
func tokenedQuery(t *testing.T, url, body string, token uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token > 0 {
		req.Header.Set(seqHeader, fmt.Sprint(token))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const chainQuery = `{"query": "select {N: N} from DB.n N"}`

// chainScript adds one leaf under the root: an n-labeled edge to a new node
// carrying a distinctly-labeled leaf edge.
func chainScript(i int) string {
	return fmt.Sprintf("addnode; addedge 0 n $0; addnode; addedge $0 v%d $1", i)
}

// queryRows collects the /query row lines from url (no token).
func queryRows(t *testing.T, url string) []map[string]string {
	t.Helper()
	resp := tokenedQuery(t, url, chainQuery, 0)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s", resp.Status)
	}
	rows, status := decodeStream(t, resp.Body)
	if status.Error != "" || !status.Done {
		t.Fatalf("query status = %+v", status)
	}
	return rows
}

// TestReplicationConvergence is the tentpole end to end in-process: a leader
// and two followers, live WAL shipping, and /query answers that are
// byte-identical across all three at the same position.
func TestReplicationConvergence(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.close(t)
	f1 := startFollower(t, t.TempDir(), leader.URL(), DefaultReplWait)
	defer f1.close(t)
	f2 := startFollower(t, t.TempDir(), leader.URL(), DefaultReplWait)
	defer f2.close(t)

	var seq uint64
	for i := 0; i < 8; i++ {
		seq = mutateNode(t, leader.URL(), chainScript(i))
	}
	if seq != 8 {
		t.Fatalf("leader at seq %d after 8 commits", seq)
	}
	waitForSeq(t, f1, seq)
	waitForSeq(t, f2, seq)

	want, err := json.Marshal(queryRows(t, leader.URL()))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []*replNode{f1, f2} {
		got, err := json.Marshal(queryRows(t, n.URL()))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("follower %d rows differ from leader:\nleader   %s\nfollower %s", i+1, want, got)
		}
	}

	// /healthz reports the replication topology.
	var h struct {
		Role       string `json:"role"`
		ReadOnly   bool   `json:"read_only"`
		CommitSeq  uint64 `json:"commit_seq"`
		ReplLeader string `json:"repl_leader"`
		Bootstraps uint64 `json:"repl_bootstraps"`
	}
	resp, err := http.Get(f1.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "follower" || !h.ReadOnly || h.CommitSeq != seq || h.ReplLeader != leader.URL() {
		t.Fatalf("follower healthz = %+v", h)
	}
	if h.Bootstraps != 0 {
		t.Fatalf("live follower bootstrapped %d times; streaming should have sufficed", h.Bootstraps)
	}
}

// TestFollowerRejectsWrites: mutations and checkpoints on a replica answer
// 403 naming the leader — never a silent local fork.
func TestFollowerRejectsWrites(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.close(t)
	mutateNode(t, leader.URL(), chainScript(0))
	f := startFollower(t, t.TempDir(), leader.URL(), DefaultReplWait)
	defer f.close(t)

	for _, ep := range []string{"/mutate", "/checkpoint"} {
		resp, err := http.Post(f.URL()+ep, "text/plain", strings.NewReader(chainScript(9)))
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 512)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s on follower: %s, want 403", ep, resp.Status)
		}
		if !strings.Contains(string(body[:n]), leader.URL()) {
			t.Fatalf("%s rejection does not name the leader: %s", ep, body[:n])
		}
	}
}

// TestReadYourWrites covers the token protocol: an untokened read reports
// its position, a token at the replica's position serves immediately, a
// token one ahead holds the read until the commit arrives, and a token the
// replica cannot reach times out as 503 + Retry-After — never stale data.
func TestReadYourWrites(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.close(t)
	f := startFollower(t, t.TempDir(), leader.URL(), 300*time.Millisecond)
	defer f.close(t)

	seq := mutateNode(t, leader.URL(), chainScript(0))
	waitForSeq(t, f, seq)

	// Served reads carry the position they saw.
	resp := tokenedQuery(t, f.URL(), chainQuery, seq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tokened read at position: %s", resp.Status)
	}
	if got := resp.Header.Get(seqHeader); got != fmt.Sprint(seq) {
		t.Fatalf("response %s = %q, want %d", seqHeader, got, seq)
	}
	resp.Body.Close()

	// A token one past the replica's position parks until the write lands.
	type result struct {
		code int
		err  error
	}
	parked := make(chan result, 1)
	go func() {
		r := tokenedQuery(t, f.URL(), chainQuery, seq+1)
		defer r.Body.Close()
		parked <- result{code: r.StatusCode}
	}()
	time.Sleep(30 * time.Millisecond) // let the read park on the follower
	mutateNode(t, leader.URL(), chainScript(1))
	select {
	case r := <-parked:
		if r.code != http.StatusOK {
			t.Fatalf("parked read finished %d, want 200 after the write replicated", r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked read never released")
	}

	// A token ahead of everything: wait, then 503 + Retry-After.
	start := time.Now()
	resp = tokenedQuery(t, f.URL(), chainQuery, seq+1000)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unreachable token: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After")
	}
	if waited := time.Since(start); waited < 200*time.Millisecond {
		t.Fatalf("rejected after only %v; must wait out ReplWait before 503", waited)
	}

	// Malformed token: 400, not a silent untokened read.
	resp2 := tokenedQuery(t, f.URL(), chainQuery, 0)
	resp2.Body.Close()
	req, _ := http.NewRequest(http.MethodPost, f.URL()+"/query", strings.NewReader(chainQuery))
	req.Header.Set(seqHeader, "not-a-number")
	bad, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed token: %s, want 400", bad.Status)
	}
}

// TestFollowerCatchUpAfterRestart: a follower killed mid-stream restarts
// from its local checkpointed state and catches up over the WAL stream
// alone — no snapshot re-download.
func TestFollowerCatchUpAfterRestart(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.close(t)
	folDir := t.TempDir()

	f := startFollower(t, folDir, leader.URL(), DefaultReplWait)
	var seq uint64
	for i := 0; i < 4; i++ {
		seq = mutateNode(t, leader.URL(), chainScript(i))
	}
	waitForSeq(t, f, seq)
	f.close(t) // killed mid-stream

	// The leader keeps committing while the follower is down.
	for i := 4; i < 9; i++ {
		seq = mutateNode(t, leader.URL(), chainScript(i))
	}

	re := startFollower(t, folDir, leader.URL(), DefaultReplWait)
	defer re.close(t)
	waitForSeq(t, re, seq)
	want, _ := json.Marshal(queryRows(t, leader.URL()))
	got, _ := json.Marshal(queryRows(t, re.URL()))
	if string(got) != string(want) {
		t.Fatalf("restarted follower differs from leader:\nleader   %s\nfollower %s", want, got)
	}
	if b := re.fol.Bootstraps(); b != 0 {
		t.Fatalf("catch-up used %d snapshot bootstraps; the WAL stream should have sufficed", b)
	}
}

// TestFollowerBootstrapsWhenTruncated: when the leader checkpoints past a
// downed follower's position, the restarted follower is told 410, downloads
// the snapshot, rebinds, and still converges — counting exactly one
// bootstrap.
func TestFollowerBootstrapsWhenTruncated(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.close(t)
	folDir := t.TempDir()

	f := startFollower(t, folDir, leader.URL(), DefaultReplWait)
	seq := mutateNode(t, leader.URL(), chainScript(0))
	waitForSeq(t, f, seq)
	f.close(t)

	for i := 1; i < 5; i++ {
		seq = mutateNode(t, leader.URL(), chainScript(i))
	}
	// The checkpoint folds and truncates the leader's log: position 1 is gone.
	if _, err := leader.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	re := startFollower(t, folDir, leader.URL(), DefaultReplWait)
	defer re.close(t)
	waitForSeq(t, re, seq)
	want, _ := json.Marshal(queryRows(t, leader.URL()))
	got, _ := json.Marshal(queryRows(t, re.URL()))
	if string(got) != string(want) {
		t.Fatalf("bootstrapped follower differs from leader")
	}
	if b := re.fol.Bootstraps(); b != 1 {
		t.Fatalf("follower bootstrapped %d times, want exactly 1", b)
	}
}

// TestRouterRoutingAndFailover: the router pins writes to the leader, serves
// reads from replicas, honors read-your-writes tokens across the fleet, and
// fails over when a replica dies mid-fleet.
func TestRouterRoutingAndFailover(t *testing.T) {
	leader := startLeader(t, t.TempDir())
	defer leader.close(t)
	f1 := startFollower(t, t.TempDir(), leader.URL(), DefaultReplWait)
	defer f1.close(t)
	f2 := startFollower(t, t.TempDir(), leader.URL(), DefaultReplWait)

	rt := NewRouter(RouterConfig{
		Leader:         leader.URL(),
		Replicas:       []string{f1.URL(), f2.URL()},
		HealthInterval: 50 * time.Millisecond,
	})
	defer rt.Stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Writes through the router land on the leader and return tokens.
	var seq uint64
	for i := 0; i < 3; i++ {
		seq = mutateNode(t, front.URL, chainScript(i))
	}
	if leader.db.CommitSeq() != seq {
		t.Fatalf("router did not pin mutations to the leader")
	}
	waitForSeq(t, f1, seq)
	waitForSeq(t, f2, seq)

	// Tokened reads through the router are correct wherever they land.
	resp := tokenedQuery(t, front.URL, chainQuery, seq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router tokened read: %s", resp.Status)
	}
	backend := resp.Header.Get("X-SSD-Backend")
	rows, status := decodeStream(t, resp.Body)
	resp.Body.Close()
	if status.Error != "" || len(rows) == 0 {
		t.Fatalf("router read via %s: status %+v, %d rows", backend, status, len(rows))
	}
	if backend != f1.URL() && backend != f2.URL() {
		t.Fatalf("router served the read from %q, want a replica", backend)
	}

	// Kill one replica; the router must keep serving through the other.
	f2.close(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := tokenedQuery(t, front.URL, chainQuery, seq)
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never recovered after losing a replica: %s", resp.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Router health reflects the loss.
	hr, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("router healthz status %q with leader and one replica alive", h.Status)
	}
}
