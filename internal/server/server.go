// Package server is the HTTP/JSON serving layer over a core.Database: the
// front door that turns the prepared-statement lifecycle and the parallel
// executor into a network service.
//
//	POST /query      — run a parameterized statement, stream rows as NDJSON
//	POST /mutate     — apply a mutation script as one committed batch
//	POST /checkpoint — force a durable checkpoint (directory-backed databases)
//	GET  /healthz    — liveness plus snapshot and durability stats
//	GET  /metrics    — the process metrics registry (Prometheus text, or
//	                   ?format=json)
//
// Observability: every endpoint carries request/in-flight/latency series on
// the process registry (internal/obs); POST /query?trace=1 appends the
// per-query operator trace to the NDJSON terminal status line; queries
// slower than Config.SlowQuery are logged, with their trace, through the
// structured logger.
//
// Statements are cached by query text through the database's LRU statement
// cache (core.Database.PrepareCached), so a hot query pays lexing, parsing
// and planning once across all connections; per-request work is binding
// $parameters and pulling rows from a pooled (optionally parallel) plan.
// Every request runs under its own context: client disconnects and
// timeouts stop the cursor within one pull, and a drained shutdown waits
// for in-flight cursors before returning.
//
// Over a directory-backed database (core.OpenPath), the server also runs a
// background checkpointer: on an interval, or whenever the write-ahead log
// outgrows a size threshold, it calls Database.Checkpoint — which
// serializes a pinned MVCC snapshot without blocking readers or the single
// writer — so restart cost stays bounded while the server keeps taking
// traffic.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ssd"
)

// Config tunes a Server. The zero value serves serially with no timeout.
type Config struct {
	// Parallelism is the per-database intra-query parallelism default
	// applied at New (see core.Database.SetParallelism).
	Parallelism int
	// DefaultTimeout bounds requests that do not name a timeout_ms
	// themselves. Zero = no default bound.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms. Zero = uncapped.
	MaxTimeout time.Duration
	// MaxRows caps the rows streamed per request (0 = unlimited). A capped
	// response reports "truncated" in its status line rather than posing
	// as a complete result.
	MaxRows int
	// CheckpointInterval checkpoints a directory-backed database on a
	// timer (0 = no timer). Ignored for databases without a durable
	// directory.
	CheckpointInterval time.Duration
	// CheckpointMaxWAL checkpoints as soon as the write-ahead log exceeds
	// this many bytes (0 = no size trigger), polled once a second.
	CheckpointMaxWAL int64
	// Logger receives structured server events: background-checkpointer
	// activity and errors, and slow-query reports. nil discards them.
	Logger *slog.Logger
	// SlowQuery logs any /query request whose end-to-end latency meets or
	// exceeds this threshold, at Warn level with the query text, parameter
	// shape, row count and operator trace. Zero disables the log.
	SlowQuery time.Duration

	// ReadOnly rejects /mutate and /checkpoint with 403: the posture of a
	// follower replica, whose state is owned by its replication stream.
	ReadOnly bool
	// Role is reported in /healthz ("leader", "follower"); empty reports
	// "single".
	Role string
	// LeaderURL, on a follower, is reported in /healthz and named in the
	// /mutate rejection so a client learns where writes go.
	LeaderURL string
	// ReplWait bounds how long a /query carrying an X-SSD-Seq token ahead
	// of this database's position is held before answering 503 with
	// Retry-After. Zero uses DefaultReplWait. A read-your-writes token is
	// never silently ignored: the read either waits into freshness or
	// fails loudly.
	ReplWait time.Duration
	// Follower, when set, is the replication client feeding this server's
	// database; /healthz reports its lag, connection state and counters.
	Follower *Follower

	// pollOverride shortens the checkpointer loop cadence in tests.
	pollOverride time.Duration
}

// DefaultReplWait bounds tokened-read waits when Config.ReplWait is zero.
const DefaultReplWait = 2 * time.Second

// Server serves one core.Database over HTTP. Safe for concurrent use.
type Server struct {
	db  *core.Database
	cfg Config
	mux *http.ServeMux
	log *slog.Logger

	// The drain gate. gateMu orders admissions against the start of a
	// drain: every inflight.Add happens under the lock and before
	// Shutdown flips draining, so Add can never race the Wait that
	// follows (the sync.WaitGroup add-while-waiting-at-zero panic).
	gateMu   sync.Mutex
	draining bool
	inflight sync.WaitGroup

	// Background checkpointer lifecycle (nil stop channel = not running).
	ckptStop chan struct{}
	ckptDone sync.WaitGroup

	// replStop ends long-lived /replicate/wal streams at shutdown. Streams
	// are deliberately outside the drain gate: a follower tailing the log
	// would otherwise hold Shutdown to its deadline every time.
	replStop chan struct{}
}

// New builds a Server over db, applying cfg.Parallelism to the database
// and starting the background checkpointer when the database is durable
// and a checkpoint trigger is configured.
func New(db *core.Database, cfg Config) *Server {
	if cfg.Parallelism > 0 {
		db.SetParallelism(cfg.Parallelism)
	}
	s := &Server{db: db, cfg: cfg, mux: http.NewServeMux(), log: cfg.Logger}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.replStop = make(chan struct{})
	s.mux.HandleFunc("POST /query", instrument("query", s.handleQuery))
	s.mux.HandleFunc("POST /mutate", instrument("mutate", s.handleMutate))
	s.mux.HandleFunc("POST /checkpoint", instrument("checkpoint", s.handleCheckpoint))
	s.mux.HandleFunc("GET /healthz", instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if db.Durable() {
		// Any durable database can lead: followers (which are durable by
		// construction) expose the same endpoints, so replicas can chain.
		s.mux.HandleFunc("GET /replicate/snapshot", instrument("replicate_snapshot", s.handleReplSnapshot))
		s.mux.HandleFunc("GET /replicate/wal", instrument("replicate_wal", s.handleReplWAL))
	}
	if db.Durable() && (cfg.CheckpointInterval > 0 || cfg.CheckpointMaxWAL > 0) {
		s.startCheckpointer()
	}
	return s
}

// startCheckpointer launches the background loop. The poll cadence is the
// configured interval when only the timer trigger is set; with a size
// trigger the log is polled every second so an ingest burst is bounded by
// roughly one second of overshoot, not a whole interval.
func (s *Server) startCheckpointer() {
	poll := s.cfg.CheckpointInterval
	if s.cfg.CheckpointMaxWAL > 0 && (poll == 0 || poll > time.Second) {
		poll = time.Second
	}
	if s.cfg.pollOverride > 0 {
		poll = s.cfg.pollOverride
	}
	stop := make(chan struct{})
	s.ckptStop = stop
	s.ckptDone.Add(1)
	go func() {
		defer s.ckptDone.Done()
		t := time.NewTicker(poll)
		defer t.Stop()
		lastTimed := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			// The half-poll tolerance keeps interval-only configurations
			// checkpointing on every due tick: lastTimed is stamped at
			// decision time, and ticker scheduling slack would otherwise
			// leave Since a hair under the interval at the next tick,
			// silently doubling the cadence.
			timedDue := s.cfg.CheckpointInterval > 0 &&
				time.Since(lastTimed) >= s.cfg.CheckpointInterval-poll/2
			sizeDue := s.cfg.CheckpointMaxWAL > 0 && s.db.WALSize() >= s.cfg.CheckpointMaxWAL
			if !timedDue && !sizeDue {
				continue
			}
			lastTimed = time.Now()
			info, err := s.db.Checkpoint()
			if err != nil {
				s.log.Error("background checkpoint failed", "err", err)
				continue
			}
			if !info.NoOp {
				s.log.Info("checkpointed",
					"seq", info.Seq, "bytes", info.Bytes, "folded", info.Truncated)
			}
		}
	}()
}

// Handler returns the root handler, suitable for http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admitting requests (new ones get 503) and waits until
// every in-flight request — and therefore every open cursor — has drained,
// or ctx expires. It does not close listeners; pair it with
// http.Server.Shutdown, which handles the connection side.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gateMu.Lock()
	wasDraining := s.draining
	s.draining = true
	stop := s.ckptStop
	s.ckptStop = nil
	s.gateMu.Unlock()
	if !wasDraining {
		// End long-lived replication streams; followers reconnect to the
		// restarted process (or a promoted leader) with their position.
		close(s.replStop)
	}
	if stop != nil {
		close(stop)
		s.ckptDone.Wait()
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit registers a request against the drain gate. It reports false (and
// answers 503) when the server is shutting down.
func (s *Server) admit(w http.ResponseWriter) bool {
	s.gateMu.Lock()
	if s.draining {
		s.gateMu.Unlock()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server: shutting down"))
		return false
	}
	s.inflight.Add(1)
	s.gateMu.Unlock()
	return true
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Query is the statement text, any of the prepare-able languages
	// (select-from-where, path:, datalog:, unql: — see core.SniffLang).
	Query string `json:"query"`
	// Params binds $name parameters. Strings follow the ssdq -param
	// literal syntax: a bare word is a symbol ("Movie"), an embedded
	// quoted form is a string ("\"Allen\""); numbers and booleans map to
	// int/float/bool labels.
	Params map[string]json.RawMessage `json:"params"`
	// TimeoutMS bounds this request's execution, overriding the server
	// default (subject to the configured cap).
	TimeoutMS int `json:"timeout_ms"`
	// Limit caps the rows returned for this request (0 = server default).
	Limit int `json:"limit"`
	// Render selects how node-valued columns are serialized: "" (default)
	// as opaque node ids, "tree" as the node's subtree in the ssd text
	// syntax — what a remote client without access to the graph usually
	// wants. Rendering is against the snapshot the result set pinned.
	Render string `json:"render"`
}

// rowLine and statusLine are the two NDJSON line shapes: every result row
// streams as {"row": {col: value}}, and exactly one terminal line reports
// how the stream ended — {"done": true, "rows": n} on success (with
// "truncated" when a limit cut it short), or {"error": "..."} when the
// cursor failed mid-stream. Clients must treat a stream without a terminal
// line as failed (the connection died).
type rowLine struct {
	Row map[string]string `json:"row"`
}

type statusLine struct {
	Done      bool             `json:"done,omitempty"`
	Rows      int              `json:"rows"`
	Truncated bool             `json:"truncated,omitempty"`
	Error     string           `json:"error,omitempty"`
	Trace     *core.QueryTrace `json:"trace,omitempty"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(statusLine{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.inflight.Done()

	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err))
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("server: empty query"))
		return
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// The request context already ends when the client disconnects; layer
	// the timeout (request's own, else server default) on top.
	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout == 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Read-your-writes: a request carrying an X-SSD-Seq token demands state
	// at least as new as that commit position. Wait briefly for the
	// replication stream to apply it; never serve older data silently.
	if tok, err := readSeqToken(r); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	} else if tok > 0 && s.db.CommitSeq() < tok {
		obsReplWaits.Inc()
		wait := s.cfg.ReplWait
		if wait <= 0 {
			wait = DefaultReplWait
		}
		wctx, cancel := context.WithTimeout(ctx, wait)
		err := s.db.WaitForSeq(wctx, tok)
		cancel()
		if err != nil {
			obsReplWaitTimeouts.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable,
				fmt.Errorf("server: replica at commit %d has not reached read token %d", s.db.CommitSeq(), tok))
			return
		}
	}

	stmt, err := s.db.PrepareCached(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if stmt.Lang() == core.LangTransform {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("server: transform statements are not servable; use /mutate for writes"))
		return
	}

	// Trace when the client asked (?trace=1) or a slow-query threshold is
	// armed — the slow log wants the operator breakdown even though the
	// client did not ask to see it.
	wantTrace := r.URL.Query().Get("trace") == "1"
	var qtr *core.QueryTrace
	if wantTrace || s.cfg.SlowQuery > 0 {
		qtr = new(core.QueryTrace)
	}
	start := time.Now()
	// The accountable log position: captured before the query pins its
	// snapshot, so it can only understate what the read actually saw — a
	// token built from it is always satisfiable by this state or newer.
	pos := s.db.CommitSeq()
	var rows *core.Rows
	if qtr != nil {
		rows, err = stmt.QueryTraced(ctx, qtr, params...)
	} else {
		rows, err = stmt.Query(ctx, params...)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer rows.Close()

	limit := req.Limit
	if limit <= 0 || (s.cfg.MaxRows > 0 && limit > s.cfg.MaxRows) {
		limit = s.cfg.MaxRows
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(seqHeader, fmt.Sprint(pos))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cols := rows.Columns()

	// Scan destinations: strings throughout, except that render=tree reads
	// node-valued columns as NodeIDs and formats their subtrees.
	renderTree := req.Render == "tree"
	dests := make([]any, len(cols))
	vals := make([]string, len(cols))
	nodes := make([]ssd.NodeID, len(cols))
	isNode := make([]bool, len(cols))
	for i, c := range cols {
		switch stmt.Lang() {
		case core.LangQuery:
			isNode[i] = !strings.HasPrefix(c, "%") && !strings.HasPrefix(c, "@")
		case core.LangPath:
			isNode[i] = c == "node"
		}
		if renderTree && isNode[i] {
			dests[i] = &nodes[i]
		} else {
			dests[i] = &vals[i]
		}
	}
	n, truncated := 0, false

	// writeStatus emits the terminal NDJSON line. It closes the cursor
	// first (Close is idempotent; the deferred call becomes a no-op) so the
	// query trace is finalized — atom rows, elapsed time, parallel shape —
	// before it is serialized, then feeds the slow-query log.
	writeStatus := func(st statusLine) {
		rows.Close()
		obsRowsStreamed.Add(int64(n))
		st.Rows = n
		if wantTrace {
			st.Trace = qtr
		}
		enc.Encode(st)
		if flusher != nil {
			flusher.Flush()
		}
		elapsed := time.Since(start)
		if slow := s.cfg.SlowQuery; slow > 0 && elapsed >= slow {
			obsSlowQueries.Inc()
			traceJSON, _ := json.Marshal(qtr)
			s.log.Warn("slow query",
				"query", req.Query,
				"params", paramsShape(params),
				"duration", elapsed,
				"rows", n,
				"trace", string(traceJSON))
		}
	}
	for rows.Next() {
		if err := rows.Scan(dests...); err != nil {
			writeStatus(statusLine{Error: err.Error()})
			return
		}
		line := rowLine{Row: make(map[string]string, len(cols))}
		for i, c := range cols {
			if renderTree && isNode[i] {
				line.Row[c] = ssd.Format(rows.Graph(), nodes[i])
			} else {
				line.Row[c] = vals[i]
			}
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; ctx cancellation reaps the cursor
		}
		n++
		if flusher != nil && n&63 == 0 {
			flusher.Flush()
		}
		if limit > 0 && n >= limit {
			truncated = true
			break
		}
	}
	if err := rows.Err(); err != nil {
		writeStatus(statusLine{Error: err.Error()})
		return
	}
	writeStatus(statusLine{Done: true, Truncated: truncated})
}

// decodeParams converts the request's JSON parameter values to labels.
// Strings go through core.ParseLabelLiteral — the same literal syntax as
// ssdq's -param flag — falling back to a plain string label when the text
// is not a literal; numbers become int or float labels; booleans booleans.
func decodeParams(raw map[string]json.RawMessage) ([]core.Param, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	params := make([]core.Param, 0, len(raw))
	for name, rv := range raw {
		var v any
		dec := json.NewDecoder(bytes.NewReader(rv))
		dec.UseNumber()
		if err := dec.Decode(&v); err != nil {
			return nil, fmt.Errorf("server: parameter $%s: %w", name, err)
		}
		switch t := v.(type) {
		case string:
			l, err := core.ParseLabelLiteral(t)
			if err != nil {
				l = ssd.Str(t)
			}
			params = append(params, core.Param{Name: name, Value: l})
		case json.Number:
			if i, err := t.Int64(); err == nil {
				params = append(params, core.Param{Name: name, Value: ssd.Int(i)})
				break
			}
			f, err := t.Float64()
			if err != nil {
				return nil, fmt.Errorf("server: parameter $%s: bad number %q", name, t.String())
			}
			params = append(params, core.Param{Name: name, Value: ssd.Float(f)})
		case bool:
			params = append(params, core.Param{Name: name, Value: ssd.Bool(t)})
		default:
			return nil, fmt.Errorf("server: parameter $%s: unsupported JSON type %T", name, v)
		}
	}
	return params, nil
}

// mutateResponse is the POST /mutate reply. Seq is the replication position
// the commit landed at — the X-SSD-Seq read-your-writes token (also sent as
// a response header of that name).
type mutateResponse struct {
	Applied bool   `json:"applied"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Seq     uint64 `json:"seq"`
}

// handleMutate applies one mutation script (the ssdq script format, see
// mutate.ParseScript) as a single committed batch. With a WAL open on the
// database the batch is durable once the response is written. Concurrent
// readers keep streaming from their pinned snapshots; the commit publishes
// a new one.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.inflight.Done()

	if s.cfg.ReadOnly {
		s.rejectReadOnly(w, "mutations")
		return
	}
	src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	seq, err := s.db.MutateScriptSeq(string(src))
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	st := s.db.Stats()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(seqHeader, fmt.Sprint(seq))
	json.NewEncoder(w).Encode(mutateResponse{Applied: true, Nodes: st.Nodes, Edges: st.Edges, Seq: seq})
}

// rejectReadOnly answers 403 for write-shaped requests on a follower,
// naming the leader when configured so the client can redirect itself.
func (s *Server) rejectReadOnly(w http.ResponseWriter, what string) {
	msg := fmt.Sprintf("server: read-only replica does not accept %s", what)
	if s.cfg.LeaderURL != "" {
		msg += "; send them to the leader at " + s.cfg.LeaderURL
	}
	httpError(w, http.StatusForbidden, fmt.Errorf("%s", msg))
}

// checkpointResponse is the POST /checkpoint reply.
type checkpointResponse struct {
	Path      string `json:"path"`
	Seq       uint64 `json:"seq"`
	Bytes     int64  `json:"bytes"`
	Truncated int    `json:"truncated_batches"`
	WALBytes  int64  `json:"wal_bytes"`
}

// handleCheckpoint is the admin hook behind the background checkpointer:
// it forces a durable checkpoint right now — before a planned restart, or
// from an operator script watching wal_bytes in /healthz. Queries and
// mutations keep flowing while it runs; concurrent requests queue on the
// database's checkpoint lock.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.inflight.Done()
	if s.cfg.ReadOnly {
		s.rejectReadOnly(w, "checkpoint requests")
		return
	}
	if !s.db.Durable() {
		httpError(w, http.StatusConflict,
			fmt.Errorf("server: database has no durable directory (start with -data)"))
		return
	}
	info, err := s.db.Checkpoint()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(checkpointResponse{
		Path:      info.Path,
		Seq:       info.Seq,
		Bytes:     info.Bytes,
		Truncated: info.Truncated,
		WALBytes:  s.db.WALSize(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.db.Stats()
	s.gateMu.Lock()
	draining := s.draining
	s.gateMu.Unlock()
	role := s.cfg.Role
	if role == "" {
		role = "single"
	}
	w.Header().Set("Content-Type", "application/json")
	body := map[string]any{
		"status":          "ok",
		"nodes":           st.Nodes,
		"edges":           st.Edges,
		"parallelism":     s.db.Parallelism(),
		"draining":        draining,
		"durable":         s.db.Durable(),
		"wal_bytes":       s.db.WALSize(),
		"stmt_cache_size": s.db.StmtCacheLen(),
		"snapshot_seq":    s.db.SnapshotSeq(),
		"role":            role,
		"read_only":       s.cfg.ReadOnly,
		"commit_seq":      s.db.CommitSeq(),
	}
	if f := s.cfg.Follower; f != nil {
		body["repl_leader"] = f.LeaderURL()
		body["repl_connected"] = f.Connected()
		body["repl_leader_seq"] = f.LeaderSeq()
		body["repl_lag"] = f.Lag()
		body["repl_reconnects"] = f.Reconnects()
		body["repl_bootstraps"] = f.Bootstraps()
	}
	if ps, ok := s.db.PagePoolStats(); ok {
		body["paged"] = true
		body["pagepool_hits"] = ps.Hits
		body["pagepool_misses"] = ps.Misses
		body["pagepool_evictions"] = ps.Evictions
		body["pagepool_resident_bytes"] = ps.ResidentBytes
		body["pagepool_pinned_pages"] = ps.PinnedPages
	}
	json.NewEncoder(w).Encode(body)
}

// handleMetrics serves the process metrics registry: Prometheus text
// exposition by default, the JSON encoding with ?format=json. It is not
// gated on the drain latch — scrapes should keep working while a shutdown
// waits for in-flight cursors.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", obs.ContentTypePrometheus)
	snap.WritePrometheus(w)
}
