package workload

import (
	"testing"

	"repro/internal/bisim"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
	"repro/internal/unql"
)

func TestFig1Shape(t *testing.T) {
	g := Fig1(false)
	if n := len(g.Lookup(g.Root(), ssd.Sym("Entry"))); n != 3 {
		t.Fatalf("entries = %d", n)
	}
	// The Allen query of §3 works on it.
	hits := pathexpr.MustCompile(`Entry.Movie.(!Movie)*."Allen"`).Eval(g, g.Root())
	if len(hits) != 2 {
		t.Errorf("Allen hits = %d, want 2", len(hits))
	}
	// With the error kept, the Bacall edge is misspelled.
	bad := Fig1(true)
	if len(pathexpr.MustCompile(`_*."Bacal"`).Eval(bad, bad.Root())) != 1 {
		t.Error("misspelled Bacal edge missing")
	}
	// And the paper's UnQL fix restores it.
	fixed := unql.RelabelWhere(bad, pathexpr.ExactPred{L: ssd.Str("Bacal")}, ssd.Str("Bacall"))
	if !bisim.Equal(fixed, g) {
		t.Error("relabel fix does not reproduce the corrected figure")
	}
}

func TestMoviesDeterministic(t *testing.T) {
	cfg := DefaultMovieConfig(50)
	a := Movies(cfg)
	b := Movies(cfg)
	if !bisim.Equal(a, b) {
		t.Error("same seed must give the same database")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := Movies(cfg2)
	if bisim.Equal(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestMoviesShape(t *testing.T) {
	cfg := DefaultMovieConfig(200)
	g := Movies(cfg)
	entries := g.Lookup(g.Root(), ssd.Sym("Entry"))
	if len(entries) != 200 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Both cast representations occur.
	indexed := pathexpr.MustCompile("Entry.Movie.Cast.isint").Eval(g, g.Root())
	credit := pathexpr.MustCompile("Entry.Movie.Cast.Credit.Actors").Eval(g, g.Root())
	if len(indexed) == 0 || len(credit) == 0 {
		t.Errorf("cast representations: indexed=%d credit=%d, want both > 0", len(indexed), len(credit))
	}
	// TV shows occur with Episode ints.
	eps := pathexpr.MustCompile("Entry.TV-Show.Episode.isint").Eval(g, g.Root())
	if len(eps) == 0 {
		t.Error("no TV shows generated")
	}
	// References occur.
	refs := pathexpr.MustCompile("Entry._.References").Eval(g, g.Root())
	if len(refs) == 0 {
		t.Error("no references generated")
	}
}

func TestMoviesHasCycles(t *testing.T) {
	g := Movies(MovieConfig{Entries: 300, RefProb: 0.9, MaxCast: 2, Seed: 3, CreditRatio: 0.5})
	// A cycle exists iff some node is reachable from itself; check via the
	// Is-referenced-in back-links: follow References then Is-referenced-in.
	hits := pathexpr.MustCompile("Entry._.(References._.Is-referenced-in._)+").Eval(g, g.Root())
	if len(hits) == 0 {
		t.Skip("no back-link cycle in this seed (probabilistic)")
	}
}

func TestWebShape(t *testing.T) {
	g := Web(WebConfig{Pages: 300, OutLinks: 3, Seed: 7})
	pages := g.Lookup(g.Root(), ssd.Sym("Page"))
	if len(pages) != 300 {
		t.Fatalf("pages = %d", len(pages))
	}
	links := 0
	maxOut := 0
	in := make(map[ssd.NodeID]int)
	for _, p := range pages {
		out := len(g.Lookup(p, ssd.Sym("link")))
		links += out
		if out > maxOut {
			maxOut = out
		}
		for _, to := range g.Lookup(p, ssd.Sym("link")) {
			in[to]++
		}
	}
	if links == 0 {
		t.Fatal("no links")
	}
	// Heavy tail: some page should receive far more than the average
	// in-degree.
	maxIn := 0
	for _, c := range in {
		if c > maxIn {
			maxIn = c
		}
	}
	avg := float64(links) / float64(len(pages))
	if float64(maxIn) < 3*avg {
		t.Errorf("no popularity skew: maxIn=%d avg=%.1f", maxIn, avg)
	}
}

func TestACeDBDepth(t *testing.T) {
	g := ACeDB(BioConfig{Objects: 20, MaxDepth: 12, Fanout: 3, Seed: 11})
	if len(g.Lookup(g.Root(), ssd.Sym("Object"))) != 20 {
		t.Fatal("object count wrong")
	}
	// Arbitrary depth: at least one path deeper than 8 symbols.
	deep := pathexpr.MustCompile("_._._._._._._._._").Eval(g, g.Root())
	if len(deep) == 0 {
		t.Error("no deep paths in ACeDB workload")
	}
	// Raggedness: leaves at shallow depth too.
	shallow := pathexpr.MustCompile("Object._.isstring").Eval(g, g.Root())
	if len(shallow) == 0 {
		t.Error("no shallow values")
	}
}

func TestRelationalShape(t *testing.T) {
	db := Relational(100, 10, 5)
	if db["movies"].Len() != 100 {
		t.Errorf("movies = %d", db["movies"].Len())
	}
	if db["directors"].Len() != 10 {
		t.Errorf("directors = %d", db["directors"].Len())
	}
	// Every movie's director exists in directors (foreign key).
	dcol := db["directors"].Col("director")
	dirs := map[string]bool{}
	for _, row := range db["directors"].Rows() {
		s, _ := row[dcol].Text()
		dirs[s] = true
	}
	mcol := db["movies"].Col("director")
	for _, row := range db["movies"].Rows() {
		s, _ := row[mcol].Text()
		if !dirs[s] {
			t.Fatalf("dangling director %q", s)
		}
	}
}
