// Package workload generates the synthetic databases the experiments run
// on. The paper's evaluation substrate was live systems we cannot access —
// the 1997 IMDb web database behind Figure 1 [23], the Web itself, and the
// ACeDB biological database [36] — so each generator reproduces the
// *structural* property the paper uses the source for:
//
//   - Movies: Figure 1 at scale — mostly-regular entries with the two cast
//     representations (integer-indexed vs Credit.Actors), occasional
//     TV-Shows, and References edges that create cross-entry links and
//     cycles ("Is referenced in").
//   - Web: a page/link graph with no schema at all and heavy-tailed
//     out-degree (preferential attachment), for reachability and datalog
//     workloads.
//   - ACeDB: trees of arbitrary depth — the structure the paper says
//     "cannot be queried using conventional techniques".
//   - Relational: movie/director tables for the encoding equivalence
//     experiment (E5).
//
// All generators are deterministic in their Seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/relstore"
	"repro/internal/ssd"
)

// Fig1 returns the exact database of the paper's Figure 1 (with the
// "egregious error" in the Bacall edge corrected, as the paper's UnQL
// example does, unless keepError is true).
func Fig1(keepError bool) *ssd.Graph {
	bacall := "Bacall"
	if keepError {
		bacall = "Bacal" // the figure's misspelled edge label
	}
	src := fmt.Sprintf(`
	{Entry: #e1{Movie: {Title: "Casablanca",
	                    Cast: {1: "Bogart", 2: %q},
	                    Director: {"Curtiz"}}},
	 Entry: #e2{Movie: {Title: "Play it again, Sam",
	                    Cast: {Credit: {Actors: {"Allen"}}},
	                    Director: {"Allen"},
	                    References: #e1}},
	 Entry: {TV-Show: {Title: "Bogart retrospective",
	                   Cast: {Special-Guests: {"Bacall"}},
	                   Episode: 1200000}}}`, bacall)
	return ssd.MustParse(src)
}

var (
	firstNames = []string{"Humphrey", "Lauren", "Woody", "Ingrid", "Peter", "Diane", "Michael", "Grace", "Orson", "Bette"}
	lastNames  = []string{"Bogart", "Bacall", "Allen", "Bergman", "Lorre", "Keaton", "Curtiz", "Kelly", "Welles", "Davis"}
	titleWords = []string{"Casablanca", "Sleeper", "Manhattan", "Notorious", "Vertigo", "Laura", "Gilda", "Rebecca", "Suspicion", "Charade"}
)

// MovieConfig sizes the Figure-1-style generator.
type MovieConfig struct {
	Entries     int     // number of Entry edges
	TVShowRatio float64 // fraction of entries that are TV shows
	CreditRatio float64 // fraction of movie casts using the Credit.Actors form
	RefProb     float64 // probability an entry References an earlier one
	MaxCast     int     // cast members per production (≥1)
	Seed        int64
}

// DefaultMovieConfig returns a config matching Figure 1's flavour at the
// given scale.
func DefaultMovieConfig(entries int) MovieConfig {
	return MovieConfig{
		Entries:     entries,
		TVShowRatio: 0.2,
		CreditRatio: 0.3,
		RefProb:     0.25,
		MaxCast:     4,
		Seed:        1,
	}
}

// Movies generates the scalable Figure-1 database.
func Movies(cfg MovieConfig) *ssd.Graph {
	if cfg.MaxCast < 1 {
		cfg.MaxCast = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := ssd.NewWithCapacity(cfg.Entries * 12)
	var entryNodes []ssd.NodeID
	for i := 0; i < cfg.Entries; i++ {
		entry := g.AddLeaf(g.Root(), ssd.Sym("Entry"))
		entryNodes = append(entryNodes, entry)
		isTV := rng.Float64() < cfg.TVShowRatio
		kind := "Movie"
		if isTV {
			kind = "TV-Show"
		}
		prod := g.AddLeaf(entry, ssd.Sym(kind))
		title := g.AddLeaf(prod, ssd.Sym("Title"))
		g.AddLeaf(title, ssd.Str(fmt.Sprintf("%s %d", titleWords[rng.Intn(len(titleWords))], i)))
		cast := g.AddLeaf(prod, ssd.Sym("Cast"))
		n := 1 + rng.Intn(cfg.MaxCast)
		if isTV {
			guests := g.AddLeaf(cast, ssd.Sym("Special-Guests"))
			for j := 0; j < n; j++ {
				g.AddLeaf(guests, ssd.Str(lastNames[rng.Intn(len(lastNames))]))
			}
			ep := g.AddLeaf(prod, ssd.Sym("Episode"))
			g.AddLeaf(ep, ssd.Int(int64(rng.Intn(2_000_000))))
		} else {
			// The Figure 1 irregularity: two representations of a cast.
			if rng.Float64() < cfg.CreditRatio {
				credit := g.AddLeaf(cast, ssd.Sym("Credit"))
				actors := g.AddLeaf(credit, ssd.Sym("Actors"))
				for j := 0; j < n; j++ {
					g.AddLeaf(actors, ssd.Str(lastNames[rng.Intn(len(lastNames))]))
				}
			} else {
				for j := 0; j < n; j++ {
					member := g.AddLeaf(cast, ssd.Int(int64(j+1)))
					g.AddLeaf(member, ssd.Str(lastNames[rng.Intn(len(lastNames))]))
				}
			}
			director := g.AddLeaf(prod, ssd.Sym("Director"))
			g.AddLeaf(director, ssd.Str(lastNames[rng.Intn(len(lastNames))]))
		}
		// Cross-entry references, including back-links that form cycles.
		if i > 0 && rng.Float64() < cfg.RefProb {
			target := entryNodes[rng.Intn(i)]
			g.AddEdge(prod, ssd.Sym("References"), target)
			if rng.Float64() < 0.5 {
				back := g.LookupFirst(target, ssd.Sym("Movie"))
				if back == ssd.InvalidNode {
					back = g.LookupFirst(target, ssd.Sym("TV-Show"))
				}
				if back != ssd.InvalidNode {
					g.AddEdge(back, ssd.Sym("Is-referenced-in"), entry)
				}
			}
		}
	}
	return g
}

// SkewConfig sizes the skewed-selectivity generator.
type SkewConfig struct {
	Entries         int // number of Entry.Movie edges
	TagsPerMovie    int // Tag edges per movie (≥1)
	ReviewsPerMovie int // Reviews.Score leaves per movie (≥1)
	NeedleEvery     int // every n-th movie carries the rare "needle" tag
	Seed            int64
}

// DefaultSkewConfig returns a skew profile where Tag equality is far more
// selective than the Reviews fan-out.
func DefaultSkewConfig(entries int) SkewConfig {
	return SkewConfig{
		Entries:         entries,
		TagsPerMovie:    3,
		ReviewsPerMovie: 8,
		NeedleEvery:     100,
		Seed:            1,
	}
}

// Skewed generates a database whose label cardinalities are deliberately
// lopsided, so that a statistics-fed planner orders atoms differently from
// the structural heuristic. Every movie has one Title, a handful of Tag
// values drawn from a tiny popular set (with a rare "needle" value every
// NeedleEvery-th movie), and a wide Reviews subtree of integer Scores:
//
//	root –Entry→ e –Movie→ m
//	m –Title→ t → "..."            (1 per movie)
//	m –Tag→ x → "popular"|"needle" (TagsPerMovie per movie, needle rare)
//	m –Reviews→ r –Score→ s → int  (ReviewsPerMovie per movie)
//
// The heuristic planner sees Tag and Score atoms as structurally similar;
// the statistics know `Tag = "needle"` matches almost nothing while
// `Score > 0` matches everything.
func Skewed(cfg SkewConfig) *ssd.Graph {
	if cfg.TagsPerMovie < 1 {
		cfg.TagsPerMovie = 1
	}
	if cfg.ReviewsPerMovie < 1 {
		cfg.ReviewsPerMovie = 1
	}
	if cfg.NeedleEvery < 1 {
		cfg.NeedleEvery = 1
	}
	popular := []string{
		"drama", "comedy", "noir", "western", "musical", "thriller",
		"romance", "war", "silent", "serial", "short", "documentary",
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := ssd.NewWithCapacity(cfg.Entries * (4 + cfg.TagsPerMovie*2 + cfg.ReviewsPerMovie*3))
	for i := 0; i < cfg.Entries; i++ {
		entry := g.AddLeaf(g.Root(), ssd.Sym("Entry"))
		m := g.AddLeaf(entry, ssd.Sym("Movie"))
		title := g.AddLeaf(m, ssd.Sym("Title"))
		g.AddLeaf(title, ssd.Str(fmt.Sprintf("%s %d", titleWords[rng.Intn(len(titleWords))], i)))
		for j := 0; j < cfg.TagsPerMovie; j++ {
			tag := g.AddLeaf(m, ssd.Sym("Tag"))
			v := popular[rng.Intn(len(popular))]
			if j == 0 && i%cfg.NeedleEvery == 0 {
				v = "needle"
			}
			g.AddLeaf(tag, ssd.Str(v))
		}
		reviews := g.AddLeaf(m, ssd.Sym("Reviews"))
		for j := 0; j < cfg.ReviewsPerMovie; j++ {
			score := g.AddLeaf(reviews, ssd.Sym("Score"))
			g.AddLeaf(score, ssd.Int(int64(1+rng.Intn(10))))
		}
	}
	return g
}

// WebConfig sizes the web-graph generator.
type WebConfig struct {
	Pages    int
	OutLinks int // average out-degree
	Seed     int64
}

// Web generates a schema-less page/link graph with preferential attachment,
// modeling "data sources such as the Web, which we would like to treat as
// databases but which cannot be constrained by a schema" (§1.1). Every page
// has a url and a title; ~half have a modified date; link targets follow a
// heavy-tailed popularity distribution.
func Web(cfg WebConfig) *ssd.Graph {
	if cfg.OutLinks < 1 {
		cfg.OutLinks = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := ssd.NewWithCapacity(cfg.Pages * 5)
	pages := make([]ssd.NodeID, cfg.Pages)
	// popularity holds one entry per received link for preferential
	// attachment; seeded with each page once.
	popularity := make([]int, 0, cfg.Pages*(cfg.OutLinks+1))
	for i := range pages {
		pages[i] = g.AddLeaf(g.Root(), ssd.Sym("Page"))
		url := g.AddLeaf(pages[i], ssd.Sym("url"))
		g.AddLeaf(url, ssd.Str(fmt.Sprintf("http://site%d.example/p%d", i%97, i)))
		ti := g.AddLeaf(pages[i], ssd.Sym("title"))
		g.AddLeaf(ti, ssd.Str(fmt.Sprintf("page %d about %s", i, titleWords[rng.Intn(len(titleWords))])))
		if rng.Intn(2) == 0 {
			mod := g.AddLeaf(pages[i], ssd.Sym("modified"))
			g.AddLeaf(mod, ssd.Int(int64(800000000+rng.Intn(60000000))))
		}
		popularity = append(popularity, i)
	}
	for i := range pages {
		// Out-degree 0..2*OutLinks-1: some pages are dead ends, like the
		// real web.
		n := rng.Intn(cfg.OutLinks * 2)
		for j := 0; j < n; j++ {
			target := popularity[rng.Intn(len(popularity))]
			g.AddEdge(pages[i], ssd.Sym("link"), pages[target])
			popularity = append(popularity, target)
		}
	}
	return g
}

// BioConfig sizes the ACeDB-style generator.
type BioConfig struct {
	Objects  int // top-level objects
	MaxDepth int // maximum nesting depth (trees of arbitrary depth)
	Fanout   int
	Seed     int64
}

// ACeDB generates deep, ragged trees in the style of the C. elegans
// database §1.1 describes: a loose schema, trees of arbitrary depth, and
// fields that may or may not be present.
func ACeDB(cfg BioConfig) *ssd.Graph {
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.Fanout < 1 {
		cfg.Fanout = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := ssd.New()
	fields := []string{"Gene", "Locus", "Clone", "Map", "Position", "Author", "Paper", "Remark", "Contains"}
	var grow func(n ssd.NodeID, depth int)
	grow = func(n ssd.NodeID, depth int) {
		if depth >= cfg.MaxDepth {
			g.AddLeaf(n, ssd.Str(fmt.Sprintf("leaf-%d", rng.Intn(1000))))
			return
		}
		k := 1 + rng.Intn(cfg.Fanout)
		for i := 0; i < k; i++ {
			child := g.AddLeaf(n, ssd.Sym(fields[rng.Intn(len(fields))]))
			switch rng.Intn(4) {
			case 0:
				// Terminate early with an int value: raggedness.
				g.AddLeaf(child, ssd.Int(int64(rng.Intn(100000))))
			case 1:
				g.AddLeaf(child, ssd.Str(fmt.Sprintf("val-%d", rng.Intn(1000))))
			default:
				grow(child, depth+1)
			}
		}
	}
	for i := 0; i < cfg.Objects; i++ {
		obj := g.AddLeaf(g.Root(), ssd.Sym("Object"))
		name := g.AddLeaf(obj, ssd.Sym("Name"))
		g.AddLeaf(name, ssd.Str(fmt.Sprintf("obj-%d", i)))
		grow(obj, 1)
	}
	return g
}

// Relational generates movie/director tables for experiment E5.
func Relational(nMovies, nDirectors int, seed int64) relstore.Database {
	rng := rand.New(rand.NewSource(seed))
	directors := relstore.NewRelation("director", "born")
	dnames := make([]string, 0, nDirectors)
	for i := 0; i < nDirectors; i++ {
		// The first few directors carry plain surnames so the relational
		// data overlaps with the semistructured movie generator — the
		// integration example joins across the two sources on these.
		name := lastNames[i%len(lastNames)]
		if i >= len(lastNames) {
			name = fmt.Sprintf("%s %s %d", firstNames[rng.Intn(len(firstNames))], name, i)
		}
		dnames = append(dnames, name)
		directors.Add(ssd.Str(name), ssd.Int(int64(1880+rng.Intn(80))))
	}
	movies := relstore.NewRelation("title", "year", "director")
	for i := 0; i < nMovies; i++ {
		movies.Add(
			ssd.Str(fmt.Sprintf("%s %d", titleWords[rng.Intn(len(titleWords))], i)),
			ssd.Int(int64(1920+rng.Intn(60))),
			ssd.Str(dnames[rng.Intn(len(dnames))]),
		)
	}
	return relstore.Database{"movies": movies, "directors": directors}
}
