package schema

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

const movieSchemaSrc = `
{Entry: #e{Movie: {Title: isstring,
                   Cast: {isint: isstring, Credit: {Actors: {isstring}}},
                   Director: {isstring},
                   References: #e},
           TV-Show: {Title: isstring,
                     Cast: {Special-Guests: {isstring}},
                     Episode: isint}}}`

func movieData(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Entry: #e1{Movie: {Title: "Casablanca",
	                    Cast: {1: "Bogart", 2: "Bacall"},
	                    Director: {"Curtiz"}}},
	 Entry: #e2{Movie: {Title: "Play it again, Sam",
	                    Cast: {Credit: {Actors: {"Allen"}}},
	                    Director: {"Allen"},
	                    References: #e1}},
	 Entry: {TV-Show: {Title: "Bogart retrospective",
	                   Cast: {Special-Guests: {"Bacall"}},
	                   Episode: 1200000}}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConformsMovieDB(t *testing.T) {
	s := MustParse(movieSchemaSrc)
	data := movieData(t)
	if !s.Conforms(data) {
		t.Fatal("figure-1 data should conform to the movie schema")
	}
}

func TestConformsRejects(t *testing.T) {
	s := MustParse(movieSchemaSrc)
	bad := ssd.MustParse(`{Entry: {Movie: {Budget: 1000000}}}`)
	if s.Conforms(bad) {
		t.Error("Budget edge is not in the schema: must not conform")
	}
	badType := ssd.MustParse(`{Entry: {Movie: {Title: 42}}}`)
	if s.Conforms(badType) {
		t.Error("int Title violates isstring")
	}
}

func TestConformsLooseness(t *testing.T) {
	// Schemas place loose constraints (§1.1, ACeDB): data may omit edges.
	s := MustParse(movieSchemaSrc)
	partial := ssd.MustParse(`{Entry: {Movie: {Title: "Just a title"}}}`)
	if !s.Conforms(partial) {
		t.Error("partial data should conform (simulation is one-way)")
	}
	empty := ssd.MustParse(`{}`)
	if !s.Conforms(empty) {
		t.Error("empty database conforms to everything")
	}
}

func TestConformsCycle(t *testing.T) {
	s := MustParse(movieSchemaSrc)
	// Two movies referencing each other: the schema's References self-loop
	// must absorb the data cycle.
	data := ssd.MustParse(`
	{Entry: #a{Movie: {Title: "A", References: #b}},
	 Entry: #b{Movie: {Title: "B", References: #a}}}`)
	if !s.Conforms(data) {
		t.Error("cyclic references should conform via the schema cycle")
	}
}

func TestWildcardSchema(t *testing.T) {
	s := MustParse(`#any{_: #any}`)
	data := movieData(t)
	if !s.Conforms(data) {
		t.Error("the universal schema must accept everything")
	}
}

func TestInterpretLabel(t *testing.T) {
	cases := []struct {
		label ssd.Label
		data  ssd.Label
		want  bool
	}{
		{ssd.Sym("_"), ssd.Str("anything"), true},
		{ssd.Sym("isint"), ssd.Int(3), true},
		{ssd.Sym("isint"), ssd.Str("3"), false},
		{ssd.Sym("isdata"), ssd.Float(1.5), true},
		{ssd.Sym("like:act%"), ssd.Sym("actors"), true},
		{ssd.Sym("like:act%"), ssd.Sym("directors"), false},
		{ssd.Sym("Movie"), ssd.Sym("Movie"), true},
		{ssd.Sym("Movie"), ssd.Sym("Show"), false},
		{ssd.Str("x"), ssd.Str("x"), true},
	}
	for _, c := range cases {
		if got := InterpretLabel(c.label).Match(c.data); got != c.want {
			t.Errorf("InterpretLabel(%s).Match(%s) = %v, want %v", c.label, c.data, got, c.want)
		}
	}
}

func TestSetPred(t *testing.T) {
	g := ssd.New()
	g.AddLeaf(g.Root(), ssd.Sym("year"))
	s := New(g)
	s.SetPred(g.Root(), 0, pathexpr.CmpPred{Op: pathexpr.OpGT, Rhs: ssd.Int(1900)})
	okData := ssd.MustParse(`{1950}`)
	if !s.Conforms(okData) {
		t.Error("1950 > 1900 should conform")
	}
	badData := ssd.MustParse(`{1850}`)
	if s.Conforms(badData) {
		t.Error("1850 should not conform")
	}
}

func TestClassify(t *testing.T) {
	s := MustParse(`{Movie: {Title: isstring}}`)
	data := ssd.MustParse(`{Movie: {Title: "x"}}`)
	classes := s.Classify(data)
	if len(classes[data.Root()]) == 0 {
		t.Error("root should be classified by the schema root")
	}
	found := false
	for _, u := range classes[data.Root()] {
		if u == s.G.Root() {
			found = true
		}
	}
	if !found {
		t.Error("root's classes should include the schema root")
	}
}

func TestPrunePreservesResults(t *testing.T) {
	s := MustParse(movieSchemaSrc)
	data := movieData(t)
	for _, src := range []string{
		"Entry.Movie.Title",
		"Entry.Movie.Title._",
		"_*.isstring",
		"Entry.(Movie|TV-Show).Cast._*",
		`Entry.Movie.(!Movie)*."Allen"`,
		"Entry.Movie.References.Movie.Title._",
	} {
		plain := pathexpr.MustCompile(src).Eval(data, data.Root())
		pruned := s.Prune(pathexpr.MustCompile(src)).Eval(data, data.Root())
		if !reflect.DeepEqual(plain, pruned) {
			t.Errorf("%s: plain %v, pruned %v", src, plain, pruned)
		}
	}
}

func TestPruneEliminatesImpossible(t *testing.T) {
	s := MustParse(movieSchemaSrc)
	// The schema has no Budget edge anywhere: the pruned automaton should
	// be empty (zero arcs from its start), and evaluation returns nothing.
	au := s.Prune(pathexpr.MustCompile("Entry.Movie.Budget"))
	data := movieData(t)
	if got := au.Eval(data, data.Root()); len(got) != 0 {
		t.Errorf("impossible query returned %v", got)
	}
	if au.NumStates() > 2 {
		t.Errorf("impossible query should compile to the empty automaton, got %d states", au.NumStates())
	}
}

func TestPruneShrinksSearch(t *testing.T) {
	s := MustParse(movieSchemaSrc)
	// TV shows have no Director: pruning `Entry._.Director._` should drop
	// the TV-Show branch. We can't observe internal visit counts here (the
	// bench does), but the pruned automaton must still be correct.
	data := movieData(t)
	src := "Entry._.Director._"
	plain := pathexpr.MustCompile(src).Eval(data, data.Root())
	pruned := s.Prune(pathexpr.MustCompile(src)).Eval(data, data.Root())
	if !reflect.DeepEqual(plain, pruned) {
		t.Errorf("plain %v pruned %v", plain, pruned)
	}
	if len(plain) != 2 {
		t.Errorf("Director values = %d, want 2", len(plain))
	}
}

func TestInferConformance(t *testing.T) {
	data := movieData(t)
	s := Infer(data)
	if !s.Conforms(data) {
		t.Fatalf("data must conform to its inferred schema:\n%s", s)
	}
	nodes, edges := s.Size()
	if nodes == 0 || edges == 0 {
		t.Error("inferred schema is empty")
	}
	// The schema generalizes: strings became isstring.
	hasIsString := false
	for _, l := range s.Labels() {
		if sym, _ := l.Symbol(); sym == "isstring" {
			hasIsString = true
		}
	}
	if !hasIsString {
		t.Error("inferred schema should contain isstring edges")
	}
}

func TestInferConformanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed)
		return Infer(g).Conforms(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInferSmallerThanData(t *testing.T) {
	// 50 identical entries infer to a constant-size schema.
	g := ssd.New()
	for i := 0; i < 50; i++ {
		e := g.AddLeaf(g.Root(), ssd.Sym("Entry"))
		ti := g.AddLeaf(e, ssd.Sym("Title"))
		g.AddLeaf(ti, ssd.Str("same"))
	}
	s := Infer(g)
	nodes, _ := s.Size()
	if nodes > 5 {
		t.Errorf("inferred schema has %d nodes, want ≤ 5", nodes)
	}
}

func randGraph(seed int64) *ssd.Graph {
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	for i := 0; i < 12; i++ {
		ids = append(ids, g.AddNode())
	}
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Int(1), ssd.Str("v"), ssd.Float(0.5)}
	for i := 0; i < 30; i++ {
		g.AddEdge(ids[next(len(ids))], labels[next(len(labels))], ids[next(len(ids))])
	}
	return g
}
