// Package schema implements graph schemas for semistructured data (§5 of
// the paper): a schema is itself an edge-labeled graph whose edges carry
// predicates, and a database conforms to a schema iff there is a simulation
// of the database in the schema [8]. The package also implements the two
// applications §5 highlights: schema-based query optimization [20]
// (pruning a path-expression automaton against a schema, experiment E8) and
// structure discovery (inferring a schema from data).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bisim"
	"repro/internal/pathexpr"
	"repro/internal/ssd"
)

// Schema is a rooted graph whose edges are interpreted as predicates on
// data labels. It reuses the ssd graph and text syntax: symbol edges whose
// names collide with predicate keywords (`_`, isint, isstring, ...) are
// interpreted as those predicates; every other label matches exactly.
// Richer predicates can be attached programmatically with SetPred.
type Schema struct {
	G *ssd.Graph
	// preds overrides the default label interpretation on specific edges,
	// keyed by (from, edge index).
	preds map[edgeKey]pathexpr.Pred
}

type edgeKey struct {
	from ssd.NodeID
	idx  int
}

// New wraps a rooted graph as a schema.
func New(g *ssd.Graph) *Schema {
	return &Schema{G: g, preds: make(map[edgeKey]pathexpr.Pred)}
}

// Parse parses a schema in the ssd text syntax, e.g.
//
//	{Entry: #e{Movie: {Title: isstring, Cast: {_: isstring},
//	                   References: #e}}}
func Parse(src string) (*Schema, error) {
	g, err := ssd.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	return New(g), nil
}

// MustParse is Parse but panics on error.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// SetPred attaches an explicit predicate to the idx-th edge out of from,
// overriding the label interpretation.
func (s *Schema) SetPred(from ssd.NodeID, idx int, p pathexpr.Pred) {
	s.preds[edgeKey{from, idx}] = p
}

// PredOf returns the predicate of the idx-th edge out of from.
func (s *Schema) PredOf(from ssd.NodeID, idx int) pathexpr.Pred {
	if p, ok := s.preds[edgeKey{from, idx}]; ok {
		return p
	}
	return InterpretLabel(s.G.Out(from)[idx].Label)
}

// InterpretLabel maps a schema edge label to its default predicate: the
// wildcard `_`, the type tests, a `like:pat` symbol, or exact match.
func InterpretLabel(l ssd.Label) pathexpr.Pred {
	if sym, ok := l.Symbol(); ok {
		switch sym {
		case "_":
			return pathexpr.AnyPred{}
		case "isint":
			return pathexpr.TypePred{Kind: ssd.KindInt}
		case "isfloat":
			return pathexpr.TypePred{Kind: ssd.KindFloat}
		case "isstring":
			return pathexpr.TypePred{Kind: ssd.KindString}
		case "issymbol":
			return pathexpr.TypePred{Kind: ssd.KindSymbol}
		case "isbool":
			return pathexpr.TypePred{Kind: ssd.KindBool}
		case "isdata":
			return pathexpr.TypePred{IsData: true}
		}
		if pat, ok2 := strings.CutPrefix(sym, "like:"); ok2 {
			return pathexpr.LikePred{Pattern: pat}
		}
	}
	return pathexpr.ExactPred{L: l}
}

// Conforms reports whether the database rooted at data.Root() conforms to
// the schema: there is a simulation of the data in the schema graph whose
// label matching is predicate satisfaction [8].
func (s *Schema) Conforms(data *ssd.Graph) bool {
	return s.ConformsAt(data, data.Root())
}

// ConformsAt checks conformance of the value rooted at a specific node.
func (s *Schema) ConformsAt(data *ssd.Graph, root ssd.NodeID) bool {
	// bisim.Simulation matches labels, not edges, so exact per-edge pred
	// overrides are folded into a label-level match: a data label matches a
	// schema label if the interpreted predicate accepts it OR some override
	// on an edge with that label accepts it. Overrides keyed by edges with
	// duplicate labels are conservatively unioned.
	overridesByLabel := make(map[ssd.Label][]pathexpr.Pred)
	for k, p := range s.preds {
		l := s.G.Out(k.from)[k.idx].Label
		overridesByLabel[l] = append(overridesByLabel[l], p)
	}
	match := func(d, pattern ssd.Label) bool {
		if ps, ok := overridesByLabel[pattern]; ok {
			for _, p := range ps {
				if p.Match(d) {
					return true
				}
			}
			return false
		}
		return InterpretLabel(pattern).Match(d)
	}
	return bisim.Simulates(data, root, s.G, s.G.Root(), match)
}

// Classify returns, for every data node, the sorted list of schema nodes
// that simulate it — the "partial answers"/browsing use of schemas §5
// mentions: a node's schema classes describe what is known about it.
func (s *Schema) Classify(data *ssd.Graph) map[ssd.NodeID][]ssd.NodeID {
	match := func(d, pattern ssd.Label) bool { return InterpretLabel(pattern).Match(d) }
	rel := bisim.Simulation(data, s.G, match)
	out := make(map[ssd.NodeID][]ssd.NodeID, data.NumNodes())
	for v := 0; v < data.NumNodes(); v++ {
		var classes []ssd.NodeID
		for u := 0; u < s.G.NumNodes(); u++ {
			if rel.Has(ssd.NodeID(v), ssd.NodeID(u)) {
				classes = append(classes, ssd.NodeID(u))
			}
		}
		out[ssd.NodeID(v)] = classes
	}
	return out
}

// ---------------------------------------------------------------------------
// Schema-based query pruning (§5, [20]; experiment E8)

// Prune intersects a compiled path expression with the schema: the result
// automaton's states are (query state, schema node) pairs, and its arcs
// conjoin the query predicate with the schema edge predicate. States that
// cannot reach acceptance are trimmed. On data conforming to the schema the
// pruned automaton returns the same results while exploring fewer product
// pairs — and a query the schema rules out entirely becomes the empty
// automaton without touching the data.
func (s *Schema) Prune(au *pathexpr.Automaton) *pathexpr.Automaton {
	type pstate struct {
		q int        // query NFA state
		u ssd.NodeID // schema node
	}
	id := map[pstate]int{}
	var states []pstate
	intern := func(ps pstate) int {
		if i, ok := id[ps]; ok {
			return i
		}
		i := len(states)
		id[ps] = i
		states = append(states, ps)
		return i
	}

	// Forward-reachable product construction. Query epsilon moves don't
	// consume schema edges, so the product works over epsilon-closed query
	// states: arcs out of (q,u) come from every q' in closure(q).
	start := intern(pstate{au.Start(), s.G.Root()})
	var arcs []parc
	accepting := map[int]bool{}
	for head := 0; head < len(states); head++ {
		ps := states[head]
		for _, q := range au.Closure(ps.q) {
			if q == au.Accept() {
				accepting[head] = true
			}
			for _, arc := range au.Arcs(q) {
				for i, se := range s.G.Out(ps.u) {
					spred := s.PredOf(ps.u, i)
					// Satisfiability check for the common exact-label case:
					// skip arcs that can never fire.
					if ep, ok := spred.(pathexpr.ExactPred); ok && !arc.Pred.Match(ep.L) {
						// The schema edge admits exactly one label and the
						// query rejects it.
						continue
					}
					to := intern(pstate{arc.To, se.To})
					arcs = append(arcs, parc{head, pathexpr.AndPred{A: arc.Pred, B: spred}, to})
				}
			}
		}
	}

	// Trim: keep only states co-reachable from accepting ones.
	keep := coReachable(len(states), arcs, accepting)
	if !keep[start] {
		return emptyAutomaton()
	}
	remap := make([]int, len(states))
	n := 0
	for i := range states {
		if keep[i] {
			remap[i] = n
			n++
		} else {
			remap[i] = -1
		}
	}
	outArcs := make([][]pathexpr.Arc, n+1) // +1 for the unified accept state
	outEps := make([][]int, n+1)
	acceptState := n
	for _, a := range arcs {
		if remap[a.from] < 0 || remap[a.to] < 0 {
			continue
		}
		outArcs[remap[a.from]] = append(outArcs[remap[a.from]], pathexpr.Arc{Pred: a.pred, To: remap[a.to]})
	}
	for i := range states {
		if keep[i] && accepting[i] {
			outEps[remap[i]] = append(outEps[remap[i]], acceptState)
		}
	}
	return pathexpr.NewAutomaton(outArcs, outEps, remap[start], acceptState)
}

// parc is a product-automaton arc under construction in Prune.
type parc struct {
	from int
	pred pathexpr.Pred
	to   int
}

func coReachable(n int, arcs []parc, accepting map[int]bool) []bool {
	rev := make([][]int, n)
	for _, a := range arcs {
		rev[a.to] = append(rev[a.to], a.from)
	}
	keep := make([]bool, n)
	var stack []int
	for s := range accepting {
		if !keep[s] {
			keep[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range rev[v] {
			if !keep[w] {
				keep[w] = true
				stack = append(stack, w)
			}
		}
	}
	return keep
}

func emptyAutomaton() *pathexpr.Automaton {
	// Two states, no arcs: matches nothing.
	return pathexpr.NewAutomaton(make([][]pathexpr.Arc, 2), make([][]int, 2), 0, 1)
}

// ---------------------------------------------------------------------------
// Structure discovery (§5 "to impose (or to discover) some form of
// structure")

// Infer extracts a schema from data: base-data edge labels are generalized
// to type tests first, and the generalized graph is then quotiented by
// bisimilarity. Generalizing first lets structurally identical records with
// different values collapse into one schema node, so inferred schemas stay
// compact even when every string in the data is distinct. The result is a
// schema the data is guaranteed to conform to, in the spirit of [8]'s
// approximation schemas.
func Infer(data *ssd.Graph) *Schema {
	gen := ssd.NewWithCapacity(data.NumNodes())
	if data.NumNodes() > 1 {
		gen.AddNodes(data.NumNodes() - 1)
	}
	for v := 0; v < data.NumNodes(); v++ {
		for _, e := range data.Out(ssd.NodeID(v)) {
			gen.AddEdge(ssd.NodeID(v), generalize(e.Label), e.To)
		}
	}
	gen.SetRoot(data.Root())
	return New(bisim.Minimize(gen))
}

func generalize(l ssd.Label) ssd.Label {
	switch l.Kind() {
	case ssd.KindInt:
		return ssd.Sym("isint")
	case ssd.KindFloat:
		return ssd.Sym("isfloat")
	case ssd.KindString:
		return ssd.Sym("isstring")
	case ssd.KindBool:
		return ssd.Sym("isbool")
	default:
		return l
	}
}

// String renders the schema in the ssd text syntax.
func (s *Schema) String() string { return ssd.FormatRoot(s.G) }

// Size returns (nodes, edges) of the schema graph.
func (s *Schema) Size() (int, int) { return s.G.NumNodes(), s.G.NumEdges() }

// Labels returns the distinct schema edge labels, sorted — a quick look at
// what the schema permits.
func (s *Schema) Labels() []ssd.Label {
	ls := s.G.AllLabels()
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	return ls
}
