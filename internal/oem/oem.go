// Package oem implements the Object Exchange Model of the Tsimmis project
// (§1.2 of the paper, [33]): "a highly flexible data structure that may be
// used to capture most kinds of data and provides a substrate in which
// almost any other data structure may be represented".
//
// An OEM object is (oid, label, type, value): the value is either atomic
// (int, real, str, bool) or a set of oids. OEM is the node-labeled variant
// the paper discusses in §2 — each *object* carries the label — so the
// conversion to the package's edge-labeled model is exactly the paper's
// "introduce extra edges" mapping: the object's label becomes the label of
// every edge pointing at it.
//
// The wire format is line-based, one object per line:
//
//	&o1 entry set &o2 &o3
//	&o2 title str "Casablanca"
//	&o3 year int 1942
//
// The first object is the root. Comments run from # to end of line.
package oem

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ssd"
)

// Type is an OEM value type tag.
type Type int

// OEM value types.
const (
	TypeSet Type = iota
	TypeInt
	TypeReal
	TypeStr
	TypeBool
)

func (t Type) String() string {
	return [...]string{"set", "int", "real", "str", "bool"}[t]
}

func parseType(s string) (Type, error) {
	switch s {
	case "set":
		return TypeSet, nil
	case "int":
		return TypeInt, nil
	case "real":
		return TypeReal, nil
	case "str":
		return TypeStr, nil
	case "bool":
		return TypeBool, nil
	}
	return 0, fmt.Errorf("oem: unknown type %q", s)
}

// Object is one OEM object.
type Object struct {
	OID     string
	Label   string
	Type    Type
	Atom    ssd.Label // for atomic types
	Members []string  // oids, for TypeSet
}

// Document is a parsed OEM database: objects in definition order, the first
// being the root.
type Document struct {
	Objects []Object
	byOID   map[string]int
}

// Root returns the root object.
func (d *Document) Root() *Object { return &d.Objects[0] }

// Lookup finds an object by oid.
func (d *Document) Lookup(oid string) (*Object, bool) {
	i, ok := d.byOID[oid]
	if !ok {
		return nil, false
	}
	return &d.Objects[i], true
}

// Parse reads the line-based OEM format.
func Parse(src string) (*Document, error) {
	d := &Document{byOID: map[string]int{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		obj, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("oem: line %d: %w", lineNo+1, err)
		}
		if _, dup := d.byOID[obj.OID]; dup {
			return nil, fmt.Errorf("oem: line %d: duplicate oid %s", lineNo+1, obj.OID)
		}
		d.byOID[obj.OID] = len(d.Objects)
		d.Objects = append(d.Objects, obj)
	}
	if len(d.Objects) == 0 {
		return nil, fmt.Errorf("oem: empty document")
	}
	// Referential integrity.
	for _, o := range d.Objects {
		for _, m := range o.Members {
			if _, ok := d.byOID[m]; !ok {
				return nil, fmt.Errorf("oem: object %s references undefined oid %s", o.OID, m)
			}
		}
	}
	return d, nil
}

func parseLine(line string) (Object, error) {
	fields, err := splitFields(line)
	if err != nil {
		return Object{}, err
	}
	if len(fields) < 3 {
		return Object{}, fmt.Errorf("want `&oid label type value...`, got %q", line)
	}
	oid, ok := strings.CutPrefix(fields[0], "&")
	if !ok || oid == "" {
		return Object{}, fmt.Errorf("oid must start with &: %q", fields[0])
	}
	typ, err := parseType(fields[2])
	if err != nil {
		return Object{}, err
	}
	obj := Object{OID: oid, Label: fields[1], Type: typ}
	vals := fields[3:]
	switch typ {
	case TypeSet:
		for _, v := range vals {
			m, ok := strings.CutPrefix(v, "&")
			if !ok {
				return Object{}, fmt.Errorf("set member %q is not an oid", v)
			}
			obj.Members = append(obj.Members, m)
		}
	case TypeInt:
		if len(vals) != 1 {
			return Object{}, fmt.Errorf("int needs one value")
		}
		n, err := strconv.ParseInt(vals[0], 10, 64)
		if err != nil {
			return Object{}, err
		}
		obj.Atom = ssd.Int(n)
	case TypeReal:
		if len(vals) != 1 {
			return Object{}, fmt.Errorf("real needs one value")
		}
		f, err := strconv.ParseFloat(vals[0], 64)
		if err != nil {
			return Object{}, err
		}
		obj.Atom = ssd.Float(f)
	case TypeStr:
		if len(vals) != 1 {
			return Object{}, fmt.Errorf("str needs one (quoted) value")
		}
		s, err := strconv.Unquote(vals[0])
		if err != nil {
			return Object{}, fmt.Errorf("bad string %q: %v", vals[0], err)
		}
		obj.Atom = ssd.Str(s)
	case TypeBool:
		if len(vals) != 1 || (vals[0] != "true" && vals[0] != "false") {
			return Object{}, fmt.Errorf("bool needs true or false")
		}
		obj.Atom = ssd.Bool(vals[0] == "true")
	}
	return obj, nil
}

// splitFields splits on whitespace but keeps quoted strings intact.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string")
			}
			out = append(out, line[i:j+1])
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out, nil
}

// Format renders the document in the wire format, root first, the rest in
// oid order.
func (d *Document) Format() string {
	var b strings.Builder
	writeObj := func(o *Object) {
		fmt.Fprintf(&b, "&%s %s %s", o.OID, o.Label, o.Type)
		switch o.Type {
		case TypeSet:
			for _, m := range o.Members {
				b.WriteString(" &" + m)
			}
		case TypeStr:
			s, _ := o.Atom.Text()
			b.WriteString(" " + strconv.Quote(s))
		default:
			b.WriteString(" " + o.Atom.String())
		}
		b.WriteByte('\n')
	}
	writeObj(&d.Objects[0])
	rest := make([]*Object, 0, len(d.Objects)-1)
	for i := range d.Objects[1:] {
		rest = append(rest, &d.Objects[i+1])
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].OID < rest[j].OID })
	for _, o := range rest {
		writeObj(o)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Conversion to/from the edge-labeled model

// ToGraph converts an OEM document to an edge-labeled graph: object o with
// label ℓ becomes a node reached by edges labeled ℓ (the §2 node-labeled →
// edge-labeled mapping); atomic objects additionally carry a data edge with
// their value; object identities are preserved as node oids. The graph root
// is a fresh node with one edge (the root object's label) to the root
// object.
func ToGraph(d *Document) *ssd.Graph {
	g := ssd.New()
	nodes := make(map[string]ssd.NodeID, len(d.Objects))
	for _, o := range d.Objects {
		n := g.AddNode()
		g.SetOID(n, o.OID)
		nodes[o.OID] = n
	}
	for _, o := range d.Objects {
		n := nodes[o.OID]
		if o.Type == TypeSet {
			for _, m := range o.Members {
				mo, _ := d.Lookup(m)
				g.AddEdge(n, ssd.Sym(mo.Label), nodes[m])
			}
			continue
		}
		g.AddLeaf(n, o.Atom)
	}
	root := d.Root()
	g.AddEdge(g.Root(), ssd.Sym(root.Label), nodes[root.OID])
	return g
}

// FromGraph converts an edge-labeled graph into an OEM document. Each
// reachable node becomes an object whose label is the label of the edge the
// BFS first reached it through (the root gets label "root"); a node whose
// only edge is a single data edge to a leaf becomes an atomic object;
// everything else becomes a set. Existing node oids are kept; others are
// generated as o0, o1, …. The conversion loses edge-label multiplicity the
// same way any edge→node label move does (§2), but ToGraph∘FromGraph
// preserves query behaviour for symbol-labeled data, which tests verify.
func FromGraph(g *ssd.Graph) *Document {
	d := &Document{byOID: map[string]int{}}
	type qitem struct {
		node  ssd.NodeID
		label string
	}
	oidOf := make(map[ssd.NodeID]string)
	next := 0
	genOID := func(n ssd.NodeID) string {
		if id, ok := g.OIDOf(n); ok {
			return id
		}
		id := fmt.Sprintf("o%d", next)
		next++
		return id
	}
	visited := map[ssd.NodeID]bool{g.Root(): true}
	queue := []qitem{{g.Root(), "root"}}
	var order []qitem
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		order = append(order, it)
		oidOf[it.node] = genOID(it.node)
		for _, e := range g.Out(it.node) {
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			lbl := "item"
			if s, ok := e.Label.Symbol(); ok {
				lbl = s
			}
			queue = append(queue, qitem{e.To, lbl})
		}
	}
	for _, it := range order {
		obj := Object{OID: oidOf[it.node], Label: it.label}
		es := g.Out(it.node)
		if len(es) == 1 && es[0].Label.IsData() && g.IsLeaf(es[0].To) {
			obj.Atom = es[0].Label
			switch es[0].Label.Kind() {
			case ssd.KindInt:
				obj.Type = TypeInt
			case ssd.KindFloat:
				obj.Type = TypeReal
			case ssd.KindString:
				obj.Type = TypeStr
			case ssd.KindBool:
				obj.Type = TypeBool
			}
		} else {
			obj.Type = TypeSet
			for _, e := range es {
				obj.Members = append(obj.Members, oidOf[e.To])
			}
		}
		d.byOID[obj.OID] = len(d.Objects)
		d.Objects = append(d.Objects, obj)
	}
	return d
}
