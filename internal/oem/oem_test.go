package oem

import (
	"strings"
	"testing"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
	"repro/internal/workload"
)

const movieOEM = `
# Figure 1, in the Tsimmis exchange format.
&db  db    set &e1 &e2
&e1  entry set &t1 &c1
&t1  title str "Casablanca"
&c1  cast  set &a1 &a2
&a1  actor str "Bogart"
&a2  actor str "Bacall"
&e2  entry set &t2 &y2 &r2
&t2  title str "Play it again, Sam"
&y2  year  int 1972
&r2  rating real 7.5
`

func TestParseBasics(t *testing.T) {
	d, err := Parse(movieOEM)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Objects) != 10 {
		t.Fatalf("objects = %d, want 10", len(d.Objects))
	}
	if d.Root().OID != "db" {
		t.Errorf("root = %s", d.Root().OID)
	}
	if o, ok := d.Lookup("t1"); !ok || o.Type != TypeStr {
		t.Error("t1 lookup failed")
	}
	if o, _ := d.Lookup("y2"); o.Type != TypeInt {
		t.Error("y2 should be int")
	}
	if o, _ := d.Lookup("c1"); len(o.Members) != 2 {
		t.Error("c1 should have 2 members")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`o1 label set`,            // missing &
		`&o1 label settee`,        // bad type
		`&o1 label set &missing`,  // dangling ref
		`&o1 l str "a" "b"`,       // too many values
		`&o1 l int x`,             // bad int
		`&o1 l bool maybe`,        // bad bool
		`&o1 l str "unterminated`, // bad string
		"&o1 l set\n&o1 l2 int 3", // duplicate oid
		`&o1 l set o2`,            // member without &
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	d, err := Parse(movieOEM)
	if err != nil {
		t.Fatal(err)
	}
	text := d.Format()
	d2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if d2.Format() != text {
		t.Error("format not stable")
	}
	if len(d2.Objects) != len(d.Objects) {
		t.Error("object count changed")
	}
}

func TestToGraph(t *testing.T) {
	d, _ := Parse(movieOEM)
	g := ToGraph(d)
	// The root object's label is the edge from the graph root.
	titles := pathexpr.MustCompile(`db.entry.title."Casablanca"`).Eval(g, g.Root())
	if len(titles) != 1 {
		t.Fatalf("title path hits = %d, want 1", len(titles))
	}
	actors := pathexpr.MustCompile("db.entry.cast.actor.isstring").Eval(g, g.Root())
	if len(actors) != 2 {
		t.Fatalf("actors = %d, want 2", len(actors))
	}
	// Object identities are preserved on nodes.
	if n := g.NodeByOID("t1"); n == ssd.InvalidNode {
		t.Error("oid t1 lost")
	}
}

func TestToGraphCycles(t *testing.T) {
	d, err := Parse(`
&a thing set &b
&b thing set &a`)
	if err != nil {
		t.Fatal(err)
	}
	g := ToGraph(d)
	// thing.thing.thing... must cycle.
	hits := pathexpr.MustCompile("thing.thing.thing.thing.thing").Eval(g, g.Root())
	if len(hits) != 1 {
		t.Fatalf("cycle traversal hits = %d, want 1", len(hits))
	}
}

func TestFromGraphRoundTripQueries(t *testing.T) {
	g := workload.Fig1(false)
	d := FromGraph(g)
	back := ToGraph(d)
	// Symbol-path queries must behave identically on the round-tripped
	// database (prefixed by the synthetic root label). Non-symbol edge
	// labels (the integer cast indexes) do not survive the move to a
	// node-labeled model — the §2 friction FromGraph documents — so they
	// are deliberately absent here.
	queries := []string{
		"Entry.Movie.Title",
		"Entry.Movie.Cast.Credit.Actors",
		"Entry.Movie.Director",
		"Entry.TV-Show.Episode",
	}
	for _, src := range queries {
		orig := pathexpr.MustCompile(src).Eval(g, g.Root())
		viaOEM := pathexpr.MustCompile("root."+src).Eval(back, back.Root())
		if len(orig) != len(viaOEM) {
			t.Errorf("%s: original %d hits, via OEM %d", src, len(orig), len(viaOEM))
		}
	}
}

func TestFromGraphAtomics(t *testing.T) {
	g := ssd.MustParse(`{person: {name: "Ada", born: 1815, rating: 9.5, active: false}}`)
	d := FromGraph(g)
	types := map[Type]int{}
	for _, o := range d.Objects {
		types[o.Type]++
	}
	if types[TypeStr] != 1 || types[TypeInt] != 1 || types[TypeReal] != 1 || types[TypeBool] != 1 {
		t.Errorf("atomic type counts = %v", types)
	}
	// The document serializes and re-parses.
	if _, err := Parse(d.Format()); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, d.Format())
	}
}

func TestFromGraphPreservesOIDs(t *testing.T) {
	g := ssd.MustParse(`{a: &keep{v: 1}}`)
	d := FromGraph(g)
	if _, ok := d.Lookup("keep"); !ok {
		t.Error("existing node oid not preserved")
	}
}

func TestFormatComments(t *testing.T) {
	d, err := Parse("&r x set # trailing comment\n# full line\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Objects) != 1 || len(d.Root().Members) != 0 {
		t.Error("comment handling broken")
	}
	if strings.Contains(d.Format(), "#") {
		t.Error("comments must not survive formatting")
	}
}
