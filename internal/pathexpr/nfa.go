package pathexpr

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/ssd"
)

// Arc is one predicate-labeled NFA transition.
type Arc struct {
	Pred Pred
	To   int
}

// Automaton is a compiled path expression: a Thompson NFA over the predicate
// alphabet, with per-state epsilon closures precomputed and a lazily built
// subset (DFA) cache used by Eval. Both the plain NFA product evaluation
// (EvalNFA) and the cached-subset evaluation (Eval) are exposed because
// experiment E3 ablates one against the other.
type Automaton struct {
	arcs    [][]Arc
	start   int
	accept  int
	closure [][]int // epsilon closure per state, sorted

	// Lazy DFA: subsets of NFA states, discovered during evaluation.
	dstates map[string]int // subset key → dstate id
	dsets   [][]int        // dstate id → sorted NFA state set
	daccept []bool         // dstate id → contains accept state
	dtrans  []map[ssd.Label]int
}

// Compile translates a path expression into an Automaton.
func Compile(e Expr) *Automaton {
	b := &builder{}
	s, a := b.build(e)
	au := &Automaton{arcs: b.arcs, start: s, accept: a}
	au.computeClosures(b.eps)
	au.resetDFA()
	return au
}

// MustCompile parses and compiles src, panicking on error.
func MustCompile(src string) *Automaton {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return Compile(e)
}

type builder struct {
	arcs [][]Arc
	eps  [][]int
}

func (b *builder) state() int {
	b.arcs = append(b.arcs, nil)
	b.eps = append(b.eps, nil)
	return len(b.arcs) - 1
}

func (b *builder) arc(from int, p Pred, to int) {
	b.arcs[from] = append(b.arcs[from], Arc{p, to})
}

func (b *builder) epsilon(from, to int) {
	b.eps[from] = append(b.eps[from], to)
}

// build returns (start, accept) for e, Thompson-style.
func (b *builder) build(e Expr) (int, int) {
	switch t := e.(type) {
	case Atom:
		s, a := b.state(), b.state()
		b.arc(s, t.Pred, a)
		return s, a
	case Seq:
		if len(t.Parts) == 0 {
			s := b.state()
			return s, s
		}
		s, a := b.build(t.Parts[0])
		for _, part := range t.Parts[1:] {
			s2, a2 := b.build(part)
			b.epsilon(a, s2)
			a = a2
		}
		return s, a
	case Alt:
		s, a := b.state(), b.state()
		for _, alt := range t.Alts {
			s2, a2 := b.build(alt)
			b.epsilon(s, s2)
			b.epsilon(a2, a)
		}
		return s, a
	case Star:
		s, a := b.state(), b.state()
		s2, a2 := b.build(t.Sub)
		b.epsilon(s, s2)
		b.epsilon(s, a)
		b.epsilon(a2, s2)
		b.epsilon(a2, a)
		return s, a
	case Plus:
		s, a := b.build(t.Sub)
		s2, a2 := b.state(), b.state()
		b.epsilon(s2, s)
		b.epsilon(a, a2)
		b.epsilon(a, s)
		return s2, a2
	case Opt:
		s, a := b.state(), b.state()
		s2, a2 := b.build(t.Sub)
		b.epsilon(s, s2)
		b.epsilon(a2, a)
		b.epsilon(s, a)
		return s, a
	default:
		panic("pathexpr: unknown Expr type")
	}
}

func (au *Automaton) computeClosures(eps [][]int) {
	n := len(au.arcs)
	au.closure = make([][]int, n)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := []int{s}
		seen[s] = true
		var cl []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cl = append(cl, v)
			for _, w := range eps[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(cl)
		au.closure[s] = cl
	}
}

func (au *Automaton) resetDFA() {
	au.dstates = make(map[string]int)
	au.dsets = nil
	au.daccept = nil
	au.dtrans = nil
}

// NumStates returns the number of NFA states.
func (au *Automaton) NumStates() int { return len(au.arcs) }

// Start returns the NFA start state.
func (au *Automaton) Start() int { return au.start }

// Accept returns the unique NFA accept state.
func (au *Automaton) Accept() int { return au.accept }

// Arcs returns the predicate transitions out of state s. Callers must not
// mutate the result.
func (au *Automaton) Arcs(s int) []Arc { return au.arcs[s] }

// Closure returns the epsilon closure of s, sorted. Callers must not mutate
// the result.
func (au *Automaton) Closure(s int) []int { return au.closure[s] }

// StartSet returns the epsilon-closed start state set.
func (au *Automaton) StartSet() []int {
	return append([]int(nil), au.closure[au.start]...)
}

// StepSet advances a sorted, epsilon-closed state set over one edge label,
// returning the epsilon-closed successor set (sorted, possibly empty).
func (au *Automaton) StepSet(set []int, l ssd.Label) []int {
	var out []int
	seen := map[int]bool{}
	for _, s := range set {
		for _, arc := range au.arcs[s] {
			if !arc.Pred.Match(l) {
				continue
			}
			for _, c := range au.closure[arc.To] {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Accepting reports whether a state set contains the accept state.
func (au *Automaton) Accepting(set []int) bool {
	for _, s := range set {
		if s == au.accept {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Evaluation over graphs

// EvalNFA runs the naive product-graph BFS: it explores (node, NFA state)
// pairs and returns the sorted set of nodes reachable from start over a
// matching path. This is the paper's basic strategy — "model the graph as a
// relational database" of edges and search — and the E3 baseline.
func (au *Automaton) EvalNFA(g ssd.GraphStore, start ssd.NodeID) []ssd.NodeID {
	n := g.NumNodes()
	S := len(au.arcs)
	visited := make([]bool, n*S)
	type item struct {
		node  ssd.NodeID
		state int
	}
	var queue []item
	push := func(node ssd.NodeID, state int) {
		for _, c := range au.closure[state] {
			idx := int(node)*S + c
			if !visited[idx] {
				visited[idx] = true
				queue = append(queue, item{node, c})
			}
		}
	}
	push(start, au.start)
	resultSet := make(map[ssd.NodeID]bool)
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if it.state == au.accept {
			resultSet[it.node] = true
		}
		for _, arc := range au.arcs[it.state] {
			for _, e := range g.Out(it.node) {
				if arc.Pred.Match(e.Label) {
					push(e.To, arc.To)
				}
			}
		}
	}
	return sortedNodes(resultSet)
}

// Eval runs the lazy-subset (on-the-fly DFA) product BFS: node × subset
// pairs, with per-subset transition results memoized by concrete label. On
// graphs with repeated labels this does each (subset, label) predicate
// evaluation once instead of once per edge.
func (au *Automaton) Eval(g ssd.GraphStore, start ssd.NodeID) []ssd.NodeID {
	d0 := au.dstateOf(au.closure[au.start])
	type item struct {
		node   ssd.NodeID
		dstate int
	}
	n := g.NumNodes()
	// visited[dstate] is a lazily allocated per-node bitmap: the number of
	// reachable dstates is tiny in practice, so this beats hashing
	// (node, dstate) pairs by a wide margin.
	visited := make([][]bool, 0, 8)
	see := func(node ssd.NodeID, d int) bool {
		for d >= len(visited) {
			visited = append(visited, nil)
		}
		if visited[d] == nil {
			visited[d] = make([]bool, n)
		}
		if visited[d][node] {
			return false
		}
		visited[d][node] = true
		return true
	}
	see(start, d0)
	queue := []item{{start, d0}}
	resultSet := make(map[ssd.NodeID]bool)
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if au.daccept[it.dstate] {
			resultSet[it.node] = true
		}
		for _, e := range g.Out(it.node) {
			nd := au.dstep(it.dstate, e.Label)
			if nd < 0 {
				continue // dead subset
			}
			if see(e.To, nd) {
				queue = append(queue, item{e.To, nd})
			}
		}
	}
	return sortedNodes(resultSet)
}

// dstateOf interns a sorted NFA state set as a dstate id.
func (au *Automaton) dstateOf(set []int) int {
	key := setKey(set)
	if id, ok := au.dstates[key]; ok {
		return id
	}
	id := len(au.dsets)
	au.dstates[key] = id
	au.dsets = append(au.dsets, append([]int(nil), set...))
	au.daccept = append(au.daccept, au.Accepting(set))
	au.dtrans = append(au.dtrans, make(map[ssd.Label]int))
	return id
}

// dstep returns the dstate reached from d over label l, or -1 for the empty
// set. Transitions are memoized per (dstate, label).
func (au *Automaton) dstep(d int, l ssd.Label) int {
	if nd, ok := au.dtrans[d][l]; ok {
		return nd
	}
	next := au.StepSet(au.dsets[d], l)
	nd := -1
	if len(next) > 0 {
		nd = au.dstateOf(next)
	}
	au.dtrans[d][l] = nd
	return nd
}

func setKey(set []int) string {
	var b strings.Builder
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

func sortedNodes(set map[ssd.NodeID]bool) []ssd.NodeID {
	out := make([]ssd.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Matches reports whether any path from start matches the expression (i.e.
// Eval is non-empty), short-circuiting on the first accepting pair.
func (au *Automaton) Matches(g ssd.GraphStore, start ssd.NodeID) bool {
	d0 := au.dstateOf(au.closure[au.start])
	type item struct {
		node   ssd.NodeID
		dstate int
	}
	visited := map[item]bool{}
	queue := []item{{start, d0}}
	visited[queue[0]] = true
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if au.daccept[it.dstate] {
			return true
		}
		for _, e := range g.Out(it.node) {
			nd := au.dstep(it.dstate, e.Label)
			if nd < 0 {
				continue
			}
			ni := item{e.To, nd}
			if !visited[ni] {
				visited[ni] = true
				queue = append(queue, ni)
			}
		}
	}
	return false
}

type prodItem struct {
	node   ssd.NodeID
	dstate int
}

type prodCrumb struct {
	prev  prodItem
	label ssd.Label
	has   bool
}

// EvalWithPaths returns, for every result node, one witness path of labels
// (a shortest one in edge count). It uses BFS so the witness is minimal.
func (au *Automaton) EvalWithPaths(g ssd.GraphStore, start ssd.NodeID) map[ssd.NodeID][]ssd.Label {
	d0 := au.dstateOf(au.closure[au.start])
	trail := map[prodItem]prodCrumb{}
	first := prodItem{start, d0}
	trail[first] = prodCrumb{}
	queue := []prodItem{first}
	results := map[ssd.NodeID][]ssd.Label{}
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if au.daccept[it.dstate] {
			if _, done := results[it.node]; !done {
				results[it.node] = unwind(trail, it)
			}
		}
		for _, e := range g.Out(it.node) {
			nd := au.dstep(it.dstate, e.Label)
			if nd < 0 {
				continue
			}
			ni := prodItem{e.To, nd}
			if _, seen := trail[ni]; !seen {
				trail[ni] = prodCrumb{prev: it, label: e.Label, has: true}
				queue = append(queue, ni)
			}
		}
	}
	return results
}

func unwind(trail map[prodItem]prodCrumb, it prodItem) []ssd.Label {
	var rev []ssd.Label
	for {
		c := trail[it]
		if !c.has {
			break
		}
		rev = append(rev, c.label)
		it = c.prev
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// NewAutomaton assembles an Automaton from explicit transition tables —
// used by schema pruning (§5, [20]), which builds the product of a query
// automaton with a schema graph and needs to rematerialize it as an
// Automaton. arcs and eps must have equal length; start and accept index
// into them.
func NewAutomaton(arcs [][]Arc, eps [][]int, start, accept int) *Automaton {
	au := &Automaton{arcs: arcs, start: start, accept: accept}
	au.computeClosures(eps)
	au.resetDFA()
	return au
}
