package pathexpr

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ssd"
)

// bigChain builds {a: {a: ... {v: 1} ...}} of the given depth — enough
// product states that a traversal cannot finish in one pull.
func bigChain(t *testing.T, depth int) *ssd.Graph {
	t.Helper()
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("{a: ")
	}
	b.WriteString(`{v: 1}`)
	for i := 0; i < depth; i++ {
		b.WriteString("}")
	}
	g, err := ssd.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTraversalCancellation: a cancelled context stops the traversal
// within one pull — the very next Next returns ok=false and Err reports
// the cancellation.
func TestTraversalCancellation(t *testing.T) {
	g := bigChain(t, 500)
	au := MustCompile("_*")
	ctx, cancel := context.WithCancel(context.Background())
	tr := au.NewTraversal(g)
	tr.SetContext(ctx)
	tr.Reset(g.Root())

	if _, ok := tr.Next(); !ok {
		t.Fatal("first pull yielded nothing")
	}
	cancel()
	if n, ok := tr.Next(); ok {
		t.Fatalf("Next after cancel yielded node %d", n)
	}
	if tr.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", tr.Err())
	}

	// Reset clears the sticky error and the traversal is reusable with a
	// fresh context.
	tr.SetContext(context.Background())
	tr.Reset(g.Root())
	count := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		count++
	}
	if tr.Err() != nil {
		t.Fatalf("Err after clean run = %v", tr.Err())
	}
	if count != 503 { // root + 500 chain nodes + v-holder + data leaf
		t.Fatalf("clean run yielded %d nodes, want 503", count)
	}
}

// TestTraversalNilContext: the default (no context) traversal is
// unaffected by the cancellation plumbing.
func TestTraversalNilContext(t *testing.T) {
	g := bigChain(t, 10)
	au := MustCompile("_*")
	tr := au.NewTraversal(g)
	tr.Reset(g.Root())
	count := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		count++
	}
	if count != 13 {
		t.Fatalf("yielded %d nodes, want 13", count)
	}
}

// TestPathParams: $parameters parse, list, and bind.
func TestPathParams(t *testing.T) {
	e, err := Parse("Entry.$kind.Title")
	if err != nil {
		t.Fatal(err)
	}
	if got := Params(e); len(got) != 1 || got[0] != "kind" {
		t.Fatalf("Params = %v", got)
	}
	if _, err := BindParams(e, nil); err == nil {
		t.Fatal("BindParams with missing value should error")
	}
	bound, err := BindParams(e, map[string]ssd.Label{"kind": ssd.Sym("Movie")})
	if err != nil {
		t.Fatal(err)
	}
	if bound.String() != "Entry.Movie.Title" {
		t.Fatalf("bound = %s", bound)
	}
	// An unbound ParamPred matches nothing.
	g := ssd.MustParse(`{Entry: {Movie: {Title: "x"}}}`)
	if hits := Compile(e).Eval(g, g.Root()); len(hits) != 0 {
		t.Fatalf("unbound param matched %d nodes", len(hits))
	}
	if hits := Compile(bound).Eval(g, g.Root()); len(hits) != 1 {
		t.Fatalf("bound param matched %d nodes, want 1", len(hits))
	}
}
