package pathexpr

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ssd"
)

func figure1(t *testing.T) *ssd.Graph {
	t.Helper()
	g, err := ssd.Parse(`
	{Entry: #e1{Movie: {Title: "Casablanca",
	                    Cast: {1: "Bogart", 2: "Bacall"},
	                    Director: {"Curtiz"}}},
	 Entry: #e2{Movie: {Title: "Play it again, Sam",
	                    Cast: {Credit: {Actors: {"Allen"}}},
	                    Director: {"Allen"},
	                    References: #e1}},
	 Entry: {TV-Show: {Title: "Bogart retrospective",
	                   Cast: {Special-Guests: {"Bacall"}},
	                   Episode: 1200000}}}`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func evalStr(t *testing.T, g *ssd.Graph, expr string) []ssd.NodeID {
	t.Helper()
	au := MustCompile(expr)
	return au.Eval(g, g.Root())
}

func TestParseAndPrint(t *testing.T) {
	cases := []string{
		"Entry.Movie.Title",
		"Entry.(Movie|TV-Show).Title",
		"_*",
		"Movie.(!Movie)*",
		"a.b?.c+",
		`like "act%"`,
		"> 65536",
		"isint",
		`"Allen"`,
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Printed form must re-parse to an expression with identical print.
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", printed, src, err)
			continue
		}
		if e2.String() != printed {
			t.Errorf("print not stable: %q -> %q", printed, e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(a", "a..b", "a |", "like 5", "a)(", "> ", "!"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestEvalSimplePath(t *testing.T) {
	g := figure1(t)
	titles := evalStr(t, g, "Entry.Movie.Title")
	if len(titles) != 2 {
		t.Fatalf("Entry.Movie.Title matched %d nodes, want 2", len(titles))
	}
	all := evalStr(t, g, "Entry.(Movie|TV-Show).Title")
	if len(all) != 3 {
		t.Fatalf("alternation matched %d, want 3", len(all))
	}
}

func TestEvalWildcardFindsString(t *testing.T) {
	g := figure1(t)
	// §1.3: "Where in the database is the string Casablanca to be found?"
	hits := evalStr(t, g, `_*."Casablanca"`)
	if len(hits) != 1 {
		t.Fatalf("Casablanca found at %d nodes, want 1", len(hits))
	}
}

func TestEvalIntRange(t *testing.T) {
	g := figure1(t)
	// §1.3: "Are there integers in the database greater than 2^16?"
	hits := evalStr(t, g, "_*.(> 65536)")
	if len(hits) != 1 { // Episode 1200000
		t.Fatalf("integers > 2^16: %d hits, want 1", len(hits))
	}
	none := evalStr(t, g, "_*.(> 99999999)")
	if len(none) != 0 {
		t.Fatalf("unexpected hits %v", none)
	}
}

func TestEvalLike(t *testing.T) {
	g := figure1(t)
	// §1.3: "objects with an attribute name that starts with act".
	hits := evalStr(t, g, `_*.(like "Act%")`)
	if len(hits) != 1 { // Actors
		t.Fatalf("like Act%%: %d hits, want 1", len(hits))
	}
}

func TestEvalNegation(t *testing.T) {
	g := figure1(t)
	// The paper's example: find "Allen" below a Movie edge without passing
	// a second Movie edge. Without the guard, the References edge would let
	// paths wander into the referenced entry's Movie subtree.
	withGuard := evalStr(t, g, `Entry.Movie.(!Movie)*."Allen"`)
	if len(withGuard) != 2 { // Cast.Credit.Actors."Allen" and Director."Allen"
		t.Fatalf("guarded Allen search: %d hits, want 2", len(withGuard))
	}
	// Sanity: the guard matters — "Bogart" is NOT reachable from the second
	// entry's Movie without crossing the References→Movie boundary.
	acrossMovies := evalStr(t, g, `Entry.Movie.References.Movie.(!Movie)*."Bogart"`)
	if len(acrossMovies) != 1 {
		t.Fatalf("cross-reference search: %d hits, want 1", len(acrossMovies))
	}
}

func TestEvalCycleTermination(t *testing.T) {
	g := ssd.MustParse(`#r{a: #r, b: 1}`)
	hits := evalStr(t, g, "a*.b")
	if len(hits) != 1 {
		t.Fatalf("a*.b over cycle: %d hits, want 1", len(hits))
	}
	// _* over a cyclic graph must terminate and return everything reachable.
	acc, _ := g.Accessible()
	all := evalStr(t, acc, "_*")
	if len(all) != acc.NumNodes() {
		t.Fatalf("_* returned %d nodes, want %d", len(all), acc.NumNodes())
	}
}

func TestEvalNFAMatchesEval(t *testing.T) {
	g := figure1(t)
	exprs := []string{
		"Entry.Movie.Title",
		"_*",
		`_*."Bacall"`,
		"Entry._.Cast._*",
		"Entry.(Movie|TV-Show).(Cast|Director)._*.isstring",
		"Movie.(!Movie)*",
	}
	for _, src := range exprs {
		au1 := MustCompile(src)
		au2 := MustCompile(src)
		a := au1.Eval(g, g.Root())
		b := au2.EvalNFA(g, g.Root())
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: Eval=%v EvalNFA=%v", src, a, b)
		}
	}
}

func TestEmptySeqMatchesStartOnly(t *testing.T) {
	g := figure1(t)
	au := Compile(Seq{})
	got := au.Eval(g, g.Root())
	if len(got) != 1 || got[0] != g.Root() {
		t.Fatalf("empty path = %v, want root only", got)
	}
}

func TestPlusRequiresOne(t *testing.T) {
	g := ssd.MustParse(`{a: {a: {}}}`)
	if got := evalStr(t, g, "a+"); len(got) != 2 {
		t.Fatalf("a+ = %v, want 2 nodes", got)
	}
	if got := evalStr(t, g, "a*"); len(got) != 3 {
		t.Fatalf("a* = %v, want 3 nodes (incl. start)", got)
	}
	if got := evalStr(t, g, "a?"); len(got) != 2 {
		t.Fatalf("a? = %v, want 2 nodes", got)
	}
}

func TestMatches(t *testing.T) {
	g := figure1(t)
	if !MustCompile(`_*."Bogart"`).Matches(g, g.Root()) {
		t.Error("Bogart should match")
	}
	if MustCompile(`_*."Welles"`).Matches(g, g.Root()) {
		t.Error("Welles should not match")
	}
}

func TestEvalWithPaths(t *testing.T) {
	g := figure1(t)
	au := MustCompile(`_*."Casablanca"`)
	paths := au.EvalWithPaths(g, g.Root())
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		want := []ssd.Label{ssd.Sym("Entry"), ssd.Sym("Movie"), ssd.Sym("Title"), ssd.Str("Casablanca")}
		if !reflect.DeepEqual(p, want) {
			t.Errorf("witness = %v, want %v", p, want)
		}
	}
}

func TestTypePreds(t *testing.T) {
	g := ssd.MustParse(`{a: 1, b: "s", c: 2.5, d: true, e: {f: 1}}`)
	counts := map[string]int{
		"_.isint":    1,
		"_.isstring": 1,
		"_.isfloat":  1,
		"_.isbool":   1,
		"_.isdata":   4,
		"_.issymbol": 1, // e→f
	}
	for expr, want := range counts {
		if got := len(evalStr(t, g, expr)); got != want {
			t.Errorf("%s: %d hits, want %d", expr, got, want)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"act%", "actors", true},
		{"act%", "act", true},
		{"act%", "Actors", false},
		{"%allen%", "woody allen jr", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "abc", true},
		{"a%b%c", "acb", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestCmpOps(t *testing.T) {
	i5, i7 := ssd.Int(5), ssd.Int(7)
	if !OpLT.Apply(i5, i7) || OpLT.Apply(i7, i5) {
		t.Error("OpLT wrong")
	}
	if !OpGE.Apply(i7, i5) || !OpGE.Apply(i7, i7) {
		t.Error("OpGE wrong")
	}
	if !OpNE.Apply(i5, ssd.Str("5")) {
		t.Error("cross-kind != should be true")
	}
	if OpLT.Apply(i5, ssd.Str("9")) {
		t.Error("cross-kind < must be false")
	}
	if !OpLT.Apply(ssd.Str("a"), ssd.Str("b")) {
		t.Error("string < wrong")
	}
	if !OpLE.Apply(ssd.Int(2), ssd.Float(2.0)) {
		t.Error("numeric overloading in <= wrong")
	}
}

// Property: Eval and EvalNFA agree on random graphs and a fixed expression
// battery.
func TestEvalAgreementProperty(t *testing.T) {
	exprs := []*struct{ src string }{
		{"a*.b"}, {"(a|b)*"}, {"_._"}, {"a.(!a)*"}, {"_*.isint"},
	}
	f := func(seed int64) bool {
		g := randGraph(seed)
		for _, e := range exprs {
			a := MustCompile(e.src).Eval(g, g.Root())
			b := MustCompile(e.src).EvalNFA(g, g.Root())
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randGraph(seed int64) *ssd.Graph {
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	x := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	for i := 0; i < 15; i++ {
		ids = append(ids, g.AddNode())
	}
	labels := []ssd.Label{ssd.Sym("a"), ssd.Sym("b"), ssd.Int(3), ssd.Str("s")}
	for i := 0; i < 40; i++ {
		g.AddEdge(ids[next(len(ids))], labels[next(len(labels))], ids[next(len(ids))])
	}
	return g
}
