package pathexpr

import (
	"context"

	"repro/internal/ssd"
)

// Traversal is a resumable, pull-based product-graph traversal: the iterator
// form of Automaton.Eval. It explores (node, lazy-DFA state) pairs and yields
// each accepting node exactly once, on demand, sharing the automaton's
// memoized subset construction across runs. A Traversal is reset-able: after
// Reset it can be reused for a new start node with no allocation beyond what
// new DFA states require, which is what makes it cheap to seed once per
// outer binding row inside a query executor's nested-loop join.
//
// A Traversal (like the Automaton's other evaluation entry points) mutates
// the automaton's lazy-DFA cache and is therefore not safe for concurrent
// use of one Automaton.
type Traversal struct {
	au *Automaton
	g  ssd.GraphStore

	stack []prodItem
	// visited[d] is a generation-stamped bitmap per dstate: visited[d][n] ==
	// gen means (n, d) was pushed during the current run. Generation stamps
	// make Reset O(1) instead of O(nodes × dstates).
	visited [][]uint32
	emitted []uint32 // generation stamps for already-yielded result nodes
	gen     uint32

	// Cancellation: when ctx is non-nil, Next polls it (strided, so the
	// common case stays one atomic-free comparison) and stops the run by
	// reporting exhaustion. err distinguishes "cancelled" from "done".
	ctx    context.Context
	ctxErr error
	polls  uint32
}

// SetContext attaches a cancellation context to the traversal. A cancelled
// context makes Next return ok=false within one pull; Err then reports the
// context's error. A nil context disables the checks (the default).
func (t *Traversal) SetContext(ctx context.Context) { t.ctx = ctx }

// Err returns the context error that stopped the traversal, if any. It is
// reset by Reset.
func (t *Traversal) Err() error { return t.ctxErr }

// cancelled polls the context, one real check per 64 calls (ctx.Err takes a
// lock; the stride keeps the pull loop's common case branch-only).
//
//ssd:poll
func (t *Traversal) cancelled() bool {
	if t.ctxErr != nil {
		return true
	}
	if t.ctx == nil {
		return false
	}
	t.polls++
	if t.polls&63 != 1 {
		return false
	}
	if err := t.ctx.Err(); err != nil {
		t.ctxErr = err
		return true
	}
	return false
}

// NewTraversal prepares a reusable traversal of g — any GraphStore: the
// in-memory graph or a paged store (typically its pinning accessor).
// Call Reset before the first Next.
func (au *Automaton) NewTraversal(g ssd.GraphStore) *Traversal {
	return &Traversal{
		au:      au,
		g:       g,
		emitted: make([]uint32, g.NumNodes()),
	}
}

// Reset rewinds the traversal to begin from start. Buffers are retained.
func (t *Traversal) Reset(start ssd.NodeID) {
	if t.gen == ^uint32(0) { // generation wraparound: clear stamps the slow way
		for i := range t.emitted {
			t.emitted[i] = 0
		}
		for _, vs := range t.visited {
			for i := range vs {
				vs[i] = 0
			}
		}
		t.gen = 0
	}
	t.gen++
	t.stack = t.stack[:0]
	t.ctxErr = nil
	d0 := t.au.dstateOf(t.au.closure[t.au.start])
	t.push(start, d0)
}

func (t *Traversal) push(n ssd.NodeID, d int) bool {
	for d >= len(t.visited) {
		t.visited = append(t.visited, nil)
	}
	if t.visited[d] == nil {
		t.visited[d] = make([]uint32, t.g.NumNodes())
	}
	if t.visited[d][n] == t.gen {
		return false
	}
	t.visited[d][n] = t.gen
	t.stack = append(t.stack, prodItem{n, d})
	return true
}

// Next yields the next accepting node, or ok=false when the product graph is
// exhausted or the attached context is cancelled. Each node is yielded at
// most once per Reset. Cancellation is checked once per pull and strided
// inside the expansion loop, so a cancelled context stops the traversal
// within one Next call.
//
//ssd:ctxpoll
func (t *Traversal) Next() (ssd.NodeID, bool) {
	if t.ctx != nil {
		if t.ctxErr != nil {
			return ssd.InvalidNode, false
		}
		if err := t.ctx.Err(); err != nil {
			t.ctxErr = err
			return ssd.InvalidNode, false
		}
	}
	for len(t.stack) > 0 {
		if t.cancelled() {
			return ssd.InvalidNode, false
		}
		it := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		for _, e := range t.g.Out(it.node) {
			nd := t.au.dstep(it.dstate, e.Label)
			if nd < 0 {
				continue
			}
			t.push(e.To, nd)
		}
		if t.au.daccept[it.dstate] && t.emitted[it.node] != t.gen {
			t.emitted[it.node] = t.gen
			return it.node, true
		}
	}
	return ssd.InvalidNode, false
}
