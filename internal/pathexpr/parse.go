package pathexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/ssd"
)

// Parse parses a regular path expression.
//
//	alt     := seq ('|' seq)*
//	seq     := postfix ('.' postfix)*
//	postfix := primary ('*' | '+' | '?')*
//	primary := '(' alt ')' | atom
//	atom    := '_' | '$' ident | '!' atom | cmp literal | 'like' string
//	         | 'isint' | 'isfloat' | 'isstring' | 'issymbol' | 'isbool'
//	         | 'isoid' | 'isdata'
//	         | ident | string | int | float | 'true' | 'false'
//	cmp     := '<' | '<=' | '>' | '>=' | '=' | '!='
func Parse(src string) (Expr, error) {
	p := &peParser{lex: newPeLexer(src)}
	p.lex.next()
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.lex.tok != peEOF {
		return nil, fmt.Errorf("pathexpr: trailing input at offset %d: %q", p.lex.pos, p.lex.text)
	}
	return e, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type peToken int

const (
	peEOF peToken = iota
	peDot
	pePipe
	peStar
	pePlus
	peQuest
	peLParen
	peRParen
	peUnder
	peBang
	peLT
	peLE
	peGT
	peGE
	peEQ
	peNE
	peIdent
	peString
	peInt
	peFloat
	peParam // $ident; text carries the name
	peError
)

type peLexer struct {
	src  string
	pos  int
	tok  peToken
	text string
	err  error
}

func newPeLexer(src string) *peLexer { return &peLexer{src: src} }

func (lx *peLexer) errorf(format string, args ...interface{}) {
	if lx.err == nil {
		lx.err = fmt.Errorf("pathexpr: offset %d: "+format, append([]interface{}{lx.pos}, args...)...)
	}
	lx.tok = peError
}

func (lx *peLexer) next() {
	for lx.pos < len(lx.src) && isSpace(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		lx.tok = peEOF
		return
	}
	c := lx.src[lx.pos]
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch {
	case two == "<=":
		lx.pos += 2
		lx.tok = peLE
	case two == ">=":
		lx.pos += 2
		lx.tok = peGE
	case two == "!=":
		lx.pos += 2
		lx.tok = peNE
	case c == '<':
		lx.pos++
		lx.tok = peLT
	case c == '>':
		lx.pos++
		lx.tok = peGT
	case c == '=':
		lx.pos++
		lx.tok = peEQ
	case c == '!':
		lx.pos++
		lx.tok = peBang
	case c == '.':
		lx.pos++
		lx.tok = peDot
	case c == '|':
		lx.pos++
		lx.tok = pePipe
	case c == '*':
		lx.pos++
		lx.tok = peStar
	case c == '+':
		lx.pos++
		lx.tok = pePlus
	case c == '?':
		lx.pos++
		lx.tok = peQuest
	case c == '(':
		lx.pos++
		lx.tok = peLParen
	case c == ')':
		lx.pos++
		lx.tok = peRParen
	case c == '"':
		lx.lexString()
	case c == '$':
		lx.pos++
		if lx.pos >= len(lx.src) || !isPeIdentStart(rune(lx.src[lx.pos])) {
			lx.errorf("expected parameter name after $")
			return
		}
		lx.lexIdent()
		lx.tok = peParam
	case c == '-' || c >= '0' && c <= '9':
		lx.lexNumber()
	case c == '_' && !followsIdent(lx.src, lx.pos):
		lx.pos++
		lx.tok = peUnder
	case isPeIdentStart(rune(c)):
		lx.lexIdent()
	default:
		lx.errorf("unexpected character %q", c)
	}
}

// followsIdent reports whether the '_' at pos starts a longer identifier
// (e.g. _foo), in which case it is an ident, not the wildcard.
func followsIdent(src string, pos int) bool {
	if pos+1 >= len(src) {
		return false
	}
	r, _ := utf8.DecodeRuneInString(src[pos+1:])
	return isPeIdentCont(r)
}

func (lx *peLexer) lexString() {
	lx.pos++
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '"' {
			lx.pos++
			lx.tok, lx.text = peString, b.String()
			return
		}
		if c == '\\' && lx.pos+1 < len(lx.src) {
			esc := lx.src[lx.pos+1]
			lx.pos += 2
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				lx.errorf("unknown escape \\%c", esc)
				return
			}
			continue
		}
		b.WriteByte(c)
		lx.pos++
	}
	lx.errorf("unterminated string")
}

func (lx *peLexer) lexNumber() {
	start := lx.pos
	if lx.src[lx.pos] == '-' {
		lx.pos++
	}
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
	}
	isFloat := false
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' &&
		lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
		// A digit must follow: `3.Title` is int 3 then Dot then Title.
		isFloat = true
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		mark := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			isFloat = true
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
		} else {
			lx.pos = mark // `1eX` → int 1 followed by ident eX
		}
	}
	lx.text = lx.src[start:lx.pos]
	if isFloat {
		lx.tok = peFloat
	} else {
		lx.tok = peInt
	}
}

func (lx *peLexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isPeIdentCont(r) {
			break
		}
		lx.pos += size
	}
	lx.tok, lx.text = peIdent, lx.src[start:lx.pos]
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isPeIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isPeIdentCont(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type peParser struct {
	lex *peLexer
}

func (p *peParser) parseAlt() (Expr, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for p.lex.tok == pePipe {
		p.lex.next()
		e, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	if len(alts) == 1 {
		return first, nil
	}
	return Alt{alts}, nil
}

func (p *peParser) parseSeq() (Expr, error) {
	first, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for p.lex.tok == peDot {
		p.lex.next()
		e, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return Seq{parts}, nil
}

func (p *peParser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.lex.tok {
		case peStar:
			e = Star{e}
			p.lex.next()
		case pePlus:
			e = Plus{e}
			p.lex.next()
		case peQuest:
			e = Opt{e}
			p.lex.next()
		default:
			return e, nil
		}
	}
}

func (p *peParser) parsePrimary() (Expr, error) {
	lx := p.lex
	switch lx.tok {
	case peLParen:
		lx.next()
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if lx.tok != peRParen {
			return nil, fmt.Errorf("pathexpr: offset %d: expected ')'", lx.pos)
		}
		lx.next()
		return e, nil
	default:
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		return Atom{pred}, nil
	}
}

var typePreds = map[string]Pred{
	"isint":    TypePred{Kind: ssd.KindInt},
	"isfloat":  TypePred{Kind: ssd.KindFloat},
	"isstring": TypePred{Kind: ssd.KindString},
	"issymbol": TypePred{Kind: ssd.KindSymbol},
	"isbool":   TypePred{Kind: ssd.KindBool},
	"isoid":    TypePred{Kind: ssd.KindOID},
	"isdata":   TypePred{IsData: true},
}

func (p *peParser) parsePred() (Pred, error) {
	lx := p.lex
	switch lx.tok {
	case peUnder:
		lx.next()
		return AnyPred{}, nil
	case peParam:
		name := lx.text
		lx.next()
		return ParamPred{name}, nil
	case peBang:
		lx.next()
		sub, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		return NotPred{sub}, nil
	case peLT, peLE, peGT, peGE, peEQ, peNE:
		op := map[peToken]CmpOp{
			peLT: OpLT, peLE: OpLE, peGT: OpGT, peGE: OpGE, peEQ: OpEQ, peNE: OpNE,
		}[lx.tok]
		lx.next()
		rhs, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return CmpPred{Op: op, Rhs: rhs}, nil
	case peIdent:
		if tp, ok := typePreds[lx.text]; ok {
			lx.next()
			return tp, nil
		}
		if lx.text == "like" {
			lx.next()
			if lx.tok != peString {
				return nil, fmt.Errorf("pathexpr: offset %d: like requires a string pattern", lx.pos)
			}
			pat := lx.text
			lx.next()
			return LikePred{pat}, nil
		}
		fallthrough
	case peString, peInt, peFloat:
		l, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return ExactPred{l}, nil
	case peError:
		return nil, lx.err
	default:
		return nil, fmt.Errorf("pathexpr: offset %d: expected atom", lx.pos)
	}
}

func (p *peParser) parseLiteral() (ssd.Label, error) {
	lx := p.lex
	var l ssd.Label
	switch lx.tok {
	case peIdent:
		switch lx.text {
		case "true":
			l = ssd.Bool(true)
		case "false":
			l = ssd.Bool(false)
		default:
			l = ssd.Sym(lx.text)
		}
	case peString:
		l = ssd.Str(lx.text)
	case peInt:
		v, err := strconv.ParseInt(lx.text, 10, 64)
		if err != nil {
			return ssd.Label{}, fmt.Errorf("pathexpr: bad integer %q: %v", lx.text, err)
		}
		l = ssd.Int(v)
	case peFloat:
		v, err := strconv.ParseFloat(lx.text, 64)
		if err != nil {
			return ssd.Label{}, fmt.Errorf("pathexpr: bad float %q: %v", lx.text, err)
		}
		l = ssd.Float(v)
	case peError:
		return ssd.Label{}, lx.err
	default:
		return ssd.Label{}, fmt.Errorf("pathexpr: offset %d: expected literal", lx.pos)
	}
	lx.next()
	return l, nil
}

// ParsePred parses a single label predicate (the atom syntax): `_`, a
// literal, `!p`, `like "pat"`, a comparison, or a type test.
func ParsePred(src string) (Pred, error) {
	p := &peParser{lex: newPeLexer(src)}
	p.lex.next()
	pred, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if p.lex.tok != peEOF {
		return nil, fmt.Errorf("pathexpr: trailing input after predicate: %q", p.lex.text)
	}
	return pred, nil
}
