// Package pathexpr implements the regular path expressions §3 of the paper
// calls for: "one would like to have something like regular expressions to
// constrain paths". Expressions combine label predicates (the atoms) with
// concatenation, alternation and repetition, and are evaluated over
// edge-labeled graphs by a product construction (nfa.go).
//
// Syntax (parse.go):
//
//	Entry.Movie.Title            concatenation of symbol atoms
//	Entry.(Movie|TV-Show)        alternation
//	Movie.(!Movie)*."Allen"      the paper's "path with no second Movie edge"
//	_*.isint                     any path to an integer edge
//	_*.(> 65536)                 "integers greater than 2^16" (§1.3)
//	_*.(like "act%")             "attribute names starting with act" (§1.3)
package pathexpr

import (
	"fmt"
	"strings"

	"repro/internal/ssd"
)

// Expr is a regular path expression AST node.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Atom matches a single edge whose label satisfies Pred.
type Atom struct{ Pred Pred }

// Seq matches the concatenation of its parts.
type Seq struct{ Parts []Expr }

// Alt matches any one of its alternatives.
type Alt struct{ Alts []Expr }

// Star matches zero or more repetitions of Sub.
type Star struct{ Sub Expr }

// Plus matches one or more repetitions of Sub.
type Plus struct{ Sub Expr }

// Opt matches zero or one occurrence of Sub.
type Opt struct{ Sub Expr }

func (Atom) isExpr() {}
func (Seq) isExpr()  {}
func (Alt) isExpr()  {}
func (Star) isExpr() {}
func (Plus) isExpr() {}
func (Opt) isExpr()  {}

func (a Atom) String() string { return a.Pred.String() }

func (s Seq) String() string {
	parts := make([]string, len(s.Parts))
	for i, p := range s.Parts {
		parts[i] = maybeParen(p, false)
	}
	return strings.Join(parts, ".")
}

func (a Alt) String() string {
	parts := make([]string, len(a.Alts))
	for i, p := range a.Alts {
		parts[i] = maybeParen(p, true)
	}
	return "(" + strings.Join(parts, "|") + ")"
}

func (s Star) String() string { return maybeParen(s.Sub, false) + "*" }
func (p Plus) String() string { return maybeParen(p.Sub, false) + "+" }
func (o Opt) String() string  { return maybeParen(o.Sub, false) + "?" }

func maybeParen(e Expr, inAlt bool) string {
	switch e.(type) {
	case Seq:
		if !inAlt {
			return "(" + e.String() + ")"
		}
	}
	return e.String()
}

// ---------------------------------------------------------------------------
// Predicates (the atoms' alphabet)

// Pred is a predicate on edge labels. The "self-describing" nature of the
// data (§2) is exactly that predicates can switch on the type of a label at
// query time.
type Pred interface {
	Match(l ssd.Label) bool
	String() string
}

// ExactPred matches labels equal to L (numeric overloading included).
type ExactPred struct{ L ssd.Label }

func (p ExactPred) Match(l ssd.Label) bool { return l.Equal(p.L) }
func (p ExactPred) String() string         { return p.L.String() }

// AnyPred matches every label; written `_`.
type AnyPred struct{}

func (AnyPred) Match(ssd.Label) bool { return true }
func (AnyPred) String() string       { return "_" }

// TypePred matches labels of one kind; written isint, isstring, issymbol,
// isfloat, isbool, isoid. IsData selects any base-data kind; written isdata.
type TypePred struct {
	Kind   ssd.Kind
	IsData bool
}

func (p TypePred) Match(l ssd.Label) bool {
	if p.IsData {
		return l.IsData()
	}
	return l.Kind() == p.Kind
}

func (p TypePred) String() string {
	if p.IsData {
		return "isdata"
	}
	return "is" + p.Kind.String()
}

// LikePred matches symbol or string labels against a SQL-style pattern where
// % matches any run of characters; written like "act%".
type LikePred struct{ Pattern string }

func (p LikePred) Match(l ssd.Label) bool {
	var s string
	switch l.Kind() {
	case ssd.KindSymbol:
		s, _ = l.Symbol()
	case ssd.KindString:
		s, _ = l.Text()
	default:
		return false
	}
	return likeMatch(p.Pattern, s)
}

func (p LikePred) String() string { return "like " + ssd.Str(p.Pattern).String() }

// likeMatch implements %-wildcard matching (greedy segments).
func likeMatch(pattern, s string) bool {
	segs := strings.Split(pattern, "%")
	if len(segs) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, segs[0]) {
		return false
	}
	s = s[len(segs[0]):]
	for _, seg := range segs[1 : len(segs)-1] {
		if seg == "" {
			continue
		}
		i := strings.Index(s, seg)
		if i < 0 {
			return false
		}
		s = s[i+len(seg):]
	}
	return strings.HasSuffix(s, segs[len(segs)-1])
}

// CmpOp is a comparison operator for CmpPred.
type CmpOp int

// Comparison operators.
const (
	OpLT CmpOp = iota
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

func (op CmpOp) String() string {
	return [...]string{"<", "<=", ">", ">=", "=", "!="}[op]
}

// Apply evaluates `a op b` with the language's comparison semantics:
// numerics compare numerically across int/float; strings and symbols
// compare lexicographically within their kind; all other cross-kind
// comparisons are false (except !=, which is true when = is false).
func (op CmpOp) Apply(a, b ssd.Label) bool {
	switch op {
	case OpEQ:
		return a.Equal(b)
	case OpNE:
		return !a.Equal(b)
	}
	if !comparable(a, b) {
		return false
	}
	c := a.Compare(b)
	switch op {
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGT:
		return c > 0
	default:
		return c >= 0
	}
}

func comparable(a, b ssd.Label) bool {
	if _, ok := a.Numeric(); ok {
		_, ok2 := b.Numeric()
		return ok2
	}
	return a.Kind() == b.Kind() && a.Kind() != ssd.KindOID
}

// CmpPred matches labels l with l ⟨Op⟩ Rhs; written e.g. `> 65536`.
type CmpPred struct {
	Op  CmpOp
	Rhs ssd.Label
}

func (p CmpPred) Match(l ssd.Label) bool { return p.Op.Apply(l, p.Rhs) }
func (p CmpPred) String() string         { return p.Op.String() + " " + p.Rhs.String() }

// ParamPred is a named query parameter in atom position; written `$name`.
// It is a placeholder: evaluating an automaton that still contains one
// matches nothing. BindParams substitutes actual label values before
// compilation — the statement layer calls it once per execution.
type ParamPred struct{ Name string }

func (p ParamPred) Match(ssd.Label) bool { return false }
func (p ParamPred) String() string       { return "$" + p.Name }

// NotPred negates a predicate; written `!p`.
type NotPred struct{ Sub Pred }

func (p NotPred) Match(l ssd.Label) bool { return !p.Sub.Match(l) }
func (p NotPred) String() string         { return "!" + p.Sub.String() }

// AndPred conjoins predicates; produced by schema pruning when intersecting
// automata, not by the surface syntax.
type AndPred struct{ A, B Pred }

func (p AndPred) Match(l ssd.Label) bool { return p.A.Match(l) && p.B.Match(l) }
func (p AndPred) String() string         { return "(" + p.A.String() + " & " + p.B.String() + ")" }

// ---------------------------------------------------------------------------
// Parameters

// Params returns the names of the $parameters occurring in e, in first-
// occurrence order (depth-first, left to right).
func Params(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	var walkPred func(Pred)
	walkPred = func(p Pred) {
		switch t := p.(type) {
		case ParamPred:
			if !seen[t.Name] {
				seen[t.Name] = true
				names = append(names, t.Name)
			}
		case NotPred:
			walkPred(t.Sub)
		case AndPred:
			walkPred(t.A)
			walkPred(t.B)
		}
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case Atom:
			walkPred(t.Pred)
		case Seq:
			for _, p := range t.Parts {
				walk(p)
			}
		case Alt:
			for _, a := range t.Alts {
				walk(a)
			}
		case Star:
			walk(t.Sub)
		case Plus:
			walk(t.Sub)
		case Opt:
			walk(t.Sub)
		}
	}
	walk(e)
	return names
}

// BindParams returns a copy of e with every $parameter replaced by an
// exact-label atom for its value. Unbound parameters are an error; unused
// values are ignored (the caller validates arity against Params).
func BindParams(e Expr, vals map[string]ssd.Label) (Expr, error) {
	var bindPred func(Pred) (Pred, error)
	bindPred = func(p Pred) (Pred, error) {
		switch t := p.(type) {
		case ParamPred:
			v, ok := vals[t.Name]
			if !ok {
				return nil, fmt.Errorf("pathexpr: parameter $%s not bound", t.Name)
			}
			return ExactPred{v}, nil
		case NotPred:
			sub, err := bindPred(t.Sub)
			if err != nil {
				return nil, err
			}
			return NotPred{sub}, nil
		case AndPred:
			a, err := bindPred(t.A)
			if err != nil {
				return nil, err
			}
			b, err := bindPred(t.B)
			if err != nil {
				return nil, err
			}
			return AndPred{a, b}, nil
		default:
			return p, nil
		}
	}
	var bind func(Expr) (Expr, error)
	bind = func(e Expr) (Expr, error) {
		switch t := e.(type) {
		case Atom:
			pr, err := bindPred(t.Pred)
			if err != nil {
				return nil, err
			}
			return Atom{pr}, nil
		case Seq:
			parts := make([]Expr, len(t.Parts))
			for i, p := range t.Parts {
				np, err := bind(p)
				if err != nil {
					return nil, err
				}
				parts[i] = np
			}
			return Seq{parts}, nil
		case Alt:
			alts := make([]Expr, len(t.Alts))
			for i, a := range t.Alts {
				na, err := bind(a)
				if err != nil {
					return nil, err
				}
				alts[i] = na
			}
			return Alt{alts}, nil
		case Star:
			sub, err := bind(t.Sub)
			if err != nil {
				return nil, err
			}
			return Star{sub}, nil
		case Plus:
			sub, err := bind(t.Sub)
			if err != nil {
				return nil, err
			}
			return Plus{sub}, nil
		case Opt:
			sub, err := bind(t.Sub)
			if err != nil {
				return nil, err
			}
			return Opt{sub}, nil
		default:
			return e, nil
		}
	}
	return bind(e)
}

// ---------------------------------------------------------------------------
// Convenience constructors

// Label returns an atom matching exactly l.
func Label(l ssd.Label) Expr { return Atom{ExactPred{l}} }

// Symbol returns an atom matching the symbol s.
func Symbol(s string) Expr { return Atom{ExactPred{ssd.Sym(s)}} }

// Any returns the `_` atom.
func Any() Expr { return Atom{AnyPred{}} }

// AnyStar returns `_*`, the arbitrary-path wildcard.
func AnyStar() Expr { return Star{Any()} }

// Path returns the concatenation of symbol atoms — the plain dotted paths of
// the SQL-like surface syntax (Entry.Movie.Title).
func Path(symbols ...string) Expr {
	parts := make([]Expr, len(symbols))
	for i, s := range symbols {
		parts[i] = Symbol(s)
	}
	return Seq{parts}
}
